#!/usr/bin/env bash
# Reproduce the full study: build, test, regenerate every paper figure,
# run the extensions. Pass --paper-scale to use the paper's input sizes
# (slower); default is the scaled-down configuration.
#
# Sweep binaries fan out over all host cores (--jobs) and drop their
# machine-readable results (rsvm-bench-1 JSON) into build/bench-results/
# for BENCH_*.json perf-trajectory tracking.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-}"
JOBS="${JOBS:-$(nproc)}"
RESULTS=build/bench-results
# Content-addressed result cache: a rerun (same engine revision, same
# scale) serves every unchanged sweep point from disk. Safe to delete.
CACHE="${RSVM_CACHE_DIR:-build/bench-cache}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p "$RESULTS"

for b in build/bench/*; do
  name="$(basename "$b")"
  echo
  echo "########## $name $SCALE (--jobs=$JOBS)"
  if [ "$name" = micro_protocol ]; then
    # google-benchmark binary: takes no rsvm flags
    "$b"
  elif [ "$name" = sweep_merge ]; then
    # shard-report fusion tool, not a sweep (see docs/API.md)
    continue
  else
    # Every figure binary accepts --jobs/--json; only the sweep binaries
    # (fig02, fig16, ext_*) actually write the JSON report. ext_server
    # doubles as a differential check: it exits nonzero if any platform
    # disagrees on the server/index state or result digests.
    "$b" $SCALE "--jobs=$JOBS" "--cache-dir=$CACHE" \
         "--json=$RESULTS/$name.json"
  fi
done

echo
echo "machine-readable results:"
ls -l "$RESULTS" 2>/dev/null || true
