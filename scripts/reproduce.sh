#!/usr/bin/env bash
# Reproduce the full study: build, test, regenerate every paper figure,
# run the extensions. Pass --paper-scale to use the paper's input sizes
# (slower); default is the scaled-down configuration.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  echo
  echo "########## $(basename "$b") $SCALE"
  "$b" $SCALE
done
