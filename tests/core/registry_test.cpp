// Registry and experiment-driver tests.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Registry, AllApplicationsRegistered) {
  registerAllApps();
  const Registry& r = Registry::instance();
  // The paper's seven applications plus the server-shaped extension
  // families (server request service, hash/B+-tree indexes).
  for (const char* name : {"lu", "ocean", "volrend", "shearwarp", "raytrace",
                           "barnes", "radix", "server", "index"}) {
    const AppDesc* app = r.find(name);
    ASSERT_NE(app, nullptr) << name;
    EXPECT_FALSE(app->versions.empty());
    EXPECT_EQ(app->versions.front().cls, OptClass::Orig)
        << name << ": first version must be the original";
  }
  EXPECT_EQ(r.all().size(), 9u);
}

TEST(Registry, RegistrationIsIdempotent) {
  registerAllApps();
  const std::size_t n = Registry::instance().all().size();
  registerAllApps();
  EXPECT_EQ(Registry::instance().all().size(), n);
}

TEST(Registry, EveryAppHasAnAlgorithmicVersionExceptWhereInfeasible) {
  registerAllApps();
  for (const AppDesc& app : Registry::instance().all()) {
    bool has_alg = false;
    for (const VersionDesc& v : app.versions) {
      if (v.cls == OptClass::Alg) has_alg = true;
      EXPECT_NE(app.version(v.name), nullptr);
      EXPECT_FALSE(v.summary.empty());
    }
    // The index family's ladder deliberately tops out at DS: its
    // restructurings (padding, node layout, per-processor pools) are
    // structural, and changing the *algorithm* would change which data
    // structure is being measured.
    if (app.name == "index") {
      EXPECT_FALSE(has_alg) << app.name;
      continue;
    }
    EXPECT_TRUE(has_alg) << app.name;
  }
}

TEST(Registry, UnknownLookupsReturnNull) {
  registerAllApps();
  EXPECT_EQ(Registry::instance().find("fft"), nullptr);
  const AppDesc* lu = Registry::instance().find("lu");
  EXPECT_EQ(lu->version("nonexistent"), nullptr);
}

TEST(Experiment, SpeedupUsesOriginalUniprocessorBaseline) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  Experiment ex(*lu);
  const CellResult orig1 =
      ex.run(PlatformKind::SMP, lu->original(), lu->tiny, 1);
  // The original on one processor defines speedup 1.0 by construction.
  EXPECT_NEAR(orig1.speedup(), 1.0, 1e-9);
  const CellResult opt =
      ex.run(PlatformKind::SMP, *lu->version("4d-aligned"), lu->tiny, 4);
  // Optimized versions measure against the same original baseline.
  EXPECT_EQ(opt.base_cycles, orig1.base_cycles);
  EXPECT_GT(opt.speedup(), 1.0);
}

TEST(Experiment, BaselineIsCachedPerPlatform) {
  registerAllApps();
  const AppDesc* radix = Registry::instance().find("radix");
  Experiment ex(*radix);
  const CellResult a = ex.run(PlatformKind::SVM, radix->original(),
                              radix->tiny, 2);
  const CellResult b = ex.run(PlatformKind::SVM, *radix->version("alg-local"),
                              radix->tiny, 2);
  EXPECT_EQ(a.base_cycles, b.base_cycles);
  const CellResult c = ex.run(PlatformKind::NUMA, radix->original(),
                              radix->tiny, 2);
  EXPECT_NE(c.base_cycles, a.base_cycles);  // different platform baseline
}

TEST(Experiment, IncorrectResultsAreFatal) {
  registerAllApps();
  VersionDesc bad{"bad", OptClass::Orig, "always wrong",
                  [](Platform& p, const AppParams&) {
                    AppResult r;
                    r.stats = p.run([](Ctx&) {}), r.correct = false;
                    r.note = "intentional";
                    return r;
                  }};
  EXPECT_THROW(Experiment::runOnce(PlatformKind::SMP, bad, {}, 2),
               std::runtime_error);
}

TEST(Experiment, IncorrectResultErrorsCarryFullContext) {
  // The platform (and its trace) is gone by the time the error reaches a
  // sweep driver, so the message itself must attribute the failure.
  VersionDesc bad{"badver", OptClass::Orig, "always wrong",
                  [](Platform& p, const AppParams&) {
                    AppResult r;
                    r.stats = p.run([](Ctx&) {}), r.correct = false;
                    r.note = "checksum mismatch 42 != 41";
                    return r;
                  }};
  AppParams prm;
  prm.n = 99;
  try {
    Experiment::runOnce(PlatformKind::SMP, bad, prm, 3,
                        /*free_cs_faults=*/false, "fakeapp");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fakeapp/badver"), std::string::npos) << msg;
    EXPECT_NE(msg.find("SMP"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3 procs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n=99"), std::string::npos) << msg;
    EXPECT_NE(msg.find("checksum mismatch 42 != 41"), std::string::npos)
        << msg;
  }
}

TEST(Formatting, BreakdownTableHasOneRowPerProcessor) {
  RunStats rs;
  rs.procs.resize(4);
  rs.procs[2][Bucket::Compute] = 123;
  rs.exec_cycles = 123;
  const std::string table = rs.breakdownTable();
  int lines = 0;
  for (char ch : table) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);  // header + 4 processors
  EXPECT_NE(table.find("123"), std::string::npos);
}

TEST(Formatting, SpeedupRowAligns) {
  const std::string row = fmt::speedupRow("lu/4d [DS]", 18.7, 15.9, 14.1);
  EXPECT_NE(row.find("18.70"), std::string::npos);
  EXPECT_NE(row.find("14.10"), std::string::npos);
}

}  // namespace
}  // namespace rsvm
