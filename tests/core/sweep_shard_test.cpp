// Multi-process sharding: splitting one sweep across N shard runners
// must partition the point list exactly (every point run by one shard,
// skipped by the others), and the union of the shards' results must be
// bit-identical to the unsharded sweep -- otherwise "run it on N hosts"
// silently answers a different question than "run it on one".
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rsvm {
namespace {

std::vector<SweepPoint> samplePoints() {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  const AppDesc* radix = Registry::instance().find("radix");
  std::vector<SweepPoint> points;
  for (PlatformKind kind :
       {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA}) {
    for (const char* ver : {"2d", "4d-aligned"}) {
      SweepPoint p;
      p.kind = kind;
      p.app = "lu";
      p.version = ver;
      p.params = lu->tiny;
      p.procs = 2;
      points.push_back(std::move(p));
    }
  }
  SweepPoint p;
  p.kind = PlatformKind::SMP;
  p.app = "radix";
  p.version = radix->original().name;
  p.params = radix->tiny;
  p.procs = 2;
  points.push_back(std::move(p));  // 7 points: indivisible by 2 and 3
  return points;
}

SweepRunner::Config shardCfg(int index, int count) {
  SweepRunner::Config cfg;
  cfg.jobs = 2;
  cfg.shard_index = index;
  cfg.shard_count = count;
  return cfg;
}

TEST(SweepShard, PartitionIsDisjointCompleteAndRoundRobin) {
  const auto points = samplePoints();
  const int N = 3;
  std::vector<int> owners(points.size(), 0);
  for (int s = 0; s < N; ++s) {
    SweepRunner runner(shardCfg(s, N));
    const auto results = runner.run(points);
    ASSERT_EQ(results.size(), points.size());
    std::size_t ran = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].skipped) {
        // A skipped slot must be inert: no result, no error.
        EXPECT_FALSE(results[i].ok() && results[i].cycles != 0)
            << "shard " << s << " point " << i;
        continue;
      }
      ++owners[i];
      ++ran;
      EXPECT_EQ(static_cast<int>(i) % N, s)
          << "point " << i << " ran on the wrong shard";
      EXPECT_TRUE(results[i].ok()) << results[i].error;
    }
    EXPECT_EQ(runner.fleetStats().shard_skipped, points.size() - ran);
    EXPECT_EQ(runner.fleetStats().computed, ran);
  }
  for (std::size_t i = 0; i < owners.size(); ++i) {
    EXPECT_EQ(owners[i], 1) << "point " << i
                            << " run by != 1 shard (disjointness broken)";
  }
}

TEST(SweepShard, UnionOfShardsMatchesUnshardedBitForBit) {
  const auto points = samplePoints();
  const auto whole = SweepRunner(2).run(points);

  const int N = 2;
  std::vector<std::vector<SweepResult>> shards;
  for (int s = 0; s < N; ++s) {
    shards.push_back(SweepRunner(shardCfg(s, N)).run(points));
  }

  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepResult& mine = shards[i % N][i];
    ASSERT_FALSE(mine.skipped) << "point " << i;
    ASSERT_TRUE(mine.ok()) << mine.error;
    EXPECT_EQ(mine.cycles, whole[i].cycles) << "point " << i;
    EXPECT_EQ(mine.base_cycles, whole[i].base_cycles) << "point " << i;
    ASSERT_EQ(mine.app.stats.procs.size(), whole[i].app.stats.procs.size());
    for (std::size_t pr = 0; pr < mine.app.stats.procs.size(); ++pr) {
      for (std::size_t b = 0; b < mine.app.stats.procs[pr].buckets.size();
           ++b) {
        EXPECT_EQ(mine.app.stats.procs[pr].buckets[b],
                  whole[i].app.stats.procs[pr].buckets[b])
            << "point " << i << " proc " << pr << " bucket " << b;
      }
      EXPECT_EQ(mine.app.stats.procs[pr].reads,
                whole[i].app.stats.procs[pr].reads)
          << "point " << i << " proc " << pr;
    }
    // The other shard skipped it.
    EXPECT_TRUE(shards[(i + 1) % N][i].skipped) << "point " << i;
  }
}

TEST(SweepShard, SingleShardOfOneRunsEverything) {
  const auto points = samplePoints();
  SweepRunner runner(shardCfg(0, 1));
  const auto results = runner.run(points);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].skipped) << "point " << i;
  }
  EXPECT_EQ(runner.fleetStats().shard_skipped, 0u);
}

TEST(SweepShard, InvalidShardConfigurationsAreRejected) {
  EXPECT_THROW(SweepRunner(shardCfg(2, 2)), std::invalid_argument);
  EXPECT_THROW(SweepRunner(shardCfg(-1, 2)), std::invalid_argument);
  EXPECT_THROW(SweepRunner(shardCfg(0, 0)), std::invalid_argument);
  EXPECT_THROW(SweepRunner(shardCfg(0, -3)), std::invalid_argument);
  EXPECT_NO_THROW(SweepRunner(shardCfg(1, 2)));
}

}  // namespace
}  // namespace rsvm
