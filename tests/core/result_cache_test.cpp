// Content-addressed result cache: the canonical key must separate every
// field that can influence a simulated result (a collision here would
// serve a wrong answer forever), the binary codec must round-trip a
// result exactly and reject corruption, and a cache hit in a real sweep
// must be bit-identical to the recompute it replaced.
#include "core/result_cache.hpp"

#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace rsvm {
namespace {

/// mkdtemp wrapper that removes the tree on scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/rsvm_cache_test_XXXXXX";
    const char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path = got == nullptr ? "" : got;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

SweepPoint samplePoint() {
  SweepPoint p;
  p.kind = PlatformKind::SVM;
  p.app = "lu";
  p.version = "2d";
  p.params.n = 64;
  p.params.iters = 1;
  p.params.block = 8;
  p.params.seed = 7;
  p.procs = 4;
  return p;
}

SweepResult sampleResult() {
  SweepResult r;
  r.cycles = 123456;
  r.base_cycles = 654321;
  r.oracle_violations = 0;
  r.app.correct = true;
  r.app.note = "all good";
  r.app.state_hash = 0x1122334455667788ull;
  r.app.result_hash = 0x99aabbccddeeff00ull;
  r.app.stats.exec_cycles = 123456;
  r.app.stats.procs.resize(2);
  for (int b = 0; b < kNumBuckets; ++b) {
    r.app.stats.procs[0].buckets[static_cast<std::size_t>(b)] =
        static_cast<Cycles>(100 + b);
    r.app.stats.procs[1].buckets[static_cast<std::size_t>(b)] =
        static_cast<Cycles>(200 + b);
  }
  r.app.stats.procs[0].reads = 42;
  r.app.stats.procs[1].writes = 43;
  r.app.stats.procs[0].page_faults = 5;
  r.app.stats.procs[1].allocs = 9;
  return r;
}

TEST(CacheKey, EveryResultAffectingFieldSeparatesKeys) {
  const SweepPoint base = samplePoint();
  std::set<std::string> keys;
  keys.insert(cacheKeyText(base));

  // Each mutation must land in a key text no earlier mutation produced.
  std::vector<SweepPoint> variants;
  {
    SweepPoint p = base;
    p.app = "radix";
    variants.push_back(p);
    p = base;
    p.version = "4d-aligned";
    variants.push_back(p);
    p = base;
    p.kind = PlatformKind::NUMA;
    variants.push_back(p);
    p = base;
    p.config = "4x4";
    variants.push_back(p);
    p = base;
    p.baseline_key = "flat";
    variants.push_back(p);
    p = base;
    p.procs = 8;
    variants.push_back(p);
    p = base;
    p.params.n = 128;
    variants.push_back(p);
    p = base;
    p.params.iters = 2;
    variants.push_back(p);
    p = base;
    p.params.block = 16;
    variants.push_back(p);
    p = base;
    p.params.seed = 8;
    variants.push_back(p);
    p = base;
    p.params.zipf = 0.9;
    variants.push_back(p);
    p = base;
    p.free_cs_faults = true;
    variants.push_back(p);
    p = base;
    p.with_baseline = false;
    variants.push_back(p);
    p = base;
    p.check = CheckLevel::Oracle;
    variants.push_back(p);
    p = base;
    p.fault_seed = 99;
    variants.push_back(p);
  }
  for (const SweepPoint& p : variants) {
    const auto [it, inserted] = keys.insert(cacheKeyText(p));
    EXPECT_TRUE(inserted) << "key collision: " << *it;
  }
  EXPECT_EQ(keys.size(), variants.size() + 1);
}

TEST(CacheKey, EngineRevisionAndFiberBackendSeparateKeys) {
  const SweepPoint p = samplePoint();
  const std::string a = cacheKeyText(p, "rev-aaaa", "asm");
  const std::string b = cacheKeyText(p, "rev-bbbb", "asm");
  const std::string c = cacheKeyText(p, "rev-aaaa", "ucontext");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // The default overload uses the build's revision and backend and must
  // agree with injecting those same values.
  EXPECT_NE(cacheKeyText(p).find(std::string("rev=") + engineRev()),
            std::string::npos);
}

TEST(CacheKey, EngineThreadingModeSeparatesKeys) {
  // Defensive keying: the parallel engine promises bit-identical
  // results, but the threading mode is keyed anyway so a false promise
  // can never serve a wrong answer across modes.
  const SweepPoint base = samplePoint();  // engine_threads = 0
  SweepPoint par = base;
  par.engine_threads = 4;
  EXPECT_NE(cacheKeyText(base), cacheKeyText(par));
  // 0 (runner decides, resolved sequential) and an explicit 1 are the
  // same execution and must share a key: a sweep run with no threading
  // flag still hits entries produced by --engine-threads=1 runs.
  SweepPoint one = base;
  one.engine_threads = 1;
  EXPECT_EQ(cacheKeyText(base), cacheKeyText(one));
  EXPECT_NE(cacheKeyText(base).find("ethreads=1"), std::string::npos);
  EXPECT_NE(cacheKeyText(par).find("ethreads=4"), std::string::npos);
}

TEST(CacheKey, ShardModeSeparatesNewlyParallelPlatforms) {
  // The fenced-access scheduler discipline gets its own defensive key
  // term, per platform kind: a parallel point on any platform that the
  // original (run-ahead-only) engine refused must not alias an entry a
  // pre-widening build might have written under the same |ethreads=N
  // key after a future contract change. Flat SVM keeps run-ahead.
  for (const PlatformKind kind :
       {PlatformKind::SMP, PlatformKind::NUMA, PlatformKind::FGS}) {
    SweepPoint par = samplePoint();
    par.kind = kind;
    par.engine_threads = 4;
    SweepPoint seq = par;
    seq.engine_threads = 1;
    EXPECT_NE(cacheKeyText(par).find("|shardmode=fence"), std::string::npos)
        << platformName(kind);
    EXPECT_EQ(cacheKeyText(seq).find("|shardmode="), std::string::npos)
        << platformName(kind);
    EXPECT_NE(cacheKeyText(par), cacheKeyText(seq)) << platformName(kind);
  }
}

TEST(CacheKey, FlatSvmParallelKeysMatchThePreWideningText) {
  // Warm fleet caches from the run-ahead-era engine hold flat-SVM
  // parallel entries under keys ending in |ethreads=N with no shardmode
  // term; those keys must stay byte-identical so the entries keep
  // hitting.
  SweepPoint p = samplePoint();
  p.engine_threads = 4;
  const std::string key = cacheKeyText(p, "rev-x", "asm");
  EXPECT_EQ(key.find("|shardmode="), std::string::npos);
  EXPECT_EQ(key.substr(key.size() - std::string("|ethreads=4").size()),
            "|ethreads=4");
}

TEST(CacheKey, ObserversAndCustomFactoriesUseTheFencedTerm) {
  // Oracle-attached parallel runs and custom-factory points (e.g.
  // clustered SVM tagged via config) also became parallel-eligible with
  // the fenced discipline.
  SweepPoint oracle = samplePoint();
  oracle.engine_threads = 4;
  oracle.check = CheckLevel::Oracle;
  EXPECT_NE(cacheKeyText(oracle).find("|shardmode=fence"), std::string::npos);

  SweepPoint clustered = samplePoint();
  clustered.engine_threads = 4;
  clustered.config = "n4";
  clustered.make_platform = [](int procs) {
    return Platform::create(PlatformKind::SVM, procs);
  };
  ASSERT_TRUE(cacheable(clustered));
  EXPECT_NE(cacheKeyText(clustered).find("|shardmode=fence"),
            std::string::npos);

  // A fault plan forces the sequential scheduler regardless of platform,
  // so it never gets the fenced term (fseed already separates the key).
  SweepPoint faulted = samplePoint();
  faulted.engine_threads = 4;
  faulted.kind = PlatformKind::SMP;
  faulted.fault_seed = 9;
  EXPECT_EQ(cacheKeyText(faulted).find("|shardmode="), std::string::npos);
}

TEST(CacheKey, DigestIsStableAndTextSensitive) {
  const SweepPoint p = samplePoint();
  const std::string text = cacheKeyText(p);
  const CacheKey k1 = cacheKeyOf(text);
  const CacheKey k2 = cacheKeyOf(text);
  EXPECT_EQ(k1.hi, k2.hi);
  EXPECT_EQ(k1.lo, k2.lo);
  const CacheKey other = cacheKeyOf(text + "x");
  EXPECT_TRUE(other.hi != k1.hi || other.lo != k1.lo);
  EXPECT_EQ(k1.hex().size(), 32u);
  EXPECT_EQ(k1.hex().find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

TEST(CacheKey, CustomPlatformFactoryNeedsAConfigTag) {
  SweepPoint p = samplePoint();
  EXPECT_TRUE(cacheable(p));
  // An untagged factory could be *anything*: refusing to key it is the
  // only way two different configurations can never alias.
  p.make_platform = [](int procs) {
    return Platform::create(PlatformKind::SVM, procs);
  };
  EXPECT_FALSE(cacheable(p));
  p.config = "custom0";
  EXPECT_TRUE(cacheable(p));
}

TEST(ResultCodec, RoundTripsEveryStoredField) {
  const SweepResult r = sampleResult();
  const std::string key = "some-key-text";
  const std::string bytes = encodeResult(key, r);

  std::string got_key;
  SweepResult got;
  std::size_t consumed = 0;
  ASSERT_TRUE(decodeResult(bytes, &got_key, &got, &consumed));
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(got_key, key);
  EXPECT_EQ(got.cycles, r.cycles);
  EXPECT_EQ(got.base_cycles, r.base_cycles);
  EXPECT_EQ(got.oracle_violations, r.oracle_violations);
  EXPECT_EQ(got.timed_out, r.timed_out);
  EXPECT_EQ(got.error, r.error);
  EXPECT_EQ(got.app.correct, r.app.correct);
  EXPECT_EQ(got.app.note, r.app.note);
  EXPECT_EQ(got.app.state_hash, r.app.state_hash);
  EXPECT_EQ(got.app.result_hash, r.app.result_hash);
  EXPECT_EQ(got.app.stats.exec_cycles, r.app.stats.exec_cycles);
  ASSERT_EQ(got.app.stats.procs.size(), r.app.stats.procs.size());
  for (std::size_t i = 0; i < r.app.stats.procs.size(); ++i) {
    const ProcStats& a = r.app.stats.procs[i];
    const ProcStats& b = got.app.stats.procs[i];
    for (std::size_t bk = 0; bk < a.buckets.size(); ++bk) {
      EXPECT_EQ(a.buckets[bk], b.buckets[bk]) << "proc " << i;
    }
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.page_faults, b.page_faults);
    EXPECT_EQ(a.allocs, b.allocs);
  }
}

TEST(ResultCodec, RejectsTruncationAndBitFlips) {
  const std::string bytes = encodeResult("k", sampleResult());
  std::string key;
  SweepResult out;
  std::size_t consumed = 0;
  // Every proper prefix is a torn record.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                std::size_t{8}, bytes.size() - 1}) {
    EXPECT_FALSE(decodeResult(std::string_view(bytes).substr(0, cut), &key,
                              &out, &consumed))
        << "accepted a " << cut << "-byte prefix";
  }
  // A bit flip anywhere in the payload fails the checksum; in the
  // header it fails the magic or length check.
  for (const std::size_t at : {std::size_t{0}, std::size_t{5},
                               std::size_t{12}, bytes.size() / 2,
                               bytes.size() - 1}) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    EXPECT_FALSE(decodeResult(bad, &key, &out, &consumed))
        << "accepted a flip at byte " << at;
  }
}

TEST(ResultCache, MissThenStoreThenHit) {
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint p = samplePoint();
  const SweepResult r = sampleResult();

  EXPECT_FALSE(cache.lookup(p).has_value());
  EXPECT_TRUE(cache.insert(p, r));
  const auto got = cache.lookup(p);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->cached);
  EXPECT_EQ(got->cycles, r.cycles);
  EXPECT_EQ(got->app.state_hash, r.app.state_hash);

  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.stores, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.corrupt, 0u);
}

TEST(ResultCache, NeverStoresFailedOrTimedOutResults) {
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint p = samplePoint();

  SweepResult failed = sampleResult();
  failed.error = "engine exploded";
  EXPECT_FALSE(cache.insert(p, failed));

  SweepResult hung = sampleResult();
  hung.timed_out = true;
  EXPECT_FALSE(cache.insert(p, hung));

  SweepPoint unkeyable = p;
  unkeyable.make_platform = [](int procs) {
    return Platform::create(PlatformKind::SVM, procs);
  };
  EXPECT_FALSE(cache.insert(unkeyable, sampleResult()));
  EXPECT_FALSE(cache.lookup(unkeyable).has_value());
  // Only lookups count uncacheable points (one per scheduling attempt).
  EXPECT_EQ(cache.stats().uncacheable, 1u);

  EXPECT_FALSE(cache.lookup(p).has_value());
}

TEST(ResultCache, CorruptEntryIsAMissNotAWrongAnswer) {
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint p = samplePoint();
  ASSERT_TRUE(cache.insert(p, sampleResult()));

  // Flip one byte of the single entry file on disk.
  std::string entry;
  for (const auto& e :
       std::filesystem::recursive_directory_iterator(dir.path)) {
    if (e.is_regular_file()) entry = e.path().string();
  }
  ASSERT_FALSE(entry.empty());
  {
    std::FILE* f = std::fopen(entry.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    std::fputc('Z', f);
    std::fclose(f);
  }
  EXPECT_FALSE(cache.lookup(p).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);

  // The recompute path overwrites the corrupt entry and restores hits.
  ASSERT_TRUE(cache.insert(p, sampleResult()));
  EXPECT_TRUE(cache.lookup(p).has_value());
}

TEST(ResultCache, DistinctPointsNeverFalseHit) {
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint p = samplePoint();
  ASSERT_TRUE(cache.insert(p, sampleResult()));
  SweepPoint q = p;
  q.params.seed = p.params.seed + 1;
  EXPECT_FALSE(cache.lookup(q).has_value());
  SweepPoint z = p;
  z.params.zipf = 0.6;
  EXPECT_FALSE(cache.lookup(z).has_value());
  SweepPoint c = p;
  c.check = CheckLevel::Oracle;
  EXPECT_FALSE(cache.lookup(c).has_value());
}

TEST(ResultCache, ThrowsWhenDirectoryCannotBeCreated) {
  EXPECT_THROW(ResultCache("/proc/definitely/not/writable"),
               std::runtime_error);
}

void expectSameSimulatedBits(const SweepResult& a, const SweepResult& b,
                             std::size_t i) {
  EXPECT_EQ(a.cycles, b.cycles) << "point " << i;
  EXPECT_EQ(a.base_cycles, b.base_cycles) << "point " << i;
  EXPECT_EQ(a.app.state_hash, b.app.state_hash) << "point " << i;
  EXPECT_EQ(a.app.result_hash, b.app.result_hash) << "point " << i;
  EXPECT_EQ(a.app.stats.exec_cycles, b.app.stats.exec_cycles)
      << "point " << i;
  ASSERT_EQ(a.app.stats.procs.size(), b.app.stats.procs.size());
  for (std::size_t pr = 0; pr < a.app.stats.procs.size(); ++pr) {
    const ProcStats& x = a.app.stats.procs[pr];
    const ProcStats& y = b.app.stats.procs[pr];
    for (std::size_t bk = 0; bk < x.buckets.size(); ++bk) {
      EXPECT_EQ(x.buckets[bk], y.buckets[bk])
          << "point " << i << " proc " << pr << " bucket " << bk;
    }
    EXPECT_EQ(x.reads, y.reads) << "point " << i << " proc " << pr;
    EXPECT_EQ(x.writes, y.writes) << "point " << i << " proc " << pr;
    EXPECT_EQ(x.lock_acquires, y.lock_acquires)
        << "point " << i << " proc " << pr;
    EXPECT_EQ(x.page_faults, y.page_faults)
        << "point " << i << " proc " << pr;
  }
}

TEST(ResultCache, WarmSweepIsBitIdenticalToColdSweep) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  ASSERT_NE(lu, nullptr);
  std::vector<SweepPoint> points;
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP}) {
    for (int procs : {2, 4}) {
      SweepPoint p;
      p.kind = kind;
      p.app = "lu";
      p.version = "2d";
      p.params = lu->tiny;
      p.procs = procs;
      points.push_back(std::move(p));
    }
  }

  TempDir dir;
  SweepRunner::Config cfg;
  cfg.jobs = 2;
  cfg.cache_dir = dir.path;

  SweepRunner cold(cfg);
  const auto first = cold.run(points);
  EXPECT_EQ(cold.fleetStats().computed, points.size());
  EXPECT_EQ(cold.fleetStats().stores, points.size());
  EXPECT_EQ(cold.fleetStats().cache_hits, 0u);

  SweepRunner warm(cfg);
  const auto second = warm.run(points);
  EXPECT_EQ(warm.fleetStats().cache_hits, points.size());
  EXPECT_EQ(warm.fleetStats().computed, 0u);

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok()) << first[i].error;
    ASSERT_TRUE(second[i].ok()) << second[i].error;
    EXPECT_FALSE(first[i].cached) << "point " << i;
    EXPECT_TRUE(second[i].cached) << "point " << i;
    expectSameSimulatedBits(first[i], second[i], i);
  }
}

}  // namespace
}  // namespace rsvm
