// Host-parallelism differential: a SweepRunner fanning the server and
// index workloads over 8 worker threads must return byte-for-byte the
// results of a sequential (--jobs=1) sweep -- simulated clocks, digests,
// counters, baselines. This is what makes `ext_server --jobs=N` results
// publishable: the host thread count is not an input of the experiment.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rsvm {
namespace {

std::vector<SweepPoint> serverIndexPoints() {
  registerAllApps();
  std::vector<SweepPoint> pts;
  for (const char* app : {"server", "index"}) {
    const AppDesc* d = Registry::instance().find(app);
    EXPECT_NE(d, nullptr);
    for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA}) {
      for (const auto& ver : d->versions) {
        SweepPoint p;
        p.kind = kind;
        p.app = app;
        p.version = ver.name;
        p.params = d->tiny;
        p.procs = 4;
        pts.push_back(p);
      }
    }
  }
  return pts;
}

TEST(SweepJobsDifferential, EightWorkersMatchSequentialBitForBit) {
  const std::vector<SweepPoint> pts = serverIndexPoints();
  ASSERT_FALSE(pts.empty());
  SweepRunner seq(1);
  SweepRunner par(8);
  const std::vector<SweepResult> a = seq.run(pts);
  const std::vector<SweepResult> b = par.run(pts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string at = pts[i].app + "/" + pts[i].version + " on " +
                           platformName(pts[i].kind);
    EXPECT_TRUE(a[i].ok()) << at << ": " << a[i].error;
    EXPECT_TRUE(b[i].ok()) << at << ": " << b[i].error;
    EXPECT_EQ(a[i].cycles, b[i].cycles) << at;
    EXPECT_EQ(a[i].base_cycles, b[i].base_cycles) << at;
    EXPECT_EQ(a[i].app.state_hash, b[i].app.state_hash) << at;
    EXPECT_EQ(a[i].app.result_hash, b[i].app.result_hash) << at;
    EXPECT_EQ(a[i].app.stats.sum(&ProcStats::tasks_stolen),
              b[i].app.stats.sum(&ProcStats::tasks_stolen))
        << at;
    EXPECT_EQ(a[i].app.stats.sum(&ProcStats::allocs),
              b[i].app.stats.sum(&ProcStats::allocs))
        << at;
    ASSERT_EQ(a[i].app.stats.procs.size(), b[i].app.stats.procs.size());
    for (std::size_t p = 0; p < a[i].app.stats.procs.size(); ++p) {
      for (std::size_t bk = 0; bk < kNumBuckets; ++bk) {
        EXPECT_EQ(a[i].app.stats.procs[p].buckets[bk],
                  b[i].app.stats.procs[p].buckets[bk])
            << at << " proc " << p << " bucket " << bk;
      }
    }
  }
}

}  // namespace
}  // namespace rsvm
