// ResultCache::gc: age- and size-capped eviction of the on-disk cache.
// The contract under test: eviction order is strictly (mtime, path)
// oldest-first, each eviction is one unlink (so readers race safely),
// and in-flight ".tmp." writer files are never touched.
#include "core/result_cache.hpp"

#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace rsvm {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/rsvm_cache_gc_test_XXXXXX";
    const char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path = got == nullptr ? "" : got;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
  std::string path;
};

SweepPoint pointWithSeed(std::uint64_t seed) {
  SweepPoint p;
  p.kind = PlatformKind::SVM;
  p.app = "lu";
  p.version = "2d";
  p.params.n = 64;
  p.params.iters = 1;
  p.params.block = 8;
  p.params.seed = seed;
  p.procs = 4;
  return p;
}

SweepResult okResult() {
  SweepResult r;
  r.cycles = 1000;
  r.app.correct = true;
  r.app.stats.exec_cycles = 1000;
  r.app.stats.procs.resize(1);
  return r;
}

/// All .rc entry files under the cache directory.
std::vector<std::string> entryFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file() &&
        e.path().string().size() >= 3 &&
        e.path().string().substr(e.path().string().size() - 3) == ".rc") {
      out.push_back(e.path().string());
    }
  }
  return out;
}

/// Back-date an entry file by `hours` so eviction order is controlled
/// regardless of filesystem timestamp granularity.
void backdate(const std::string& path, int hours) {
  fs::last_write_time(path, fs::file_time_type::clock::now() -
                                std::chrono::hours(hours));
}

TEST(ResultCacheGc, EvictsOldestFirstDownToSizeBudget) {
  TempDir dir;
  ResultCache cache(dir.path);
  // Five entries, back-dated so insertion index i is (5 - i) hours old:
  // seed 0 is the oldest, seed 4 the newest.
  std::vector<SweepPoint> points;
  for (std::uint64_t i = 0; i < 5; ++i) {
    points.push_back(pointWithSeed(i));
    ASSERT_TRUE(cache.insert(points.back(), okResult()));
    const CacheKey k = cacheKeyOf(cacheKeyText(points.back()));
    backdate(dir.path + "/" + k.hex().substr(0, 2) + "/" + k.hex() + ".rc",
             static_cast<int>(5 - i));
  }
  const auto files = entryFiles(dir.path);
  ASSERT_EQ(files.size(), 5u);
  std::uint64_t total = 0;
  for (const auto& f : files) total += fs::file_size(f);
  const std::uint64_t per_entry = total / 5;

  // Budget for two entries: the three oldest go, newest two stay.
  const auto gs = cache.gc(/*max_bytes=*/2 * per_entry,
                           /*max_age_seconds=*/0.0);
  EXPECT_EQ(gs.scanned, 5u);
  EXPECT_EQ(gs.evicted, 3u);
  EXPECT_EQ(gs.bytes_before, total);
  EXPECT_LE(gs.bytes_after, 2 * per_entry);
  EXPECT_FALSE(cache.lookup(points[0]).has_value());
  EXPECT_FALSE(cache.lookup(points[1]).has_value());
  EXPECT_FALSE(cache.lookup(points[2]).has_value());
  EXPECT_TRUE(cache.lookup(points[3]).has_value());
  EXPECT_TRUE(cache.lookup(points[4]).has_value());
}

TEST(ResultCacheGc, AgeCapDropsOnlyStaleEntries) {
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint stale = pointWithSeed(1);
  const SweepPoint fresh = pointWithSeed(2);
  ASSERT_TRUE(cache.insert(stale, okResult()));
  ASSERT_TRUE(cache.insert(fresh, okResult()));
  {
    const CacheKey k = cacheKeyOf(cacheKeyText(stale));
    backdate(dir.path + "/" + k.hex().substr(0, 2) + "/" + k.hex() + ".rc",
             48);
  }
  // No size cap: only the 48-hour-old entry exceeds the 24-hour age cap.
  const auto gs = cache.gc(/*max_bytes=*/0,
                           /*max_age_seconds=*/24.0 * 3600.0);
  EXPECT_EQ(gs.evicted, 1u);
  EXPECT_FALSE(cache.lookup(stale).has_value());
  EXPECT_TRUE(cache.lookup(fresh).has_value());
}

TEST(ResultCacheGc, NoOpWhenUnderBudget) {
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint p = pointWithSeed(3);
  ASSERT_TRUE(cache.insert(p, okResult()));
  const auto gs = cache.gc(/*max_bytes=*/1ull << 30,
                           /*max_age_seconds=*/365.0 * 24 * 3600.0);
  EXPECT_EQ(gs.scanned, 1u);
  EXPECT_EQ(gs.evicted, 0u);
  EXPECT_EQ(gs.bytes_before, gs.bytes_after);
  EXPECT_TRUE(cache.lookup(p).has_value());
}

TEST(ResultCacheGc, NeverTouchesInFlightTempFiles) {
  TempDir dir;
  ResultCache cache(dir.path);
  ASSERT_TRUE(cache.insert(pointWithSeed(1), okResult()));
  // A concurrent writer's in-flight temp file, arbitrarily old.
  const std::string leaf = dir.path + "/ab";
  fs::create_directories(leaf);
  const std::string tmp = leaf + "/0123.rc.tmp.999";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("partial", f);
    std::fclose(f);
  }
  backdate(tmp, 1000);
  const auto gs = cache.gc(/*max_bytes=*/1, /*max_age_seconds=*/1.0);
  EXPECT_GE(gs.evicted, 1u);  // the real entry goes (1-byte budget)
  EXPECT_TRUE(fs::exists(tmp)) << "gc deleted a writer's temp file";
}

TEST(ResultCacheGc, EvictedEntryRecomputesCleanly) {
  // An evicted entry must behave exactly like a miss: lookup fails,
  // re-insert restores it (the atomicity story for concurrent sweeps).
  TempDir dir;
  ResultCache cache(dir.path);
  const SweepPoint p = pointWithSeed(7);
  ASSERT_TRUE(cache.insert(p, okResult()));
  cache.gc(/*max_bytes=*/1, /*max_age_seconds=*/0.0);
  EXPECT_FALSE(cache.lookup(p).has_value());
  EXPECT_TRUE(cache.insert(p, okResult()));
  EXPECT_TRUE(cache.lookup(p).has_value());
}

}  // namespace
}  // namespace rsvm
