// Checkpoint/resume manifest: records survive close/reopen, a torn or
// corrupt tail is truncated back to the last intact record, and a sweep
// restarted over a partial manifest replays journaled points instead of
// recomputing them -- with results bit-identical to an uninterrupted
// run, which is the whole point of resuming.
#include "core/checkpoint.hpp"

#include "core/result_cache.hpp"
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace rsvm {
namespace {

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/rsvm_ckpt_test_XXXXXX";
    const char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path = got == nullptr ? "" : got;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
  std::string path;
};

SweepResult resultWithCycles(Cycles c) {
  SweepResult r;
  r.cycles = c;
  r.base_cycles = 2 * c;
  r.app.correct = true;
  r.app.state_hash = 0xabcull + c;
  r.app.stats.exec_cycles = c;
  r.app.stats.procs.resize(1);
  r.app.stats.procs[0].reads = 10;
  return r;
}

std::uint64_t fileSize(const std::string& path) {
  return static_cast<std::uint64_t>(std::filesystem::file_size(path));
}

void appendRaw(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void truncateTo(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  ASSERT_FALSE(ec) << ec.message();
}

TEST(CheckpointLog, RecordsSurviveCloseAndReopen) {
  TempDir dir;
  const std::string manifest = dir.path + "/ck.bin";
  {
    CheckpointLog log(manifest);
    EXPECT_EQ(log.loaded().records, 0u);
    EXPECT_TRUE(log.append("key-a", resultWithCycles(100)));
    EXPECT_TRUE(log.append("key-b", resultWithCycles(200)));
    EXPECT_EQ(log.appended(), 2u);
  }
  CheckpointLog log(manifest);
  EXPECT_EQ(log.loaded().records, 2u);
  EXPECT_FALSE(log.loaded().torn_tail);
  const SweepResult* a = log.find("key-a");
  const SweepResult* b = log.find("key-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cycles, 100u);
  EXPECT_EQ(b->cycles, 200u);
  EXPECT_EQ(b->app.stats.procs.size(), 1u);
  EXPECT_EQ(log.find("key-c"), nullptr);
}

TEST(CheckpointLog, LaterRecordsWinForARepeatedKey) {
  TempDir dir;
  const std::string manifest = dir.path + "/ck.bin";
  {
    CheckpointLog log(manifest);
    log.append("key", resultWithCycles(1));
    log.append("key", resultWithCycles(2));
  }
  CheckpointLog log(manifest);
  ASSERT_NE(log.find("key"), nullptr);
  EXPECT_EQ(log.find("key")->cycles, 2u);
}

TEST(CheckpointLog, TornTailIsDiscardedAndTruncated) {
  TempDir dir;
  const std::string manifest = dir.path + "/ck.bin";
  std::uint64_t two_records = 0;
  {
    CheckpointLog log(manifest);
    log.append("key-a", resultWithCycles(100));
    log.append("key-b", resultWithCycles(200));
    two_records = fileSize(manifest);
    log.append("key-c", resultWithCycles(300));
  }
  // Simulate a kill mid-write of the third record: keep half of it.
  const std::uint64_t full = fileSize(manifest);
  truncateTo(manifest, two_records + (full - two_records) / 2);

  // A read-only scan reports the tear without repairing it.
  const auto scanned = CheckpointLog::scan(manifest);
  EXPECT_EQ(scanned.records, 2u);
  EXPECT_TRUE(scanned.torn_tail);
  EXPECT_EQ(scanned.valid_bytes, two_records);
  EXPECT_GT(scanned.discarded_bytes, 0u);

  // Opening for resume truncates back to the intact boundary...
  {
    CheckpointLog log(manifest);
    EXPECT_EQ(log.loaded().records, 2u);
    EXPECT_TRUE(log.loaded().torn_tail);
    EXPECT_EQ(log.find("key-c"), nullptr);
    EXPECT_EQ(fileSize(manifest), two_records);
    // ...and appending resumes from there, producing an intact file.
    EXPECT_TRUE(log.append("key-c", resultWithCycles(301)));
  }
  CheckpointLog log(manifest);
  EXPECT_EQ(log.loaded().records, 3u);
  EXPECT_FALSE(log.loaded().torn_tail);
  ASSERT_NE(log.find("key-c"), nullptr);
  EXPECT_EQ(log.find("key-c")->cycles, 301u);
}

TEST(CheckpointLog, GarbageTailIsDiscarded) {
  TempDir dir;
  const std::string manifest = dir.path + "/ck.bin";
  {
    CheckpointLog log(manifest);
    log.append("key-a", resultWithCycles(100));
  }
  const std::uint64_t one_record = fileSize(manifest);
  appendRaw(manifest, "this is not a record at all");
  CheckpointLog log(manifest);
  EXPECT_EQ(log.loaded().records, 1u);
  EXPECT_TRUE(log.loaded().torn_tail);
  EXPECT_EQ(fileSize(manifest), one_record);
}

TEST(CheckpointLog, ScanReportsKeysInFileOrder) {
  TempDir dir;
  const std::string manifest = dir.path + "/ck.bin";
  {
    CheckpointLog log(manifest);
    log.append("first", resultWithCycles(1));
    log.append("second", resultWithCycles(2));
    log.append("third", resultWithCycles(3));
  }
  std::vector<std::string> keys;
  const auto sr = CheckpointLog::scan(manifest, &keys);
  EXPECT_EQ(sr.records, 3u);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "first");
  EXPECT_EQ(keys[1], "second");
  EXPECT_EQ(keys[2], "third");
}

TEST(CheckpointLog, KilledSweepResumesWithoutRecomputing) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  ASSERT_NE(lu, nullptr);
  std::vector<SweepPoint> points;
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP}) {
    for (const char* ver : {"2d", "4d-aligned"}) {
      SweepPoint p;
      p.kind = kind;
      p.app = "lu";
      p.version = ver;
      p.params = lu->tiny;
      p.procs = 2;
      points.push_back(std::move(p));
    }
  }

  TempDir dir;
  const std::string manifest = dir.path + "/sweep.ck";
  SweepRunner::Config cfg;
  cfg.jobs = 2;
  cfg.checkpoint = manifest;

  // Uninterrupted reference run (no fleet features) for bit-comparison.
  const auto reference = SweepRunner(2).run(points);

  // First run journals everything.
  std::vector<SweepResult> first;
  {
    SweepRunner runner(cfg);
    first = runner.run(points);
    EXPECT_EQ(runner.fleetStats().computed, points.size());
  }

  // "Kill" it mid-sweep: keep two intact records plus a torn third.
  std::vector<std::string> keys;
  std::uint64_t boundary = 0;
  {
    std::string bytes;
    CheckpointLog::scan(manifest, &keys);
    ASSERT_EQ(keys.size(), points.size());
    // Find the byte offset after record 2 by re-encoding is fragile;
    // instead decode incrementally with the public codec.
    std::FILE* f = std::fopen(manifest.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    std::string key;
    SweepResult r;
    std::size_t consumed = 0;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(decodeResult(std::string_view(bytes).substr(boundary),
                               &key, &r, &consumed));
      boundary += consumed;
    }
  }
  truncateTo(manifest, boundary + 7);  // 7 stray bytes of a torn record

  // The resumed run replays 2 points and computes the other 2.
  SweepRunner resumed(cfg);
  const auto second = resumed.run(points);
  EXPECT_EQ(resumed.fleetStats().resumed, 2u);
  EXPECT_EQ(resumed.fleetStats().computed, points.size() - 2);

  ASSERT_EQ(second.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(second[i].ok()) << second[i].error;
    EXPECT_EQ(second[i].cycles, reference[i].cycles) << "point " << i;
    EXPECT_EQ(second[i].base_cycles, reference[i].base_cycles)
        << "point " << i;
    EXPECT_EQ(second[i].app.stats.exec_cycles,
              reference[i].app.stats.exec_cycles)
        << "point " << i;
  }
  // Exactly the journaled prefix came back as resumed.
  const std::size_t resumed_count = static_cast<std::size_t>(
      std::count_if(second.begin(), second.end(),
                    [](const SweepResult& r) { return r.resumed; }));
  EXPECT_EQ(resumed_count, 2u);

  // A third run over the now-complete manifest computes nothing.
  SweepRunner replay(cfg);
  replay.run(points);
  EXPECT_EQ(replay.fleetStats().resumed, points.size());
  EXPECT_EQ(replay.fleetStats().computed, 0u);
}

}  // namespace
}  // namespace rsvm
