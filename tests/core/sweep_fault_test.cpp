// Robustness plumbing through SweepRunner: per-point deadlines convert
// hangs into structured error records (never a hung process), fault
// seeds flow into the platform, and oracle violations surface in the
// result instead of being swallowed.
#include "core/sweep.hpp"

#include "core/app.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rsvm {
namespace {

SweepPoint tinyPoint(const char* app, PlatformKind kind) {
  registerAllApps();
  const AppDesc* d = Registry::instance().find(app);
  EXPECT_NE(d, nullptr);
  SweepPoint p;
  p.kind = kind;
  p.app = app;
  p.version = d->original().name;
  p.params = d->tiny;
  p.procs = 4;
  p.with_baseline = false;
  return p;
}

TEST(SweepFault, DeadlineBecomesTimedOutErrorRecord) {
  // An absurdly tight host deadline: the point must come back as a
  // structured timeout record, not a crash and not a hang.
  SweepPoint p = tinyPoint("lu", PlatformKind::SVM);
  p.deadline_ms = 0.0001;
  SweepRunner runner(1);
  const SweepResult r = runner.run({p}).at(0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.timed_out) << r.error;
  EXPECT_NE(r.error.find("lu"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
}

TEST(SweepFault, FaultSeededTimeoutRetriesOnce) {
  // With a fault seed, a deadline failure gets exactly one same-point
  // retry (to distinguish host-load timeouts from real divergence); the
  // retry is counted in the record.
  SweepPoint p = tinyPoint("lu", PlatformKind::SVM);
  p.fault_seed = 3;
  p.deadline_ms = 0.0001;
  SweepRunner runner(1);
  const SweepResult r = runner.run({p}).at(0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.retries, 1);
}

TEST(SweepFault, CleanPointHasNoRobustnessFlags) {
  SweepPoint p = tinyPoint("lu", PlatformKind::SVM);
  SweepRunner runner(1);
  const SweepResult r = runner.run({p}).at(0);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.oracle_violations, 0u);
}

TEST(SweepFault, OracleCleanUnderGenerousDeadline) {
  // Oracle + fault injection + a deadline that real runs comfortably
  // meet: the point completes, stays correct, and reports zero
  // violations.
  SweepPoint p = tinyPoint("lu", PlatformKind::SVM);
  p.check = CheckLevel::Oracle;
  p.fault_seed = 1;
  p.deadline_ms = 60'000.0;
  SweepRunner runner(1);
  const SweepResult r = runner.run({p}).at(0);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.oracle_violations, 0u);
}

TEST(SweepFault, SameFaultSeedIsCycleReproducible) {
  // The whole point of plan-based injection: a seeded run is a pure
  // function of the seed.
  SweepPoint p = tinyPoint("radix", PlatformKind::NUMA);
  p.fault_seed = 7;
  SweepRunner runner(1);
  const SweepResult a = runner.run({p}).at(0);
  SweepRunner runner2(1);
  const SweepResult b = runner2.run({p}).at(0);
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SweepFault, DifferentFaultSeedsPerturbTiming) {
  SweepPoint p = tinyPoint("radix", PlatformKind::NUMA);
  p.fault_seed = 1;
  SweepPoint q = p;
  q.fault_seed = 2;
  SweepRunner runner(2);
  const auto rs = runner.run({p, q});
  ASSERT_TRUE(rs[0].ok()) << rs[0].error;
  ASSERT_TRUE(rs[1].ok()) << rs[1].error;
  // Both still compute the right answer; the injected jitter shifts the
  // simulated clock.
  EXPECT_NE(rs[0].cycles, rs[1].cycles);
}

}  // namespace
}  // namespace rsvm
