// SweepRunner: host-parallel sweeps must be invisible to simulated time.
// The same point list run with 1 worker and with 8 workers has to yield
// bit-identical per-point RunStats, in submission order, and the registry
// must tolerate concurrent lookups while a sweep is in flight.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rsvm {
namespace {

void expectIdenticalStats(const ProcStats& a, const ProcStats& b, int p) {
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "proc " << p << " bucket " << i;
  }
  EXPECT_EQ(a.reads, b.reads) << "proc " << p;
  EXPECT_EQ(a.writes, b.writes) << "proc " << p;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << "proc " << p;
  EXPECT_EQ(a.l2_misses, b.l2_misses) << "proc " << p;
  EXPECT_EQ(a.page_faults, b.page_faults) << "proc " << p;
  EXPECT_EQ(a.write_faults, b.write_faults) << "proc " << p;
  EXPECT_EQ(a.diffs_created, b.diffs_created) << "proc " << p;
  EXPECT_EQ(a.diff_bytes, b.diff_bytes) << "proc " << p;
  EXPECT_EQ(a.remote_misses, b.remote_misses) << "proc " << p;
  EXPECT_EQ(a.local_misses, b.local_misses) << "proc " << p;
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent) << "proc " << p;
  EXPECT_EQ(a.lock_acquires, b.lock_acquires) << "proc " << p;
  EXPECT_EQ(a.remote_lock_acquires, b.remote_lock_acquires) << "proc " << p;
  EXPECT_EQ(a.barriers, b.barriers) << "proc " << p;
  EXPECT_EQ(a.tasks_executed, b.tasks_executed) << "proc " << p;
  EXPECT_EQ(a.tasks_stolen, b.tasks_stolen) << "proc " << p;
}

std::vector<SweepPoint> samplePoints() {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  const AppDesc* radix = Registry::instance().find("radix");
  std::vector<SweepPoint> points;
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP}) {
    for (const char* ver : {"2d", "4d-aligned"}) {
      SweepPoint p;
      p.kind = kind;
      p.app = "lu";
      p.version = ver;
      p.params = lu->tiny;
      p.procs = 4;
      points.push_back(std::move(p));
    }
  }
  SweepPoint p;
  p.kind = PlatformKind::NUMA;
  p.app = "radix";
  p.version = radix->original().name;
  p.params = radix->tiny;
  p.procs = 2;
  points.push_back(std::move(p));
  return points;
}

TEST(SweepRunner, JobsCountDoesNotChangeSimulatedResults) {
  const auto points = samplePoints();

  const auto serial = SweepRunner(1).run(points);
  const auto parallel = SweepRunner(8).run(points);

  ASSERT_EQ(serial.size(), points.size());
  ASSERT_EQ(parallel.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
    EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << "point " << i;
    EXPECT_EQ(serial[i].base_cycles, parallel[i].base_cycles)
        << "point " << i;
    ASSERT_EQ(serial[i].app.stats.procs.size(),
              parallel[i].app.stats.procs.size());
    for (std::size_t pr = 0; pr < serial[i].app.stats.procs.size(); ++pr) {
      expectIdenticalStats(serial[i].app.stats.procs[pr],
                           parallel[i].app.stats.procs[pr],
                           static_cast<int>(pr));
    }
  }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder) {
  const auto points = samplePoints();
  const auto results = SweepRunner(8).run(points);
  ASSERT_EQ(results.size(), points.size());
  // Each point asked for a distinct (kind, procs) shape; the stats must
  // reflect the submitted processor count slot by slot.
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(results[i].app.stats.nprocs(), points[i].procs)
        << "point " << i;
  }
}

TEST(SweepRunner, SharedBaselinesAreConsistent) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  // Many points sharing one baseline cell, raced across 8 workers: all
  // must observe the same cached uniprocessor time.
  std::vector<SweepPoint> points;
  for (int i = 0; i < 8; ++i) {
    SweepPoint p;
    p.kind = PlatformKind::SMP;
    p.app = "lu";
    p.version = "2d";
    p.params = lu->tiny;
    p.procs = 2;
    points.push_back(std::move(p));
  }
  const auto results = SweepRunner(8).run(points);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.base_cycles, results[0].base_cycles);
    EXPECT_EQ(r.cycles, results[0].cycles);
  }
}

TEST(SweepRunner, FailuresAreAttributedNotFatal) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  std::vector<SweepPoint> points;
  SweepPoint bad;
  bad.kind = PlatformKind::SMP;
  bad.app = "lu";
  bad.version = "no-such-version";
  bad.params = lu->tiny;
  bad.procs = 2;
  points.push_back(bad);
  SweepPoint good = bad;
  good.version = "2d";
  points.push_back(good);
  SweepPoint ghost = bad;
  ghost.app = "no-such-app";
  points.push_back(ghost);

  const auto results = SweepRunner(2).run(points);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_NE(results[0].error.find("no-such-version"), std::string::npos)
      << results[0].error;
  EXPECT_NE(results[0].error.find("lu"), std::string::npos)
      << results[0].error;
  EXPECT_TRUE(results[1].ok()) << results[1].error;  // unaffected neighbor
  EXPECT_FALSE(results[2].ok());
  EXPECT_NE(results[2].error.find("no-such-app"), std::string::npos)
      << results[2].error;
}

TEST(Registry, ConcurrentLookupsDuringASweep) {
  const auto points = samplePoints();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> finders;
  for (int t = 0; t < 4; ++t) {
    finders.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const AppDesc* lu = Registry::instance().find("lu");
        if (lu == nullptr || lu->version("2d") == nullptr) {
          ADD_FAILURE() << "registry lookup failed under concurrency";
          return;
        }
        if (Registry::instance().find("fft") != nullptr) {
          ADD_FAILURE() << "phantom app appeared";
          return;
        }
        registerAllApps();  // idempotent re-registration races the finds
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto results = SweepRunner(4).run(points);
  stop.store(true);
  for (auto& t : finders) t.join();
  EXPECT_GT(lookups.load(), 0u);
  for (const auto& r : results) EXPECT_TRUE(r.ok()) << r.error;
}

}  // namespace
}  // namespace rsvm
