// The tentpole differential property: every platform protocol computes
// the same answer. For the server and index families the "answer" is a
// pair of digests (final data-structure state, per-op results); this
// suite pins them identical across SVM/SMP/DSM/FGS at 1, 4, and 16
// simulated processors, and requires the 4- and 16-proc runs to be
// oracle-clean while doing it -- a protocol that computed the right
// answer by violating coherence invariants still fails.
#include "../common/differential.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rsvm {
namespace {

using testing::DiffOptions;
using testing::DiffRun;
using testing::kAllKinds;
using testing::runCell;

struct Cell {
  const char* app;
  const char* version;
};

// One version per optimization class across the two families keeps the
// matrix affordable; the integration suite covers every version at 4
// procs separately.
const Cell kCells[] = {
    {"server", "orig"},
    {"server", "alg-batch"},
    {"index", "hash-orig"},
    {"index", "btree-ds"},
};

std::string cellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string s = std::string(info.param.app) + "_" + info.param.version;
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class DifferentialPlatforms : public ::testing::TestWithParam<Cell> {};

TEST_P(DifferentialPlatforms, AllPlatformsAgreeAtEveryScale) {
  const Cell& tc = GetParam();
  for (int procs : {1, 4, 16}) {
    // Oracle-clean is part of the acceptance bar at 4 and 16 procs; at
    // 1 proc coherence is trivial, so skip the shadow state there.
    DiffOptions opt;
    opt.check = procs > 1 ? CheckLevel::Oracle : CheckLevel::Off;
    std::vector<DiffRun> runs;
    for (PlatformKind kind : kAllKinds) {
      runs.push_back(runCell(tc.app, tc.version, kind, procs, opt));
    }
    for (const DiffRun& r : runs) {
      if (opt.check == CheckLevel::Oracle) {
        EXPECT_EQ(r.oracle_violations, 0u) << r.label;
      }
      testing::expectSameAnswer(runs.front(), r);
    }
  }
}

TEST_P(DifferentialPlatforms, ProcessorCountDoesNotChangeTheAnswer) {
  // Same platform, different parallelism: stealing and phase rotation
  // redistribute the ops, the digests must not move.
  const Cell& tc = GetParam();
  const DiffRun uni = runCell(tc.app, tc.version, PlatformKind::SVM, 1);
  for (int procs : {4, 16}) {
    testing::expectSameAnswer(
        uni, runCell(tc.app, tc.version, PlatformKind::SVM, procs));
  }
}

INSTANTIATE_TEST_SUITE_P(ServerIndex, DifferentialPlatforms,
                         ::testing::ValuesIn(kCells), cellName);

TEST(DifferentialVersions, RestructuringsDoNotChangeTheAnswer) {
  // Every version of a family is the *same workload* restructured; the
  // digest pair is part of the contract between them. (The index app's
  // hash and btree versions run different mutate phases -- delete vs
  // update -- so versions are only comparable within a structure.)
  registerAllApps();
  const Cell kPairs[][2] = {
      {{"server", "orig"}, {"server", "pa"}},
      {{"server", "orig"}, {"server", "ds"}},
      {{"server", "orig"}, {"server", "alg-batch"}},
      {{"index", "hash-orig"}, {"index", "hash-pa"}},
      {{"index", "btree-orig"}, {"index", "btree-ds"}},
  };
  for (const auto& pair : kPairs) {
    const DiffRun a =
        runCell(pair[0].app, pair[0].version, PlatformKind::NUMA, 4);
    const DiffRun b =
        runCell(pair[1].app, pair[1].version, PlatformKind::NUMA, 4);
    testing::expectSameAnswer(a, b);
  }
}

}  // namespace
}  // namespace rsvm
