// Fiber-backend differential: the asm and ucontext context-switch
// backends must be invisible to the simulation. For the server and
// index families that means bit-identical simulated clocks, identical
// digests, and an identical fold of every per-processor counter --
// i.e. the same execution, not merely the same answer.
#include "../common/differential.hpp"

#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rsvm {
namespace {

using testing::DiffRun;
using testing::runCell;

class BackendGuard {
 public:
  explicit BackendGuard(Fiber::Backend b) : saved_(Fiber::defaultBackend()) {
    Fiber::setDefaultBackend(b);
  }
  ~BackendGuard() { Fiber::setDefaultBackend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Fiber::Backend saved_;
};

struct Cell {
  const char* app;
  const char* version;
  PlatformKind kind;
};

std::string cellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string s = std::string(info.param.app) + "_" + info.param.version +
                  "_" + platformName(info.param.kind);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class DifferentialFibers : public ::testing::TestWithParam<Cell> {};

TEST_P(DifferentialFibers, BackendsProduceIdenticalExecutions) {
  if (!Fiber::asmAvailable()) {
    GTEST_SKIP() << "asm backend not compiled in on this target";
  }
  const Cell& tc = GetParam();
  DiffRun asm_run, uctx_run;
  {
    BackendGuard g(Fiber::Backend::Asm);
    asm_run = runCell(tc.app, tc.version, tc.kind, 8);
  }
  {
    BackendGuard g(Fiber::Backend::Ucontext);
    uctx_run = runCell(tc.app, tc.version, tc.kind, 8);
  }
  testing::expectSameAnswer(asm_run, uctx_run);
  // Stronger than same-answer: the same simulated execution.
  EXPECT_EQ(asm_run.exec_cycles, uctx_run.exec_cycles) << asm_run.label;
  EXPECT_EQ(asm_run.tasks_stolen, uctx_run.tasks_stolen) << asm_run.label;
  EXPECT_EQ(asm_run.allocs, uctx_run.allocs) << asm_run.label;
}

const Cell kCells[] = {
    {"server", "orig", PlatformKind::SVM},
    {"server", "alg-batch", PlatformKind::NUMA},
    {"index", "hash-orig", PlatformKind::SVM},
    {"index", "btree-ds", PlatformKind::SMP},
};

INSTANTIATE_TEST_SUITE_P(ServerIndex, DifferentialFibers,
                         ::testing::ValuesIn(kCells), cellName);

}  // namespace
}  // namespace rsvm
