// Unit tests for the server-shaped workloads: TaskQueues batched
// dequeue semantics (exactly-once, order, counters, split-steal
// privacy) and the family-level invariants the differential harness
// builds on (skew actually forces steals, writes actually allocate).
#include "apps/common/task_queue.hpp"

#include "../common/differential.hpp"
#include "apps/common/zipf.hpp"
#include "runtime/platform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace rsvm {
namespace {

using apps::TaskQueues;

TEST(TaskQueueBatch, DrainsOwnQueueInOrderAndCountsExecuted) {
  auto plat = Platform::create(PlatformKind::SMP, 1);
  TaskQueues::Options opt;
  opt.capacity = 16;
  TaskQueues q(*plat, opt);
  std::vector<std::int32_t> tasks;
  for (std::int32_t i = 0; i < 10; ++i) tasks.push_back(i * 3);
  q.fillInitial(0, tasks);
  std::vector<std::int32_t> got;
  plat->run([&](Ctx& c) {
    std::vector<std::int32_t> batch;
    for (;;) {
      batch.clear();
      const std::size_t n = q.nextBatch(c, batch, 4, /*allow_steal=*/true);
      if (n == 0) break;
      EXPECT_EQ(n, batch.size());
      EXPECT_LE(n, 4u);
      got.insert(got.end(), batch.begin(), batch.end());
    }
  });
  EXPECT_EQ(got, tasks);  // FIFO order preserved, nothing lost or doubled
  EXPECT_EQ(plat->engine().collect().sum(&ProcStats::tasks_executed), 10u);
  EXPECT_EQ(plat->engine().collect().sum(&ProcStats::tasks_stolen), 0u);
}

TEST(TaskQueueBatch, StealsMoveBatchesExactlyOnce) {
  auto plat = Platform::create(PlatformKind::SMP, 2);
  TaskQueues::Options opt;
  opt.capacity = 64;
  TaskQueues q(*plat, opt);
  std::vector<std::int32_t> tasks;
  for (std::int32_t i = 0; i < 40; ++i) tasks.push_back(i);
  q.fillInitial(0, tasks);  // proc 1 starts empty: it can only steal
  q.fillInitial(1, {});
  std::vector<std::vector<std::int32_t>> got(2);
  plat->run([&](Ctx& c) {
    std::vector<std::int32_t> batch;
    for (;;) {
      batch.clear();
      if (q.nextBatch(c, batch, 4, /*allow_steal=*/true) == 0) break;
      auto& mine = got[static_cast<std::size_t>(c.id())];
      mine.insert(mine.end(), batch.begin(), batch.end());
      // Each batch must cost a good fraction of the engine's drift
      // quantum (10k cycles), or proc 0 drains all 40 tasks before its
      // first yield and the thief never sees a backlog.
      c.compute(4000);
    }
  });
  std::set<std::int32_t> all(got[0].begin(), got[0].end());
  all.insert(got[1].begin(), got[1].end());
  EXPECT_EQ(all.size(), 40u) << "lost or duplicated tasks";
  EXPECT_FALSE(got[1].empty()) << "empty-handed thief never stole a batch";
  const RunStats rs = plat->engine().collect();
  EXPECT_EQ(rs.sum(&ProcStats::tasks_executed), 40u);
  EXPECT_EQ(rs.sum(&ProcStats::tasks_stolen), got[1].size());
}

TEST(TaskQueueBatch, SplitStealKeepsPrivateTasksPrivate) {
  auto plat = Platform::create(PlatformKind::SMP, 2);
  TaskQueues::Options opt;
  opt.capacity = 16;
  opt.split_steal = true;
  opt.public_fraction = 0.25;  // 2 of proc 0's 8 tasks are stealable
  TaskQueues q(*plat, opt);
  std::vector<std::int32_t> tasks;
  for (std::int32_t i = 0; i < 8; ++i) tasks.push_back(i);
  q.fillInitial(0, tasks);
  q.fillInitial(1, {});
  plat->run([&](Ctx& c) {
    std::vector<std::int32_t> batch;
    for (;;) {
      batch.clear();
      if (q.nextBatch(c, batch, 8, /*allow_steal=*/true) == 0) break;
      c.compute(10);
    }
  });
  const RunStats rs = plat->engine().collect();
  EXPECT_EQ(rs.sum(&ProcStats::tasks_executed), 8u);
  EXPECT_LE(rs.sum(&ProcStats::tasks_stolen), 2u)
      << "private queue entries leaked to a thief";
}

TEST(ServerWorkload, SkewForcesStealingAndWritesAllocate) {
  // The server's hot-shard assignment (double share on proc 0) must
  // actually produce steals, and every logged write an allocation --
  // otherwise the contention the bench sweeps measure isn't there.
  const testing::DiffRun r =
      testing::runCell("server", "orig", PlatformKind::SMP, 4);
  EXPECT_TRUE(r.correct) << r.note;
  EXPECT_GT(r.tasks_stolen, 0u) << "skewed queues produced no steals";
  EXPECT_GT(r.allocs, 0u) << "write log never allocated";
}

TEST(ServerWorkload, BatchedVersionStealsInBatches) {
  const testing::DiffRun one =
      testing::runCell("server", "ds", PlatformKind::SMP, 4);
  const testing::DiffRun batched =
      testing::runCell("server", "alg-batch", PlatformKind::SMP, 4);
  EXPECT_TRUE(one.correct) << one.note;
  EXPECT_TRUE(batched.correct) << batched.note;
  testing::expectSameAnswer(one, batched);
}

TEST(ZipfPick, ThetaZeroIsExactlyTheLegacyModulo) {
  // --zipf=0 must be bit-compatible with the pre-skew uniform pick, or
  // every golden digest and checked-in bench report would shift.
  for (std::uint64_t u : {0ull, 1ull, 17ull, 0xdeadbeefull,
                          0xffffffffffffffull}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      EXPECT_EQ(apps::zipfPick(u, n, 0.0), u % n) << "u=" << u << " n=" << n;
    }
  }
}

TEST(ZipfPick, StaysInRangeAndSkewsTowardLowIndices) {
  const std::size_t n = 100;
  double mean_uniform = 0, mean_mild = 0, mean_hot = 0;
  const int trials = 4096;
  std::uint64_t u = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < trials; ++i) {
    u = u * 6364136223846793005ull + 1442695040888963407ull;  // LCG walk
    const std::size_t a = apps::zipfPick(u, n, 0.0);
    const std::size_t b = apps::zipfPick(u, n, 0.6);
    const std::size_t c = apps::zipfPick(u, n, 0.9);
    ASSERT_LT(a, n);
    ASSERT_LT(b, n);
    ASSERT_LT(c, n);
    mean_uniform += static_cast<double>(a);
    mean_mild += static_cast<double>(b);
    mean_hot += static_cast<double>(c);
  }
  // Higher theta concentrates picks on hot (low) keys; the same u
  // sequence makes the comparison deterministic.
  EXPECT_LT(mean_hot, mean_mild);
  EXPECT_LT(mean_mild, mean_uniform);
}

TEST(ZipfPick, DegenerateUniverseAlwaysPicksZero) {
  EXPECT_EQ(apps::zipfPick(0xabcdefull, 1, 0.9), 0u);
  EXPECT_EQ(apps::zipfPick(0xabcdefull, 0, 0.9), 0u);
}

TEST(ServerWorkload, ZipfSkewIsAPlatformIndependentWorkload) {
  // Skewed key popularity is a different *workload*, not a different
  // *execution*: platforms must still agree on the digests within a
  // skew level, and the skewed digests must differ from uniform (if
  // they didn't, the knob would be dead).
  testing::DiffOptions skew;
  skew.zipf = 0.9;
  const testing::DiffRun smp =
      testing::runCell("server", "orig", PlatformKind::SMP, 4, skew);
  const testing::DiffRun svm =
      testing::runCell("server", "orig", PlatformKind::SVM, 4, skew);
  testing::expectSameAnswer(smp, svm);

  const testing::DiffRun uniform =
      testing::runCell("server", "orig", PlatformKind::SMP, 4);
  EXPECT_TRUE(uniform.correct) << uniform.note;
  EXPECT_NE(uniform.state_hash, smp.state_hash)
      << "zipf=0.9 produced the uniform workload's state";
  EXPECT_NE(uniform.result_hash, smp.result_hash)
      << "zipf=0.9 produced the uniform workload's results";
}

TEST(ServerWorkload, EveryVersionSurvivesSkew) {
  registerAllApps();
  const AppDesc* app = Registry::instance().find("server");
  ASSERT_NE(app, nullptr);
  testing::DiffOptions skew;
  skew.zipf = 0.6;
  for (const auto& ver : app->versions) {
    const testing::DiffRun r = testing::runCell(
        "server", ver.name.c_str(), PlatformKind::SMP, 4, skew);
    EXPECT_TRUE(r.correct) << r.label << ": " << r.note;
    EXPECT_NE(r.state_hash, 0u) << r.label;
  }
}

TEST(IndexWorkload, HashAllocationCountIsDigestStable) {
  // The chained-hash versions reclaim unlinked nodes through
  // per-processor free lists; the allocation count (counted at every
  // insert, reuse or not) is a deterministic function of the workload
  // alone -- inserts plus reinserts of deleted keys -- so every
  // platform, processor count, and padding variant must report the
  // same total. A drifting count would mean lost or doubled reclaims.
  const testing::DiffRun base =
      testing::runCell("index", "hash-orig", PlatformKind::SMP, 4);
  ASSERT_TRUE(base.correct) << base.note;
  EXPECT_GT(base.allocs, 0u);
  for (const PlatformKind kind : testing::kAllKinds) {
    for (const int procs : {2, 4}) {
      for (const char* ver : {"hash-orig", "hash-pa"}) {
        const testing::DiffRun r =
            testing::runCell("index", ver, kind, procs);
        EXPECT_TRUE(r.correct) << r.label << ": " << r.note;
        EXPECT_EQ(r.allocs, base.allocs)
            << r.label << ": alloc count drifted from " << base.label;
      }
    }
  }
}

TEST(IndexWorkload, BothStructuresHoldTheSameMappings) {
  // hash and btree run the same key universe; their *state* digests
  // differ by construction (different mutate phases), but each must be
  // internally consistent and nonzero at every version.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("index");
  ASSERT_NE(app, nullptr);
  ASSERT_EQ(app->versions.size(), 4u);
  for (const auto& ver : app->versions) {
    const testing::DiffRun r =
        testing::runCell("index", ver.name.c_str(), PlatformKind::SMP, 4);
    EXPECT_TRUE(r.correct) << r.label << ": " << r.note;
    EXPECT_NE(r.state_hash, 0u) << r.label;
    EXPECT_GT(r.allocs, 0u) << r.label << ": inserts never allocated nodes";
  }
}

}  // namespace
}  // namespace rsvm
