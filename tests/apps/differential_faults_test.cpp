// Fault-injection differential: seeded faults perturb *schedules*, not
// *answers*. A faulted run of the server/index workloads must (a) be
// bit-reproducible for the same seed -- same simulated clock, same
// digests -- and (b) produce exactly the digests of the unfaulted run,
// because delayed grants and spurious invalidations are legal
// executions of the same program.
#include "../common/differential.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rsvm {
namespace {

using testing::DiffOptions;
using testing::DiffRun;
using testing::runCell;

struct Cell {
  const char* app;
  const char* version;
  PlatformKind kind;
};

std::string cellName(const ::testing::TestParamInfo<Cell>& info) {
  std::string s = std::string(info.param.app) + "_" + info.param.version +
                  "_" + platformName(info.param.kind);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class DifferentialFaults : public ::testing::TestWithParam<Cell> {};

TEST_P(DifferentialFaults, SeededRunsAreBitReproducible) {
  const Cell& tc = GetParam();
  for (std::uint64_t seed : {3ull, 11ull}) {
    DiffOptions opt;
    opt.fault_seed = seed;
    const DiffRun a = runCell(tc.app, tc.version, tc.kind, 8, opt);
    const DiffRun b = runCell(tc.app, tc.version, tc.kind, 8, opt);
    testing::expectSameAnswer(a, b);
    EXPECT_EQ(a.exec_cycles, b.exec_cycles)
        << a.label << " seed " << seed << " not bit-reproducible";
  }
}

TEST_P(DifferentialFaults, FaultsNeverChangeTheAnswer) {
  const Cell& tc = GetParam();
  const DiffRun clean = runCell(tc.app, tc.version, tc.kind, 8);
  for (std::uint64_t seed : {1ull, 9ull}) {
    DiffOptions opt;
    opt.fault_seed = seed;
    testing::expectSameAnswer(clean,
                              runCell(tc.app, tc.version, tc.kind, 8, opt));
  }
}

const Cell kCells[] = {
    {"server", "orig", PlatformKind::SVM},
    {"server", "ds", PlatformKind::NUMA},
    {"index", "hash-pa", PlatformKind::SVM},
    {"index", "btree-orig", PlatformKind::NUMA},
};

INSTANTIATE_TEST_SUITE_P(ServerIndex, DifferentialFaults,
                         ::testing::ValuesIn(kCells), cellName);

}  // namespace
}  // namespace rsvm
