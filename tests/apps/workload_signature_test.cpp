// Workload-signature characterization: each application's original
// version must exhibit the protocol behaviour the paper attributes to it
// (section 2.2). These pin the *mechanisms* -- if a refactor silently
// removes Radix's scattered writes or Raytrace's per-ray lock, the
// reproduction is no longer reproducing the paper, even if it's faster.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

class Signature : public ::testing::Test {
 protected:
  static RunStats runOrig(const char* app_name) {
    registerAllApps();
    const AppDesc* app = Registry::instance().find(app_name);
    return Experiment::runOnce(PlatformKind::SVM, app->original(), app->tiny,
                               8)
        .stats;
  }
};

TEST_F(Signature, LuIsBarrierStructuredAndLockFree) {
  const RunStats rs = runOrig("lu");
  EXPECT_EQ(rs.sum(&ProcStats::lock_acquires), 0u);
  EXPECT_GT(rs.procs[0].barriers, 10u);  // 3 per elimination step
  // 2-d layout: writers are not page-home owners -> twins and diffs.
  EXPECT_GT(rs.sum(&ProcStats::write_faults), 0u);
}

TEST_F(Signature, OceanHasManyBarriersAndAReductionLock) {
  const RunStats rs = runOrig("ocean");
  // ~23 barrier-separated phases per multigrid time-step.
  EXPECT_GE(rs.procs[0].barriers, 20u);
  EXPECT_GT(rs.sum(&ProcStats::lock_acquires), 0u);   // residual reduction
  EXPECT_GT(rs.sum(&ProcStats::page_faults), 0u);     // boundary exchange
}

TEST_F(Signature, VolrendUsesTaskQueuesAndStealing) {
  const RunStats rs = runOrig("volrend");
  EXPECT_GT(rs.sum(&ProcStats::tasks_executed), 0u);
  EXPECT_GT(rs.sum(&ProcStats::lock_acquires),
            rs.sum(&ProcStats::tasks_executed) / 2);  // queue ops are locked
}

TEST_F(Signature, RaytraceLocksOncePerPixel) {
  const RunStats rs = runOrig("raytrace");
  // 32x32 tiny image: >= one stats-lock acquire per pixel plus queue ops.
  EXPECT_GE(rs.sum(&ProcStats::lock_acquires), 1024u);
  EXPECT_GT(rs.bucketTotal(Bucket::LockWait),
            rs.bucketTotal(Bucket::BarrierWait));
}

TEST_F(Signature, BarnesIsLockIntensiveInTreeBuild) {
  const RunStats rs = runOrig("barnes");
  // Shared-tree insertion: locks scale with bodies (512 tiny, 2 steps).
  EXPECT_GT(rs.sum(&ProcStats::lock_acquires), 512u);
  EXPECT_GT(rs.sum(&ProcStats::remote_lock_acquires), 50u);
}

TEST_F(Signature, RadixMovesBulkDataThroughDiffs) {
  const RunStats rs = runOrig("radix");
  // The permutation writes nearly every output page remotely: diff bytes
  // are of the order of the key array itself (16K keys * 4 B, 2 passes).
  EXPECT_GT(rs.sum(&ProcStats::diff_bytes), 32'000u);
  EXPECT_EQ(rs.sum(&ProcStats::tasks_stolen), 0u);  // no task queues
}

TEST_F(Signature, ShearWarpIsBarrierPhasedWithRedistribution) {
  const RunStats rs = runOrig("shearwarp");
  EXPECT_GT(rs.procs[0].barriers, 2u);  // per-frame phase barriers
  // The warp re-reads intermediate scanlines written by others.
  EXPECT_GT(rs.sum(&ProcStats::page_faults), 8u);
  EXPECT_EQ(rs.sum(&ProcStats::lock_acquires), 0u);
}

}  // namespace
}  // namespace rsvm
