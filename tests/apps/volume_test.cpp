// Synthetic volume and RLE encoder invariants (the substitute for the
// paper's CT head data set -- see DESIGN.md).
#include "apps/common/volume.hpp"

#include <gtest/gtest.h>

namespace rsvm::apps {
namespace {

TEST(Volume, HeadHasEmptyBorderAndDenseShell) {
  const Volume v = makeHeadVolume(64, 64, 56, 1);
  // Corners are empty space.
  EXPECT_EQ(v.at(0, 0, 0), 0);
  EXPECT_EQ(v.at(63, 63, 55), 0);
  // Center is tissue.
  EXPECT_GT(v.at(32, 32, 28), 40);
  // Some voxel on the shell radius is bone-dense.
  bool found_bone = false;
  for (int x = 0; x < 64; ++x) {
    if (v.at(x, 32, 28) > 180) found_bone = true;
  }
  EXPECT_TRUE(found_bone);
}

TEST(Volume, DeterministicPerSeed) {
  const Volume a = makeHeadVolume(32, 32, 28, 7);
  const Volume b = makeHeadVolume(32, 32, 28, 7);
  const Volume c = makeHeadVolume(32, 32, 28, 8);
  EXPECT_EQ(a.density, b.density);
  EXPECT_NE(a.density, c.density);
}

TEST(Volume, OpacityTransferFunction) {
  EXPECT_EQ(opacityOf(0), 0.0f);
  EXPECT_EQ(opacityOf(39), 0.0f);
  EXPECT_GT(opacityOf(40), 0.0f);
  EXPECT_GT(opacityOf(200), opacityOf(100));
  EXPECT_LE(opacityOf(255), 1.0f);
}

TEST(Rle, RoundTripReconstructsNonEmptyVoxels) {
  const Volume v = makeHeadVolume(48, 48, 40, 3);
  const RleVolume r = rleEncode(v, 40);
  for (int z = 0; z < v.nz; ++z) {
    for (int y = 0; y < v.ny; ++y) {
      const int li = r.lineIndex(y, z);
      const std::int32_t first = r.line_first[static_cast<std::size_t>(li)];
      const std::int32_t cnt = r.line_count[static_cast<std::size_t>(li)];
      int x = 0;
      for (std::int32_t k = 0; k < cnt; ++k) {
        const RleVolume::Run& run = r.runs[static_cast<std::size_t>(first + k)];
        for (std::int32_t s = 0; s < run.skip; ++s, ++x) {
          ASSERT_LT(v.at(x, y, z), 40) << x << "," << y << "," << z;
        }
        for (std::int32_t s = 0; s < run.count; ++s, ++x) {
          ASSERT_EQ(r.samples[static_cast<std::size_t>(run.offset + s)],
                    v.at(x, y, z));
        }
      }
      // Any trailing voxels not covered by runs must be empty.
      for (; x < v.nx; ++x) {
        ASSERT_LT(v.at(x, y, z), 40);
      }
    }
  }
}

TEST(Rle, CompressesEmptySpace) {
  const Volume v = makeHeadVolume(64, 64, 56, 5);
  const RleVolume r = rleEncode(v, 40);
  // The head occupies well under the full box: samples << voxels.
  EXPECT_LT(r.samples.size(), v.size() / 2);
  EXPECT_GT(r.samples.size(), v.size() / 20);
}

TEST(Rle, LineIndexingCoversEveryScanline) {
  const Volume v = makeHeadVolume(16, 16, 12, 2);
  const RleVolume r = rleEncode(v, 40);
  EXPECT_EQ(r.line_first.size(), static_cast<std::size_t>(16 * 12));
  EXPECT_EQ(r.line_count.size(), static_cast<std::size_t>(16 * 12));
}

}  // namespace
}  // namespace rsvm::apps
