// Unit tests for the set-associative cache model and the address space.
#include "mem/address_space.hpp"
#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(AddressSpace, AllocatesAlignedNonOverlapping) {
  AddressSpace as(1 << 20);
  const SimAddr a = as.allocate(100, 64);
  const SimAddr b = as.allocate(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_NE(a, 0u);  // page 0 is reserved as a null sentinel
}

TEST(AddressSpace, HostPointersAreStableAndWritable) {
  AddressSpace as(1 << 20);
  const SimAddr a = as.allocate(sizeof(double) * 8, alignof(double));
  double* d = as.hostAs<double>(a);
  d[0] = 3.5;
  d[7] = -1.0;
  EXPECT_EQ(as.hostAs<double>(a)[0], 3.5);
  EXPECT_EQ(as.hostAs<double>(a)[7], -1.0);
}

TEST(AddressSpace, ThrowsWhenExhausted) {
  AddressSpace as(64 * 1024);
  EXPECT_THROW(as.allocate(1 << 20, 8), std::bad_alloc);
}

TEST(AddressSpace, RejectsBadAlignment) {
  AddressSpace as(1 << 20);
  EXPECT_THROW(as.allocate(8, 3), std::invalid_argument);
}

TEST(Cache, MissThenHit) {
  Cache c({1024, 32, 2});
  EXPECT_FALSE(c.access(0x100, false).hit);
  c.fill(0x100, LineState::Shared, nullptr);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x11f, false).hit);   // same 32 B line
  EXPECT_FALSE(c.access(0x120, false).hit);  // next line
}

TEST(Cache, WriteHitOnSharedReportsUpgrade) {
  Cache c({1024, 32, 2});
  c.fill(0x40, LineState::Shared, nullptr);
  const auto r = c.access(0x40, true);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(r.upgrade);
  c.setState(0x40, LineState::Modified);
  const auto r2 = c.access(0x40, true);
  EXPECT_TRUE(r2.hit);
  EXPECT_FALSE(r2.upgrade);
}

TEST(Cache, DirectMappedConflict) {
  // 1 KB direct-mapped, 32 B lines -> 32 sets; addresses 1 KB apart
  // conflict in set 0.
  Cache c({1024, 32, 1});
  c.fill(0x0, LineState::Shared, nullptr);
  EXPECT_TRUE(c.access(0x0, false).hit);
  c.fill(0x400, LineState::Shared, nullptr);  // evicts 0x0
  EXPECT_FALSE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x400, false).hit);
}

TEST(Cache, LruEvictionInSet) {
  Cache c({1024, 32, 2});  // 16 sets; 0x0, 0x200, 0x400 share set 0
  c.fill(0x0, LineState::Shared, nullptr);
  c.fill(0x200, LineState::Shared, nullptr);
  ASSERT_TRUE(c.access(0x0, false).hit);  // 0x200 becomes LRU
  c.fill(0x400, LineState::Shared, nullptr);
  EXPECT_TRUE(c.access(0x0, false).hit);
  EXPECT_FALSE(c.access(0x200, false).hit);
  EXPECT_TRUE(c.access(0x400, false).hit);
}

TEST(Cache, LruTickSurvivesUint32Wraparound) {
  // The LRU tick is a monotonically increasing counter shared by all
  // sets. A long run (the tick advances on every hit and every fill)
  // pushes it past 2^32; with a 32-bit counter newly-touched lines would
  // wrap to small tick values and look *older* than stale ones,
  // inverting eviction order. Seed the counter just below the 32-bit
  // boundary and check that recency is still ordered across it.
  Cache c({1024, 32, 2});  // 16 sets; 0x0, 0x200, 0x400 share set 0
  c.seedLruTick((1ull << 32) - 2);
  c.fill(0x0, LineState::Shared, nullptr);    // tick 2^32 - 1
  c.fill(0x200, LineState::Shared, nullptr);  // tick 2^32 (wraps to 0 in u32)
  ASSERT_TRUE(c.access(0x200, false).hit);    // tick 2^32 + 1
  // 0x0 is the true LRU. Under a wrapped 32-bit tick, 0x200's tick (0)
  // would compare below 0x0's (2^32 - 1) and 0x200 would be evicted.
  c.fill(0x400, LineState::Shared, nullptr);
  EXPECT_FALSE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x200, false).hit);
  EXPECT_TRUE(c.access(0x400, false).hit);
}

TEST(Cache, ModifiedVictimReportsWriteback) {
  Cache c({64, 32, 1});  // 2 sets
  c.fill(0x0, LineState::Modified, nullptr);
  SimAddr victim = 0;
  EXPECT_TRUE(c.fill(0x40, LineState::Shared, &victim));  // set 0 again
  EXPECT_EQ(victim, 0x0u);
}

TEST(Cache, InvalidateAndDowngrade) {
  Cache c({1024, 32, 2});
  c.fill(0x80, LineState::Modified, nullptr);
  EXPECT_TRUE(c.downgrade(0x80));
  EXPECT_EQ(c.probe(0x80), LineState::Shared);
  EXPECT_FALSE(c.downgrade(0x80));  // already Shared
  EXPECT_EQ(c.invalidate(0x80), LineState::Shared);
  EXPECT_EQ(c.probe(0x80), LineState::Invalid);
  EXPECT_EQ(c.invalidate(0x80), LineState::Invalid);  // idempotent
}

TEST(Cache, InvalidateRangeCoversWholePage) {
  Cache c({8192, 32, 2});
  for (SimAddr a = 0; a < 4096; a += 32) c.fill(a, LineState::Shared, nullptr);
  c.invalidateRange(0, 4096);
  for (SimAddr a = 0; a < 4096; a += 32) {
    EXPECT_EQ(c.probe(a), LineState::Invalid) << "addr " << a;
  }
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({1024, 24, 2}), std::invalid_argument);  // non-pow2 line
  EXPECT_THROW(Cache({1000, 32, 2}), std::invalid_argument);  // bad size
  EXPECT_THROW(Cache({1024, 32, 0}), std::invalid_argument);  // zero assoc
}

// Parameterized sweep: geometry invariants hold for many configurations.
class CacheGeometry : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CacheGeometry, FillThenHitEverywhere) {
  const CacheConfig cfg = GetParam();
  Cache c(cfg);
  // Fill exactly size/line distinct lines contiguously: all must hit.
  const std::size_t nlines = cfg.size_bytes / cfg.line_bytes;
  for (std::size_t i = 0; i < nlines; ++i) {
    c.fill(static_cast<SimAddr>(i) * cfg.line_bytes, LineState::Shared,
           nullptr);
  }
  for (std::size_t i = 0; i < nlines; ++i) {
    EXPECT_TRUE(
        c.access(static_cast<SimAddr>(i) * cfg.line_bytes, false).hit);
  }
  // One more line evicts exactly one resident line.
  c.fill(static_cast<SimAddr>(nlines) * cfg.line_bytes, LineState::Shared,
         nullptr);
  int hits = 0;
  for (std::size_t i = 0; i <= nlines; ++i) {
    if (c.access(static_cast<SimAddr>(i) * cfg.line_bytes, false).hit) ++hits;
  }
  EXPECT_EQ(hits, static_cast<int>(nlines));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(CacheConfig{8 * 1024, 32, 1},
                      CacheConfig{512 * 1024, 32, 2},
                      CacheConfig{16 * 1024, 32, 1},
                      CacheConfig{1024 * 1024, 64, 4},
                      CacheConfig{1024 * 1024, 128, 1},
                      CacheConfig{4096, 64, 2}));

}  // namespace
}  // namespace rsvm
