// Distributed task queue semantics: work conservation, stealing,
// padding/split options.
#include "apps/common/task_queue.hpp"
#include "proto/numa/numa_platform.hpp"
#include "proto/svm/svm_platform.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace rsvm {
namespace {

std::vector<std::int32_t> iota(int n, int from = 0) {
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), from);
  return v;
}

TEST(TaskQueues, OwnerDrainsOwnQueueInOrder) {
  SvmPlatform plat(2);
  apps::TaskQueues q(plat, {.capacity = 8});
  q.fillInitial(0, iota(5));
  std::vector<std::int32_t> got;
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (;;) {
        const std::int32_t t = q.next(c, false);
        if (t < 0) break;
        got.push_back(t);
      }
    }
  });
  EXPECT_EQ(got, iota(5));
}

TEST(TaskQueues, EveryTaskExecutesExactlyOnceWithStealing) {
  NumaPlatform plat(4);
  apps::TaskQueues q(plat, {.capacity = 64});
  for (int p = 0; p < 4; ++p) q.fillInitial(p, iota(16, p * 16));
  std::set<std::int32_t> done;
  plat.run([&](Ctx& c) {
    for (;;) {
      const std::int32_t t = q.next(c, true);
      if (t < 0) break;
      EXPECT_TRUE(done.insert(t).second) << "task " << t << " ran twice";
      // Uneven work so fast processors go stealing.
      c.compute(static_cast<Cycles>(100 + (t % 16) * 300));
    }
  });
  EXPECT_EQ(done.size(), 64u);
}

TEST(TaskQueues, StealingMovesWorkFromLoadedVictims) {
  NumaPlatform plat(4);
  apps::TaskQueues q(plat, {.capacity = 64});
  q.fillInitial(0, iota(40));  // all work at processor 0
  for (int p = 1; p < 4; ++p) q.fillInitial(p, {});
  plat.run([&](Ctx& c) {
    for (;;) {
      const std::int32_t t = q.next(c, true);
      if (t < 0) break;
      c.compute(2000);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.sum(&ProcStats::tasks_stolen), 10u);
  EXPECT_EQ(rs.sum(&ProcStats::tasks_executed), 40u);
}

TEST(TaskQueues, SplitQueuesKeepPrivatePortionUnstealable) {
  NumaPlatform plat(2);
  apps::TaskQueues q(plat, {.capacity = 64, .entry_stride_words = 1,
                            .split_steal = true, .public_fraction = 0.25});
  q.fillInitial(0, iota(16));
  q.fillInitial(1, {});
  std::vector<std::int32_t> stolen_by_1;
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      for (;;) {
        const std::int32_t t = q.steal(c, 0);
        if (t < 0) break;
        stolen_by_1.push_back(t);
      }
    }
  });
  // Only the public 25% tail (tasks 12..15) is stealable.
  EXPECT_EQ(stolen_by_1.size(), 4u);
  for (std::int32_t t : stolen_by_1) EXPECT_GE(t, 12);
}

TEST(TaskQueues, PaddedEntriesLandOnDistinctPages) {
  SvmPlatform plat(2);
  apps::TaskQueues q(plat, {.capacity = 4, .entry_stride_words = 1024});
  q.fillInitial(0, iota(4));
  std::vector<std::int32_t> got;
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (;;) {
        const std::int32_t t = q.next(c, false);
        if (t < 0) break;
        got.push_back(t);
      }
    }
  });
  EXPECT_EQ(got, iota(4));
}

TEST(TaskQueues, RefillRestoresAllTasks) {
  NumaPlatform plat(2);
  apps::TaskQueues q(plat, {.capacity = 16});
  q.fillInitial(0, iota(8));
  q.fillInitial(1, {});
  int total = 0;
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (int round = 0; round < 3; ++round) {
        if (round > 0) q.refill(c, iota(8));
        while (q.next(c, false) >= 0) ++total;
      }
    }
  });
  EXPECT_EQ(total, 24);
}

}  // namespace
}  // namespace rsvm
