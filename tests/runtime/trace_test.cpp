// Protocol trace facility (runtime/trace.hpp).
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"
#include "runtime/trace.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Trace, RecordsFaultsTwinsAndDiffs) {
  SvmPlatform plat(2);
  TraceRecorder rec;
  plat.trace = rec.hook();
  SharedArray<int> a(plat, 2048, HomePolicy::node(0));  // two pages
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      a.set(c, 0, 1);     // fault + twin on page 0
      a.set(c, 1024, 2);  // fault + twin on page 1
    }
    c.barrier(bar);  // diffs flush
  });
  EXPECT_EQ(rec.count(TraceEvent::Kind::PageFault), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::TwinCreate), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::DiffSend), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::BarrierArrive), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::BarrierDepart), 2u);
}

TEST(Trace, HotPagesRanksByFaultCount) {
  SvmPlatform plat(3);
  TraceRecorder rec;
  plat.trace = rec.hook();
  SharedArray<int> a(plat, 2048, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int r = 0; r < 3; ++r) {
      if (c.id() == 0) a.set(c, 0, r);         // page 0 written each round
      if (c.id() != 0) a.get(c, 0);            // both readers re-fault it
      if (c.id() == 1 && r == 0) a.get(c, 1024);  // page 1 faulted once
      c.barrier(bar);
    }
  });
  const auto hot = rec.hotPages(2);
  ASSERT_GE(hot.size(), 2u);
  EXPECT_GT(hot[0].second, hot[1].second);
  EXPECT_EQ(hot[0].first, a.base() / 4096);  // page 0 is hottest
}

TEST(Trace, LockProfileSeparatesWaitFromHold) {
  SvmPlatform plat(2);
  TraceRecorder rec;
  plat.trace = rec.hook();
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    c.lock(lk);
    c.compute(5'000);  // long critical section
    c.unlock(lk);
  });
  const auto profiles = rec.lockProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].acquires, 2u);
  // One processor waited for the other's 5k-cycle critical section.
  EXPECT_GE(profiles[0].total_wait, 5'000u);
  EXPECT_GE(profiles[0].total_held, 10'000u);
}

TEST(Trace, ZeroOverheadWhenUnset) {
  auto run = [](bool traced) {
    SvmPlatform plat(2);
    TraceRecorder rec;
    if (traced) plat.trace = rec.hook();
    SharedArray<int> a(plat, 1024, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int i = 0; i < 100; ++i) a.set(c, static_cast<std::size_t>(i), i);
      }
    });
    return plat.engine().collect().exec_cycles;
  };
  // Tracing must not change simulated time at all.
  EXPECT_EQ(run(false), run(true));
}

// ---- TraceRecorder analyses on hand-constructed event sequences ----

TraceEvent at(TraceEvent::Kind k, ProcId p, Cycles t, std::uint64_t id) {
  return TraceEvent{k, p, t, id, 0};
}

TEST(Trace, AnalysesAreEmptyOnZeroEvents) {
  TraceRecorder rec;
  EXPECT_TRUE(rec.hotPages().empty());
  EXPECT_TRUE(rec.lockProfiles().empty());
  EXPECT_NE(rec.report().find("0 events"), std::string::npos);
}

TEST(Trace, HotPagesRanksHandConstructedFaults) {
  TraceRecorder rec;
  for (int i = 0; i < 3; ++i) rec.record(at(TraceEvent::Kind::PageFault, 0, 0, 5));
  for (int i = 0; i < 2; ++i) rec.record(at(TraceEvent::Kind::PageFault, 1, 0, 9));
  rec.record(at(TraceEvent::Kind::PageFault, 0, 0, 7));
  const auto hot = rec.hotPages(10);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_EQ(hot[0], (std::pair<std::uint64_t, std::size_t>{5, 3}));
  EXPECT_EQ(hot[1], (std::pair<std::uint64_t, std::size_t>{9, 2}));
  EXPECT_EQ(hot[2], (std::pair<std::uint64_t, std::size_t>{7, 1}));
  EXPECT_EQ(rec.hotPages(1).size(), 1u);  // top_n truncates
}

TEST(Trace, LockProfileAccumulatesWaitAndHoldAcrossProcs) {
  TraceRecorder rec;
  rec.record(at(TraceEvent::Kind::LockAcquire, 0, 100, 3));
  rec.record(at(TraceEvent::Kind::LockAcquire, 1, 120, 3));
  rec.record(at(TraceEvent::Kind::LockGrant, 0, 150, 3));
  rec.record(at(TraceEvent::Kind::LockRelease, 0, 400, 3));
  rec.record(at(TraceEvent::Kind::LockGrant, 1, 400, 3));
  rec.record(at(TraceEvent::Kind::LockRelease, 1, 500, 3));
  const auto profiles = rec.lockProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].lock, 3u);
  EXPECT_EQ(profiles[0].acquires, 2u);
  EXPECT_EQ(profiles[0].total_wait, 50u + 280u);
  EXPECT_EQ(profiles[0].total_held, 250u + 100u);
}

TEST(Trace, AcquireWithoutGrantProducesNoProfile) {
  TraceRecorder rec;
  rec.record(at(TraceEvent::Kind::LockAcquire, 0, 100, 3));
  EXPECT_TRUE(rec.lockProfiles().empty());
}

TEST(Trace, GrantWithoutAcquireCountsZeroWait) {
  TraceRecorder rec;
  rec.record(at(TraceEvent::Kind::LockGrant, 0, 200, 3));
  rec.record(at(TraceEvent::Kind::LockRelease, 0, 450, 3));
  const auto profiles = rec.lockProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].acquires, 1u);
  EXPECT_EQ(profiles[0].total_wait, 0u);
  EXPECT_EQ(profiles[0].total_held, 250u);
}

TEST(Trace, PerAccessEventsAreCountedNotStored) {
  TraceRecorder rec;
  for (int i = 0; i < 3; ++i) {
    rec.record(TraceEvent{TraceEvent::Kind::SharedRead, 0, 0, 0x10, 8});
  }
  rec.record(TraceEvent{TraceEvent::Kind::SharedWrite, 1, 0, 0x18, 8});
  rec.record(TraceEvent{TraceEvent::Kind::RacyRead, 2, 0, 0x20, 8});
  EXPECT_TRUE(rec.events().empty());  // bounded memory under access streams
  EXPECT_EQ(rec.count(TraceEvent::Kind::SharedRead), 3u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::SharedWrite), 1u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::RacyRead), 1u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::RacyWrite), 0u);
}

TEST(Trace, TeeHooksFanOutToBothSinks) {
  TraceRecorder a;
  TraceRecorder b;
  TraceHook tee = teeHooks(a.hook(), b.hook());
  tee(at(TraceEvent::Kind::PageFault, 0, 10, 42));
  EXPECT_EQ(a.count(TraceEvent::Kind::PageFault), 1u);
  EXPECT_EQ(b.count(TraceEvent::Kind::PageFault), 1u);
  // A null side is tolerated.
  TraceHook half = teeHooks(a.hook(), nullptr);
  half(at(TraceEvent::Kind::PageFault, 0, 11, 42));
  EXPECT_EQ(a.count(TraceEvent::Kind::PageFault), 2u);
}

TEST(Trace, ReportMentionsKeyQuantities) {
  SvmPlatform plat(2);
  TraceRecorder rec;
  plat.trace = rec.hook();
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    c.lock(lk);
    a.set(c, 0, c.id());
    c.unlock(lk);
  });
  const std::string rep = rec.report();
  EXPECT_NE(rep.find("hot pages"), std::string::npos);
  EXPECT_NE(rep.find("contended locks"), std::string::npos);
  EXPECT_NE(rep.find("faults"), std::string::npos);
}

}  // namespace
}  // namespace rsvm
