// Protocol trace facility (runtime/trace.hpp).
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"
#include "runtime/trace.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Trace, RecordsFaultsTwinsAndDiffs) {
  SvmPlatform plat(2);
  TraceRecorder rec;
  plat.trace = rec.hook();
  SharedArray<int> a(plat, 2048, HomePolicy::node(0));  // two pages
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      a.set(c, 0, 1);     // fault + twin on page 0
      a.set(c, 1024, 2);  // fault + twin on page 1
    }
    c.barrier(bar);  // diffs flush
  });
  EXPECT_EQ(rec.count(TraceEvent::Kind::PageFault), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::TwinCreate), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::DiffSend), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::BarrierArrive), 2u);
  EXPECT_EQ(rec.count(TraceEvent::Kind::BarrierDepart), 2u);
}

TEST(Trace, HotPagesRanksByFaultCount) {
  SvmPlatform plat(3);
  TraceRecorder rec;
  plat.trace = rec.hook();
  SharedArray<int> a(plat, 2048, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int r = 0; r < 3; ++r) {
      if (c.id() == 0) a.set(c, 0, r);         // page 0 written each round
      if (c.id() != 0) a.get(c, 0);            // both readers re-fault it
      if (c.id() == 1 && r == 0) a.get(c, 1024);  // page 1 faulted once
      c.barrier(bar);
    }
  });
  const auto hot = rec.hotPages(2);
  ASSERT_GE(hot.size(), 2u);
  EXPECT_GT(hot[0].second, hot[1].second);
  EXPECT_EQ(hot[0].first, a.base() / 4096);  // page 0 is hottest
}

TEST(Trace, LockProfileSeparatesWaitFromHold) {
  SvmPlatform plat(2);
  TraceRecorder rec;
  plat.trace = rec.hook();
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    c.lock(lk);
    c.compute(5'000);  // long critical section
    c.unlock(lk);
  });
  const auto profiles = rec.lockProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].acquires, 2u);
  // One processor waited for the other's 5k-cycle critical section.
  EXPECT_GE(profiles[0].total_wait, 5'000u);
  EXPECT_GE(profiles[0].total_held, 10'000u);
}

TEST(Trace, ZeroOverheadWhenUnset) {
  auto run = [](bool traced) {
    SvmPlatform plat(2);
    TraceRecorder rec;
    if (traced) plat.trace = rec.hook();
    SharedArray<int> a(plat, 1024, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int i = 0; i < 100; ++i) a.set(c, static_cast<std::size_t>(i), i);
      }
    });
    return plat.engine().collect().exec_cycles;
  };
  // Tracing must not change simulated time at all.
  EXPECT_EQ(run(false), run(true));
}

TEST(Trace, ReportMentionsKeyQuantities) {
  SvmPlatform plat(2);
  TraceRecorder rec;
  plat.trace = rec.hook();
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    c.lock(lk);
    a.set(c, 0, c.id());
    c.unlock(lk);
  });
  const std::string rep = rec.report();
  EXPECT_NE(rep.find("hot pages"), std::string::npos);
  EXPECT_NE(rep.find("contended locks"), std::string::npos);
  EXPECT_NE(rep.find("faults"), std::string::npos);
}

}  // namespace
}  // namespace rsvm
