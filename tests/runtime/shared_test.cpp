// Runtime-layer tests: typed shared views, layout mappings, home policies.
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rsvm {
namespace {

TEST(SharedArray, RawAndTimedViewsAgree) {
  SvmPlatform plat(2);
  SharedArray<double> a(plat, 128, HomePolicy::node(0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.raw(i) = static_cast<double>(i) * 1.5;
  }
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      EXPECT_EQ(a.get(c, 10), 15.0);
      a.set(c, 10, -1.0);
      EXPECT_EQ(a.get(c, 10), -1.0);
      a.update(c, 3, [](double v) { return v * 2; });
    }
  });
  EXPECT_EQ(a.raw(10), -1.0);
  EXPECT_EQ(a.raw(3), 9.0);
}

TEST(SharedArray, DistinctAllocationsNeverSharePages) {
  SvmPlatform plat(2);
  SharedArray<char> a(plat, 100, HomePolicy::node(0));
  SharedArray<char> b(plat, 100, HomePolicy::node(1));
  EXPECT_NE(a.base() / 4096, b.base() / 4096);
}

TEST(Grid2D, RowMajorMapping) {
  SvmPlatform plat(2);
  Grid2D<int> g(plat, 8, 8, HomePolicy::node(0));
  g.raw(3, 5) = 42;
  EXPECT_EQ(g.flat().raw(3 * 8 + 5), 42);
  EXPECT_EQ(g.addr(0, 1) - g.addr(0, 0), sizeof(int));
  EXPECT_EQ(g.addr(1, 0) - g.addr(0, 0), 8 * sizeof(int));
}

TEST(Grid2D, PaddedStride) {
  SvmPlatform plat(2);
  Grid2D<double> g(plat, 4, 4, HomePolicy::node(0), 512);
  EXPECT_EQ(g.addr(1, 0) - g.addr(0, 0), 512 * sizeof(double));
}

TEST(Grid4D, BlocksAreContiguousAndComplete) {
  SvmPlatform plat(2);
  Grid4D<int> g(plat, 16, 16, 4, 4, HomePolicy::node(0));
  // Each 4x4 block occupies 16 consecutive slots; the mapping is a
  // bijection over all 256 elements.
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      seen.insert(g.idx(i, j));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  // Elements of block (0,0):
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_LT(g.idx(i, j), 16u);
    }
  }
  // Block (1,2) starts at its blockStart.
  EXPECT_EQ(g.idx(4, 8), g.blockStart(1, 2));
}

TEST(Grid4D, PageAlignedBlocks) {
  SvmPlatform plat(2);
  Grid4D<double> g(plat, 32, 32, 16, 16, HomePolicy::node(0), 4096);
  // 16x16 doubles = 2 KB, padded to one page per block.
  EXPECT_EQ((g.blockStart(0, 1) - g.blockStart(0, 0)) * sizeof(double), 4096u);
}

TEST(HomePolicy, BlockedCoversAllProcsEvenly) {
  const HomePolicy hp = HomePolicy::blocked(4);
  std::array<int, 4> count{};
  for (std::uint64_t pg = 0; pg < 16; ++pg) {
    count[static_cast<std::size_t>(hp.fn(pg, 16))]++;
  }
  for (int c : count) EXPECT_EQ(c, 4);
}

TEST(HomePolicy, RoundRobinCycles) {
  const HomePolicy hp = HomePolicy::roundRobin(3);
  EXPECT_EQ(hp.fn(0, 100), 0);
  EXPECT_EQ(hp.fn(1, 100), 1);
  EXPECT_EQ(hp.fn(2, 100), 2);
  EXPECT_EQ(hp.fn(3, 100), 0);
}

TEST(Platform, AllocAfterRunIsRejected) {
  SvmPlatform plat(2);
  plat.run([](Ctx&) {});
  EXPECT_THROW(plat.alloc(64, 8, HomePolicy::node(0)), std::logic_error);
  EXPECT_THROW(plat.run([](Ctx&) {}), std::logic_error);
}

TEST(Platform, FactoryProducesAllKinds) {
  for (PlatformKind k :
       {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA}) {
    auto p = Platform::create(k, 4);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), k);
    EXPECT_EQ(p->nprocs(), 4);
  }
}

}  // namespace
}  // namespace rsvm
