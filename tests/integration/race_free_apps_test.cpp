// Every registered application version must be data-race-free on every
// platform under the happens-before checker -- the condition the paper's
// relaxed-consistency protocols (HLRC in particular) require for
// correctness. Deliberately-racy accesses must be annotated (RacyRead /
// RacyWrite) to pass, so this sweep also keeps those annotations honest.
#include "check/race_checker.hpp"
#include "core/app.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rsvm {
namespace {

struct Case {
  const char* app;
  const char* version;
  PlatformKind kind;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  std::string s = std::string(info.param.app) + "_" + info.param.version +
                  "_" + platformName(info.param.kind);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class RaceFreeApps : public ::testing::TestWithParam<Case> {};

TEST_P(RaceFreeApps, NoDataRacesUnderHappensBeforeChecker) {
  registerAllApps();
  const Case& tc = GetParam();
  const AppDesc* app = Registry::instance().find(tc.app);
  ASSERT_NE(app, nullptr) << tc.app;
  const VersionDesc* ver = app->version(tc.version);
  ASSERT_NE(ver, nullptr) << tc.version;

  auto plat = Platform::create(tc.kind, 4);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  const AppResult r = ver->run(*plat, app->tiny);
  EXPECT_TRUE(r.correct) << r.note;

  const RaceReport report = chk.report();
  EXPECT_GT(report.accesses, 0u) << "no shared accesses traced";
  EXPECT_TRUE(report.clean()) << tc.app << "/" << tc.version << " on "
                              << platformName(tc.kind) << ":\n"
                              << report.summary();
}

std::vector<Case> allCases() {
  registerAllApps();
  std::vector<Case> cases;
  for (const AppDesc& app : Registry::instance().all()) {
    for (const VersionDesc& v : app.versions) {
      for (PlatformKind k :
           {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA,
            PlatformKind::FGS}) {
        cases.push_back({app.name.c_str(), v.name.c_str(), k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVersions, RaceFreeApps,
                         ::testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace rsvm
