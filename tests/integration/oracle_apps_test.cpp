// The coherence oracle run against real, race-free applications on
// every platform: full application runs must produce zero violations --
// the oracle's false-positive rate on legal executions is the property
// that makes its positive controls (tests/check) meaningful.
#include "core/app.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

class OracleApps : public ::testing::TestWithParam<PlatformKind> {};

TEST_P(OracleApps, RaceFreeAppsRunCleanUnderOracle) {
  registerAllApps();
  for (const char* app_name : {"lu", "ocean", "radix"}) {
    const AppDesc* app = Registry::instance().find(app_name);
    ASSERT_NE(app, nullptr);
    auto plat = Platform::create(GetParam(), 8);
    plat->setCheckLevel(CheckLevel::Oracle);
    const AppResult r = app->original().run(*plat, app->tiny);
    EXPECT_TRUE(r.correct) << app_name << ": " << r.note;
    const OracleReport* rep = plat->oracleReport();
    ASSERT_NE(rep, nullptr) << app_name;
    EXPECT_TRUE(rep->clean())
        << app_name << " on " << platformName(GetParam()) << ":\n"
        << rep->summary();
    // The oracle actually looked at the run: accesses were checked and
    // transitions mirrored, not silently bypassed by the fast path.
    EXPECT_GT(rep->accesses, 0u) << app_name;
    EXPECT_GT(rep->grants, 0u) << app_name;
  }
}

TEST_P(OracleApps, RestructuredVersionsRunCleanUnderOracle) {
  // The restructured versions exercise different sharing patterns
  // (blocking, 4D arrays, rowwise partitioning); all are race-free and
  // must also pass.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("lu");
  ASSERT_NE(app, nullptr);
  for (const auto& ver : app->versions) {
    auto plat = Platform::create(GetParam(), 4);
    plat->setCheckLevel(CheckLevel::Oracle);
    const AppResult r = ver.run(*plat, app->tiny);
    EXPECT_TRUE(r.correct) << ver.name << ": " << r.note;
    const OracleReport* rep = plat->oracleReport();
    ASSERT_NE(rep, nullptr);
    EXPECT_TRUE(rep->clean())
        << "lu/" << ver.name << " on " << platformName(GetParam()) << ":\n"
        << rep->summary();
  }
}

TEST(OracleApps, OracleDoesNotChangeSimulatedTime) {
  // The oracle is an observer: enabling it must not move the simulated
  // clock (it disables the host fast path, which is timing-neutral by
  // construction -- the fast path's own tests prove that -- so the
  // whole check stack must be too).
  registerAllApps();
  const AppDesc* app = Registry::instance().find("lu");
  auto plain = Platform::create(PlatformKind::SVM, 4);
  const AppResult a = app->original().run(*plain, app->tiny);
  auto checked = Platform::create(PlatformKind::SVM, 4);
  checked->setCheckLevel(CheckLevel::Oracle);
  const AppResult b = app->original().run(*checked, app->tiny);
  EXPECT_EQ(a.stats.exec_cycles, b.stats.exec_cycles);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, OracleApps,
                         ::testing::Values(PlatformKind::SVM,
                                           PlatformKind::SMP,
                                           PlatformKind::NUMA,
                                           PlatformKind::FGS),
                         [](const ::testing::TestParamInfo<PlatformKind>& i) {
                           return platformName(i.param);
                         });

}  // namespace
}  // namespace rsvm
