// The simulator is a deterministic discrete-event machine: the same
// application on the same platform must produce bit-identical statistics
// run to run. Any drift here means scheduling leaked host
// nondeterminism into simulated time, which would poison every
// comparison the experiment driver makes.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rsvm {
namespace {

void expectIdentical(const ProcStats& a, const ProcStats& b, int p) {
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "proc " << p << " bucket " << i;
  }
  EXPECT_EQ(a.reads, b.reads) << "proc " << p;
  EXPECT_EQ(a.writes, b.writes) << "proc " << p;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << "proc " << p;
  EXPECT_EQ(a.l2_misses, b.l2_misses) << "proc " << p;
  EXPECT_EQ(a.page_faults, b.page_faults) << "proc " << p;
  EXPECT_EQ(a.write_faults, b.write_faults) << "proc " << p;
  EXPECT_EQ(a.diffs_created, b.diffs_created) << "proc " << p;
  EXPECT_EQ(a.diff_bytes, b.diff_bytes) << "proc " << p;
  EXPECT_EQ(a.remote_misses, b.remote_misses) << "proc " << p;
  EXPECT_EQ(a.local_misses, b.local_misses) << "proc " << p;
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent) << "proc " << p;
  EXPECT_EQ(a.lock_acquires, b.lock_acquires) << "proc " << p;
  EXPECT_EQ(a.remote_lock_acquires, b.remote_lock_acquires) << "proc " << p;
  EXPECT_EQ(a.barriers, b.barriers) << "proc " << p;
  EXPECT_EQ(a.tasks_executed, b.tasks_executed) << "proc " << p;
  EXPECT_EQ(a.tasks_stolen, b.tasks_stolen) << "proc " << p;
}

struct Case {
  const char* app;
  PlatformKind kind;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.app) + "_" + platformName(info.param.kind);
}

class Determinism : public ::testing::TestWithParam<Case> {};

TEST_P(Determinism, RepeatedRunsAreBitIdentical) {
  registerAllApps();
  const Case& tc = GetParam();
  const AppDesc* app = Registry::instance().find(tc.app);
  ASSERT_NE(app, nullptr) << tc.app;
  const VersionDesc& ver = app->original();

  const AppResult r1 = Experiment::runOnce(tc.kind, ver, app->tiny, 4);
  const AppResult r2 = Experiment::runOnce(tc.kind, ver, app->tiny, 4);
  ASSERT_TRUE(r1.correct) << r1.note;
  ASSERT_TRUE(r2.correct) << r2.note;

  EXPECT_EQ(r1.stats.exec_cycles, r2.stats.exec_cycles);
  ASSERT_EQ(r1.stats.procs.size(), r2.stats.procs.size());
  for (std::size_t p = 0; p < r1.stats.procs.size(); ++p) {
    expectIdentical(r1.stats.procs[p], r2.stats.procs[p],
                    static_cast<int>(p));
  }
}

// One app per platform, including volrend whose task-queue stealing is
// the most scheduling-sensitive code in the suite.
const Case kCases[] = {
    {"lu", PlatformKind::SVM},
    {"ocean", PlatformKind::SMP},
    {"radix", PlatformKind::NUMA},
    {"volrend", PlatformKind::FGS},
    {"volrend", PlatformKind::SVM},
};

INSTANTIATE_TEST_SUITE_P(OnePerPlatform, Determinism,
                         ::testing::ValuesIn(kCases), caseName);

}  // namespace
}  // namespace rsvm
