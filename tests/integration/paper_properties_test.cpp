// End-to-end properties from the paper, checked as orderings (not
// absolute numbers) at reduced scale. These are the claims the
// benchmarks reproduce quantitatively; here they gate regressions.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

class PaperProperties : public ::testing::Test {
 protected:
  void SetUp() override { registerAllApps(); }

  static Cycles cyclesOf(const char* app, const char* ver, PlatformKind k,
                         int nprocs, bool paper_scale = false) {
    const AppDesc* a = Registry::instance().find(app);
    EXPECT_NE(a, nullptr);
    const VersionDesc* v = a->version(ver);
    EXPECT_NE(v, nullptr);
    return Experiment::runOnce(k, *v, paper_scale ? a->small : a->tiny,
                               nprocs)
        .stats.exec_cycles;
  }
};

TEST_F(PaperProperties, LuContiguousBeatsTwoDOnSvm) {
  // Section 4.1.1: the 4-d layout is the decisive LU optimization on SVM.
  const Cycles two_d = cyclesOf("lu", "2d", PlatformKind::SVM, 8, true);
  const Cycles four_d =
      cyclesOf("lu", "4d-aligned", PlatformKind::SVM, 8, true);
  EXPECT_LT(four_d * 2, two_d);
}

TEST_F(PaperProperties, LuPageAlignmentHelpsOnceBlocksAreContiguous) {
  // "once the data structure is altered ... padding and alignment helps".
  const Cycles four_d = cyclesOf("lu", "4d", PlatformKind::SVM, 16, true);
  const Cycles aligned =
      cyclesOf("lu", "4d-aligned", PlatformKind::SVM, 16, true);
  EXPECT_LT(aligned, four_d);
}

TEST_F(PaperProperties, OceanRowwiseBeatsSquarePartitionsOnSvm) {
  // Section 4.1.2: row-wise partitions eliminate the fine-grained column
  // boundaries (8.5 -> 13.2 in the paper).
  const Cycles square = cyclesOf("ocean", "4d", PlatformKind::SVM, 16, true);
  const Cycles rows =
      cyclesOf("ocean", "rowwise", PlatformKind::SVM, 16, true);
  EXPECT_LT(rows, square);
}

TEST_F(PaperProperties, RaytraceStatsLockIsCatastrophicOnSvmOnly) {
  // Section 4.2.3: 0.5 -> 11.05 on SVM by removing one lock; hardware
  // coherence shrugs the same lock off.
  const Cycles svm_orig =
      cyclesOf("raytrace", "orig", PlatformKind::SVM, 8, true);
  const Cycles svm_nolock =
      cyclesOf("raytrace", "alg-nolock", PlatformKind::SVM, 8, true);
  EXPECT_GT(svm_orig, svm_nolock * 5);
  const Cycles smp_orig =
      cyclesOf("raytrace", "orig", PlatformKind::SMP, 8, true);
  const Cycles smp_nolock =
      cyclesOf("raytrace", "alg-nolock", PlatformKind::SMP, 8, true);
  EXPECT_LT(smp_orig, smp_nolock * 5);
}

TEST_F(PaperProperties, BarnesSpatialBeatsSharedTreeOnSvm) {
  // Section 4.2.4: 2.76 -> 10.5 via the spatial tree build.
  const Cycles orig = cyclesOf("barnes", "orig", PlatformKind::SVM, 8, true);
  const Cycles spatial =
      cyclesOf("barnes", "spatial", PlatformKind::SVM, 8, true);
  EXPECT_LT(spatial * 2, orig);
}

TEST_F(PaperProperties, BarnesTreeLadderIsMonotoneOnSvm) {
  const Cycles orig = cyclesOf("barnes", "orig", PlatformKind::SVM, 8, true);
  const Cycles update =
      cyclesOf("barnes", "update-tree", PlatformKind::SVM, 8, true);
  const Cycles partree =
      cyclesOf("barnes", "partree", PlatformKind::SVM, 8, true);
  const Cycles spatial =
      cyclesOf("barnes", "spatial", PlatformKind::SVM, 8, true);
  EXPECT_LT(update, orig);
  EXPECT_LT(partree, orig);
  EXPECT_LT(spatial, partree);
}

TEST_F(PaperProperties, VolrendStealingHelpsDsmButNotSvm) {
  // Figure 17: with the balanced partition, turning stealing off wins on
  // SVM and loses on CC-NUMA.
  const Cycles svm_steal =
      cyclesOf("volrend", "alg-steal", PlatformKind::SVM, 16, true);
  const Cycles svm_nosteal =
      cyclesOf("volrend", "alg-nosteal", PlatformKind::SVM, 16, true);
  EXPECT_LT(svm_nosteal, svm_steal);
  const Cycles dsm_steal =
      cyclesOf("volrend", "alg-steal", PlatformKind::NUMA, 16, true);
  const Cycles dsm_nosteal =
      cyclesOf("volrend", "alg-nosteal", PlatformKind::NUMA, 16, true);
  EXPECT_LT(dsm_steal, dsm_nosteal);
}

TEST_F(PaperProperties, ShearWarpRestructuringWinsBigOnSvm) {
  // Section 4.2.2: 3.47 -> 9.21 from the same-partition, no-barrier
  // restructuring.
  const Cycles orig =
      cyclesOf("shearwarp", "orig", PlatformKind::SVM, 16, true);
  const Cycles alg = cyclesOf("shearwarp", "alg", PlatformKind::SVM, 16, true);
  EXPECT_LT(alg * 5, orig * 4);  // at least 25% faster
}

TEST_F(PaperProperties, RadixStaysBadEverywhere) {
  // Section 4.2.5 + section 5: Radix is a challenge on every platform;
  // the local-buffer variant helps only modestly on SVM.
  const AppDesc* radix = Registry::instance().find("radix");
  Experiment ex(*radix);
  const CellResult svm =
      ex.run(PlatformKind::SVM, *radix->version("orig"), radix->small, 16);
  EXPECT_LT(svm.speedup(), 4.0);
  const CellResult svm_alg =
      ex.run(PlatformKind::SVM, *radix->version("alg-local"), radix->small, 16);
  EXPECT_LT(svm_alg.speedup(), 6.0);
  EXPECT_GT(svm_alg.speedup(), svm.speedup() * 0.9);
}

TEST_F(PaperProperties, OptimizedVersionsScaleWithProcessors) {
  // Sanity: the final versions actually speed up 1 -> 4 -> 16 on SVM.
  for (const char* av : {"lu/4d-aligned", "ocean/rowwise",
                         "raytrace/alg-splitq", "barnes/spatial"}) {
    const std::string s(av);
    const auto slash = s.find('/');
    const std::string app = s.substr(0, slash), ver = s.substr(slash + 1);
    const Cycles t1 = cyclesOf(app.c_str(), ver.c_str(), PlatformKind::SVM, 1,
                               true);
    const Cycles t4 = cyclesOf(app.c_str(), ver.c_str(), PlatformKind::SVM, 4,
                               true);
    const Cycles t16 = cyclesOf(app.c_str(), ver.c_str(), PlatformKind::SVM,
                                16, true);
    EXPECT_LT(t4, t1) << av;
    EXPECT_LT(t16, t4) << av;
  }
}

TEST_F(PaperProperties, WholeAppRunsAreDeterministic) {
  for (const char* app : {"lu", "ocean", "volrend", "radix"}) {
    const AppDesc* a = Registry::instance().find(app);
    const Cycles c1 =
        Experiment::runOnce(PlatformKind::SVM, a->original(), a->tiny, 8)
            .stats.exec_cycles;
    const Cycles c2 =
        Experiment::runOnce(PlatformKind::SVM, a->original(), a->tiny, 8)
            .stats.exec_cycles;
    EXPECT_EQ(c1, c2) << app;
  }
}

TEST_F(PaperProperties, FreeCsFaultsDiagnosisRecoversVolrendSpeedup) {
  // The paper diagnosed Volrend's lock problem by pretending page faults
  // inside critical sections are free and watching speedups become
  // almost perfect.
  const AppDesc* a = Registry::instance().find("volrend");
  const VersionDesc* v = a->version("orig");
  const Cycles normal =
      Experiment::runOnce(PlatformKind::SVM, *v, a->tiny, 8).stats.exec_cycles;
  const Cycles free_cs =
      Experiment::runOnce(PlatformKind::SVM, *v, a->tiny, 8, true)
          .stats.exec_cycles;
  EXPECT_LT(free_cs, normal);
}

}  // namespace
}  // namespace rsvm
