// Fault injection end to end: seeded runs stay *correct* (faults are
// legal perturbations, never protocol violations), are bit-reproducible
// per seed, and observably perturb the schedule. This is the property
// that makes `ext_faults` survival tables trustworthy.
#include "core/app.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rsvm {
namespace {

Cycles runSeeded(PlatformKind kind, const char* app_name,
                 std::uint64_t seed, bool oracle = false) {
  registerAllApps();
  const AppDesc* app = Registry::instance().find(app_name);
  EXPECT_NE(app, nullptr);
  auto plat = Platform::create(kind, 8);
  if (oracle) plat->setCheckLevel(CheckLevel::Oracle);
  if (seed != 0) plat->setFaultPlan(seed);
  const AppResult r = app->original().run(*plat, app->tiny);
  EXPECT_TRUE(r.correct) << app_name << " seed " << seed << ": " << r.note;
  if (oracle) {
    const OracleReport* rep = plat->oracleReport();
    EXPECT_NE(rep, nullptr);
    if (rep != nullptr) {
      EXPECT_TRUE(rep->clean()) << app_name << " seed " << seed << ":\n"
                                << rep->summary();
    }
  }
  return r.stats.exec_cycles;
}

class FaultSweep : public ::testing::TestWithParam<PlatformKind> {};

TEST_P(FaultSweep, SeededRunsAreBitReproducible) {
  for (std::uint64_t seed : {1ull, 5ull}) {
    const Cycles a = runSeeded(GetParam(), "lu", seed);
    const Cycles b = runSeeded(GetParam(), "lu", seed);
    EXPECT_EQ(a, b) << "seed " << seed << " on "
                    << platformName(GetParam());
  }
}

TEST_P(FaultSweep, DistinctSeedsProduceDistinctSchedules) {
  // Injection must actually do something: across several seeds the
  // simulated clock should take more than one value (all-equal would
  // mean the plan is a no-op on this platform).
  std::set<Cycles> cycles;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    cycles.insert(runSeeded(GetParam(), "radix", seed));
  }
  EXPECT_GT(cycles.size(), 1u) << "on " << platformName(GetParam());
}

TEST_P(FaultSweep, FaultedRunsStayCoherentUnderOracle) {
  // The tentpole composition: jitter, spurious invalidations and grant
  // reordering applied *under the oracle* -- perturbed schedules must
  // still satisfy every coherence invariant.
  for (std::uint64_t seed : {2ull, 7ull}) {
    runSeeded(GetParam(), "ocean", seed, /*oracle=*/true);
  }
}

TEST(FaultSweep, SeedZeroMatchesNoFaultPlan) {
  // Seed 0 is the documented "off" value: identical to never calling
  // setFaultPlan at all.
  const Cycles off = runSeeded(PlatformKind::SVM, "lu", 0);
  registerAllApps();
  const AppDesc* app = Registry::instance().find("lu");
  auto plat = Platform::create(PlatformKind::SVM, 8);
  plat->setFaultPlan(0);
  const AppResult r = app->original().run(*plat, app->tiny);
  ASSERT_TRUE(r.correct) << r.note;
  EXPECT_EQ(r.stats.exec_cycles, off);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, FaultSweep,
                         ::testing::Values(PlatformKind::SVM,
                                           PlatformKind::SMP,
                                           PlatformKind::NUMA,
                                           PlatformKind::FGS),
                         [](const ::testing::TestParamInfo<PlatformKind>& i) {
                           return platformName(i.param);
                         });

}  // namespace
}  // namespace rsvm
