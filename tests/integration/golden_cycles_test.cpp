// Golden cycle-count regression: exact simulated results for tiny LU
// runs on every platform, pinned to the values produced by the seed
// implementation (before the access fast path existed). The access fast
// path (DESIGN.md, "Access fast path") is required to be
// bit-identical to the slow path, so these numbers must never move --
// any drift is either a protocol change (update the table deliberately)
// or a fast-path soundness bug (fix the fast path).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>

namespace rsvm {
namespace {

struct Golden {
  const char* app;
  const char* version;
  PlatformKind kind;
  int procs;
  Cycles exec_cycles;
  Cycles buckets[6];  // Compute, CacheStall, DataWait, LockWait,
                      // BarrierWait, Handler
  std::uint64_t reads, writes, l1_misses, l2_misses, page_faults,
      diffs_created;
};

// Values generated from the seed implementation (LU tiny problem).
constexpr Golden kGoldens[] = {
    {"lu", "2d", PlatformKind::SVM, 1,
     673480ull, {394416ull, 188920ull, 0ull, 0ull, 73344ull, 16800ull},
     182960ull, 24640ull, 13772ull, 1024ull, 0ull, 0ull},
    {"lu", "2d", PlatformKind::SVM, 4,
     1453827ull, {394416ull, 353760ull, 1438430ull, 0ull, 3009546ull, 617056ull},
     182960ull, 24640ull, 15006ull, 4074ull, 75ull, 77ull},
    {"lu", "2d", PlatformKind::NUMA, 1,
     505744ull, {394416ull, 104848ull, 0ull, 0ull, 6480ull, 0ull},
     182960ull, 24640ull, 8636ull, 1016ull, 0ull, 0ull},
    {"lu", "2d", PlatformKind::NUMA, 4,
     340155ull, {394416ull, 76931ull, 453077ull, 0ull, 436076ull, 0ull},
     182960ull, 24640ull, 9632ull, 1569ull, 0ull, 0ull},
    {"lu", "2d", PlatformKind::SMP, 1,
     479920ull, {394416ull, 82144ull, 0ull, 0ull, 3360ull, 0ull},
     182960ull, 24640ull, 8636ull, 508ull, 0ull, 0ull},
    {"lu", "2d", PlatformKind::SMP, 4,
     300328ull, {394416ull, 442182ull, 0ull, 0ull, 364642ull, 0ull},
     182960ull, 24640ull, 10904ull, 2876ull, 0ull, 0ull},
    {"lu", "2d", PlatformKind::FGS, 1,
     1606008ull, {834256ull, 544880ull, 75600ull, 0ull, 51072ull, 100200ull},
     182960ull, 24640ull, 16118ull, 7674ull, 252ull, 0ull},
    {"lu", "2d", PlatformKind::FGS, 4,
     10068462ull,
     {834256ull, 513400ull, 25088096ull, 0ull, 11956046ull, 1880550ull},
     182960ull, 24640ull, 17490ull, 6770ull, 3193ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::SVM, 1,
     895150ull, {394416ull, 410590ull, 0ull, 0ull, 73344ull, 16800ull},
     182960ull, 24640ull, 35939ull, 1024ull, 0ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::SVM, 4,
     1099767ull,
     {394416ull, 456660ull, 1268671ull, 0ull, 2138721ull, 138500ull},
     182960ull, 24640ull, 35296ull, 2074ull, 70ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::NUMA, 1,
     692136ull, {394416ull, 291240ull, 0ull, 0ull, 6480ull, 0ull},
     182960ull, 24640ull, 31935ull, 1016ull, 0ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::NUMA, 4,
     374850ull, {394416ull, 293757ull, 257301ull, 0ull, 553806ull, 0ull},
     182960ull, 24640ull, 32451ull, 1569ull, 0ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::SMP, 1,
     666312ull, {394416ull, 268536ull, 0ull, 0ull, 3360ull, 0ull},
     182960ull, 24640ull, 31935ull, 512ull, 0ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::SMP, 4,
     321165ull, {394416ull, 503967ull, 0ull, 0ull, 386205ull, 0ull},
     182960ull, 24640ull, 32451ull, 792ull, 0ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::FGS, 1,
     2060518ull, {834256ull, 996790ull, 76800ull, 0ull, 51072ull, 101600ull},
     182960ull, 24640ull, 37589ull, 12418ull, 256ull, 0ull},
    {"lu", "4d-aligned", PlatformKind::FGS, 4,
     1595101ull,
     {834256ull, 1042560ull, 1655997ull, 0ull, 2547491ull, 298600ull},
     182960ull, 24640ull, 36941ull, 13463ull, 536ull, 0ull},
    // Sync- and miss-heavy 16-processor points (Ocean's nearest-neighbor
    // sweeps, Radix's all-to-all permutation) exercise the engine's
    // heap scheduler, blocked/wake paths, and the SVM/FGS slow-path
    // buffer pooling far harder than LU does; pinned when the assembly
    // fiber switcher landed and identical in both fiber modes (the CI
    // matrix runs this suite under each).
    {"ocean", "2d", PlatformKind::SVM, 16,
     10057798ull,
     {876674ull, 3094320ull, 89243429ull, 4826281ull, 51176006ull,
      11666058ull},
     397376ull, 77890ull, 86247ull, 44637ull, 1752ull, 1546ull},
    {"ocean", "2d", PlatformKind::NUMA, 16,
     1053452ull,
     {876674ull, 169450ull, 9986860ull, 128636ull, 5691212ull, 0ull},
     397376ull, 77890ull, 41627ull, 24854ull, 0ull, 0ull},
    {"ocean", "2d", PlatformKind::SMP, 16,
     540438ull,
     {876674ull, 5300904ull, 0ull, 38512ull, 2429478ull, 0ull},
     397376ull, 77890ull, 63615ull, 28685ull, 0ull, 0ull},
    {"ocean", "2d", PlatformKind::FGS, 16,
     53679826ull,
     {1905096ull, 3308540ull, 644804711ull, 2912777ull, 184623942ull,
      21292150ull},
     397376ull, 77890ull, 102879ull, 45595ull, 33851ull, 0ull},
    {"radix", "orig", PlatformKind::SVM, 16,
     5385170ull,
     {598528ull, 2284170ull, 71471064ull, 0ull, 7644294ull, 4122664ull},
     208896ull, 115200ull, 104922ull, 24699ull, 1005ull, 510ull},
    {"radix", "orig", PlatformKind::NUMA, 16,
     1882494ull,
     {598528ull, 740998ull, 26015049ull, 0ull, 2762929ull, 0ull},
     208896ull, 115200ull, 108762ull, 32493ull, 0ull, 0ull},
    {"radix", "orig", PlatformKind::SMP, 16,
     784134ull,
     {598528ull, 10832228ull, 0ull, 0ull, 1113948ull, 0ull},
     208896ull, 115200ull, 111811ull, 33091ull, 0ull, 0ull},
    {"radix", "orig", PlatformKind::FGS, 16,
     79932796ull,
     {1361920ull, 3353270ull, 1221195300ull, 0ull, 26608446ull,
      26375800ull},
     208896ull, 115200ull, 118622ull, 43341ull, 32628ull, 0ull},
    // Server-shaped workloads (task-queue request service, chained-hash
    // index): lock- and steal-dominated rather than loop-parallel, so
    // these rows pin the queue, striped-lock, and allocator paths the
    // science kernels barely touch. Pinned when the server/index
    // families landed; identical in both fiber modes.
    {"server", "orig", PlatformKind::SVM, 4,
     25992063ull,
     {156276ull, 326940ull, 42146471ull, 38883744ull, 320252ull, 22132219ull},
     20710ull, 12460ull, 8109ull, 4917ull, 2152ull, 3189ull},
    {"server", "orig", PlatformKind::SVM, 16,
     28263074ull,
     {158404ull, 473610ull, 94114247ull, 311127143ull, 8159295ull,
      38132060ull},
     22790ull, 12508ull, 9806ull, 7511ull, 4182ull, 5201ull},
    {"server", "orig", PlatformKind::NUMA, 4,
     929153ull,
     {157082ull, 58334ull, 2019877ull, 1464346ull, 16853ull, 0ull},
     21516ull, 12460ull, 9146ull, 6936ull, 0ull, 0ull},
    {"server", "orig", PlatformKind::NUMA, 16,
     768108ull,
     {159482ull, 40408ull, 2440744ull, 9493523ull, 153171ull, 0ull},
     23868ull, 12508ull, 10147ull, 7350ull, 0ull, 0ull},
    // Re-pinned when the hash index gained per-processor free-list
    // node reclaim and the C2 reinsert phase (more simulated work per
    // run, deterministic alloc count).
    {"index", "hash-orig", PlatformKind::SVM, 4,
     34721981ull,
     {85281ull, 558470ull, 40601047ull, 65717662ull, 10285700ull,
      21330077ull},
     26411ull, 6250ull, 14762ull, 8217ull, 2425ull, 2922ull},
    {"index", "hash-orig", PlatformKind::SVM, 16,
     31183506ull,
     {85245ull, 917900ull, 62633238ull, 383950240ull, 22592386ull,
      28203137ull},
     26399ull, 6250ull, 17010ull, 14956ull, 3330ull, 3666ull},
    {"index", "hash-orig", PlatformKind::NUMA, 4,
     1123828ull,
     {85311ull, 96715ull, 2667651ull, 1417132ull, 164444ull, 0ull},
     26421ull, 6250ull, 14355ull, 8672ull, 0ull, 0ull},
    {"index", "hash-orig", PlatformKind::NUMA, 16,
     1186423ull,
     {85281ull, 116130ull, 7475239ull, 10474770ull, 741634ull, 0ull},
     26411ull, 6250ull, 18822ull, 14296ull, 0ull, 0ull},
    // 64-processor rows: the scale where the parallel single-run engine
    // (DESIGN.md, "Parallel engine") actually spreads work across host
    // threads. Pinned when that engine landed; the engine-threads
    // identity test below re-runs a subset at --engine-threads=4 and
    // must reproduce these exact numbers.
    {"lu", "2d", PlatformKind::SVM, 64,
     2768029ull,
     {394416ull, 597640ull, 24619710ull, 0ull, 147917646ull, 2918844ull},
     182960ull, 24640ull, 18044ull, 8344ull, 370ull, 203ull},
    {"lu", "2d", PlatformKind::NUMA, 64,
     252349ull,
     {394416ull, 61942ull, 2612772ull, 0ull, 13040886ull, 0ull},
     182960ull, 24640ull, 11335ull, 3676ull, 0ull, 0ull},
    {"ocean", "2d", PlatformKind::SVM, 64,
     18524803ull,
     {877058ull, 4119060ull, 540432212ull, 88959577ull, 508767667ull, 41726218ull},
     397568ull, 78082ull, 98461ull, 62689ull, 5390ull, 4730ull},
    {"ocean", "2d", PlatformKind::NUMA, 64,
     1166868ull,
     {877058ull, 237925ull, 48482888ull, 2174319ull, 22867042ull, 0ull},
     397568ull, 78082ull, 75458ull, 56253ull, 0ull, 0ull},
    // SMP and FGS 64-processor rows: pinned when the parallel engine's
    // safe set widened to the hardware platforms (fenced-access
    // discipline, DESIGN.md "Parallel engine"). The engine-threads
    // identity test below re-runs all eight 64p rows at
    // --engine-threads=4 and must reproduce these exact numbers.
    {"lu", "2d", PlatformKind::SMP, 64,
     217032ull,
     {394416ull, 2653554ull, 0ull, 0ull, 10817886ull, 0ull},
     182960ull, 24640ull, 15021ull, 6450ull, 0ull, 0ull},
    {"lu", "2d", PlatformKind::FGS, 64,
     18127974ull,
     {834256ull, 1149280ull, 251247859ull, 0ull, 896199841ull, 10255100ull},
     182960ull, 24640ull, 27083ull, 17569ull, 15231ull, 0ull},
    {"ocean", "2d", PlatformKind::SMP, 64,
     1245128ull,
     {877058ull, 62286275ull, 0ull, 630208ull, 15870459ull, 0ull},
     397568ull, 78082ull, 114728ull, 77627ull, 0ull, 0ull},
    {"ocean", "2d", PlatformKind::FGS, 64,
     84790375ull,
     {1906440ull, 6155760ull, 4252792218ull, 49628897ull, 1056108135ull,
      59488550ull},
     397568ull, 78082ull, 145201ull, 94075ull, 92015ull, 0ull},
};

constexpr Bucket kBuckets[6] = {Bucket::Compute,    Bucket::CacheStall,
                                Bucket::DataWait,   Bucket::LockWait,
                                Bucket::BarrierWait, Bucket::Handler};

/// Restores the process-global fast-path default on scope exit.
class FastPathDefaultGuard {
 public:
  explicit FastPathDefaultGuard(bool on)
      : saved_(Platform::fastPathDefault()) {
    Platform::setFastPathDefault(on);
  }
  ~FastPathDefaultGuard() { Platform::setFastPathDefault(saved_); }

 private:
  bool saved_;
};

/// Restores the process-global engine-threads default on scope exit.
class EngineThreadsDefaultGuard {
 public:
  explicit EngineThreadsDefaultGuard(int threads)
      : saved_(Platform::engineThreadsDefault()) {
    Platform::setEngineThreadsDefault(threads);
  }
  ~EngineThreadsDefaultGuard() { Platform::setEngineThreadsDefault(saved_); }

 private:
  int saved_;
};

void expectMatches(const Golden& g, const AppResult& r) {
  const RunStats& rs = r.stats;
  ASSERT_TRUE(r.correct) << r.note;
  EXPECT_EQ(rs.exec_cycles, g.exec_cycles);
  for (int b = 0; b < 6; ++b) {
    EXPECT_EQ(rs.bucketTotal(kBuckets[b]), g.buckets[b])
        << "bucket " << bucketName(kBuckets[b]);
  }
  EXPECT_EQ(rs.sum(&ProcStats::reads), g.reads);
  EXPECT_EQ(rs.sum(&ProcStats::writes), g.writes);
  EXPECT_EQ(rs.sum(&ProcStats::l1_misses), g.l1_misses);
  EXPECT_EQ(rs.sum(&ProcStats::l2_misses), g.l2_misses);
  EXPECT_EQ(rs.sum(&ProcStats::page_faults), g.page_faults);
  EXPECT_EQ(rs.sum(&ProcStats::diffs_created), g.diffs_created);
}

class GoldenCycles : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenCycles, ExactCyclesAndCounters) {
  registerAllApps();
  const Golden& g = GetParam();
  const AppDesc* app = Registry::instance().find(g.app);
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version(g.version);
  ASSERT_NE(ver, nullptr);
  expectMatches(g, Experiment::runOnce(g.kind, *ver, app->tiny, g.procs));
}

INSTANTIATE_TEST_SUITE_P(
    Tiny, GoldenCycles, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden>& i) {
      std::string v = std::string(i.param.app) + "_" + i.param.version;
      for (char& c : v) {
        if (c == '-') c = '_';
      }
      return v + "_" + platformName(i.param.kind) + "_" +
             std::to_string(i.param.procs) + "p";
    });

// The same run with the fast path force-disabled must produce the same
// numbers: the filter is an implementation detail of Platform::access,
// not a model change. The FGS 4-processor row is the most contended
// configuration (cross-processor shoot-downs during miss stalls), which
// is exactly where an unsound filter entry would first show up.
TEST(GoldenCycles, FastPathOffIsBitIdentical) {
  registerAllApps();
  FastPathDefaultGuard off(false);
  // LU FGS 2d 4p, LU SVM 2d 4p -- the most contended configurations.
  for (const Golden& g : {kGoldens[7], kGoldens[1]}) {
    const AppDesc* app = Registry::instance().find(g.app);
    ASSERT_NE(app, nullptr);
    expectMatches(
        g, Experiment::runOnce(g.kind, *app->version(g.version), app->tiny,
                               g.procs));
  }
}

// The same runs with the parallel single-run engine must reproduce the
// golden table exactly: the commit-token scheduler promises the
// sequential resume order, so every number here is a regression check
// on that promise. Flat SVM rows engage the unfenced run-ahead path;
// the SMP, NUMA, and FGS rows engage the fenced-access discipline
// (every access commits in sequential order behind a shard fence), so
// this covers both shard-safety regimes at the 64-processor scale
// where the engine actually spreads work across host threads.
TEST(GoldenCycles, EngineThreads4IsBitIdentical) {
  registerAllApps();
  EngineThreadsDefaultGuard threads4(4);
  const std::size_t n = std::size(kGoldens);
  // All eight 64-processor rows plus the contended SVM 4p row.
  for (const Golden& g :
       {kGoldens[n - 8], kGoldens[n - 7], kGoldens[n - 6], kGoldens[n - 5],
        kGoldens[n - 4], kGoldens[n - 3], kGoldens[n - 2], kGoldens[n - 1],
        kGoldens[1]}) {
    const AppDesc* app = Registry::instance().find(g.app);
    ASSERT_NE(app, nullptr);
    expectMatches(
        g, Experiment::runOnce(g.kind, *app->version(g.version), app->tiny,
                               g.procs));
  }
}

}  // namespace
}  // namespace rsvm
