// Time-accounting invariants: every simulated cycle lands in exactly one
// of the six buckets, on every platform, for whole-application runs.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

class Accounting : public ::testing::TestWithParam<PlatformKind> {};

TEST_P(Accounting, BucketsSumToPerProcessorClocks) {
  registerAllApps();
  for (const char* app_name : {"lu", "ocean", "volrend", "radix"}) {
    const AppDesc* app = Registry::instance().find(app_name);
    auto plat = Platform::create(GetParam(), 8);
    const AppResult r = app->original().run(*plat, app->tiny);
    ASSERT_TRUE(r.correct) << app_name << ": " << r.note;
    for (int p = 0; p < 8; ++p) {
      // The engine's final clock for p must equal the bucket total: no
      // cycle is double-counted or dropped.
      EXPECT_EQ(r.stats.procs[static_cast<std::size_t>(p)].total(),
                plat->engine().now(p))
          << app_name << " proc " << p << " on "
          << platformName(GetParam());
    }
    EXPECT_EQ(r.stats.exec_cycles,
              [&] {
                Cycles m = 0;
                for (int p = 0; p < 8; ++p) {
                  m = std::max(m, plat->engine().now(p));
                }
                return m;
              }());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, Accounting,
                         ::testing::Values(PlatformKind::SVM,
                                           PlatformKind::SMP,
                                           PlatformKind::NUMA,
                                           PlatformKind::FGS),
                         [](const ::testing::TestParamInfo<PlatformKind>& i) {
                           return platformName(i.param);
                         });

TEST(Accounting, CountersAreInternallyConsistent) {
  registerAllApps();
  const AppDesc* app = Registry::instance().find("ocean");
  const AppResult r =
      Experiment::runOnce(PlatformKind::SVM, app->original(), app->tiny, 8);
  const RunStats& rs = r.stats;
  // Cache misses can't exceed accesses; L2 misses can't exceed L1 misses.
  EXPECT_LE(rs.sum(&ProcStats::l1_misses),
            rs.sum(&ProcStats::reads) + rs.sum(&ProcStats::writes));
  EXPECT_LE(rs.sum(&ProcStats::l2_misses), rs.sum(&ProcStats::l1_misses));
  // Every diff corresponds to a twin (non-home first writes).
  EXPECT_LE(rs.sum(&ProcStats::diffs_created),
            rs.sum(&ProcStats::write_faults) + 1);
  // Remote locks are a subset of lock acquires.
  EXPECT_LE(rs.sum(&ProcStats::remote_lock_acquires),
            rs.sum(&ProcStats::lock_acquires));
}

}  // namespace
}  // namespace rsvm
