// Correctness of every application version on every platform: each app
// verifies its own output against a serial host reference (LU residual,
// Ocean bit-exact grid, sorted permutation, image equality, N-body force
// error vs direct summation). Run at tiny problem sizes on 1, 4 (and for
// the originals 16) simulated processors.
#include "core/experiment.hpp"
#include "proto/svm/svm_platform.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

struct Case {
  const char* app;
  const char* version;
  PlatformKind kind;
  int nprocs;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  std::string s = std::string(info.param.app) + "_" + info.param.version +
                  "_" + platformName(info.param.kind) + "_" +
                  std::to_string(info.param.nprocs) + "p";
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class AppCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(AppCorrectness, VerifiesAgainstReference) {
  registerAllApps();
  const Case& tc = GetParam();
  const AppDesc* app = Registry::instance().find(tc.app);
  ASSERT_NE(app, nullptr) << tc.app;
  const VersionDesc* ver = app->version(tc.version);
  ASSERT_NE(ver, nullptr) << tc.version;
  const AppResult r =
      Experiment::runOnce(tc.kind, *ver, app->tiny, tc.nprocs);
  EXPECT_TRUE(r.correct) << r.note;
  EXPECT_GT(r.stats.exec_cycles, 0u);
}

std::vector<Case> allCases() {
  registerAllApps();
  std::vector<Case> cases;
  for (const AppDesc& app : Registry::instance().all()) {
    for (const VersionDesc& v : app.versions) {
      // Every version on every platform at 4 processors...
      for (PlatformKind k :
           {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA,
            PlatformKind::FGS}) {
        cases.push_back({app.name.c_str(), v.name.c_str(), k, 4});
      }
      // ...plus uniprocessor and full-width SVM runs.
      cases.push_back({app.name.c_str(), v.name.c_str(), PlatformKind::SVM, 1});
      cases.push_back({app.name.c_str(), v.name.c_str(), PlatformKind::SVM, 16});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVersions, AppCorrectness,
                         ::testing::ValuesIn(allCases()), caseName);

}  // namespace
}  // namespace rsvm

namespace rsvm {
namespace {

// Every application version on the two-level (SMP nodes over SVM)
// configuration: node-shared page state must not break any algorithm.
TEST(ClusteredSvmApps, AllVersionsCorrectAtFourPerNode) {
  registerAllApps();
  for (const AppDesc& app : Registry::instance().all()) {
    for (const VersionDesc& v : app.versions) {
      SvmParams sp;
      sp.procs_per_node = 4;
      SvmPlatform plat(8, sp);
      const AppResult r = v.run(plat, app.tiny);
      EXPECT_TRUE(r.correct) << app.name << "/" << v.name << ": " << r.note;
    }
  }
}

// Regression: the padded-row Ocean layout must stay correct when one
// grid row exceeds a page (n > 512 doubles); a stride bug here once
// silently overlapped rows at the paper's 514x514 size.
TEST(OceanPaddedLayout, RowsLargerThanOnePage) {
  registerAllApps();
  const AppDesc* ocean = Registry::instance().find("ocean");
  const AppParams prm{.n = 514, .iters = 1, .block = 0, .seed = 11};
  const AppResult r = Experiment::runOnce(
      PlatformKind::SVM, *ocean->version("2d-pad"), prm, 4);
  EXPECT_TRUE(r.correct) << r.note;
}

}  // namespace
}  // namespace rsvm
