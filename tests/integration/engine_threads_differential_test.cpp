// Differential tests for the parallel single-run engine: the same cell
// run with --engine-threads=1 and =4 must agree.
//
// Two tiers of promise (DESIGN.md, "Parallel engine"):
//
//  * Data-race-free apps (lu, ocean, radix): the full simulated state is
//    bit-identical -- exec_cycles, every bucket, every counter. The
//    commit-token scheduler resumes processors in exactly the sequential
//    order, and DRF application code cannot observe run-ahead.
//  * Racy-by-design apps (server/index task-queue steal peeks): those
//    peeks read shared words without synchronization, so run-ahead may
//    legitimately show them a different (equally valid) snapshot; the
//    apps' published digests are workload functions and must still be
//    identical, which is what the differential harness asserts.
//
// The safe set covers the whole platform ladder: flat SVM runs unfenced
// run-ahead, while SMP/NUMA/FGS and clustered SVM (procs_per_node > 1)
// run the fenced-access discipline (every timed access holds the commit
// token; see Platform::shardAccessNeedsFence). Observers are parallel-
// compatible too: a trace hook or the coherence oracle forces fenced
// accesses, so they see the byte-identical sequential event stream.
#include "../common/differential.hpp"
#include "core/experiment.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

namespace rsvm {
namespace {

using ::rsvm::testing::DiffOptions;
using ::rsvm::testing::DiffRun;
using ::rsvm::testing::expectSameAnswer;
using ::rsvm::testing::kAllKinds;
using ::rsvm::testing::runCell;

/// Restores the process-global engine-threads default on scope exit.
class EngineThreadsDefaultGuard {
 public:
  explicit EngineThreadsDefaultGuard(int threads)
      : saved_(Platform::engineThreadsDefault()) {
    Platform::setEngineThreadsDefault(threads);
  }
  ~EngineThreadsDefaultGuard() { Platform::setEngineThreadsDefault(saved_); }

 private:
  int saved_;
};

using PlatformFactory = std::function<std::unique_ptr<Platform>(int)>;

/// Clustered SVM: `ppn` processors share each node's page table, twins,
/// and dirty lists -- the per-node commit-discipline case.
PlatformFactory clusteredSvm(int ppn) {
  return [ppn](int procs) {
    SvmParams prm;
    prm.procs_per_node = ppn;
    return std::make_unique<SvmPlatform>(procs, prm);
  };
}

/// Full bit-identity for a DRF cell: every simulated field, on a stock
/// platform kind or any custom factory (e.g. clustered SVM).
void expectBitIdentical(const char* app_name, const char* version,
                        PlatformKind kind, int procs,
                        const PlatformFactory& make = {}) {
  registerAllApps();
  const AppDesc* app = Registry::instance().find(app_name);
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version(version);
  ASSERT_NE(ver, nullptr);
  AppResult runs[2];
  for (int m = 0; m < 2; ++m) {
    auto plat = make ? make(procs) : Platform::create(kind, procs);
    plat->setEngineThreads(m == 0 ? 1 : 4);
    runs[m] = ver->run(*plat, app->tiny);
    ASSERT_TRUE(runs[m].correct)
        << app_name << "/" << version << " on " << platformName(kind)
        << " @ " << procs << " threads=" << (m == 0 ? 1 : 4) << ": "
        << runs[m].note;
  }
  const std::string label = std::string(app_name) + "/" + version + " on " +
                            platformName(kind) + " @ " +
                            std::to_string(procs);
  EXPECT_EQ(runs[0].stats.exec_cycles, runs[1].stats.exec_cycles) << label;
  for (Bucket b : {Bucket::Compute, Bucket::CacheStall, Bucket::DataWait,
                   Bucket::LockWait, Bucket::BarrierWait, Bucket::Handler}) {
    EXPECT_EQ(runs[0].stats.bucketTotal(b), runs[1].stats.bucketTotal(b))
        << label << " bucket " << bucketName(b);
  }
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::reads),
            runs[1].stats.sum(&ProcStats::reads))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::writes),
            runs[1].stats.sum(&ProcStats::writes))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::l1_misses),
            runs[1].stats.sum(&ProcStats::l1_misses))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::l2_misses),
            runs[1].stats.sum(&ProcStats::l2_misses))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::page_faults),
            runs[1].stats.sum(&ProcStats::page_faults))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::diffs_created),
            runs[1].stats.sum(&ProcStats::diffs_created))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::lock_acquires),
            runs[1].stats.sum(&ProcStats::lock_acquires))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::barriers),
            runs[1].stats.sum(&ProcStats::barriers))
      << label;
}

TEST(EngineThreadsDifferential, DrfAppsBitIdenticalAt16) {
  expectBitIdentical("lu", "2d", PlatformKind::SVM, 16);
  expectBitIdentical("radix", "orig", PlatformKind::SVM, 16);
}

TEST(EngineThreadsDifferential, DrfAppsBitIdenticalAt64) {
  expectBitIdentical("lu", "2d", PlatformKind::SVM, 64);
  expectBitIdentical("ocean", "2d", PlatformKind::SVM, 64);
}

TEST(EngineThreadsDifferential, HardwarePlatformsBitIdenticalAt16) {
  // SMP/NUMA/FGS run the fenced-access discipline: every timed access
  // (and its post-stall cache fill) holds the commit token, so the
  // bus/directory/block-state transitions happen in sequential key
  // order even though run-ahead computes between accesses.
  for (const PlatformKind kind :
       {PlatformKind::SMP, PlatformKind::NUMA, PlatformKind::FGS}) {
    expectBitIdentical("lu", "2d", kind, 16);
    expectBitIdentical("ocean", "2d", kind, 16);
  }
}

TEST(EngineThreadsDifferential, HardwarePlatformsBitIdenticalAt64) {
  expectBitIdentical("lu", "2d", PlatformKind::SMP, 64);
  expectBitIdentical("lu", "2d", PlatformKind::NUMA, 64);
  expectBitIdentical("lu", "2d", PlatformKind::FGS, 64);
}

TEST(EngineThreadsDifferential, ClusteredSvmBitIdentical) {
  // procs_per_node > 1: node mates share the page table, twins, and
  // dirty lists, so these configurations also take the fenced-access
  // path -- per-node state only ever changes under the commit token.
  for (const int ppn : {2, 4}) {
    expectBitIdentical("lu", "2d", PlatformKind::SVM, 16,
                       clusteredSvm(ppn));
    expectBitIdentical("ocean", "2d", PlatformKind::SVM, 16,
                       clusteredSvm(ppn));
  }
  expectBitIdentical("radix", "orig", PlatformKind::SVM, 16,
                     clusteredSvm(4));
}

TEST(EngineThreadsDifferential, ServerDigestsStableAcrossThreads) {
  DiffOptions seq, par;
  par.engine_threads = 4;
  for (int procs : {16, 64}) {
    expectSameAnswer(
        runCell("server", "orig", PlatformKind::SVM, procs, seq),
        runCell("server", "orig", PlatformKind::SVM, procs, par));
  }
}

TEST(EngineThreadsDifferential, IndexDigestsStableAcrossThreads) {
  DiffOptions seq, par;
  par.engine_threads = 4;
  expectSameAnswer(
      runCell("index", "hash-orig", PlatformKind::SVM, 16, seq),
      runCell("index", "hash-orig", PlatformKind::SVM, 16, par));
}

TEST(EngineThreadsDifferential, ProcessDefaultReachesCreatedPlatforms) {
  // Platform::create picks up the process-wide default (the bench
  // binaries set it from --engine-threads); results stay identical.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("lu");
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version("2d");
  AppResult seq, par;
  {
    auto plat = Platform::create(PlatformKind::SVM, 16);
    seq = ver->run(*plat, app->tiny);
  }
  {
    EngineThreadsDefaultGuard guard(4);
    auto plat = Platform::create(PlatformKind::SVM, 16);
    EXPECT_EQ(plat->engineThreads(), 4);
    par = ver->run(*plat, app->tiny);
  }
  ASSERT_TRUE(seq.correct);
  ASSERT_TRUE(par.correct);
  EXPECT_EQ(seq.stats.exec_cycles, par.stats.exec_cycles);
}

TEST(EngineThreadsDifferential, FaultPlanFallsBackSequentially) {
  // A fault plan's RNG draw order is defined by the sequential schedule,
  // so it is the one remaining observer that forces a silent sequential
  // fallback -- same seed, same results, no hang.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("radix");
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version("orig");
  AppResult seq, par;
  {
    auto plat = Platform::create(PlatformKind::SVM, 16);
    plat->setFaultPlan(17);
    seq = ver->run(*plat, app->tiny);
  }
  {
    auto plat = Platform::create(PlatformKind::SVM, 16);
    plat->setFaultPlan(17);
    plat->setEngineThreads(4);
    par = ver->run(*plat, app->tiny);
  }
  ASSERT_TRUE(seq.correct);
  ASSERT_TRUE(par.correct);
  EXPECT_EQ(seq.stats.exec_cycles, par.stats.exec_cycles);
  EXPECT_EQ(seq.stats.sum(&ProcStats::page_faults),
            par.stats.sum(&ProcStats::page_faults));
}

TEST(EngineThreadsDifferential, OracleAttachedParallelMatchesSequential) {
  // Oracle-attached parallel runs: fenced accesses replay every oracle
  // callback in commit-token order, so the violation stream (including
  // "none") and the cycles must match the sequential run exactly, on
  // every platform kind.
  registerAllApps();
  for (const char* app_name : {"lu", "ocean", "radix"}) {
    const AppDesc* app = Registry::instance().find(app_name);
    ASSERT_NE(app, nullptr);
    const char* version = std::string(app_name) == "radix" ? "orig" : "2d";
    const VersionDesc* ver = app->version(version);
    ASSERT_NE(ver, nullptr);
    for (const PlatformKind kind : kAllKinds) {
      AppResult runs[2];
      std::size_t violations[2] = {0, 0};
      std::string summaries[2];
      for (int m = 0; m < 2; ++m) {
        auto plat = Platform::create(kind, 8);
        plat->setCheckLevel(CheckLevel::Oracle);
        plat->setEngineThreads(m == 0 ? 1 : 4);
        runs[m] = ver->run(*plat, app->tiny);
        const OracleReport* rep = plat->oracleReport();
        ASSERT_NE(rep, nullptr);
        violations[m] = rep->total;
        summaries[m] = rep->summary();
      }
      const std::string label = std::string(app_name) + "/" + version +
                                " on " + platformName(kind);
      ASSERT_TRUE(runs[0].correct) << label << ": " << runs[0].note;
      ASSERT_TRUE(runs[1].correct) << label << ": " << runs[1].note;
      EXPECT_EQ(runs[0].stats.exec_cycles, runs[1].stats.exec_cycles)
          << label;
      EXPECT_EQ(violations[0], violations[1]) << label;
      EXPECT_EQ(summaries[0], summaries[1]) << label;
      EXPECT_EQ(violations[0], 0u)
          << label << " (DRF app should be clean): " << summaries[0];
    }
  }
}

/// Serialize every trace event into one line of text; two runs with the
/// same schedule produce byte-identical streams.
std::string traceStream(Platform& plat, const VersionDesc& ver,
                        const AppParams& prm) {
  auto events = std::make_shared<std::string>();
  plat.trace = [events](const TraceEvent& e) {
    char line[96];
    std::snprintf(line, sizeof line, "%s p%d t%llu id%llu b%u\n",
                  traceKindName(e.kind), e.proc,
                  static_cast<unsigned long long>(e.at),
                  static_cast<unsigned long long>(e.id), e.bytes);
    *events += line;
  };
  const AppResult r = ver.run(plat, prm);
  EXPECT_TRUE(r.correct) << r.note;
  return *events;
}

TEST(EngineThreadsDifferential, TraceAttachedParallelByteIdenticalStream) {
  // A trace hook under engine-threads > 1 forces fenced accesses: every
  // emit() runs committed, so the hook observes the exact sequential
  // event sequence -- same events, same order, same timestamps.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("lu");
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version("2d");
  ASSERT_NE(ver, nullptr);
  for (const PlatformKind kind :
       {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::FGS}) {
    std::string streams[2];
    for (int m = 0; m < 2; ++m) {
      auto plat = Platform::create(kind, 16);
      plat->setEngineThreads(m == 0 ? 1 : 4);
      streams[m] = traceStream(*plat, *ver, app->tiny);
    }
    EXPECT_FALSE(streams[0].empty()) << platformName(kind);
    EXPECT_EQ(streams[0], streams[1]) << platformName(kind);
  }
  // Clustered SVM with an attached trace: fence mode for two reasons at
  // once (node-shared state and the observer).
  {
    std::string streams[2];
    for (int m = 0; m < 2; ++m) {
      auto plat = clusteredSvm(4)(16);
      plat->setEngineThreads(m == 0 ? 1 : 4);
      streams[m] = traceStream(*plat, *ver, app->tiny);
    }
    EXPECT_FALSE(streams[0].empty());
    EXPECT_EQ(streams[0], streams[1]) << "clustered SVM ppn=4";
  }
}

}  // namespace
}  // namespace rsvm
