// Differential tests for the parallel single-run engine: the same cell
// run with --engine-threads=1 and =4 must agree.
//
// Two tiers of promise (DESIGN.md, "Parallel engine"):
//
//  * Data-race-free apps (lu, ocean, radix): the full simulated state is
//    bit-identical -- exec_cycles, every bucket, every counter. The
//    commit-token scheduler resumes processors in exactly the sequential
//    order, and DRF application code cannot observe run-ahead.
//  * Racy-by-design apps (server/index task-queue steal peeks): those
//    peeks read shared words without synchronization, so run-ahead may
//    legitimately show them a different (equally valid) snapshot; the
//    apps' published digests are workload functions and must still be
//    identical, which is what the differential harness asserts.
#include "../common/differential.hpp"
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace rsvm {
namespace {

using ::rsvm::testing::DiffOptions;
using ::rsvm::testing::DiffRun;
using ::rsvm::testing::expectSameAnswer;
using ::rsvm::testing::runCell;

/// Restores the process-global engine-threads default on scope exit.
class EngineThreadsDefaultGuard {
 public:
  explicit EngineThreadsDefaultGuard(int threads)
      : saved_(Platform::engineThreadsDefault()) {
    Platform::setEngineThreadsDefault(threads);
  }
  ~EngineThreadsDefaultGuard() { Platform::setEngineThreadsDefault(saved_); }

 private:
  int saved_;
};

/// Full bit-identity for a DRF cell on SVM: every simulated field.
void expectBitIdentical(const char* app_name, const char* version,
                        int procs) {
  registerAllApps();
  const AppDesc* app = Registry::instance().find(app_name);
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version(version);
  ASSERT_NE(ver, nullptr);
  AppResult runs[2];
  for (int m = 0; m < 2; ++m) {
    auto plat = Platform::create(PlatformKind::SVM, procs);
    plat->setEngineThreads(m == 0 ? 1 : 4);
    runs[m] = ver->run(*plat, app->tiny);
    ASSERT_TRUE(runs[m].correct)
        << app_name << "/" << version << " @ " << procs << " threads="
        << (m == 0 ? 1 : 4) << ": " << runs[m].note;
  }
  const std::string label = std::string(app_name) + "/" + version + " @ " +
                            std::to_string(procs);
  EXPECT_EQ(runs[0].stats.exec_cycles, runs[1].stats.exec_cycles) << label;
  for (Bucket b : {Bucket::Compute, Bucket::CacheStall, Bucket::DataWait,
                   Bucket::LockWait, Bucket::BarrierWait, Bucket::Handler}) {
    EXPECT_EQ(runs[0].stats.bucketTotal(b), runs[1].stats.bucketTotal(b))
        << label << " bucket " << bucketName(b);
  }
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::reads),
            runs[1].stats.sum(&ProcStats::reads))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::writes),
            runs[1].stats.sum(&ProcStats::writes))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::page_faults),
            runs[1].stats.sum(&ProcStats::page_faults))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::diffs_created),
            runs[1].stats.sum(&ProcStats::diffs_created))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::lock_acquires),
            runs[1].stats.sum(&ProcStats::lock_acquires))
      << label;
  EXPECT_EQ(runs[0].stats.sum(&ProcStats::barriers),
            runs[1].stats.sum(&ProcStats::barriers))
      << label;
}

TEST(EngineThreadsDifferential, DrfAppsBitIdenticalAt16) {
  expectBitIdentical("lu", "2d", 16);
  expectBitIdentical("radix", "orig", 16);
}

TEST(EngineThreadsDifferential, DrfAppsBitIdenticalAt64) {
  expectBitIdentical("lu", "2d", 64);
  expectBitIdentical("ocean", "2d", 64);
}

TEST(EngineThreadsDifferential, ServerDigestsStableAcrossThreads) {
  DiffOptions seq, par;
  par.engine_threads = 4;
  for (int procs : {16, 64}) {
    expectSameAnswer(
        runCell("server", "orig", PlatformKind::SVM, procs, seq),
        runCell("server", "orig", PlatformKind::SVM, procs, par));
  }
}

TEST(EngineThreadsDifferential, IndexDigestsStableAcrossThreads) {
  DiffOptions seq, par;
  par.engine_threads = 4;
  expectSameAnswer(
      runCell("index", "hash-orig", PlatformKind::SVM, 16, seq),
      runCell("index", "hash-orig", PlatformKind::SVM, 16, par));
}

TEST(EngineThreadsDifferential, ProcessDefaultReachesCreatedPlatforms) {
  // Platform::create picks up the process-wide default (the bench
  // binaries set it from --engine-threads); results stay identical.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("lu");
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version("2d");
  AppResult seq, par;
  {
    auto plat = Platform::create(PlatformKind::SVM, 16);
    seq = ver->run(*plat, app->tiny);
  }
  {
    EngineThreadsDefaultGuard guard(4);
    auto plat = Platform::create(PlatformKind::SVM, 16);
    EXPECT_EQ(plat->engineThreads(), 4);
    par = ver->run(*plat, app->tiny);
  }
  ASSERT_TRUE(seq.correct);
  ASSERT_TRUE(par.correct);
  EXPECT_EQ(seq.stats.exec_cycles, par.stats.exec_cycles);
}

TEST(EngineThreadsDifferential, UnsafePlatformsFallBackSequentially) {
  // Platforms without the parallel-safety contract (hardware-coherent
  // NUMA here) must silently run sequentially -- same results, no hang.
  registerAllApps();
  const AppDesc* app = Registry::instance().find("radix");
  ASSERT_NE(app, nullptr);
  const VersionDesc* ver = app->version("orig");
  AppResult seq, par;
  {
    auto plat = Platform::create(PlatformKind::NUMA, 16);
    seq = ver->run(*plat, app->tiny);
  }
  {
    auto plat = Platform::create(PlatformKind::NUMA, 16);
    plat->setEngineThreads(4);
    par = ver->run(*plat, app->tiny);
  }
  ASSERT_TRUE(seq.correct);
  ASSERT_TRUE(par.correct);
  EXPECT_EQ(seq.stats.exec_cycles, par.stats.exec_cycles);
}

}  // namespace
}  // namespace rsvm
