// Fault survival for the server-shaped workloads: 8 fault seeds x
// {server, index} x {SVM, DSM}, every point run under the coherence
// oracle through the SweepRunner (watchdog armed). Faults are legal
// protocol perturbations, so every point must come back correct,
// oracle-clean, and in-budget -- and the structured SweepResult fields
// (error/timed_out/oracle_violations) tell us *which* property broke
// when one does. This is the integration-level guarantee behind the
// `ext_server` and `ext_faults` survival tables.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace rsvm {
namespace {

TEST(ServerFaultSurvival, AllSeedsSurviveUnderOracle) {
  registerAllApps();
  std::vector<SweepPoint> points;
  for (const char* app : {"server", "index"}) {
    const AppDesc* d = Registry::instance().find(app);
    ASSERT_NE(d, nullptr);
    for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA}) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SweepPoint p;
        p.kind = kind;
        p.app = app;
        p.version = d->original().name;
        p.params = d->tiny;
        p.procs = 8;
        p.check = CheckLevel::Oracle;
        p.fault_seed = seed;
        p.deadline_ms = 60'000.0;  // hang-proof: a livelock is a FAIL, not a hang
        p.with_baseline = false;
        points.push_back(p);
      }
    }
  }
  SweepRunner runner(2);
  const std::vector<SweepResult> results = runner.run(points);
  ASSERT_EQ(results.size(), points.size());

  // Per (app, platform): the set of exec_cycles across seeds. Fault
  // injection must actually perturb the schedule -- all-equal clocks
  // would mean the seeds are a no-op on that platform.
  std::map<std::string, std::map<Cycles, int>> clocks;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    const std::string at = describePoint(points[i]) + " seed " +
                           std::to_string(points[i].fault_seed);
    EXPECT_TRUE(r.ok()) << at << ": " << r.error;
    EXPECT_FALSE(r.timed_out) << at << ": watchdog fired";
    EXPECT_EQ(r.oracle_violations, 0u) << at << ": coherence violated";
    EXPECT_TRUE(r.app.correct) << at << ": " << r.app.note;
    clocks[points[i].app + "/" + platformName(points[i].kind)]
          [r.app.stats.exec_cycles]++;
  }
  for (const auto& [cell, set] : clocks) {
    EXPECT_GT(set.size(), 1u)
        << cell << ": 8 fault seeds produced identical schedules";
  }
}

}  // namespace
}  // namespace rsvm
