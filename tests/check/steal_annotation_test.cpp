// Positive control for the task-queue steal annotation. The steal and
// batched-steal paths peek at a victim's [head, tail) words without the
// queue lock -- deliberately, and annotated via getRacy (see
// apps/common/task_queue.hpp). This suite proves the annotation is
// load-bearing: the same peek written with a plain get() is flagged as
// a data race, so an unannotated steal cannot sneak into the codebase
// silently, and the real (annotated) paths come back clean with the
// suppression actually exercised.
#include "apps/common/task_queue.hpp"
#include "check/race_checker.hpp"
#include "runtime/platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rsvm {
namespace {

class StealAnnotation : public ::testing::TestWithParam<PlatformKind> {};

std::string kindName(const ::testing::TestParamInfo<PlatformKind>& info) {
  return platformName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, StealAnnotation,
                         ::testing::Values(PlatformKind::SVM,
                                           PlatformKind::NUMA,
                                           PlatformKind::SMP,
                                           PlatformKind::FGS),
                         kindName);

TEST_P(StealAnnotation, UnannotatedStealPeekIsFlagged) {
  // The buggy twin of TaskQueues::steal: peek the victim's head word
  // with a plain (unannotated) timed read while the owner updates it
  // under the queue lock. The thief's read is not ordered by that lock,
  // so the checker must call it a race.
  auto plat = Platform::create(GetParam(), 2);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  SharedArray<std::int64_t> q(*plat, 2, HomePolicy::node(0));  // [head, tail]
  q.raw(0) = 0;
  q.raw(1) = 8;
  const int lk = plat->makeLock();
  plat->run([&](Ctx& c) {
    if (c.id() == 0) {
      for (int i = 0; i < 8; ++i) {
        c.lock(lk);
        q.update(c, 0, [](std::int64_t h) { return h + 1; });  // owner pops
        c.unlock(lk);
      }
    } else {
      (void)q.get(c, 0);  // BUG: lock-free peek without the annotation
    }
  });
  const RaceReport r = chk.report();
  EXPECT_FALSE(r.clean())
      << "unannotated steal peek not flagged on " << plat->name();
  EXPECT_GE(r.races_total, 1u);
  ASSERT_FALSE(r.races.empty());
  EXPECT_EQ(r.races[0].unit_base, q.base());
}

TEST_P(StealAnnotation, RealStealPathIsCleanViaSuppression) {
  // The genuine TaskQueues steal path on a 2-proc platform: proc 1
  // starts empty and must steal, hitting the getRacy peek. Clean
  // report, nonzero suppression count: the annotation was used, not
  // bypassed.
  auto plat = Platform::create(GetParam(), 2);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  apps::TaskQueues::Options opt;
  opt.capacity = 32;
  apps::TaskQueues q(*plat, opt);
  std::vector<std::int32_t> tasks;
  for (std::int32_t i = 0; i < 16; ++i) tasks.push_back(i);
  q.fillInitial(0, tasks);
  q.fillInitial(1, {});
  plat->run([&](Ctx& c) {
    for (;;) {
      if (q.next(c, /*allow_steal=*/true) < 0) break;
      c.compute(40);
    }
  });
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << plat->name() << "\n" << r.summary();
  EXPECT_GE(r.suppressed_racy, 1u)
      << "steal path never exercised the annotated peek";
}

TEST_P(StealAnnotation, BatchedStealPathIsCleanViaSuppression) {
  // Same property for the new nextBatch steal path (this PR's Alg
  // restructuring): its half-backlog peek is annotated too.
  auto plat = Platform::create(GetParam(), 2);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  apps::TaskQueues::Options opt;
  opt.capacity = 32;
  apps::TaskQueues q(*plat, opt);
  std::vector<std::int32_t> tasks;
  for (std::int32_t i = 0; i < 16; ++i) tasks.push_back(i);
  q.fillInitial(0, tasks);
  q.fillInitial(1, {});
  plat->run([&](Ctx& c) {
    std::vector<std::int32_t> batch;
    for (;;) {
      batch.clear();
      if (q.nextBatch(c, batch, 4, /*allow_steal=*/true) == 0) break;
      c.compute(40);
    }
  });
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << plat->name() << "\n" << r.summary();
  EXPECT_GE(r.suppressed_racy, 1u)
      << "batched steal never exercised the annotated peek";
}

}  // namespace
}  // namespace rsvm
