// Vector-clock happens-before checker (check/race_checker.hpp), driven
// by hand-constructed event streams: each test is a tiny execution whose
// race/no-race verdict is known by construction.
#include "check/race_checker.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

using K = TraceEvent::Kind;

TraceEvent ev(K k, ProcId p, std::uint64_t id, std::uint32_t bytes = 0,
              Cycles at = 0) {
  return TraceEvent{k, p, at, id, bytes};
}

RaceChecker::Config cfg(int nprocs, std::uint32_t coherence = 4096) {
  return {nprocs, 8, coherence, 32};
}

TEST(RaceChecker, EmptyStreamIsClean) {
  RaceChecker chk(cfg(4));
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_TRUE(r.false_sharing.empty());
  EXPECT_NE(r.summary().find("0 data races"), std::string::npos);
}

TEST(RaceChecker, UnorderedWritesToSameWordAreARace) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::SharedWrite, 1, 0x100, 8));
  const RaceReport r = chk.report();
  EXPECT_EQ(r.races_total, 1u);
  ASSERT_EQ(r.races.size(), 1u);
  EXPECT_EQ(r.races[0].first_proc, 0);
  EXPECT_EQ(r.races[0].second_proc, 1);
  EXPECT_TRUE(r.races[0].first_write);
  EXPECT_TRUE(r.races[0].second_write);
  EXPECT_EQ(r.races[0].unit_bytes, 8u);
  EXPECT_NE(r.summary().find("RACE"), std::string::npos);
}

TEST(RaceChecker, WriteThenUnorderedReadIsARace) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::SharedWrite, 0, 0x40, 8));
  chk.onEvent(ev(K::SharedRead, 1, 0x40, 8));
  const RaceReport r = chk.report();
  ASSERT_EQ(r.races.size(), 1u);
  EXPECT_TRUE(r.races[0].first_write);
  EXPECT_FALSE(r.races[0].second_write);
}

TEST(RaceChecker, ReadSharingIsNotARace) {
  RaceChecker chk(cfg(3));
  chk.onEvent(ev(K::SharedRead, 0, 0x40, 8));
  chk.onEvent(ev(K::SharedRead, 1, 0x40, 8));
  chk.onEvent(ev(K::SharedRead, 2, 0x40, 8));
  EXPECT_TRUE(chk.report().clean());
}

TEST(RaceChecker, LockOrderingMakesAccessesRaceFree) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::LockGrant, 0, 7));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::LockRelease, 0, 7));
  chk.onEvent(ev(K::LockGrant, 1, 7));  // release handed to proc 1
  chk.onEvent(ev(K::SharedWrite, 1, 0x100, 8));
  chk.onEvent(ev(K::LockRelease, 1, 7));
  EXPECT_TRUE(chk.report().clean());
}

TEST(RaceChecker, DifferentLocksDoNotOrder) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::LockGrant, 0, 1));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::LockRelease, 0, 1));
  chk.onEvent(ev(K::LockGrant, 1, 2));  // a different lock: no edge
  chk.onEvent(ev(K::SharedWrite, 1, 0x100, 8));
  chk.onEvent(ev(K::LockRelease, 1, 2));
  EXPECT_EQ(chk.report().races_total, 1u);
}

TEST(RaceChecker, BarrierOrdersBothDirections) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::BarrierArrive, 0, 0));
  chk.onEvent(ev(K::BarrierArrive, 1, 0));
  chk.onEvent(ev(K::BarrierDepart, 1, 0));
  chk.onEvent(ev(K::BarrierDepart, 0, 0));
  chk.onEvent(ev(K::SharedWrite, 1, 0x100, 8));  // ordered after proc 0's
  chk.onEvent(ev(K::SharedRead, 0, 0x200, 8));
  chk.onEvent(ev(K::BarrierArrive, 0, 0));  // second epoch of the barrier
  chk.onEvent(ev(K::BarrierArrive, 1, 0));
  chk.onEvent(ev(K::BarrierDepart, 0, 0));
  chk.onEvent(ev(K::BarrierDepart, 1, 0));
  chk.onEvent(ev(K::SharedWrite, 1, 0x200, 8));
  EXPECT_TRUE(chk.report().clean()) << chk.report().summary();
}

TEST(RaceChecker, HappensBeforeIsTransitiveAcrossLockChains) {
  RaceChecker chk(cfg(3));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::LockRelease, 0, 1));
  chk.onEvent(ev(K::LockGrant, 1, 1));
  chk.onEvent(ev(K::LockRelease, 1, 2));  // proc 1 passes knowledge on
  chk.onEvent(ev(K::LockGrant, 2, 2));
  chk.onEvent(ev(K::SharedWrite, 2, 0x100, 8));
  EXPECT_TRUE(chk.report().clean()) << chk.report().summary();
}

TEST(RaceChecker, WordDisjointConflictsInOneUnitAreFalseSharingNotRaces) {
  RaceChecker chk(cfg(2, 4096));
  chk.onEvent(ev(K::Alloc, -1, 0x0, 8192));
  chk.onEvent(ev(K::SharedWrite, 0, 0x0, 8));
  chk.onEvent(ev(K::SharedWrite, 1, 0x8, 8));  // same page, different word
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << r.summary();
  ASSERT_EQ(r.false_sharing.size(), 1u);
  EXPECT_EQ(r.false_sharing[0].alloc_base, 0x0u);
  EXPECT_EQ(r.false_sharing[0].alloc_bytes, 8192u);
  EXPECT_EQ(r.false_sharing[0].units, 1u);
  EXPECT_EQ(r.false_sharing[0].pairs, 1u);
  EXPECT_NE(r.summary().find("FALSE SHARING"), std::string::npos);
}

TEST(RaceChecker, FalseSharingIsQuantifiedPerAllocation) {
  RaceChecker chk(cfg(2, 4096));
  chk.onEvent(ev(K::Alloc, -1, 0x0, 4096));
  chk.onEvent(ev(K::Alloc, -1, 0x1000, 4096));
  // Two word-disjoint conflicting pairs in allocation 0, one in alloc 1.
  chk.onEvent(ev(K::SharedWrite, 0, 0x0, 8));
  chk.onEvent(ev(K::SharedWrite, 1, 0x8, 8));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::SharedRead, 1, 0x108, 8));
  chk.onEvent(ev(K::SharedWrite, 0, 0x1000, 8));
  chk.onEvent(ev(K::SharedWrite, 1, 0x1008, 8));
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << r.summary();
  ASSERT_EQ(r.false_sharing.size(), 2u);
  // Sorted by pair count: allocation 0 first with 2 pairs.
  EXPECT_EQ(r.false_sharing[0].alloc_base, 0x0u);
  EXPECT_EQ(r.false_sharing[0].pairs, 2u);
  EXPECT_EQ(r.false_sharing[1].alloc_base, 0x1000u);
  EXPECT_EQ(r.false_sharing[1].pairs, 1u);
  EXPECT_EQ(r.falseSharingPairs(), 3u);
}

TEST(RaceChecker, SynchronizedDisjointWritesAreNotFalseSharing) {
  RaceChecker chk(cfg(2, 4096));
  chk.onEvent(ev(K::SharedWrite, 0, 0x0, 8));
  chk.onEvent(ev(K::LockRelease, 0, 1));
  chk.onEvent(ev(K::LockGrant, 1, 1));
  chk.onEvent(ev(K::SharedWrite, 1, 0x8, 8));
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.false_sharing.empty()) << r.summary();
}

TEST(RaceChecker, AnnotatedRacyAccessesAreSuppressed) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::RacyRead, 1, 0x100, 8));
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean());
  EXPECT_GE(r.suppressed_racy, 1u);
}

TEST(RaceChecker, RepeatedRacingPairIsReportedOnce) {
  RaceChecker chk(cfg(2));
  for (int i = 0; i < 10; ++i) {
    chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
    chk.onEvent(ev(K::SharedWrite, 1, 0x100, 8));
  }
  EXPECT_EQ(chk.report().races_total, 1u);
}

TEST(RaceChecker, NearestSyncEventsAreReported) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::LockGrant, 0, 3, 0, 100));
  chk.onEvent(ev(K::LockRelease, 0, 3, 0, 200));
  chk.onEvent(ev(K::SharedWrite, 0, 0x100, 8));
  chk.onEvent(ev(K::BarrierArrive, 1, 5, 0, 150));
  chk.onEvent(ev(K::SharedWrite, 1, 0x100, 8));
  const RaceReport r = chk.report();
  ASSERT_EQ(r.races.size(), 1u);
  ASSERT_TRUE(r.races[0].first_sync.valid);
  EXPECT_EQ(r.races[0].first_sync.kind, K::LockRelease);
  EXPECT_EQ(r.races[0].first_sync.id, 3u);
  EXPECT_EQ(r.races[0].first_sync.at, 200u);
  ASSERT_TRUE(r.races[0].second_sync.valid);
  EXPECT_EQ(r.races[0].second_sync.kind, K::BarrierArrive);
  const std::string s = r.summary();
  EXPECT_NE(s.find("LockRelease(3)"), std::string::npos);
  EXPECT_NE(s.find("BarrierArrive(5)"), std::string::npos);
}

TEST(RaceChecker, AccessSpanningTwoUnitsChecksBoth) {
  RaceChecker chk(cfg(2));
  chk.onEvent(ev(K::SharedWrite, 0, 0x4, 8));  // words 0x0 and 0x8
  chk.onEvent(ev(K::SharedWrite, 1, 0x8, 8));
  EXPECT_EQ(chk.report().races_total, 1u);
}

}  // namespace
}  // namespace rsvm
