// Positive controls for the coherence oracle: seed protocol bugs by
// hand and assert each invariant catches them with a structured report
// (kind, proc, addr, transition), plus negative controls proving the
// legal patterns stay clean.
#include "check/coherence_oracle.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rsvm {
namespace {

CoherenceOracle::Config cfg4(bool multi_writer = false,
                             bool exact_mirror = true) {
  CoherenceOracle::Config c;
  c.nprocs = 4;
  c.ndomains = 4;
  c.domain_of = {0, 1, 2, 3};
  c.unit_bytes = 64;
  c.word_bytes = 4;
  c.multi_writer = multi_writer;
  c.exact_mirror = exact_mirror;
  return c;
}

bool hasKind(const OracleReport& r, const std::string& kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

const OracleViolation* find(const OracleReport& r, const std::string& kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

TEST(CoherenceOracle, CleanRunReportsClean) {
  CoherenceOracle oc(cfg4());
  oc.grant(0, 5, OraclePerm::Write, "miss-serve");
  oc.onAccess(0, 5 * 64 + 8, 4, /*write=*/true, /*racy=*/false);
  oc.revoke(0, 5, OraclePerm::None, "dir-invalidate");
  oc.grant(1, 5, OraclePerm::Read, "miss-serve");
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
  EXPECT_EQ(oc.report().accesses, 1u);
  EXPECT_GE(oc.report().grants, 3u);
}

TEST(CoherenceOracle, TwoWritersCaughtAtGrant) {
  CoherenceOracle oc(cfg4());
  oc.grant(0, 7, OraclePerm::Write, "miss-serve");
  oc.grant(2, 7, OraclePerm::Write, "bogus-grant");
  const OracleViolation* v = find(oc.report(), "two-writers");
  ASSERT_NE(v, nullptr) << oc.report().summary();
  EXPECT_EQ(v->proc, 2);
  EXPECT_EQ(v->unit_base, 7u * 64u);
  EXPECT_EQ(v->transition, "bogus-grant");
}

TEST(CoherenceOracle, WriterWithReadersCaughtAtGrant) {
  CoherenceOracle oc(cfg4());
  oc.grant(1, 3, OraclePerm::Read, "miss-serve");
  oc.grant(0, 3, OraclePerm::Write, "bad-upgrade");
  EXPECT_TRUE(hasKind(oc.report(), "writer-with-readers"))
      << oc.report().summary();
}

TEST(CoherenceOracle, MultiWriterProtocolAdmitsConcurrentWriters) {
  // SVM's twin/diff scheme legally has concurrent writers per page.
  CoherenceOracle oc(cfg4(/*multi_writer=*/true));
  oc.grant(0, 7, OraclePerm::Write, "dirty-track");
  oc.grant(2, 7, OraclePerm::Write, "dirty-track");
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
}

TEST(CoherenceOracle, InexactMirrorSkipsGrantTimeSwmr) {
  // Hardware caches self-evict silently, so a stale mirror bit is not
  // evidence of a second live copy; SWMR is enforced by audits there.
  CoherenceOracle oc(cfg4(/*multi_writer=*/false, /*exact_mirror=*/false));
  oc.grant(0, 7, OraclePerm::Write, "miss-serve");
  oc.grant(2, 7, OraclePerm::Write, "miss-serve");
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
}

TEST(CoherenceOracle, WriteWithoutPermissionCaught) {
  CoherenceOracle oc(cfg4());
  oc.grant(0, 2, OraclePerm::Read, "page-fetch");
  oc.onAccess(0, 2 * 64, 4, /*write=*/true, /*racy=*/false);
  const OracleViolation* v = find(oc.report(), "no-write-permission");
  ASSERT_NE(v, nullptr) << oc.report().summary();
  EXPECT_EQ(v->proc, 0);
  EXPECT_EQ(v->addr, 2u * 64u);
}

TEST(CoherenceOracle, ReadWithoutPermissionCaught) {
  CoherenceOracle oc(cfg4());
  oc.onAccess(3, 9 * 64 + 12, 4, /*write=*/false, /*racy=*/false);
  const OracleViolation* v = find(oc.report(), "no-read-permission");
  ASSERT_NE(v, nullptr) << oc.report().summary();
  EXPECT_EQ(v->proc, 3);
}

TEST(CoherenceOracle, RevokeToReadKeepsReadPermission) {
  CoherenceOracle oc(cfg4());
  oc.grant(0, 4, OraclePerm::Write, "miss-serve");
  oc.revoke(0, 4, OraclePerm::Read, "downgrade");
  oc.onAccess(0, 4 * 64, 4, /*write=*/false, /*racy=*/false);
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
  oc.onAccess(0, 4 * 64, 4, /*write=*/true, /*racy=*/false);
  EXPECT_TRUE(hasKind(oc.report(), "no-write-permission"));
}

TEST(CoherenceOracle, StaleReadAfterInvalidateCaught) {
  // p0 writes under a lock it never releases to p1; p1's read of the
  // word has no happens-before edge ordering the write first.
  CoherenceOracle oc(cfg4());
  oc.onLockGrant(0, 0);  // advance p0's clock so the write is "recent"
  oc.grant(0, 1, OraclePerm::Write, "miss-serve");
  oc.onAccess(0, 64, 4, /*write=*/true, /*racy=*/false);
  oc.revoke(0, 1, OraclePerm::None, "dir-invalidate");
  oc.grant(1, 1, OraclePerm::Read, "miss-serve");
  oc.onAccess(1, 64, 4, /*write=*/false, /*racy=*/false);
  const OracleViolation* v = find(oc.report(), "stale-value");
  ASSERT_NE(v, nullptr) << oc.report().summary();
  EXPECT_EQ(v->proc, 1);
  EXPECT_EQ(v->addr, 64u);
  EXPECT_NE(v->detail.find("last written by proc 0"), std::string::npos);
}

TEST(CoherenceOracle, LockOrderedReadIsClean) {
  // Same pattern, but the lock is handed over properly: release joins
  // the writer's clock into the lock, grant joins it into the reader.
  CoherenceOracle oc(cfg4());
  oc.onLockGrant(0, 0);
  oc.grant(0, 1, OraclePerm::Write, "miss-serve");
  oc.onAccess(0, 64, 4, /*write=*/true, /*racy=*/false);
  oc.onLockRelease(0, 0);
  oc.revoke(0, 1, OraclePerm::None, "dir-invalidate");
  oc.onLockGrant(1, 0);
  oc.grant(1, 1, OraclePerm::Read, "miss-serve");
  oc.onAccess(1, 64, 4, /*write=*/false, /*racy=*/false);
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
}

TEST(CoherenceOracle, BarrierOrdersWritesForAllReaders) {
  CoherenceOracle oc(cfg4());
  oc.onLockGrant(2, 5);  // advance p2's clock first
  oc.grant(2, 6, OraclePerm::Write, "miss-serve");
  oc.onAccess(2, 6 * 64, 4, /*write=*/true, /*racy=*/false);
  for (ProcId p = 0; p < 4; ++p) oc.onBarrierArrive(p, 0);
  for (ProcId p = 0; p < 4; ++p) oc.onBarrierDepart(p, 0);
  oc.revoke(2, 6, OraclePerm::Read, "downgrade");
  oc.grant(0, 6, OraclePerm::Read, "miss-serve");
  oc.onAccess(0, 6 * 64, 4, /*write=*/false, /*racy=*/false);
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
}

TEST(CoherenceOracle, RacyAccessesExemptFromStaleValue) {
  CoherenceOracle oc(cfg4());
  oc.onLockGrant(0, 0);
  oc.grant(0, 1, OraclePerm::Write, "miss-serve");
  oc.onAccess(0, 64, 4, /*write=*/true, /*racy=*/true);  // annotated racy
  oc.revoke(0, 1, OraclePerm::None, "dir-invalidate");
  oc.grant(1, 1, OraclePerm::Read, "miss-serve");
  oc.onAccess(1, 64, 4, /*write=*/false, /*racy=*/false);
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
}

TEST(CoherenceOracle, CopysetMismatchCaughtByAudit) {
  CoherenceOracle oc(cfg4());
  oc.grant(2, 8, OraclePerm::Read, "miss-serve");
  CoherenceOracle::UnitAudit ua;
  ua.unit = 8;
  ua.actor = 1;
  ua.transition = "dir-update";
  ua.dir_readers = 0;            // directory forgot the copy...
  ua.actual_readers = 1u << 2;   // ...that domain 2 actually holds
  oc.audit(ua);
  const OracleViolation* v = find(oc.report(), "copyset-mismatch");
  ASSERT_NE(v, nullptr) << oc.report().summary();
  EXPECT_EQ(v->proc, 1);
  EXPECT_EQ(v->unit_base, 8u * 64u);
  EXPECT_EQ(v->transition, "dir-update");
}

TEST(CoherenceOracle, TwoActualWritersCaughtByAudit) {
  CoherenceOracle oc(cfg4(/*multi_writer=*/false, /*exact_mirror=*/false));
  CoherenceOracle::UnitAudit ua;
  ua.unit = 3;
  ua.actor = 0;
  ua.transition = "miss-serve";
  ua.dir_readers = (1u << 0) | (1u << 1);
  ua.actual_readers = (1u << 0) | (1u << 1);
  ua.actual_writers = (1u << 0) | (1u << 1);  // two live Modified copies
  oc.audit(ua);
  EXPECT_TRUE(hasKind(oc.report(), "two-writers")) << oc.report().summary();
}

TEST(CoherenceOracle, OwnerMismatchCaughtByAudit) {
  CoherenceOracle oc(cfg4());
  CoherenceOracle::UnitAudit ua;
  ua.unit = 3;
  ua.actor = 0;
  ua.transition = "intervene-serve";
  ua.dir_owner = 1;
  ua.dir_readers = 1u << 1;
  ua.actual_readers = 1u << 2;
  ua.actual_writers = 1u << 2;  // a writer the directory doesn't own
  oc.audit(ua);
  EXPECT_TRUE(hasKind(oc.report(), "owner-mismatch")) << oc.report().summary();
}

TEST(CoherenceOracle, HomeCopyLostCaughtByAudit) {
  CoherenceOracle oc(cfg4());
  CoherenceOracle::UnitAudit ua;
  ua.unit = 12;
  ua.actor = 3;
  ua.transition = "diff-flush";
  ua.must_reader = 1;           // the HLRC home must always hold a copy
  ua.actual_readers = 1u << 3;  // but only domain 3 has one
  ua.dir_readers = 1u << 3;
  oc.audit(ua);
  EXPECT_TRUE(hasKind(oc.report(), "home-copy-lost")) << oc.report().summary();
}

TEST(CoherenceOracle, MirrorMismatchCaughtByAudit) {
  CoherenceOracle oc(cfg4());
  CoherenceOracle::UnitAudit ua;
  ua.unit = 2;
  ua.actor = 0;
  ua.transition = "miss-serve";
  ua.dir_readers = 1u << 1;
  ua.actual_readers = 1u << 1;  // a copy this mirror never saw granted
  oc.audit(ua);
  EXPECT_TRUE(hasKind(oc.report(), "mirror-mismatch")) << oc.report().summary();
}

TEST(CoherenceOracle, GraceWindowCoversInFlightRevocation) {
  // While p0's access is in flight, another processor revokes its
  // permission (the engine interleaved the revoker between p0's grant
  // and p0's deferred check). The access still passes; the grace expires
  // with the access.
  CoherenceOracle oc(cfg4());
  oc.grant(0, 5, OraclePerm::Write, "miss-serve");
  oc.beginAccess(0);
  oc.revoke(0, 5, OraclePerm::None, "dir-invalidate");
  oc.onAccess(0, 5 * 64, 4, /*write=*/true, /*racy=*/false);
  EXPECT_TRUE(oc.report().clean()) << oc.report().summary();
  // The next access (not in flight during the revoke) is a violation.
  oc.beginAccess(0);
  oc.onAccess(0, 5 * 64, 4, /*write=*/true, /*racy=*/false);
  EXPECT_TRUE(hasKind(oc.report(), "no-write-permission"))
      << oc.report().summary();
}

TEST(CoherenceOracle, SummaryNamesProcAddrAndTransition) {
  CoherenceOracle oc(cfg4());
  oc.grant(0, 7, OraclePerm::Write, "miss-serve");
  oc.grant(2, 7, OraclePerm::Write, "bogus-grant");
  const std::string s = oc.report().summary();
  EXPECT_NE(s.find("two-writers"), std::string::npos) << s;
  EXPECT_NE(s.find("proc 2"), std::string::npos) << s;
  EXPECT_NE(s.find("bogus-grant"), std::string::npos) << s;
  EXPECT_NE(s.find("0x1c0"), std::string::npos) << s;  // 7 * 64
}

TEST(CoherenceOracle, ReportCapsButCountsAll) {
  CoherenceOracle::Config c = cfg4();
  c.max_reports = 2;
  CoherenceOracle oc(c);
  for (int i = 0; i < 10; ++i) {
    oc.onAccess(1, static_cast<SimAddr>(i) * 64, 4, /*write=*/true,
                /*racy=*/false);
  }
  EXPECT_EQ(oc.report().violations.size(), 2u);
  EXPECT_EQ(oc.report().total, 10u);
  EXPECT_NE(oc.report().summary().find("8 more suppressed"),
            std::string::npos);
}

}  // namespace
}  // namespace rsvm
