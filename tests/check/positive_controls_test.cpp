// Positive controls for the race checker on the real platforms: tiny
// deliberately-buggy micro-apps must be flagged, and their corrected
// twins must come back clean. This is the end-to-end proof that the
// platform trace streams carry enough ordering information.
#include "check/race_checker.hpp"
#include "runtime/platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace rsvm {
namespace {

constexpr PlatformKind kKinds[] = {PlatformKind::SVM, PlatformKind::NUMA,
                                   PlatformKind::SMP, PlatformKind::FGS};

class PositiveControls : public ::testing::TestWithParam<PlatformKind> {};

std::string kindName(const ::testing::TestParamInfo<PlatformKind>& info) {
  return platformName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PositiveControls,
                         ::testing::ValuesIn(kKinds), kindName);

TEST_P(PositiveControls, UnsynchronizedCounterIsFlaggedAsRace) {
  auto plat = Platform::create(GetParam(), 4);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  Shared<long> counter(*plat, HomePolicy::node(0));
  counter.raw() = 0;
  plat->run([&](Ctx& c) {
    for (int i = 0; i < 4; ++i) {
      counter.update(c, [](long v) { return v + 1; });  // no lock: a bug
    }
  });
  const RaceReport r = chk.report();
  EXPECT_FALSE(r.clean()) << "unsynchronized counter not flagged on "
                          << plat->name();
  EXPECT_GE(r.races_total, 1u);
  ASSERT_FALSE(r.races.empty());
  // The racing unit is the counter's word.
  EXPECT_EQ(r.races[0].unit_base, counter.addr());
  EXPECT_NE(r.summary().find("RACE"), std::string::npos);
}

TEST_P(PositiveControls, LockProtectedCounterIsClean) {
  auto plat = Platform::create(GetParam(), 4);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  Shared<long> counter(*plat, HomePolicy::node(0));
  counter.raw() = 0;
  const int lk = plat->makeLock();
  const int bar = plat->makeBarrier();
  plat->run([&](Ctx& c) {
    for (int i = 0; i < 4; ++i) {
      c.lock(lk);
      counter.update(c, [](long v) { return v + 1; });
      c.unlock(lk);
    }
    c.barrier(bar);
    (void)counter.get(c);  // everyone reads the total: ordered by barrier
  });
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << plat->name() << "\n" << r.summary();
  EXPECT_EQ(counter.raw(), 16);
}

TEST_P(PositiveControls, WordDisjointNeighborsAreFalseSharingNotRaces) {
  auto plat = Platform::create(GetParam(), 4);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  // One 8-byte slot per processor, packed: all four live in one cache
  // line (and one page), so every platform coherence unit is shared
  // while the word ranges stay disjoint.
  SharedArray<long> slots(*plat, 512, HomePolicy::node(0));
  for (std::size_t i = 0; i < slots.size(); ++i) slots.raw(i) = 0;
  plat->run([&](Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    for (int i = 0; i < 8; ++i) {
      slots.set(c, me, static_cast<long>(i));
    }
  });
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << plat->name() << "\n" << r.summary();
  EXPECT_GE(r.falseSharingPairs(), 1u)
      << "false sharing missed on " << plat->name();
  ASSERT_FALSE(r.false_sharing.empty());
  // Attributed to the slots allocation, at the platform's coherence unit.
  EXPECT_EQ(r.false_sharing[0].alloc_base, slots.base());
  EXPECT_EQ(r.false_sharing[0].alloc_bytes, slots.bytes());
  EXPECT_EQ(r.false_sharing[0].example.unit_bytes, plat->coherenceBytes());
  EXPECT_NE(r.summary().find("FALSE SHARING"), std::string::npos);
}

TEST_P(PositiveControls, AnnotatedRacyPeekIsSuppressed) {
  auto plat = Platform::create(GetParam(), 4);
  RaceChecker chk(*plat);
  plat->trace = chk.hook();
  SharedArray<long> flag(*plat, 1, HomePolicy::node(0));
  flag.raw(0) = 0;
  plat->run([&](Ctx& c) {
    if (c.id() == 0) {
      flag.set(c, 0, 1);  // unordered with the peeks below
    } else {
      (void)flag.getRacy(c, 0);
    }
  });
  const RaceReport r = chk.report();
  EXPECT_TRUE(r.clean()) << plat->name() << "\n" << r.summary();
  EXPECT_GE(r.suppressed_racy, 1u);
}

}  // namespace
}  // namespace rsvm
