// Engine stress and scale tests: many processors, deep fiber stacks,
// heavy blocking traffic, quantum extremes.
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace rsvm {
namespace {

TEST(EngineStress, SixtyFourProcessors) {
  Engine eng({.nprocs = 64, .quantum = 100});
  std::vector<Cycles> done(64);
  eng.run([&](ProcId p) {
    for (int i = 0; i < 200; ++i) {
      eng.advance(static_cast<Cycles>(1 + (p + i) % 9), Bucket::Compute);
    }
    done[static_cast<std::size_t>(p)] = eng.now(p);
  });
  for (ProcId p = 0; p < 64; ++p) {
    EXPECT_EQ(done[static_cast<std::size_t>(p)], eng.now(p));
    EXPECT_GT(eng.now(p), 0u);
  }
}

TEST(EngineStress, DeepRecursionFitsFiberStack) {
  Engine eng({.nprocs = 2, .quantum = 1'000});
  std::function<int(int)> rec = [&](int d) -> int {
    // ~100 KB of stack across 2000 frames plus engine yields on the way.
    volatile char pad[48] = {};
    (void)pad;
    if (d == 0) return 0;
    if (d % 64 == 0) eng.advance(1, Bucket::Compute);
    return 1 + rec(d - 1);
  };
  eng.run([&](ProcId) { EXPECT_EQ(rec(2'000), 2'000); });
}

TEST(EngineStress, ManyLockHandoffCycles) {
  // Two processors contend a lock 5'000 times each: 10'000 block/wake
  // cycles through the platform's lock queue.
  SvmPlatform plat(2);
  Shared<int> counter(plat, HomePolicy::node(0));
  counter.raw() = 0;
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 5'000; ++i) {
      c.lock(lk);
      counter.update(c, [](int v) { return v + 1; });
      c.unlock(lk);
    }
  });
  EXPECT_EQ(counter.raw(), 10'000);
}

TEST(EngineStress, TinyQuantumMatchesLargeQuantumTotals) {
  // The quantum affects interleaving, not per-processor work totals in a
  // communication-free program.
  auto total = [](Cycles q) {
    Engine eng({.nprocs = 8, .quantum = q});
    eng.run([&](ProcId p) {
      for (int i = 0; i < 1'000; ++i) {
        eng.advance(static_cast<Cycles>(1 + p), Bucket::Compute);
      }
    });
    Cycles sum = 0;
    for (ProcId p = 0; p < 8; ++p) sum += eng.now(p);
    return sum;
  };
  EXPECT_EQ(total(1), total(1'000'000));
}

TEST(EngineStress, SixtyFourProcessorSvmBarrierStorm) {
  SvmPlatform plat(64);
  SharedArray<int> a(plat, 64 * 1024, HomePolicy::roundRobin(64));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int r = 0; r < 3; ++r) {
      a.set(c, static_cast<std::size_t>(c.id()) * 16, r);
      c.barrier(bar);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.nprocs(), 64);
  EXPECT_EQ(rs.procs[0].barriers, 3u);
}

TEST(EngineStress, LockConvoySixteenWaiters) {
  SvmPlatform plat(16);
  const int lk = plat.makeLock();
  std::vector<int> order;
  plat.run([&](Ctx& c) {
    c.compute(static_cast<Cycles>(1 + c.id()));  // stagger arrivals
    c.lock(lk);
    order.push_back(c.id());
    c.compute(500);
    c.unlock(lk);
  });
  // All 16 entered, each exactly once, in arrival (FIFO) order.
  std::vector<int> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace rsvm
