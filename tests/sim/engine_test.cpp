// Unit tests for the discrete-event engine, fibers and resources.
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rsvm {
namespace {

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldAndResume) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yieldToScheduler();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, NestedFibers) {
  std::vector<int> trace;
  Fiber outer([&] {
    trace.push_back(1);
    Fiber inner([&] {
      trace.push_back(2);
      Fiber::yieldToScheduler();
      trace.push_back(4);
    });
    inner.resume();
    trace.push_back(3);
    inner.resume();
    trace.push_back(5);
  });
  outer.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Resource, UncontendedStartsImmediately) {
  Resource r;
  EXPECT_EQ(r.acquire(100, 10), 110u);
  EXPECT_EQ(r.freeAt(), 110u);
}

TEST(Resource, QueuesFifo) {
  Resource r;
  EXPECT_EQ(r.acquire(0, 10), 10u);
  EXPECT_EQ(r.acquire(5, 10), 20u);   // waits for the first
  EXPECT_EQ(r.acquire(50, 10), 60u);  // idle gap, starts at arrival
  EXPECT_EQ(r.totalQueueing(), 5u);
  EXPECT_EQ(r.transactions(), 3u);
}

TEST(Engine, AdvanceAccumulatesClockAndBuckets) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  eng.run([&](ProcId p) {
    eng.advance(100, Bucket::Compute);
    if (p == 1) eng.advance(50, Bucket::CacheStall);
  });
  EXPECT_EQ(eng.now(0), 100u);
  EXPECT_EQ(eng.now(1), 150u);
  EXPECT_EQ(eng.stats(1)[Bucket::CacheStall], 50u);
  RunStats rs = eng.collect();
  EXPECT_EQ(rs.exec_cycles, 150u);
}

TEST(Engine, LowestClockRunsFirstAcrossYields) {
  // Processor clocks interleave in global time order at yield points.
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  std::vector<std::pair<ProcId, Cycles>> order;
  eng.run([&](ProcId p) {
    for (int i = 0; i < 3; ++i) {
      order.emplace_back(p, eng.now(p));  // record at each resume point
      eng.advance(p == 0 ? 10 : 25, Bucket::Compute);
      eng.yieldNow();
    }
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1].second, order[i].second)
        << "event " << i << " ran out of time order";
  }
}

TEST(Engine, QuantumBoundsDrift) {
  Engine eng({.nprocs = 2, .quantum = 10});
  Cycles max_gap = 0;
  eng.run([&](ProcId p) {
    for (int i = 0; i < 100; ++i) {
      eng.advance(3, Bucket::Compute);
      const Cycles other = eng.now(p == 0 ? 1 : 0);
      const Cycles mine = eng.now(p);
      if (mine > other) max_gap = std::max(max_gap, mine - other);
    }
  });
  // Drift never exceeds quantum + one advance.
  EXPECT_LE(max_gap, 13u);
}

TEST(Engine, BlockAndWake) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  eng.run([&](ProcId p) {
    if (p == 0) {
      eng.block(Bucket::LockWait);
      EXPECT_EQ(eng.now(0), 500u);
    } else {
      eng.advance(200, Bucket::Compute);
      eng.wake(0, 500);
    }
  });
  EXPECT_EQ(eng.stats(0)[Bucket::LockWait], 500u);
}

TEST(Engine, WakeInThePastClampsToBlockerClock) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  eng.run([&](ProcId p) {
    if (p == 0) {
      eng.advance(300, Bucket::Compute);
      eng.block(Bucket::BarrierWait);
      EXPECT_EQ(eng.now(0), 300u);  // woken "in the past": no wait charged
    } else {
      eng.advance(400, Bucket::Compute);
      eng.wake(0, 100);
    }
  });
  EXPECT_EQ(eng.stats(0)[Bucket::BarrierWait], 0u);
}

TEST(Engine, HandlerChargesAbsorbIntoClock) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  eng.run([&](ProcId p) {
    if (p == 0) {
      eng.yieldNow();  // let proc 1 charge us first
      eng.advance(10, Bucket::Compute);
      // 10 compute + 40 handler absorbed
      EXPECT_EQ(eng.now(0), 50u);
    } else {
      eng.chargeHandler(0, 40);
      eng.advance(1, Bucket::Compute);
    }
  });
  EXPECT_EQ(eng.stats(0)[Bucket::Handler], 40u);
}

TEST(Engine, HandlerOverlapsWithBlockedWait) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  eng.run([&](ProcId p) {
    if (p == 0) {
      eng.block(Bucket::BarrierWait);
    } else {
      eng.chargeHandler(0, 30);
      eng.advance(100, Bucket::Compute);
      eng.wake(0, 100);
    }
  });
  // 100 cycles blocked: 30 overlapped as handler work, 70 as wait.
  EXPECT_EQ(eng.stats(0)[Bucket::Handler], 30u);
  EXPECT_EQ(eng.stats(0)[Bucket::BarrierWait], 70u);
  EXPECT_EQ(eng.now(0), 100u);
}

TEST(Engine, DeadlockIsDetected) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  EXPECT_THROW(eng.run([&](ProcId) { eng.block(Bucket::LockWait); }),
               std::runtime_error);
}

TEST(Engine, DeadlockDiagnosticNamesEveryProcessor) {
  // The exception must say, per processor: its state, its clock, and --
  // for blocked processors -- what bucket it is waiting on and since
  // when, so a hung simulation is debuggable from the message alone.
  Engine eng({.nprocs = 3, .quantum = 1'000'000});
  try {
    eng.run([&](ProcId p) {
      if (p == 0) {
        eng.advance(100, Bucket::Compute);
        return;  // finishes normally
      }
      eng.advance(p == 1 ? 700 : 40, Bucket::Compute);
      eng.block(p == 1 ? Bucket::LockWait : Bucket::BarrierWait);
    });
    FAIL() << "expected a deadlock exception";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 of 3 unfinished"), std::string::npos) << msg;
    EXPECT_NE(msg.find("p0: Finished at cycle 100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("p1: Blocked on LockWait since cycle 700"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("p2: Blocked on BarrierWait since cycle 40"),
              std::string::npos)
        << msg;
  }
}

TEST(Engine, DeadlockDiagnosticReportsPendingHandlerWork) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000});
  try {
    eng.run([&](ProcId p) {
      if (p == 0) {
        eng.block(Bucket::DataWait);  // never woken
      } else {
        eng.chargeHandler(0, 25);
        eng.advance(10, Bucket::Compute);
      }
    });
    FAIL() << "expected a deadlock exception";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("p0: Blocked on DataWait since cycle 0"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("25 handler cycles pending"), std::string::npos) << msg;
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trial = [] {
    Engine eng({.nprocs = 4, .quantum = 50});
    eng.run([&](ProcId p) {
      for (int i = 0; i < 1000; ++i) {
        eng.advance(static_cast<Cycles>(1 + (i * (p + 1)) % 7),
                    Bucket::Compute);
      }
    });
    Cycles sum = 0;
    for (ProcId p = 0; p < 4; ++p) sum = sum * 31 + eng.now(p);
    return sum;
  };
  EXPECT_EQ(trial(), trial());
}

TEST(Engine, RejectsBadProcCounts) {
  EXPECT_THROW(Engine({.nprocs = 0, .quantum = 1}), std::invalid_argument);
  EXPECT_THROW(Engine({.nprocs = kMaxProcs + 1, .quantum = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsvm
