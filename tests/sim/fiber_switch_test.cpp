// Backend-parameterized fiber tests: the assembly switcher and the
// ucontext fallback must behave identically through deep call chains,
// exception unwinding, and stack reuse across engines (ISSUE: fiber
// switching & stack pooling). Asm cases skip themselves on builds where
// no stub was compiled in (-DRSVM_FIBER_UCONTEXT=ON or an unsupported
// architecture).
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm {
namespace {

/// Scoped process-wide default-backend override.
class BackendGuard {
 public:
  explicit BackendGuard(Fiber::Backend b) : saved_(Fiber::defaultBackend()) {
    Fiber::setDefaultBackend(b);
  }
  ~BackendGuard() { Fiber::setDefaultBackend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Fiber::Backend saved_;
};

class FiberSwitchTest : public ::testing::TestWithParam<Fiber::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Fiber::Backend::Asm && !Fiber::asmAvailable()) {
      GTEST_SKIP() << "assembly switcher not compiled in";
    }
    guard_ = std::make_unique<BackendGuard>(GetParam());
  }

  std::unique_ptr<BackendGuard> guard_;
};

// Recursion keeps real frames (locals + return addresses) on the fiber
// stack across a yield, so a switcher that mishandles rsp/fp alignment
// or clobbers callee-saved registers fails here, not in an application.
std::uint64_t deepSum(int depth, std::uint64_t acc) {
  volatile std::uint64_t local = acc + static_cast<std::uint64_t>(depth);
  if (depth == 0) {
    Fiber::yieldToScheduler();  // suspend with the whole chain live
    return local;
  }
  return local + deepSum(depth - 1, acc + 1);
}

TEST_P(FiberSwitchTest, DeepCallChainSurvivesYield) {
  std::uint64_t got = 0;
  Fiber f([&] { got = deepSum(2000, 7); });
  EXPECT_EQ(f.backend(), GetParam());
  f.resume();
  EXPECT_FALSE(f.finished());  // suspended at the bottom of the chain
  f.resume();
  EXPECT_TRUE(f.finished());
  // Same closed form both times: the result only checks determinism of
  // the unwound chain, computed once outside a fiber as reference.
  static const std::uint64_t kExpected = [] {
    std::uint64_t acc = 7, total = 0;
    for (int d = 2000; d >= 0; --d) {
      total += acc + static_cast<std::uint64_t>(d);
      ++acc;
    }
    return total;
  }();
  EXPECT_EQ(got, kExpected);
}

TEST_P(FiberSwitchTest, ExceptionUnwindsWithinFiber) {
  // Throw from deep inside the fiber, across a suspension point, and
  // catch at the fiber root: the unwinder must walk frames that were
  // built on a pooled stack entered via the hand-seeded switch frame.
  std::string caught;
  Fiber f([&] {
    try {
      struct Thrower {
        static void blow(int depth) {
          if (depth == 0) {
            Fiber::yieldToScheduler();
            throw std::runtime_error("unwind me");
          }
          blow(depth - 1);
        }
      };
      Thrower::blow(64);
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
  });
  f.resume();
  EXPECT_FALSE(f.finished());
  f.resume();  // resumes, throws, unwinds, catches -- all inside the fiber
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(caught, "unwind me");
}

TEST_P(FiberSwitchTest, StackReuseAcrossEngines) {
  // A bench process runs many engines back to back on one host thread;
  // the pool must hand the second engine the first engine's stacks.
  Fiber::drainStackPool();
  const auto before = Fiber::stackPoolStats();

  constexpr int kProcs = 4;
  auto runOnce = [] {
    Engine eng({.nprocs = kProcs, .quantum = 50});
    eng.run([&](ProcId p) {
      for (int i = 0; i < 20; ++i) {
        eng.advance(static_cast<Cycles>(1 + p), Bucket::Compute);
        eng.yieldNow();
      }
    });
    return eng.collect().exec_cycles;
  };

  const Cycles first = runOnce();   // engine destroyed: stacks pooled
  const Cycles second = runOnce();  // must reuse them, not allocate
  EXPECT_EQ(first, second);

  const auto after = Fiber::stackPoolStats();
  EXPECT_EQ(after.allocated - before.allocated,
            static_cast<std::uint64_t>(kProcs))
      << "second engine allocated fresh stacks instead of reusing";
  EXPECT_GE(after.reused - before.reused, static_cast<std::uint64_t>(kProcs));
  EXPECT_EQ(after.pooled, static_cast<std::uint64_t>(kProcs));
}

TEST_P(FiberSwitchTest, NestedFibersKeepCurrentConsistent) {
  std::vector<Fiber*> seen;
  Fiber outer([&] {
    seen.push_back(Fiber::current());
    Fiber inner([&] {
      seen.push_back(Fiber::current());
      Fiber::yieldToScheduler();
      seen.push_back(Fiber::current());
    });
    inner.resume();
    seen.push_back(Fiber::current());  // back in outer while inner suspended
    inner.resume();
    seen.push_back(Fiber::current());
  });
  outer.resume();
  EXPECT_EQ(Fiber::current(), nullptr);
  // Chronological order: outer start, inner start, outer (inner
  // suspended), inner after its yield, outer again.
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], &outer);
  EXPECT_NE(seen[1], &outer);  // inner
  EXPECT_NE(seen[1], nullptr);
  EXPECT_EQ(seen[2], &outer);
  EXPECT_EQ(seen[3], seen[1]);  // inner resumes as current again
  EXPECT_EQ(seen[4], &outer);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FiberSwitchTest,
    ::testing::Values(Fiber::Backend::Asm, Fiber::Backend::Ucontext),
    [](const ::testing::TestParamInfo<Fiber::Backend>& info) {
      return std::string(Fiber::backendName(info.param));
    });

TEST(FiberSwitch, BackendsProduceIdenticalEngineResults) {
  // The bit-identity contract, at unit scale: the same engine program
  // must produce the same per-processor clocks under either switcher.
  if (!Fiber::asmAvailable()) GTEST_SKIP() << "only one backend compiled in";
  auto trial = [](Fiber::Backend b) {
    BackendGuard guard(b);
    Engine eng({.nprocs = 6, .quantum = 30});
    eng.run([&](ProcId p) {
      for (int i = 0; i < 200; ++i) {
        eng.advance(static_cast<Cycles>(1 + (i * (p + 3)) % 11),
                    Bucket::Compute);
        if (i % 17 == static_cast<int>(p)) eng.yieldNow();
      }
    });
    std::uint64_t h = 1469598103934665603ull;
    for (ProcId p = 0; p < 6; ++p) h = (h ^ eng.now(p)) * 1099511628211ull;
    return h;
  };
  EXPECT_EQ(trial(Fiber::Backend::Asm), trial(Fiber::Backend::Ucontext));
}

TEST(FiberSwitch, AsmDegradesToUcontextWhenUnavailable) {
  if (Fiber::asmAvailable()) {
    EXPECT_EQ(Fiber::setDefaultBackend(Fiber::Backend::Asm),
              Fiber::Backend::Asm);
  } else {
    EXPECT_EQ(Fiber::setDefaultBackend(Fiber::Backend::Asm),
              Fiber::Backend::Ucontext);
  }
  Fiber::setDefaultBackend(Fiber::Backend::Ucontext);
  Fiber f([] {});
  EXPECT_EQ(f.backend(), Fiber::Backend::Ucontext);
  f.resume();
  // Restore the build default for the rest of the test binary.
  Fiber::setDefaultBackend(Fiber::asmAvailable() ? Fiber::Backend::Asm
                                                 : Fiber::Backend::Ucontext);
}

}  // namespace
}  // namespace rsvm
