// RunStats / ProcStats helpers.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Stats, BucketIndexingAndTotal) {
  ProcStats p;
  p[Bucket::Compute] = 10;
  p[Bucket::DataWait] = 30;
  p[Bucket::Handler] = 2;
  EXPECT_EQ(p.total(), 42u);
  EXPECT_EQ(p[Bucket::Compute], 10u);
  EXPECT_EQ(p[Bucket::LockWait], 0u);
}

TEST(Stats, RunAggregates) {
  RunStats rs;
  rs.procs.resize(3);
  rs.procs[0][Bucket::Compute] = 5;
  rs.procs[1][Bucket::Compute] = 7;
  rs.procs[2][Bucket::BarrierWait] = 11;
  rs.procs[0].page_faults = 2;
  rs.procs[2].page_faults = 3;
  EXPECT_EQ(rs.bucketTotal(Bucket::Compute), 12u);
  EXPECT_EQ(rs.bucketTotal(Bucket::BarrierWait), 11u);
  EXPECT_EQ(rs.sum(&ProcStats::page_faults), 5u);
  EXPECT_EQ(rs.nprocs(), 3);
}

TEST(Stats, BucketNamesAreStable) {
  EXPECT_STREQ(bucketName(Bucket::Compute), "Compute");
  EXPECT_STREQ(bucketName(Bucket::Handler), "Handler");
  EXPECT_STREQ(bucketName(Bucket::DataWait), "DataWait");
}

TEST(Stats, BreakdownTableContainsEveryProcessorRow) {
  RunStats rs;
  rs.procs.resize(16);
  for (int p = 0; p < 16; ++p) {
    rs.procs[static_cast<std::size_t>(p)][Bucket::Compute] =
        static_cast<Cycles>(1000 + p);
  }
  const std::string t = rs.breakdownTable();
  EXPECT_NE(t.find("1000"), std::string::npos);
  EXPECT_NE(t.find("1015"), std::string::npos);
}

}  // namespace
}  // namespace rsvm
