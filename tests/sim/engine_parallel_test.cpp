// Parallel scheduler (threads > 1) vs the sequential scheduler: the
// engine promises bit-identical simulated results -- per-processor
// clocks, all six buckets, and every scheduling-visible interaction --
// for any thread count. These tests run the same workload under both
// schedulers and compare the complete observable state.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

namespace rsvm {
namespace {

constexpr Bucket kBuckets[] = {Bucket::Compute,  Bucket::CacheStall,
                               Bucket::DataWait, Bucket::LockWait,
                               Bucket::BarrierWait, Bucket::Handler};

/// Everything the engine exposes about a finished run.
struct Snapshot {
  std::vector<Cycles> clocks;
  std::vector<std::array<Cycles, 6>> buckets;
  Cycles exec_cycles = 0;

  bool operator==(const Snapshot& o) const {
    return clocks == o.clocks && buckets == o.buckets &&
           exec_cycles == o.exec_cycles;
  }
};

Snapshot runWith(int nprocs, Cycles quantum, int threads,
                 const std::function<void(Engine&, ProcId)>& body) {
  Engine eng({.nprocs = nprocs, .quantum = quantum, .threads = threads});
  eng.run([&](ProcId p) { body(eng, p); });
  Snapshot s;
  for (ProcId p = 0; p < nprocs; ++p) {
    s.clocks.push_back(eng.now(p));
    std::array<Cycles, 6> b{};
    for (std::size_t i = 0; i < 6; ++i) b[i] = eng.stats(p)[kBuckets[i]];
    s.buckets.push_back(b);
  }
  s.exec_cycles = eng.collect().exec_cycles;
  return s;
}

/// Compare threads=1 against several parallel widths on one workload.
void expectIdentical(int nprocs, Cycles quantum,
                     const std::function<void(Engine&, ProcId)>& body) {
  const Snapshot seq = runWith(nprocs, quantum, 1, body);
  for (int threads : {2, 3, 4}) {
    const Snapshot par = runWith(nprocs, quantum, threads, body);
    EXPECT_EQ(seq, par) << "threads=" << threads << " diverged from "
                           "the sequential scheduler";
  }
}

TEST(ParallelEngine, ComputeYieldStallMatchesSequential) {
  // Pure scheduling: uneven advances force constant quantum yields and
  // stalls, so the commit order is exercised at every virtual time step.
  expectIdentical(8, 50, [](Engine& eng, ProcId p) {
    for (int i = 0; i < 200; ++i) {
      eng.advance(static_cast<Cycles>(1 + (i * (p + 3)) % 13),
                  Bucket::Compute);
      if (i % 7 == static_cast<int>(p % 7)) eng.yieldNow();
      if (i % 31 == 0) {
        eng.stallUntil(eng.now(p) + static_cast<Cycles>(5 + p),
                       Bucket::DataWait);
      }
    }
  });
}

TEST(ParallelEngine, HandlerChargesMatchSequential) {
  // Cross-processor handler charges land in the target's mailbox while
  // its segment is in flight; the drain point must reproduce the
  // sequential absorb-at-next-advance semantics exactly.
  expectIdentical(8, 100, [](Engine& eng, ProcId p) {
    for (int i = 0; i < 100; ++i) {
      eng.advance(static_cast<Cycles>(2 + (i + p) % 9), Bucket::Compute);
      if (i % 5 == 0) {
        eng.chargeHandler(static_cast<ProcId>((p + 3) % 8),
                          static_cast<Cycles>(4 + i % 6));
      }
      if (i % 11 == 0) eng.yieldNow();
    }
  });
}

TEST(ParallelEngine, BlockWakeAndOverlapMatchSequential) {
  // Even processors block early (small clocks), odd neighbors charge
  // them handler work and wake them later: the blocked-overlap split
  // between Handler and the wait bucket must not move.
  expectIdentical(8, 1'000'000, [](Engine& eng, ProcId p) {
    if (p % 2 == 0) {
      eng.advance(static_cast<Cycles>(10 * (p + 1)), Bucket::Compute);
      eng.block(Bucket::LockWait);
      eng.advance(20, Bucket::Compute);
    } else {
      eng.advance(static_cast<Cycles>(500 + 10 * p), Bucket::Compute);
      eng.chargeHandler(static_cast<ProcId>(p - 1),
                        static_cast<Cycles>(15 + p));
      eng.wake(static_cast<ProcId>(p - 1), eng.now(p));
      eng.advance(5, Bucket::Compute);
    }
  });
}

TEST(ParallelEngine, MixedWorkloadMatchesSequential) {
  // All interaction kinds interleaved under a tight quantum. Even
  // processors take small steps and block at a clock provably below
  // 1000; their odd neighbor wakes them only after stalling past 1000,
  // so the wake always finds a blocked processor (the scheduler runs
  // strictly in virtual-time order).
  expectIdentical(6, 40, [](Engine& eng, ProcId p) {
    for (int round = 0; round < 10; ++round) {
      eng.advance(static_cast<Cycles>(3 + (round * (p + 2)) % 17),
                  Bucket::Compute);
      eng.chargeHandler(static_cast<ProcId>((p + 1) % 6),
                        static_cast<Cycles>(1 + round % 4));
      if (round % 3 == 0) {
        eng.stallUntil(eng.now(p) + 7, Bucket::CacheStall);
      }
      eng.yieldNow();
    }
    if (p % 2 == 0) {
      eng.block(Bucket::BarrierWait);
      eng.advance(9, Bucket::Compute);
    } else {
      eng.stallUntil(1'000 + static_cast<Cycles>(10 * p),
                     Bucket::DataWait);
      eng.chargeHandler(static_cast<ProcId>(p - 1), 12);
      eng.wake(static_cast<ProcId>(p - 1), eng.now(p));
      eng.advance(4, Bucket::Compute);
    }
  });
}

TEST(ParallelEngine, ThreadsClampToProcCount) {
  // More host threads than simulated processors: extra workers idle,
  // results unchanged.
  const auto body = [](Engine& eng, ProcId p) {
    for (int i = 0; i < 50; ++i) {
      eng.advance(static_cast<Cycles>(1 + (p + i) % 5), Bucket::Compute);
      eng.yieldNow();
    }
  };
  EXPECT_EQ(runWith(2, 30, 1, body), runWith(2, 30, 8, body));
}

TEST(ParallelEngine, RepeatedRunsAreDeterministic) {
  // The parallel scheduler is deterministic run-to-run, not just equal
  // to the sequential one on average.
  const auto body = [](Engine& eng, ProcId p) {
    for (int i = 0; i < 150; ++i) {
      eng.advance(static_cast<Cycles>(1 + (i * 7 + p) % 11),
                  Bucket::Compute);
      if (i % 13 == 0) {
        eng.chargeHandler(static_cast<ProcId>((p + 2) % 8), 3);
      }
    }
  };
  const Snapshot first = runWith(8, 60, 4, body);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(first, runWith(8, 60, 4, body)) << "rep " << rep;
  }
}

TEST(ParallelEngine, DeadlockIsDetected) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000, .threads = 2});
  EXPECT_THROW(eng.run([&](ProcId) { eng.block(Bucket::LockWait); }),
               std::runtime_error);
}

TEST(ParallelEngine, DeadlockDiagnosticNamesProcessors) {
  Engine eng({.nprocs = 2, .quantum = 1'000'000, .threads = 2});
  try {
    eng.run([&](ProcId p) {
      eng.advance(p == 0 ? 70 : 40, Bucket::Compute);
      eng.block(p == 0 ? Bucket::LockWait : Bucket::BarrierWait);
    });
    FAIL() << "expected a deadlock exception";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("p0: Blocked on LockWait since cycle 70"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("p1: Blocked on BarrierWait since cycle 40"),
              std::string::npos)
        << msg;
  }
}

TEST(ParallelEngine, HostWatchdogFiresUnderConcurrentShards) {
  // The monotonic host-deadline check must fire while several workers
  // are making scheduling decisions concurrently (the old
  // iteration-sampled check under-sampled here).
  Engine eng({.nprocs = 4, .quantum = 100, .threads = 4});
  eng.setWatchdog(/*max_cycles=*/0, /*max_host_ms=*/50.0);
  EXPECT_THROW(eng.run([&](ProcId) {
                 for (;;) {
                   eng.advance(1, Bucket::Compute);
                   eng.yieldNow();
                 }
               }),
               EngineWatchdogError);
}

TEST(ParallelEngine, CycleWatchdogFiresInThreadedMode) {
  Engine eng({.nprocs = 2, .quantum = 100, .threads = 2});
  eng.setWatchdog(/*max_cycles=*/50'000, /*max_host_ms=*/0.0);
  try {
    eng.run([&](ProcId) {
      for (;;) {
        eng.advance(10, Bucket::Compute);
        eng.yieldNow();
      }
    });
    FAIL() << "watchdog did not fire";
  } catch (const EngineWatchdogError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unfinished"), std::string::npos) << msg;
  }
}

TEST(ParallelEngine, SingleProcRunStaysSequential) {
  // threads > 1 with one simulated processor compiles down to the
  // sequential scheduler (nothing to overlap); must run, not hang.
  Engine eng({.nprocs = 1, .quantum = 100, .threads = 4});
  eng.run([&](ProcId) {
    for (int i = 0; i < 100; ++i) eng.advance(10, Bucket::Compute);
  });
  EXPECT_EQ(eng.now(0), 1000u);
}

}  // namespace
}  // namespace rsvm
