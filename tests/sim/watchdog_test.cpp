// Engine watchdog: converts a hung simulation (livelock, missed wake,
// protocol bug) into a thrown EngineWatchdogError with a deadlock-style
// per-processor dump, instead of an unkillable process.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rsvm {
namespace {

TEST(Watchdog, CycleBudgetConvertsLivelockIntoDiagnostic) {
  Engine eng({.nprocs = 2, .quantum = 100});
  eng.setWatchdog(/*max_cycles=*/50'000, /*max_host_ms=*/0.0);
  try {
    eng.run([&](ProcId p) {
      // Two processors politely yielding to each other forever: no
      // deadlock (both are runnable), just no progress -- a livelock the
      // deadlock detector cannot see.
      for (;;) {
        eng.advance(10, Bucket::Compute);
        eng.yieldNow();
      }
      (void)p;
    });
    FAIL() << "watchdog did not fire";
  } catch (const EngineWatchdogError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cycle budget"), std::string::npos) << msg;
    // The diagnostic names the unfinished processors like the deadlock
    // dump does.
    EXPECT_NE(msg.find("unfinished"), std::string::npos) << msg;
    EXPECT_NE(msg.find("p0:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("p1:"), std::string::npos) << msg;
  }
}

TEST(Watchdog, DoesNotFireOnRunsWithinBudget) {
  Engine eng({.nprocs = 2, .quantum = 100});
  eng.setWatchdog(/*max_cycles=*/1'000'000, /*max_host_ms=*/0.0);
  eng.run([&](ProcId) {
    for (int i = 0; i < 100; ++i) {
      eng.advance(10, Bucket::Compute);
      eng.yieldNow();
    }
  });
  EXPECT_EQ(eng.now(0), 1000u);
  EXPECT_EQ(eng.now(1), 1000u);
}

TEST(Watchdog, OffByDefault) {
  // No watchdog configured: a long (but finite) run completes normally.
  Engine eng({.nprocs = 1, .quantum = 100});
  eng.run([&](ProcId) {
    for (int i = 0; i < 10'000; ++i) eng.advance(100, Bucket::Compute);
  });
  EXPECT_EQ(eng.now(0), 1'000'000u);
}

TEST(Watchdog, HostDeadlineFiresOnBusyLoop) {
  Engine eng({.nprocs = 2, .quantum = 100});
  eng.setWatchdog(/*max_cycles=*/0, /*max_host_ms=*/50.0);
  EXPECT_THROW(eng.run([&](ProcId) {
                 for (;;) {
                   eng.advance(1, Bucket::Compute);
                   eng.yieldNow();
                 }
               }),
               EngineWatchdogError);
}

TEST(Watchdog, ErrorIsARuntimeError) {
  // Sweeps catch std::exception; the watchdog error must be one.
  Engine eng({.nprocs = 1, .quantum = 100});
  eng.setWatchdog(1000, 0.0);
  EXPECT_THROW(eng.run([&](ProcId) {
                 for (;;) {
                   eng.advance(100, Bucket::Compute);
                   eng.yieldNow();
                 }
               }),
               std::runtime_error);
}

}  // namespace
}  // namespace rsvm
