// Deterministic fault injection: same seed, same draw stream; no host
// randomness anywhere (a fault-seeded run must be bit-reproducible).
#include "sim/faultplan.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rsvm {
namespace {

TEST(FaultPlan, SeedZeroIsDisabled) {
  FaultPlan fp(0);
  EXPECT_FALSE(fp.enabled());
  FaultPlan on(7);
  EXPECT_TRUE(on.enabled());
}

TEST(FaultPlan, SameSeedSameStream) {
  FaultPlan a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.msgJitter(), b.msgJitter());
    EXPECT_EQ(a.handlerJitter(), b.handlerJitter());
    EXPECT_EQ(a.spuriousNow(), b.spuriousNow());
    EXPECT_EQ(a.reorderGrant(), b.reorderGrant());
    EXPECT_EQ(a.pick(97), b.pick(97));
  }
  EXPECT_EQ(a.draws(), b.draws());
  EXPECT_EQ(a.draws(), 5000u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.pick(1u << 30) == b.pick(1u << 30)) ++same;
  }
  EXPECT_LT(same, 4);  // 64 independent 30-bit draws colliding is noise
}

TEST(FaultPlan, JitterRespectsConfiguredBounds) {
  FaultPlanConfig cfg;
  cfg.seed = 9;
  cfg.msg_jitter_max = 17;
  cfg.handler_jitter_max = 5;
  FaultPlan fp(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(fp.msgJitter(), 17u);
    EXPECT_LE(fp.handlerJitter(), 5u);
  }
}

TEST(FaultPlan, SpuriousPeriodGovernsRate) {
  FaultPlanConfig cfg;
  cfg.seed = 3;
  cfg.spurious_period = 4;
  FaultPlan fp(cfg);
  int hits = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (fp.spuriousNow()) ++hits;
  }
  // Expected rate 1/4; allow generous slack for a 4000-draw sample.
  EXPECT_GT(hits, n / 8);
  EXPECT_LT(hits, n / 2);
}

TEST(FaultPlan, PickStaysInRange) {
  FaultPlan fp(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(fp.pick(7), 7u);
  }
}

}  // namespace
}  // namespace rsvm
