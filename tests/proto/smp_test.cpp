// Snooping-bus SMP protocol behaviour tests.
#include "proto/smp/smp_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Smp, MissesAreCacheStallNotDataWait) {
  SmpPlatform plat(2);
  SharedArray<int> a(plat, 4096, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (std::size_t i = 0; i < a.size(); i += 32) a.get(c, i);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.procs[0][Bucket::CacheStall], 0u);
  EXPECT_EQ(rs.procs[0][Bucket::DataWait], 0u);
  EXPECT_GT(rs.procs[0].l2_misses, 0u);
}

TEST(Smp, SnoopInvalidatesOtherCopiesOnWrite) {
  SmpPlatform plat(3);
  SharedArray<int> a(plat, 64, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    a.get(c, 0);
    c.barrier(bar);
    if (c.id() == 2) a.set(c, 0, 3);
    c.barrier(bar);
    EXPECT_EQ(a.get(c, 0), 3);
  });
  EXPECT_EQ(plat.engine().collect().procs[2].invalidations_sent, 2u);
}

TEST(Smp, BusSaturatesUnderStreamingTraffic) {
  // With every processor streaming misses, bus busy time approaches the
  // run length: the Radix-on-SMP bandwidth wall from section 5.
  SmpPlatform plat(8);
  SharedArray<int> a(plat, 1 << 20, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    const std::size_t chunk = a.size() / 8;
    const std::size_t base = chunk * static_cast<std::size_t>(c.id());
    for (std::size_t i = 0; i < chunk; i += 32) {
      a.set(c, base + i, 1);
    }
  });
  const RunStats rs = plat.engine().collect();
  const auto& bus = plat.busResource();
  EXPECT_GT(bus.totalBusy() * 10, rs.exec_cycles * 5)
      << "bus should be >50% occupied under streaming writes";
  EXPECT_GT(bus.totalQueueing(), 0u);
}

TEST(Smp, UniprocessorHasNoCoherenceTraffic) {
  SmpPlatform plat(1);
  SharedArray<int> a(plat, 4096, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    for (std::size_t i = 0; i < a.size(); ++i) a.set(c, i, 1);
    for (std::size_t i = 0; i < a.size(); ++i) a.get(c, i);
  });
  EXPECT_EQ(plat.engine().collect().procs[0].invalidations_sent, 0u);
}

TEST(Smp, LockContentionSerializesCriticalSections) {
  SmpPlatform plat(4);
  Shared<int> counter(plat, HomePolicy::node(0));
  const int lk = plat.makeLock();
  counter.raw() = 0;
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 50; ++i) {
      c.lock(lk);
      counter.update(c, [](int v) { return v + 1; });
      c.unlock(lk);
    }
  });
  EXPECT_EQ(counter.raw(), 200);
}

TEST(Smp, BarrierReleasesEveryoneTogether) {
  SmpPlatform plat(8);
  const int bar = plat.makeBarrier();
  std::vector<Cycles> depart(8);
  plat.run([&](Ctx& c) {
    if (c.id() == 3) c.compute(5'000);  // straggler
    c.barrier(bar);
    depart[static_cast<std::size_t>(c.id())] = c.now();
  });
  for (int p = 0; p < 8; ++p) {
    EXPECT_GE(depart[static_cast<std::size_t>(p)], 5'000u);
    EXPECT_LT(depart[static_cast<std::size_t>(p)], 7'000u);
  }
}

}  // namespace
}  // namespace rsvm
