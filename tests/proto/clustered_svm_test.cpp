// Two-level "SMP nodes connected by SVM" configuration (paper section 7
// future work): procs_per_node > 1 shares page state within a node.
#include "core/app.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

SvmParams clustered(int ppn) {
  SvmParams sp;
  sp.procs_per_node = ppn;
  return sp;
}

TEST(ClusteredSvm, NodeMappingAndCounts) {
  SvmPlatform plat(8, clustered(4));
  EXPECT_EQ(plat.nodes(), 2);
  EXPECT_EQ(plat.nodeOf(0), 0);
  EXPECT_EQ(plat.nodeOf(3), 0);
  EXPECT_EQ(plat.nodeOf(4), 1);
  EXPECT_EQ(plat.nodeOf(7), 1);
}

TEST(ClusteredSvm, OnePageFetchServesTheWholeNode) {
  SvmPlatform plat(8, clustered(4));
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 4) a.get(c, 0);  // node 1 faults once
    c.barrier(bar);
    if (c.id() >= 5) a.get(c, 0);  // node mates hit the node's copy
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.sum(&ProcStats::page_faults), 1u);
}

TEST(ClusteredSvm, IntraNodeLockHandoffIsCheap) {
  SvmPlatform plat(8, clustered(4));
  const int lk = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    // Procs 0..3 (one node) pass the lock around; then 0 and 4 ping-pong
    // across nodes.
    for (int i = 0; i < 8; ++i) {
      if (c.id() == i % 4) {
        c.lock(lk);
        c.unlock(lk);
      }
      c.barrier(bar);
    }
  });
  const RunStats rs = plat.engine().collect();
  // All handoffs stayed inside node 0: no cross-node lock cost beyond a
  // couple hundred cycles each.
  Cycles intra = 0;
  for (int p = 0; p < 4; ++p) intra += rs.procs[static_cast<std::size_t>(p)][Bucket::LockWait];
  EXPECT_LT(intra, 10'000u);
}

TEST(ClusteredSvm, CrossNodeLockStillCostsMessages) {
  SvmPlatform plat(8, clustered(4));
  const int lk = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 6; ++i) {
      if (c.id() == (i % 2) * 4) {  // procs 0 and 4: different nodes
        c.lock(lk);
        c.unlock(lk);
      }
      c.barrier(bar);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.procs[0][Bucket::LockWait] + rs.procs[4][Bucket::LockWait],
            10'000u);
}

TEST(ClusteredSvm, BarrierSendsOneArrivalPerNode) {
  // 16 procs in 4 nodes: the manager handles 4 arrivals + 4 releases,
  // so the barrier is much cheaper than 16-node flat SVM.
  SvmPlatform flat(16);
  const int fb = flat.makeBarrier();
  flat.run([&](Ctx& c) { c.barrier(fb); });
  const Cycles flat_cost = flat.engine().collect().exec_cycles;

  SvmPlatform clus(16, clustered(4));
  const int cb = clus.makeBarrier();
  clus.run([&](Ctx& c) { c.barrier(cb); });
  const Cycles clus_cost = clus.engine().collect().exec_cycles;
  EXPECT_LT(clus_cost, flat_cost);
}

TEST(ClusteredSvm, CoherenceAcrossNodesStillLazy) {
  SvmPlatform plat(4, clustered(2));
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int lk = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    a.get(c, 0);
    c.barrier(bar);
    if (c.id() == 0) {  // node 0 writes under a lock
      c.lock(lk);
      a.set(c, 0, 9);
      c.unlock(lk);
    }
    c.barrier(bar);
    if (c.id() == 2) {  // node 1 acquires: must see the write
      c.lock(lk);
      EXPECT_EQ(a.get(c, 0), 9);
      c.unlock(lk);
    }
  });
}

TEST(ClusteredSvm, WholeAppCorrectAndFasterThanFlatSvm) {
  // Ocean's row-wise version on 16 flat SVM nodes vs 4 SMP nodes of 4:
  // clustering removes three quarters of the inter-node traffic.
  registerAllApps();
  const AppDesc* ocean = Registry::instance().find("ocean");
  const VersionDesc* v = ocean->version("rowwise");

  SvmPlatform flat(16);
  const AppResult rf = v->run(flat, ocean->tiny);
  ASSERT_TRUE(rf.correct) << rf.note;

  SvmPlatform clus(16, clustered(4));
  const AppResult rc = v->run(clus, ocean->tiny);
  ASSERT_TRUE(rc.correct) << rc.note;

  EXPECT_LT(rc.stats.exec_cycles, rf.stats.exec_cycles);
}

}  // namespace
}  // namespace rsvm
