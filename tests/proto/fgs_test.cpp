// Fine-grained software shared memory (the section-7 extension platform).
#include "proto/fgs/fgs_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Fgs, EveryAccessPaysTheSoftwareCheck) {
  FgsPlatform plat(2);
  const FgsParams& prm = plat.params();
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (int i = 0; i < 100; ++i) a.get(c, 0);
    }
  });
  // 100 loads: >= 100 * (1 + load_check) compute cycles.
  EXPECT_GE(plat.engine().collect().procs[0][Bucket::Compute],
            100 * (1 + prm.load_check));
}

TEST(Fgs, MissMovesOneBlockNotAPage) {
  FgsPlatform plat(2);
  SharedArray<int> a(plat, 4096, HomePolicy::node(0));  // 4 pages
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.get(c, 0);  // one 128 B block
  });
  const Cycles wait = plat.engine().collect().procs[1][Bucket::DataWait];
  EXPECT_GT(wait, 1'000u);
  EXPECT_LT(wait, 8'000u);  // far below an SVM 4 KB page fetch (~13k)
}

TEST(Fgs, NoPageGranularityFalseSharing) {
  // Two processors write adjacent 128 B blocks on the SAME page: no
  // interference (each gets Exclusive on its own block and keeps it).
  FgsPlatform plat(2);
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));  // one page
  plat.run([&](Ctx& c) {
    const std::size_t slot = c.id() == 0 ? 0 : 32;  // 128 B apart
    for (int i = 0; i < 50; ++i) a.set(c, slot, i);
  });
  const RunStats rs = plat.engine().collect();
  // One upgrade each; no repeated bouncing.
  EXPECT_LE(rs.sum(&ProcStats::page_faults), 3u);
}

TEST(Fgs, WriteInvalidatesSharersEagerly) {
  // Unlike LRC, invalidations happen at write time: a reader sees the
  // new value after a write with no synchronization in between (the
  // platform is sequentially consistent for DRF and non-DRF programs).
  FgsPlatform plat(3);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    a.get(c, 0);  // all sharers
    c.barrier(bar);
    if (c.id() == 1) a.set(c, 0, 77);
    c.barrier(bar);
    EXPECT_EQ(a.get(c, 0), 77);
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[1].invalidations_sent, 2u);
}

TEST(Fgs, DirtyBlockFetchedBackThroughOwner) {
  FgsPlatform plat(3);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.set(c, 0, 5);
    c.barrier(bar);
    if (c.id() == 2) {
      EXPECT_EQ(a.get(c, 0), 5);
    }
  });
}

TEST(Fgs, LocksAndBarriersAreMessageBasedButLrcFree) {
  // Cheaper than SVM's (no diff flush / write-notice processing), more
  // expensive than hardware (still messages).
  FgsPlatform plat(16);
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 4; ++i) c.barrier(bar);
  });
  const Cycles per_barrier = plat.engine().collect().exec_cycles / 4;
  EXPECT_GT(per_barrier, 3'000u);    // >> hardware (~2k at 16p)
  EXPECT_LT(per_barrier, 40'000u);   // << SVM (~50k+ at 16p)
}

TEST(Fgs, LockMutualExclusion) {
  FgsPlatform plat(4);
  Shared<int> counter(plat, HomePolicy::node(0));
  const int lk = plat.makeLock();
  counter.raw() = 0;
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 30; ++i) {
      c.lock(lk);
      counter.update(c, [](int v) { return v + 1; });
      c.unlock(lk);
    }
  });
  EXPECT_EQ(counter.raw(), 120);
}

TEST(Fgs, WarmBlocksSkipColdMisses) {
  FgsPlatform plat(2);
  SharedArray<int> a(plat, 4096, HomePolicy::node(0));
  plat.warm(1, a.base(), a.bytes());
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      for (std::size_t i = 0; i < a.size(); i += 32) a.get(c, i);
    }
  });
  EXPECT_EQ(plat.engine().collect().procs[1].page_faults, 0u);
}

TEST(Fgs, DeterministicCycleCounts) {
  auto trial = [] {
    FgsPlatform plat(4);
    SharedArray<int> a(plat, 2048, HomePolicy::roundRobin(4));
    const int bar = plat.makeBarrier();
    plat.run([&](Ctx& c) {
      for (std::size_t i = static_cast<std::size_t>(c.id()); i < a.size();
           i += 4) {
        a.set(c, i, static_cast<int>(i));
      }
      c.barrier(bar);
    });
    return plat.engine().collect().exec_cycles;
  };
  EXPECT_EQ(trial(), trial());
}

}  // namespace
}  // namespace rsvm
