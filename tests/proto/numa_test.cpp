// Directory protocol (CC-NUMA) behaviour tests.
#include "proto/numa/numa_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Numa, LocalMissIsCacheStallRemoteMissIsDataWait) {
  NumaPlatform plat(2);
  SharedArray<int> local(plat, 1024, HomePolicy::node(0));
  SharedArray<int> remote(plat, 1024, HomePolicy::node(1));
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      local.get(c, 0);
      remote.get(c, 0);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[0].local_misses, 1u);
  EXPECT_EQ(rs.procs[0].remote_misses, 1u);
  EXPECT_GT(rs.procs[0][Bucket::CacheStall], 0u);
  EXPECT_GT(rs.procs[0][Bucket::DataWait], 0u);
}

TEST(Numa, DirectoryTracksSharersAndOwner) {
  NumaPlatform plat(4);
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    a.get(c, 0);  // everyone reads: all sharers
    c.barrier(bar);
    if (c.id() == 0) {
      EXPECT_EQ(plat.dirSharers(a.addr(0)), 0xFull);
      EXPECT_EQ(plat.dirOwner(a.addr(0)), -1);
    }
    c.barrier(bar);
    if (c.id() == 2) a.set(c, 0, 1);  // write: exclusive ownership
    c.barrier(bar);
    if (c.id() == 0) {
      // note: proc 0's read below happens after this check via barriers
      EXPECT_EQ(plat.dirSharers(a.addr(0)), 1ull << 2);
      EXPECT_EQ(plat.dirOwner(a.addr(0)), 2);
    }
  });
}

TEST(Numa, WriteInvalidatesAllSharers) {
  NumaPlatform plat(4);
  SharedArray<int> a(plat, 1024, HomePolicy::node(3));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    a.get(c, 0);
    c.barrier(bar);
    if (c.id() == 0) a.set(c, 0, 7);
    c.barrier(bar);
    EXPECT_EQ(a.get(c, 0), 7);
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[0].invalidations_sent, 3u);
  // The other three re-miss after the invalidation.
  for (int p = 1; p < 4; ++p) {
    EXPECT_GE(rs.procs[static_cast<std::size_t>(p)].l2_misses, 2u);
  }
}

TEST(Numa, DirtyRemoteLineServedByThreeHopIntervention) {
  NumaPlatform plat(3);
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.set(c, 0, 55);  // proc 1 holds the line Modified
    c.barrier(bar);
    if (c.id() == 2) {
      EXPECT_EQ(a.get(c, 0), 55);  // 3-hop: 2 -> home 0 -> owner 1 -> 2
    }
  });
  // After the read the line is Shared with {1, 2} as sharers.
  EXPECT_EQ(plat.dirOwner(a.addr(0)), -1);
  EXPECT_EQ(plat.dirSharers(a.addr(0)) & 0b110ull, 0b110ull);
}

TEST(Numa, FalseSharingBouncesLine) {
  // Two processors write adjacent words in one 64 B line: every write
  // after the other's is a coherence miss (the SVM-vs-HW contrast at the
  // heart of the paper's granularity discussion).
  NumaParams prm;
  prm.quantum = 50;  // fine-grain interleaving so the writes overlap in time
  NumaPlatform plat(2, prm);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 50; ++i) {
      a.set(c, c.id() == 0 ? 0 : 1, i);
      c.compute(60);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.sum(&ProcStats::invalidations_sent), 20u);
}

TEST(Numa, LocksAreCheapComparedToSvm) {
  NumaPlatform plat(2);
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (int i = 0; i < 10; ++i) {
        c.lock(lk);
        c.unlock(lk);
      }
    }
  });
  // 10 uncontended re-acquires: a few hundred cycles total.
  EXPECT_LT(plat.engine().collect().procs[0][Bucket::LockWait], 1'000u);
}

TEST(Numa, BarrierCostScalesLinearlyButStaysSmall) {
  NumaPlatform plat(16);
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) { c.barrier(bar); });
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.exec_cycles, 500u);
  EXPECT_LT(rs.exec_cycles, 10'000u);  // vs tens of thousands on SVM
}

TEST(Numa, EvictionReleasesOwnershipInDirectory) {
  // Write a line, then stream enough conflicting lines through the same
  // set to evict it; the directory must drop the stale ownership so a
  // later reader is served by memory, not a bogus intervention.
  NumaParams prm;
  prm.l2 = {4096, 64, 1};  // tiny direct-mapped L2: 64 sets
  prm.l1 = {1024, 32, 1};
  NumaPlatform plat(2, prm);
  SharedArray<int> a(plat, 1 << 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      a.set(c, 0, 9);
      // 4 KB apart -> same set in a 4 KB direct-mapped cache.
      for (int k = 1; k <= 3; ++k) a.set(c, static_cast<std::size_t>(k) * 1024, k);
    }
    c.barrier(bar);
    if (c.id() == 0) {
      EXPECT_EQ(a.get(c, 0), 9);
      EXPECT_EQ(plat.dirOwner(a.addr(0)), -1);
    }
  });
}

TEST(Numa, DeterministicCycleCounts) {
  auto trial = [] {
    NumaPlatform plat(4);
    SharedArray<int> a(plat, 8192, HomePolicy::roundRobin(4));
    const int bar = plat.makeBarrier();
    plat.run([&](Ctx& c) {
      for (int rep = 0; rep < 2; ++rep) {
        for (std::size_t i = static_cast<std::size_t>(c.id()); i < a.size();
             i += 4) {
          a.set(c, i, static_cast<int>(i + static_cast<std::size_t>(rep)));
        }
        c.barrier(bar);
      }
    });
    return plat.engine().collect().exec_cycles;
  };
  EXPECT_EQ(trial(), trial());
}

}  // namespace
}  // namespace rsvm
