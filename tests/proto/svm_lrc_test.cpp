// Deeper lazy-release-consistency semantics: causal transitivity through
// lock chains, interval bookkeeping, manager accounting, and the cost
// asymmetries the paper's analysis rests on.
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(SvmLrc, CausalityIsTransitiveAcrossDifferentLocks) {
  // p0 writes x, releases L1. p1 acquires L1 (sees x), writes y,
  // releases L2. p2 acquires L2: it must see BOTH y and x -- the write
  // notices travel with the full vector clock, not per-lock.
  SvmPlatform plat(3);
  SharedArray<int> x(plat, 4, HomePolicy::node(0));
  SharedArray<int> y(plat, 4, HomePolicy::node(0));
  const int l1 = plat.makeLock();
  const int l2 = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    // Prime resident copies everywhere so staleness is observable.
    x.get(c, 0);
    y.get(c, 0);
    c.barrier(bar);
    if (c.id() == 0) {
      c.lock(l1);
      x.set(c, 0, 11);
      c.unlock(l1);
    }
    c.barrier(bar);  // sequence the three critical sections
    if (c.id() == 1) {
      c.lock(l1);
      EXPECT_EQ(x.get(c, 0), 11);
      c.unlock(l1);
      c.lock(l2);
      y.set(c, 0, 22);
      c.unlock(l2);
    }
    c.barrier(bar);
    if (c.id() == 2) {
      c.lock(l2);
      EXPECT_EQ(y.get(c, 0), 22);
      EXPECT_EQ(x.get(c, 0), 11);  // transitively visible
      c.unlock(l2);
    }
  });
}

TEST(SvmLrc, RepeatedAcquireByOwnerIsCheap) {
  SvmPlatform plat(2);
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    if (c.id() == 0) {
      for (int i = 0; i < 20; ++i) {
        c.lock(lk);
        c.unlock(lk);
      }
    }
  });
  const RunStats rs = plat.engine().collect();
  // 20 local re-acquires: way below one remote handoff's cost.
  EXPECT_LT(rs.procs[0][Bucket::LockWait], 5'000u);
  EXPECT_EQ(rs.procs[0].remote_lock_acquires, 0u);
}

TEST(SvmLrc, LockPingPongIsExpensive) {
  SvmPlatform plat(2);
  const int lk = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 10; ++i) {
      if (c.id() == i % 2) {
        c.lock(lk);
        c.unlock(lk);
      }
      c.barrier(bar);
    }
  });
  const RunStats rs = plat.engine().collect();
  // 9 remote transfers at thousands of cycles each.
  EXPECT_GT(rs.bucketTotal(Bucket::LockWait), 20'000u);
}

TEST(SvmLrc, DiffBytesTrackActuallyWrittenData) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 2048, HomePolicy::node(0));  // two pages
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      for (int i = 0; i < 10; ++i) a.set(c, static_cast<std::size_t>(i), i);
      a.set(c, 1024, 1);  // second page, one word
    }
    c.barrier(bar);
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[1].diffs_created, 2u);
  EXPECT_EQ(rs.procs[1].diff_bytes, 10u * 4u + 4u);
}

TEST(SvmLrc, BarrierManagerAccruesHandlerTime) {
  SvmPlatform plat(16);
  const int bar = plat.makeBarrier();  // manager = proc 10 (16 procs)
  plat.run([&](Ctx& c) {
    for (int i = 0; i < 4; ++i) c.barrier(bar);
  });
  const RunStats rs = plat.engine().collect();
  Cycles mgr = rs.procs[10][Bucket::Handler];
  for (int p = 0; p < 16; ++p) {
    if (p == 10) continue;
    EXPECT_GT(mgr, rs.procs[static_cast<std::size_t>(p)][Bucket::Handler])
        << "manager should do the most protocol work, proc " << p;
  }
}

TEST(SvmLrc, WriterDoesNotInvalidateItself) {
  // A processor's own writes never cause it a fault.
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.set(c, 0, 1);
    c.barrier(bar);
    if (c.id() == 1) {
      const auto faults_before = c.stats().page_faults;
      EXPECT_EQ(a.get(c, 0), 1);
      EXPECT_EQ(c.stats().page_faults, faults_before);
    }
  });
}

TEST(SvmLrc, IntervalsAccumulateAcrossBarriers) {
  SvmPlatform plat(4);
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int r = 0; r < 5; ++r) {
      a.set(c, static_cast<std::size_t>(c.id()), r);  // false sharing
      c.barrier(bar);
      // Everyone re-reads everyone's slot: values must be current.
      for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(a.get(c, static_cast<std::size_t>(p)), r);
      }
      c.barrier(bar);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[0].barriers, 10u);
}

TEST(SvmLrc, ColdFaultCostMatchesModelParameters) {
  SvmPlatform plat(2);
  const SvmParams& prm = plat.params();
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.get(c, 0);
  });
  const Cycles wait = plat.engine().collect().procs[1][Bucket::DataWait];
  // Uncontended fetch: two messages + page transfer + handlers, within
  // an order-of-magnitude envelope of the configured parameters.
  const Cycles floor = prm.wire_latency * 2 +
                       static_cast<Cycles>((prm.page_bytes) /
                                           prm.iobus_bytes_per_cycle);
  EXPECT_GT(wait, floor);
  EXPECT_LT(wait, floor + 8 * prm.msg_sw_overhead);
}

TEST(SvmLrc, SixteenProcessorFalseSharingStorm) {
  // All processors write distinct words of one page between barriers --
  // the protocol must stay correct (diff merging) while costs explode.
  SvmPlatform plat(16);
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    for (int r = 0; r < 3; ++r) {
      a.set(c, static_cast<std::size_t>(c.id()), r * 100 + c.id());
      c.barrier(bar);
    }
  });
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(a.raw(static_cast<std::size_t>(p)), 200 + p);
  }
  const RunStats rs = plat.engine().collect();
  // 15 twins per round (the home writes without one).
  EXPECT_EQ(rs.sum(&ProcStats::diffs_created), 45u);
}

}  // namespace
}  // namespace rsvm

namespace rsvm {
namespace {

// Regression: non-default page sizes must keep home bookkeeping in the
// right units (a 4 KB assumption once corrupted the heap at 16 KB pages).
class SvmPageSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SvmPageSize, ProtocolStaysCorrect) {
  SvmParams sp;
  sp.page_bytes = GetParam();
  SvmPlatform plat(4, sp);
  SharedArray<int> a(plat, 64 * 1024, HomePolicy::roundRobin(4));
  const int bar = plat.makeBarrier();
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    for (std::size_t i = static_cast<std::size_t>(c.id()); i < a.size();
         i += 4) {
      a.set(c, i, static_cast<int>(i));
    }
    c.barrier(bar);
    c.lock(lk);
    a.set(c, 0, c.id());
    c.unlock(lk);
    c.barrier(bar);
    for (std::size_t i = 1; i < a.size(); i += 1024) {
      EXPECT_EQ(a.get(c, i), static_cast<int>(i));
    }
  });
  EXPECT_GT(plat.engine().collect().exec_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, SvmPageSize,
                         ::testing::Values(1024u, 4096u, 16384u));

}  // namespace
}  // namespace rsvm
