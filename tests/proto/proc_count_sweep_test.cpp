// Parameterized protocol invariants swept over processor counts: the
// platforms must stay correct (and their costs monotone where expected)
// from 2 to 32 processors.
#include "proto/fgs/fgs_platform.hpp"
#include "proto/numa/numa_platform.hpp"
#include "proto/smp/smp_platform.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

struct SweepCase {
  PlatformKind kind;
  int procs;
};

std::string sweepName(const ::testing::TestParamInfo<SweepCase>& i) {
  return std::string(platformName(i.param.kind)) + "_" +
         std::to_string(i.param.procs) + "p";
}

class ProcSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  std::unique_ptr<Platform> make() const {
    return Platform::create(GetParam().kind, GetParam().procs);
  }
};

TEST_P(ProcSweep, LockProtectedCounterIsExact) {
  auto plat = make();
  const int P = plat->nprocs();
  Shared<int> counter(*plat, HomePolicy::node(0));
  counter.raw() = 0;
  const int lk = plat->makeLock();
  plat->run([&](Ctx& c) {
    for (int i = 0; i < 20; ++i) {
      c.lock(lk);
      counter.update(c, [](int v) { return v + 1; });
      c.unlock(lk);
    }
  });
  EXPECT_EQ(counter.raw(), 20 * P);
}

TEST_P(ProcSweep, BarrierSeparatedPhasesSeeEachOthersWrites) {
  auto plat = make();
  const int P = plat->nprocs();
  SharedArray<int> slots(*plat, static_cast<std::size_t>(P) * 1024,
                         HomePolicy::roundRobin(P));
  const int bar = plat->makeBarrier();
  plat->run([&](Ctx& c) {
    for (int round = 0; round < 3; ++round) {
      slots.set(c, static_cast<std::size_t>(c.id()) * 1024,
                round * 1000 + c.id());
      c.barrier(bar);
      for (int q = 0; q < P; ++q) {
        EXPECT_EQ(slots.get(c, static_cast<std::size_t>(q) * 1024),
                  round * 1000 + q);
      }
      c.barrier(bar);
    }
  });
}

TEST_P(ProcSweep, ProducerConsumerPipelineThroughLocks) {
  auto plat = make();
  const int P = plat->nprocs();
  if (P < 2) GTEST_SKIP();
  SharedArray<int> ring(*plat, static_cast<std::size_t>(P), HomePolicy::node(0));
  const int bar = plat->makeBarrier();
  const int lk = plat->makeLock();
  for (int i = 0; i < P; ++i) ring.raw(static_cast<std::size_t>(i)) = 0;
  plat->run([&](Ctx& c) {
    // Each proc increments its left neighbor's slot under the lock, then
    // everyone checks the full ring after a barrier.
    const auto left = static_cast<std::size_t>((c.id() + P - 1) % P);
    c.lock(lk);
    ring.update(c, left, [](int v) { return v + 1; });
    c.unlock(lk);
    c.barrier(bar);
    for (int q = 0; q < P; ++q) {
      EXPECT_EQ(ring.get(c, static_cast<std::size_t>(q)), 1);
    }
  });
}

TEST_P(ProcSweep, DeterministicAcrossIdenticalRuns) {
  auto one = [this] {
    auto plat = make();
    const int P = plat->nprocs();
    SharedArray<int> a(*plat, 4096, HomePolicy::roundRobin(P));
    const int bar = plat->makeBarrier();
    plat->run([&](Ctx& c) {
      for (std::size_t i = static_cast<std::size_t>(c.id()); i < a.size();
           i += static_cast<std::size_t>(c.nprocs())) {
        a.set(c, i, static_cast<int>(i));
      }
      c.barrier(bar);
    });
    return plat->engine().collect().exec_cycles;
  };
  EXPECT_EQ(one(), one());
}

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  for (PlatformKind k : {PlatformKind::SVM, PlatformKind::SMP,
                         PlatformKind::NUMA, PlatformKind::FGS}) {
    for (int p : {2, 3, 8, 16, 32}) {
      cases.push_back({k, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Kinds, ProcSweep, ::testing::ValuesIn(sweepCases()),
                         sweepName);

}  // namespace
}  // namespace rsvm
