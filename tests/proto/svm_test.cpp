// HLRC protocol behaviour tests: residency, twins/diffs, lazy invalidation
// via write notices, lock handoff carrying causal knowledge, barriers,
// and the paper's diagnostic knobs.
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(Svm, ColdAccessFaultsOnceThenResident) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  a.raw(3) = 7;
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      EXPECT_FALSE(plat.resident(1, a.addr(3)));
      EXPECT_EQ(a.get(c, 3), 7);
      EXPECT_TRUE(plat.resident(1, a.addr(3)));
      EXPECT_EQ(a.get(c, 3), 7);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[1].page_faults, 1u);
  EXPECT_EQ(rs.procs[0].page_faults, 0u);
  EXPECT_GT(rs.procs[1][Bucket::DataWait], 0u);
}

TEST(Svm, HomeNeverFaultsOnItsOwnPages) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 1024, HomePolicy::node(1));
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      for (std::size_t i = 0; i < a.size(); ++i) a.set(c, i, 1);
    }
  });
  EXPECT_EQ(plat.engine().collect().procs[1].page_faults, 0u);
}

TEST(Svm, FirstWriteInIntervalCreatesOneTwin) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 64, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      for (int i = 0; i < 10; ++i) a.set(c, static_cast<std::size_t>(i), i);
    }
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_EQ(rs.procs[1].write_faults, 1u);  // one page, one twin
  EXPECT_GT(rs.procs[1][Bucket::Handler], 0u);
}

TEST(Svm, HomeWritesNeedNoTwin) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 64, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    if (c.id() == 0) a.set(c, 0, 1);
  });
  EXPECT_EQ(plat.engine().collect().procs[0].write_faults, 0u);
}

TEST(Svm, BarrierPropagatesWritesViaInvalidation) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  a.raw(0) = 0;
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      a.get(c, 0);  // fetch the page: resident copy at proc 1
    }
    c.barrier(bar);
    if (c.id() == 0) {
      a.set(c, 0, 99);  // home writes
    }
    c.barrier(bar);
    if (c.id() == 1) {
      // The write notice from proc 0's barrier arrival invalidated our
      // copy; this access re-fetches the up-to-date home page.
      EXPECT_FALSE(plat.resident(1, a.addr(0)));
      EXPECT_EQ(a.get(c, 0), 99);
    }
  });
  EXPECT_EQ(plat.engine().collect().procs[1].page_faults, 2u);
}

TEST(Svm, NoInvalidationWithoutSynchronization) {
  // LRC is lazy: writes by one processor do not disturb another's
  // resident copy until an acquire creates the causal obligation.
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.get(c, 0);
    c.barrier(bar);
    if (c.id() == 0) {
      a.set(c, 0, 5);
    } else {
      for (int i = 0; i < 100; ++i) a.get(c, 0);  // no sync: stays resident
    }
  });
  EXPECT_EQ(plat.engine().collect().procs[1].page_faults, 1u);
}

TEST(Svm, LockHandoffCarriesWriteNotices) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int lk = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.get(c, 0);  // resident at 1
    c.barrier(bar);
    if (c.id() == 0) {
      c.lock(lk);
      a.set(c, 0, 42);
      c.unlock(lk);
    }
    c.barrier(bar);  // order the two critical sections deterministically
    if (c.id() == 1) {
      c.lock(lk);
      // Acquiring the lock after proc 0's release must invalidate our
      // stale copy and deliver the new value.
      EXPECT_EQ(a.get(c, 0), 42);
      c.unlock(lk);
    }
  });
}

TEST(Svm, FalseSharingMultipleWritersBothDiffsSurvive) {
  // Two processors write disjoint words of the same page between
  // barriers: the multiple-writer scheme must merge both diffs at the
  // home without losing either update.
  SvmPlatform plat(3);
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));  // one page
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.set(c, 1, 111);
    if (c.id() == 2) a.set(c, 2, 222);
    c.barrier(bar);
    EXPECT_EQ(a.get(c, 1), 111);
    EXPECT_EQ(a.get(c, 2), 222);
  });
  const RunStats rs = plat.engine().collect();
  EXPECT_GE(rs.procs[1].diffs_created, 1u);
  EXPECT_GE(rs.procs[2].diffs_created, 1u);
}

TEST(Svm, LockMutualExclusionProtectsReadModifyWrite) {
  SvmPlatform plat(4);
  Shared<int> counter(plat, HomePolicy::node(0));
  const int lk = plat.makeLock();
  counter.raw() = 0;
  constexpr int kPer = 25;
  plat.run([&](Ctx& c) {
    for (int i = 0; i < kPer; ++i) {
      c.lock(lk);
      counter.update(c, [](int v) { return v + 1; });
      c.unlock(lk);
    }
  });
  EXPECT_EQ(counter.raw(), 4 * kPer);
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.bucketTotal(Bucket::LockWait), 0u);
}

TEST(Svm, BarrierIsExpensiveRelativeToHwScale) {
  // An empty barrier on 16-node SVM costs tens of thousands of cycles
  // (protocol messages through the manager) -- the effect behind the
  // paper's "barriers are in general expensive in SVM" finding.
  SvmPlatform plat(16);
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) { c.barrier(bar); });
  const RunStats rs = plat.engine().collect();
  EXPECT_GT(rs.exec_cycles, 10'000u);
  EXPECT_LT(rs.exec_cycles, 1'000'000u);
}

TEST(Svm, WarmPagesDoNotFault) {
  SvmPlatform plat(2);
  SharedArray<int> a(plat, 2048, HomePolicy::node(0));  // two pages
  plat.warm(1, a.base(), a.bytes());
  plat.run([&](Ctx& c) {
    if (c.id() == 1) {
      for (std::size_t i = 0; i < a.size(); i += 256) a.get(c, i);
    }
  });
  EXPECT_EQ(plat.engine().collect().procs[1].page_faults, 0u);
}

TEST(Svm, FreeCsFaultsKnobSuppressesFaultCostInsideCriticalSections) {
  auto runOnce = [](bool knob) {
    SvmPlatform plat(2);
    plat.free_cs_faults = knob;
    SharedArray<int> a(plat, 4096, HomePolicy::node(0));  // 4 pages
    const int lk = plat.makeLock();
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        c.lock(lk);
        for (std::size_t i = 0; i < a.size(); i += 512) a.get(c, i);
        c.unlock(lk);
      }
    });
    return plat.engine().collect().procs[1][Bucket::DataWait];
  };
  EXPECT_GT(runOnce(false), 0u);
  EXPECT_EQ(runOnce(true), 0u);
}

TEST(Svm, RoundRobinHomesDistributePages) {
  SvmPlatform plat(4);
  SharedArray<int> a(plat, 4 * 1024 * 4, HomePolicy::roundRobin(4));
  // 16 KB = 4 pages -> homes 0,1,2,3.
  for (int pg = 0; pg < 4; ++pg) {
    EXPECT_EQ(plat.homeOf(a.addr(static_cast<std::size_t>(pg) * 1024)), pg);
  }
}

TEST(Svm, DeterministicCycleCounts) {
  auto trial = [] {
    SvmPlatform plat(4);
    SharedArray<int> a(plat, 4096, HomePolicy::roundRobin(4));
    const int bar = plat.makeBarrier();
    const int lk = plat.makeLock();
    plat.run([&](Ctx& c) {
      for (int rep = 0; rep < 3; ++rep) {
        for (std::size_t i = static_cast<std::size_t>(c.id()); i < a.size();
             i += static_cast<std::size_t>(c.nprocs())) {
          a.set(c, i, static_cast<int>(i));
        }
        c.lock(lk);
        a.set(c, 0, c.id());
        c.unlock(lk);
        c.barrier(bar);
      }
    });
    return plat.engine().collect().exec_cycles;
  };
  EXPECT_EQ(trial(), trial());
}

}  // namespace
}  // namespace rsvm
