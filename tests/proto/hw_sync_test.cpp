// Hardware-platform synchronization model: FIFO lock handoff, barrier
// epochs, and the cached-vs-remote cost asymmetry.
#include "proto/numa/numa_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(HwSync, LockGrantsInFifoOrder) {
  NumaPlatform plat(4);
  const int lk = plat.makeLock();
  std::vector<int> order;
  plat.run([&](Ctx& c) {
    // Stagger arrival so the queue order is deterministic: 0,1,2,3.
    c.compute(static_cast<Cycles>(1 + c.id() * 500));
    c.lock(lk);
    order.push_back(c.id());
    c.compute(3'000);  // hold long enough that everyone queues
    c.unlock(lk);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(HwSync, CachedReacquireCheaperThanRemoteTransfer) {
  NumaPlatform plat(2);
  const int lk_local = plat.makeLock();
  const int lk_pp = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    // Phase 1: proc 0 re-acquires its own lock 10 times.
    if (c.id() == 0) {
      for (int i = 0; i < 10; ++i) {
        c.lock(lk_local);
        c.unlock(lk_local);
      }
    }
    c.barrier(bar);
    // Phase 2: the second lock ping-pongs 10 times.
    for (int i = 0; i < 10; ++i) {
      if (c.id() == i % 2) {
        c.lock(lk_pp);
        c.unlock(lk_pp);
      }
      c.barrier(bar);
    }
  });
  const RunStats rs = plat.engine().collect();
  const Cycles local = rs.procs[0][Bucket::LockWait];
  const Cycles total = rs.bucketTotal(Bucket::LockWait);
  EXPECT_GT(total - local, local);  // ping-pong dominates
}

TEST(HwSync, BarrierReusableAcrossEpochs) {
  NumaPlatform plat(8);
  const int bar = plat.makeBarrier();
  SharedArray<int> stage(plat, 8, HomePolicy::node(0));
  plat.run([&](Ctx& c) {
    for (int e = 0; e < 5; ++e) {
      stage.set(c, static_cast<std::size_t>(c.id()), e);
      c.barrier(bar);
      for (int p = 0; p < 8; ++p) {
        EXPECT_EQ(stage.get(c, static_cast<std::size_t>(p)), e)
            << "epoch " << e;
      }
      c.barrier(bar);
    }
  });
  EXPECT_EQ(plat.engine().collect().procs[0].barriers, 10u);
}

TEST(HwSync, UncontendedBarrierScalesWithArrivalSerialization) {
  // Arrivals serialize on the counter line, so cost grows with P.
  auto cost = [](int procs) {
    NumaPlatform plat(procs);
    const int bar = plat.makeBarrier();
    plat.run([&](Ctx& c) { c.barrier(bar); });
    return plat.engine().collect().exec_cycles;
  };
  EXPECT_LT(cost(2), cost(8));
  EXPECT_LT(cost(8), cost(16));
}

TEST(HwSync, ContendedCriticalSectionsSerializeTime) {
  NumaPlatform plat(4);
  const int lk = plat.makeLock();
  plat.run([&](Ctx& c) {
    c.lock(lk);
    c.compute(10'000);
    c.unlock(lk);
  });
  // Four 10k-cycle critical sections must take at least 40k end to end.
  EXPECT_GE(plat.engine().collect().exec_cycles, 40'000u);
}

}  // namespace
}  // namespace rsvm
