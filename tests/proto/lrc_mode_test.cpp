// Non-home-based (TreadMarks-style) LRC mode: correctness and the
// HLRC-vs-LRC cost/memory contrasts the paper cites from [21].
#include "core/app.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

SvmParams lrcParams() {
  SvmParams sp;
  sp.home_based = false;
  return sp;
}

TEST(LrcMode, BasicCoherenceThroughBarrier) {
  SvmPlatform plat(2, lrcParams());
  SharedArray<int> a(plat, 16, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() == 1) a.get(c, 0);  // resident copy
    c.barrier(bar);
    if (c.id() == 0) a.set(c, 0, 42);
    c.barrier(bar);
    EXPECT_EQ(a.get(c, 0), 42);
  });
  // Proc 1's copy was invalidated by the notice and re-assembled from
  // the writer's retained modifications.
  EXPECT_GE(plat.engine().collect().procs[1].page_faults, 2u);
}

TEST(LrcMode, ReleaseIsCheapFaultIsExpensive) {
  // The defining cost inversion vs HLRC: a release does no diff traffic;
  // the fault pays for lazy diff creation instead.
  auto measure = [](bool home_based) {
    SvmParams sp;
    sp.home_based = home_based;
    SvmPlatform plat(2, sp);
    SharedArray<int> a(plat, 1024, HomePolicy::node(0));
    const int bar = plat.makeBarrier();
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int i = 0; i < 64; ++i) a.set(c, static_cast<std::size_t>(i), i);
      }
      c.barrier(bar);  // release point
    });
    // Barrier wait of the writer contains its release-time flush cost.
    return plat.engine().collect().procs[1][Bucket::BarrierWait] +
           plat.engine().collect().procs[1][Bucket::Handler];
  };
  EXPECT_LT(measure(false), measure(true));
}

TEST(LrcMode, MultipleWritersAssembleAllDiffs) {
  // Three nodes write disjoint words of one page; a fourth reads all
  // three values after a barrier -- it must collect diffs from every
  // writer (or their merged copies), not just one.
  SvmPlatform plat(4, lrcParams());
  SharedArray<int> a(plat, 1024, HomePolicy::node(0));
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    if (c.id() < 3) a.set(c, static_cast<std::size_t>(c.id()), 100 + c.id());
    c.barrier(bar);
    if (c.id() == 3) {
      EXPECT_EQ(a.get(c, 0), 100);
      EXPECT_EQ(a.get(c, 1), 101);
      EXPECT_EQ(a.get(c, 2), 102);
    }
  });
}

TEST(LrcMode, RetainedDiffMemoryGrows) {
  // HLRC's memory advantage: in TreadMarks mode writers retain their
  // diffs (no home to absorb them).
  SvmPlatform hlrc(4);
  SvmPlatform lrc(4, lrcParams());
  for (SvmPlatform* plat : {&hlrc, &lrc}) {
    SharedArray<int> a(*plat, 16 * 1024, HomePolicy::roundRobin(4));
    const int bar = plat->makeBarrier();
    plat->run([&](Ctx& c) {
      for (int r = 0; r < 4; ++r) {
        for (std::size_t i = static_cast<std::size_t>(c.id()) * 16;
             i < a.size(); i += 64) {
          a.set(c, i, r);
        }
        c.barrier(bar);
      }
    });
  }
  EXPECT_EQ(hlrc.retainedDiffBytes(), 0u);
  EXPECT_GT(lrc.retainedDiffBytes(), 1'000u);
}

TEST(LrcMode, LockChainCausalityStillHolds) {
  SvmPlatform plat(3, lrcParams());
  SharedArray<int> x(plat, 4, HomePolicy::node(0));
  SharedArray<int> y(plat, 4, HomePolicy::node(1));
  const int l1 = plat.makeLock();
  const int l2 = plat.makeLock();
  const int bar = plat.makeBarrier();
  plat.run([&](Ctx& c) {
    x.get(c, 0);
    y.get(c, 0);
    c.barrier(bar);
    if (c.id() == 0) {
      c.lock(l1);
      x.set(c, 0, 7);
      c.unlock(l1);
    }
    c.barrier(bar);
    if (c.id() == 1) {
      c.lock(l1);
      EXPECT_EQ(x.get(c, 0), 7);
      c.unlock(l1);
      c.lock(l2);
      y.set(c, 0, 8);
      c.unlock(l2);
    }
    c.barrier(bar);
    if (c.id() == 2) {
      c.lock(l2);
      EXPECT_EQ(y.get(c, 0), 8);
      EXPECT_EQ(x.get(c, 0), 7);
      c.unlock(l2);
    }
  });
}

TEST(LrcMode, AllApplicationsStayCorrect) {
  registerAllApps();
  for (const AppDesc& app : Registry::instance().all()) {
    SvmPlatform plat(8, lrcParams());
    const AppResult r = app.original().run(plat, app.tiny);
    EXPECT_TRUE(r.correct) << app.name << ": " << r.note;
  }
}

TEST(LrcMode, HlrcWinsOnMultipleWriterWorkloads) {
  // The paper's premise (section 2.1.1, citing [21]): HLRC equals or
  // outperforms non-home-based LRC, most clearly under multiple-writer
  // false sharing, where TreadMarks faults must assemble diffs from many
  // writers.
  registerAllApps();
  const AppDesc* radix = Registry::instance().find("radix");
  SvmPlatform hlrc(8);
  const Cycles t_hlrc =
      radix->original().run(hlrc, radix->tiny).stats.exec_cycles;
  SvmPlatform lrc(8, lrcParams());
  const Cycles t_lrc =
      radix->original().run(lrc, radix->tiny).stats.exec_cycles;
  EXPECT_LT(t_hlrc, t_lrc);
}

}  // namespace
}  // namespace rsvm
