// Differential cross-platform test harness. The server and index apps
// publish two digests in their AppResult (see core/app.hpp):
//
//   state_hash  -- content-based digest of the final shared data
//                  structures (table + write log, hash chains, B+-tree
//                  leaf chain),
//   result_hash -- commutative digest over every per-operation result.
//
// Both are promised to be functions of the workload alone, so a single
// (app, version, params) cell must produce the *same* two values on
// SVM, SMP, DSM, and FGS, at any processor count, under either fiber
// backend, and under seeded fault injection. This header runs cells
// and hands back everything a test needs to assert that.
#pragma once

#include "core/app.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace rsvm::testing {

/// Every platform kind, in the order the paper lists them.
inline constexpr PlatformKind kAllKinds[] = {
    PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA,
    PlatformKind::FGS};

struct DiffOptions {
  CheckLevel check = CheckLevel::Off;
  std::uint64_t fault_seed = 0;
  double zipf = 0.0;  ///< key-popularity skew (apps that honor params.zipf)
  int engine_threads = 1;  ///< intra-run engine threads (1 = sequential)
};

struct DiffRun {
  bool correct = false;
  std::string note;
  std::uint64_t state_hash = 0;
  std::uint64_t result_hash = 0;
  Cycles exec_cycles = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t allocs = 0;
  std::size_t oracle_violations = 0;  ///< meaningful when check == Oracle
  std::string label;                  ///< "app/ver on KIND @ P"
};

/// Run one cell and distill the differential-relevant facts. Fails the
/// current test (ADD_FAILURE) if the app or version is unknown.
inline DiffRun runCell(const char* app_name, const char* version,
                       PlatformKind kind, int procs,
                       const DiffOptions& opt = {}) {
  registerAllApps();
  DiffRun out;
  out.label = std::string(app_name) + "/" + version + " on " +
              platformName(kind) + " @ " + std::to_string(procs);
  const AppDesc* app = Registry::instance().find(app_name);
  if (app == nullptr) {
    ADD_FAILURE() << "unknown app " << app_name;
    return out;
  }
  const VersionDesc* ver = app->version(version);
  if (ver == nullptr) {
    ADD_FAILURE() << app_name << " has no version " << version;
    return out;
  }
  auto plat = Platform::create(kind, procs);
  if (opt.check != CheckLevel::Off) plat->setCheckLevel(opt.check);
  if (opt.fault_seed != 0) plat->setFaultPlan(opt.fault_seed);
  if (opt.engine_threads > 1) plat->setEngineThreads(opt.engine_threads);
  AppParams prm = app->tiny;
  prm.zipf = opt.zipf;
  const AppResult r = ver->run(*plat, prm);
  out.correct = r.correct;
  out.note = r.note;
  out.state_hash = r.state_hash;
  out.result_hash = r.result_hash;
  out.exec_cycles = r.stats.exec_cycles;
  out.tasks_stolen = r.stats.sum(&ProcStats::tasks_stolen);
  out.allocs = r.stats.sum(&ProcStats::allocs);
  if (opt.check == CheckLevel::Oracle) {
    const OracleReport* rep = plat->oracleReport();
    out.oracle_violations =
        rep == nullptr ? static_cast<std::size_t>(-1) : rep->total;
  }
  return out;
}

/// The core differential assertion: two runs of the same workload must
/// agree on both digests (and both be correct), whatever differs about
/// how they were executed.
inline void expectSameAnswer(const DiffRun& a, const DiffRun& b) {
  EXPECT_TRUE(a.correct) << a.label << ": " << a.note;
  EXPECT_TRUE(b.correct) << b.label << ": " << b.note;
  EXPECT_NE(a.state_hash, 0u) << a.label << " published no state hash";
  EXPECT_NE(a.result_hash, 0u) << a.label << " published no result hash";
  EXPECT_EQ(a.state_hash, b.state_hash) << a.label << " vs " << b.label;
  EXPECT_EQ(a.result_hash, b.result_hash) << a.label << " vs " << b.label;
}

}  // namespace rsvm::testing
