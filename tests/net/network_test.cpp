// Interconnect model tests: latency composition, bandwidth occupancy,
// contention at ports and on the shared bus.
#include "net/network.hpp"

#include <gtest/gtest.h>

namespace rsvm {
namespace {

TEST(PointToPoint, UncontendedLatency) {
  net::PointToPoint net(2, {.sw_overhead = 100, .wire_latency = 50,
                            .bytes_per_cycle = 2.0});
  // 64 bytes at 2 B/cycle = 32 cycles occupancy; cut-through:
  // arrival = sw + wire + occupancy.
  EXPECT_EQ(net.send(0, 1, 64, 0), 100u + 50u + 32u);
}

TEST(PointToPoint, LargeMessageCostsOneOccupancyNotTwo) {
  net::PointToPoint net(2, {.sw_overhead = 0, .wire_latency = 10,
                            .bytes_per_cycle = 1.0});
  // Cut-through: 1000 B should arrive at ~10 + 1000, not 10 + 2000.
  EXPECT_EQ(net.send(0, 1, 1000, 0), 1010u);
}

TEST(PointToPoint, SenderPortSerializesBackToBackSends) {
  net::PointToPoint net(3, {.sw_overhead = 0, .wire_latency = 0,
                            .bytes_per_cycle = 1.0});
  EXPECT_EQ(net.send(0, 1, 100, 0), 100u);
  // Same sender, different receiver: tx port busy until 100.
  EXPECT_EQ(net.send(0, 2, 100, 0), 200u);
}

TEST(PointToPoint, ReceiverPortQueuesConcurrentSenders) {
  net::PointToPoint net(3, {.sw_overhead = 0, .wire_latency = 0,
                            .bytes_per_cycle = 1.0});
  EXPECT_EQ(net.send(0, 2, 100, 0), 100u);
  // Different sender into the same receiver queues behind the first.
  EXPECT_EQ(net.send(1, 2, 100, 0), 200u);
}

TEST(SharedBus, TransactionCostAndContention) {
  net::SharedBus bus({.arbitration = 4, .address_phase = 4,
                      .bytes_per_cycle = 8.0});
  // 128 B: 4 (addr) + 16 (data) occupancy after 4 arbitration.
  EXPECT_EQ(bus.transact(128, 0), 24u);
  // Second transaction queues behind the first's occupancy.
  EXPECT_EQ(bus.transact(128, 0), 44u);
  // Address-only transaction (upgrade).
  EXPECT_EQ(bus.transact(0, 100), 108u);
}

TEST(SharedBus, TracksUtilization) {
  net::SharedBus bus({.arbitration = 0, .address_phase = 10,
                      .bytes_per_cycle = 8.0});
  bus.transact(0, 0);
  bus.transact(0, 0);
  EXPECT_EQ(bus.resource().totalBusy(), 20u);
  EXPECT_EQ(bus.resource().transactions(), 2u);
  EXPECT_EQ(bus.resource().totalQueueing(), 10u);
}

TEST(TransferCycles, CeilsFractionalCycles) {
  EXPECT_EQ(net::transferCycles(1, 0.5), 2u);
  EXPECT_EQ(net::transferCycles(4096, 0.5), 8192u);
  EXPECT_EQ(net::transferCycles(64, 8.0), 8u);
  EXPECT_EQ(net::transferCycles(0, 8.0), 0u);
}

}  // namespace
}  // namespace rsvm
