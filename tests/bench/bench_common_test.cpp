// Flag parsing and scale selection for the bench binaries. Parsing must
// reject malformed numeric flags loudly: std::atoi's silent 0 used to
// flow into Engine::Config and crash far from the typo that caused it.
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rsvm::bench {
namespace {

Options parseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_test");
  return parse(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(BenchParse, Defaults) {
  const Options o = parseArgs({});
  EXPECT_FALSE(o.paper_scale);
  EXPECT_FALSE(o.tiny);
  EXPECT_EQ(o.procs, 16);
  EXPECT_EQ(o.jobs, 0);  // 0 = hardware concurrency, resolved later
  EXPECT_TRUE(o.json_path.empty());
}

TEST(BenchParse, AllFlagsTogether) {
  const Options o = parseArgs(
      {"--tiny", "--procs=8", "--jobs=4", "--json=out.json"});
  EXPECT_TRUE(o.tiny);
  EXPECT_EQ(o.procs, 8);
  EXPECT_EQ(o.jobs, 4);
  EXPECT_EQ(o.json_path, "out.json");
}

TEST(BenchParse, PaperScale) {
  EXPECT_TRUE(parseArgs({"--paper-scale"}).paper_scale);
}

TEST(BenchParse, UnknownFlagRejected) {
  EXPECT_THROW(parseArgs({"--frobnicate"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"procs=4"}), std::invalid_argument);
}

TEST(BenchParse, MalformedProcsRejected) {
  EXPECT_THROW(parseArgs({"--procs=abc"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--procs="}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--procs=0"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--procs=-4"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--procs=4x"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--procs=99999999999999"}), std::invalid_argument);
}

TEST(BenchParse, MalformedJobsRejected) {
  EXPECT_THROW(parseArgs({"--jobs=fast"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--jobs=0"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--jobs=-1"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--jobs=2.5"}), std::invalid_argument);
}

TEST(BenchParse, EmptyJsonPathRejected) {
  EXPECT_THROW(parseArgs({"--json="}), std::invalid_argument);
}

TEST(BenchParse, ErrorMessagesNameTheFlagAndValue) {
  try {
    parseArgs({"--procs=banana"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--procs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
  }
}

TEST(BenchPick, TinyWinsOverPaperScale) {
  const Options both = parseArgs({"--tiny", "--paper-scale"});
  const AppDesc* lu = Registry::instance().find("lu");
  ASSERT_NE(lu, nullptr);
  EXPECT_EQ(&pick(*lu, both), &lu->tiny);
  EXPECT_STREQ(scaleName(both), "tiny");
}

TEST(BenchPick, ScaleSelection) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  ASSERT_NE(lu, nullptr);
  EXPECT_EQ(&pick(*lu, parseArgs({})), &lu->small);
  EXPECT_EQ(&pick(*lu, parseArgs({"--paper-scale"})), &lu->paper);
  EXPECT_EQ(&pick(*lu, parseArgs({"--tiny"})), &lu->tiny);
  EXPECT_STREQ(scaleName(parseArgs({})), "small");
  EXPECT_STREQ(scaleName(parseArgs({"--paper-scale"})), "paper");
}

}  // namespace
}  // namespace rsvm::bench
