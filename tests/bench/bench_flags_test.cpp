// Bench command-line contract: the robustness flags parse into Options,
// malformed or unknown flags are rejected, and parseOrExit turns a
// rejection into exit code 2 (so sweep scripts fail fast instead of
// silently running a default configuration).
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rsvm::bench {
namespace {

Options parseArgs(std::initializer_list<const char*> extra) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("bench"));
  for (const char* a : extra) argv.push_back(const_cast<char*>(a));
  return parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchFlags, RobustnessFlagsDefaultOff) {
  const Options o = parseArgs({});
  EXPECT_EQ(o.check, CheckLevel::Off);
  EXPECT_EQ(o.fault_seed, 0u);
  EXPECT_EQ(o.deadline_ms, 0.0);
}

TEST(BenchFlags, CheckFlagParses) {
  EXPECT_EQ(parseArgs({"--check=oracle"}).check, CheckLevel::Oracle);
  EXPECT_EQ(parseArgs({"--check=off"}).check, CheckLevel::Off);
  EXPECT_THROW(parseArgs({"--check=bogus"}), std::invalid_argument);
}

TEST(BenchFlags, FaultSeedParses) {
  EXPECT_EQ(parseArgs({"--fault-seed=42"}).fault_seed, 42u);
  EXPECT_THROW(parseArgs({"--fault-seed="}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--fault-seed=-1"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--fault-seed=12x"}), std::invalid_argument);
}

TEST(BenchFlags, DeadlineParses) {
  EXPECT_EQ(parseArgs({"--deadline-ms=5000"}).deadline_ms, 5000.0);
  EXPECT_THROW(parseArgs({"--deadline-ms=0"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--deadline-ms=nope"}), std::invalid_argument);
}

TEST(BenchFlags, FleetFlagsDefaultOff) {
  const Options o = parseArgs({});
  EXPECT_TRUE(o.cache_dir.empty());
  EXPECT_TRUE(o.checkpoint.empty());
  EXPECT_EQ(o.shard_index, 0);
  EXPECT_EQ(o.shard_count, 1);
  EXPECT_EQ(o.zipf, 0.0);
}

TEST(BenchFlags, CacheAndCheckpointPathsParse) {
  EXPECT_EQ(parseArgs({"--cache-dir=/tmp/rc"}).cache_dir, "/tmp/rc");
  EXPECT_EQ(parseArgs({"--checkpoint=sweep.ck"}).checkpoint, "sweep.ck");
  EXPECT_THROW(parseArgs({"--cache-dir="}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--checkpoint="}), std::invalid_argument);
}

TEST(BenchFlags, ShardParsesOneBasedKOfN) {
  const Options o = parseArgs({"--shard=2/3"});
  EXPECT_EQ(o.shard_index, 1);  // stored 0-based
  EXPECT_EQ(o.shard_count, 3);
  const Options whole = parseArgs({"--shard=1/1"});
  EXPECT_EQ(whole.shard_index, 0);
  EXPECT_EQ(whole.shard_count, 1);
  EXPECT_THROW(parseArgs({"--shard=0/3"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--shard=4/3"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--shard=2"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--shard=a/b"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--shard=1/0"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--shard="}), std::invalid_argument);
}

TEST(BenchFlags, ZipfParsesAndBoundsTheta) {
  EXPECT_EQ(parseArgs({"--zipf=0.9"}).zipf, 0.9);
  EXPECT_EQ(parseArgs({"--zipf=0"}).zipf, 0.0);
  EXPECT_THROW(parseArgs({"--zipf=1"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--zipf=-0.1"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"--zipf=hot"}), std::invalid_argument);
}

TEST(BenchFlags, EngineThreadsMinProcsParses) {
  EXPECT_EQ(parseArgs({}).engine_threads_min_procs, 32);  // sweep default
  EXPECT_EQ(parseArgs({"--engine-threads-min-procs=1"}).engine_threads_min_procs,
            1);
  EXPECT_EQ(parseArgs({"--engine-threads-min-procs=64"}).engine_threads_min_procs,
            64);
  // The flag shares the "--engine-threads" stem: neither flag may
  // swallow the other's value.
  const Options both =
      parseArgs({"--engine-threads=4", "--engine-threads-min-procs=8"});
  EXPECT_EQ(both.engine_threads, 4);
  EXPECT_EQ(both.engine_threads_min_procs, 8);
  EXPECT_THROW(parseArgs({"--engine-threads-min-procs="}),
               std::invalid_argument);
  EXPECT_THROW(parseArgs({"--engine-threads-min-procs=0"}),
               std::invalid_argument);
  EXPECT_THROW(parseArgs({"--engine-threads-min-procs=-4"}),
               std::invalid_argument);
  EXPECT_THROW(parseArgs({"--engine-threads-min-procs=8x"}),
               std::invalid_argument);
}

TEST(BenchFlags, UnknownFlagThrows) {
  EXPECT_THROW(parseArgs({"--not-a-flag"}), std::invalid_argument);
  EXPECT_THROW(parseArgs({"stray"}), std::invalid_argument);
}

TEST(BenchFlagsDeathTest, ParseOrExitRejectsUnknownFlagWithExit2) {
  const char* argv[] = {"bench", "--not-a-flag"};
  EXPECT_EXIT(parseOrExit(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchFlagsDeathTest, ParseOrExitPrintsUsageOnBadValue) {
  const char* argv[] = {"bench", "--check=banana"};
  EXPECT_EXIT(parseOrExit(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(BenchFlagsDeathTest, ParseOrExitRejectsMalformedMinProcsWithExit2) {
  const char* argv[] = {"bench", "--engine-threads-min-procs=lots"};
  EXPECT_EXIT(parseOrExit(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(BenchFlags, ParseOrExitAcceptsValidFlags) {
  const char* argv[] = {"bench", "--tiny", "--check=oracle",
                        "--fault-seed=8", "--deadline-ms=1000"};
  const Options o = parseOrExit(5, const_cast<char**>(argv));
  EXPECT_TRUE(o.tiny);
  EXPECT_EQ(o.check, CheckLevel::Oracle);
  EXPECT_EQ(o.fault_seed, 8u);
  EXPECT_EQ(o.deadline_ms, 1000.0);
}

}  // namespace
}  // namespace rsvm::bench
