// The JSON bench report is the repo's perf-trajectory interchange format
// (BENCH_*.json): its schema must stay stable, so (1) a golden test pins
// the exact rendering and (2) a minimal JSON parser round-trips a real
// sweep's output and validates the structure.
#include "bench_common.hpp"

#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm::bench {
namespace {

// ---------------------------------------------------------------------------
// A deliberately tiny recursive-descent JSON parser -- just enough to
// validate the emitter without external dependencies.

struct Json {
  enum class Type { Object, Array, String, Number, Bool, Null };
  Type type = Type::Null;
  std::map<std::string, Json> obj;
  std::vector<Json> arr;
  std::string str;
  double num = 0.0;
  bool boolean = false;

  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::Object && obj.count(key) > 0;
  }
  const Json& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return obj.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + why);
  }
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += 4; out += '?'; break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    ++pos_;
    return out;
  }
  Json value() {
    ws();
    Json v;
    switch (peek()) {
      case '{': {
        v.type = Json::Type::Object;
        ++pos_;
        ws();
        if (peek() == '}') { ++pos_; return v; }
        for (;;) {
          ws();
          std::string key = string();
          ws();
          expect(':');
          v.obj[key] = value();
          ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = Json::Type::Array;
        ++pos_;
        ws();
        if (peek() == ']') { ++pos_; return v; }
        for (;;) {
          v.arr.push_back(value());
          ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = Json::Type::String;
        v.str = string();
        return v;
      case 't':
        pos_ += 4;
        v.type = Json::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        pos_ += 5;
        v.type = Json::Type::Bool;
        return v;
      case 'n':
        pos_ += 4;
        return v;
      default: {
        v.type = Json::Type::Number;
        std::size_t end = pos_;
        while (end < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[end])) ||
                s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
                s_[end] == 'e' || s_[end] == 'E')) {
          ++end;
        }
        if (end == pos_) fail("bad number");
        v.num = std::stod(s_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

Options tinyOptions() {
  Options o;
  o.tiny = true;
  o.procs = 2;
  o.jobs = 3;
  return o;
}

TEST(JsonReport, GoldenRendering) {
  // A synthetic entry exercising every field deterministically; the app
  // name is deliberately not in the registry so opt_class is "?".
  SweepPoint p;
  p.kind = PlatformKind::SMP;
  p.app = "phantom";
  p.version = "v1";
  p.params.n = 64;
  p.params.iters = 1;
  p.params.block = 16;
  p.params.seed = 42;
  p.procs = 2;

  SweepResult r;
  r.app.stats.procs.resize(2);
  for (int b = 0; b < kNumBuckets; ++b) {
    r.app.stats.procs[0].buckets[static_cast<std::size_t>(b)] =
        static_cast<Cycles>(b + 1);
    r.app.stats.procs[1].buckets[static_cast<std::size_t>(b)] =
        static_cast<Cycles>(10 * (b + 1));
  }
  r.app.stats.procs[0].reads = 100;
  r.app.stats.procs[0].writes = 50;
  r.app.stats.procs[1].l1_misses = 5;
  r.app.stats.procs[1].page_faults = 2;
  r.cycles = 500;
  r.base_cycles = 1000;
  r.wall_ms = 1.5;
  r.app.state_hash = 0xdeadbeef12345678ull;
  r.app.result_hash = 0x1ull;
  r.app.stats.procs[1].allocs = 7;

  Report report("golden", tinyOptions());
  report.add(p, r);
  report.setWallMs(12.345);

  // host_accesses_per_sec = (100 reads + 50 writes) / 1.5 ms;
  // sim_cycles_per_wall_ms = 500 cycles / 1.5 ms. The fiber field
  // reflects the process-wide backend, which depends on the build mode.
  const std::string expected =
      "{\n"
      "  \"schema\": \"rsvm-bench-1\", \"bench\": \"golden\", "
      "\"scale\": \"tiny\", \"procs_default\": 2, \"jobs\": 3, "
      "\"fastpath\": true, \"fiber\": \"" +
      std::string(Fiber::backendName(Fiber::defaultBackend())) +
      "\", \"wall_ms\": 12.345, \"points\": [\n"
      "    {\"app\": \"phantom\", \"version\": \"v1\", "
      "\"opt_class\": \"?\", \"platform\": \"SMP\", \"config\": \"\", "
      "\"procs\": 2, \"n\": 64, \"iters\": 1, \"block\": 16, "
      "\"seed\": 42, \"check\": \"off\", \"fault_seed\": 0, "
      "\"ok\": true, \"error\": \"\", \"timed_out\": false, "
      "\"retries\": 0, \"oracle_violations\": 0, "
      "\"exec_cycles\": 500, \"base_cycles\": 1000, "
      "\"speedup\": 2.000000, "
      "\"state_hash\": \"0xdeadbeef12345678\", "
      "\"result_hash\": \"0x0000000000000001\", \"wall_ms\": 1.500, "
      "\"host_accesses_per_sec\": 100000.0, "
      "\"sim_cycles_per_wall_ms\": 333.3, "
      "\"buckets\": {\"compute\": 11, \"cache_stall\": 22, "
      "\"data_wait\": 33, \"lock_wait\": 44, \"barrier_wait\": 55, "
      "\"handler\": 66}, "
      "\"counters\": {\"reads\": 100, \"writes\": 50, \"l1_misses\": 5, "
      "\"l2_misses\": 0, \"page_faults\": 2, \"write_faults\": 0, "
      "\"diffs_created\": 0, \"diff_bytes\": 0, \"remote_misses\": 0, "
      "\"local_misses\": 0, \"invalidations_sent\": 0, "
      "\"lock_acquires\": 0, \"remote_lock_acquires\": 0, "
      "\"barriers\": 0, \"tasks_executed\": 0, \"tasks_stolen\": 0, "
      "\"allocs\": 7}}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(report.json(), expected);
}

TEST(JsonReport, EmptyReportIsValid) {
  Report report("empty", tinyOptions());
  const Json root = Parser(report.json()).parse();
  EXPECT_EQ(root.at("schema").str, "rsvm-bench-1");
  EXPECT_EQ(root.at("points").arr.size(), 0u);
}

TEST(JsonReport, ExtrasSpliceAsTopLevelFields) {
  Report report("extras", tinyOptions());
  report.addExtra("switch_bench", "{\"asm\": 1.5, \"note\": \"raw\"}");
  report.addExtra("answer", "42");
  const Json root = Parser(report.json()).parse();
  EXPECT_EQ(root.at("switch_bench").at("asm").num, 1.5);
  EXPECT_EQ(root.at("switch_bench").at("note").str, "raw");
  EXPECT_EQ(root.at("answer").num, 42.0);
  EXPECT_EQ(root.at("points").arr.size(), 0u);
}

TEST(JsonReport, StringsAreEscaped) {
  SweepPoint p;
  p.app = "a\"b\\c";
  p.version = "v\n1";
  SweepResult r;
  r.error = "tab\there";
  Report report("escapes", tinyOptions());
  report.add(p, r);
  const Json root = Parser(report.json()).parse();
  const Json& pt = root.at("points").arr.at(0);
  EXPECT_EQ(pt.at("app").str, "a\"b\\c");
  EXPECT_EQ(pt.at("version").str, "v\n1");
  EXPECT_EQ(pt.at("error").str, "tab\there");
  EXPECT_FALSE(pt.at("ok").boolean);
}

TEST(JsonReport, RealSweepRoundTripsAndValidates) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  ASSERT_NE(lu, nullptr);

  std::vector<SweepPoint> points;
  for (int procs : {1, 2}) {
    SweepPoint p;
    p.kind = PlatformKind::SMP;
    p.app = "lu";
    p.version = lu->original().name;
    p.params = lu->tiny;
    p.procs = procs;
    points.push_back(std::move(p));
  }

  const Options opt = tinyOptions();
  Report report("roundtrip", opt);
  const auto results = sweep(points, opt, report);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_TRUE(results[1].ok()) << results[1].error;

  const Json root = Parser(report.json()).parse();
  EXPECT_EQ(root.at("schema").str, "rsvm-bench-1");
  EXPECT_EQ(root.at("bench").str, "roundtrip");
  EXPECT_EQ(root.at("scale").str, "tiny");
  EXPECT_TRUE(root.at("fastpath").boolean);
  EXPECT_EQ(root.at("fiber").str,
            Fiber::backendName(Fiber::defaultBackend()));
  EXPECT_GT(root.at("wall_ms").num, 0.0);
  ASSERT_EQ(root.at("points").arr.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const Json& pt = root.at("points").arr[i];
    EXPECT_EQ(pt.at("app").str, "lu");
    EXPECT_EQ(pt.at("opt_class").str, "Orig");
    EXPECT_EQ(pt.at("platform").str, "SMP");
    EXPECT_EQ(static_cast<int>(pt.at("procs").num), i == 0 ? 1 : 2);
    EXPECT_TRUE(pt.at("ok").boolean);
    EXPECT_GT(pt.at("exec_cycles").num, 0.0);
    EXPECT_GT(pt.at("base_cycles").num, 0.0);
    EXPECT_GT(pt.at("speedup").num, 0.0);
    EXPECT_GT(pt.at("host_accesses_per_sec").num, 0.0);
    EXPECT_GT(pt.at("sim_cycles_per_wall_ms").num, 0.0);
    EXPECT_EQ(pt.at("buckets").obj.size(), 6u);
    EXPECT_EQ(pt.at("counters").obj.size(), 17u);
    // lu does not provide differential digests: emitted as zero.
    EXPECT_EQ(pt.at("state_hash").str, "0x0000000000000000");
    EXPECT_EQ(pt.at("result_hash").str, "0x0000000000000000");
  }
  // The uniprocessor original defines speedup 1.0 by construction.
  EXPECT_NEAR(root.at("points").arr[0].at("speedup").num, 1.0, 1e-6);
}

}  // namespace
}  // namespace rsvm::bench
