// The JSON bench report is the repo's perf-trajectory interchange format
// (BENCH_*.json): its schema must stay stable, so (1) a golden test pins
// the exact rendering and (2) a minimal JSON parser round-trips a real
// sweep's output and validates the structure.
#include "bench_common.hpp"

#include "json_mini.hpp"
#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm::bench {
namespace {

using minijson::Json;
using minijson::Parser;

Options tinyOptions() {
  Options o;
  o.tiny = true;
  o.procs = 2;
  o.jobs = 3;
  return o;
}

TEST(JsonReport, GoldenRendering) {
  // A synthetic entry exercising every field deterministically; the app
  // name is deliberately not in the registry so opt_class is "?".
  SweepPoint p;
  p.kind = PlatformKind::SMP;
  p.app = "phantom";
  p.version = "v1";
  p.params.n = 64;
  p.params.iters = 1;
  p.params.block = 16;
  p.params.seed = 42;
  p.procs = 2;

  SweepResult r;
  r.app.stats.procs.resize(2);
  for (int b = 0; b < kNumBuckets; ++b) {
    r.app.stats.procs[0].buckets[static_cast<std::size_t>(b)] =
        static_cast<Cycles>(b + 1);
    r.app.stats.procs[1].buckets[static_cast<std::size_t>(b)] =
        static_cast<Cycles>(10 * (b + 1));
  }
  r.app.stats.procs[0].reads = 100;
  r.app.stats.procs[0].writes = 50;
  r.app.stats.procs[1].l1_misses = 5;
  r.app.stats.procs[1].page_faults = 2;
  r.cycles = 500;
  r.base_cycles = 1000;
  r.wall_ms = 1.5;
  r.app.state_hash = 0xdeadbeef12345678ull;
  r.app.result_hash = 0x1ull;
  r.app.stats.procs[1].allocs = 7;

  Report report("golden", tinyOptions());
  report.add(p, r);
  report.setWallMs(12.345);

  // host_accesses_per_sec = (100 reads + 50 writes) / 1.5 ms;
  // sim_cycles_per_wall_ms = 500 cycles / 1.5 ms. The fiber field
  // reflects the process-wide backend, which depends on the build mode.
  const std::string expected =
      "{\n"
      "  \"schema\": \"rsvm-bench-1\", \"bench\": \"golden\", "
      "\"scale\": \"tiny\", \"procs_default\": 2, \"jobs\": 3, "
      "\"fastpath\": true, \"fiber\": \"" +
      std::string(Fiber::backendName(Fiber::defaultBackend())) +
      "\", \"engine_threads\": 1, \"wall_ms\": 12.345, "
      "\"shard_index\": 0, \"shard_count\": 1, "
      "\"cache\": {\"computed\": 0, \"cache_hits\": 0, \"resumed\": 0, "
      "\"stores\": 0, \"shard_skipped\": 0, \"cache_corrupt\": 0, "
      "\"uncacheable\": 0}, \"points\": [\n"
      "    {\"app\": \"phantom\", \"version\": \"v1\", "
      "\"opt_class\": \"?\", \"platform\": \"SMP\", \"config\": \"\", "
      "\"procs\": 2, \"n\": 64, \"iters\": 1, \"block\": 16, "
      "\"seed\": 42, \"zipf\": 0, \"check\": \"off\", \"fault_seed\": 0, "
      "\"ok\": true, \"error\": \"\", \"timed_out\": false, "
      "\"retries\": 0, \"cached\": false, \"resumed\": false, "
      "\"oracle_violations\": 0, "
      "\"exec_cycles\": 500, \"base_cycles\": 1000, "
      "\"speedup\": 2.000000, "
      "\"state_hash\": \"0xdeadbeef12345678\", "
      "\"result_hash\": \"0x0000000000000001\", \"wall_ms\": 1.500, "
      "\"host_accesses_per_sec\": 100000.0, "
      "\"sim_cycles_per_wall_ms\": 333.3, "
      "\"buckets\": {\"compute\": 11, \"cache_stall\": 22, "
      "\"data_wait\": 33, \"lock_wait\": 44, \"barrier_wait\": 55, "
      "\"handler\": 66}, "
      "\"counters\": {\"reads\": 100, \"writes\": 50, \"l1_misses\": 5, "
      "\"l2_misses\": 0, \"page_faults\": 2, \"write_faults\": 0, "
      "\"diffs_created\": 0, \"diff_bytes\": 0, \"remote_misses\": 0, "
      "\"local_misses\": 0, \"invalidations_sent\": 0, "
      "\"lock_acquires\": 0, \"remote_lock_acquires\": 0, "
      "\"barriers\": 0, \"tasks_executed\": 0, \"tasks_stolen\": 0, "
      "\"allocs\": 7}}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(report.json(), expected);
}

TEST(JsonReport, EmptyReportIsValid) {
  Report report("empty", tinyOptions());
  const Json root = Parser(report.json()).parse();
  EXPECT_EQ(root.at("schema").str, "rsvm-bench-1");
  EXPECT_EQ(root.at("points").arr.size(), 0u);
}

TEST(JsonReport, ExtrasSpliceAsTopLevelFields) {
  Report report("extras", tinyOptions());
  report.addExtra("switch_bench", "{\"asm\": 1.5, \"note\": \"raw\"}");
  report.addExtra("answer", "42");
  const Json root = Parser(report.json()).parse();
  EXPECT_EQ(root.at("switch_bench").at("asm").num, 1.5);
  EXPECT_EQ(root.at("switch_bench").at("note").str, "raw");
  EXPECT_EQ(root.at("answer").num, 42.0);
  EXPECT_EQ(root.at("points").arr.size(), 0u);
}

TEST(JsonReport, StringsAreEscaped) {
  SweepPoint p;
  p.app = "a\"b\\c";
  p.version = "v\n1";
  SweepResult r;
  r.error = "tab\there";
  Report report("escapes", tinyOptions());
  report.add(p, r);
  const Json root = Parser(report.json()).parse();
  const Json& pt = root.at("points").arr.at(0);
  EXPECT_EQ(pt.at("app").str, "a\"b\\c");
  EXPECT_EQ(pt.at("version").str, "v\n1");
  EXPECT_EQ(pt.at("error").str, "tab\there");
  EXPECT_FALSE(pt.at("ok").boolean);
}

TEST(JsonReport, RealSweepRoundTripsAndValidates) {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  ASSERT_NE(lu, nullptr);

  std::vector<SweepPoint> points;
  for (int procs : {1, 2}) {
    SweepPoint p;
    p.kind = PlatformKind::SMP;
    p.app = "lu";
    p.version = lu->original().name;
    p.params = lu->tiny;
    p.procs = procs;
    points.push_back(std::move(p));
  }

  const Options opt = tinyOptions();
  Report report("roundtrip", opt);
  const auto results = sweep(points, opt, report);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_TRUE(results[1].ok()) << results[1].error;

  const Json root = Parser(report.json()).parse();
  EXPECT_EQ(root.at("schema").str, "rsvm-bench-1");
  EXPECT_EQ(root.at("bench").str, "roundtrip");
  EXPECT_EQ(root.at("scale").str, "tiny");
  EXPECT_TRUE(root.at("fastpath").boolean);
  EXPECT_EQ(root.at("fiber").str,
            Fiber::backendName(Fiber::defaultBackend()));
  EXPECT_GT(root.at("wall_ms").num, 0.0);
  ASSERT_EQ(root.at("points").arr.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const Json& pt = root.at("points").arr[i];
    EXPECT_EQ(pt.at("app").str, "lu");
    EXPECT_EQ(pt.at("opt_class").str, "Orig");
    EXPECT_EQ(pt.at("platform").str, "SMP");
    EXPECT_EQ(static_cast<int>(pt.at("procs").num), i == 0 ? 1 : 2);
    EXPECT_TRUE(pt.at("ok").boolean);
    EXPECT_GT(pt.at("exec_cycles").num, 0.0);
    EXPECT_GT(pt.at("base_cycles").num, 0.0);
    EXPECT_GT(pt.at("speedup").num, 0.0);
    EXPECT_GT(pt.at("host_accesses_per_sec").num, 0.0);
    EXPECT_GT(pt.at("sim_cycles_per_wall_ms").num, 0.0);
    EXPECT_EQ(pt.at("buckets").obj.size(), 6u);
    EXPECT_EQ(pt.at("counters").obj.size(), 17u);
    // lu does not provide differential digests: emitted as zero.
    EXPECT_EQ(pt.at("state_hash").str, "0x0000000000000000");
    EXPECT_EQ(pt.at("result_hash").str, "0x0000000000000000");
  }
  // The uniprocessor original defines speedup 1.0 by construction.
  EXPECT_NEAR(root.at("points").arr[0].at("speedup").num, 1.0, 1e-6);
}

}  // namespace
}  // namespace rsvm::bench
