// Shard-report fusion: merging the per-shard JSON reports of a sharded
// sweep must reproduce the unsharded report's points in submission
// order with identical simulated fields, sum the provenance counters,
// and hard-reject shard sets that are incomplete, overlapping, from
// different sweeps, or in digest disagreement.
#include "bench_common.hpp"

#include "json_mini.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm::bench {
namespace {

using minijson::Json;
using minijson::Parser;

std::vector<SweepPoint> samplePoints() {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  std::vector<SweepPoint> points;
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP}) {
    for (int procs : {1, 2, 4}) {
      SweepPoint p;
      p.kind = kind;
      p.app = "lu";
      p.version = "2d";
      p.params = lu->tiny;
      p.procs = procs;
      points.push_back(std::move(p));
    }
  }
  return points;  // 6 points
}

Options baseOptions() {
  Options o;
  o.tiny = true;
  o.procs = 2;
  o.jobs = 2;
  return o;
}

/// Run the sample sweep as shard index/count and return the report text.
std::string runShard(const std::vector<SweepPoint>& points, int index,
                     int count) {
  Options o = baseOptions();
  o.shard_index = index;
  o.shard_count = count;
  Report report("mergetest", o);
  sweep(points, o, report);
  return report.json();
}

TEST(SweepMerge, TwoShardsFuseIntoTheUnshardedReport) {
  const auto points = samplePoints();
  Options o = baseOptions();
  Report whole_report("mergetest", o);
  sweep(points, o, whole_report);
  const Json whole = Parser(whole_report.json()).parse();

  const std::vector<std::string> shards = {runShard(points, 0, 2),
                                           runShard(points, 1, 2)};
  const std::string merged_text = mergeShardReports(shards);
  const Json merged = Parser(merged_text).parse();

  // Canonical headers: the merged report reads as an unsharded one.
  EXPECT_EQ(merged.at("schema").str, "rsvm-bench-1");
  EXPECT_EQ(merged.at("bench").str, "mergetest");
  EXPECT_EQ(merged.at("shard_index").u64, 0u);
  EXPECT_EQ(merged.at("shard_count").u64, 1u);
  EXPECT_EQ(merged.at("merged_from").u64, 2u);

  // Provenance counters are summed: each shard skipped the other's half.
  EXPECT_EQ(merged.at("cache").at("shard_skipped").u64, points.size());
  EXPECT_EQ(merged.at("cache").at("computed").u64, points.size());

  // Points come back in submission order with the unsharded simulated
  // fields (host-side wall_ms/throughput naturally differ run to run).
  ASSERT_EQ(merged.at("points").arr.size(), points.size());
  ASSERT_EQ(whole.at("points").arr.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Json& m = merged.at("points").arr[i];
    const Json& w = whole.at("points").arr[i];
    EXPECT_EQ(m.at("app").str, w.at("app").str) << "point " << i;
    EXPECT_EQ(m.at("version").str, w.at("version").str) << "point " << i;
    EXPECT_EQ(m.at("platform").str, w.at("platform").str) << "point " << i;
    EXPECT_EQ(m.at("procs").u64, w.at("procs").u64) << "point " << i;
    EXPECT_TRUE(m.at("ok").boolean) << "point " << i;
    EXPECT_EQ(m.at("exec_cycles").u64, w.at("exec_cycles").u64)
        << "point " << i;
    EXPECT_EQ(m.at("base_cycles").u64, w.at("base_cycles").u64)
        << "point " << i;
    EXPECT_EQ(m.at("state_hash").str, w.at("state_hash").str)
        << "point " << i;
    EXPECT_EQ(m.at("result_hash").str, w.at("result_hash").str)
        << "point " << i;
    for (const char* bucket : {"compute", "cache_stall", "data_wait",
                               "lock_wait", "barrier_wait", "handler"}) {
      EXPECT_EQ(m.at("buckets").at(bucket).u64, w.at("buckets").at(bucket).u64)
          << "point " << i << " bucket " << bucket;
    }
    EXPECT_EQ(m.at("counters").at("reads").u64,
              w.at("counters").at("reads").u64)
        << "point " << i;
    // Per-point records are spliced byte-identically from the shards.
    const Json shard = Parser(shards[i % 2]).parse();
    EXPECT_EQ(m.raw, shard.at("points").arr[i / 2].raw) << "point " << i;
  }

  // The merged report itself parses as a valid shard_count=1 report, so
  // downstream consumers cannot tell it was ever sharded.
  EXPECT_NO_THROW(
      (void)mergeShardReports(std::vector<std::string>{merged_text}));
}

TEST(SweepMerge, ThreeWayMergeRestoresOrderWithUnevenShards) {
  const auto points = samplePoints();  // 6 points over 3 shards: 2 each
  std::vector<std::string> shards;
  for (int s = 0; s < 3; ++s) shards.push_back(runShard(points, s, 3));
  const Json merged = Parser(mergeShardReports(shards)).parse();
  ASSERT_EQ(merged.at("points").arr.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(merged.at("points").arr[i].at("procs").u64,
              static_cast<std::uint64_t>(points[i].procs))
        << "point " << i;
  }
  // Shard order on the command line must not matter.
  std::vector<std::string> reordered = {shards[2], shards[0], shards[1]};
  EXPECT_EQ(mergeShardReports(reordered), mergeShardReports(shards));
}

TEST(SweepMerge, RejectsIncompleteShardSet) {
  const auto points = samplePoints();
  const std::string shard0 = runShard(points, 0, 2);
  try {
    mergeShardReports({shard0});
    FAIL() << "merged 1 of 2 shards";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard_count"), std::string::npos)
        << e.what();
  }
}

TEST(SweepMerge, RejectsOverlappingShards) {
  const auto points = samplePoints();
  const std::string shard0 = runShard(points, 0, 2);
  try {
    mergeShardReports({shard0, shard0});
    FAIL() << "merged the same shard twice";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("claim shard"), std::string::npos)
        << e.what();
  }
}

TEST(SweepMerge, RejectsShardsFromDifferentSweeps) {
  const auto points = samplePoints();
  const std::string shard0 = runShard(points, 0, 2);
  Options o = baseOptions();
  o.shard_index = 1;
  o.shard_count = 2;
  Report other("a-different-bench", o);
  sweep(points, o, other);
  try {
    mergeShardReports({shard0, other.json()});
    FAIL() << "merged shards of different benches";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("disagree"), std::string::npos)
        << e.what();
  }
}

TEST(SweepMerge, RejectsUnknownSchema) {
  const auto points = samplePoints();
  std::string shard0 = runShard(points, 0, 1);
  const std::string from = "\"schema\": \"rsvm-bench-1\"";
  const auto at = shard0.find(from);
  ASSERT_NE(at, std::string::npos);
  shard0.replace(at, from.size(), "\"schema\": \"rsvm-bench-99\"");
  EXPECT_THROW((void)mergeShardReports({shard0}), std::runtime_error);
}

TEST(SweepMerge, RejectsDigestDisagreementBetweenShards) {
  // Submit the same experiment twice so it lands once in each shard --
  // the merge's digest cross-check must see through a tampered answer.
  const auto all = samplePoints();
  const std::vector<SweepPoint> points = {all[0], all[0]};
  const std::string shard0 = runShard(points, 0, 2);
  std::string shard1 = runShard(points, 1, 2);
  const std::string from = "\"state_hash\": \"0x";
  const auto at = shard1.find(from);
  ASSERT_NE(at, std::string::npos);
  // Flip the first hex digit of the digest.
  const std::size_t digit = at + from.size();
  shard1[digit] = shard1[digit] == 'f' ? '0' : 'f';
  try {
    mergeShardReports({shard0, shard1});
    FAIL() << "merged shards that disagree on a point's digest";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("digest mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepMerge, RejectsEmptyShardList) {
  EXPECT_THROW((void)mergeShardReports({}), std::runtime_error);
}

TEST(WriteFileAtomic, WritesAndReplacesWithoutLeavingTempFiles) {
  char tmpl[] = "/tmp/rsvm_atomic_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string path = std::string(dir) + "/out.json";

  writeFileAtomic(path, "first");
  writeFileAtomic(path, "second");  // replace must also be atomic

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "second");

  // Nothing but the final file remains (no orphaned temp files).
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().string(), path);
  }
  EXPECT_EQ(entries, 1u);

  // An unwritable destination throws instead of silently dropping data.
  EXPECT_THROW(writeFileAtomic("/proc/nope/out.json", "x"),
               std::runtime_error);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace rsvm::bench
