file(REMOVE_RECURSE
  "CMakeFiles/ext_finegrain.dir/bench/bench_common.cpp.o"
  "CMakeFiles/ext_finegrain.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/ext_finegrain.dir/bench/ext_finegrain.cpp.o"
  "CMakeFiles/ext_finegrain.dir/bench/ext_finegrain.cpp.o.d"
  "bench/ext_finegrain"
  "bench/ext_finegrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_finegrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
