# Empty dependencies file for ext_finegrain.
# This may be replaced when dependencies are built.
