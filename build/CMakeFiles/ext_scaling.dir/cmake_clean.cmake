file(REMOVE_RECURSE
  "CMakeFiles/ext_scaling.dir/bench/bench_common.cpp.o"
  "CMakeFiles/ext_scaling.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/ext_scaling.dir/bench/ext_scaling.cpp.o"
  "CMakeFiles/ext_scaling.dir/bench/ext_scaling.cpp.o.d"
  "bench/ext_scaling"
  "bench/ext_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
