# Empty dependencies file for fig15_radix_orig.
# This may be replaced when dependencies are built.
