file(REMOVE_RECURSE
  "CMakeFiles/fig15_radix_orig.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig15_radix_orig.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig15_radix_orig.dir/bench/fig15_radix_orig.cpp.o"
  "CMakeFiles/fig15_radix_orig.dir/bench/fig15_radix_orig.cpp.o.d"
  "bench/fig15_radix_orig"
  "bench/fig15_radix_orig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_radix_orig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
