# Empty compiler generated dependencies file for fig13_barnes_splash2.
# This may be replaced when dependencies are built.
