file(REMOVE_RECURSE
  "CMakeFiles/fig13_barnes_splash2.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig13_barnes_splash2.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig13_barnes_splash2.dir/bench/fig13_barnes_splash2.cpp.o"
  "CMakeFiles/fig13_barnes_splash2.dir/bench/fig13_barnes_splash2.cpp.o.d"
  "bench/fig13_barnes_splash2"
  "bench/fig13_barnes_splash2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_barnes_splash2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
