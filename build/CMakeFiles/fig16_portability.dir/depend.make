# Empty dependencies file for fig16_portability.
# This may be replaced when dependencies are built.
