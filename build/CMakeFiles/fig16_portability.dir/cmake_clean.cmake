file(REMOVE_RECURSE
  "CMakeFiles/fig16_portability.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig16_portability.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig16_portability.dir/bench/fig16_portability.cpp.o"
  "CMakeFiles/fig16_portability.dir/bench/fig16_portability.cpp.o.d"
  "bench/fig16_portability"
  "bench/fig16_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
