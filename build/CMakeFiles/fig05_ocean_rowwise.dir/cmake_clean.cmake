file(REMOVE_RECURSE
  "CMakeFiles/fig05_ocean_rowwise.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig05_ocean_rowwise.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig05_ocean_rowwise.dir/bench/fig05_ocean_rowwise.cpp.o"
  "CMakeFiles/fig05_ocean_rowwise.dir/bench/fig05_ocean_rowwise.cpp.o.d"
  "bench/fig05_ocean_rowwise"
  "bench/fig05_ocean_rowwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ocean_rowwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
