# Empty compiler generated dependencies file for fig05_ocean_rowwise.
# This may be replaced when dependencies are built.
