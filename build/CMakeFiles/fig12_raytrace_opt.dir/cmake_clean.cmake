file(REMOVE_RECURSE
  "CMakeFiles/fig12_raytrace_opt.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig12_raytrace_opt.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig12_raytrace_opt.dir/bench/fig12_raytrace_opt.cpp.o"
  "CMakeFiles/fig12_raytrace_opt.dir/bench/fig12_raytrace_opt.cpp.o.d"
  "bench/fig12_raytrace_opt"
  "bench/fig12_raytrace_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_raytrace_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
