# Empty dependencies file for fig12_raytrace_opt.
# This may be replaced when dependencies are built.
