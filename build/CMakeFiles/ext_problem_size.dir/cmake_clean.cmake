file(REMOVE_RECURSE
  "CMakeFiles/ext_problem_size.dir/bench/bench_common.cpp.o"
  "CMakeFiles/ext_problem_size.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/ext_problem_size.dir/bench/ext_problem_size.cpp.o"
  "CMakeFiles/ext_problem_size.dir/bench/ext_problem_size.cpp.o.d"
  "bench/ext_problem_size"
  "bench/ext_problem_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
