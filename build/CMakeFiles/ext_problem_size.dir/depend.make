# Empty dependencies file for ext_problem_size.
# This may be replaced when dependencies are built.
