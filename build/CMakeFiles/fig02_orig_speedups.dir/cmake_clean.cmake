file(REMOVE_RECURSE
  "CMakeFiles/fig02_orig_speedups.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig02_orig_speedups.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig02_orig_speedups.dir/bench/fig02_orig_speedups.cpp.o"
  "CMakeFiles/fig02_orig_speedups.dir/bench/fig02_orig_speedups.cpp.o.d"
  "bench/fig02_orig_speedups"
  "bench/fig02_orig_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_orig_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
