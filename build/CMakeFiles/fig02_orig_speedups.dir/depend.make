# Empty dependencies file for fig02_orig_speedups.
# This may be replaced when dependencies are built.
