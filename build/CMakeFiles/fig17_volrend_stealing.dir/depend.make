# Empty dependencies file for fig17_volrend_stealing.
# This may be replaced when dependencies are built.
