file(REMOVE_RECURSE
  "CMakeFiles/fig17_volrend_stealing.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig17_volrend_stealing.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig17_volrend_stealing.dir/bench/fig17_volrend_stealing.cpp.o"
  "CMakeFiles/fig17_volrend_stealing.dir/bench/fig17_volrend_stealing.cpp.o.d"
  "bench/fig17_volrend_stealing"
  "bench/fig17_volrend_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_volrend_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
