file(REMOVE_RECURSE
  "CMakeFiles/ext_clustered_svm.dir/bench/bench_common.cpp.o"
  "CMakeFiles/ext_clustered_svm.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/ext_clustered_svm.dir/bench/ext_clustered_svm.cpp.o"
  "CMakeFiles/ext_clustered_svm.dir/bench/ext_clustered_svm.cpp.o.d"
  "bench/ext_clustered_svm"
  "bench/ext_clustered_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_clustered_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
