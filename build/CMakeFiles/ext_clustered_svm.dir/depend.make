# Empty dependencies file for ext_clustered_svm.
# This may be replaced when dependencies are built.
