# Empty compiler generated dependencies file for fig03_lu_breakdown.
# This may be replaced when dependencies are built.
