file(REMOVE_RECURSE
  "CMakeFiles/fig03_lu_breakdown.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig03_lu_breakdown.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig03_lu_breakdown.dir/bench/fig03_lu_breakdown.cpp.o"
  "CMakeFiles/fig03_lu_breakdown.dir/bench/fig03_lu_breakdown.cpp.o.d"
  "bench/fig03_lu_breakdown"
  "bench/fig03_lu_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lu_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
