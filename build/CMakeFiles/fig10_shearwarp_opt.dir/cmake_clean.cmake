file(REMOVE_RECURSE
  "CMakeFiles/fig10_shearwarp_opt.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig10_shearwarp_opt.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig10_shearwarp_opt.dir/bench/fig10_shearwarp_opt.cpp.o"
  "CMakeFiles/fig10_shearwarp_opt.dir/bench/fig10_shearwarp_opt.cpp.o.d"
  "bench/fig10_shearwarp_opt"
  "bench/fig10_shearwarp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_shearwarp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
