# Empty dependencies file for fig10_shearwarp_opt.
# This may be replaced when dependencies are built.
