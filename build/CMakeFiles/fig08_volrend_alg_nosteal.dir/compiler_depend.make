# Empty compiler generated dependencies file for fig08_volrend_alg_nosteal.
# This may be replaced when dependencies are built.
