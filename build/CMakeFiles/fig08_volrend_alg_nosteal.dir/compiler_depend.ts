# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_volrend_alg_nosteal.
