file(REMOVE_RECURSE
  "CMakeFiles/fig08_volrend_alg_nosteal.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig08_volrend_alg_nosteal.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig08_volrend_alg_nosteal.dir/bench/fig08_volrend_alg_nosteal.cpp.o"
  "CMakeFiles/fig08_volrend_alg_nosteal.dir/bench/fig08_volrend_alg_nosteal.cpp.o.d"
  "bench/fig08_volrend_alg_nosteal"
  "bench/fig08_volrend_alg_nosteal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_volrend_alg_nosteal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
