# Empty compiler generated dependencies file for fig11_raytrace_orig.
# This may be replaced when dependencies are built.
