file(REMOVE_RECURSE
  "CMakeFiles/fig11_raytrace_orig.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig11_raytrace_orig.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig11_raytrace_orig.dir/bench/fig11_raytrace_orig.cpp.o"
  "CMakeFiles/fig11_raytrace_orig.dir/bench/fig11_raytrace_orig.cpp.o.d"
  "bench/fig11_raytrace_orig"
  "bench/fig11_raytrace_orig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_raytrace_orig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
