file(REMOVE_RECURSE
  "CMakeFiles/ext_hlrc_vs_lrc.dir/bench/bench_common.cpp.o"
  "CMakeFiles/ext_hlrc_vs_lrc.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/ext_hlrc_vs_lrc.dir/bench/ext_hlrc_vs_lrc.cpp.o"
  "CMakeFiles/ext_hlrc_vs_lrc.dir/bench/ext_hlrc_vs_lrc.cpp.o.d"
  "bench/ext_hlrc_vs_lrc"
  "bench/ext_hlrc_vs_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hlrc_vs_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
