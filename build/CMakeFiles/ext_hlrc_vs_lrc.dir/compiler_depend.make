# Empty compiler generated dependencies file for ext_hlrc_vs_lrc.
# This may be replaced when dependencies are built.
