# Empty compiler generated dependencies file for fig14_barnes_spatial.
# This may be replaced when dependencies are built.
