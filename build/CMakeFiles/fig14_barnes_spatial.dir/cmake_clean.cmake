file(REMOVE_RECURSE
  "CMakeFiles/fig14_barnes_spatial.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig14_barnes_spatial.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig14_barnes_spatial.dir/bench/fig14_barnes_spatial.cpp.o"
  "CMakeFiles/fig14_barnes_spatial.dir/bench/fig14_barnes_spatial.cpp.o.d"
  "bench/fig14_barnes_spatial"
  "bench/fig14_barnes_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_barnes_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
