# Empty dependencies file for fig07_volrend_alg_steal.
# This may be replaced when dependencies are built.
