file(REMOVE_RECURSE
  "CMakeFiles/fig07_volrend_alg_steal.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig07_volrend_alg_steal.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig07_volrend_alg_steal.dir/bench/fig07_volrend_alg_steal.cpp.o"
  "CMakeFiles/fig07_volrend_alg_steal.dir/bench/fig07_volrend_alg_steal.cpp.o.d"
  "bench/fig07_volrend_alg_steal"
  "bench/fig07_volrend_alg_steal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_volrend_alg_steal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
