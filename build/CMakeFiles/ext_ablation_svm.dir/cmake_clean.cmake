file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_svm.dir/bench/bench_common.cpp.o"
  "CMakeFiles/ext_ablation_svm.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/ext_ablation_svm.dir/bench/ext_ablation_svm.cpp.o"
  "CMakeFiles/ext_ablation_svm.dir/bench/ext_ablation_svm.cpp.o.d"
  "bench/ext_ablation_svm"
  "bench/ext_ablation_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
