# Empty compiler generated dependencies file for ext_ablation_svm.
# This may be replaced when dependencies are built.
