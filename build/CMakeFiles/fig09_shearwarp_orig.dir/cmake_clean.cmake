file(REMOVE_RECURSE
  "CMakeFiles/fig09_shearwarp_orig.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig09_shearwarp_orig.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig09_shearwarp_orig.dir/bench/fig09_shearwarp_orig.cpp.o"
  "CMakeFiles/fig09_shearwarp_orig.dir/bench/fig09_shearwarp_orig.cpp.o.d"
  "bench/fig09_shearwarp_orig"
  "bench/fig09_shearwarp_orig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_shearwarp_orig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
