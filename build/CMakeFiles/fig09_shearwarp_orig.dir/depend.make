# Empty dependencies file for fig09_shearwarp_orig.
# This may be replaced when dependencies are built.
