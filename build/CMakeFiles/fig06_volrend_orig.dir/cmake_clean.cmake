file(REMOVE_RECURSE
  "CMakeFiles/fig06_volrend_orig.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig06_volrend_orig.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig06_volrend_orig.dir/bench/fig06_volrend_orig.cpp.o"
  "CMakeFiles/fig06_volrend_orig.dir/bench/fig06_volrend_orig.cpp.o.d"
  "bench/fig06_volrend_orig"
  "bench/fig06_volrend_orig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_volrend_orig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
