# Empty compiler generated dependencies file for fig06_volrend_orig.
# This may be replaced when dependencies are built.
