# Empty dependencies file for fig04_ocean_contig.
# This may be replaced when dependencies are built.
