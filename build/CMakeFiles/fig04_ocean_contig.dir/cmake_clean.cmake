file(REMOVE_RECURSE
  "CMakeFiles/fig04_ocean_contig.dir/bench/bench_common.cpp.o"
  "CMakeFiles/fig04_ocean_contig.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/fig04_ocean_contig.dir/bench/fig04_ocean_contig.cpp.o"
  "CMakeFiles/fig04_ocean_contig.dir/bench/fig04_ocean_contig.cpp.o.d"
  "bench/fig04_ocean_contig"
  "bench/fig04_ocean_contig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ocean_contig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
