file(REMOVE_RECURSE
  "CMakeFiles/micro_protocol.dir/bench/bench_common.cpp.o"
  "CMakeFiles/micro_protocol.dir/bench/bench_common.cpp.o.d"
  "CMakeFiles/micro_protocol.dir/bench/micro_protocol.cpp.o"
  "CMakeFiles/micro_protocol.dir/bench/micro_protocol.cpp.o.d"
  "bench/micro_protocol"
  "bench/micro_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
