# Empty dependencies file for example_render_head.
# This may be replaced when dependencies are built.
