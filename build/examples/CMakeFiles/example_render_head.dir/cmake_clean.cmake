file(REMOVE_RECURSE
  "CMakeFiles/example_render_head.dir/render_head.cpp.o"
  "CMakeFiles/example_render_head.dir/render_head.cpp.o.d"
  "example_render_head"
  "example_render_head.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_render_head.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
