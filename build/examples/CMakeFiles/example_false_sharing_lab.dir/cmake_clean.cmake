file(REMOVE_RECURSE
  "CMakeFiles/example_false_sharing_lab.dir/false_sharing_lab.cpp.o"
  "CMakeFiles/example_false_sharing_lab.dir/false_sharing_lab.cpp.o.d"
  "example_false_sharing_lab"
  "example_false_sharing_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_false_sharing_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
