# Empty compiler generated dependencies file for example_false_sharing_lab.
# This may be replaced when dependencies are built.
