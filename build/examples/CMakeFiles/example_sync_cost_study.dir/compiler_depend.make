# Empty compiler generated dependencies file for example_sync_cost_study.
# This may be replaced when dependencies are built.
