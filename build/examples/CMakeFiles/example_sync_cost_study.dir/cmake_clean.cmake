file(REMOVE_RECURSE
  "CMakeFiles/example_sync_cost_study.dir/sync_cost_study.cpp.o"
  "CMakeFiles/example_sync_cost_study.dir/sync_cost_study.cpp.o.d"
  "example_sync_cost_study"
  "example_sync_cost_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sync_cost_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
