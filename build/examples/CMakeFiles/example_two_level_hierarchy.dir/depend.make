# Empty dependencies file for example_two_level_hierarchy.
# This may be replaced when dependencies are built.
