file(REMOVE_RECURSE
  "CMakeFiles/example_two_level_hierarchy.dir/two_level_hierarchy.cpp.o"
  "CMakeFiles/example_two_level_hierarchy.dir/two_level_hierarchy.cpp.o.d"
  "example_two_level_hierarchy"
  "example_two_level_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_two_level_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
