# Empty dependencies file for example_perf_debug.
# This may be replaced when dependencies are built.
