file(REMOVE_RECURSE
  "CMakeFiles/example_perf_debug.dir/perf_debug.cpp.o"
  "CMakeFiles/example_perf_debug.dir/perf_debug.cpp.o.d"
  "example_perf_debug"
  "example_perf_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_perf_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
