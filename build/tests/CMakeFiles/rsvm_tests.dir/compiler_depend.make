# Empty compiler generated dependencies file for rsvm_tests.
# This may be replaced when dependencies are built.
