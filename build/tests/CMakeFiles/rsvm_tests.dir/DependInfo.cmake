
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/app_correctness_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/apps/app_correctness_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/apps/app_correctness_test.cpp.o.d"
  "/root/repo/tests/apps/volume_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/apps/volume_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/apps/volume_test.cpp.o.d"
  "/root/repo/tests/apps/workload_signature_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/apps/workload_signature_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/apps/workload_signature_test.cpp.o.d"
  "/root/repo/tests/core/registry_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/core/registry_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/core/registry_test.cpp.o.d"
  "/root/repo/tests/integration/accounting_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/integration/accounting_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/integration/accounting_test.cpp.o.d"
  "/root/repo/tests/integration/paper_properties_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/integration/paper_properties_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/integration/paper_properties_test.cpp.o.d"
  "/root/repo/tests/mem/cache_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/mem/cache_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/mem/cache_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/proto/clustered_svm_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/clustered_svm_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/clustered_svm_test.cpp.o.d"
  "/root/repo/tests/proto/fgs_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/fgs_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/fgs_test.cpp.o.d"
  "/root/repo/tests/proto/hw_sync_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/hw_sync_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/hw_sync_test.cpp.o.d"
  "/root/repo/tests/proto/lrc_mode_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/lrc_mode_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/lrc_mode_test.cpp.o.d"
  "/root/repo/tests/proto/numa_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/numa_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/numa_test.cpp.o.d"
  "/root/repo/tests/proto/proc_count_sweep_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/proc_count_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/proc_count_sweep_test.cpp.o.d"
  "/root/repo/tests/proto/smp_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/smp_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/smp_test.cpp.o.d"
  "/root/repo/tests/proto/svm_lrc_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/svm_lrc_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/svm_lrc_test.cpp.o.d"
  "/root/repo/tests/proto/svm_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/proto/svm_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/proto/svm_test.cpp.o.d"
  "/root/repo/tests/runtime/shared_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/runtime/shared_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/runtime/shared_test.cpp.o.d"
  "/root/repo/tests/runtime/task_queue_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/runtime/task_queue_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/runtime/task_queue_test.cpp.o.d"
  "/root/repo/tests/runtime/trace_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/runtime/trace_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/runtime/trace_test.cpp.o.d"
  "/root/repo/tests/sim/engine_stress_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/sim/engine_stress_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/sim/engine_stress_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/rsvm_tests.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/rsvm_tests.dir/sim/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsvm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rsvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
