# Empty compiler generated dependencies file for rsvm.
# This may be replaced when dependencies are built.
