file(REMOVE_RECURSE
  "CMakeFiles/rsvm.dir/core/app.cpp.o"
  "CMakeFiles/rsvm.dir/core/app.cpp.o.d"
  "CMakeFiles/rsvm.dir/core/experiment.cpp.o"
  "CMakeFiles/rsvm.dir/core/experiment.cpp.o.d"
  "CMakeFiles/rsvm.dir/mem/address_space.cpp.o"
  "CMakeFiles/rsvm.dir/mem/address_space.cpp.o.d"
  "CMakeFiles/rsvm.dir/mem/cache.cpp.o"
  "CMakeFiles/rsvm.dir/mem/cache.cpp.o.d"
  "CMakeFiles/rsvm.dir/proto/fgs/fgs_platform.cpp.o"
  "CMakeFiles/rsvm.dir/proto/fgs/fgs_platform.cpp.o.d"
  "CMakeFiles/rsvm.dir/proto/numa/numa_platform.cpp.o"
  "CMakeFiles/rsvm.dir/proto/numa/numa_platform.cpp.o.d"
  "CMakeFiles/rsvm.dir/proto/smp/smp_platform.cpp.o"
  "CMakeFiles/rsvm.dir/proto/smp/smp_platform.cpp.o.d"
  "CMakeFiles/rsvm.dir/proto/svm/svm_platform.cpp.o"
  "CMakeFiles/rsvm.dir/proto/svm/svm_platform.cpp.o.d"
  "CMakeFiles/rsvm.dir/runtime/platform.cpp.o"
  "CMakeFiles/rsvm.dir/runtime/platform.cpp.o.d"
  "CMakeFiles/rsvm.dir/runtime/trace.cpp.o"
  "CMakeFiles/rsvm.dir/runtime/trace.cpp.o.d"
  "CMakeFiles/rsvm.dir/sim/engine.cpp.o"
  "CMakeFiles/rsvm.dir/sim/engine.cpp.o.d"
  "CMakeFiles/rsvm.dir/sim/fiber.cpp.o"
  "CMakeFiles/rsvm.dir/sim/fiber.cpp.o.d"
  "CMakeFiles/rsvm.dir/sim/stats.cpp.o"
  "CMakeFiles/rsvm.dir/sim/stats.cpp.o.d"
  "librsvm.a"
  "librsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
