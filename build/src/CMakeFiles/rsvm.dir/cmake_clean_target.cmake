file(REMOVE_RECURSE
  "librsvm.a"
)
