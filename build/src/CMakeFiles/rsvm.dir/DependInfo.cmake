
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app.cpp" "src/CMakeFiles/rsvm.dir/core/app.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/core/app.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/rsvm.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/core/experiment.cpp.o.d"
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/rsvm.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/rsvm.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/mem/cache.cpp.o.d"
  "/root/repo/src/proto/fgs/fgs_platform.cpp" "src/CMakeFiles/rsvm.dir/proto/fgs/fgs_platform.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/proto/fgs/fgs_platform.cpp.o.d"
  "/root/repo/src/proto/numa/numa_platform.cpp" "src/CMakeFiles/rsvm.dir/proto/numa/numa_platform.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/proto/numa/numa_platform.cpp.o.d"
  "/root/repo/src/proto/smp/smp_platform.cpp" "src/CMakeFiles/rsvm.dir/proto/smp/smp_platform.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/proto/smp/smp_platform.cpp.o.d"
  "/root/repo/src/proto/svm/svm_platform.cpp" "src/CMakeFiles/rsvm.dir/proto/svm/svm_platform.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/proto/svm/svm_platform.cpp.o.d"
  "/root/repo/src/runtime/platform.cpp" "src/CMakeFiles/rsvm.dir/runtime/platform.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/runtime/platform.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/rsvm.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/rsvm.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/rsvm.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/rsvm.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/rsvm.dir/sim/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
