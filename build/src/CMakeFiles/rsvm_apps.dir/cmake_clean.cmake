file(REMOVE_RECURSE
  "CMakeFiles/rsvm_apps.dir/apps/barnes/barnes.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/barnes/barnes.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/common/volume.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/common/volume.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/lu/lu.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/lu/lu.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/ocean/ocean.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/ocean/ocean.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/radix/radix.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/radix/radix.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/raytrace/raytrace.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/raytrace/raytrace.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/register_all.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/register_all.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/shearwarp/shearwarp.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/shearwarp/shearwarp.cpp.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/volrend/volrend.cpp.o"
  "CMakeFiles/rsvm_apps.dir/apps/volrend/volrend.cpp.o.d"
  "librsvm_apps.a"
  "librsvm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsvm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
