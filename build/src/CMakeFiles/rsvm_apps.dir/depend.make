# Empty dependencies file for rsvm_apps.
# This may be replaced when dependencies are built.
