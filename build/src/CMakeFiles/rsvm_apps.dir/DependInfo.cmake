
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes/barnes.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/barnes/barnes.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/barnes/barnes.cpp.o.d"
  "/root/repo/src/apps/common/volume.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/common/volume.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/common/volume.cpp.o.d"
  "/root/repo/src/apps/lu/lu.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/lu/lu.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/lu/lu.cpp.o.d"
  "/root/repo/src/apps/ocean/ocean.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/ocean/ocean.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/ocean/ocean.cpp.o.d"
  "/root/repo/src/apps/radix/radix.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/radix/radix.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/radix/radix.cpp.o.d"
  "/root/repo/src/apps/raytrace/raytrace.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/raytrace/raytrace.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/raytrace/raytrace.cpp.o.d"
  "/root/repo/src/apps/register_all.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/register_all.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/register_all.cpp.o.d"
  "/root/repo/src/apps/shearwarp/shearwarp.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/shearwarp/shearwarp.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/shearwarp/shearwarp.cpp.o.d"
  "/root/repo/src/apps/volrend/volrend.cpp" "src/CMakeFiles/rsvm_apps.dir/apps/volrend/volrend.cpp.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/volrend/volrend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
