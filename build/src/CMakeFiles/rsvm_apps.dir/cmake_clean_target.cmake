file(REMOVE_RECURSE
  "librsvm_apps.a"
)
