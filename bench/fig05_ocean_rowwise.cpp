// Figure 5: Ocean row-wise SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parse(argc, argv);
  rsvm::bench::breakdownFigure("Figure 5 (Ocean row-wise)", "ocean", "rowwise", opt);
  return 0;
}
