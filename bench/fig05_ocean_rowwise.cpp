// Figure 5: Ocean row-wise SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 5 (Ocean row-wise)", "ocean", "rowwise", opt);
  return 0;
}
