// Figure 17: Volrend with the algorithmic optimization, with and without
// task stealing, on the SVM and CC-NUMA DSM platforms. The paper's
// punchline: stealing wins on hardware coherence (cheap synchronization)
// and loses on SVM (dilated critical sections, expensive locks).
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader("Figure 17: Volrend algorithmic version, stealing "
                     "on/off, SVM vs CC-NUMA DSM");
  const AppDesc* app = Registry::instance().find("volrend");
  Experiment ex(*app);
  std::printf("%-28s %8s %8s\n", "version", "SVM", "DSM");
  for (const char* ver : {"alg-steal", "alg-nosteal"}) {
    const double svm =
        bench::cell(ex, PlatformKind::SVM, *app, ver, opt).speedup();
    const double dsm =
        bench::cell(ex, PlatformKind::NUMA, *app, ver, opt).speedup();
    std::printf("%-28s %8.2f %8.2f\n", ver, svm, dsm);
  }
  std::printf("\npaper (Fig 17): stealing helps the DSM and hurts SVM.\n");
  return 0;
}
