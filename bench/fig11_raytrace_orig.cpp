// Figure 11: Raytrace SPLASH-2 version SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 11 (Raytrace SPLASH-2)", "raytrace", "orig", opt);
  return 0;
}
