// Ablations over the SVM platform's design parameters, for the design
// choices DESIGN.md calls out:
//
//  * page size    -- 1/4/16 KB coherence units: smaller pages trade
//                    fragmentation/false sharing against per-fault
//                    overhead amortization,
//  * I/O bus      -- the commodity bottleneck (the paper's 100 MB/s) vs
//                    faster fabrics: how much of the SVM gap is pure
//                    bandwidth,
//  * free CS faults -- the paper's own diagnostic ("pretend page faults
//                    inside critical sections are free"), quantifying
//                    critical-section dilation per application.
#include "bench_common.hpp"

#include "proto/svm/svm_platform.hpp"

#include <cstdio>

namespace {

using namespace rsvm;

Cycles runWith(const AppDesc&, const VersionDesc& ver,
               const AppParams& prm, int procs, const SvmParams& sp,
               bool free_cs = false) {
  SvmPlatform plat(procs, sp);
  plat.free_cs_faults = free_cs;
  const AppResult r = ver.run(plat, prm);
  if (!r.correct) std::printf("  !! verification failed: %s\n", r.note.c_str());
  return r.stats.exec_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);

  bench::printHeader("Ablation 1: SVM page size (ocean/2d, volrend/orig)");
  std::printf("%10s %16s %16s\n", "page", "ocean 2d", "volrend orig");
  for (std::uint32_t page : {1024u, 4096u, 16384u}) {
    SvmParams sp;
    sp.page_bytes = page;
    // Scale transfer-dependent handler costs with the page size.
    sp.twin_create = 2500 * page / 4096;
    sp.diff_scan = 3000 * page / 4096;
    const AppDesc* ocean = Registry::instance().find("ocean");
    const AppDesc* volrend = Registry::instance().find("volrend");
    const Cycles oc = runWith(*ocean, *ocean->version("2d"),
                              bench::pick(*ocean, opt), opt.procs, sp);
    const Cycles vr = runWith(*volrend, *volrend->version("orig"),
                              bench::pick(*volrend, opt), opt.procs, sp);
    std::printf("%9uB %16llu %16llu\n", page,
                static_cast<unsigned long long>(oc),
                static_cast<unsigned long long>(vr));
  }

  bench::printHeader("Ablation 2: I/O-bus bandwidth (radix/orig on SVM)");
  std::printf("%12s %16s\n", "bandwidth", "radix orig cycles");
  for (double bpc : {0.25, 0.5, 1.0, 2.0, 8.0}) {
    SvmParams sp;
    sp.iobus_bytes_per_cycle = bpc;
    const AppDesc* radix = Registry::instance().find("radix");
    const Cycles rx = runWith(*radix, radix->original(),
                              bench::pick(*radix, opt), opt.procs, sp);
    std::printf("%9.0fMB/s %16llu\n", bpc * 200.0,
                static_cast<unsigned long long>(rx));
  }

  bench::printHeader(
      "Ablation 3: critical-section dilation (free CS faults diagnostic)");
  std::printf("%-22s %16s %16s %8s\n", "app/version", "normal", "freeCS",
              "ratio");
  struct Pick {
    const char* app;
    const char* ver;
  };
  for (const Pick pk : {Pick{"volrend", "orig"}, Pick{"raytrace", "orig"},
                        Pick{"barnes", "orig"}}) {
    const AppDesc* app = Registry::instance().find(pk.app);
    const VersionDesc* v = app->version(pk.ver);
    const AppParams& prm = bench::pick(*app, opt);
    const Cycles normal = runWith(*app, *v, prm, opt.procs, SvmParams{});
    const Cycles free_cs =
        runWith(*app, *v, prm, opt.procs, SvmParams{}, true);
    std::printf("%-22s %16llu %16llu %8.2f\n",
                (std::string(pk.app) + "/" + pk.ver).c_str(),
                static_cast<unsigned long long>(normal),
                static_cast<unsigned long long>(free_cs),
                static_cast<double>(normal) / static_cast<double>(free_cs));
  }
  std::printf("\nThe ratio is the slowdown attributable to page faults\n"
              "dilating critical sections (paper, section 4.2.1).\n");
  return 0;
}
