// Figure 12: optimized Raytrace SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 12 (Raytrace optimized)", "raytrace", "alg-splitq", opt);
  return 0;
}
