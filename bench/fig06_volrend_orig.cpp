// Figure 6: Volrend SPLASH-2 version SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 6 (Volrend SPLASH-2)", "volrend", "orig", opt);
  return 0;
}
