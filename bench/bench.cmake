# One binary per paper table/figure, plus protocol microbenchmarks.
# Included from the top-level CMakeLists so build/bench/ holds only the
# executables (handy for `for b in build/bench/*; do $b; done`).
#
# Simulated results are build-type independent, but the host-throughput
# numbers (ext_simperf, the wall_ms / host_accesses_per_sec JSON fields)
# are meaningless without optimization.
if(CMAKE_BUILD_TYPE STREQUAL "Debug")
  message(WARNING
    "Bench targets are being built with CMAKE_BUILD_TYPE=Debug: "
    "host-throughput numbers (ext_simperf, wall_ms fields) will be "
    "unrepresentative. Use Release or RelWithDebInfo for benchmarking.")
endif()

file(GLOB BENCH_SOURCES CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/bench/*.cpp)

foreach(src ${BENCH_SOURCES})
  get_filename_component(name ${src} NAME_WE)
  if(name STREQUAL "bench_common")
    continue()
  endif()
  add_executable(${name} ${src} ${CMAKE_SOURCE_DIR}/bench/bench_common.cpp)
  target_link_libraries(${name} PRIVATE rsvm_apps benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
