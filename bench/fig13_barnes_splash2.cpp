// Figure 13: Barnes SPLASH-2 version SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 13 (Barnes SPLASH-2)", "barnes", "ds", opt);
  return 0;
}
