// Extension (paper section 7): "how problem size affects these results".
// Sweep problem sizes for LU and Ocean on SVM: the paper's hypothesis is
// that larger problems amortize page-grain overheads, shrinking (but not
// closing) the gap between the original and restructured versions.
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader("Extension: problem-size sensitivity on SVM");

  {
    const AppDesc* lu = Registry::instance().find("lu");
    Experiment ex(*lu);
    std::printf("-- LU (block = n/16) --\n%8s %10s %14s %10s\n", "n", "2d",
                "4d-aligned", "ratio");
    for (int n : {128, 256, 512}) {
      AppParams prm = lu->small;
      prm.n = n;
      prm.block = std::max(8, n / 16);
      const double orig =
          ex.run(PlatformKind::SVM, *lu->version("2d"), prm, opt.procs)
              .speedup();
      const double best =
          ex.run(PlatformKind::SVM, *lu->version("4d-aligned"), prm,
                 opt.procs)
              .speedup();
      std::printf("%8d %10.2f %14.2f %10.2f\n", n, orig, best, best / orig);
    }
  }
  {
    const AppDesc* ocean = Registry::instance().find("ocean");
    Experiment ex(*ocean);
    std::printf("\n-- Ocean --\n%8s %10s %14s %10s\n", "n", "2d", "rowwise",
                "ratio");
    for (int n : {130, 258, 514}) {
      AppParams prm = ocean->small;
      prm.n = n;
      const double orig =
          ex.run(PlatformKind::SVM, *ocean->version("2d"), prm, opt.procs)
              .speedup();
      const double best =
          ex.run(PlatformKind::SVM, *ocean->version("rowwise"), prm,
                 opt.procs)
              .speedup();
      std::printf("%8d %10.2f %14.2f %10.2f\n", n, orig, best, best / orig);
    }
  }
  return 0;
}
