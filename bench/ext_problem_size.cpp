// Extension (paper section 7): "how problem size affects these results".
// Sweep problem sizes for LU and Ocean on SVM: the paper's hypothesis is
// that larger problems amortize page-grain overheads, shrinking (but not
// closing) the gap between the original and restructured versions.
//
// Each (app, n, version) cell is independent; the sweep fans out over
// host threads (--jobs=N) with one cached baseline per (app, n).
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader("Extension: problem-size sensitivity on SVM");

  struct Row {
    const char* app;
    const char* orig;
    const char* best;
    int sizes[3];
    bool block_tracks_n;  // LU keeps block = n/16
  };
  const Row rows[] = {
      {"lu", "2d", "4d-aligned", {128, 256, 512}, true},
      {"ocean", "2d", "rowwise", {130, 258, 514}, false},
  };

  std::vector<SweepPoint> points;
  for (const Row& row : rows) {
    const AppDesc* app = Registry::instance().find(row.app);
    for (int n : row.sizes) {
      AppParams prm = app->small;
      prm.n = n;
      if (row.block_tracks_n) prm.block = std::max(8, n / 16);
      for (const char* ver : {row.orig, row.best}) {
        SweepPoint p;
        p.kind = PlatformKind::SVM;
        p.app = app->name;
        p.version = ver;
        p.params = prm;
        p.procs = opt.procs;
        points.push_back(std::move(p));
      }
    }
  }

  bench::Report report("ext_problem_size", opt);
  const auto results = bench::sweep(points, opt, report);

  std::size_t i = 0;
  for (const Row& row : rows) {
    if (&row != &rows[0]) std::printf("\n");
    std::printf("-- %s%s --\n%8s %10s %14s %10s\n", row.app,
                row.block_tracks_n ? " (block = n/16)" : "", "n", row.orig,
                row.best, "ratio");
    for (int n : row.sizes) {
      const double orig = results[i].speedup();
      const double best = results[i + 1].speedup();
      for (std::size_t k = 0; k < 2; ++k) {
        if (!results[i + k].ok()) {
          std::fprintf(stderr, "!! %s\n", results[i + k].error.c_str());
        }
      }
      i += 2;
      std::printf("%8d %10.2f %14.2f %10.2f\n", n, orig, best,
                  orig > 0 ? best / orig : 0.0);
    }
  }
  report.maybeWrite(opt);
  return 0;
}
