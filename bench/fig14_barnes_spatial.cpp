// Figure 14: Barnes spatial version SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 14 (Barnes spatial)", "barnes", "spatial", opt);
  return 0;
}
