// Robustness sweep: fault-injection survival matrix. Every point runs
// under the shadow-memory coherence oracle with a deterministic fault
// plan armed (message jitter, handler delays, spurious-but-legal
// invalidations, lock-grant reordering). The protocols must absorb all
// of it: results stay correct and the oracle stays clean, or the point
// becomes an error record and the binary exits nonzero.
//
// Grid: 8 seeds x {lu, ocean, radix} x {SVM, NUMA}. The same seed
// always produces the same schedule (see tests/integration/
// fault_sweep_test.cpp for the bit-identical-rerun check).
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  constexpr std::uint64_t kSeeds = 8;
  const char* apps[] = {"lu", "ocean", "radix"};
  const PlatformKind kinds[] = {PlatformKind::SVM, PlatformKind::NUMA};

  bench::printHeader("Fault-injection survival: coherence oracle + " +
                     std::to_string(kSeeds) + " fault seeds, " +
                     std::to_string(opt.procs) + " processors");

  std::vector<SweepPoint> points;
  for (const PlatformKind kind : kinds) {
    for (const char* app : apps) {
      const AppDesc* a = Registry::instance().find(app);
      if (a == nullptr) {
        std::fprintf(stderr, "ext_faults: unknown app '%s'\n", app);
        return 1;
      }
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        SweepPoint p;
        p.kind = kind;
        p.app = app;
        p.version = a->original().name;
        p.params = bench::pick(*a, opt);
        p.procs = opt.procs;
        p.with_baseline = false;
        p.check = CheckLevel::Oracle;
        p.fault_seed = seed;
        points.push_back(std::move(p));
      }
    }
  }

  bench::Report report("ext_faults", opt);
  const std::vector<SweepResult> results = bench::sweep(points, opt, report);

  std::size_t failures = 0, timeouts = 0, retries = 0;
  std::uint64_t violations = 0;
  std::printf("%-8s %-8s  seeds 1..%llu\n", "platform", "app",
              static_cast<unsigned long long>(kSeeds));
  for (std::size_t row = 0; row < results.size(); row += kSeeds) {
    const SweepPoint& p0 = points[row];
    std::printf("%-8s %-8s ", platformName(p0.kind), p0.app.c_str());
    for (std::size_t s = 0; s < kSeeds; ++s) {
      const SweepResult& r = results[row + s];
      failures += r.ok() ? 0 : 1;
      timeouts += r.timed_out ? 1 : 0;
      retries += static_cast<std::size_t>(r.retries);
      violations += r.oracle_violations;
      std::printf(" %s", r.ok() ? "ok" : (r.timed_out ? "TO" : "FAIL"));
    }
    std::printf("\n");
  }
  for (const SweepResult& r : results) {
    if (!r.ok()) std::fprintf(stderr, "ext_faults: %s\n", r.error.c_str());
  }
  std::printf(
      "\n%zu point(s), %zu failure(s), %zu timeout(s), %zu retr%s, "
      "%llu oracle violation(s)\n",
      results.size(), failures, timeouts, retries, retries == 1 ? "y" : "ies",
      static_cast<unsigned long long>(violations));

  report.addExtra("fault_stats",
                  "{\"points\": " + std::to_string(results.size()) +
                      ", \"failures\": " + std::to_string(failures) +
                      ", \"timeouts\": " + std::to_string(timeouts) +
                      ", \"retries\": " + std::to_string(retries) +
                      ", \"oracle_violations\": " + std::to_string(violations) +
                      "}");
  report.maybeWrite(opt);
  return failures == 0 ? 0 : 1;
}
