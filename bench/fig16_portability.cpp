// Figure 16: performance with the different optimization classes across
// the shared-address-space multiprocessors -- the performance-portability
// result. For every application, every version (Orig / P+A / DS / Alg)
// runs on SVM, SMP and DSM; speedups are measured against the original
// version's uniprocessor time on the same platform, exactly as in the
// paper. Expected shape: the optimizations transform SVM performance,
// help modestly on DSM, and are mostly neutral on the SMP.
//
// This is the repo's biggest sweep (every app x every version x three
// platforms, plus baselines); all cells are independent deterministic
// simulations and run host-parallel under --jobs=N, printed in figure
// order. --json=FILE emits the machine-readable results.
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader(
      "Figure 16: speedups per optimization class across platforms (" +
      std::to_string(opt.procs) + " processors)");

  const PlatformKind kinds[] = {PlatformKind::SVM, PlatformKind::SMP,
                                PlatformKind::NUMA};
  std::vector<SweepPoint> points;
  for (const AppDesc& app : Registry::instance().all()) {
    for (const VersionDesc& v : app.versions) {
      for (PlatformKind kind : kinds) {
        SweepPoint p;
        p.kind = kind;
        p.app = app.name;
        p.version = v.name;
        p.params = bench::pick(app, opt);
        p.procs = opt.procs;
        points.push_back(std::move(p));
      }
    }
  }

  bench::Report report("fig16_portability", opt);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = bench::sweep(points, opt, report);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::size_t i = 0;
  for (const AppDesc& app : Registry::instance().all()) {
    std::printf("-- %s (%s) --\n", app.name.c_str(), app.summary.c_str());
    std::printf("%-28s %8s %8s %8s\n", "version [class]", "SVM", "SMP",
                "DSM");
    for (const VersionDesc& v : app.versions) {
      const double svm = results[i].speedup();
      const double smp = results[i + 1].speedup();
      const double dsm = results[i + 2].speedup();
      for (std::size_t k = 0; k < 3; ++k) {
        if (!results[i + k].ok()) {
          std::fprintf(stderr, "!! %s\n", results[i + k].error.c_str());
        }
      }
      i += 3;
      std::printf("%s", fmt::speedupRow(v.name + " [" +
                                            optClassName(v.cls) + "]",
                                        svm, smp, dsm)
                            .c_str());
    }
    std::printf("\n");
  }
  std::printf("[%zu points in %.2f s wall, --jobs=%d]\n", points.size(),
              wall_s, opt.jobs > 0 ? opt.jobs : SweepRunner::defaultJobs());
  report.maybeWrite(opt);
  return 0;
}
