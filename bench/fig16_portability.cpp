// Figure 16: performance with the different optimization classes across
// the shared-address-space multiprocessors -- the performance-portability
// result. For every application, every version (Orig / P+A / DS / Alg)
// runs on SVM, SMP and DSM; speedups are measured against the original
// version's uniprocessor time on the same platform, exactly as in the
// paper. Expected shape: the optimizations transform SVM performance,
// help modestly on DSM, and are mostly neutral on the SMP.
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader(
      "Figure 16: speedups per optimization class across platforms (" +
      std::to_string(opt.procs) + " processors)");
  for (const AppDesc& app : Registry::instance().all()) {
    Experiment ex(app);
    std::printf("-- %s (%s) --\n", app.name.c_str(), app.summary.c_str());
    std::printf("%-28s %8s %8s %8s\n", "version [class]", "SVM", "SMP", "DSM");
    for (const VersionDesc& v : app.versions) {
      const double svm =
          bench::cell(ex, PlatformKind::SVM, app, v.name, opt).speedup();
      const double smp =
          bench::cell(ex, PlatformKind::SMP, app, v.name, opt).speedup();
      const double dsm =
          bench::cell(ex, PlatformKind::NUMA, app, v.name, opt).speedup();
      std::printf("%s", fmt::speedupRow(v.name + " [" +
                                            optClassName(v.cls) + "]",
                                        svm, smp, dsm)
                            .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
