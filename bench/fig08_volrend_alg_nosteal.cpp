// Figure 8: Volrend balanced partition, no stealing, SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 8 (Volrend balanced, no stealing)", "volrend", "alg-nosteal", opt);
  return 0;
}
