// Ablation: home-based (HLRC) vs non-home-based (TreadMarks-style) lazy
// release consistency. The paper adopts HLRC citing Zhou/Iftode/Li
// (OSDI'96): "memory overhead and scalability advantages over non
// home-based protocols such as that in TreadMarks", and that HLRC has
// "been shown to equal or outperform" LRC. This bench reproduces both
// claims: execution time per application and retained-diff memory.
#include "bench_common.hpp"

#include "proto/svm/svm_platform.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader("Ablation: HLRC vs TreadMarks-style LRC (" +
                     std::to_string(opt.procs) + " processors)");
  std::printf("%-12s %14s %14s %8s %16s\n", "app (orig)", "HLRC cycles",
              "LRC cycles", "LRC/HLRC", "LRC diff bytes");
  for (const AppDesc& app : Registry::instance().all()) {
    const AppParams& prm = bench::pick(app, opt);
    SvmPlatform hlrc(opt.procs);
    const AppResult rh = app.original().run(hlrc, prm);
    SvmParams sp;
    sp.home_based = false;
    SvmPlatform lrc(opt.procs, sp);
    const AppResult rl = app.original().run(lrc, prm);
    if (!rh.correct || !rl.correct) {
      std::printf("%-12s verification failed\n", app.name.c_str());
      continue;
    }
    std::printf("%-12s %14llu %14llu %8.2f %16llu\n", app.name.c_str(),
                static_cast<unsigned long long>(rh.stats.exec_cycles),
                static_cast<unsigned long long>(rl.stats.exec_cycles),
                static_cast<double>(rl.stats.exec_cycles) /
                    static_cast<double>(rh.stats.exec_cycles),
                static_cast<unsigned long long>(lrc.retainedDiffBytes()));
  }
  std::printf("\nLRC/HLRC > 1 means the home-based protocol wins; the last\n"
              "column is the memory the TreadMarks-style protocol retains\n"
              "in un-garbage-collected diffs at the end of the run.\n");
  return 0;
}
