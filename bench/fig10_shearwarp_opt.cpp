// Figure 10: optimized Shear-Warp SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 10 (Shear-Warp optimized)", "shearwarp", "alg", opt);
  return 0;
}
