// Figure 3: LU contiguous (no padding/alignment) SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 3 (LU contiguous, no P/A)", "lu", "4d", opt);
  return 0;
}
