// Figure 2: speedups of the original application versions on the three
// shared-address-space platforms (16 processors). Paper reference values
// (read off the figure): good-to-reasonable on SMP/DSM for everything,
// while on SVM LU/Ocean/Raytrace fall below 1 and Volrend, Shear-Warp,
// Barnes and Radix underperform.
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader(
      "Figure 2: speedups of original versions across platforms (" +
      std::to_string(opt.procs) + " processors)");
  std::printf("%-28s %8s %8s %8s\n", "application (orig version)", "SVM",
              "SMP", "DSM");
  for (const AppDesc& app : Registry::instance().all()) {
    Experiment ex(app);
    const double svm =
        bench::cell(ex, PlatformKind::SVM, app, app.original().name, opt)
            .speedup();
    const double smp =
        bench::cell(ex, PlatformKind::SMP, app, app.original().name, opt)
            .speedup();
    const double dsm =
        bench::cell(ex, PlatformKind::NUMA, app, app.original().name, opt)
            .speedup();
    std::printf("%s",
                fmt::speedupRow(app.name + "/" + app.original().name, svm,
                                smp, dsm)
                    .c_str());
  }
  return 0;
}
