// Figure 2: speedups of the original application versions on the three
// shared-address-space platforms (16 processors). Paper reference values
// (read off the figure): good-to-reasonable on SMP/DSM for everything,
// while on SVM LU/Ocean/Raytrace fall below 1 and Volrend, Shear-Warp,
// Barnes and Radix underperform.
//
// Every (app, platform) cell is an independent deterministic simulation,
// so the whole figure fans out over host threads (--jobs=N) and the
// results are printed -- and optionally emitted as JSON (--json=FILE) --
// in figure order.
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader(
      "Figure 2: speedups of original versions across platforms (" +
      std::to_string(opt.procs) + " processors)");

  const PlatformKind kinds[] = {PlatformKind::SVM, PlatformKind::SMP,
                                PlatformKind::NUMA};
  std::vector<SweepPoint> points;
  for (const AppDesc& app : Registry::instance().all()) {
    for (PlatformKind kind : kinds) {
      SweepPoint p;
      p.kind = kind;
      p.app = app.name;
      p.version = app.original().name;
      p.params = bench::pick(app, opt);
      p.procs = opt.procs;
      points.push_back(std::move(p));
    }
  }

  bench::Report report("fig02_orig_speedups", opt);
  const auto results = bench::sweep(points, opt, report);

  std::printf("%-28s %8s %8s %8s\n", "application (orig version)", "SVM",
              "SMP", "DSM");
  for (std::size_t i = 0; i < points.size(); i += 3) {
    for (std::size_t k = 0; k < 3; ++k) {
      if (!results[i + k].ok()) {
        std::fprintf(stderr, "!! %s\n", results[i + k].error.c_str());
      }
    }
    std::printf("%s", fmt::speedupRow(points[i].app + "/" +
                                          points[i].version,
                                      results[i].speedup(),
                                      results[i + 1].speedup(),
                                      results[i + 2].speedup())
                          .c_str());
  }
  report.maybeWrite(opt);
  return 0;
}
