// Figure 4: Ocean contiguous (4-d) SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 4 (Ocean contiguous 4-d)", "ocean", "4d", opt);
  return 0;
}
