// Figure 15: Radix SPLASH-2 version SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 15 (Radix SPLASH-2)", "radix", "orig", opt);
  return 0;
}
