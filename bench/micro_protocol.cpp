// Protocol-primitive microbenchmarks (google-benchmark). Reported time
// is *simulated* time (manual timing: simulated cycles / clock rate), so
// these numbers are the platform model's primitive costs -- the raw
// quantities behind every figure: page fetch vs line miss, lock and
// barrier costs per platform, diff/twin overheads.
#include "proto/numa/numa_platform.hpp"
#include "proto/smp/smp_platform.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <benchmark/benchmark.h>

namespace rsvm {
namespace {

constexpr double kSvmHz = 200e6;   // 200 MHz nodes
constexpr double kNumaHz = 300e6;  // 300 MHz nodes
constexpr double kSmpHz = 150e6;   // 150 MHz nodes

/// Run `ops` simulated operations; report simulated seconds per op.
template <typename MakeRun>
void manualTimed(benchmark::State& state, double hz, MakeRun&& make_run) {
  for (auto _ : state) {
    const auto [cycles, ops] = make_run();
    state.SetIterationTime(static_cast<double>(cycles) / hz /
                           static_cast<double>(ops));
  }
}

void BM_SvmColdPageFetch(benchmark::State& state) {
  manualTimed(state, kSvmHz, [] {
    SvmPlatform plat(2);
    const int pages = 64;
    SharedArray<int> a(plat, pages * 1024, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int p = 0; p < pages; ++p) {
          a.get(c, static_cast<std::size_t>(p) * 1024);
        }
      }
    });
    return std::pair<Cycles, int>(plat.engine().collect().procs[1].total(),
                                  pages);
  });
}
BENCHMARK(BM_SvmColdPageFetch)->UseManualTime()->Iterations(20);

void BM_SvmTwinAndDiff(benchmark::State& state) {
  manualTimed(state, kSvmHz, [] {
    SvmPlatform plat(2);
    const int pages = 64;
    SharedArray<int> a(plat, pages * 1024, HomePolicy::node(0));
    plat.warm(1, a.base(), a.bytes());
    const int bar = plat.makeBarrier();
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int p = 0; p < pages; ++p) {
          a.set(c, static_cast<std::size_t>(p) * 1024, p);  // twin per page
        }
      }
      c.barrier(bar);  // diffs flush here
    });
    return std::pair<Cycles, int>(
        plat.engine().collect().procs[1][Bucket::Handler] +
            plat.engine().collect().procs[1][Bucket::BarrierWait],
        pages);
  });
}
BENCHMARK(BM_SvmTwinAndDiff)->UseManualTime()->Iterations(20);

void BM_SvmRemoteLockAcquire(benchmark::State& state) {
  manualTimed(state, kSvmHz, [] {
    SvmPlatform plat(2);
    const int lk = plat.makeLock();
    const int bar = plat.makeBarrier();
    const int rounds = 32;
    plat.run([&](Ctx& c) {
      // Ping-pong the lock: every acquire is remote.
      for (int i = 0; i < rounds; ++i) {
        if (c.id() == i % 2) {
          c.lock(lk);
          c.unlock(lk);
        }
        c.barrier(bar);
      }
    });
    const RunStats rs = plat.engine().collect();
    return std::pair<Cycles, int>(rs.bucketTotal(Bucket::LockWait), rounds);
  });
}
BENCHMARK(BM_SvmRemoteLockAcquire)->UseManualTime()->Iterations(20);

void BM_SvmBarrier16(benchmark::State& state) {
  manualTimed(state, kSvmHz, [] {
    SvmPlatform plat(16);
    const int bar = plat.makeBarrier();
    const int rounds = 16;
    plat.run([&](Ctx& c) {
      for (int i = 0; i < rounds; ++i) c.barrier(bar);
    });
    return std::pair<Cycles, int>(plat.engine().collect().exec_cycles,
                                  rounds);
  });
}
BENCHMARK(BM_SvmBarrier16)->UseManualTime()->Iterations(20);

void BM_NumaLocalMiss(benchmark::State& state) {
  manualTimed(state, kNumaHz, [] {
    NumaPlatform plat(2);
    const int lines = 512;
    SharedArray<int> a(plat, lines * 16, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      if (c.id() == 0) {
        for (int l = 0; l < lines; ++l) {
          a.get(c, static_cast<std::size_t>(l) * 16);
        }
      }
    });
    return std::pair<Cycles, int>(plat.engine().collect().procs[0].total(),
                                  lines);
  });
}
BENCHMARK(BM_NumaLocalMiss)->UseManualTime()->Iterations(20);

void BM_NumaRemoteCleanMiss(benchmark::State& state) {
  manualTimed(state, kNumaHz, [] {
    NumaPlatform plat(2);
    const int lines = 512;
    SharedArray<int> a(plat, lines * 16, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int l = 0; l < lines; ++l) {
          a.get(c, static_cast<std::size_t>(l) * 16);
        }
      }
    });
    return std::pair<Cycles, int>(plat.engine().collect().procs[1].total(),
                                  lines);
  });
}
BENCHMARK(BM_NumaRemoteCleanMiss)->UseManualTime()->Iterations(20);

void BM_NumaThreeHopDirtyMiss(benchmark::State& state) {
  manualTimed(state, kNumaHz, [] {
    NumaPlatform plat(3);
    const int lines = 256;
    SharedArray<int> a(plat, lines * 16, HomePolicy::node(0));
    const int bar = plat.makeBarrier();
    plat.run([&](Ctx& c) {
      if (c.id() == 1) {
        for (int l = 0; l < lines; ++l) {
          a.set(c, static_cast<std::size_t>(l) * 16, l);
        }
      }
      c.barrier(bar);
      if (c.id() == 2) {
        for (int l = 0; l < lines; ++l) {
          a.get(c, static_cast<std::size_t>(l) * 16);
        }
      }
    });
    return std::pair<Cycles, int>(
        plat.engine().collect().procs[2][Bucket::DataWait], lines);
  });
}
BENCHMARK(BM_NumaThreeHopDirtyMiss)->UseManualTime()->Iterations(20);

void BM_NumaBarrier16(benchmark::State& state) {
  manualTimed(state, kNumaHz, [] {
    NumaPlatform plat(16);
    const int bar = plat.makeBarrier();
    const int rounds = 64;
    plat.run([&](Ctx& c) {
      for (int i = 0; i < rounds; ++i) c.barrier(bar);
    });
    return std::pair<Cycles, int>(plat.engine().collect().exec_cycles,
                                  rounds);
  });
}
BENCHMARK(BM_NumaBarrier16)->UseManualTime()->Iterations(20);

void BM_SmpBusMiss(benchmark::State& state) {
  manualTimed(state, kSmpHz, [] {
    SmpPlatform plat(1);
    const int lines = 512;
    SharedArray<int> a(plat, lines * 32, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      for (int l = 0; l < lines; ++l) {
        a.get(c, static_cast<std::size_t>(l) * 32);
      }
    });
    return std::pair<Cycles, int>(plat.engine().collect().exec_cycles, lines);
  });
}
BENCHMARK(BM_SmpBusMiss)->UseManualTime()->Iterations(20);

void BM_SmpBusMissContended16(benchmark::State& state) {
  manualTimed(state, kSmpHz, [] {
    SmpPlatform plat(16);
    const int lines_per_proc = 256;
    SharedArray<int> a(plat, 16 * lines_per_proc * 32, HomePolicy::node(0));
    plat.run([&](Ctx& c) {
      const std::size_t base = static_cast<std::size_t>(c.id()) *
                               lines_per_proc * 32;
      for (int l = 0; l < lines_per_proc; ++l) {
        a.get(c, base + static_cast<std::size_t>(l) * 32);
      }
    });
    return std::pair<Cycles, int>(plat.engine().collect().exec_cycles,
                                  lines_per_proc);
  });
}
BENCHMARK(BM_SmpBusMissContended16)->UseManualTime()->Iterations(20);

void BM_SmpBarrier16(benchmark::State& state) {
  manualTimed(state, kSmpHz, [] {
    SmpPlatform plat(16);
    const int bar = plat.makeBarrier();
    const int rounds = 64;
    plat.run([&](Ctx& c) {
      for (int i = 0; i < rounds; ++i) c.barrier(bar);
    });
    return std::pair<Cycles, int>(plat.engine().collect().exec_cycles,
                                  rounds);
  });
}
BENCHMARK(BM_SmpBarrier16)->UseManualTime()->Iterations(20);

}  // namespace
}  // namespace rsvm

BENCHMARK_MAIN();
