// Figure 7: Volrend balanced partition + stealing SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 7 (Volrend balanced + stealing)", "volrend", "alg-steal", opt);
  return 0;
}
