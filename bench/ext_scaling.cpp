// Extension (paper section 7): "investigate the issues with larger
// numbers of processors" -- and smaller ones. Sweep processor counts for
// original and best versions on SVM and DSM. Expected shape: the SVM
// gap widens with processor count (synchronization and contention costs
// grow), and the paper's optimizations grow more important with scale on
// CC-NUMA too (its hypothesis from [2]).
//
// The whole grid (app x platform x procs x version) runs host-parallel
// under --jobs=N; every column shares one cached uniprocessor baseline.
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader("Extension: processor-count scaling");
  const int counts[] = {1, 2, 4, 8, 16, 32};
  struct Pick {
    const char* app;
    const char* orig;
    const char* best;
  };
  const Pick picks[] = {{"ocean", "2d", "rowwise"},
                        {"barnes", "orig", "spatial"},
                        {"volrend", "orig", "alg-nosteal"}};

  std::vector<SweepPoint> points;
  for (const Pick& pk : picks) {
    const AppDesc* app = Registry::instance().find(pk.app);
    for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA}) {
      for (int procs : counts) {
        for (const char* ver : {pk.orig, pk.best}) {
          SweepPoint p;
          p.kind = kind;
          p.app = app->name;
          p.version = ver;
          p.params = bench::pick(*app, opt);
          p.procs = procs;
          points.push_back(std::move(p));
        }
      }
    }
  }

  bench::Report report("ext_scaling", opt);
  const auto results = bench::sweep(points, opt, report);

  std::size_t i = 0;
  for (const Pick& pk : picks) {
    for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA}) {
      std::printf("-- %s on %s --\n%8s %12s %12s\n", pk.app,
                  platformName(kind), "procs", pk.orig, pk.best);
      for (int procs : counts) {
        const SweepResult& ro = results[i];
        const SweepResult& rb = results[i + 1];
        for (std::size_t k = 0; k < 2; ++k) {
          if (!results[i + k].ok()) {
            std::fprintf(stderr, "!! %s\n", results[i + k].error.c_str());
          }
        }
        i += 2;
        std::printf("%8d %12.2f %12.2f\n", procs, ro.speedup(),
                    rb.speedup());
      }
      std::printf("\n");
    }
  }
  report.maybeWrite(opt);
  return 0;
}
