// Extension (paper section 7): "investigate the issues with larger
// numbers of processors" -- and smaller ones. Sweep processor counts for
// original and best versions on SVM and DSM. Expected shape: the SVM
// gap widens with processor count (synchronization and contention costs
// grow), and the paper's optimizations grow more important with scale on
// CC-NUMA too (its hypothesis from [2]).
#include "bench_common.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader("Extension: processor-count scaling");
  const int counts[] = {1, 2, 4, 8, 16, 32};
  struct Pick {
    const char* app;
    const char* orig;
    const char* best;
  };
  const Pick picks[] = {{"ocean", "2d", "rowwise"},
                        {"barnes", "orig", "spatial"},
                        {"volrend", "orig", "alg-nosteal"}};
  for (const Pick& pk : picks) {
    const AppDesc* app = Registry::instance().find(pk.app);
    Experiment ex(*app);
    for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA}) {
      std::printf("-- %s on %s --\n%8s %12s %12s\n", pk.app,
                  platformName(kind), "procs", pk.orig, pk.best);
      for (int p : counts) {
        auto opt_p = opt;
        opt_p.procs = p;
        const double so =
            bench::cell(ex, kind, *app, pk.orig, opt_p).speedup();
        const double sb =
            bench::cell(ex, kind, *app, pk.best, opt_p).speedup();
        std::printf("%8d %12.2f %12.2f\n", p, so, sb);
      }
      std::printf("\n");
    }
  }
  return 0;
}
