// Extension (paper section 7): fine-grained software coherence completes
// the performance-portability picture. For every application, the
// original and the best restructured version run on the FGS platform and
// on SVM. Expected shape: FGS absorbs most of the page-granularity
// pathologies (the originals run far better than on SVM), so the
// restructurings matter much less -- at the price of an access-check tax
// that shows up even in the best versions.
#include "bench_common.hpp"

#include "proto/fgs/fgs_platform.hpp"

#include <cstdio>

namespace {
// The paper's final (best) version of each application.
const char* bestOf(const std::string& app) {
  if (app == "lu") return "4d-aligned";
  if (app == "ocean") return "rowwise";
  if (app == "volrend") return "alg-nosteal";
  if (app == "shearwarp") return "alg";
  if (app == "raytrace") return "alg-splitq";
  if (app == "barnes") return "spatial";
  return "alg-local";  // radix
}
}  // namespace

namespace {

/// Typhoon-Zero-like preset: the same fine-grained protocol, but with a
/// commodity hardware controller doing the access checks and handlers
/// (paper section 7: "more commodity-oriented controllers [16]").
rsvm::FgsParams typhoonParams() {
  rsvm::FgsParams fp;
  fp.load_check = 0;      // checks in hardware
  fp.store_check = 0;
  fp.miss_handler = 80;   // controller, not interrupt + software dispatch
  fp.serve_block = 100;
  fp.inval_handler = 60;
  fp.msg_sw_overhead = 300;
  fp.lock_handler = 100;
  fp.barrier_handler = 80;
  return fp;
}

double fgsSpeedup(const rsvm::VersionDesc& ver,
                  const rsvm::AppParams& prm, int procs,
                  const rsvm::FgsParams& fp, rsvm::Cycles base) {
  rsvm::FgsPlatform plat(procs, fp);
  const rsvm::AppResult r = ver.run(plat, prm);
  if (!r.correct) {
    std::printf("  !! verification failed: %s\n", r.note.c_str());
  }
  return static_cast<double>(base) /
         static_cast<double>(r.stats.exec_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader(
      "Extension: fine-grained coherence, software (Shasta-style) and "
      "commodity-controller (Typhoon-0-style), vs SVM (" +
      std::to_string(opt.procs) + " processors)");
  std::printf("%-12s %11s %11s %11s %11s %11s %11s\n", "app", "SVM orig",
              "SVM best", "FGS orig", "FGS best", "TY0 orig", "TY0 best");
  for (const AppDesc& app : Registry::instance().all()) {
    Experiment ex(app);
    const AppParams& prm = bench::pick(app, opt);
    const std::string best = bestOf(app.name);
    const double svm_o =
        bench::cell(ex, PlatformKind::SVM, app, app.original().name, opt)
            .speedup();
    const double svm_b =
        bench::cell(ex, PlatformKind::SVM, app, best, opt).speedup();
    const double fgs_o =
        bench::cell(ex, PlatformKind::FGS, app, app.original().name, opt)
            .speedup();
    const double fgs_b =
        bench::cell(ex, PlatformKind::FGS, app, best, opt).speedup();
    // Typhoon preset: its own uniprocessor baseline, paper methodology.
    FgsPlatform uni(1, typhoonParams());
    const Cycles ty_base =
        app.original().run(uni, prm).stats.exec_cycles;
    const double ty_o = fgsSpeedup(app.original(), prm, opt.procs,
                                   typhoonParams(), ty_base);
    const double ty_b = fgsSpeedup(*app.version(best), prm, opt.procs,
                                   typhoonParams(), ty_base);
    std::printf("%-12s %11.2f %11.2f %11.2f %11.2f %11.2f %11.2f\n",
                app.name.c_str(), svm_o, svm_b, fgs_o, fgs_b, ty_o, ty_b);
  }
  std::printf("\nSpeedups are vs the original version on one processor of\n"
              "the same platform (the paper's methodology).\n");
  return 0;
}
