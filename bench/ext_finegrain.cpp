// Extension (paper section 7): fine-grained software coherence completes
// the performance-portability picture. For every application, the
// original and the best restructured version run on the FGS platform and
// on SVM. Expected shape: FGS absorbs most of the page-granularity
// pathologies (the originals run far better than on SVM), so the
// restructurings matter much less -- at the price of an access-check tax
// that shows up even in the best versions.
//
// Three platform configurations per app (SVM, Shasta-style FGS, and a
// Typhoon-Zero-like commodity-controller preset), each with its own
// uniprocessor baseline (paper methodology); all cells run host-parallel
// under --jobs=N.
#include "bench_common.hpp"

#include "proto/fgs/fgs_platform.hpp"

#include <cstdio>

namespace {

using namespace rsvm;

// The paper's final (best) version of each application.
const char* bestOf(const std::string& app) {
  if (app == "lu") return "4d-aligned";
  if (app == "ocean") return "rowwise";
  if (app == "volrend") return "alg-nosteal";
  if (app == "shearwarp") return "alg";
  if (app == "raytrace") return "alg-splitq";
  if (app == "barnes") return "spatial";
  return "alg-local";  // radix
}

/// Typhoon-Zero-like preset: the same fine-grained protocol, but with a
/// commodity hardware controller doing the access checks and handlers
/// (paper section 7: "more commodity-oriented controllers [16]").
FgsParams typhoonParams() {
  FgsParams fp;
  fp.load_check = 0;      // checks in hardware
  fp.store_check = 0;
  fp.miss_handler = 80;   // controller, not interrupt + software dispatch
  fp.serve_block = 100;
  fp.inval_handler = 60;
  fp.msg_sw_overhead = 300;
  fp.lock_handler = 100;
  fp.barrier_handler = 80;
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader(
      "Extension: fine-grained coherence, software (Shasta-style) and "
      "commodity-controller (Typhoon-0-style), vs SVM (" +
      std::to_string(opt.procs) + " processors)");

  std::vector<SweepPoint> points;
  for (const AppDesc& app : Registry::instance().all()) {
    for (const char* ver : {app.original().name.c_str(),
                            bestOf(app.name)}) {
      // Stock SVM and FGS columns.
      for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::FGS}) {
        SweepPoint p;
        p.kind = kind;
        p.app = app.name;
        p.version = ver;
        p.params = bench::pick(app, opt);
        p.procs = opt.procs;
        points.push_back(std::move(p));
      }
      // Typhoon-0 preset: custom FGS platform, its own baseline.
      SweepPoint p;
      p.kind = PlatformKind::FGS;
      p.app = app.name;
      p.version = ver;
      p.params = bench::pick(app, opt);
      p.procs = opt.procs;
      p.config = "typhoon0";
      p.make_platform = [](int nprocs) -> std::unique_ptr<Platform> {
        return std::make_unique<FgsPlatform>(nprocs, typhoonParams());
      };
      points.push_back(std::move(p));
    }
  }

  bench::Report report("ext_finegrain", opt);
  const auto results = bench::sweep(points, opt, report);

  std::printf("%-12s %11s %11s %11s %11s %11s %11s\n", "app", "SVM orig",
              "SVM best", "FGS orig", "FGS best", "TY0 orig", "TY0 best");
  std::size_t i = 0;
  for (const AppDesc& app : Registry::instance().all()) {
    // Six cells per app: (orig, best) x (SVM, FGS, TY0), laid out
    // orig-SVM, orig-FGS, orig-TY0, best-SVM, best-FGS, best-TY0.
    for (std::size_t k = 0; k < 6; ++k) {
      if (!results[i + k].ok()) {
        std::fprintf(stderr, "!! %s\n", results[i + k].error.c_str());
      }
    }
    std::printf("%-12s %11.2f %11.2f %11.2f %11.2f %11.2f %11.2f\n",
                app.name.c_str(), results[i].speedup(),
                results[i + 3].speedup(), results[i + 1].speedup(),
                results[i + 4].speedup(), results[i + 2].speedup(),
                results[i + 5].speedup());
    i += 6;
  }
  std::printf("\nSpeedups are vs the original version on one processor of\n"
              "the same platform (the paper's methodology).\n");
  report.maybeWrite(opt);
  return 0;
}
