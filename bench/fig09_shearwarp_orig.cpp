// Figure 9: original Shear-Warp SVM breakdown.
#include "bench_common.hpp"
int main(int argc, char** argv) {
  const auto opt = rsvm::bench::parseOrExit(argc, argv);
  rsvm::bench::breakdownFigure("Figure 9 (Shear-Warp original)", "shearwarp", "orig", opt);
  return 0;
}
