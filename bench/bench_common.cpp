#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace rsvm::bench {

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      o.paper_scale = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      o.tiny = true;
    } else if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      o.procs = std::atoi(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--paper-scale|--tiny] [--procs=N]\n", argv[0]);
      std::exit(0);
    } else {
      throw std::invalid_argument(std::string("unknown flag: ") + argv[i]);
    }
  }
  registerAllApps();
  return o;
}

const AppParams& pick(const AppDesc& app, const Options& opt) {
  if (opt.tiny) return app.tiny;
  return opt.paper_scale ? app.paper : app.small;
}

void printHeader(const std::string& title) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

void breakdownFigure(const std::string& figure, const std::string& app,
                     const std::string& version, const Options& opt) {
  const AppDesc* a = Registry::instance().find(app);
  if (a == nullptr) throw std::runtime_error("unknown app " + app);
  const VersionDesc* v = a->version(version);
  if (v == nullptr) throw std::runtime_error("unknown version " + version);
  const AppParams& prm = pick(*a, opt);
  printHeader(figure + " -- " + app + "/" + version + " on SVM, " +
              std::to_string(opt.procs) + " processors (n=" +
              std::to_string(prm.n) + ")");
  const AppResult r =
      Experiment::runOnce(PlatformKind::SVM, *v, prm, opt.procs);
  std::printf("%s", fmt::breakdown("execution time breakdown (cycles)",
                                   r.stats)
                        .c_str());
  std::printf(
      "page faults %llu | twins %llu | diffs %llu (%llu bytes) | "
      "lock acquires %llu (%llu remote) | barriers %llu | "
      "tasks %llu (%llu stolen)\n",
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::page_faults)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::write_faults)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::diffs_created)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::diff_bytes)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::lock_acquires)),
      static_cast<unsigned long long>(
          r.stats.sum(&ProcStats::remote_lock_acquires)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::barriers)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::tasks_executed)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::tasks_stolen)));
  std::printf("verification: %s\n\n", r.note.c_str());
}

CellResult cell(Experiment& ex, PlatformKind kind, const AppDesc& app,
                const std::string& version, const Options& opt) {
  const VersionDesc* v = app.version(version);
  if (v == nullptr) throw std::runtime_error("unknown version " + version);
  return ex.run(kind, *v, pick(app, opt), opt.procs);
}

}  // namespace rsvm::bench
