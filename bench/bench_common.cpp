#include "bench_common.hpp"

#include "core/result_cache.hpp"
#include "json_mini.hpp"
#include "runtime/platform.hpp"
#include "sim/fiber.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

namespace rsvm::bench {

namespace {

/// Strict positive-integer flag parsing: the whole value must be a
/// decimal number > 0 (std::atoi's silent 0 on garbage crashed
/// downstream with "nprocs out of range" at best).
int parsePositiveInt(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno != 0 ||
      v <= 0 || v > 1'000'000) {
    throw std::invalid_argument(std::string(flag) +
                                " expects a positive integer, got '" + text +
                                "'");
  }
  return static_cast<int>(v);
}

std::uint64_t parseU64(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (*text == '\0' || *text == '-' || end == nullptr || *end != '\0' ||
      errno != 0) {
    throw std::invalid_argument(std::string(flag) +
                                " expects a non-negative integer, got '" +
                                text + "'");
  }
  return static_cast<std::uint64_t>(v);
}

constexpr const char* kUsage =
    "usage: %s [--paper-scale|--tiny] [--procs=N] [--jobs=N] "
    "[--json=FILE] [--no-fastpath] [--fiber=asm|ucontext] "
    "[--check=off|oracle] [--fault-seed=N] [--deadline-ms=N] "
    "[--cache-dir=DIR] [--checkpoint=FILE] [--shard=K/N] [--zipf=T] "
    "[--engine-threads=N] [--engine-threads-min-procs=N] "
    "[--cache-gc=MB[:HOURS]]\n";

}  // namespace

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      o.paper_scale = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      o.tiny = true;
    } else if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      o.procs = parsePositiveInt("--procs", argv[i] + 8);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      o.jobs = parsePositiveInt("--jobs", argv[i] + 7);
    } else if (std::strcmp(argv[i], "--no-fastpath") == 0) {
      o.no_fastpath = true;
    } else if (std::strncmp(argv[i], "--fiber=", 8) == 0) {
      o.fiber = argv[i] + 8;
      if (o.fiber != "asm" && o.fiber != "ucontext") {
        throw std::invalid_argument(
            "--fiber expects 'asm' or 'ucontext', got '" + o.fiber + "'");
      }
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      o.json_path = argv[i] + 7;
      if (o.json_path.empty()) {
        throw std::invalid_argument("--json expects a file path");
      }
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      const std::string lvl = argv[i] + 8;
      if (lvl == "off") {
        o.check = CheckLevel::Off;
      } else if (lvl == "oracle") {
        o.check = CheckLevel::Oracle;
      } else {
        throw std::invalid_argument("--check expects 'off' or 'oracle', got '" +
                                    lvl + "'");
      }
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      o.fault_seed = parseU64("--fault-seed", argv[i] + 13);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      o.deadline_ms =
          static_cast<double>(parsePositiveInt("--deadline-ms", argv[i] + 14));
    } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      o.cache_dir = argv[i] + 12;
      if (o.cache_dir.empty()) {
        throw std::invalid_argument("--cache-dir expects a directory path");
      }
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      o.checkpoint = argv[i] + 13;
      if (o.checkpoint.empty()) {
        throw std::invalid_argument("--checkpoint expects a file path");
      }
    } else if (std::strncmp(argv[i], "--shard=", 8) == 0) {
      // 1-based on the command line ("--shard=1/4" ... "--shard=4/4"),
      // 0-based internally.
      const char* text = argv[i] + 8;
      const char* slash = std::strchr(text, '/');
      if (slash == nullptr || slash == text || slash[1] == '\0') {
        throw std::invalid_argument(
            std::string("--shard expects K/N (e.g. 2/4), got '") + text +
            "'");
      }
      const int k =
          parsePositiveInt("--shard", std::string(text, slash).c_str());
      const int n = parsePositiveInt("--shard", slash + 1);
      if (k > n) {
        throw std::invalid_argument("--shard: K must be in 1..N, got " +
                                    std::to_string(k) + "/" +
                                    std::to_string(n));
      }
      o.shard_index = k - 1;
      o.shard_count = n;
    } else if (std::strncmp(argv[i], "--zipf=", 7) == 0) {
      const char* text = argv[i] + 7;
      errno = 0;
      char* end = nullptr;
      const double t = std::strtod(text, &end);
      if (*text == '\0' || end == nullptr || *end != '\0' || errno != 0 ||
          t < 0.0 || t >= 1.0) {
        throw std::invalid_argument(
            std::string("--zipf expects a number in [0, 1), got '") + text +
            "'");
      }
      o.zipf = t;
    // Checked before --engine-threads=: both flags share the
    // "--engine-threads" stem, so the longer name must win.
    } else if (std::strncmp(argv[i], "--engine-threads-min-procs=", 27) == 0) {
      o.engine_threads_min_procs =
          parsePositiveInt("--engine-threads-min-procs", argv[i] + 27);
    } else if (std::strncmp(argv[i], "--engine-threads=", 17) == 0) {
      o.engine_threads = parsePositiveInt("--engine-threads", argv[i] + 17);
    } else if (std::strncmp(argv[i], "--cache-gc=", 11) == 0) {
      // MB[:HOURS]: size cap in megabytes (0 = none), optional age cap
      // in hours. At least one cap must be nonzero or the pass is a
      // no-op scan, which is almost certainly a typo.
      const char* text = argv[i] + 11;
      const char* colon = std::strchr(text, ':');
      const std::string mb_text =
          colon ? std::string(text, colon) : std::string(text);
      o.cache_gc_bytes =
          parseU64("--cache-gc", mb_text.c_str()) * 1024ull * 1024ull;
      if (colon != nullptr) {
        errno = 0;
        char* end = nullptr;
        const double hours = std::strtod(colon + 1, &end);
        if (colon[1] == '\0' || end == nullptr || *end != '\0' ||
            errno != 0 || hours < 0.0) {
          throw std::invalid_argument(
              std::string("--cache-gc expects MB[:HOURS], got '") + text +
              "'");
        }
        o.cache_gc_age_s = hours * 3600.0;
      }
      if (o.cache_gc_bytes == 0 && o.cache_gc_age_s <= 0.0) {
        throw std::invalid_argument(
            "--cache-gc: at least one of MB and HOURS must be nonzero");
      }
      o.cache_gc = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(kUsage, argv[0]);
      std::exit(0);
    } else {
      throw std::invalid_argument(std::string("unknown flag: ") + argv[i]);
    }
  }
  if (o.cache_gc && o.cache_dir.empty()) {
    throw std::invalid_argument("--cache-gc requires --cache-dir");
  }
  registerAllApps();
  Platform::setFastPathDefault(!o.no_fastpath);
  // Process-wide default so non-sweep paths (breakdown figures,
  // differential cells) pick up the requested intra-run threading too;
  // sweeps additionally apply their own per-point budget policy.
  Platform::setEngineThreadsDefault(o.engine_threads);
  if (!o.fiber.empty()) {
    // Explicitly requesting the asm backend on a build without it is an
    // error (a benchmark that silently measured the wrong backend would
    // be worse than one that refuses to run).
    if (o.fiber == "asm" && !Fiber::asmAvailable()) {
      throw std::invalid_argument(
          "--fiber=asm: the assembly switcher is not compiled into this "
          "build (RSVM_FIBER_UCONTEXT or an unsupported architecture)");
    }
    Fiber::setDefaultBackend(o.fiber == "asm" ? Fiber::Backend::Asm
                                              : Fiber::Backend::Ucontext);
  }
  return o;
}

Options parseOrExit(int argc, char** argv) {
  try {
    return parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    std::fprintf(stderr, kUsage, argv[0]);
    std::exit(2);
  }
}

const AppParams& pick(const AppDesc& app, const Options& opt) {
  if (opt.tiny) return app.tiny;
  return opt.paper_scale ? app.paper : app.small;
}

const char* scaleName(const Options& opt) {
  if (opt.tiny) return "tiny";
  return opt.paper_scale ? "paper" : "small";
}

void printHeader(const std::string& title) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

void breakdownFigure(const std::string& figure, const std::string& app,
                     const std::string& version, const Options& opt) {
  const AppDesc* a = Registry::instance().find(app);
  if (a == nullptr) throw std::runtime_error("unknown app " + app);
  const VersionDesc* v = a->version(version);
  if (v == nullptr) throw std::runtime_error("unknown version " + version);
  const AppParams& prm = pick(*a, opt);
  printHeader(figure + " -- " + app + "/" + version + " on SVM, " +
              std::to_string(opt.procs) + " processors (n=" +
              std::to_string(prm.n) + ")");
  const AppResult r = Experiment::runOnce(PlatformKind::SVM, *v, prm,
                                          opt.procs, /*free_cs_faults=*/false,
                                          app);
  std::printf("%s", fmt::breakdown("execution time breakdown (cycles)",
                                   r.stats)
                        .c_str());
  std::printf(
      "page faults %llu | twins %llu | diffs %llu (%llu bytes) | "
      "lock acquires %llu (%llu remote) | barriers %llu | "
      "tasks %llu (%llu stolen)\n",
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::page_faults)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::write_faults)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::diffs_created)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::diff_bytes)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::lock_acquires)),
      static_cast<unsigned long long>(
          r.stats.sum(&ProcStats::remote_lock_acquires)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::barriers)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::tasks_executed)),
      static_cast<unsigned long long>(r.stats.sum(&ProcStats::tasks_stolen)));
  std::printf("verification: %s\n\n", r.note.c_str());
}

CellResult cell(Experiment& ex, PlatformKind kind, const AppDesc& app,
                const std::string& version, const Options& opt) {
  const VersionDesc* v = app.version(version);
  if (v == nullptr) throw std::runtime_error("unknown version " + version);
  return ex.run(kind, *v, pick(app, opt), opt.procs);
}

// ---------------------------------------------------------------------------
// JSON report

namespace {

void jsonEscape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void field(std::string& out, const char* key, const std::string& v,
           bool last = false) {
  out += '"';
  out += key;
  out += "\": \"";
  jsonEscape(out, v);
  out += last ? "\"" : "\", ";
}

void field(std::string& out, const char* key, std::uint64_t v,
           bool last = false) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += '"';
  out += key;
  out += "\": ";
  out += buf;
  if (!last) out += ", ";
}

void field(std::string& out, const char* key, int v, bool last = false) {
  field(out, key, static_cast<std::uint64_t>(v < 0 ? 0 : v), last);
}

void fieldF(std::string& out, const char* key, double v, const char* spec,
            bool last = false) {
  char buf[48];
  std::snprintf(buf, sizeof buf, spec, v);
  out += '"';
  out += key;
  out += "\": ";
  out += buf;
  if (!last) out += ", ";
}

/// uint64 digests are emitted as fixed-width hex *strings*: JSON numbers
/// are doubles in most consumers (and in the test mini-parser), which
/// silently round above 2^53.
void fieldHex(std::string& out, const char* key, std::uint64_t v,
              bool last = false) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  out += '"';
  out += key;
  out += "\": \"";
  out += buf;
  out += last ? "\"" : "\", ";
}

void fieldB(std::string& out, const char* key, bool v, bool last = false) {
  out += '"';
  out += key;
  out += "\": ";
  out += v ? "true" : "false";
  if (!last) out += ", ";
}

const char* optClassOf(const SweepPoint& p) {
  const AppDesc* a = Registry::instance().find(p.app);
  if (a == nullptr) return "?";
  const VersionDesc* v = a->version(p.version);
  return v == nullptr ? "?" : optClassName(v->cls);
}

}  // namespace

Report::Report(std::string bench_name, const Options& opt)
    : bench_(std::move(bench_name)),
      scale_(scaleName(opt)),
      procs_(opt.procs),
      jobs_(opt.jobs > 0 ? opt.jobs : SweepRunner::defaultJobs()),
      fastpath_(!opt.no_fastpath),
      fiber_(Fiber::backendName(Fiber::defaultBackend())),
      engine_threads_(opt.engine_threads > 1 ? opt.engine_threads : 1),
      shard_index_(opt.shard_index),
      shard_count_(opt.shard_count) {}

void Report::addExtra(std::string key, std::string raw_json) {
  extras_.emplace_back(std::move(key), std::move(raw_json));
}

void Report::add(const SweepPoint& point, const SweepResult& result) {
  if (result.skipped) return;
  entries_.push_back({point, result});
}

void Report::addFleet(const SweepRunner::FleetStats& fs) {
  fleet_.computed += fs.computed;
  fleet_.cache_hits += fs.cache_hits;
  fleet_.resumed += fs.resumed;
  fleet_.stores += fs.stores;
  fleet_.shard_skipped += fs.shard_skipped;
  fleet_.cache_corrupt += fs.cache_corrupt;
  fleet_.uncacheable += fs.uncacheable;
}

void Report::add(const std::vector<SweepPoint>& points,
                 const std::vector<SweepResult>& results) {
  for (std::size_t i = 0; i < points.size() && i < results.size(); ++i) {
    add(points[i], results[i]);
  }
}

std::string Report::json() const {
  std::string out = "{\n  ";
  field(out, "schema", std::string("rsvm-bench-1"));
  field(out, "bench", bench_);
  field(out, "scale", scale_);
  field(out, "procs_default", procs_);
  field(out, "jobs", jobs_);
  fieldB(out, "fastpath", fastpath_);
  field(out, "fiber", fiber_);
  field(out, "engine_threads", engine_threads_);
  fieldF(out, "wall_ms", wall_ms_, "%.3f");
  field(out, "shard_index", shard_index_);
  field(out, "shard_count", shard_count_);
  out += "\"cache\": {";
  field(out, "computed", fleet_.computed);
  field(out, "cache_hits", fleet_.cache_hits);
  field(out, "resumed", fleet_.resumed);
  field(out, "stores", fleet_.stores);
  field(out, "shard_skipped", fleet_.shard_skipped);
  field(out, "cache_corrupt", fleet_.cache_corrupt);
  field(out, "uncacheable", fleet_.uncacheable, /*last=*/true);
  out += "}, ";
  for (const auto& [key, raw] : extras_) {
    out += '"';
    out += key;
    out += "\": ";
    out += raw;
    out += ", ";
  }
  out += "\"points\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const SweepPoint& p = entries_[i].point;
    const SweepResult& r = entries_[i].result;
    const RunStats& rs = r.app.stats;
    out += i == 0 ? "\n    {" : ",\n    {";
    field(out, "app", p.app);
    field(out, "version", p.version);
    field(out, "opt_class", std::string(optClassOf(p)));
    field(out, "platform", std::string(platformName(p.kind)));
    field(out, "config", p.config);
    field(out, "procs", p.procs);
    field(out, "n", p.params.n);
    field(out, "iters", p.params.iters);
    field(out, "block", p.params.block);
    field(out, "seed", p.params.seed);
    fieldF(out, "zipf", p.params.zipf, "%.6g");
    field(out, "check",
          std::string(p.check == CheckLevel::Oracle ? "oracle" : "off"));
    field(out, "fault_seed", p.fault_seed);
    fieldB(out, "ok", r.ok());
    field(out, "error", r.error);
    fieldB(out, "timed_out", r.timed_out);
    field(out, "retries", r.retries);
    fieldB(out, "cached", r.cached);
    fieldB(out, "resumed", r.resumed);
    field(out, "oracle_violations",
          static_cast<std::uint64_t>(r.oracle_violations));
    field(out, "exec_cycles", r.cycles);
    field(out, "base_cycles", r.base_cycles);
    fieldF(out, "speedup", r.speedup(), "%.6f");
    fieldHex(out, "state_hash", r.app.state_hash);
    fieldHex(out, "result_hash", r.app.result_hash);
    fieldF(out, "wall_ms", r.wall_ms, "%.3f");
    const double accesses = static_cast<double>(rs.sum(&ProcStats::reads) +
                                                rs.sum(&ProcStats::writes));
    fieldF(out, "host_accesses_per_sec",
           r.wall_ms > 0.0 ? accesses / (r.wall_ms / 1000.0) : 0.0, "%.1f");
    fieldF(out, "sim_cycles_per_wall_ms",
           r.wall_ms > 0.0 ? static_cast<double>(r.cycles) / r.wall_ms : 0.0,
           "%.1f");
    out += "\"buckets\": {";
    field(out, "compute", rs.bucketTotal(Bucket::Compute));
    field(out, "cache_stall", rs.bucketTotal(Bucket::CacheStall));
    field(out, "data_wait", rs.bucketTotal(Bucket::DataWait));
    field(out, "lock_wait", rs.bucketTotal(Bucket::LockWait));
    field(out, "barrier_wait", rs.bucketTotal(Bucket::BarrierWait));
    field(out, "handler", rs.bucketTotal(Bucket::Handler), /*last=*/true);
    out += "}, \"counters\": {";
    field(out, "reads", rs.sum(&ProcStats::reads));
    field(out, "writes", rs.sum(&ProcStats::writes));
    field(out, "l1_misses", rs.sum(&ProcStats::l1_misses));
    field(out, "l2_misses", rs.sum(&ProcStats::l2_misses));
    field(out, "page_faults", rs.sum(&ProcStats::page_faults));
    field(out, "write_faults", rs.sum(&ProcStats::write_faults));
    field(out, "diffs_created", rs.sum(&ProcStats::diffs_created));
    field(out, "diff_bytes", rs.sum(&ProcStats::diff_bytes));
    field(out, "remote_misses", rs.sum(&ProcStats::remote_misses));
    field(out, "local_misses", rs.sum(&ProcStats::local_misses));
    field(out, "invalidations_sent", rs.sum(&ProcStats::invalidations_sent));
    field(out, "lock_acquires", rs.sum(&ProcStats::lock_acquires));
    field(out, "remote_lock_acquires",
          rs.sum(&ProcStats::remote_lock_acquires));
    field(out, "barriers", rs.sum(&ProcStats::barriers));
    field(out, "tasks_executed", rs.sum(&ProcStats::tasks_executed));
    field(out, "tasks_stolen", rs.sum(&ProcStats::tasks_stolen));
    field(out, "allocs", rs.sum(&ProcStats::allocs), /*last=*/true);
    out += "}}";
  }
  out += entries_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void writeFileAtomic(const std::string& path, const std::string& body) {
  // Same-directory temp name so the rename cannot cross a filesystem.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("cannot open '" + tmp + "' for writing");
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path +
                             "'");
  }
}

void Report::writeJson(const std::string& path) const {
  writeFileAtomic(path, json());
}

bool Report::maybeWrite(const Options& opt) const {
  if (opt.json_path.empty()) return false;
  writeJson(opt.json_path);
  std::printf("[%s: %zu points -> %s]\n", bench_.c_str(), entries_.size(),
              opt.json_path.c_str());
  return true;
}

std::vector<SweepResult> sweep(const std::vector<SweepPoint>& points,
                               const Options& opt, Report& report) {
  // Apply the global robustness flags to every point that did not set
  // its own value (a point's explicit setting wins over the flags).
  std::vector<SweepPoint> pts = points;
  for (SweepPoint& p : pts) {
    if (p.check == CheckLevel::Off) p.check = opt.check;
    if (p.fault_seed == 0) p.fault_seed = opt.fault_seed;
    if (p.deadline_ms <= 0.0) p.deadline_ms = opt.deadline_ms;
    if (p.params.zipf == 0.0) p.params.zipf = opt.zipf;
  }
  SweepRunner::Config cfg;
  cfg.jobs = opt.jobs;
  cfg.cache_dir = opt.cache_dir;
  cfg.checkpoint = opt.checkpoint;
  cfg.shard_index = opt.shard_index;
  cfg.shard_count = opt.shard_count;
  cfg.engine_threads = opt.engine_threads;
  cfg.engine_threads_min_procs = opt.engine_threads_min_procs;
  SweepRunner runner(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SweepResult> results = runner.run(pts);
  report.addWallMs(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  report.addFleet(runner.fleetStats());
  report.add(pts, results);
  if (opt.cache_gc && !opt.cache_dir.empty()) {
    ResultCache cache(opt.cache_dir);
    const ResultCache::GcStats gs =
        cache.gc(opt.cache_gc_bytes, opt.cache_gc_age_s);
    std::printf(
        "[cache-gc %s: scanned %llu, evicted %llu, %llu -> %llu bytes]\n",
        opt.cache_dir.c_str(),
        static_cast<unsigned long long>(gs.scanned),
        static_cast<unsigned long long>(gs.evicted),
        static_cast<unsigned long long>(gs.bytes_before),
        static_cast<unsigned long long>(gs.bytes_after));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Shard-report fusion

namespace {

/// Identity of a sweep point inside a report -- everything that makes
/// two points "the same experiment" for digest cross-checking.
std::string pointIdentity(const minijson::Json& pt) {
  std::string id;
  for (const char* key : {"app", "version", "platform", "config", "procs",
                          "n", "iters", "block", "seed", "zipf", "check",
                          "fault_seed"}) {
    id += pt.at(key).raw;
    id += '|';
  }
  return id;
}

}  // namespace

std::string mergeShardReports(const std::vector<std::string>& shard_jsons) {
  using minijson::Json;
  const auto n = static_cast<int>(shard_jsons.size());
  if (n == 0) throw std::runtime_error("sweep-merge: no shard reports");

  // Parse every shard and slot it by its self-declared shard_index.
  std::vector<Json> shards(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const std::string& text : shard_jsons) {
    Json root = minijson::Parser(text).parse();
    if (root.at("schema").str != "rsvm-bench-1") {
      throw std::runtime_error("sweep-merge: unknown schema '" +
                               root.at("schema").str + "'");
    }
    const auto count = static_cast<int>(root.at("shard_count").u64);
    if (count != n) {
      throw std::runtime_error(
          "sweep-merge: report declares shard_count " +
          std::to_string(count) + " but " + std::to_string(n) +
          " reports were given");
    }
    const auto idx = static_cast<int>(root.at("shard_index").u64);
    if (idx < 0 || idx >= n) {
      throw std::runtime_error("sweep-merge: shard_index " +
                               std::to_string(idx) + " out of range");
    }
    if (seen[static_cast<std::size_t>(idx)]) {
      throw std::runtime_error("sweep-merge: two reports claim shard " +
                               std::to_string(idx + 1) + "/" +
                               std::to_string(n));
    }
    seen[static_cast<std::size_t>(idx)] = true;
    shards[static_cast<std::size_t>(idx)] = std::move(root);
  }

  // Header consistency: the shards must come from one logical sweep.
  const Json& first = shards[0];
  for (int s = 1; s < n; ++s) {
    const Json& r = shards[static_cast<std::size_t>(s)];
    for (const char* key : {"bench", "scale", "fiber"}) {
      if (r.at(key).str != first.at(key).str) {
        throw std::runtime_error(std::string("sweep-merge: shards disagree "
                                             "on \"") +
                                 key + "\": '" + first.at(key).str +
                                 "' vs '" + r.at(key).str + "'");
      }
    }
    if (r.at("procs_default").u64 != first.at("procs_default").u64 ||
        r.at("fastpath").boolean != first.at("fastpath").boolean ||
        r.at("engine_threads").u64 != first.at("engine_threads").u64) {
      throw std::runtime_error(
          "sweep-merge: shards disagree on "
          "procs_default/fastpath/engine_threads");
    }
  }

  // Completeness: with T total points round-robined over N shards,
  // shard s must hold exactly ceil((T - s) / N) points.
  std::size_t total = 0;
  for (const Json& r : shards) total += r.at("points").arr.size();
  for (int s = 0; s < n; ++s) {
    const std::size_t want =
        total > static_cast<std::size_t>(s)
            ? (total - static_cast<std::size_t>(s) +
               static_cast<std::size_t>(n) - 1) /
                  static_cast<std::size_t>(n)
            : 0;
    const std::size_t got =
        shards[static_cast<std::size_t>(s)].at("points").arr.size();
    if (got != want) {
      throw std::runtime_error(
          "sweep-merge: shard " + std::to_string(s + 1) + "/" +
          std::to_string(n) + " holds " + std::to_string(got) +
          " points, expected " + std::to_string(want) +
          " of the round-robin partition of " + std::to_string(total));
    }
  }

  // Digest cross-check: identical experiments in different shards
  // (e.g. overlapping shard files passed by mistake) must agree on the
  // simulated digests -- a mismatch means the shards did not run the
  // same engine and the merge would be silently mixing answers.
  std::map<std::string, std::pair<std::string, std::string>> digests;
  for (const Json& r : shards) {
    for (const Json& pt : r.at("points").arr) {
      const std::string id = pointIdentity(pt);
      const std::pair<std::string, std::string> d{pt.at("state_hash").str,
                                                  pt.at("result_hash").str};
      const auto [it, inserted] = digests.emplace(id, d);
      if (!inserted && it->second != d) {
        throw std::runtime_error(
            "sweep-merge: digest mismatch between shards for " +
            pt.at("app").str + "/" + pt.at("version").str + " on " +
            pt.at("platform").str + ": state " + it->second.first + " vs " +
            d.first);
      }
    }
  }

  // Emit the canonical unsharded report: headers from the shard set,
  // wall_ms and provenance counters summed, every point record spliced
  // byte-identically in restored submission order (global index i lives
  // at position i / N of shard i % N).
  double wall_ms = 0.0;
  std::uint64_t jobs = 0;
  for (const Json& r : shards) {
    wall_ms += r.at("wall_ms").num;
    jobs = std::max(jobs, r.at("jobs").u64);
  }
  std::string out = "{\n  ";
  field(out, "schema", std::string("rsvm-bench-1"));
  field(out, "bench", first.at("bench").str);
  field(out, "scale", first.at("scale").str);
  field(out, "procs_default", first.at("procs_default").u64);
  field(out, "jobs", jobs);
  fieldB(out, "fastpath", first.at("fastpath").boolean);
  field(out, "fiber", first.at("fiber").str);
  field(out, "engine_threads", first.at("engine_threads").u64);
  fieldF(out, "wall_ms", wall_ms, "%.3f");
  field(out, "shard_index", 0);
  field(out, "shard_count", 1);
  out += "\"cache\": {";
  const char* cache_keys[] = {"computed",      "cache_hits",
                              "resumed",       "stores",
                              "shard_skipped", "cache_corrupt",
                              "uncacheable"};
  for (std::size_t k = 0; k < std::size(cache_keys); ++k) {
    std::uint64_t sum = 0;
    for (const Json& r : shards) sum += r.at("cache").at(cache_keys[k]).u64;
    field(out, cache_keys[k], sum, /*last=*/k + 1 == std::size(cache_keys));
  }
  out += "}, ";
  field(out, "merged_from", n);
  out += "\"points\": [";
  for (std::size_t i = 0; i < total; ++i) {
    const Json& shard = shards[i % static_cast<std::size_t>(n)];
    const Json& pt =
        shard.at("points").arr[i / static_cast<std::size_t>(n)];
    out += i == 0 ? "\n    " : ",\n    ";
    out += pt.raw;
  }
  out += total == 0 ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace rsvm::bench
