// Extension: host-side simulator throughput, with and without the
// access fast path (DESIGN.md, "Access fast path").
//
// The paper's applications spend most of their accesses hitting in the
// L1 with full permission; the per-processor line-permission filter
// turns each such access from a virtual doAccess dispatch plus a cache
// lookup and an engine advance into one inline table probe with batched
// cycle accounting. Simulated results are bit-identical either way
// (that's enforced by tests/integration/golden_cycles_test.cpp and the
// CI perf-smoke job); this binary measures what the filter buys in
// *host* throughput (simulated accesses per host second) on the
// hit-dominated LU inner loop.
//
// Timing covers the parallel section alone (RunStats::host_wall_ms:
// fibers + protocol + access engine), not platform construction,
// untimed initialization, or result verification -- those are identical
// in both modes and only dilute the ratio. Each (platform, procs, mode)
// cell runs the same deterministic simulation several times and keeps
// the fastest repetition, so the printed ratio is a lower bound on the
// steady-state improvement.
#include "bench_common.hpp"

#include "runtime/platform.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader(
      "Extension: access-fast-path host throughput (lu/2d, fastest of 5)");

  const AppDesc* lu = Registry::instance().find("lu");
  const VersionDesc* ver = lu->version("2d");
  const AppParams& prm = bench::pick(*lu, opt);
  const PlatformKind kinds[] = {PlatformKind::SMP, PlatformKind::NUMA,
                                PlatformKind::SVM, PlatformKind::FGS};
  const int proc_counts[] = {1, opt.procs};
  constexpr int kReps = 5;

  bench::Report report("ext_simperf", opt);
  std::printf("%-6s %5s | %14s %14s | %7s | %6s\n", "plat", "procs",
              "acc/s (fast)", "acc/s (slow)", "ratio", "hit%");

  double hit_dominated_ratio = 0.0;
  for (PlatformKind kind : kinds) {
    for (int procs : proc_counts) {
      double rate[2] = {0.0, 0.0};  // [0]=fast path on, [1]=off
      double hit_pct = 0.0;
      for (int mode = 0; mode < 2; ++mode) {
        double best_ms = 0.0;
        AppResult last;
        for (int rep = 0; rep < kReps; ++rep) {
          auto plat = Platform::create(kind, procs);
          plat->setFastPathEnabled(mode == 0);
          last = ver->run(*plat, prm);
          if (!last.correct) {
            std::fprintf(stderr, "ext_simperf: incorrect result on %s: %s\n",
                         platformName(kind), last.note.c_str());
            return 1;
          }
          const double ms = last.stats.host_wall_ms;
          if (rep == 0 || ms < best_ms) best_ms = ms;
          if (mode == 0 && rep == 0) {
            const double total =
                static_cast<double>(last.stats.sum(&ProcStats::reads) +
                                    last.stats.sum(&ProcStats::writes));
            hit_pct = total > 0.0
                          ? 100.0 *
                                (total - static_cast<double>(
                                             plat->slowAccessCalls())) /
                                total
                          : 0.0;
          }
        }
        const double accesses =
            static_cast<double>(last.stats.sum(&ProcStats::reads) +
                                last.stats.sum(&ProcStats::writes));
        rate[mode] = best_ms > 0.0 ? accesses / (best_ms / 1000.0) : 0.0;

        SweepPoint p;
        p.kind = kind;
        p.app = "lu";
        p.version = "2d";
        p.params = prm;
        p.procs = procs;
        p.config = mode == 0 ? "fastpath-on" : "fastpath-off";
        SweepResult r;
        r.app = last;
        r.cycles = last.stats.exec_cycles;
        r.wall_ms = best_ms;
        report.add(p, r);
        report.addWallMs(best_ms * kReps);
      }
      const double ratio = rate[1] > 0.0 ? rate[0] / rate[1] : 0.0;
      std::printf("%-6s %5d | %14.0f %14.0f | %6.2fx | %5.1f\n",
                  platformName(kind), procs, rate[0], rate[1], ratio,
                  hit_pct);
      // The uniprocessor SMP run is the purest hit-dominated cell: no
      // protocol traffic at all once the caches are warm.
      if (kind == PlatformKind::SMP && procs == 1) {
        hit_dominated_ratio = ratio;
      }
    }
  }

  std::printf("\nhit-dominated improvement (SMP, 1 processor): %.2fx\n",
              hit_dominated_ratio);
  report.maybeWrite(opt);
  return 0;
}
