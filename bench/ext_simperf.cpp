// Extension: host-side simulator throughput.
//
// Four sections, all measuring the *host* cost of simulating the same
// bit-identical results:
//
//  1. Access fast path (DESIGN.md, "Access fast path"): the paper's
//     applications spend most accesses hitting in the L1 with full
//     permission; the per-processor line-permission filter turns each
//     such access from a virtual doAccess dispatch plus a cache lookup
//     and an engine advance into one inline table probe with batched
//     cycle accounting. Measured on the hit-dominated LU inner loop,
//     fast path on vs off.
//
//  2. Raw fiber switch throughput (DESIGN.md, "Fiber switching & stack
//     pooling"): a single fiber ping-ponging resume/yield as fast as it
//     can, per backend. glibc swapcontext pays a sigprocmask syscall
//     pair per switch; the assembly switcher pays ~a dozen moves, so
//     this ratio is the headline of the asm backend.
//
//  3. Sync-heavy end-to-end points (Ocean 16p on SVM, Radix 8p on DSM),
//     asm vs ucontext backend: yields at every barrier, lock, and page
//     fault make these the simulations where switch cost shows up in
//     wall-clock, not just in a microbench.
//
//  4. Parallel single-run engine (DESIGN.md, "Parallel engine"):
//     64/256-simulated-processor points across the whole safe set --
//     flat SVM (unfenced run-ahead), SMP/NUMA/FGS and clustered SVM
//     (fenced accesses) -- scheduled on 1 vs T host threads, asserted
//     bit-identical, with the wall-clock ratio per platform kind and
//     the host core count reported so single-core results read as the
//     protocol-overhead measurements they are.
//
// Timing covers the parallel section alone (RunStats::host_wall_ms:
// fibers + protocol + access engine), not platform construction,
// untimed initialization, or result verification -- those are identical
// in both modes and only dilute the ratio. Each cell runs the same
// deterministic simulation several times and keeps the fastest
// repetition, so the printed ratio is a lower bound on the steady-state
// improvement. Simulated results are asserted identical across modes
// here and in the golden cycle tests / CI perf-smoke job.
#include "bench_common.hpp"

#include "proto/svm/svm_platform.hpp"
#include "runtime/platform.hpp"
#include "sim/fiber.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

namespace {

/// Switches per host second for one backend: a single fiber ping-ponging
/// resume/yield (2 switches per round trip), best of `reps` timed runs.
double switchesPerSec(rsvm::Fiber::Backend backend, int rounds, int reps) {
  using rsvm::Fiber;
  const Fiber::Backend saved = Fiber::setDefaultBackend(backend);
  if (saved != backend) {  // asm requested but not compiled in
    Fiber::setDefaultBackend(saved);
    return 0.0;
  }
  double best_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Fiber f([&] {
      for (int i = 0; i < rounds; ++i) Fiber::yieldToScheduler();
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < rounds; ++i) f.resume();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    f.resume();  // let the body run off the end
    if (rep == 0 || s < best_s) best_s = s;
  }
  return best_s > 0.0 ? 2.0 * rounds / best_s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader(
      "Extension: access-fast-path host throughput (lu/2d, fastest of 5)");

  const AppDesc* lu = Registry::instance().find("lu");
  const VersionDesc* ver = lu->version("2d");
  const AppParams& prm = bench::pick(*lu, opt);
  const PlatformKind kinds[] = {PlatformKind::SMP, PlatformKind::NUMA,
                                PlatformKind::SVM, PlatformKind::FGS};
  const int proc_counts[] = {1, opt.procs};
  constexpr int kReps = 5;

  bench::Report report("ext_simperf", opt);
  std::printf("%-6s %5s | %14s %14s | %7s | %6s\n", "plat", "procs",
              "acc/s (fast)", "acc/s (slow)", "ratio", "hit%");

  double hit_dominated_ratio = 0.0;
  for (PlatformKind kind : kinds) {
    for (int procs : proc_counts) {
      double rate[2] = {0.0, 0.0};  // [0]=fast path on, [1]=off
      double hit_pct = 0.0;
      for (int mode = 0; mode < 2; ++mode) {
        double best_ms = 0.0;
        AppResult last;
        for (int rep = 0; rep < kReps; ++rep) {
          auto plat = Platform::create(kind, procs);
          plat->setFastPathEnabled(mode == 0);
          last = ver->run(*plat, prm);
          if (!last.correct) {
            std::fprintf(stderr, "ext_simperf: incorrect result on %s: %s\n",
                         platformName(kind), last.note.c_str());
            return 1;
          }
          const double ms = last.stats.host_wall_ms;
          if (rep == 0 || ms < best_ms) best_ms = ms;
          if (mode == 0 && rep == 0) {
            const double total =
                static_cast<double>(last.stats.sum(&ProcStats::reads) +
                                    last.stats.sum(&ProcStats::writes));
            hit_pct = total > 0.0
                          ? 100.0 *
                                (total - static_cast<double>(
                                             plat->slowAccessCalls())) /
                                total
                          : 0.0;
          }
        }
        const double accesses =
            static_cast<double>(last.stats.sum(&ProcStats::reads) +
                                last.stats.sum(&ProcStats::writes));
        rate[mode] = best_ms > 0.0 ? accesses / (best_ms / 1000.0) : 0.0;

        SweepPoint p;
        p.kind = kind;
        p.app = "lu";
        p.version = "2d";
        p.params = prm;
        p.procs = procs;
        p.config = mode == 0 ? "fastpath-on" : "fastpath-off";
        SweepResult r;
        r.app = last;
        r.cycles = last.stats.exec_cycles;
        r.wall_ms = best_ms;
        report.add(p, r);
        report.addWallMs(best_ms * kReps);
      }
      const double ratio = rate[1] > 0.0 ? rate[0] / rate[1] : 0.0;
      std::printf("%-6s %5d | %14.0f %14.0f | %6.2fx | %5.1f\n",
                  platformName(kind), procs, rate[0], rate[1], ratio,
                  hit_pct);
      // The uniprocessor SMP run is the purest hit-dominated cell: no
      // protocol traffic at all once the caches are warm.
      if (kind == PlatformKind::SMP && procs == 1) {
        hit_dominated_ratio = ratio;
      }
    }
  }

  std::printf("\nhit-dominated improvement (SMP, 1 processor): %.2fx\n",
              hit_dominated_ratio);

  // -------------------------------------------------------------------
  // Raw fiber switch throughput, per backend.
  const Fiber::Backend post_parse = Fiber::defaultBackend();
  bench::printHeader("Fiber switch throughput (1 fiber ping-pong, best of 3)");
  const int rounds = opt.tiny ? 20'000 : 200'000;
  const double uc_sps =
      switchesPerSec(Fiber::Backend::Ucontext, rounds, /*reps=*/3);
  const double asm_sps = switchesPerSec(Fiber::Backend::Asm, rounds, 3);
  Fiber::setDefaultBackend(post_parse);
  const double switch_ratio = uc_sps > 0.0 ? asm_sps / uc_sps : 0.0;
  std::printf("%-10s %15.0f switches/s\n", "ucontext", uc_sps);
  if (Fiber::asmAvailable()) {
    std::printf("%-10s %15.0f switches/s\n", "asm", asm_sps);
    std::printf("asm/ucontext switch ratio: %.2fx\n", switch_ratio);
  } else {
    std::printf("%-10s not compiled in (RSVM_FIBER_UCONTEXT build)\n", "asm");
  }
  {
    char extra[256];
    std::snprintf(extra, sizeof extra,
                  "{\"rounds\": %d, \"ucontext_switches_per_sec\": %.1f, "
                  "\"asm_switches_per_sec\": %.1f, "
                  "\"asm_over_ucontext\": %.3f}",
                  rounds, uc_sps, asm_sps, switch_ratio);
    report.addExtra("switch_bench", extra);
  }

  // -------------------------------------------------------------------
  // Sync-heavy end-to-end points, asm vs ucontext. Fixed (app, platform,
  // procs) cells chosen for switch density: Ocean on SVM yields on every
  // page fault and barrier episode; Radix on hardware DSM has no
  // handler fibers, so what remains is pure engine scheduling.
  bench::printHeader(
      "Fiber backend wall-clock (sync-heavy points, fastest of 3)");
  struct SyncPoint {
    const char* app;
    const char* version;
    PlatformKind kind;
    int procs;
  };
  const SyncPoint sync_points[] = {
      {"ocean", "2d", PlatformKind::SVM, 16},
      {"radix", "orig", PlatformKind::NUMA, 8},
  };
  const Fiber::Backend backends[] = {Fiber::Backend::Asm,
                                     Fiber::Backend::Ucontext};
  std::printf("%-22s | %12s %12s | %7s\n", "point", "ms (asm)",
              "ms (ucontext)", "uc/asm");
  for (const SyncPoint& spnt : sync_points) {
    const AppDesc* app = Registry::instance().find(spnt.app);
    const VersionDesc* v = app->version(spnt.version);
    const AppParams& sprm = bench::pick(*app, opt);
    double ms[2] = {0.0, 0.0};  // [0]=asm, [1]=ucontext
    Cycles cycles[2] = {0, 0};
    for (int b = 0; b < 2; ++b) {
      if (backends[b] == Fiber::Backend::Asm && !Fiber::asmAvailable()) {
        continue;
      }
      Fiber::setDefaultBackend(backends[b]);
      double best_ms = 0.0;
      AppResult last;
      for (int rep = 0; rep < 3; ++rep) {
        auto plat = Platform::create(spnt.kind, spnt.procs);
        last = v->run(*plat, sprm);
        if (!last.correct) {
          std::fprintf(stderr, "ext_simperf: incorrect result on %s/%s: %s\n",
                       spnt.app, platformName(spnt.kind), last.note.c_str());
          return 1;
        }
        if (rep == 0 || last.stats.host_wall_ms < best_ms) {
          best_ms = last.stats.host_wall_ms;
        }
      }
      ms[b] = best_ms;
      cycles[b] = last.stats.exec_cycles;

      SweepPoint p;
      p.kind = spnt.kind;
      p.app = spnt.app;
      p.version = spnt.version;
      p.params = sprm;
      p.procs = spnt.procs;
      p.config = std::string("fiber-") + Fiber::backendName(backends[b]);
      SweepResult r;
      r.app = last;
      r.cycles = last.stats.exec_cycles;
      r.wall_ms = best_ms;
      report.add(p, r);
      report.addWallMs(best_ms * 3);
    }
    Fiber::setDefaultBackend(post_parse);
    // The tentpole's core claim: the backend changes host time only.
    if (Fiber::asmAvailable() && cycles[0] != cycles[1]) {
      std::fprintf(stderr,
                   "ext_simperf: FIBER BACKEND CHANGED SIMULATED RESULTS on "
                   "%s/%s %s %dp: asm=%llu ucontext=%llu\n",
                   spnt.app, spnt.version, platformName(spnt.kind), spnt.procs,
                   static_cast<unsigned long long>(cycles[0]),
                   static_cast<unsigned long long>(cycles[1]));
      return 1;
    }
    char label[64];
    std::snprintf(label, sizeof label, "%s/%s %s %dp", spnt.app, spnt.version,
                  platformName(spnt.kind), spnt.procs);
    std::printf("%-22s | %12.2f %12.2f | %6.2fx\n", label, ms[0], ms[1],
                ms[0] > 0.0 ? ms[1] / ms[0] : 0.0);
  }

  // -------------------------------------------------------------------
  // Parallel single-run engine (DESIGN.md, "Parallel engine"): the same
  // simulation scheduled across T host worker threads, promised
  // bit-identical to the sequential scheduler. Big simulated-processor
  // counts are where the engine has enough concurrently-runnable fibers
  // per virtual time step to keep several host threads busy. The cells
  // cover the whole safe set: flat SVM runs unfenced run-ahead (the
  // speedup case), SMP/NUMA/FGS and clustered SVM run the fenced-access
  // discipline (every timed access holds the commit token, so their
  // ratio measures fence overhead more than speedup -- tracked per
  // platform kind in the extra blob so the trajectory shows which
  // platforms actually gain). Every cell hard-fails if any simulated
  // field moves. On a single-core host the T-way run still exercises
  // the full commit protocol but cannot show wall-clock speedup (it
  // adds synchronization); host_cores in the JSON tells the consumer
  // which regime a given number came from.
  bench::printHeader(
      "Parallel engine wall-clock (64/256-proc points, fastest of 3)");
  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  const int par_threads = opt.engine_threads > 1 ? opt.engine_threads : 4;
  struct ParPoint {
    const char* app;
    const char* version;
    PlatformKind kind;
    int procs;
    int ppn;  ///< SVM procs_per_node; 0 = stock platform
  };
  const ParPoint par_points[] = {
      {"lu", "2d", PlatformKind::SVM, 64, 0},
      {"ocean", "2d", PlatformKind::SVM, 64, 0},
      {"radix", "orig", PlatformKind::SVM, 256, 0},
      {"lu", "2d", PlatformKind::SMP, 64, 0},
      {"lu", "2d", PlatformKind::NUMA, 64, 0},
      {"lu", "2d", PlatformKind::FGS, 64, 0},
      {"lu", "2d", PlatformKind::SVM, 64, 4},
  };
  std::printf("host cores: %d, engine threads: %d\n", host_cores,
              par_threads);
  std::printf("%-22s | %12s %12s | %7s\n", "point", "ms (1 thr)",
              "ms (T thr)", "1/T");
  double par_speedup_64 = 0.0;  // flat SVM, comparable across trajectory
  struct KindSpeedup {
    const char* name;
    double speedup;
  };
  // Keys follow platformName(): the NUMA kind prints as "DSM".
  KindSpeedup by_kind[] = {{"SVM", 0.0},     {"SMP", 0.0}, {"DSM", 0.0},
                           {"FGS", 0.0},     {"SVM-n4", 0.0}};
  for (const ParPoint& ppnt : par_points) {
    const AppDesc* app = Registry::instance().find(ppnt.app);
    const VersionDesc* v = app->version(ppnt.version);
    const AppParams& pprm = bench::pick(*app, opt);
    double ms[2] = {0.0, 0.0};  // [0]=1 thread, [1]=par_threads
    Cycles cycles[2] = {0, 0};
    std::uint64_t state[2] = {0, 0};
    std::uint64_t result[2] = {0, 0};
    for (int m = 0; m < 2; ++m) {
      const int threads = m == 0 ? 1 : par_threads;
      double best_ms = 0.0;
      AppResult last;
      for (int rep = 0; rep < 3; ++rep) {
        std::unique_ptr<Platform> plat;
        if (ppnt.ppn > 0) {
          SvmParams sp;
          sp.procs_per_node = ppnt.ppn;
          plat = std::make_unique<SvmPlatform>(ppnt.procs, sp);
        } else {
          plat = Platform::create(ppnt.kind, ppnt.procs);
        }
        plat->setEngineThreads(threads);
        last = v->run(*plat, pprm);
        if (!last.correct) {
          std::fprintf(stderr, "ext_simperf: incorrect result on %s/%s: %s\n",
                       ppnt.app, ppnt.version, last.note.c_str());
          return 1;
        }
        if (rep == 0 || last.stats.host_wall_ms < best_ms) {
          best_ms = last.stats.host_wall_ms;
        }
      }
      ms[m] = best_ms;
      cycles[m] = last.stats.exec_cycles;
      state[m] = last.state_hash;
      result[m] = last.result_hash;

      SweepPoint p;
      p.kind = ppnt.kind;
      p.app = ppnt.app;
      p.version = ppnt.version;
      p.params = pprm;
      p.procs = ppnt.procs;
      p.engine_threads = threads;
      // Clustered cells carry the node shape in the config so they never
      // collide with the flat cell of the same (app, platform, procs).
      p.config = "ethreads-" + std::to_string(threads) +
                 (ppnt.ppn > 0 ? "-n" + std::to_string(ppnt.ppn) : "");
      SweepResult r;
      r.app = last;
      r.cycles = last.stats.exec_cycles;
      r.wall_ms = best_ms;
      report.add(p, r);
      report.addWallMs(best_ms * 3);
    }
    // The tentpole's core claim: the engine-thread count changes host
    // time only, never the simulated result -- on every platform kind.
    if (cycles[0] != cycles[1] || state[0] != state[1] ||
        result[0] != result[1]) {
      std::fprintf(stderr,
                   "ext_simperf: ENGINE THREADING CHANGED SIMULATED RESULTS "
                   "on %s/%s %s %dp: cycles %llu vs %llu, state %016llx vs "
                   "%016llx\n",
                   ppnt.app, ppnt.version, platformName(ppnt.kind),
                   ppnt.procs,
                   static_cast<unsigned long long>(cycles[0]),
                   static_cast<unsigned long long>(cycles[1]),
                   static_cast<unsigned long long>(state[0]),
                   static_cast<unsigned long long>(state[1]));
      return 1;
    }
    const double speedup = ms[1] > 0.0 ? ms[0] / ms[1] : 0.0;
    if (ppnt.kind == PlatformKind::SVM && ppnt.ppn == 0 &&
        ppnt.procs == 64 && speedup > par_speedup_64) {
      par_speedup_64 = speedup;
    }
    const char* kind_key =
        ppnt.ppn > 0 ? "SVM-n4" : platformName(ppnt.kind);
    for (KindSpeedup& ks : by_kind) {
      if (std::string(ks.name) == kind_key && speedup > ks.speedup) {
        ks.speedup = speedup;
      }
    }
    char label[64];
    std::snprintf(label, sizeof label, "%s/%s %s %dp%s", ppnt.app,
                  ppnt.version, platformName(ppnt.kind), ppnt.procs,
                  ppnt.ppn > 0 ? " n4" : "");
    std::printf("%-22s | %12.2f %12.2f | %6.2fx\n", label, ms[0], ms[1],
                speedup);
  }
  if (host_cores <= 1) {
    std::printf(
        "note: single-core host -- the T-thread runs measure commit-"
        "protocol overhead, not speedup; re-run on a multi-core host for "
        "the wall-clock ratio.\n");
  }
  {
    char extra[512];
    std::snprintf(extra, sizeof extra,
                  "{\"host_cores\": %d, \"engine_threads\": %d, "
                  "\"best_speedup_64p\": %.3f, "
                  "\"speedup_by_platform\": {\"SVM\": %.3f, \"SMP\": %.3f, "
                  "\"DSM\": %.3f, \"FGS\": %.3f, \"SVM-n4\": %.3f}, "
                  "\"single_core_caveat\": %s}",
                  host_cores, par_threads, par_speedup_64,
                  by_kind[0].speedup, by_kind[1].speedup, by_kind[2].speedup,
                  by_kind[3].speedup, by_kind[4].speedup,
                  host_cores <= 1 ? "true" : "false");
    report.addExtra("parallel_engine", extra);
  }

  report.maybeWrite(opt);
  return 0;
}
