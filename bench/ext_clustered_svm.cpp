// Extension (paper section 7): "SMP nodes connected by SVM ... how to
// take advantage of the two-level communication hierarchy". Run every
// application's original and best versions on 16 processors organized as
// flat SVM (16 x 1) and as SMP-node clusters (4 x 4 and 2 x 8).
//
// Expected shape: clustering absorbs a large share of the inter-node
// page traffic, locks and barriers (anything that stays within a node is
// nearly free), so the *original* versions recover much of their lost
// performance -- while the restructured versions gain less, since they
// already minimized inter-node interactions.
#include "bench_common.hpp"

#include "proto/svm/svm_platform.hpp"

#include <cstdio>

namespace {

using namespace rsvm;

double speedup(const AppDesc&, const VersionDesc& ver,
               const AppParams& prm, int procs, int ppn, Cycles base) {
  SvmParams sp;
  sp.procs_per_node = ppn;
  SvmPlatform plat(procs, sp);
  const AppResult r = ver.run(plat, prm);
  if (!r.correct) std::printf("  !! verification failed: %s\n", r.note.c_str());
  return static_cast<double>(base) /
         static_cast<double>(r.stats.exec_cycles);
}

const char* bestOf(const std::string& app) {
  if (app == "lu") return "4d-aligned";
  if (app == "ocean") return "rowwise";
  if (app == "volrend") return "alg-nosteal";
  if (app == "shearwarp") return "alg";
  if (app == "raytrace") return "alg-splitq";
  if (app == "barnes") return "spatial";
  return "alg-local";  // radix
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parse(argc, argv);
  bench::printHeader("Extension: SMP-node SVM (16 processors as 16x1 / "
                     "4 nodes x 4 / 2 nodes x 8)");
  std::printf("%-24s %10s %10s %10s\n", "app/version", "flat 16x1", "4x4",
              "2x8");
  for (const AppDesc& app : Registry::instance().all()) {
    const AppParams& prm = bench::pick(app, opt);
    // Uniprocessor baseline of the original (paper methodology).
    SvmPlatform uni(1);
    const AppResult base_r = app.original().run(uni, prm);
    const Cycles base = base_r.stats.exec_cycles;
    for (const char* vn : {app.original().name.c_str(), bestOf(app.name)}) {
      const VersionDesc* v = app.version(vn);
      const double flat = speedup(app, *v, prm, opt.procs, 1, base);
      const double c4 = speedup(app, *v, prm, opt.procs, 4, base);
      const double c8 = speedup(app, *v, prm, opt.procs, 8, base);
      std::printf("%-24s %10.2f %10.2f %10.2f\n",
                  (app.name + "/" + vn).c_str(), flat, c4, c8);
    }
  }
  return 0;
}
