// Extension (paper section 7): "SMP nodes connected by SVM ... how to
// take advantage of the two-level communication hierarchy". Run every
// application's original and best versions on 16 processors organized as
// flat SVM (16 x 1) and as SMP-node clusters (4 x 4 and 2 x 8).
//
// Expected shape: clustering absorbs a large share of the inter-node
// page traffic, locks and barriers (anything that stays within a node is
// nearly free), so the *original* versions recover much of their lost
// performance -- while the restructured versions gain less, since they
// already minimized inter-node interactions.
//
// All three clusterings share the flat uniprocessor baseline (the paper
// measures everything against the same T1); cells run host-parallel
// under --jobs=N.
#include "bench_common.hpp"

#include "proto/svm/svm_platform.hpp"

#include <cstdio>

namespace {

using namespace rsvm;

const char* bestOf(const std::string& app) {
  if (app == "lu") return "4d-aligned";
  if (app == "ocean") return "rowwise";
  if (app == "volrend") return "alg-nosteal";
  if (app == "shearwarp") return "alg";
  if (app == "raytrace") return "alg-splitq";
  if (app == "barnes") return "spatial";
  return "alg-local";  // radix
}

std::unique_ptr<Platform> makeClustered(int nprocs, int ppn) {
  SvmParams sp;
  sp.procs_per_node = ppn;
  return std::make_unique<SvmPlatform>(nprocs, sp);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  bench::printHeader("Extension: SMP-node SVM (16 processors as 16x1 / "
                     "4 nodes x 4 / 2 nodes x 8)");

  struct Cluster {
    const char* tag;
    int ppn;
  };
  const Cluster clusters[] = {{"16x1", 1}, {"4x4", 4}, {"2x8", 8}};

  std::vector<SweepPoint> points;
  for (const AppDesc& app : Registry::instance().all()) {
    for (const char* ver : {app.original().name.c_str(),
                            bestOf(app.name)}) {
      for (const Cluster& cl : clusters) {
        SweepPoint p;
        p.kind = PlatformKind::SVM;
        p.app = app.name;
        p.version = ver;
        p.params = bench::pick(app, opt);
        p.procs = opt.procs;
        p.config = cl.tag;
        // Paper methodology: every clustering is measured against the
        // *flat* uniprocessor time, so all columns share one baseline.
        p.baseline_key = "flat";
        const int ppn = cl.ppn;
        p.make_platform = [ppn](int nprocs) {
          return makeClustered(nprocs, ppn);
        };
        p.make_baseline = [](int nprocs) -> std::unique_ptr<Platform> {
          return std::make_unique<SvmPlatform>(nprocs);
        };
        points.push_back(std::move(p));
      }
    }
  }

  bench::Report report("ext_clustered_svm", opt);
  const auto results = bench::sweep(points, opt, report);

  std::printf("%-24s %10s %10s %10s\n", "app/version", "flat 16x1", "4x4",
              "2x8");
  std::size_t i = 0;
  for (const AppDesc& app : Registry::instance().all()) {
    for (const char* ver : {app.original().name.c_str(),
                            bestOf(app.name)}) {
      for (std::size_t k = 0; k < 3; ++k) {
        if (!results[i + k].ok()) {
          std::fprintf(stderr, "!! %s\n", results[i + k].error.c_str());
        }
      }
      std::printf("%-24s %10.2f %10.2f %10.2f\n",
                  (app.name + "/" + ver).c_str(), results[i].speedup(),
                  results[i + 1].speedup(), results[i + 2].speedup());
      i += 3;
    }
  }
  report.maybeWrite(opt);
  return 0;
}
