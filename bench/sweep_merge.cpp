// sweep_merge: fuse the per-shard JSON reports of a sharded sweep
// (bench binaries run with --shard=K/N --json=shardK.json) back into
// one canonical rsvm-bench-1 report, exactly as if the sweep had run
// unsharded: submission order restored, wall-clock and cache counters
// summed, per-point records byte-identical to what each shard emitted.
//
//   sweep_merge --out=MERGED.json shard1.json shard2.json ... shardN.json
//   sweep_merge --inspect=MANIFEST      # summarize a checkpoint manifest
//   sweep_merge --gc=MB[:HOURS] --cache-dir=DIR   # GC a result cache
//
// Merging is strict: an incomplete or overlapping shard set, shards
// from different sweeps, or two shards disagreeing on a point's
// simulated digests are hard errors, not warnings.
#include "bench_common.hpp"

#include "core/checkpoint.hpp"
#include "core/result_cache.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

constexpr const char* kUsage =
    "usage: %s --out=FILE SHARD.json...   merge shard reports\n"
    "       %s --inspect=MANIFEST        summarize a checkpoint manifest\n"
    "       %s --gc=MB[:HOURS] --cache-dir=DIR\n"
    "           garbage-collect a result cache: drop entries older than\n"
    "           HOURS, then evict oldest-first down to MB megabytes\n"
    "           (0 = no cap on that axis)\n";

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Parse "MB[:HOURS]" into (max_bytes, max_age_seconds); throws on
/// malformed text or when both caps are zero (a no-op GC is a typo).
void parseGcSpec(const std::string& spec, std::uint64_t* max_bytes,
                 double* max_age_s) {
  const auto bad = [&] {
    throw std::runtime_error("--gc expects MB[:HOURS], got '" + spec + "'");
  };
  const std::size_t colon = spec.find(':');
  const std::string mb_text = spec.substr(0, colon);
  errno = 0;
  char* end = nullptr;
  const unsigned long long mb = std::strtoull(mb_text.c_str(), &end, 10);
  if (mb_text.empty() || mb_text[0] == '-' || end == nullptr ||
      *end != '\0' || errno != 0) {
    bad();
  }
  *max_bytes = static_cast<std::uint64_t>(mb) * 1024ull * 1024ull;
  *max_age_s = 0.0;
  if (colon != std::string::npos) {
    const std::string h_text = spec.substr(colon + 1);
    errno = 0;
    const double hours = std::strtod(h_text.c_str(), &end);
    if (h_text.empty() || end == nullptr || *end != '\0' || errno != 0 ||
        hours < 0.0) {
      bad();
    }
    *max_age_s = hours * 3600.0;
  }
  if (*max_bytes == 0 && *max_age_s <= 0.0) {
    throw std::runtime_error(
        "--gc: at least one of MB and HOURS must be nonzero");
  }
}

int gcCache(const std::string& dir, const std::string& spec) {
  std::uint64_t max_bytes = 0;
  double max_age_s = 0.0;
  parseGcSpec(spec, &max_bytes, &max_age_s);
  rsvm::ResultCache cache(dir);
  const rsvm::ResultCache::GcStats gs = cache.gc(max_bytes, max_age_s);
  std::printf("[cache-gc %s: scanned %llu, evicted %llu, %llu -> %llu "
              "bytes]\n",
              dir.c_str(), static_cast<unsigned long long>(gs.scanned),
              static_cast<unsigned long long>(gs.evicted),
              static_cast<unsigned long long>(gs.bytes_before),
              static_cast<unsigned long long>(gs.bytes_after));
  return 0;
}

int inspect(const std::string& path) {
  std::vector<std::string> keys;
  const auto sr = rsvm::CheckpointLog::scan(path, &keys);
  std::printf("%s: %llu intact records, %llu valid bytes", path.c_str(),
              static_cast<unsigned long long>(sr.records),
              static_cast<unsigned long long>(sr.valid_bytes));
  if (sr.torn_tail) {
    std::printf(", torn tail of %llu bytes (a resume will discard it)",
                static_cast<unsigned long long>(sr.discarded_bytes));
  }
  std::printf("\n");
  for (const std::string& k : keys) std::printf("  %s\n", k.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string gc_spec;
  std::string cache_dir;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--inspect=", 10) == 0) {
      try {
        return inspect(argv[i] + 10);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
    } else if (std::strncmp(argv[i], "--gc=", 5) == 0) {
      gc_spec = argv[i] + 5;
    } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      cache_dir = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(kUsage, argv[0], argv[0], argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], argv[i]);
      std::fprintf(stderr, kUsage, argv[0], argv[0], argv[0]);
      return 2;
    } else {
      shard_paths.emplace_back(argv[i]);
    }
  }
  if (!gc_spec.empty() || !cache_dir.empty()) {
    if (gc_spec.empty() || cache_dir.empty() || !out_path.empty() ||
        !shard_paths.empty()) {
      std::fprintf(stderr,
                   "%s: --gc=MB[:HOURS] and --cache-dir=DIR go together "
                   "and take no other arguments\n", argv[0]);
      std::fprintf(stderr, kUsage, argv[0], argv[0], argv[0]);
      return 2;
    }
    try {
      return gcCache(cache_dir, gc_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 1;
    }
  }
  if (out_path.empty() || shard_paths.empty()) {
    std::fprintf(stderr, "%s: --out=FILE and at least one shard report "
                         "are required\n", argv[0]);
    std::fprintf(stderr, kUsage, argv[0], argv[0], argv[0]);
    return 2;
  }
  try {
    std::vector<std::string> texts;
    texts.reserve(shard_paths.size());
    for (const std::string& p : shard_paths) texts.push_back(readFile(p));
    const std::string merged = rsvm::bench::mergeShardReports(texts);
    rsvm::bench::writeFileAtomic(out_path, merged);
    std::printf("[sweep_merge: %zu shards -> %s]\n", shard_paths.size(),
                out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
