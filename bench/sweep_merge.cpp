// sweep_merge: fuse the per-shard JSON reports of a sharded sweep
// (bench binaries run with --shard=K/N --json=shardK.json) back into
// one canonical rsvm-bench-1 report, exactly as if the sweep had run
// unsharded: submission order restored, wall-clock and cache counters
// summed, per-point records byte-identical to what each shard emitted.
//
//   sweep_merge --out=MERGED.json shard1.json shard2.json ... shardN.json
//   sweep_merge --inspect=MANIFEST      # summarize a checkpoint manifest
//
// Merging is strict: an incomplete or overlapping shard set, shards
// from different sweeps, or two shards disagreeing on a point's
// simulated digests are hard errors, not warnings.
#include "bench_common.hpp"

#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

constexpr const char* kUsage =
    "usage: %s --out=FILE SHARD.json...   merge shard reports\n"
    "       %s --inspect=MANIFEST        summarize a checkpoint manifest\n";

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

int inspect(const std::string& path) {
  std::vector<std::string> keys;
  const auto sr = rsvm::CheckpointLog::scan(path, &keys);
  std::printf("%s: %llu intact records, %llu valid bytes", path.c_str(),
              static_cast<unsigned long long>(sr.records),
              static_cast<unsigned long long>(sr.valid_bytes));
  if (sr.torn_tail) {
    std::printf(", torn tail of %llu bytes (a resume will discard it)",
                static_cast<unsigned long long>(sr.discarded_bytes));
  }
  std::printf("\n");
  for (const std::string& k : keys) std::printf("  %s\n", k.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--inspect=", 10) == 0) {
      try {
        return inspect(argv[i] + 10);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(kUsage, argv[0], argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], argv[i]);
      std::fprintf(stderr, kUsage, argv[0], argv[0]);
      return 2;
    } else {
      shard_paths.emplace_back(argv[i]);
    }
  }
  if (out_path.empty() || shard_paths.empty()) {
    std::fprintf(stderr, "%s: --out=FILE and at least one shard report "
                         "are required\n", argv[0]);
    std::fprintf(stderr, kUsage, argv[0], argv[0]);
    return 2;
  }
  try {
    std::vector<std::string> texts;
    texts.reserve(shard_paths.size());
    for (const std::string& p : shard_paths) texts.push_back(readFile(p));
    const std::string merged = rsvm::bench::mergeShardReports(texts);
    rsvm::bench::writeFileAtomic(out_path, merged);
    std::printf("[sweep_merge: %zu shards -> %s]\n", shard_paths.size(),
                out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
