// Shared scaffolding for the per-figure benchmark binaries. Every
// binary accepts:
//   --paper-scale   run the paper's input sizes (default: scaled-down)
//   --tiny          run integration-test sizes (for smoke runs)
//   --procs=N       simulated processor count (default 16, as the paper)
#pragma once

#include "core/experiment.hpp"

#include <string>
#include <vector>

namespace rsvm::bench {

struct Options {
  bool paper_scale = false;
  bool tiny = false;
  int procs = 16;
};

Options parse(int argc, char** argv);

const AppParams& pick(const AppDesc& app, const Options& opt);

/// Print one figure-style per-processor breakdown for a version on SVM.
void breakdownFigure(const std::string& figure, const std::string& app,
                     const std::string& version, const Options& opt);

/// Run a version on a platform and return the paper-style speedup cell.
CellResult cell(Experiment& ex, PlatformKind kind, const AppDesc& app,
                const std::string& version, const Options& opt);

void printHeader(const std::string& title);

}  // namespace rsvm::bench
