// Shared scaffolding for the per-figure benchmark binaries. Every
// binary accepts:
//   --paper-scale   run the paper's input sizes (default: scaled-down)
//   --tiny          run integration-test sizes (for smoke runs)
//   --procs=N       simulated processor count (default 16, as the paper)
//   --jobs=N        host threads for sweep binaries (default: all cores)
//   --json=FILE     write machine-readable results (sweep binaries)
//   --no-fastpath   force every access through the slow path (the
//                   simulated results are bit-identical by construction;
//                   this exists so CI can prove it)
//   --fiber=B       fiber switch backend: asm | ucontext (default: the
//                   build's default backend; simulated results are
//                   bit-identical either way, only host speed differs)
//   --check=L       off | oracle: run every sweep point under the
//                   shadow-memory coherence oracle (default off)
//   --fault-seed=N  arm deterministic fault injection with seed N on
//                   every sweep point (0 = off; same seed, same run)
//   --deadline-ms=N per-point host wall-clock deadline; a point that
//                   exceeds it becomes a JSON error record, not a hang
//   --cache-dir=D   content-addressed result cache: points already in D
//                   are served from disk bit-identically instead of
//                   being re-simulated; fresh results are inserted
//   --checkpoint=F  append-only resume manifest: completed points are
//                   journaled to F; re-running the same sweep with the
//                   same F skips everything already journaled
//   --shard=K/N     run only shard K of N (1-based): points whose
//                   submission index i has i % N == K-1. N cooperating
//                   processes cover the sweep exactly once; fuse their
//                   --json outputs with the sweep_merge tool
//   --zipf=T        key-popularity skew for request-serving workloads
//                   (apps/server), theta in [0, 1): 0 = uniform
//   --engine-threads=N  host worker threads for each point's single-run
//                   engine (simulated results are bit-identical to N=1
//                   by construction; this is the intra-run parallel
//                   scheduler). Sweeps give N threads to points with
//                   >= --engine-threads-min-procs simulated procs and
//                   keep smaller points packed one-per-worker under the
//                   --jobs budget
//   --engine-threads-min-procs=N  minimum simulated processor count at
//                   which a sweep point engages --engine-threads
//                   (default 32). Lower it (e.g. =1) to force the
//                   parallel scheduler onto every point, as the CI
//                   bit-identity diffs do
//   --cache-gc=MB[:HOURS]  after the sweep, garbage-collect --cache-dir
//                   down to MB megabytes (0 = no size cap), first
//                   dropping entries older than HOURS hours (if given);
//                   oldest entries evicted first
#pragma once

#include "core/experiment.hpp"
#include "core/sweep.hpp"

#include <string>
#include <vector>

namespace rsvm::bench {

struct Options {
  bool paper_scale = false;
  bool tiny = false;
  int procs = 16;
  int jobs = 0;           ///< host worker threads; 0 = hardware concurrency
  bool no_fastpath = false;  ///< disable the access fast path process-wide
  std::string fiber;      ///< "asm" / "ucontext"; empty = build default
  std::string json_path;  ///< empty = no JSON output
  CheckLevel check = CheckLevel::Off;  ///< coherence oracle per point
  std::uint64_t fault_seed = 0;        ///< fault-injection seed; 0 = off
  double deadline_ms = 0.0;            ///< per-point deadline; 0 = off
  std::string cache_dir;   ///< content-addressed result cache; empty = off
  std::string checkpoint;  ///< append-only resume manifest; empty = off
  int shard_index = 0;     ///< 0-based shard selected by --shard=K/N
  int shard_count = 1;     ///< total shards; 1 = run everything
  double zipf = 0.0;       ///< key skew applied to points that set none
  int engine_threads = 1;  ///< intra-run engine threads (1 = sequential)
  int engine_threads_min_procs = 32;  ///< sweep threshold for the above
  bool cache_gc = false;              ///< run a cache GC pass after sweeps
  std::uint64_t cache_gc_bytes = 0;   ///< size cap; 0 = none
  double cache_gc_age_s = 0.0;        ///< age cap in seconds; 0 = none
};

/// Parse argv. Throws std::invalid_argument on unknown flags and on
/// malformed or non-positive --procs= / --jobs= values.
Options parse(int argc, char** argv);

/// parse(), but flag errors print the message plus usage to stderr and
/// exit with status 2 (the conventional usage-error code) instead of
/// letting the exception terminate the binary with a traceback.
Options parseOrExit(int argc, char** argv);

const AppParams& pick(const AppDesc& app, const Options& opt);

/// "tiny" / "small" / "paper" (matches pick()'s precedence: tiny wins).
const char* scaleName(const Options& opt);

/// Print one figure-style per-processor breakdown for a version on SVM.
void breakdownFigure(const std::string& figure, const std::string& app,
                     const std::string& version, const Options& opt);

/// Run a version on a platform and return the paper-style speedup cell.
CellResult cell(Experiment& ex, PlatformKind kind, const AppDesc& app,
                const std::string& version, const Options& opt);

void printHeader(const std::string& title);

/// Machine-readable results of one bench binary: a stable JSON schema
/// ("rsvm-bench-1") holding, per sweep point, the speedup, exec cycles,
/// the six paper breakdown buckets, the protocol counters, the host
/// wall-clock and host-throughput derivatives (host_accesses_per_sec,
/// sim_cycles_per_wall_ms -- how fast the *simulator* chews through
/// simulated accesses). Intended for BENCH_*.json perf-trajectory
/// tracking.
class Report {
 public:
  Report(std::string bench_name, const Options& opt);

  /// Append one (point, result) pair. Results with `skipped` set (the
  /// point belongs to another shard) are not recorded: a shard's report
  /// holds exactly the points it ran, and sweep_merge re-interleaves.
  void add(const SweepPoint& point, const SweepResult& result);
  void add(const std::vector<SweepPoint>& points,
           const std::vector<SweepResult>& results);

  /// Accumulate the provenance counters of one sweep run into the
  /// report's top-level "cache" block.
  void addFleet(const SweepRunner::FleetStats& fs);

  /// Total host wall-clock of the sweep; accumulated by sweep(), or set
  /// explicitly (tests pin it for golden comparisons).
  void setWallMs(double ms) { wall_ms_ = ms; }
  void addWallMs(double ms) { wall_ms_ += ms; }

  /// Attach an extra top-level field to the report, emitted between the
  /// header fields and "points". `raw_json` is spliced in verbatim (a
  /// number, an object, ...), so callers can extend the schema without
  /// touching the emitter -- e.g. ext_simperf's switch-throughput
  /// microbench object. Keys keep insertion order.
  void addExtra(std::string key, std::string raw_json);

  /// Render the full report as JSON (deterministic key order).
  [[nodiscard]] std::string json() const;

  /// Write json() to `path`; throws std::runtime_error on I/O failure.
  void writeJson(const std::string& path) const;

  /// Write to opt.json_path when --json=FILE was given; returns whether
  /// a file was written (and prints where).
  bool maybeWrite(const Options& opt) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    SweepPoint point;
    SweepResult result;
  };
  std::string bench_;
  std::string scale_;
  int procs_;
  int jobs_;
  bool fastpath_ = true;
  std::string fiber_;  ///< backend name in effect when constructed
  int engine_threads_ = 1;  ///< requested intra-run engine threads
  double wall_ms_ = 0.0;
  int shard_index_ = 0;
  int shard_count_ = 1;
  SweepRunner::FleetStats fleet_{};
  std::vector<std::pair<std::string, std::string>> extras_;
  std::vector<Entry> entries_;
};

/// Run `points` on a SweepRunner honoring --jobs and the fleet flags
/// (--cache-dir, --checkpoint, --shard), append every non-skipped
/// (point, result) pair to `report` and account the wall-clock and
/// provenance counters there. The returned vector is always full-size:
/// results[i] corresponds to points[i] even in a sharded run (skipped
/// points come back with skipped = true and zeroed stats).
std::vector<SweepResult> sweep(const std::vector<SweepPoint>& points,
                               const Options& opt, Report& report);

/// Write `body` to `path` atomically: the bytes land in a same-directory
/// temp file which is then renamed over `path`, so a concurrent reader
/// (or a killed writer) sees either the old file or the complete new
/// one, never a torn prefix. Throws std::runtime_error on I/O failure.
void writeFileAtomic(const std::string& path, const std::string& body);

/// Fuse N rsvm-bench-1 shard reports (the verbatim JSON texts, one per
/// shard, produced by the same sweep run with --shard=K/N for every K)
/// into one canonical unsharded report: submission order restored by
/// the round-robin shard rule, wall_ms and cache/provenance counters
/// summed, point records spliced byte-identically. Throws
/// std::runtime_error on malformed input, header mismatches between
/// shards, an incomplete or overlapping shard set, or two shards
/// reporting different digests for an identical point.
std::string mergeShardReports(const std::vector<std::string>& shard_jsons);

}  // namespace rsvm::bench
