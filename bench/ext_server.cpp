// Server-shaped workload sweep: the request-serving (server) and
// concurrent-index (index) families across every platform and every
// restructuring step. Where the paper's figures chart loop-parallel
// science codes, this extension charts the contention structures a
// server lives on -- task queues with stealing, a locked allocator
// arena, striped key-value updates, chained-hash and B+-tree indexes --
// and how the P/A, DS, and Alg restructurings move them on SVM vs
// hardware coherence.
//
// Besides the usual per-point rsvm-bench-1 records (which now carry
// state_hash / result_hash / allocs), the report gains a
// "server_stats" object summarizing contention: total steals, total
// allocations, and a cross-platform digest check -- every platform must
// report the same state/result hashes per (app, version), or the
// binary exits nonzero (the bench is also a differential test).
#include "bench_common.hpp"

#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

int main(int argc, char** argv) {
  using namespace rsvm;
  const auto opt = bench::parseOrExit(argc, argv);
  const char* apps[] = {"server", "index"};
  const PlatformKind kinds[] = {PlatformKind::SVM, PlatformKind::SMP,
                                PlatformKind::NUMA, PlatformKind::FGS};

  bench::printHeader("Server-shaped workloads: task-queue service + "
                     "hash/B+-tree indexes, " +
                     std::to_string(opt.procs) + " processors");

  std::vector<SweepPoint> points;
  for (const char* app : apps) {
    const AppDesc* a = Registry::instance().find(app);
    if (a == nullptr) {
      std::fprintf(stderr, "ext_server: unknown app '%s'\n", app);
      return 1;
    }
    for (const PlatformKind kind : kinds) {
      for (const auto& ver : a->versions) {
        SweepPoint p;
        p.kind = kind;
        p.app = app;
        p.version = ver.name;
        p.params = bench::pick(*a, opt);
        p.procs = opt.procs;
        points.push_back(std::move(p));
      }
    }
  }

  // Skew ladder: the server versions again under Zipf-distributed key
  // popularity (hot keys concentrate stripe-lock and log contention),
  // on the two platforms whose contention behavior diverges most.
  const double skews[] = {0.6, 0.9};
  const PlatformKind skew_kinds[] = {PlatformKind::SVM, PlatformKind::NUMA};
  const std::size_t skew_begin = points.size();
  {
    const AppDesc* a = Registry::instance().find("server");
    for (const double theta : skews) {
      for (const PlatformKind kind : skew_kinds) {
        for (const auto& ver : a->versions) {
          SweepPoint p;
          p.kind = kind;
          p.app = "server";
          p.version = ver.name;
          p.params = bench::pick(*a, opt);
          p.params.zipf = theta;
          p.procs = opt.procs;
          points.push_back(std::move(p));
        }
      }
    }
  }

  bench::Report report("ext_server", opt);
  const std::vector<SweepResult> results = bench::sweep(points, opt, report);

  // --- speedup table, one row per version, one column per platform ---
  std::size_t failures = 0;
  std::uint64_t steals = 0, allocs = 0;
  // (app, version, zipf) -> (state_hash, result_hash) of the first
  // platform. zipf is part of the key: skewed points answer a different
  // question than uniform ones, but all platforms must still agree
  // within a skew level.
  std::map<std::tuple<std::string, std::string, double>,
           std::pair<std::uint64_t, std::uint64_t>>
      digests;
  std::size_t digest_mismatches = 0;
  std::printf("%-8s %-12s %8s %8s %8s %8s   %7s %7s\n", "app", "version",
              "SVM", "SMP", "DSM", "FGS", "steals", "allocs");
  for (const char* app : apps) {
    const AppDesc* a = Registry::instance().find(app);
    for (std::size_t v = 0; v < a->versions.size(); ++v) {
      std::printf("%-8s %-12s", app, a->versions[v].name.c_str());
      std::uint64_t row_steals = 0, row_allocs = 0;
      for (std::size_t k = 0; k < 4; ++k) {
        // Index math mirrors the point-construction loops above.
        std::size_t at = 0, found = static_cast<std::size_t>(-1);
        for (const SweepPoint& p : points) {
          if (p.app == app && p.version == a->versions[v].name &&
              p.kind == kinds[k] && p.params.zipf == 0.0) {
            found = at;
            break;
          }
          ++at;
        }
        const SweepResult& r = results[found];
        if (!r.ok()) {
          ++failures;
          std::printf(" %8s", r.timed_out ? "TO" : "FAIL");
          continue;
        }
        std::printf(" %8.2f", r.speedup());
        row_steals += r.app.stats.sum(&ProcStats::tasks_stolen);
        row_allocs += r.app.stats.sum(&ProcStats::allocs);
        const auto key = std::make_tuple(std::string(app),
                                         a->versions[v].name, 0.0);
        const auto want = std::make_pair(r.app.state_hash, r.app.result_hash);
        const auto [it, inserted] = digests.emplace(key, want);
        if (!inserted && it->second != want) {
          ++digest_mismatches;
          std::fprintf(stderr,
                       "ext_server: %s/%s on %s disagrees on digests\n", app,
                       a->versions[v].name.c_str(), platformName(kinds[k]));
        }
      }
      std::printf("   %7llu %7llu\n",
                  static_cast<unsigned long long>(row_steals),
                  static_cast<unsigned long long>(row_allocs));
      steals += row_steals;
      allocs += row_allocs;
    }
  }

  // --- skew ladder: server under Zipf key popularity ---
  std::printf("\n%-8s %-12s %6s %8s %8s\n", "app", "version", "zipf", "SVM",
              "DSM");
  for (const double theta : skews) {
    const AppDesc* a = Registry::instance().find("server");
    for (std::size_t v = 0; v < a->versions.size(); ++v) {
      std::printf("%-8s %-12s %6.2f", "server", a->versions[v].name.c_str(),
                  theta);
      for (std::size_t k = 0; k < 2; ++k) {
        std::size_t found = static_cast<std::size_t>(-1);
        for (std::size_t at = skew_begin; at < points.size(); ++at) {
          const SweepPoint& p = points[at];
          if (p.version == a->versions[v].name && p.kind == skew_kinds[k] &&
              p.params.zipf == theta) {
            found = at;
            break;
          }
        }
        const SweepResult& r = results[found];
        if (!r.ok()) {
          ++failures;
          std::printf(" %8s", r.timed_out ? "TO" : "FAIL");
          continue;
        }
        std::printf(" %8.2f", r.speedup());
        steals += r.app.stats.sum(&ProcStats::tasks_stolen);
        allocs += r.app.stats.sum(&ProcStats::allocs);
        const auto key = std::make_tuple(std::string("server"),
                                         a->versions[v].name, theta);
        const auto want = std::make_pair(r.app.state_hash, r.app.result_hash);
        const auto [it, inserted] = digests.emplace(key, want);
        if (!inserted && it->second != want) {
          ++digest_mismatches;
          std::fprintf(stderr,
                       "ext_server: server/%s zipf=%.2f on %s disagrees on "
                       "digests\n",
                       a->versions[v].name.c_str(), theta,
                       platformName(skew_kinds[k]));
        }
      }
      std::printf("\n");
    }
  }
  for (const SweepResult& r : results) {
    if (!r.ok()) std::fprintf(stderr, "ext_server: %s\n", r.error.c_str());
  }
  std::printf("\n%zu point(s), %zu failure(s), %zu digest mismatch(es)\n",
              results.size(), failures, digest_mismatches);

  report.addExtra(
      "server_stats",
      "{\"points\": " + std::to_string(results.size()) +
          ", \"failures\": " + std::to_string(failures) +
          ", \"digest_mismatches\": " + std::to_string(digest_mismatches) +
          ", \"tasks_stolen\": " + std::to_string(steals) +
          ", \"allocs\": " + std::to_string(allocs) + "}");
  report.maybeWrite(opt);
  return (failures == 0 && digest_mismatches == 0) ? 0 : 1;
}
