// A deliberately tiny recursive-descent JSON parser -- just enough to
// consume the repo's own rsvm-bench-1 reports without external
// dependencies. Shared by bench/sweep_merge (fusing shard reports) and
// the bench tests (validating the emitter).
//
// Two extensions beyond bare JSON values matter here:
//  * integers are also captured as uint64 (`is_u64`/`u64`): counters and
//    cycle counts exceed 2^53, where the double `num` silently rounds;
//  * every value records the exact source text it was parsed from
//    (`raw`), so a consumer can splice a sub-object into new output
//    byte-identically instead of re-serializing it.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm::bench::minijson {

struct Json {
  enum class Type { Object, Array, String, Number, Bool, Null };
  Type type = Type::Null;
  std::map<std::string, Json> obj;
  std::vector<Json> arr;
  std::string str;
  double num = 0.0;
  bool boolean = false;
  bool is_u64 = false;      ///< the number was a non-negative integer
  std::uint64_t u64 = 0;    ///< exact value when is_u64
  std::string raw;          ///< exact source text of this value

  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::Object && obj.count(key) > 0;
  }
  const Json& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return obj.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + why);
  }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += 4; out += '?'; break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    ++pos_;
    return out;
  }
  Json value() {
    ws();
    const std::size_t start = pos_;
    Json v = valueInner();
    v.raw = s_.substr(start, pos_ - start);
    return v;
  }
  Json valueInner() {
    Json v;
    switch (peek()) {
      case '{': {
        v.type = Json::Type::Object;
        ++pos_;
        ws();
        if (peek() == '}') { ++pos_; return v; }
        for (;;) {
          ws();
          std::string key = string();
          ws();
          expect(':');
          v.obj[key] = value();
          ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = Json::Type::Array;
        ++pos_;
        ws();
        if (peek() == ']') { ++pos_; return v; }
        for (;;) {
          v.arr.push_back(value());
          ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = Json::Type::String;
        v.str = string();
        return v;
      case 't':
        pos_ += 4;
        v.type = Json::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        pos_ += 5;
        v.type = Json::Type::Bool;
        return v;
      case 'n':
        pos_ += 4;
        return v;
      default: {
        v.type = Json::Type::Number;
        std::size_t end = pos_;
        bool integral = true;
        while (end < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[end])) ||
                s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
                s_[end] == 'e' || s_[end] == 'E')) {
          if (!std::isdigit(static_cast<unsigned char>(s_[end]))) {
            integral = false;
          }
          ++end;
        }
        if (end == pos_) fail("bad number");
        const std::string text = s_.substr(pos_, end - pos_);
        v.num = std::stod(text);
        if (integral) {
          v.is_u64 = true;
          v.u64 = std::stoull(text);
        }
        pos_ = end;
        return v;
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace rsvm::bench::minijson
