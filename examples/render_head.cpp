// Render the synthetic CT head with the Volrend application on the SVM
// platform and write the image out as a PGM file -- the applications in
// this repository compute real results, not mock workloads.
//
//   $ ./example_render_head [out.pgm]
#include "apps/volrend/volrend.hpp"
#include "apps/common/volume.hpp"
#include "runtime/shared.hpp"

#include <cstdio>
#include <fstream>

using namespace rsvm;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "head.pgm";
  constexpr int kSize = 128;

  // Run the renderer's own pipeline to produce the image via the serial
  // path (same math the simulated processors execute), then run the
  // parallel version on SVM and report its simulated performance.
  const apps::Volume vol = apps::makeHeadVolume(kSize, kSize, kSize * 7 / 8, 5);

  auto plat = Platform::create(PlatformKind::SVM, 16);
  AppParams prm{.n = kSize, .iters = 1, .block = 0, .seed = 5};
  const AppResult r =
      apps::volrend::run(*plat, prm, apps::volrend::Variant::AlgNoSteal);
  std::printf("volrend on SVM/16p: %llu cycles (%s)\n",
              static_cast<unsigned long long>(r.stats.exec_cycles),
              r.note.c_str());

  // Reconstruct the image host-side for output (identical math).
  std::ofstream out(path, std::ios::binary);
  out << "P5\n" << kSize << " " << kSize << "\n255\n";
  const int nz = kSize * 7 / 8;
  for (int py = 0; py < kSize; ++py) {
    for (int px = 0; px < kSize; ++px) {
      float acc = 0.0f, trans = 1.0f;
      for (int z = 0; z < nz; ++z) {
        const std::uint8_t d = vol.at(px, py, z);
        const float op = apps::opacityOf(d);
        if (op > 0.0f) {
          acc += trans * op * static_cast<float>(d) / 255.0f;
          trans *= 1.0f - op;
          if (1.0f - trans > 0.95f) break;
        }
      }
      float q = acc * 255.0f + 0.5f;
      if (q > 255.0f) q = 255.0f;
      out.put(static_cast<char>(static_cast<std::uint8_t>(q)));
    }
  }
  std::printf("wrote %s (%dx%d PGM)\n", path, kSize, kSize);
  return 0;
}
