// Server-shaped workloads: run the request-serving (server) and
// concurrent-index (index) families through the public registry API on
// all four platforms, and show what the differential digest contract
// buys you -- every platform must agree on the final data-structure
// state and per-op result hashes, or this program exits nonzero.
//
//   $ ./example_server_workloads
//
// Also demonstrates the batched task-queue dequeue
// (TaskQueues::nextBatch) directly: a thief moving half a skewed
// victim's backlog per lock acquisition.
#include "apps/common/task_queue.hpp"
#include "core/experiment.hpp"

#include <cstdio>
#include <vector>

using namespace rsvm;

int main() {
  registerAllApps();
  constexpr PlatformKind kKinds[] = {PlatformKind::SVM, PlatformKind::SMP,
                                     PlatformKind::NUMA, PlatformKind::FGS};
  int bad = 0;

  // 1. Every version of both families, all four platforms: same answer.
  for (const char* name : {"server", "index"}) {
    const AppDesc* app = Registry::instance().find(name);
    if (app == nullptr) return 1;
    for (const VersionDesc& ver : app->versions) {
      std::printf("%-8s %-12s", name, ver.name.c_str());
      std::uint64_t state = 0, result = 0;
      for (PlatformKind kind : kKinds) {
        auto plat = Platform::create(kind, 8);
        plat->setCheckLevel(CheckLevel::Oracle);
        const AppResult r = ver.run(*plat, app->tiny);
        const OracleReport* rep = plat->oracleReport();
        const bool clean = rep != nullptr && rep->clean();
        if (!r.correct || !clean) {
          std::printf("  %s:INCORRECT", platformName(kind));
          ++bad;
          continue;
        }
        if (state == 0) {
          state = r.state_hash;
          result = r.result_hash;
        } else if (state != r.state_hash || result != r.result_hash) {
          std::printf("  %s:DIGEST-MISMATCH", platformName(kind));
          ++bad;
          continue;
        }
        std::printf(" %10llu",
                    static_cast<unsigned long long>(r.stats.exec_cycles));
      }
      std::printf("   state=%016llx\n",
                  static_cast<unsigned long long>(state));
    }
  }

  // 2. The batched dequeue, hands-on: proc 0 owns every task, procs 1-3
  //    arrive empty and bulk-steal half the visible backlog at a time.
  auto plat = Platform::create(PlatformKind::SVM, 4);
  apps::TaskQueues::Options qopt;
  qopt.capacity = 256;
  apps::TaskQueues q(*plat, qopt);
  std::vector<std::int32_t> tasks;
  for (std::int32_t i = 0; i < 192; ++i) tasks.push_back(i);
  q.fillInitial(0, tasks);
  for (int p = 1; p < 4; ++p) q.fillInitial(p, {});
  RunStats rs = plat->run([&](Ctx& c) {
    std::vector<std::int32_t> batch;
    for (;;) {
      batch.clear();
      if (q.nextBatch(c, batch, 8, /*allow_steal=*/true) == 0) break;
      for (std::size_t i = 0; i < batch.size(); ++i) c.compute(400);
    }
  });
  const std::uint64_t executed = rs.sum(&ProcStats::tasks_executed);
  const std::uint64_t stolen = rs.sum(&ProcStats::tasks_stolen);
  std::printf("\nbatched steal on SVM/4p: %llu tasks executed, "
              "%llu moved by bulk steals\n",
              static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(stolen));
  if (executed != 192 || stolen == 0) ++bad;

  if (bad != 0) {
    std::printf("FAILED: %d check(s)\n", bad);
    return 1;
  }
  std::printf("all platforms agree on every digest; oracle clean\n");
  return 0;
}
