// The parallel single-run engine spreads one simulated machine's
// processors across host worker threads (DESIGN.md, "Parallel engine
// (time-window PDES)"). Its contract mirrors the access fast path's:
// the host-side parallelism is semantics-free -- per-processor exec
// cycles, every time bucket, and every protocol counter are
// bit-identical to the sequential scheduler, at any thread count.
//
//   $ ./example_engine_threads      # exits nonzero if the contract breaks
//
// This program runs a sync-heavy kernel (neighbor sweeps + a
// lock-protected reduction + barriers) on a 64-processor machine at
// --engine-threads equivalents of 1, 2, and 4, comparing every
// simulated observable against the sequential run -- on every rung of
// the platform ladder. Flat home-based SVM engages the unfenced
// run-ahead discipline; SMP, NUMA (DSM), and FGS engage the
// fenced-access discipline (every access commits in sequential key
// order); clustered SVM (procs_per_node=4) exercises the fenced path
// through the node-shared page table. One kernel, five shard-safety
// configurations, zero tolerated divergence.
#include "core/app.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/shared.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

using namespace rsvm;

namespace {

RunStats runOnce(PlatformKind kind, int engine_threads, int ppn = 0) {
  constexpr int kProcs = 64;
  constexpr std::size_t kN = 1 << 13;
  constexpr int kSweeps = 4;

  std::unique_ptr<Platform> plat;
  if (ppn > 0) {
    SvmParams sp;
    sp.procs_per_node = ppn;
    plat = std::make_unique<SvmPlatform>(kProcs, sp);
  } else {
    plat = Platform::create(kind, kProcs);
  }
  plat->setEngineThreads(engine_threads);

  SharedArray<double> a(*plat, kN, HomePolicy::blocked(kProcs));
  SharedArray<double> b(*plat, kN, HomePolicy::blocked(kProcs));
  SharedArray<double> total(*plat, 1, HomePolicy::node(0));
  for (std::size_t i = 0; i < kN; ++i) {
    a.raw(i) = static_cast<double>(i % 113);
  }
  total.raw(0) = 0.0;
  const int bar = plat->makeBarrier();
  const int lk = plat->makeLock();

  return plat->run([&](Ctx& c) {
    const std::size_t lo = static_cast<std::size_t>(c.id()) * kN / kProcs;
    const std::size_t hi = lo + kN / kProcs;
    SharedArray<double>* src = &a;
    SharedArray<double>* dst = &b;
    for (int s = 0; s < kSweeps; ++s) {
      double local = 0.0;
      for (std::size_t i = std::max<std::size_t>(lo, 1);
           i < std::min(hi, kN - 1); ++i) {
        const double v =
            (src->get(c, i - 1) + src->get(c, i) + src->get(c, i + 1)) / 3.0;
        dst->set(c, i, v);
        local += v;
        c.compute(4);
      }
      c.lock(lk);
      total.set(c, 0, total.get(c, 0) + local);
      c.unlock(lk);
      c.barrier(bar);
      std::swap(src, dst);
    }
  });
}

/// Compare every simulated observable; print and count any mismatch.
int compare(const char* plat, int threads, const RunStats& seq,
            const RunStats& par) {
  int bad = 0;
  auto check = [&](const char* what, std::uint64_t s, std::uint64_t p) {
    if (s != p) {
      std::printf("  MISMATCH %s threads=%d %s: seq=%llu par=%llu\n", plat,
                  threads, what, static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(p));
      ++bad;
    }
  };
  check("exec_cycles", seq.exec_cycles, par.exec_cycles);
  for (int b = 0; b < kNumBuckets; ++b) {
    check(bucketName(static_cast<Bucket>(b)),
          seq.bucketTotal(static_cast<Bucket>(b)),
          par.bucketTotal(static_cast<Bucket>(b)));
  }
  const std::pair<const char*, std::uint64_t ProcStats::*> counters[] = {
      {"reads", &ProcStats::reads},
      {"writes", &ProcStats::writes},
      {"l1_misses", &ProcStats::l1_misses},
      {"l2_misses", &ProcStats::l2_misses},
      {"page_faults", &ProcStats::page_faults},
      {"write_faults", &ProcStats::write_faults},
      {"diffs_created", &ProcStats::diffs_created},
      {"diff_bytes", &ProcStats::diff_bytes},
      {"remote_misses", &ProcStats::remote_misses},
      {"local_misses", &ProcStats::local_misses},
      {"invalidations_sent", &ProcStats::invalidations_sent},
      {"lock_acquires", &ProcStats::lock_acquires},
      {"remote_lock_acquires", &ProcStats::remote_lock_acquires},
      {"barriers", &ProcStats::barriers},
  };
  for (const auto& [name, field] : counters) {
    check(name, seq.sum(field), par.sum(field));
  }
  return bad;
}

}  // namespace

int main() {
  struct Config {
    const char* label;
    PlatformKind kind;
    int ppn;  // SVM procs_per_node; 0 = stock platform
  };
  const Config configs[] = {
      {"SVM", PlatformKind::SVM, 0},    {"SMP", PlatformKind::SMP, 0},
      {"DSM", PlatformKind::NUMA, 0},   {"FGS", PlatformKind::FGS, 0},
      {"SVM-n4", PlatformKind::SVM, 4},
  };
  int bad = 0;
  std::printf("%-6s | %7s | %12s | %10s | %s\n", "plat", "threads",
              "exec cycles", "wall (ms)", "bit-identical?");
  for (const Config& cfg : configs) {
    const RunStats seq = runOnce(cfg.kind, 1, cfg.ppn);
    std::printf("%-6s | %7d | %12llu | %10.2f | (reference)\n", cfg.label, 1,
                static_cast<unsigned long long>(seq.exec_cycles),
                seq.host_wall_ms);
    for (int threads : {2, 4}) {
      const RunStats par = runOnce(cfg.kind, threads, cfg.ppn);
      const int mismatches = compare(cfg.label, threads, seq, par);
      bad += mismatches;
      std::printf("%-6s | %7d | %12llu | %10.2f | %s\n", cfg.label, threads,
                  static_cast<unsigned long long>(par.exec_cycles),
                  par.host_wall_ms, mismatches == 0 ? "yes" : "NO");
    }
  }
  if (bad != 0) {
    std::printf("FAIL: %d simulated observable(s) diverged\n", bad);
    return EXIT_FAILURE;
  }
  std::printf("ok: parallel engine bit-identical on all five shard-safety "
              "configurations\n");
  return EXIT_SUCCESS;
}
