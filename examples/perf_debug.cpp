// Performance-debugging session, the way the paper's authors used their
// simulator (section 6: understanding whether time goes to data wait or
// contention, to lock overhead or to dilated critical sections, and
// which data structures are responsible).
//
// Attach a TraceRecorder to the SVM platform, run the original Volrend,
// and print the diagnosis: the hot pages turn out to be task-queue and
// image pages -- not the volume -- exactly the paper's (initially
// surprising) finding.
//
//   $ ./example_perf_debug
#include "core/experiment.hpp"
#include "proto/svm/svm_platform.hpp"
#include "runtime/trace.hpp"

#include <cstdio>

using namespace rsvm;

int main() {
  registerAllApps();
  const AppDesc* volrend = Registry::instance().find("volrend");

  SvmPlatform plat(16);
  TraceRecorder rec;
  plat.trace = rec.hook();
  const AppResult r = volrend->original().run(plat, volrend->small);
  std::printf("volrend/orig on SVM/16p: %llu cycles, %s\n\n",
              static_cast<unsigned long long>(r.stats.exec_cycles),
              r.note.c_str());
  std::printf("%s\n", rec.report(6).c_str());

  std::printf("bucket shares:\n%s",
              fmt::breakdown("volrend/orig", r.stats).c_str());
  std::printf(
      "\nDiagnosis, as in the paper: the volume (read-only, replicated)\n"
      "is NOT the problem; the faults concentrate on task-queue and\n"
      "image pages, and the lock report shows critical sections dilated\n"
      "far beyond their useful work.\n");
  return 0;
}
