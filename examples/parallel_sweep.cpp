// Host-parallel sweeps: fan a grid of independent simulations out over
// host threads with SweepRunner and check the property everything rests
// on -- simulated results are bit-identical no matter how many host
// workers ran the sweep, and come back in submission order.
//
//   $ ./example_parallel_sweep
//
// Exits nonzero if any point fails or any simulated statistic differs
// between the serial (jobs=1) and parallel (jobs=4) runs.
#include "core/sweep.hpp"

#include <cstdio>
#include <cstring>

using namespace rsvm;

int main() {
  registerAllApps();

  // A miniature figure: LU original vs restructured on two platforms,
  // at two processor counts. Every cell is an independent simulation.
  std::vector<SweepPoint> points;
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP}) {
    for (const char* version : {"2d", "4d-aligned"}) {
      for (int procs : {4, 8}) {
        SweepPoint p;
        p.kind = kind;
        p.app = "lu";
        p.version = version;
        p.params = Registry::instance().find("lu")->tiny;
        p.procs = procs;
        points.push_back(std::move(p));
      }
    }
  }

  std::printf("running %zu points serially (--jobs=1)...\n", points.size());
  const auto serial = SweepRunner(1).run(points);
  std::printf("running %zu points on 4 host threads (--jobs=4)...\n",
              points.size());
  const auto parallel = SweepRunner(4).run(points);

  int bad = 0;
  std::printf("%-34s %10s %10s\n", "point", "speedup", "exec cycles");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepResult& s = serial[i];
    const SweepResult& q = parallel[i];
    if (!s.ok() || !q.ok()) {
      std::fprintf(stderr, "FAIL: %s\n",
                   (!s.ok() ? s.error : q.error).c_str());
      ++bad;
      continue;
    }
    // Bit-identical across host-thread counts: execution time, baseline,
    // and every per-processor statistic.
    if (s.cycles != q.cycles || s.base_cycles != q.base_cycles ||
        s.app.stats.procs.size() != q.app.stats.procs.size() ||
        std::memcmp(s.app.stats.procs.data(), q.app.stats.procs.data(),
                    s.app.stats.procs.size() * sizeof(ProcStats)) != 0) {
      std::fprintf(stderr, "FAIL: %s differs between jobs=1 and jobs=4\n",
                   describePoint(points[i]).c_str());
      ++bad;
      continue;
    }
    std::printf("%-34s %10.2f %10llu\n", describePoint(points[i]).c_str(),
                s.speedup(),
                static_cast<unsigned long long>(s.cycles));
  }
  if (bad != 0) {
    std::fprintf(stderr, "%d of %zu points failed\n", bad, points.size());
    return 1;
  }
  std::printf("all %zu points bit-identical across host-thread counts\n",
              points.size());
  return 0;
}
