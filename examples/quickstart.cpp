// Quickstart: write a small parallel program against the coherent
// shared-address-space API and run it unchanged on all three simulated
// platforms (page-grained SVM, snooping-bus SMP, directory CC-NUMA),
// then inspect the paper-style execution-time breakdown.
//
//   $ ./example_quickstart
//
// The program is a toy near-neighbor smoothing kernel: each processor
// owns a band of a 1-d array and repeatedly averages with its
// neighbors, with a barrier per sweep -- a miniature Ocean.
#include "core/app.hpp"
#include "runtime/shared.hpp"

#include <cstdio>

using namespace rsvm;

int main() {
  constexpr int kProcs = 8;
  constexpr std::size_t kN = 1 << 15;
  constexpr int kSweeps = 12;

  for (PlatformKind kind :
       {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA}) {
    // 1. Create a platform (16-processor machine models from the paper).
    auto plat = Platform::create(kind, kProcs);

    // 2. Allocate shared data with a distribution policy. Each
    //    processor's band lives in its own node's memory.
    SharedArray<double> a(*plat, kN, HomePolicy::blocked(kProcs));
    SharedArray<double> b(*plat, kN, HomePolicy::blocked(kProcs));
    for (std::size_t i = 0; i < kN; ++i) {
      a.raw(i) = static_cast<double>(i % 97);  // untimed initialization
    }
    const int bar = plat->makeBarrier();

    // 3. Run the timed parallel section: every shared access is charged
    //    simulated cycles by the platform's coherence protocol.
    RunStats rs = plat->run([&](Ctx& c) {
      const std::size_t lo = static_cast<std::size_t>(c.id()) * kN / kProcs;
      const std::size_t hi = lo + kN / kProcs;
      SharedArray<double>* src = &a;
      SharedArray<double>* dst = &b;
      for (int s = 0; s < kSweeps; ++s) {
        for (std::size_t i = std::max<std::size_t>(lo, 1);
             i < std::min(hi, kN - 1); ++i) {
          dst->set(c, i,
                   (src->get(c, i - 1) + src->get(c, i) + src->get(c, i + 1)) /
                       3.0);
          c.compute(3);  // the two adds and the divide
        }
        c.barrier(bar);
        std::swap(src, dst);
      }
    });

    // 4. Look at where the time went (the paper's six buckets).
    std::printf("---- %s ----\n", plat->name());
    std::printf("exec cycles: %llu\n",
                static_cast<unsigned long long>(rs.exec_cycles));
    for (int bkt = 0; bkt < kNumBuckets; ++bkt) {
      std::printf("  %-12s %10llu\n", bucketName(static_cast<Bucket>(bkt)),
                  static_cast<unsigned long long>(
                      rs.bucketTotal(static_cast<Bucket>(bkt))));
    }
  }
  std::printf("\nNote how the same program pays page faults and barrier\n"
              "protocol costs on SVM, bus stalls on the SMP, and remote\n"
              "line misses on the DSM.\n");
  return 0;
}
