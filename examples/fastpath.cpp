// The access fast path is a host-side optimization: a per-processor
// line-permission filter that short-circuits repeat L1 hits before any
// protocol dispatch, batching their cycle accounting (DESIGN.md,
// "Access fast path"). Its contract is that it is *semantics-free* --
// simulated results are bit-identical with the filter on or off.
//
//   $ ./example_fastpath        # exits nonzero if the contract breaks
//
// This program runs the quickstart's near-neighbor kernel on all four
// platforms twice -- fast path enabled, then disabled via
// Platform::setFastPathEnabled(false), the same switch the bench
// binaries expose as --no-fastpath -- and compares every simulated
// observable: exec cycles, all six time buckets, and all protocol
// counters. It also reports what the filter does for free: the fraction
// of timed accesses resolved without reaching the protocol layer
// (Platform::slowAccessCalls) and the host wall time of the timed
// section (RunStats::host_wall_ms).
#include "core/app.hpp"
#include "runtime/shared.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

using namespace rsvm;

namespace {

struct Observed {
  RunStats rs;
  std::uint64_t slow_calls = 0;
};

Observed runOnce(PlatformKind kind, bool fastpath) {
  constexpr int kProcs = 8;
  constexpr std::size_t kN = 1 << 14;
  constexpr int kSweeps = 8;

  auto plat = Platform::create(kind, kProcs);
  plat->setFastPathEnabled(fastpath);

  SharedArray<double> a(*plat, kN, HomePolicy::blocked(kProcs));
  SharedArray<double> b(*plat, kN, HomePolicy::blocked(kProcs));
  for (std::size_t i = 0; i < kN; ++i) {
    a.raw(i) = static_cast<double>(i % 97);
  }
  const int bar = plat->makeBarrier();

  Observed out;
  out.rs = plat->run([&](Ctx& c) {
    const std::size_t lo = static_cast<std::size_t>(c.id()) * kN / kProcs;
    const std::size_t hi = lo + kN / kProcs;
    SharedArray<double>* src = &a;
    SharedArray<double>* dst = &b;
    for (int s = 0; s < kSweeps; ++s) {
      for (std::size_t i = std::max<std::size_t>(lo, 1);
           i < std::min(hi, kN - 1); ++i) {
        dst->set(c, i,
                 (src->get(c, i - 1) + src->get(c, i) + src->get(c, i + 1)) /
                     3.0);
        c.compute(3);
      }
      c.barrier(bar);
      std::swap(src, dst);
    }
  });
  out.slow_calls = plat->slowAccessCalls();
  return out;
}

/// Compare every simulated observable; print and count any mismatch.
int compare(const char* plat, const RunStats& fast, const RunStats& slow) {
  int bad = 0;
  auto check = [&](const char* what, std::uint64_t f, std::uint64_t s) {
    if (f != s) {
      std::printf("  MISMATCH %s %s: fastpath=%llu slowpath=%llu\n", plat,
                  what, static_cast<unsigned long long>(f),
                  static_cast<unsigned long long>(s));
      ++bad;
    }
  };
  check("exec_cycles", fast.exec_cycles, slow.exec_cycles);
  for (int b = 0; b < kNumBuckets; ++b) {
    check(bucketName(static_cast<Bucket>(b)),
          fast.bucketTotal(static_cast<Bucket>(b)),
          slow.bucketTotal(static_cast<Bucket>(b)));
  }
  const std::pair<const char*, std::uint64_t ProcStats::*> counters[] = {
      {"reads", &ProcStats::reads},
      {"writes", &ProcStats::writes},
      {"l1_misses", &ProcStats::l1_misses},
      {"l2_misses", &ProcStats::l2_misses},
      {"page_faults", &ProcStats::page_faults},
      {"write_faults", &ProcStats::write_faults},
      {"diffs_created", &ProcStats::diffs_created},
      {"diff_bytes", &ProcStats::diff_bytes},
      {"remote_misses", &ProcStats::remote_misses},
      {"local_misses", &ProcStats::local_misses},
      {"invalidations_sent", &ProcStats::invalidations_sent},
      {"lock_acquires", &ProcStats::lock_acquires},
      {"remote_lock_acquires", &ProcStats::remote_lock_acquires},
      {"barriers", &ProcStats::barriers},
  };
  for (const auto& [name, field] : counters) {
    check(name, fast.sum(field), slow.sum(field));
  }
  return bad;
}

}  // namespace

int main() {
  int bad = 0;
  std::printf("%-6s | %12s | %9s | %10s | %s\n", "plat", "exec cycles",
              "filter hit", "wall (ms)", "bit-identical?");
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP,
                            PlatformKind::NUMA, PlatformKind::FGS}) {
    const Observed fast = runOnce(kind, true);
    const Observed slow = runOnce(kind, false);
    const int mismatches =
        compare(platformName(kind), fast.rs, slow.rs);
    bad += mismatches;
    const double total = static_cast<double>(
        fast.rs.sum(&ProcStats::reads) + fast.rs.sum(&ProcStats::writes));
    const double hit_pct =
        total > 0.0
            ? 100.0 * (total - static_cast<double>(fast.slow_calls)) / total
            : 0.0;
    std::printf("%-6s | %12llu | %8.1f%% | %10.2f | %s\n", platformName(kind),
                static_cast<unsigned long long>(fast.rs.exec_cycles), hit_pct,
                fast.rs.host_wall_ms, mismatches == 0 ? "yes" : "NO");
  }
  if (bad != 0) {
    std::printf("\n%d simulated observable(s) differ with the fast path "
                "on vs off -- the filter admitted a stale permission.\n",
                bad);
    return EXIT_FAILURE;
  }
  std::printf("\nEvery bucket and counter matches with the filter on or "
              "off,\non all four platforms: the fast path only changes how "
              "fast the\nhost simulates, never what it simulates.\n");
  return EXIT_SUCCESS;
}
