// Protocol-verification session: the robustness layer end to end.
//
// Four acts:
//   1. LU runs under the coherence oracle on all four platforms and
//      comes back violation-free, at identical simulated cost to an
//      unchecked run (the oracle is an observer, never a participant);
//   2. deterministic fault injection shakes the SVM and DSM protocols
//      (latency jitter, spurious drops, lock-grant reordering) while
//      the oracle watches: still correct, still coherent, and the same
//      seed reproduces the exact same simulated clock;
//   3. a hand-seeded protocol violation (a write the protocol never
//      granted) is caught with an attributed report;
//   4. the engine watchdog converts a livelock into a diagnostic
//      naming every stuck processor, instead of a hung process.
//
//   $ ./example_protocol_verify
#include "check/coherence_oracle.hpp"
#include "core/app.hpp"
#include "sim/engine.hpp"

#include <cstdio>
#include <cstring>

using namespace rsvm;

int main() {
  registerAllApps();
  const AppDesc* lu = Registry::instance().find("lu");
  const AppDesc* ocean = Registry::instance().find("ocean");
  bool ok = true;

  // -- 1: race-free apps are oracle-clean on every platform ----------
  std::printf("== lu/orig under --check=oracle ==\n");
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP,
                            PlatformKind::NUMA, PlatformKind::FGS}) {
    Cycles unchecked = 0;
    {
      auto plat = Platform::create(kind, 8);
      unchecked = lu->original().run(*plat, lu->tiny).stats.exec_cycles;
    }
    auto plat = Platform::create(kind, 8);
    plat->setCheckLevel(CheckLevel::Oracle);
    const AppResult r = lu->original().run(*plat, lu->tiny);
    const OracleReport* rep = plat->oracleReport();
    const bool clean = r.correct && rep != nullptr && rep->clean() &&
                       r.stats.exec_cycles == unchecked;
    ok = ok && clean;
    std::printf(
        "  %-4s %zu accesses checked, %zu transitions, %zu audits: %s\n",
        platformName(kind), rep->accesses, rep->grants, rep->audits,
        clean ? "clean, cycles identical to unchecked run" : "VIOLATIONS");
    if (rep != nullptr && !rep->clean()) {
      std::printf("%s\n", rep->summary().c_str());
    }
  }

  // -- 2: fault injection under the oracle, bit-reproducible ---------
  std::printf("== ocean/orig under fault seeds (oracle on) ==\n");
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      Cycles first = 0;
      for (int rerun = 0; rerun < 2; ++rerun) {
        auto plat = Platform::create(kind, 8);
        plat->setCheckLevel(CheckLevel::Oracle);
        plat->setFaultPlan(seed);
        const AppResult r = ocean->original().run(*plat, ocean->tiny);
        const OracleReport* rep = plat->oracleReport();
        const bool good = r.correct && rep != nullptr && rep->clean();
        ok = ok && good;
        if (rerun == 0) {
          first = r.stats.exec_cycles;
        } else {
          ok = ok && r.stats.exec_cycles == first;
          std::printf("  %-4s seed %llu: correct, coherent, %llu cycles "
                      "(%s across reruns)\n",
                      platformName(kind),
                      static_cast<unsigned long long>(seed),
                      static_cast<unsigned long long>(first),
                      r.stats.exec_cycles == first ? "bit-identical"
                                                   : "DIVERGED");
        }
      }
    }
  }

  // -- 3: a seeded violation is caught, attributed -------------------
  {
    CoherenceOracle::Config cfg;
    cfg.nprocs = 4;
    cfg.ndomains = 4;
    cfg.domain_of = {0, 1, 2, 3};
    cfg.unit_bytes = 64;
    CoherenceOracle oracle(cfg);
    oracle.grant(0, 7, OraclePerm::Write, "miss-serve");
    oracle.onAccess(2, 7 * 64, 4, /*write=*/true, /*racy=*/false);  // never granted!
    const bool caught = !oracle.report().clean();
    ok = ok && caught;
    std::printf("== a write the protocol never granted ==\n%s\n",
                oracle.report().summary().c_str());
  }

  // -- 4: livelock becomes a diagnostic, not a hang ------------------
  {
    Engine eng({.nprocs = 2, .quantum = 100});
    eng.setWatchdog(/*max_cycles=*/100'000, /*max_host_ms=*/0.0);
    bool fired = false;
    std::string what;
    try {
      eng.run([&](ProcId) {
        for (;;) {
          eng.advance(10, Bucket::Compute);
          eng.yieldNow();
        }
      });
    } catch (const EngineWatchdogError& e) {
      fired = true;
      what = e.what();
    }
    ok = ok && fired && what.find("p0:") != std::string::npos;
    std::printf("== two processors yielding forever, watchdog armed ==\n"
                "%s\n", what.c_str());
  }

  std::printf("\nprotocol verification: %s\n", ok ? "all good" : "FAILED");
  return ok ? 0 : 1;
}
