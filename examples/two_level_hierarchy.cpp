// Two-level hierarchy demo (the paper's section-7 future work): the same
// Ocean run on 16 processors organized as 16 single-CPU SVM nodes, as
// 4 SMP nodes of 4, and as 2 SMP nodes of 8. Watch the barrier and data
// wait shrink as more of the communication stays inside a node.
//
//   $ ./example_two_level_hierarchy
#include "apps/ocean/ocean.hpp"
#include "core/app.hpp"
#include "proto/svm/svm_platform.hpp"

#include <cstdio>

using namespace rsvm;

int main() {
  const AppParams prm{.n = 130, .iters = 3, .block = 0, .seed = 11};
  std::printf("%-10s %12s %12s %12s %12s\n", "layout", "cycles", "data",
              "barrier", "faults");
  for (int ppn : {1, 4, 8}) {
    SvmParams sp;
    sp.procs_per_node = ppn;
    SvmPlatform plat(16, sp);
    const AppResult r =
        apps::ocean::run(plat, prm, apps::ocean::Variant::TwoD);
    if (!r.correct) {
      std::printf("verification failed: %s\n", r.note.c_str());
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof label, "%dx%d", 16 / ppn, ppn);
    std::printf("%-10s %12llu %12llu %12llu %12llu\n", label,
                static_cast<unsigned long long>(r.stats.exec_cycles),
                static_cast<unsigned long long>(
                    r.stats.bucketTotal(Bucket::DataWait)),
                static_cast<unsigned long long>(
                    r.stats.bucketTotal(Bucket::BarrierWait)),
                static_cast<unsigned long long>(
                    r.stats.sum(&ProcStats::page_faults)));
  }
  std::printf("\nThe *unmodified* original Ocean recovers performance as\n"
              "nodes grow: intra-node pages, locks and barrier arrivals\n"
              "are nearly free (paper, section 7 future work).\n");
  return 0;
}
