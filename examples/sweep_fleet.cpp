// Sweep fleet: the three service-grade features of SweepRunner --
// content-addressed result caching, checkpoint/resume, and
// multi-process sharding -- driven through the public headers, with
// the provenance contract checked at every step: a cached, resumed, or
// sharded result is bit-identical to a plain recompute.
//
//   $ ./example_sweep_fleet
//
// Exits nonzero if any point fails, any provenance counter is wrong,
// or any served result differs from the reference computation.
#include "core/checkpoint.hpp"
#include "core/result_cache.hpp"
#include "core/sweep.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace rsvm;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

bool sameSimulatedBits(const SweepResult& a, const SweepResult& b) {
  return a.cycles == b.cycles && a.base_cycles == b.base_cycles &&
         a.app.state_hash == b.app.state_hash &&
         a.app.result_hash == b.app.result_hash &&
         a.app.stats.procs.size() == b.app.stats.procs.size() &&
         std::memcmp(a.app.stats.procs.data(), b.app.stats.procs.data(),
                     a.app.stats.procs.size() * sizeof(ProcStats)) == 0;
}

}  // namespace

int main() {
  registerAllApps();

  // A miniature figure: LU on two platforms at two processor counts.
  const AppParams tiny = Registry::instance().find("lu")->tiny;
  const auto makePoint = [&tiny](PlatformKind kind, int procs) {
    SweepPoint p;
    p.kind = kind;
    p.app = "lu";
    p.version = "2d";
    p.params = tiny;
    p.procs = procs;
    return p;
  };
  std::vector<SweepPoint> points;
  points.reserve(4);
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::SMP}) {
    for (int procs : {2, 4}) points.push_back(makePoint(kind, procs));
  }

  char tmpl[] = "/tmp/rsvm_sweep_fleet_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string cache_dir = std::string(dir) + "/cache";
  const std::string manifest = std::string(dir) + "/sweep.ck";

  // The reference: a plain sweep with no fleet features.
  const auto reference = SweepRunner(2).run(points);
  for (const auto& r : reference) {
    if (!r.ok()) {
      std::fprintf(stderr, "reference point failed: %s\n", r.error.c_str());
      return 1;
    }
  }

  SweepRunner::Config cfg;
  cfg.jobs = 2;
  cfg.cache_dir = cache_dir;
  cfg.checkpoint = manifest;

  // 1. Cold run: everything computed, everything stored + journaled.
  std::printf("cold run (cache + checkpoint at %s):\n", dir);
  SweepRunner cold(cfg);
  const auto first = cold.run(points);
  check(cold.fleetStats().computed == points.size(), "all points computed");
  check(cold.fleetStats().stores == points.size(), "all results cached");

  // 2. Same checkpoint: a rerun replays the journal, computes nothing.
  std::printf("rerun with the same manifest:\n");
  SweepRunner resumed(cfg);
  const auto replayed = resumed.run(points);
  check(resumed.fleetStats().resumed == points.size(),
        "every point resumed from the manifest");
  check(resumed.fleetStats().computed == 0, "nothing recomputed");

  // 3. Fresh checkpoint, warm cache: every point is a cache hit.
  std::printf("fresh manifest, warm cache:\n");
  cfg.checkpoint = std::string(dir) + "/second.ck";
  SweepRunner warm(cfg);
  const auto cached = warm.run(points);
  check(warm.fleetStats().cache_hits == points.size(),
        "every point served from the result cache");

  // 4. Sharding: two disjoint halves cover the sweep exactly once.
  std::printf("sharded 2 ways (no cache):\n");
  std::vector<std::vector<SweepResult>> shard(2);
  for (int s = 0; s < 2; ++s) {
    SweepRunner::Config sc;
    sc.jobs = 2;
    sc.shard_index = s;
    sc.shard_count = 2;
    shard[static_cast<std::size_t>(s)] = SweepRunner(sc).run(points);
  }

  // The provenance contract: every serving path is bit-identical to
  // the reference computation, and the flags say where each came from.
  std::printf("provenance contract:\n");
  bool replay_ok = true, cache_ok = true, shard_ok = true, flags_ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    replay_ok &= sameSimulatedBits(replayed[i], reference[i]);
    cache_ok &= sameSimulatedBits(cached[i], reference[i]);
    const auto& mine = shard[i % 2][i];
    const auto& other = shard[(i + 1) % 2][i];
    shard_ok &= !mine.skipped && sameSimulatedBits(mine, reference[i]);
    shard_ok &= other.skipped;
    flags_ok &= !first[i].cached && !first[i].resumed;
    flags_ok &= replayed[i].resumed && cached[i].cached;
  }
  check(replay_ok, "resumed results bit-identical to recompute");
  check(cache_ok, "cached results bit-identical to recompute");
  check(shard_ok, "shard union == unsharded, shards disjoint");
  check(flags_ok, "cached/resumed/skipped flags record provenance");

  // The manifest is a self-describing artifact: scan it standalone.
  const auto sr = CheckpointLog::scan(manifest);
  check(sr.records == points.size() && !sr.torn_tail,
        "manifest scan: one intact record per point");
  std::printf("  (cache key of point 0: %s)\n",
              cacheKeyText(points[0]).c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all fleet checks passed (%zu points)\n", points.size());
  return 0;
}
