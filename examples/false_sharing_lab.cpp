// False-sharing laboratory: the paper's "induced sharing" effect in
// isolation. P processors each repeatedly write their own counter; the
// only thing that varies is the *spacing* of the counters in the shared
// address space:
//
//   packed   -- all counters on one page and one cache line,
//   line     -- one cache line apart (fixes hardware false sharing),
//   page     -- one page apart (fixes SVM false sharing too).
//
// On the hardware-coherent platforms the jump happens between packed and
// line; on SVM, line-spacing alone fixes nothing, because the coherence
// unit is the page -- the granularity interaction at the heart of the
// paper.
#include "runtime/shared.hpp"

#include <cstdio>

using namespace rsvm;

namespace {

Cycles runTrial(PlatformKind kind, std::size_t stride_words) {
  constexpr int kProcs = 8;
  constexpr int kWrites = 400;
  auto plat = Platform::create(kind, kProcs);
  SharedArray<std::uint64_t> counters(*plat, kProcs * stride_words,
                                      HomePolicy::node(0));
  const int bar = plat->makeBarrier();
  RunStats rs = plat->run([&](Ctx& c) {
    const std::size_t slot = static_cast<std::size_t>(c.id()) * stride_words;
    for (int i = 0; i < kWrites; ++i) {
      counters.update(c, slot, [](std::uint64_t v) { return v + 1; });
      c.compute(50);  // some private work between updates
      if (i % 100 == 99) c.barrier(bar);  // periodic synchronization
    }
  });
  return rs.exec_cycles;
}

}  // namespace

int main() {
  std::printf("%-10s %14s %14s %14s\n", "platform", "packed", "line(64B)",
              "page(4KB)");
  for (PlatformKind kind :
       {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA}) {
    const Cycles packed = runTrial(kind, 1);
    const Cycles line = runTrial(kind, 8);
    const Cycles page = runTrial(kind, 512);
    std::printf("%-10s %14llu %14llu %14llu\n", platformName(kind),
                static_cast<unsigned long long>(packed),
                static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(page));
  }
  std::printf("\nLine spacing rescues the hardware platforms; only page\n"
              "spacing rescues SVM -- padding must match the coherence\n"
              "granularity (paper, section 3).\n");
  return 0;
}
