// Fiber context-switch backends are a host-side choice: the assembly
// switcher (syscall-free, default on x86-64/aarch64) and the portable
// ucontext fallback run the same fiber bodies at the same points, so
// simulated results are bit-identical -- only host speed differs
// (DESIGN.md, "Fiber switching & stack pooling").
//
//   $ ./example_fiber_backends   # exits nonzero if the contract breaks
//
// This program runs the quickstart's near-neighbor kernel on all four
// platforms under each compiled-in backend (Fiber::setDefaultBackend,
// the same switch the bench binaries expose as --fiber=) and compares
// every simulated observable. It also shows the two host-side effects
// worth knowing about: raw switch throughput per backend, and the
// thread-local stack pool handing one run's fiber stacks to the next
// (Fiber::stackPoolStats).
#include "core/app.hpp"
#include "runtime/shared.hpp"
#include "sim/fiber.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace rsvm;

namespace {

constexpr int kProcs = 8;
constexpr std::size_t kN = 1 << 14;
constexpr int kSweeps = 8;

struct Observed {
  Cycles exec = 0;
  Cycles buckets[kNumBuckets] = {};
  std::uint64_t reads = 0, writes = 0, l1 = 0, faults = 0;
  double host_ms = 0.0;

  bool operator==(const Observed& o) const {
    if (exec != o.exec || reads != o.reads || writes != o.writes ||
        l1 != o.l1 || faults != o.faults) {
      return false;
    }
    return std::equal(buckets, buckets + kNumBuckets, o.buckets);
  }
};

/// The quickstart kernel: banded near-neighbor smoothing, one barrier
/// per sweep -- enough yields (faults, barriers, quantum expiries) that
/// a switcher bug would change the interleaving and thus the cycles.
Observed runKernel(PlatformKind kind) {
  auto plat = Platform::create(kind, kProcs);
  SharedArray<double> a(*plat, kN, HomePolicy::blocked(kProcs));
  SharedArray<double> b(*plat, kN, HomePolicy::blocked(kProcs));
  for (std::size_t i = 0; i < kN; ++i) {
    a.raw(i) = static_cast<double>(i % 97);
  }
  const int bar = plat->makeBarrier();
  RunStats rs = plat->run([&](Ctx& c) {
    const std::size_t lo = static_cast<std::size_t>(c.id()) * kN / kProcs;
    const std::size_t hi = lo + kN / kProcs;
    SharedArray<double>* src = &a;
    SharedArray<double>* dst = &b;
    for (int s = 0; s < kSweeps; ++s) {
      for (std::size_t i = std::max<std::size_t>(lo, 1);
           i < std::min(hi, kN - 1); ++i) {
        dst->set(c, i,
                 (src->get(c, i - 1) + src->get(c, i) + src->get(c, i + 1)) /
                     3.0);
        c.compute(3);
      }
      c.barrier(bar);
      std::swap(src, dst);
    }
  });
  Observed o;
  o.exec = rs.exec_cycles;
  for (int bkt = 0; bkt < kNumBuckets; ++bkt) {
    o.buckets[bkt] = rs.bucketTotal(static_cast<Bucket>(bkt));
  }
  o.reads = rs.sum(&ProcStats::reads);
  o.writes = rs.sum(&ProcStats::writes);
  o.l1 = rs.sum(&ProcStats::l1_misses);
  o.faults = rs.sum(&ProcStats::page_faults);
  o.host_ms = rs.host_wall_ms;
  return o;
}

double switchesPerSec(Fiber::Backend backend) {
  if (Fiber::setDefaultBackend(backend) != backend) return 0.0;
  constexpr int kRounds = 50'000;
  Fiber f([] {
    for (int i = 0; i < kRounds; ++i) Fiber::yieldToScheduler();
  });
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRounds; ++i) f.resume();
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  f.resume();  // let the body finish
  return s > 0.0 ? 2.0 * kRounds / s : 0.0;
}

}  // namespace

int main() {
  const Fiber::Backend build_default = Fiber::defaultBackend();
  std::printf("build default backend: %s (asm %s)\n\n",
              Fiber::backendName(build_default),
              Fiber::asmAvailable() ? "available" : "not compiled in");

  // 1. Same simulation, each backend, every platform: the simulated
  //    observables must match exactly.
  int divergences = 0;
  for (PlatformKind kind : {PlatformKind::SVM, PlatformKind::NUMA,
                            PlatformKind::SMP, PlatformKind::FGS}) {
    Fiber::setDefaultBackend(Fiber::Backend::Ucontext);
    const Observed uc = runKernel(kind);
    Observed as = uc;
    if (Fiber::asmAvailable()) {
      Fiber::setDefaultBackend(Fiber::Backend::Asm);
      as = runKernel(kind);
    }
    Fiber::setDefaultBackend(build_default);
    const bool same = as == uc;
    if (!same) ++divergences;
    std::printf("%-5s exec %12llu cycles | host ms asm/ucontext %6.2f/%6.2f | %s\n",
                platformName(kind),
                static_cast<unsigned long long>(uc.exec), as.host_ms,
                uc.host_ms, same ? "identical" : "DIVERGED");
  }

  // 2. Raw switch throughput: what the assembly stub actually buys.
  const double uc_sps = switchesPerSec(Fiber::Backend::Ucontext);
  const double asm_sps = switchesPerSec(Fiber::Backend::Asm);
  Fiber::setDefaultBackend(build_default);
  std::printf("\nswitch throughput: ucontext %.2fM/s", uc_sps / 1e6);
  if (asm_sps > 0.0) {
    std::printf(", asm %.2fM/s (%.1fx)", asm_sps / 1e6, asm_sps / uc_sps);
  }
  std::printf("\n");

  // 3. Stack pooling: the second engine on this thread reuses the
  //    first one's stacks instead of allocating.
  Fiber::drainStackPool();
  const auto s0 = Fiber::stackPoolStats();
  runKernel(PlatformKind::SMP);
  runKernel(PlatformKind::SMP);
  const auto s1 = Fiber::stackPoolStats();
  const std::uint64_t allocated = s1.allocated - s0.allocated;
  const std::uint64_t reused = s1.reused - s0.reused;
  std::printf("stack pool over two runs: %llu allocated, %llu reused\n",
              static_cast<unsigned long long>(allocated),
              static_cast<unsigned long long>(reused));
  const bool pool_ok = allocated == kProcs && reused >= kProcs;

  if (divergences > 0 || !pool_ok) {
    std::fprintf(stderr, "FAILED: %d divergent platform(s), pool %s\n",
                 divergences, pool_ok ? "ok" : "did not reuse");
    return EXIT_FAILURE;
  }
  std::printf("\nall platforms bit-identical across fiber backends\n");
  return 0;
}
