// Race-checking session: attach the happens-before checker to a run,
// the correctness companion to perf_debug's performance diagnosis.
//
// Three acts:
//   1. a deliberately buggy micro-app (unsynchronized counter) is
//      flagged, with the nearest sync events to look behind;
//   2. a word-disjoint neighbor pattern is diagnosed as false sharing,
//      quantified per allocation -- the paper's P/A target;
//   3. a real application (Ocean) runs under the checker AND the trace
//      recorder at once (teeHooks) and comes back clean, at identical
//      simulated cost to an untraced run.
//
//   $ ./example_race_check
#include "check/race_checker.hpp"
#include "core/experiment.hpp"
#include "runtime/shared.hpp"

#include <cstdio>

using namespace rsvm;

int main() {
  // -- 1: an unsynchronized counter, caught --------------------------
  {
    auto plat = Platform::create(PlatformKind::SVM, 4);
    RaceChecker chk(*plat);
    plat->trace = chk.hook();
    Shared<long> counter(*plat, HomePolicy::node(0));
    counter.raw() = 0;
    plat->run([&](Ctx& c) {
      for (int i = 0; i < 4; ++i) {
        counter.update(c, [](long v) { return v + 1; });  // no lock!
      }
    });
    std::printf("== buggy counter on SVM/4p ==\n%s\n",
                chk.report().summary().c_str());
  }

  // -- 2: false sharing, quantified ----------------------------------
  {
    auto plat = Platform::create(PlatformKind::SMP, 4);
    RaceChecker chk(*plat);
    plat->trace = chk.hook();
    SharedArray<long> slots(*plat, 512, HomePolicy::node(0));
    for (std::size_t i = 0; i < slots.size(); ++i) slots.raw(i) = 0;
    plat->run([&](Ctx& c) {
      const auto me = static_cast<std::size_t>(c.id());
      for (int i = 0; i < 64; ++i) slots.set(c, me, i);  // packed slots
    });
    std::printf("== per-processor slots packed into one line (SMP) ==\n%s\n",
                chk.report().summary().c_str());
  }

  // -- 3: a real app, clean, at zero simulated overhead --------------
  registerAllApps();
  const AppDesc* ocean = Registry::instance().find("ocean");
  Cycles untraced = 0;
  {
    auto plat = Platform::create(PlatformKind::SVM, 4);
    untraced = ocean->original().run(*plat, ocean->tiny).stats.exec_cycles;
  }
  auto plat = Platform::create(PlatformKind::SVM, 4);
  TraceRecorder rec;
  RaceChecker chk(*plat);
  plat->trace = teeHooks(rec.hook(), chk.hook());
  const AppResult r = ocean->original().run(*plat, ocean->tiny);
  const RaceReport report = chk.report();
  std::printf("== ocean/orig on SVM/4p ==\n%s", report.summary().c_str());
  std::printf("clean: %s; %llu cycles traced vs %llu untraced (%s)\n",
              report.clean() ? "yes" : "NO",
              static_cast<unsigned long long>(r.stats.exec_cycles),
              static_cast<unsigned long long>(untraced),
              r.stats.exec_cycles == untraced ? "identical" : "DRIFT");
  std::printf("recorder saw %zu page faults alongside the checker\n",
              rec.count(TraceEvent::Kind::PageFault));
  return report.clean() && r.stats.exec_cycles == untraced ? 0 : 1;
}
