// Synchronization-cost study: the Raytrace lesson distilled. A parallel
// "analytics" loop tallies events into global counters. Three designs:
//
//   global-lock  -- one lock-protected global counter pair, updated per
//                   item (the SPLASH-2 Raytrace statistics pattern),
//   batched      -- same lock, but updated once per 64 items,
//   per-proc     -- per-processor counters on private pages, merged once
//                   at the end (the paper's fix).
//
// On hardware coherence all three are close; on SVM the per-item global
// lock is catastrophic because every critical section is dilated by a
// page fault on the counter page.
#include "runtime/shared.hpp"

#include <cstdio>

using namespace rsvm;

namespace {

enum class Design { GlobalLock, Batched, PerProc };

Cycles runTrial(PlatformKind kind, Design d) {
  constexpr int kProcs = 8;
  constexpr int kItems = 300;  // per processor
  auto plat = Platform::create(kind, kProcs);
  SharedArray<std::uint64_t> global(*plat, 2, HomePolicy::node(0));
  SharedArray<std::uint64_t> slots(*plat, kProcs * 512,
                                   HomePolicy::roundRobin(kProcs), 4096);
  const int lk = plat->makeLock();
  const int bar = plat->makeBarrier();
  RunStats rs = plat->run([&](Ctx& c) {
    std::uint64_t pending = 0;
    for (int i = 0; i < kItems; ++i) {
      c.compute(400);  // the actual work per item
      switch (d) {
        case Design::GlobalLock:
          c.lock(lk);
          global.update(c, 0, [](std::uint64_t v) { return v + 1; });
          c.unlock(lk);
          break;
        case Design::Batched:
          if (++pending == 64 || i == kItems - 1) {
            c.lock(lk);
            global.update(c, 0,
                          [pending](std::uint64_t v) { return v + pending; });
            c.unlock(lk);
            pending = 0;
          }
          break;
        case Design::PerProc:
          slots.update(c, static_cast<std::size_t>(c.id()) * 512,
                       [](std::uint64_t v) { return v + 1; });
          break;
      }
    }
    c.barrier(bar);
    if (d == Design::PerProc && c.id() == 0) {
      std::uint64_t total = 0;
      for (int p = 0; p < kProcs; ++p) {
        total += slots.get(c, static_cast<std::size_t>(p) * 512);
      }
      global.set(c, 0, total);
    }
  });
  if (global.raw(0) != static_cast<std::uint64_t>(kProcs) * kItems) {
    std::printf("BUG: lost updates!\n");
  }
  return rs.exec_cycles;
}

}  // namespace

int main() {
  std::printf("%-10s %14s %14s %14s\n", "platform", "global-lock", "batched",
              "per-proc");
  for (PlatformKind kind :
       {PlatformKind::SVM, PlatformKind::SMP, PlatformKind::NUMA}) {
    std::printf("%-10s %14llu %14llu %14llu\n", platformName(kind),
                static_cast<unsigned long long>(
                    runTrial(kind, Design::GlobalLock)),
                static_cast<unsigned long long>(runTrial(kind, Design::Batched)),
                static_cast<unsigned long long>(runTrial(kind, Design::PerProc)));
  }
  std::printf("\n\"Using locks frequently for non-critical aspects like\n"
              "statistics gathering is very dangerous [on SVM] even though\n"
              "it doesn't matter on hardware cache-coherent machines.\"\n"
              "(paper, section 4.2.3)\n");
  return 0;
}
