// The discrete-event engine. One fiber per simulated processor; the engine
// always resumes the runnable processor with the smallest virtual clock,
// which (with a drift-bounding quantum) keeps simulated time approximately
// globally ordered while letting application code run at native speed.
//
// Two schedulers share this interface (DESIGN.md, "Parallel engine"):
//
//  * threads == 1 (default): the classic single-threaded scheduler. All
//    methods are called either from the host thread (run/collect) or from
//    inside a processor fiber; runs are fully deterministic.
//  * threads > 1: a conservative parallel scheduler. Simulated processors
//    run concurrently on T host worker threads, but every interaction
//    with shared simulated state happens under a commit token that is
//    granted in exactly the order the sequential scheduler would have
//    resumed the processors, so all simulated results are bit-identical
//    to threads == 1. Platforms opt in via Platform::shardParallelSafe().
//
// Distinct Engine instances are fully isolated, so independent
// simulations can also run concurrently on different host threads.
#pragma once

#include "sim/fiber.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm {

namespace detail {
/// The simulated processor whose fiber is executing on the calling host
/// thread (-1 on a scheduler/host thread). Thread-local so the parallel
/// scheduler's workers each see their own running processor; with one
/// thread it behaves exactly like the old Engine::current_ member.
extern thread_local ProcId t_current_proc;
}  // namespace detail

/// Thrown by the watchdog (see Engine::setWatchdog) when a run exceeds
/// its cycle or host-time budget. Distinct from the deadlock
/// runtime_error so sweeps can classify the point as a timeout; carries
/// the same rich per-processor dump (state, blocked-on bucket, clocks).
class EngineWatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  struct Config {
    int nprocs = 16;
    /// Maximum cycles a processor may advance past the globally minimal
    /// clock before yielding, bounding clock drift (and thus the error of
    /// the FIFO resource-contention approximation).
    Cycles quantum = 10'000;
    /// Watchdog: abort the run with EngineWatchdogError once any
    /// processor's clock passes this (0 = no limit). Converts livelock --
    /// which the deadlock detector cannot see because everyone stays
    /// runnable -- into a diagnostic.
    Cycles max_cycles = 0;
    /// Watchdog: host wall-clock budget for one run() in milliseconds
    /// (0 = no limit). Checked monotonically on every scheduling
    /// decision, under either scheduler.
    double max_host_ms = 0.0;
    /// Host worker threads for one run (see setThreads). 1 = the classic
    /// sequential scheduler.
    int threads = 1;
  };

  explicit Engine(const Config& cfg);

  /// Run `body(p)` on every simulated processor to completion. Throws if
  /// the system deadlocks (a processor blocks and is never woken).
  void run(const std::function<void(ProcId)>& body);

  /// Host worker threads for the next run(). Values above nprocs are
  /// clamped at run time; 1 (or a single-processor run) selects the
  /// sequential scheduler unchanged. Must not be called during run().
  void setThreads(int t) { cfg_.threads = t < 1 ? 1 : t; }
  [[nodiscard]] int threads() const { return cfg_.threads; }

  // ---- fiber-side API (must be called from inside a processor fiber) ----

  /// The processor whose fiber is currently executing on this host thread.
  [[nodiscard]] ProcId self() const { return detail::t_current_proc; }

  [[nodiscard]] Cycles now(ProcId p) const {
    return procs_[static_cast<std::size_t>(p)].clock;
  }
  [[nodiscard]] Cycles selfNow() const { return now(self()); }

  /// Advance the current processor's clock by `dt`, charged to `b`.
  /// Yields if the drift quantum is exceeded.
  void advance(Cycles dt, Bucket b);

  /// Would the current processor still be strictly inside its drift
  /// quantum after advancing `dt` more cycles? Used by the access fast
  /// path (runtime/platform.hpp) to batch cycles only while it can prove
  /// no advance() in the batch would have yielded: a batched flush then
  /// lands at exactly the clocks and yield points of per-access charging.
  [[nodiscard]] bool fitsInQuantum(Cycles dt) const {
    return procs_[static_cast<std::size_t>(self())].since_yield + dt <
           cfg_.quantum;
  }

  /// Stable pointer to processor `p`'s since-last-yield cycle count (the
  /// procs_ array is sized once in the constructor and never reallocates).
  /// The access fast path reads the quantum check through this pointer
  /// instead of paying two vector indexings per access; combined with
  /// quantum(), `*sinceYieldPtr(p) + dt < quantum()` is fitsInQuantum(dt)
  /// whenever p is the running processor.
  [[nodiscard]] const Cycles* sinceYieldPtr(ProcId p) const {
    return &procs_[static_cast<std::size_t>(p)].since_yield;
  }
  [[nodiscard]] Cycles quantum() const { return cfg_.quantum; }

  /// Advance the current processor's clock to at least `t`; the waited
  /// delta is charged to `b`. Always yields (these are protocol events
  /// that need approximate global ordering).
  void stallUntil(Cycles t, Bucket b);

  /// Voluntarily yield at the current clock.
  void yieldNow();

  /// Block the current fiber until another processor calls wake(). The
  /// blocked duration is charged to `b` (minus any overlapped handler
  /// work, which goes to Bucket::Handler).
  void block(Bucket b);

  /// Wake blocked processor `p`; its clock becomes max(clock, t).
  void wake(ProcId p, Cycles t);

  /// Account protocol-handler work performed at node `p` on behalf of
  /// another node (e.g. serving a page, applying a diff). The cycles are
  /// absorbed into p's clock at its next advance, or overlapped with its
  /// wait time if it is blocked.
  void chargeHandler(ProcId p, Cycles dt);

  /// Parallel scheduler only (a cheap no-op otherwise): order the calling
  /// fiber's current segment into the global commit order before it
  /// touches any simulated state shared across processors. On return the
  /// caller holds the run's commit token: every segment the sequential
  /// scheduler would have run before this one has fully completed, and no
  /// other processor touches shared state until this segment ends.
  /// Platforms call this at every cross-processor protocol entry point
  /// (page faults, lock/barrier operations); the engine calls it from
  /// stallUntil/block/wake/chargeHandler itself.
  void shardFence();

  /// Parallel scheduler only (cheap no-ops otherwise): bracket a protocol
  /// operation that touches shared simulated state *after* an internal
  /// yield point (stallUntil, quantum-expiry advance, block). A yield
  /// normally ends the segment and lets the continuation run ahead
  /// uncommitted; inside a critical scope the continuation instead waits
  /// for its committed turn, because the code after the yield goes
  /// straight back to shared state (network links, handler occupancy,
  /// barrier bookkeeping) without another shardFence(). Nest freely.
  void shardCritEnter();
  void shardCritExit();
  class ShardCritScope {
   public:
    explicit ShardCritScope(Engine& e) : eng_(e) { eng_.shardCritEnter(); }
    ~ShardCritScope() { eng_.shardCritExit(); }
    ShardCritScope(const ShardCritScope&) = delete;
    ShardCritScope& operator=(const ShardCritScope&) = delete;

   private:
    Engine& eng_;
  };

  ProcStats& stats(ProcId p) { return procs_[static_cast<std::size_t>(p)].stats; }
  const ProcStats& stats(ProcId p) const {
    return procs_[static_cast<std::size_t>(p)].stats;
  }

  [[nodiscard]] int nprocs() const { return cfg_.nprocs; }

  /// Arm (or re-arm) the watchdog before run(): 0 disables a limit. The
  /// cycle limit trips when any processor's clock passes it; the host
  /// limit bounds wall-clock time spent inside run(). Both convert a
  /// livelocked or runaway simulation into an EngineWatchdogError with
  /// the full per-processor dump instead of a hang.
  void setWatchdog(Cycles max_cycles, double max_host_ms) {
    cfg_.max_cycles = max_cycles;
    cfg_.max_host_ms = max_host_ms;
  }

  /// Gather results after run() returns.
  [[nodiscard]] RunStats collect() const;

 private:
  enum class ProcState { Ready, Running, Blocked, Finished };

  /// How a fiber handed control back to its hosting worker (parallel
  /// scheduler). The fiber records the reason; the worker -- which is the
  /// only thread that knows the context switch has fully completed --
  /// publishes the resulting state under the scheduler mutex, so no other
  /// worker can resume a fiber that is still switching out.
  enum class Susp { None, Gate, Yield, Block };

  struct HeapEntry {
    Cycles time;
    ProcId proc;
    std::uint64_t seq;  // tie-break for determinism
    bool before(const HeapEntry& o) const {
      // FIFO among equal times so a yield rotates through ready procs.
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  struct Proc {
    Cycles clock = 0;
    Cycles since_yield = 0;      // cycles advanced since last yield
    Cycles pending_handler = 0;  // handler work not yet absorbed
    Cycles block_start = 0;
    Bucket block_bucket = Bucket::Compute;
    ProcState state = ProcState::Ready;
    ProcStats stats;
    std::unique_ptr<Fiber> fiber;

    // ---- parallel-scheduler state (untouched when threads == 1) ----
    // A processor's scheduling key: the (time, seq) the sequential
    // scheduler would pop it at. Live from the push that created it until
    // the segment it started ends -- a committed segment keeps its key
    // live, which is what makes the commit token exclusive.
    HeapEntry pkey{};
    Cycles mailbox = 0;     // handler charges while a segment is in flight
    bool key_live = false;
    bool committed = false;       // current segment holds the commit token
    bool gate_wait = false;       // suspended at shardFence, wants the token
    bool finish_wait = false;     // fiber finished, awaiting its commit turn
    bool resume_committed = false;  // block-woken: may only resume committed
    bool seg_absorbed = false;    // segment passed an absorbHandler point
    int crit_depth = 0;  // open ShardCritScopes: yields resume committed
    Susp pending_susp = Susp::None;
  };

  void scheduleLoop();
  void absorbHandler(Proc& p);
  void yieldCurrent();  // reinsert current at its clock and switch out
  [[noreturn]] void throwDeadlock() const;
  [[noreturn]] void throwWatchdog(Cycles t) const;
  [[nodiscard]] std::string procsDump() const;

  [[nodiscard]] bool watchdogEnabled() const {
    return cfg_.max_cycles > 0 || cfg_.max_host_ms > 0.0;
  }
  /// Has a budget been exceeded at simulated time `t`? Sets the sticky
  /// flag but never throws: it is also called from fiber context (to
  /// suppress yieldCurrent's fast-resume), where unwinding would tear
  /// through the fiber trampoline. Only the host side -- scheduleLoop or
  /// a parallel worker -- turns the flag into an exception. The host
  /// clock is read monotonically on every call: parallel workers make
  /// scheduling decisions concurrently, so an iteration-sampled check
  /// (as this once was) would under-sample there.
  bool watchdogTripped(Cycles t);

  // Flat binary min-heap ordered by (time, seq). seq is unique, so the
  // pop sequence is a total order identical to the std::priority_queue
  // this replaces, independent of internal layout. Hand-rolled so the
  // backing storage is reserved once (no per-run allocation churn) and
  // so yieldCurrent can see the minimum without popping.
  void heapPush(const HeapEntry& e);
  void heapPop();

  // ---- parallel scheduler (engine.cpp, "parallel scheduler" section) ----
  void runParallel(const std::function<void(ProcId)>& body);
  void workerLoop();
  void parYield(Proc& pr, ProcId p);
  void drainMailbox(Proc& pr);
  void finalizeProc(Proc& pr);  // commit-ordered finish (mu_ held)
  [[nodiscard]] ProcId minLiveKeyProc() const;   // -1 if no live key
  [[nodiscard]] bool isMinLiveKey(ProcId p) const;

  Config cfg_;
  double run_wall_ms_ = 0.0;  ///< host time spent inside scheduleLoop
  std::vector<Proc> procs_;
  std::vector<HeapEntry> ready_;
  std::uint64_t seq_ = 0;
  int unfinished_ = 0;
  bool watch_fired_ = false;        ///< sticky: a watchdog budget tripped
  std::chrono::steady_clock::time_point watch_t0_;  ///< set by run()

  // ---- parallel scheduler state ----
  // One mutex guards every scheduling decision: key scans, token grant
  // and release, state publication, mailbox routing. Fibers run their
  // segments outside it; they only take it at fences and segment ends.
  std::mutex mu_;
  std::condition_variable cv_;
  bool par_active_ = false;   ///< set before workers start, cleared at join
  ProcId token_holder_ = -1;  ///< processor whose segment is committed
  int live_keys_ = 0;
  int par_error_ = 0;  ///< 0 none, 1 deadlock, 2 watchdog (thrown post-join)
  Cycles par_error_time_ = 0;
};

}  // namespace rsvm
