// The discrete-event engine. One fiber per simulated processor; the engine
// always resumes the runnable processor with the smallest virtual clock,
// which (with a drift-bounding quantum) keeps simulated time approximately
// globally ordered while letting application code run at native speed.
//
// All methods are called either from the host thread (run/collect) or from
// inside a processor fiber (advance/stall/block/...). The engine is
// single-threaded and deterministic. It holds no global state: distinct
// Engine instances are fully isolated, so independent simulations can run
// concurrently on different host threads -- but each individual engine is
// confined to the one host thread that calls run().
#pragma once

#include "sim/fiber.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <functional>
#include <memory>
#include <vector>

namespace rsvm {

class Engine {
 public:
  struct Config {
    int nprocs = 16;
    /// Maximum cycles a processor may advance past the globally minimal
    /// clock before yielding, bounding clock drift (and thus the error of
    /// the FIFO resource-contention approximation).
    Cycles quantum = 10'000;
  };

  explicit Engine(const Config& cfg);

  /// Run `body(p)` on every simulated processor to completion. Throws if
  /// the system deadlocks (a processor blocks and is never woken).
  void run(const std::function<void(ProcId)>& body);

  // ---- fiber-side API (must be called from inside a processor fiber) ----

  /// The processor whose fiber is currently executing.
  [[nodiscard]] ProcId self() const { return current_; }

  [[nodiscard]] Cycles now(ProcId p) const {
    return procs_[static_cast<std::size_t>(p)].clock;
  }
  [[nodiscard]] Cycles selfNow() const { return now(current_); }

  /// Advance the current processor's clock by `dt`, charged to `b`.
  /// Yields if the drift quantum is exceeded.
  void advance(Cycles dt, Bucket b);

  /// Would the current processor still be strictly inside its drift
  /// quantum after advancing `dt` more cycles? Used by the access fast
  /// path (runtime/platform.hpp) to batch cycles only while it can prove
  /// no advance() in the batch would have yielded: a batched flush then
  /// lands at exactly the clocks and yield points of per-access charging.
  [[nodiscard]] bool fitsInQuantum(Cycles dt) const {
    return procs_[static_cast<std::size_t>(current_)].since_yield + dt <
           cfg_.quantum;
  }

  /// Stable pointer to processor `p`'s since-last-yield cycle count (the
  /// procs_ array is sized once in the constructor and never reallocates).
  /// The access fast path reads the quantum check through this pointer
  /// instead of paying two vector indexings per access; combined with
  /// quantum(), `*sinceYieldPtr(p) + dt < quantum()` is fitsInQuantum(dt)
  /// whenever p is the running processor.
  [[nodiscard]] const Cycles* sinceYieldPtr(ProcId p) const {
    return &procs_[static_cast<std::size_t>(p)].since_yield;
  }
  [[nodiscard]] Cycles quantum() const { return cfg_.quantum; }

  /// Advance the current processor's clock to at least `t`; the waited
  /// delta is charged to `b`. Always yields (these are protocol events
  /// that need approximate global ordering).
  void stallUntil(Cycles t, Bucket b);

  /// Voluntarily yield at the current clock.
  void yieldNow();

  /// Block the current fiber until another processor calls wake(). The
  /// blocked duration is charged to `b` (minus any overlapped handler
  /// work, which goes to Bucket::Handler).
  void block(Bucket b);

  /// Wake blocked processor `p`; its clock becomes max(clock, t).
  void wake(ProcId p, Cycles t);

  /// Account protocol-handler work performed at node `p` on behalf of
  /// another node (e.g. serving a page, applying a diff). The cycles are
  /// absorbed into p's clock at its next advance, or overlapped with its
  /// wait time if it is blocked.
  void chargeHandler(ProcId p, Cycles dt);

  ProcStats& stats(ProcId p) { return procs_[static_cast<std::size_t>(p)].stats; }
  const ProcStats& stats(ProcId p) const {
    return procs_[static_cast<std::size_t>(p)].stats;
  }

  [[nodiscard]] int nprocs() const { return cfg_.nprocs; }

  /// Gather results after run() returns.
  [[nodiscard]] RunStats collect() const;

 private:
  enum class ProcState { Ready, Running, Blocked, Finished };

  struct Proc {
    Cycles clock = 0;
    Cycles since_yield = 0;      // cycles advanced since last yield
    Cycles pending_handler = 0;  // handler work not yet absorbed
    Cycles block_start = 0;
    Bucket block_bucket = Bucket::Compute;
    ProcState state = ProcState::Ready;
    ProcStats stats;
    std::unique_ptr<Fiber> fiber;
  };

  void scheduleLoop();
  void absorbHandler(Proc& p);
  void yieldCurrent();  // reinsert current at its clock and switch out
  [[noreturn]] void throwDeadlock() const;

  struct HeapEntry {
    Cycles time;
    ProcId proc;
    std::uint64_t seq;  // tie-break for determinism
    bool before(const HeapEntry& o) const {
      // FIFO among equal times so a yield rotates through ready procs.
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  // Flat binary min-heap ordered by (time, seq). seq is unique, so the
  // pop sequence is a total order identical to the std::priority_queue
  // this replaces, independent of internal layout. Hand-rolled so the
  // backing storage is reserved once (no per-run allocation churn) and
  // so yieldCurrent can see the minimum without popping.
  void heapPush(const HeapEntry& e);
  void heapPop();

  Config cfg_;
  double run_wall_ms_ = 0.0;  ///< host time spent inside scheduleLoop
  std::vector<Proc> procs_;
  std::vector<HeapEntry> ready_;
  ProcId current_ = -1;
  std::uint64_t seq_ = 0;
  int unfinished_ = 0;
};

}  // namespace rsvm
