// The discrete-event engine. One fiber per simulated processor; the engine
// always resumes the runnable processor with the smallest virtual clock,
// which (with a drift-bounding quantum) keeps simulated time approximately
// globally ordered while letting application code run at native speed.
//
// All methods are called either from the host thread (run/collect) or from
// inside a processor fiber (advance/stall/block/...). The engine is
// single-threaded and deterministic. It holds no global state: distinct
// Engine instances are fully isolated, so independent simulations can run
// concurrently on different host threads -- but each individual engine is
// confined to the one host thread that calls run().
#pragma once

#include "sim/fiber.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rsvm {

/// Thrown by the watchdog (see Engine::setWatchdog) when a run exceeds
/// its cycle or host-time budget. Distinct from the deadlock
/// runtime_error so sweeps can classify the point as a timeout; carries
/// the same rich per-processor dump (state, blocked-on bucket, clocks).
class EngineWatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Engine {
 public:
  struct Config {
    int nprocs = 16;
    /// Maximum cycles a processor may advance past the globally minimal
    /// clock before yielding, bounding clock drift (and thus the error of
    /// the FIFO resource-contention approximation).
    Cycles quantum = 10'000;
    /// Watchdog: abort the run with EngineWatchdogError once any
    /// processor's clock passes this (0 = no limit). Converts livelock --
    /// which the deadlock detector cannot see because everyone stays
    /// runnable -- into a diagnostic.
    Cycles max_cycles = 0;
    /// Watchdog: host wall-clock budget for one run() in milliseconds
    /// (0 = no limit). Sampled every few hundred scheduler iterations.
    double max_host_ms = 0.0;
  };

  explicit Engine(const Config& cfg);

  /// Run `body(p)` on every simulated processor to completion. Throws if
  /// the system deadlocks (a processor blocks and is never woken).
  void run(const std::function<void(ProcId)>& body);

  // ---- fiber-side API (must be called from inside a processor fiber) ----

  /// The processor whose fiber is currently executing.
  [[nodiscard]] ProcId self() const { return current_; }

  [[nodiscard]] Cycles now(ProcId p) const {
    return procs_[static_cast<std::size_t>(p)].clock;
  }
  [[nodiscard]] Cycles selfNow() const { return now(current_); }

  /// Advance the current processor's clock by `dt`, charged to `b`.
  /// Yields if the drift quantum is exceeded.
  void advance(Cycles dt, Bucket b);

  /// Would the current processor still be strictly inside its drift
  /// quantum after advancing `dt` more cycles? Used by the access fast
  /// path (runtime/platform.hpp) to batch cycles only while it can prove
  /// no advance() in the batch would have yielded: a batched flush then
  /// lands at exactly the clocks and yield points of per-access charging.
  [[nodiscard]] bool fitsInQuantum(Cycles dt) const {
    return procs_[static_cast<std::size_t>(current_)].since_yield + dt <
           cfg_.quantum;
  }

  /// Stable pointer to processor `p`'s since-last-yield cycle count (the
  /// procs_ array is sized once in the constructor and never reallocates).
  /// The access fast path reads the quantum check through this pointer
  /// instead of paying two vector indexings per access; combined with
  /// quantum(), `*sinceYieldPtr(p) + dt < quantum()` is fitsInQuantum(dt)
  /// whenever p is the running processor.
  [[nodiscard]] const Cycles* sinceYieldPtr(ProcId p) const {
    return &procs_[static_cast<std::size_t>(p)].since_yield;
  }
  [[nodiscard]] Cycles quantum() const { return cfg_.quantum; }

  /// Advance the current processor's clock to at least `t`; the waited
  /// delta is charged to `b`. Always yields (these are protocol events
  /// that need approximate global ordering).
  void stallUntil(Cycles t, Bucket b);

  /// Voluntarily yield at the current clock.
  void yieldNow();

  /// Block the current fiber until another processor calls wake(). The
  /// blocked duration is charged to `b` (minus any overlapped handler
  /// work, which goes to Bucket::Handler).
  void block(Bucket b);

  /// Wake blocked processor `p`; its clock becomes max(clock, t).
  void wake(ProcId p, Cycles t);

  /// Account protocol-handler work performed at node `p` on behalf of
  /// another node (e.g. serving a page, applying a diff). The cycles are
  /// absorbed into p's clock at its next advance, or overlapped with its
  /// wait time if it is blocked.
  void chargeHandler(ProcId p, Cycles dt);

  ProcStats& stats(ProcId p) { return procs_[static_cast<std::size_t>(p)].stats; }
  const ProcStats& stats(ProcId p) const {
    return procs_[static_cast<std::size_t>(p)].stats;
  }

  [[nodiscard]] int nprocs() const { return cfg_.nprocs; }

  /// Arm (or re-arm) the watchdog before run(): 0 disables a limit. The
  /// cycle limit trips when any processor's clock passes it; the host
  /// limit bounds wall-clock time spent inside run(). Both convert a
  /// livelocked or runaway simulation into an EngineWatchdogError with
  /// the full per-processor dump instead of a hang.
  void setWatchdog(Cycles max_cycles, double max_host_ms) {
    cfg_.max_cycles = max_cycles;
    cfg_.max_host_ms = max_host_ms;
  }

  /// Gather results after run() returns.
  [[nodiscard]] RunStats collect() const;

 private:
  enum class ProcState { Ready, Running, Blocked, Finished };

  struct Proc {
    Cycles clock = 0;
    Cycles since_yield = 0;      // cycles advanced since last yield
    Cycles pending_handler = 0;  // handler work not yet absorbed
    Cycles block_start = 0;
    Bucket block_bucket = Bucket::Compute;
    ProcState state = ProcState::Ready;
    ProcStats stats;
    std::unique_ptr<Fiber> fiber;
  };

  void scheduleLoop();
  void absorbHandler(Proc& p);
  void yieldCurrent();  // reinsert current at its clock and switch out
  [[noreturn]] void throwDeadlock() const;
  [[noreturn]] void throwWatchdog(Cycles t) const;
  [[nodiscard]] std::string procsDump() const;

  [[nodiscard]] bool watchdogEnabled() const {
    return cfg_.max_cycles > 0 || cfg_.max_host_ms > 0.0;
  }
  /// Has a budget been exceeded at simulated time `t`? Sets the sticky
  /// flag but never throws: it is also called from fiber context (to
  /// suppress yieldCurrent's fast-resume), where unwinding would tear
  /// through the fiber trampoline. Only scheduleLoop -- host side --
  /// turns the flag into an exception.
  bool watchdogTripped(Cycles t);

  struct HeapEntry {
    Cycles time;
    ProcId proc;
    std::uint64_t seq;  // tie-break for determinism
    bool before(const HeapEntry& o) const {
      // FIFO among equal times so a yield rotates through ready procs.
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  // Flat binary min-heap ordered by (time, seq). seq is unique, so the
  // pop sequence is a total order identical to the std::priority_queue
  // this replaces, independent of internal layout. Hand-rolled so the
  // backing storage is reserved once (no per-run allocation churn) and
  // so yieldCurrent can see the minimum without popping.
  void heapPush(const HeapEntry& e);
  void heapPop();

  Config cfg_;
  double run_wall_ms_ = 0.0;  ///< host time spent inside scheduleLoop
  std::vector<Proc> procs_;
  std::vector<HeapEntry> ready_;
  ProcId current_ = -1;
  std::uint64_t seq_ = 0;
  int unfinished_ = 0;
  bool watch_fired_ = false;        ///< sticky: a watchdog budget tripped
  std::uint64_t watch_iter_ = 0;    ///< samples the host clock every 256
  std::chrono::steady_clock::time_point watch_t0_;  ///< set by run()
};

}  // namespace rsvm
