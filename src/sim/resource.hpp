// FIFO-occupancy resources: the contention model for buses, links, NICs,
// memory controllers and protocol handlers. A transaction arriving at time
// t begins service at max(t, free_at) and occupies the resource for its
// service time. Because the engine bounds clock drift between processors
// by a quantum, this approximation stays close to true FIFO order.
#pragma once

#include "sim/types.hpp"

#include <algorithm>

namespace rsvm {

class Resource {
 public:
  Resource() = default;

  /// Occupy the resource for `busy` cycles starting no earlier than `at`.
  /// Returns the completion time.
  Cycles acquire(Cycles at, Cycles busy) {
    const Cycles start = std::max(at, free_at_);
    free_at_ = start + busy;
    total_busy_ += busy;
    total_queue_ += start - at;
    ++transactions_;
    return free_at_;
  }

  /// Time at which a transaction arriving at `at` would begin service.
  [[nodiscard]] Cycles startTime(Cycles at) const {
    return std::max(at, free_at_);
  }

  [[nodiscard]] Cycles freeAt() const { return free_at_; }
  [[nodiscard]] Cycles totalBusy() const { return total_busy_; }
  [[nodiscard]] Cycles totalQueueing() const { return total_queue_; }
  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }

  void reset() { *this = Resource{}; }

 private:
  Cycles free_at_ = 0;
  Cycles total_busy_ = 0;
  Cycles total_queue_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace rsvm
