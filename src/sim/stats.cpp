#include "sim/stats.hpp"

#include <cinttypes>
#include <cstdio>

namespace rsvm {

std::string RunStats::breakdownTable() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-5s %12s %12s %12s %12s %12s %12s %12s\n",
                "proc", "Compute", "CacheStall", "DataWait", "LockWait",
                "BarrierWait", "Handler", "Total");
  out += line;
  for (int p = 0; p < nprocs(); ++p) {
    const ProcStats& s = procs[static_cast<std::size_t>(p)];
    std::snprintf(line, sizeof line,
                  "%-5d %12" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n",
                  p, s[Bucket::Compute], s[Bucket::CacheStall],
                  s[Bucket::DataWait], s[Bucket::LockWait],
                  s[Bucket::BarrierWait], s[Bucket::Handler], s.total());
    out += line;
  }
  return out;
}

}  // namespace rsvm
