#include "sim/fiber.hpp"

#include <ucontext.h>

#include <atomic>
#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>
#include <vector>

// ThreadSanitizer needs to be told about stack switches, or it sees one
// thread's shadow stack jump to unrelated addresses and reports garbage.
// Each Fiber owns a TSan fiber context; both switch directions announce
// the destination context just before the actual register switch.
#if defined(__SANITIZE_THREAD__)
#define RSVM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RSVM_TSAN_FIBERS 1
#endif
#endif
#if defined(RSVM_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace rsvm {

namespace {

thread_local Fiber* g_current = nullptr;

// ---------------------------------------------------------------------------
// Thread-local fiber-stack pool. One engine runs per host thread, so the
// pool needs no locks; a stack released by a finished engine is handed
// to the next engine created on the same thread, already mapped and
// faulted in. Stacks are not zeroed on reuse (well-defined programs
// never read uninitialized stack memory, and both backends behave
// identically), which is precisely what makes reuse cheap.
constexpr std::size_t kStackAlign = 64;

struct StackPool {
  struct Block {
    std::byte* p;
    std::size_t bytes;
  };
  // More idle stacks than one engine can own (kMaxProcs fibers) are
  // returned to the host allocator instead of being retained.
  static constexpr std::size_t kMaxPooled = 64;

  std::vector<Block> free;
  Fiber::StackPoolStats stats;

  ~StackPool() { drain(); }

  void drain() {
    for (const Block& b : free) {
      ::operator delete(b.p, std::align_val_t{kStackAlign});
    }
    free.clear();
  }

  std::byte* acquire(std::size_t bytes) {
    for (std::size_t i = free.size(); i-- > 0;) {
      if (free[i].bytes == bytes) {
        std::byte* p = free[i].p;
        free.erase(free.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats.reused;
        return p;
      }
    }
    ++stats.allocated;
    return static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{kStackAlign}));
  }

  void release(std::byte* p, std::size_t bytes) {
    if (free.size() < kMaxPooled) {
      free.push_back({p, bytes});
    } else {
      ::operator delete(p, std::align_val_t{kStackAlign});
    }
  }
};

thread_local StackPool g_stack_pool;

// Process-wide backend for new fibers. Relaxed is enough: sweep workers
// only read it, and benches/tests flip it between runs, never while a
// fiber of theirs is suspended.
std::atomic<Fiber::Backend> g_default_backend{
#if defined(RSVM_FIBER_UCONTEXT)
    Fiber::Backend::Ucontext
#else
    Fiber::Backend::Asm
#endif
};

}  // namespace

#if !defined(RSVM_FIBER_UCONTEXT)
// Assembly switcher (fiber_switch_<arch>.S). save_sp receives the
// outgoing context; restore_sp is a value previously written through
// save_sp, or a fresh frame seeded by initAsmContext below.
extern "C" void rsvm_ctx_switch(void** save_sp, void* restore_sp) noexcept;
extern "C" void rsvm_fiber_entry_thunk();
#endif

struct Fiber::UctxState {
  ucontext_t ctx{};
  ucontext_t caller{};
};

bool Fiber::asmAvailable() {
#if defined(RSVM_FIBER_UCONTEXT)
  return false;
#else
  return true;
#endif
}

Fiber::Backend Fiber::setDefaultBackend(Backend b) {
  if (b == Backend::Asm && !asmAvailable()) b = Backend::Ucontext;
  g_default_backend.store(b, std::memory_order_relaxed);
  return b;
}

Fiber::Backend Fiber::defaultBackend() {
  return g_default_backend.load(std::memory_order_relaxed);
}

const char* Fiber::backendName(Backend b) {
  return b == Backend::Asm ? "asm" : "ucontext";
}

Fiber::StackPoolStats Fiber::stackPoolStats() {
  StackPoolStats s = g_stack_pool.stats;
  s.pooled = g_stack_pool.free.size();
  return s;
}

void Fiber::drainStackPool() { g_stack_pool.drain(); }

Fiber::Fiber(Fn fn, std::size_t stack_bytes)
    : fn_(std::move(fn)),
      backend_(defaultBackend()),
      stack_bytes_(stack_bytes),
      stack_(g_stack_pool.acquire(stack_bytes)) {
#if defined(RSVM_FIBER_UCONTEXT)
  backend_ = Backend::Ucontext;  // the asm switcher was not compiled in
#endif
  if (backend_ == Backend::Asm) {
#if !defined(RSVM_FIBER_UCONTEXT)
    // Seed the top of the stack with the exact frame rsvm_ctx_switch
    // restores, so the first resume() is indistinguishable from any
    // later one: default FP control words, zeroed callee-saved
    // registers, and the entry thunk as the return address.
    std::byte* top = stack_ + stack_bytes_;
    top -= reinterpret_cast<std::uintptr_t>(top) & 15;  // 16-align
#if defined(__x86_64__)
    std::byte* sp = top - 64;
    std::memset(sp, 0, 64);
    const std::uint32_t mxcsr = 0x1F80u;  // all exceptions masked, RN
    const std::uint16_t fcw = 0x037Fu;    // x87 default control word
    std::memcpy(sp, &mxcsr, sizeof mxcsr);
    std::memcpy(sp + 4, &fcw, sizeof fcw);
    void* entry = reinterpret_cast<void*>(&rsvm_fiber_entry_thunk);
    std::memcpy(sp + 56, &entry, sizeof entry);
#elif defined(__aarch64__)
    std::byte* sp = top - 160;
    std::memset(sp, 0, 160);
    void* entry = reinterpret_cast<void*>(&rsvm_fiber_entry_thunk);
    std::memcpy(sp + 88, &entry, sizeof entry);  // the frame's x30 slot
#else
#error "asm fiber backend enabled for an architecture without a stub"
#endif
    sp_ = sp;
#endif  // !RSVM_FIBER_UCONTEXT
  } else {
    uctx_ = std::make_unique<UctxState>();
    if (getcontext(&uctx_->ctx) != 0) {
      throw std::runtime_error("Fiber: getcontext failed");
    }
    uctx_->ctx.uc_stack.ss_sp = stack_;
    uctx_->ctx.uc_stack.ss_size = stack_bytes_;
    uctx_->ctx.uc_link = nullptr;  // the trampoline never falls off the end
    makecontext(&uctx_->ctx,
                reinterpret_cast<void (*)()>(&Fiber::uctxTrampoline), 0);
  }
#if defined(RSVM_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // Fibers must run to completion before destruction; destroying a
  // suspended fiber would leak whatever its stack owns.
  assert(finished_ || !started_);
#if defined(RSVM_TSAN_FIBERS)
  __tsan_destroy_fiber(tsan_fiber_);
#endif
  g_stack_pool.release(stack_, stack_bytes_);
}

void Fiber::runEntry(Fiber* self) {
  assert(self != nullptr);
  self->fn_();
  self->finished_ = true;
  // Return to the scheduler for the last time.
  self->switchOutOfFiber();
  // Unreachable: a finished fiber is never resumed.
  assert(false);
}

void Fiber::uctxTrampoline() { runEntry(g_current); }

// Asm-backend first entry, reached from rsvm_fiber_entry_thunk (which
// the extern "C" shim below is called from). Never returns.
void fiberAsmEntry() { Fiber::runEntry(g_current); }

void Fiber::switchOutOfFiber() {
#if defined(RSVM_TSAN_FIBERS)
  __tsan_switch_to_fiber(tsan_caller_, 0);
#endif
#if !defined(RSVM_FIBER_UCONTEXT)
  if (backend_ == Backend::Asm) {
    rsvm_ctx_switch(&sp_, caller_sp_);
    return;
  }
#endif
  swapcontext(&uctx_->ctx, &uctx_->caller);
}

void Fiber::resume() {
  assert(!finished_);
  Fiber* prev = g_current;
  g_current = this;
  started_ = true;
#if defined(RSVM_TSAN_FIBERS)
  // The resumer may be a different thread than last time; re-snapshot its
  // TSan context on every resume so the fiber switches back correctly.
  tsan_caller_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#if !defined(RSVM_FIBER_UCONTEXT)
  if (backend_ == Backend::Asm) {
    rsvm_ctx_switch(&caller_sp_, sp_);
  } else {
    swapcontext(&uctx_->caller, &uctx_->ctx);
  }
#else
  swapcontext(&uctx_->caller, &uctx_->ctx);
#endif
  g_current = prev;
}

void Fiber::yieldToScheduler() {
  Fiber* self = g_current;
  assert(self != nullptr && "yieldToScheduler called outside any fiber");
  self->switchOutOfFiber();
}

Fiber* Fiber::current() { return g_current; }

}  // namespace rsvm

#if !defined(RSVM_FIBER_UCONTEXT)
extern "C" void rsvm_fiber_entry() { rsvm::fiberAsmEntry(); }
#endif
