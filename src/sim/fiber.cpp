#include "sim/fiber.hpp"

#include <cassert>
#include <stdexcept>

namespace rsvm {

namespace {
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber::Fiber(Fn fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = nullptr;  // trampoline never falls off the end
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // Fibers must run to completion before destruction; destroying a
  // suspended fiber would leak whatever its stack owns.
  assert(finished_ || !started_);
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  assert(self != nullptr);
  self->fn_();
  self->finished_ = true;
  // Return to the scheduler for the last time.
  swapcontext(&self->ctx_, &self->caller_);
  // Unreachable: a finished fiber is never resumed.
  assert(false);
}

void Fiber::resume() {
  assert(!finished_);
  Fiber* prev = g_current;
  g_current = this;
  started_ = true;
  swapcontext(&caller_, &ctx_);
  g_current = prev;
}

void Fiber::yieldToScheduler() {
  Fiber* self = g_current;
  assert(self != nullptr && "yieldToScheduler called outside any fiber");
  swapcontext(&self->ctx_, &self->caller_);
}

Fiber* Fiber::current() { return g_current; }

}  // namespace rsvm
