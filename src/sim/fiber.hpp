// Stackful cooperative fibers used to direct-execute application code on
// simulated processors.
//
// The "current fiber" is thread_local and resume() saves its caller's
// context per call, so independent simulations may run concurrently on
// distinct host threads, and the parallel engine scheduler may resume
// one fiber from different worker threads over its lifetime. The only
// confinement rule is per *resume*: each resume/yield round trip begins
// and ends on one host thread, and a fiber is never resumed by two
// threads at once (the engine's scheduler mutex enforces this).
//
// Two context-switch backends share this interface (DESIGN.md, "Fiber
// switching & stack pooling"):
//
//  * Backend::Asm -- a hand-written, syscall-free switch (one .S stub per
//    architecture, System V / AAPCS64 ABIs) that saves and restores only
//    the callee-saved registers and the stack pointer. This is the
//    default wherever a stub exists: glibc's swapcontext performs a
//    sigprocmask syscall pair on every switch, which dominates host time
//    on sync-heavy simulations.
//  * Backend::Ucontext -- the portable ucontext implementation, retained
//    as a fallback. Selected at configure time with
//    -DRSVM_FIBER_UCONTEXT=ON (and automatically on architectures with
//    no stub), or at runtime with setDefaultBackend for side-by-side
//    host-performance comparisons.
//
// Both backends run the same fiber bodies at the same points, so
// simulated results are bit-identical by construction; the golden
// cycle-count tests and the CI fiber-mode matrix enforce it.
//
// Fiber stacks come from a thread-local pool: an engine's stacks are
// returned on fiber destruction and reused by the next engine created on
// the same host thread, so a long bench process (dozens of SweepRunner
// points) allocates and page-faults each worker's stacks once instead of
// once per point. The pool is thread-local on purpose -- it follows the
// one-engine-per-thread confinement contract and therefore needs no
// locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace rsvm {

/// One stackful coroutine. resume() transfers control from the caller
/// (the scheduler) into the fiber; Fiber::yieldToScheduler() transfers
/// back. At most one thread may be inside resume() at a time.
class Fiber {
 public:
  using Fn = std::function<void()>;

  enum class Backend { Asm, Ucontext };

  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it yields or finishes. Must not be called on a
  /// finished fiber.
  void resume();

  /// Called from inside a running fiber: suspend and return control to
  /// whoever called resume().
  static void yieldToScheduler();

  /// The fiber currently executing on the calling host thread, or
  /// nullptr when the scheduler itself is running. Per-thread state:
  /// fibers of engines on other host threads are invisible here.
  static Fiber* current();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] Backend backend() const { return backend_; }

  /// Was the assembly switcher compiled in? False when the build forced
  /// -DRSVM_FIBER_UCONTEXT=ON or the target architecture has no stub.
  static bool asmAvailable();

  /// Process-wide backend for fibers created from now on. Asm silently
  /// degrades to Ucontext when no stub was compiled in; the returned
  /// value is the backend actually in effect. Call between runs, not
  /// while any fiber is suspended.
  static Backend setDefaultBackend(Backend b);
  static Backend defaultBackend();
  static const char* backendName(Backend b);

  // ---- stack pool (per host thread) ----

  struct StackPoolStats {
    std::uint64_t allocated = 0;  ///< stacks newly allocated on this thread
    std::uint64_t reused = 0;     ///< acquisitions served from the pool
    std::uint64_t pooled = 0;     ///< stacks currently idle in the pool
  };
  /// Counters for the calling thread's pool (tests, diagnostics).
  static StackPoolStats stackPoolStats();
  /// Free every idle pooled stack of the calling thread (tests; pools
  /// also drain themselves at thread exit).
  static void drainStackPool();

  static constexpr std::size_t kDefaultStackBytes = 1u << 20;  // 1 MiB

 private:
  struct UctxState;  // ucontext backend state, allocated only when used

  static void runEntry(Fiber* self);  // shared fiber body trampoline
  static void uctxTrampoline();
  friend void fiberAsmEntry();  // asm-backend entry (fiber_switch_*.S)

  void switchOutOfFiber();  // fiber -> its saved caller context

  Fn fn_;
  Backend backend_;
  std::size_t stack_bytes_;
  std::byte* stack_ = nullptr;  ///< pooled; base of the stack block
  // Asm backend: just two stack pointers. The switch stub spills the
  // callee-saved registers onto the outgoing stack and records sp here.
  void* sp_ = nullptr;         ///< fiber's context while suspended
  void* caller_sp_ = nullptr;  ///< resumer's context while fiber runs
  std::unique_ptr<UctxState> uctx_;
  // ThreadSanitizer fiber contexts (populated only in -fsanitize=thread
  // builds; see fiber.cpp). Declared unconditionally so the class layout
  // never depends on sanitizer flags.
  void* tsan_fiber_ = nullptr;
  void* tsan_caller_ = nullptr;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace rsvm
