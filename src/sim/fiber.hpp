// Stackful cooperative fibers used to direct-execute application code on
// simulated processors. Single-threaded by design: the engine resumes one
// fiber at a time, so simulated runs are fully deterministic.
//
// The "current fiber" is thread_local, so independent simulations may run
// concurrently on distinct host threads (one engine per thread) with no
// shared state; a fiber must always be resumed on the host thread that
// is driving its engine.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace rsvm {

/// One stackful coroutine. resume() transfers control from the caller
/// (the scheduler) into the fiber; Fiber::yieldToScheduler() transfers
/// back. Only the engine thread may touch fibers.
class Fiber {
 public:
  using Fn = std::function<void()>;

  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it yields or finishes. Must not be called on a
  /// finished fiber.
  void resume();

  /// Called from inside a running fiber: suspend and return control to
  /// whoever called resume().
  static void yieldToScheduler();

  /// The fiber currently executing on the calling host thread, or
  /// nullptr when the scheduler itself is running. Per-thread state:
  /// fibers of engines on other host threads are invisible here.
  static Fiber* current();

  [[nodiscard]] bool finished() const { return finished_; }

  static constexpr std::size_t kDefaultStackBytes = 1u << 20;  // 1 MiB

 private:
  static void trampoline();

  Fn fn_;
  std::vector<std::byte> stack_;
  ucontext_t ctx_{};
  ucontext_t caller_{};
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace rsvm
