// Deterministic fault-injection plan: a seeded xorshift64* stream (no
// host randomness) that perturbs *legal* nondeterminism in the simulated
// protocols -- message latency jitter, handler-dispatch delays,
// spurious-but-legal invalidations/page drops, and lock-grant
// reordering. Every perturbation preserves the consistency model's
// guarantees, so a correct protocol must still produce correct
// application results and keep the coherence oracle silent while the
// cycle counts move. Runs with the same seed are bit-identical (the
// single-threaded engine consumes the stream in a deterministic order);
// different seeds exercise different legal schedules.
#pragma once

#include "sim/types.hpp"

#include <cstdint>

namespace rsvm {

struct FaultPlanConfig {
  std::uint64_t seed = 0;  ///< 0 disables every perturbation
  Cycles msg_jitter_max = 400;      ///< extra latency added to message sends
  Cycles handler_jitter_max = 200;  ///< extra handler-dispatch delay
  /// Roughly one in `spurious_period` eligible sync points performs a
  /// spurious-but-legal permission drop (clean page drop / L1 clear).
  std::uint32_t spurious_period = 16;
  bool reorder_lock_grants = true;  ///< rotate waiter queues at release
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanConfig& cfg);
  explicit FaultPlan(std::uint64_t seed) : FaultPlan(seeded(seed)) {}

  [[nodiscard]] bool enabled() const { return cfg_.seed != 0; }
  [[nodiscard]] const FaultPlanConfig& config() const { return cfg_; }

  /// Extra cycles to delay one message (0..msg_jitter_max).
  Cycles msgJitter();
  /// Extra cycles before a protocol handler starts (0..handler_jitter_max).
  Cycles handlerJitter();
  /// Should this eligible sync point perform a spurious permission drop?
  bool spuriousNow();
  /// Should this lock release hand off to a later waiter instead of the
  /// first? (Legal: any waiter may win the handoff race.)
  bool reorderGrant();
  /// Uniform draw in [0, n); n must be > 0.
  std::uint64_t pick(std::uint64_t n);

  /// Total RNG draws so far (diagnostic; also a cheap determinism probe:
  /// identical runs make identical draw counts).
  [[nodiscard]] std::uint64_t draws() const { return draws_; }

 private:
  static FaultPlanConfig seeded(std::uint64_t seed) {
    FaultPlanConfig c;
    c.seed = seed;
    return c;
  }
  std::uint64_t next();

  FaultPlanConfig cfg_;
  std::uint64_t state_;
  std::uint64_t draws_ = 0;
};

}  // namespace rsvm
