#include "sim/faultplan.hpp"

namespace rsvm {

FaultPlan::FaultPlan(const FaultPlanConfig& cfg) : cfg_(cfg) {
  // SplitMix64 scramble so nearby seeds (1, 2, 3, ...) land in unrelated
  // parts of the xorshift state space.
  std::uint64_t z = cfg.seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  state_ = z != 0 ? z : 0x2545f4914f6cdd1dull;
}

std::uint64_t FaultPlan::next() {
  // xorshift64* (Vigna): small, fast, and plenty for schedule jitter.
  ++draws_;
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545f4914f6cdd1dull;
}

Cycles FaultPlan::msgJitter() {
  if (!enabled() || cfg_.msg_jitter_max == 0) return 0;
  return static_cast<Cycles>(next() % (cfg_.msg_jitter_max + 1));
}

Cycles FaultPlan::handlerJitter() {
  if (!enabled() || cfg_.handler_jitter_max == 0) return 0;
  return static_cast<Cycles>(next() % (cfg_.handler_jitter_max + 1));
}

bool FaultPlan::spuriousNow() {
  if (!enabled() || cfg_.spurious_period == 0) return false;
  return next() % cfg_.spurious_period == 0;
}

bool FaultPlan::reorderGrant() {
  if (!enabled() || !cfg_.reorder_lock_grants) return false;
  // Half of the contended releases pick a non-FIFO waiter.
  return (next() & 1) != 0;
}

std::uint64_t FaultPlan::pick(std::uint64_t n) { return next() % n; }

}  // namespace rsvm
