#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>

namespace rsvm {

Engine::Engine(const Config& cfg) : cfg_(cfg) {
  if (cfg.nprocs < 1 || cfg.nprocs > kMaxProcs) {
    throw std::invalid_argument("Engine: nprocs out of range");
  }
  procs_.resize(static_cast<std::size_t>(cfg.nprocs));
}

void Engine::run(const std::function<void(ProcId)>& body) {
  unfinished_ = cfg_.nprocs;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    Proc& pr = procs_[static_cast<std::size_t>(p)];
    pr.fiber = std::make_unique<Fiber>([this, body, p] { body(p); });
    pr.state = ProcState::Ready;
    ready_.push({pr.clock, p, seq_++});
  }
  const auto t0 = std::chrono::steady_clock::now();
  scheduleLoop();
  run_wall_ms_ += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
}

void Engine::scheduleLoop() {
  while (unfinished_ > 0) {
    if (ready_.empty()) {
      std::string who;
      for (ProcId p = 0; p < cfg_.nprocs; ++p) {
        if (procs_[static_cast<std::size_t>(p)].state == ProcState::Blocked) {
          who += std::to_string(p) + " ";
        }
      }
      throw std::runtime_error("Engine: deadlock, blocked procs: " + who);
    }
    const HeapEntry e = ready_.top();
    ready_.pop();
    Proc& pr = procs_[static_cast<std::size_t>(e.proc)];
    if (pr.state != ProcState::Ready) continue;  // stale heap entry
    pr.state = ProcState::Running;
    current_ = e.proc;
    pr.fiber->resume();
    current_ = -1;
    if (pr.fiber->finished()) {
      pr.state = ProcState::Finished;
      --unfinished_;
    }
    // Blocked or Ready fibers have already updated their own state.
  }
}

void Engine::absorbHandler(Proc& p) {
  if (p.pending_handler == 0) return;
  p.clock += p.pending_handler;
  p.stats[Bucket::Handler] += p.pending_handler;
  p.pending_handler = 0;
}

void Engine::yieldCurrent() {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  pr.since_yield = 0;
  pr.state = ProcState::Ready;
  ready_.push({pr.clock, current_, seq_++});
  Fiber::yieldToScheduler();
}

void Engine::advance(Cycles dt, Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  absorbHandler(pr);
  pr.clock += dt;
  pr.stats[b] += dt;
  pr.since_yield += dt;
  if (pr.since_yield >= cfg_.quantum) {
    yieldCurrent();
  }
}

void Engine::stallUntil(Cycles t, Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  absorbHandler(pr);
  if (t > pr.clock) {
    pr.stats[b] += t - pr.clock;
    pr.clock = t;
  }
  yieldCurrent();
}

void Engine::yieldNow() { yieldCurrent(); }

void Engine::block(Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  absorbHandler(pr);
  pr.block_start = pr.clock;
  pr.block_bucket = b;
  pr.state = ProcState::Blocked;
  pr.since_yield = 0;
  Fiber::yieldToScheduler();
  // Woken: wake() already set our clock and state; charge the wait,
  // overlapping any handler work that arrived while we were blocked.
  assert(pr.state == ProcState::Running);
  Cycles waited = pr.clock - pr.block_start;
  const Cycles overlapped = std::min(waited, pr.pending_handler);
  pr.stats[Bucket::Handler] += overlapped;
  pr.pending_handler -= overlapped;
  waited -= overlapped;
  pr.stats[b] += waited;
}

void Engine::wake(ProcId p, Cycles t) {
  Proc& pr = procs_[static_cast<std::size_t>(p)];
  assert(pr.state == ProcState::Blocked && "wake of a non-blocked processor");
  pr.clock = std::max(pr.clock, t);
  pr.state = ProcState::Ready;
  ready_.push({pr.clock, p, seq_++});
}

void Engine::chargeHandler(ProcId p, Cycles dt) {
  procs_[static_cast<std::size_t>(p)].pending_handler += dt;
}

RunStats Engine::collect() const {
  RunStats rs;
  rs.host_wall_ms = run_wall_ms_;
  rs.procs.reserve(procs_.size());
  for (const Proc& p : procs_) {
    rs.procs.push_back(p.stats);
    rs.exec_cycles = std::max(rs.exec_cycles, p.clock);
  }
  return rs;
}

}  // namespace rsvm
