#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace rsvm {

namespace detail {
thread_local ProcId t_current_proc = -1;
}  // namespace detail

namespace {

const char* stateName(int s) {
  switch (s) {
    case 0: return "Ready";
    case 1: return "Running";
    case 2: return "Blocked";
    case 3: return "Finished";
  }
  return "?";
}

constexpr int kParErrDeadlock = 1;
constexpr int kParErrWatchdog = 2;

}  // namespace

Engine::Engine(const Config& cfg) : cfg_(cfg) {
  if (cfg.nprocs < 1 || cfg.nprocs > kMaxProcs) {
    throw std::invalid_argument("Engine: nprocs out of range");
  }
  if (cfg_.threads < 1) cfg_.threads = 1;
  procs_.resize(static_cast<std::size_t>(cfg.nprocs));
  // Every processor has at most one live heap entry, +1 covers the
  // transient push inside yieldCurrent before its fast-resume pop.
  ready_.reserve(static_cast<std::size_t>(cfg.nprocs) + 1);
}

void Engine::heapPush(const HeapEntry& e) {
  ready_.push_back(e);
  std::size_t i = ready_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!ready_[i].before(ready_[parent])) break;
    std::swap(ready_[i], ready_[parent]);
    i = parent;
  }
}

void Engine::heapPop() {
  assert(!ready_.empty());
  ready_.front() = ready_.back();
  ready_.pop_back();
  const std::size_t n = ready_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t m = (r < n && ready_[r].before(ready_[l])) ? r : l;
    if (!ready_[m].before(ready_[i])) break;
    std::swap(ready_[i], ready_[m]);
    i = m;
  }
}

void Engine::run(const std::function<void(ProcId)>& body) {
  if (cfg_.threads > 1 && cfg_.nprocs > 1) {
    runParallel(body);
    return;
  }
  unfinished_ = cfg_.nprocs;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    Proc& pr = procs_[static_cast<std::size_t>(p)];
    // `body` outlives every fiber (they all finish before run returns),
    // so capture it by reference instead of copying the std::function
    // once per processor.
    pr.fiber = std::make_unique<Fiber>([this, &body, p] { body(p); });
    pr.state = ProcState::Ready;
    heapPush({pr.clock, p, seq_++});
  }
  const auto t0 = std::chrono::steady_clock::now();
  watch_t0_ = t0;
  scheduleLoop();
  run_wall_ms_ += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
}

std::string Engine::procsDump() const {
  std::string msg;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    const Proc& pr = procs_[static_cast<std::size_t>(p)];
    msg += "\n  p" + std::to_string(p) + ": " +
           stateName(static_cast<int>(pr.state));
    if (pr.state == ProcState::Blocked) {
      msg += " on " + std::string(bucketName(pr.block_bucket)) +
             " since cycle " + std::to_string(pr.block_start);
      if (pr.pending_handler > 0) {
        msg += " (" + std::to_string(pr.pending_handler) +
               " handler cycles pending)";
      }
    } else {
      msg += " at cycle " + std::to_string(pr.clock);
    }
  }
  return msg;
}

void Engine::throwDeadlock() const {
  throw std::runtime_error("Engine: deadlock -- no runnable processor, " +
                           std::to_string(unfinished_) + " of " +
                           std::to_string(cfg_.nprocs) + " unfinished:" +
                           procsDump());
}

void Engine::throwWatchdog(Cycles t) const {
  std::string msg = "Engine: watchdog -- ";
  if (cfg_.max_cycles > 0 && t > cfg_.max_cycles) {
    msg += "cycle budget " + std::to_string(cfg_.max_cycles) +
           " exceeded at cycle " + std::to_string(t);
  } else {
    msg += "host deadline " + std::to_string(cfg_.max_host_ms) +
           " ms exceeded at cycle " + std::to_string(t);
  }
  msg += " (possible livelock), " + std::to_string(unfinished_) + " of " +
         std::to_string(cfg_.nprocs) + " unfinished:" + procsDump();
  throw EngineWatchdogError(msg);
}

bool Engine::watchdogTripped(Cycles t) {
  if (watch_fired_) return true;
  if (cfg_.max_cycles > 0 && t > cfg_.max_cycles) {
    watch_fired_ = true;
    return true;
  }
  // Monotonic host-clock check on every call (a steady_clock read is one
  // VDSO call, and this only runs when a deadline is armed). The former
  // every-256-iterations sampling under-sampled badly once parallel
  // workers spread the scheduler iterations across threads.
  if (cfg_.max_host_ms > 0.0) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - watch_t0_)
                          .count();
    if (ms > cfg_.max_host_ms) {
      watch_fired_ = true;
      return true;
    }
  }
  return false;
}

void Engine::scheduleLoop() {
  const bool watch = watchdogEnabled();
  while (unfinished_ > 0) {
    if (ready_.empty()) throwDeadlock();
    const HeapEntry e = ready_.front();
    heapPop();
    Proc& pr = procs_[static_cast<std::size_t>(e.proc)];
    if (pr.state != ProcState::Ready) continue;  // stale heap entry
    // Host-side only: throwing from fiber context would unwind through
    // the fiber trampoline (fatal for the asm backend). yieldCurrent
    // cooperates by forcing a full yield once the watchdog trips, so
    // control always reaches this check.
    if (watch && watchdogTripped(e.time)) throwWatchdog(e.time);
    pr.state = ProcState::Running;
    detail::t_current_proc = e.proc;
    pr.fiber->resume();
    detail::t_current_proc = -1;
    if (pr.fiber->finished()) {
      pr.state = ProcState::Finished;
      --unfinished_;
    }
    // Blocked or Ready fibers have already updated their own state.
  }
}

void Engine::absorbHandler(Proc& p) {
  // Record the absorb point even with nothing pending: a parallel-mode
  // mailbox drain must know whether charges that sequentially landed
  // before this segment would already have been folded into the clock
  // here (see drainMailbox).
  p.seg_absorbed = true;
  if (p.pending_handler == 0) return;
  p.clock += p.pending_handler;
  p.stats[Bucket::Handler] += p.pending_handler;
  p.pending_handler = 0;
}

void Engine::yieldCurrent() {
  const ProcId cur = detail::t_current_proc;
  Proc& pr = procs_[static_cast<std::size_t>(cur)];
  if (par_active_) {
    parYield(pr, cur);
    return;
  }
  pr.since_yield = 0;
  const std::uint64_t seq = seq_++;
  heapPush({pr.clock, cur, seq});
  // Fast resume: if the yielding processor is still the strict minimum,
  // the scheduler would pop this very entry next and switch straight
  // back in with nothing run in between. Skip both context switches.
  // seq_ and the heap evolve exactly as if the round trip had happened,
  // so the resume order (and every simulated value) is untouched. This
  // is the common case for quantum-expiry yields in lightly-contended
  // runs and for every yield of a uniprocessor baseline.
  if (ready_.front().proc == cur && ready_.front().seq == seq &&
      !(watchdogEnabled() && watchdogTripped(pr.clock))) {
    heapPop();
    return;  // state stays Running; the fiber continues immediately
  }
  pr.state = ProcState::Ready;
  Fiber::yieldToScheduler();
}

void Engine::advance(Cycles dt, Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(detail::t_current_proc)];
  absorbHandler(pr);
  pr.clock += dt;
  pr.stats[b] += dt;
  pr.since_yield += dt;
  if (pr.since_yield >= cfg_.quantum) {
    yieldCurrent();
  }
}

void Engine::stallUntil(Cycles t, Bucket b) {
  // The comparison below depends on every handler charge the sequential
  // scheduler would have delivered by now, so order this segment first.
  shardFence();
  Proc& pr = procs_[static_cast<std::size_t>(detail::t_current_proc)];
  absorbHandler(pr);
  if (t > pr.clock) {
    pr.stats[b] += t - pr.clock;
    pr.clock = t;
  }
  yieldCurrent();
}

void Engine::yieldNow() { yieldCurrent(); }

void Engine::block(Bucket b) {
  shardFence();
  Proc& pr = procs_[static_cast<std::size_t>(detail::t_current_proc)];
  absorbHandler(pr);
  pr.block_start = pr.clock;
  pr.block_bucket = b;
  pr.since_yield = 0;
  if (par_active_) {
    // The hosting worker publishes Blocked (and releases the token) once
    // the context switch below has completed; publishing here would let
    // another worker wake and resume this fiber mid-switch.
    pr.pending_susp = Susp::Block;
  } else {
    pr.state = ProcState::Blocked;
  }
  Fiber::yieldToScheduler();
  // Woken: wake() already set our clock and state; charge the wait,
  // overlapping any handler work that arrived while we were blocked.
  assert(pr.state == ProcState::Running);
  Cycles waited = pr.clock - pr.block_start;
  const Cycles overlapped = std::min(waited, pr.pending_handler);
  pr.stats[Bucket::Handler] += overlapped;
  pr.pending_handler -= overlapped;
  waited -= overlapped;
  pr.stats[b] += waited;
}

void Engine::wake(ProcId p, Cycles t) {
  shardFence();
  Proc& pr = procs_[static_cast<std::size_t>(p)];
  assert(pr.state == ProcState::Blocked && "wake of a non-blocked processor");
  if (!par_active_) {
    pr.clock = std::max(pr.clock, t);
    pr.state = ProcState::Ready;
    heapPush({pr.clock, p, seq_++});
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  pr.clock = std::max(pr.clock, t);
  pr.state = ProcState::Ready;
  // The woken fiber resumes inside block(), whose wait/overlap
  // accounting must see every handler charge delivered up to its
  // sequential resume point -- so it may only be resumed committed.
  pr.resume_committed = true;
  pr.pkey = {pr.clock, p, seq_++};
  pr.key_live = true;
  ++live_keys_;
  cv_.notify_all();
}

void Engine::chargeHandler(ProcId p, Cycles dt) {
  shardFence();
  if (!par_active_) {
    procs_[static_cast<std::size_t>(p)].pending_handler += dt;
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  Proc& pr = procs_[static_cast<std::size_t>(p)];
  if (p == detail::t_current_proc || pr.state == ProcState::Blocked ||
      pr.state == ProcState::Ready || pr.state == ProcState::Finished) {
    // Not mid-segment (or our own processor): exactly the sequential
    // behavior. The charger holds the commit token, so the target cannot
    // start a segment concurrently (that needs this same mutex), and a
    // suspended or idle fiber never touches its own pending_handler.
    pr.pending_handler += dt;
    return;
  }
  // The target has a segment in flight (running ahead on another worker,
  // or suspended at a gate). Sequentially this charge lands before that
  // segment starts; queue it for the drain at the segment's commit.
  pr.mailbox += dt;
}

RunStats Engine::collect() const {
  RunStats rs;
  rs.host_wall_ms = run_wall_ms_;
  rs.procs.reserve(procs_.size());
  for (const Proc& p : procs_) {
    rs.procs.push_back(p.stats);
    rs.exec_cycles = std::max(rs.exec_cycles, p.clock);
  }
  return rs;
}

// ---------------------------------------------------------------------------
// Parallel scheduler.
//
// Correctness model (DESIGN.md, "Parallel engine"): a *segment* is the
// execution of one processor from a scheduler resume to its next yield,
// block, or finish -- exactly what one sequential scheduleLoop iteration
// runs. Each non-blocked processor carries the (time, seq) key the
// sequential heap would hold for it; keys are allocated under the commit
// token in exact sequential order, so the set of live keys always equals
// the sequential scheduler's heap content.
//
//  * Run-ahead: any Ready processor's segment may start early on any
//    worker, but may only touch processor-local state (its own clock,
//    stats, caches, its node's page table -- guaranteed by the platform's
//    shardParallelSafe() contract plus the fences below).
//  * Commit: before its first touch of shared state (and at the latest at
//    its end), a segment calls shardFence() and waits until (a) no other
//    segment holds the commit token and (b) its key is the minimum over
//    all live keys. Keys are unique, and a committed segment's key stays
//    live until the segment ends, so committed segments execute one at a
//    time in exactly the sequential resume order.
//  * Handler charges to a processor whose segment is in flight go to a
//    mailbox, drained at that segment's commit as if they had arrived
//    before it started (drainMailbox replays the absorb-at-first-advance
//    rule via seg_absorbed).
// ---------------------------------------------------------------------------

void Engine::drainMailbox(Proc& pr) {
  if (pr.mailbox == 0) return;
  if (pr.seg_absorbed) {
    // The segment already passed an absorb point; sequentially these
    // charges (which landed before the segment started) would have been
    // folded into the clock there. Addition commutes, so folding them now
    // reproduces the same clock and bucket totals.
    pr.clock += pr.mailbox;
    pr.stats[Bucket::Handler] += pr.mailbox;
  } else {
    pr.pending_handler += pr.mailbox;
  }
  pr.mailbox = 0;
}

ProcId Engine::minLiveKeyProc() const {
  ProcId best = -1;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    const Proc& pr = procs_[static_cast<std::size_t>(p)];
    if (!pr.key_live) continue;
    if (best < 0 ||
        pr.pkey.before(procs_[static_cast<std::size_t>(best)].pkey)) {
      best = p;
    }
  }
  return best;
}

bool Engine::isMinLiveKey(ProcId p) const {
  const HeapEntry& k = procs_[static_cast<std::size_t>(p)].pkey;
  for (ProcId q = 0; q < cfg_.nprocs; ++q) {
    if (q == p) continue;
    const Proc& pr = procs_[static_cast<std::size_t>(q)];
    if (pr.key_live && pr.pkey.before(k)) return false;
  }
  return true;
}

void Engine::shardFence() {
  if (!par_active_) return;
  const ProcId p = detail::t_current_proc;
  if (p < 0) return;  // host context
  Proc& pr = procs_[static_cast<std::size_t>(p)];
  if (pr.committed) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (token_holder_ < 0 && isMinLiveKey(p)) {
      token_holder_ = p;
      pr.committed = true;
      drainMailbox(pr);
      return;
    }
    pr.pending_susp = Susp::Gate;
  }
  // The hosting worker publishes gate_wait once this switch completes;
  // another worker then grants the token and resumes us at our turn.
  Fiber::yieldToScheduler();
  assert(pr.committed || par_error_ != 0);
}

void Engine::shardCritEnter() {
  if (!par_active_) return;
  const ProcId p = detail::t_current_proc;
  if (p < 0) return;  // host context
  ++procs_[static_cast<std::size_t>(p)].crit_depth;
}

void Engine::shardCritExit() {
  if (!par_active_) return;
  const ProcId p = detail::t_current_proc;
  if (p < 0) return;  // host context
  Proc& pr = procs_[static_cast<std::size_t>(p)];
  assert(pr.crit_depth > 0);
  --pr.crit_depth;
}

void Engine::parYield(Proc& pr, ProcId p) {
  pr.since_yield = 0;
  // End-of-segment gate: the push below allocates the next sequential
  // seq, which must happen in commit order.
  shardFence();
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t seq = seq_++;
    pr.pkey = {pr.clock, p, seq};  // replaces the ending segment's key
    // Fast resume, exactly as in the sequential scheduler: the live-key
    // set equals the sequential heap content here, so "my new key is the
    // strict minimum" is the same check as "my entry is the heap front".
    // Keep the token and continue straight into the next segment.
    if (isMinLiveKey(p) &&
        !(watchdogEnabled() && watchdogTripped(pr.clock))) {
      pr.seg_absorbed = false;
      return;
    }
    // Mid-protocol yield: the continuation returns to shared state (see
    // ShardCritScope) with no fence of its own, so it may not run ahead.
    if (pr.crit_depth > 0) pr.resume_committed = true;
    pr.pending_susp = Susp::Yield;
  }
  Fiber::yieldToScheduler();
  // Resumed by a worker: either as a run-ahead prefix of the next
  // segment, or committed straight away if our key was the minimum.
}

void Engine::finalizeProc(Proc& pr) {
  // mu_ held. The processor's last segment commits here, in sequential
  // order: release the token, retire the key, and retire the processor.
  pr.committed = false;
  pr.finish_wait = false;
  token_holder_ = -1;
  pr.key_live = false;
  --live_keys_;
  pr.state = ProcState::Finished;
  --unfinished_;
  cv_.notify_all();
}

void Engine::workerLoop() {
  const bool watch = watchdogEnabled();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (par_error_ != 0 || unfinished_ == 0) {
      cv_.notify_all();
      return;
    }
    ProcId act = -1;
    bool grant = false;
    if (token_holder_ < 0) {
      const ProcId gm = minLiveKeyProc();
      if (gm < 0) {
        // Only blocked processors remain: the sequential scheduler's
        // empty-heap deadlock.
        par_error_ = kParErrDeadlock;
        cv_.notify_all();
        return;
      }
      Proc& g = procs_[static_cast<std::size_t>(gm)];
      if (g.state == ProcState::Ready || g.gate_wait || g.finish_wait) {
        // This is where the sequential scheduler would pop gm's entry.
        if (watch && watchdogTripped(g.pkey.time)) {
          par_error_ = kParErrWatchdog;
          par_error_time_ = g.pkey.time;
          cv_.notify_all();
          return;
        }
        if (g.finish_wait) {
          g.committed = true;  // nominal: the segment is already over
          drainMailbox(g);
          finalizeProc(g);
          continue;
        }
        token_holder_ = gm;
        g.committed = true;
        drainMailbox(g);
        if (g.gate_wait) {
          g.gate_wait = false;  // resume mid-segment, at its fence
        } else {
          g.state = ProcState::Running;  // new segment, starting committed
          g.resume_committed = false;
          g.seg_absorbed = false;
        }
        act = gm;
        grant = true;
      }
      // else: the minimum is a segment already running ahead on some
      // worker; it will fence or end on its own.
    }
    if (act < 0) {
      // Run-ahead: start the lowest-keyed Ready segment as a prefix.
      // Block-woken processors are excluded -- they resume inside
      // block()'s wait accounting, which may only run committed.
      ProcId best = -1;
      for (ProcId p = 0; p < cfg_.nprocs; ++p) {
        Proc& pr = procs_[static_cast<std::size_t>(p)];
        if (pr.state != ProcState::Ready || pr.resume_committed) continue;
        if (best < 0 ||
            pr.pkey.before(procs_[static_cast<std::size_t>(best)].pkey)) {
          best = p;
        }
      }
      if (best >= 0) {
        Proc& pr = procs_[static_cast<std::size_t>(best)];
        pr.state = ProcState::Running;
        pr.seg_absorbed = false;
        act = best;
      }
    }
    if (act < 0) {
      cv_.wait(lk);
      continue;
    }
    Proc& pr = procs_[static_cast<std::size_t>(act)];
    pr.pending_susp = Susp::None;
    lk.unlock();
    detail::t_current_proc = act;
    pr.fiber->resume();
    detail::t_current_proc = -1;
    lk.lock();
    (void)grant;
    if (pr.fiber->finished()) {
      if (pr.committed) {
        finalizeProc(pr);
      } else {
        // Ran ahead to completion: hold the key and finish at our
        // sequential turn (a later mailbox drain may still owe us
        // handler cycles).
        pr.finish_wait = true;
        cv_.notify_all();
      }
      continue;
    }
    // The fiber suspended; its context switch is complete (resume()
    // returned), so its new state can safely be published.
    switch (pr.pending_susp) {
      case Susp::Gate:
        pr.gate_wait = true;
        break;
      case Susp::Yield:
        pr.state = ProcState::Ready;
        pr.committed = false;
        token_holder_ = -1;
        break;
      case Susp::Block:
        pr.state = ProcState::Blocked;
        pr.committed = false;
        token_holder_ = -1;
        pr.key_live = false;
        --live_keys_;
        break;
      case Susp::None:
        assert(false && "fiber suspended outside an engine yield point");
        break;
    }
    cv_.notify_all();
  }
}

void Engine::runParallel(const std::function<void(ProcId)>& body) {
  unfinished_ = cfg_.nprocs;
  token_holder_ = -1;
  par_error_ = 0;
  par_error_time_ = 0;
  live_keys_ = 0;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    Proc& pr = procs_[static_cast<std::size_t>(p)];
    pr.fiber = std::make_unique<Fiber>([this, &body, p] { body(p); });
    pr.state = ProcState::Ready;
    pr.pkey = {pr.clock, p, seq_++};
    pr.key_live = true;
    ++live_keys_;
    pr.mailbox = 0;
    pr.committed = false;
    pr.gate_wait = false;
    pr.finish_wait = false;
    pr.resume_committed = false;
    pr.seg_absorbed = false;
    pr.crit_depth = 0;
    pr.pending_susp = Susp::None;
  }
  const auto t0 = std::chrono::steady_clock::now();
  watch_t0_ = t0;
  par_active_ = true;
  const int nworkers = std::min(cfg_.threads, cfg_.nprocs);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nworkers - 1));
  for (int w = 1; w < nworkers; ++w) {
    workers.emplace_back([this] { workerLoop(); });
  }
  workerLoop();  // the calling thread is worker 0
  for (std::thread& w : workers) w.join();
  par_active_ = false;
  run_wall_ms_ += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  // Error paths abandon suspended fibers, exactly as a sequential
  // watchdog/deadlock throw does; the fibers' stacks are reclaimed with
  // the engine.
  if (par_error_ == kParErrDeadlock) throwDeadlock();
  if (par_error_ == kParErrWatchdog) throwWatchdog(par_error_time_);
}

}  // namespace rsvm
