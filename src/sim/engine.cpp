#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace rsvm {

namespace {

const char* stateName(int s) {
  switch (s) {
    case 0: return "Ready";
    case 1: return "Running";
    case 2: return "Blocked";
    case 3: return "Finished";
  }
  return "?";
}

}  // namespace

Engine::Engine(const Config& cfg) : cfg_(cfg) {
  if (cfg.nprocs < 1 || cfg.nprocs > kMaxProcs) {
    throw std::invalid_argument("Engine: nprocs out of range");
  }
  procs_.resize(static_cast<std::size_t>(cfg.nprocs));
  // Every processor has at most one live heap entry, +1 covers the
  // transient push inside yieldCurrent before its fast-resume pop.
  ready_.reserve(static_cast<std::size_t>(cfg.nprocs) + 1);
}

void Engine::heapPush(const HeapEntry& e) {
  ready_.push_back(e);
  std::size_t i = ready_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!ready_[i].before(ready_[parent])) break;
    std::swap(ready_[i], ready_[parent]);
    i = parent;
  }
}

void Engine::heapPop() {
  assert(!ready_.empty());
  ready_.front() = ready_.back();
  ready_.pop_back();
  const std::size_t n = ready_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t m = (r < n && ready_[r].before(ready_[l])) ? r : l;
    if (!ready_[m].before(ready_[i])) break;
    std::swap(ready_[i], ready_[m]);
    i = m;
  }
}

void Engine::run(const std::function<void(ProcId)>& body) {
  unfinished_ = cfg_.nprocs;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    Proc& pr = procs_[static_cast<std::size_t>(p)];
    // `body` outlives every fiber (they all finish before run returns),
    // so capture it by reference instead of copying the std::function
    // once per processor.
    pr.fiber = std::make_unique<Fiber>([this, &body, p] { body(p); });
    pr.state = ProcState::Ready;
    heapPush({pr.clock, p, seq_++});
  }
  const auto t0 = std::chrono::steady_clock::now();
  watch_t0_ = t0;
  scheduleLoop();
  run_wall_ms_ += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
}

std::string Engine::procsDump() const {
  std::string msg;
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    const Proc& pr = procs_[static_cast<std::size_t>(p)];
    msg += "\n  p" + std::to_string(p) + ": " +
           stateName(static_cast<int>(pr.state));
    if (pr.state == ProcState::Blocked) {
      msg += " on " + std::string(bucketName(pr.block_bucket)) +
             " since cycle " + std::to_string(pr.block_start);
      if (pr.pending_handler > 0) {
        msg += " (" + std::to_string(pr.pending_handler) +
               " handler cycles pending)";
      }
    } else {
      msg += " at cycle " + std::to_string(pr.clock);
    }
  }
  return msg;
}

void Engine::throwDeadlock() const {
  throw std::runtime_error("Engine: deadlock -- no runnable processor, " +
                           std::to_string(unfinished_) + " of " +
                           std::to_string(cfg_.nprocs) + " unfinished:" +
                           procsDump());
}

void Engine::throwWatchdog(Cycles t) const {
  std::string msg = "Engine: watchdog -- ";
  if (cfg_.max_cycles > 0 && t > cfg_.max_cycles) {
    msg += "cycle budget " + std::to_string(cfg_.max_cycles) +
           " exceeded at cycle " + std::to_string(t);
  } else {
    msg += "host deadline " + std::to_string(cfg_.max_host_ms) +
           " ms exceeded at cycle " + std::to_string(t);
  }
  msg += " (possible livelock), " + std::to_string(unfinished_) + " of " +
         std::to_string(cfg_.nprocs) + " unfinished:" + procsDump();
  throw EngineWatchdogError(msg);
}

bool Engine::watchdogTripped(Cycles t) {
  if (watch_fired_) return true;
  if (cfg_.max_cycles > 0 && t > cfg_.max_cycles) {
    watch_fired_ = true;
    return true;
  }
  // The host clock is sampled sparsely: a syscall per scheduler
  // iteration would dominate light-weight runs.
  if (cfg_.max_host_ms > 0.0 && (++watch_iter_ & 255u) == 0) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - watch_t0_)
                          .count();
    if (ms > cfg_.max_host_ms) {
      watch_fired_ = true;
      return true;
    }
  }
  return false;
}

void Engine::scheduleLoop() {
  const bool watch = watchdogEnabled();
  while (unfinished_ > 0) {
    if (ready_.empty()) throwDeadlock();
    const HeapEntry e = ready_.front();
    heapPop();
    Proc& pr = procs_[static_cast<std::size_t>(e.proc)];
    if (pr.state != ProcState::Ready) continue;  // stale heap entry
    // Host-side only: throwing from fiber context would unwind through
    // the fiber trampoline (fatal for the asm backend). yieldCurrent
    // cooperates by forcing a full yield once the watchdog trips, so
    // control always reaches this check.
    if (watch && watchdogTripped(e.time)) throwWatchdog(e.time);
    pr.state = ProcState::Running;
    current_ = e.proc;
    pr.fiber->resume();
    current_ = -1;
    if (pr.fiber->finished()) {
      pr.state = ProcState::Finished;
      --unfinished_;
    }
    // Blocked or Ready fibers have already updated their own state.
  }
}

void Engine::absorbHandler(Proc& p) {
  if (p.pending_handler == 0) return;
  p.clock += p.pending_handler;
  p.stats[Bucket::Handler] += p.pending_handler;
  p.pending_handler = 0;
}

void Engine::yieldCurrent() {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  pr.since_yield = 0;
  const std::uint64_t seq = seq_++;
  heapPush({pr.clock, current_, seq});
  // Fast resume: if the yielding processor is still the strict minimum,
  // the scheduler would pop this very entry next and switch straight
  // back in with nothing run in between. Skip both context switches.
  // seq_ and the heap evolve exactly as if the round trip had happened,
  // so the resume order (and every simulated value) is untouched. This
  // is the common case for quantum-expiry yields in lightly-contended
  // runs and for every yield of a uniprocessor baseline.
  if (ready_.front().proc == current_ && ready_.front().seq == seq &&
      !(watchdogEnabled() && watchdogTripped(pr.clock))) {
    heapPop();
    return;  // state stays Running; the fiber continues immediately
  }
  pr.state = ProcState::Ready;
  Fiber::yieldToScheduler();
}

void Engine::advance(Cycles dt, Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  absorbHandler(pr);
  pr.clock += dt;
  pr.stats[b] += dt;
  pr.since_yield += dt;
  if (pr.since_yield >= cfg_.quantum) {
    yieldCurrent();
  }
}

void Engine::stallUntil(Cycles t, Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  absorbHandler(pr);
  if (t > pr.clock) {
    pr.stats[b] += t - pr.clock;
    pr.clock = t;
  }
  yieldCurrent();
}

void Engine::yieldNow() { yieldCurrent(); }

void Engine::block(Bucket b) {
  Proc& pr = procs_[static_cast<std::size_t>(current_)];
  absorbHandler(pr);
  pr.block_start = pr.clock;
  pr.block_bucket = b;
  pr.state = ProcState::Blocked;
  pr.since_yield = 0;
  Fiber::yieldToScheduler();
  // Woken: wake() already set our clock and state; charge the wait,
  // overlapping any handler work that arrived while we were blocked.
  assert(pr.state == ProcState::Running);
  Cycles waited = pr.clock - pr.block_start;
  const Cycles overlapped = std::min(waited, pr.pending_handler);
  pr.stats[Bucket::Handler] += overlapped;
  pr.pending_handler -= overlapped;
  waited -= overlapped;
  pr.stats[b] += waited;
}

void Engine::wake(ProcId p, Cycles t) {
  Proc& pr = procs_[static_cast<std::size_t>(p)];
  assert(pr.state == ProcState::Blocked && "wake of a non-blocked processor");
  pr.clock = std::max(pr.clock, t);
  pr.state = ProcState::Ready;
  heapPush({pr.clock, p, seq_++});
}

void Engine::chargeHandler(ProcId p, Cycles dt) {
  procs_[static_cast<std::size_t>(p)].pending_handler += dt;
}

RunStats Engine::collect() const {
  RunStats rs;
  rs.host_wall_ms = run_wall_ms_;
  rs.procs.reserve(procs_.size());
  for (const Proc& p : procs_) {
    rs.procs.push_back(p.stats);
    rs.exec_cycles = std::max(rs.exec_cycles, p.clock);
  }
  return rs;
}

}  // namespace rsvm
