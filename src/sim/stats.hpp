// Per-processor execution-time breakdowns and protocol event counters,
// mirroring the categories reported in the paper's Figures 3-15.
#pragma once

#include "sim/types.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace rsvm {

/// Time breakdown plus the protocol event counters the paper discusses
/// when diagnosing bottlenecks (page/miss counts, diff traffic, ...).
struct ProcStats {
  std::array<Cycles, kNumBuckets> buckets{};

  // Protocol / memory-system event counters.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t page_faults = 0;       ///< SVM remote page fetches
  std::uint64_t write_faults = 0;      ///< SVM twin creations
  std::uint64_t diffs_created = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t remote_misses = 0;     ///< HW-coherent: misses served remotely
  std::uint64_t local_misses = 0;      ///< HW-coherent: misses served locally
  std::uint64_t invalidations_sent = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t remote_lock_acquires = 0;
  std::uint64_t barriers = 0;
  std::uint64_t tasks_executed = 0;    ///< app-level: task-queue tasks run
  std::uint64_t tasks_stolen = 0;      ///< app-level: tasks taken from others
  std::uint64_t allocs = 0;            ///< app-level: shared-arena allocations

  Cycles& operator[](Bucket b) { return buckets[static_cast<int>(b)]; }
  Cycles operator[](Bucket b) const { return buckets[static_cast<int>(b)]; }

  [[nodiscard]] Cycles total() const {
    Cycles t = 0;
    for (Cycles c : buckets) t += c;
    return t;
  }
};

/// Result of one timed parallel run.
struct RunStats {
  std::vector<ProcStats> procs;
  Cycles exec_cycles = 0;  ///< max over processors of per-proc total time

  /// Host wall-clock time of the timed parallel section alone (the
  /// engine's scheduling loop: fibers + protocol + access engine),
  /// excluding platform construction, untimed initialization, and result
  /// verification. Measured by Engine::run, reported by collect(); the
  /// basis for host-throughput metrics (bench ext_simperf).
  double host_wall_ms = 0.0;

  [[nodiscard]] int nprocs() const { return static_cast<int>(procs.size()); }

  [[nodiscard]] Cycles bucketTotal(Bucket b) const {
    Cycles t = 0;
    for (const auto& p : procs) t += p[b];
    return t;
  }

  [[nodiscard]] std::uint64_t sum(std::uint64_t ProcStats::* field) const {
    std::uint64_t t = 0;
    for (const auto& p : procs) t += p.*field;
    return t;
  }

  /// Render the per-processor breakdown as an ASCII table (one row per
  /// processor, one column per bucket), like the paper's breakdown plots.
  [[nodiscard]] std::string breakdownTable() const;
};

}  // namespace rsvm
