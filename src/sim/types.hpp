// Fundamental types shared by the whole simulator.
#pragma once

#include <cstdint>
#include <cstddef>

namespace rsvm {

/// Simulated processor cycles. All platform clocks are expressed in the
/// node CPU's cycles (the paper's simulators assume 1 CPI cores).
using Cycles = std::uint64_t;

/// Simulated global (virtual) address inside the shared arena.
using SimAddr = std::uint64_t;

/// Identifier of a simulated processor / node (one CPU per node).
using ProcId = int;

// Raised from 64 for the parallel-engine extension sweeps (256-proc SVM
// clusters). Components that pack per-domain state into one 64-bit mask
// (hardware sharer sets, the coherence oracle, non-home-based LRC
// pending-diff tracking) guard their own <= 64 limits at construction.
inline constexpr int kMaxProcs = 256;

/// Execution-time buckets, exactly as defined under Figure 3 of the paper.
enum class Bucket : int {
  Compute = 0,     ///< executing application instructions
  CacheStall,      ///< stalled on local cache misses
  DataWait,        ///< waiting for remote data (page faults / remote misses)
  LockWait,        ///< waiting at lock acquires (incl. lock op overhead)
  BarrierWait,     ///< waiting at barriers (incl. barrier op overhead)
  Handler,         ///< protocol handler compute (diff create/apply, serving)
  kCount,
};

inline constexpr int kNumBuckets = static_cast<int>(Bucket::kCount);

inline const char* bucketName(Bucket b) {
  switch (b) {
    case Bucket::Compute: return "Compute";
    case Bucket::CacheStall: return "CacheStall";
    case Bucket::DataWait: return "DataWait";
    case Bucket::LockWait: return "LockWait";
    case Bucket::BarrierWait: return "BarrierWait";
    case Bucket::Handler: return "Handler";
    default: return "?";
  }
}

}  // namespace rsvm
