// Typed views over the shared address space. A SharedArray<T> pairs a
// simulated base address (used for protocol/cache accounting) with the
// host backing pointer (used for the actual data), so applications
// compute real results while the platform charges realistic costs.
#pragma once

#include "runtime/platform.hpp"

#include <cassert>
#include <cstddef>

namespace rsvm {

template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  SharedArray(Platform& p, std::size_t n, const HomePolicy& homes,
              std::size_t align = alignof(T))
      : n_(n) {
    base_ = p.alloc(n * sizeof(T), align, homes);
    host_ = p.space().template hostAs<T>(base_);
  }

  /// Timed read on the calling simulated processor.
  T get(Ctx& c, std::size_t i) const {
    assert(i < n_);
    c.read(addr(i), sizeof(T));
    return host_[i];
  }

  /// Timed write on the calling simulated processor.
  void set(Ctx& c, std::size_t i, T v) {
    assert(i < n_);
    c.write(addr(i), sizeof(T));
    host_[i] = v;
  }

  /// Timed read-modify-write (one read access + one write access).
  template <typename F>
  void update(Ctx& c, std::size_t i, F&& f) {
    assert(i < n_);
    c.read(addr(i), sizeof(T));
    c.write(addr(i), sizeof(T));
    host_[i] = f(host_[i]);
  }

  /// Timed read annotated as deliberately unsynchronized -- same
  /// simulated cost as get(), but the race checker treats it as an
  /// intentional stale peek rather than a data race.
  T getRacy(Ctx& c, std::size_t i) const {
    assert(i < n_);
    c.readRacy(addr(i), sizeof(T));
    return host_[i];
  }

  /// Untimed host access, for initialization and verification only.
  T& raw(std::size_t i) {
    assert(i < n_);
    return host_[i];
  }
  const T& raw(std::size_t i) const {
    assert(i < n_);
    return host_[i];
  }

  [[nodiscard]] SimAddr addr(std::size_t i) const {
    return base_ + i * sizeof(T);
  }
  [[nodiscard]] SimAddr base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t bytes() const { return n_ * sizeof(T); }
  [[nodiscard]] bool valid() const { return host_ != nullptr; }

 private:
  SimAddr base_ = 0;
  T* host_ = nullptr;
  std::size_t n_ = 0;
};

/// A single shared scalar.
template <typename T>
class Shared {
 public:
  Shared() = default;
  Shared(Platform& p, const HomePolicy& homes) : arr_(p, 1, homes) {}

  T get(Ctx& c) const { return arr_.get(c, 0); }
  void set(Ctx& c, T v) { arr_.set(c, 0, v); }
  template <typename F>
  void update(Ctx& c, F&& f) { arr_.update(c, 0, std::forward<F>(f)); }
  T& raw() { return arr_.raw(0); }
  const T& raw() const { return arr_.raw(0); }
  [[nodiscard]] SimAddr addr() const { return arr_.addr(0); }

 private:
  SharedArray<T> arr_;
};

/// Row-major 2-d view with an optional padded row stride (elements).
/// This is the "natural" 2-d array layout the paper's original LU/Ocean
/// versions use: a processor's square sub-block is *not* contiguous.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(Platform& p, std::size_t rows, std::size_t cols,
         const HomePolicy& homes, std::size_t row_stride = 0)
      : rows_(rows), cols_(cols),
        stride_(row_stride == 0 ? cols : row_stride),
        arr_(p, rows * (row_stride == 0 ? cols : row_stride), homes) {}

  T get(Ctx& c, std::size_t i, std::size_t j) const {
    return arr_.get(c, idx(i, j));
  }
  void set(Ctx& c, std::size_t i, std::size_t j, T v) {
    arr_.set(c, idx(i, j), v);
  }
  T& raw(std::size_t i, std::size_t j) { return arr_.raw(idx(i, j)); }
  const T& raw(std::size_t i, std::size_t j) const {
    return arr_.raw(idx(i, j));
  }
  [[nodiscard]] SimAddr addr(std::size_t i, std::size_t j) const {
    return arr_.addr(idx(i, j));
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  SharedArray<T>& flat() { return arr_; }

 private:
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return i * stride_ + j;
  }

  std::size_t rows_ = 0, cols_ = 0, stride_ = 0;
  SharedArray<T> arr_;
};

/// Block-contiguous "4-d array" view of a 2-d grid: element (i, j) lives
/// in block (i/bi, j/bj), and each block is contiguous in the address
/// space (optionally padded to a page). This is the SPLASH-2
/// "contiguous" layout the paper's DS optimizations introduce.
template <typename T>
class Grid4D {
 public:
  Grid4D() = default;
  Grid4D(Platform& p, std::size_t rows, std::size_t cols, std::size_t bi,
         std::size_t bj, const HomePolicy& homes,
         std::size_t block_align_bytes = 0)
      : rows_(rows), cols_(cols), bi_(bi), bj_(bj),
        nbi_((rows + bi - 1) / bi), nbj_((cols + bj - 1) / bj) {
    block_elems_ = bi_ * bj_;
    std::size_t block_bytes = block_elems_ * sizeof(T);
    if (block_align_bytes > 0) {
      block_bytes =
          (block_bytes + block_align_bytes - 1) / block_align_bytes *
          block_align_bytes;
    }
    block_stride_elems_ = block_bytes / sizeof(T);
    arr_ = SharedArray<T>(p, nbi_ * nbj_ * block_stride_elems_, homes,
                          block_align_bytes == 0 ? alignof(T)
                                                 : block_align_bytes);
  }

  T get(Ctx& c, std::size_t i, std::size_t j) const {
    return arr_.get(c, idx(i, j));
  }
  void set(Ctx& c, std::size_t i, std::size_t j, T v) {
    arr_.set(c, idx(i, j), v);
  }
  T& raw(std::size_t i, std::size_t j) { return arr_.raw(idx(i, j)); }
  const T& raw(std::size_t i, std::size_t j) const {
    return arr_.raw(idx(i, j));
  }

  /// First element index of block (I, J); a block's elements are the
  /// following bi*bj slots (row-major within the block).
  [[nodiscard]] std::size_t blockStart(std::size_t I, std::size_t J) const {
    return (I * nbj_ + J) * block_stride_elems_;
  }
  [[nodiscard]] SimAddr blockAddr(std::size_t I, std::size_t J) const {
    return arr_.addr(blockStart(I, J));
  }
  SharedArray<T>& flat() { return arr_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t blockRows() const { return nbi_; }
  [[nodiscard]] std::size_t blockCols() const { return nbj_; }

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return blockStart(i / bi_, j / bj_) + (i % bi_) * bj_ + (j % bj_);
  }

 private:
  std::size_t rows_ = 0, cols_ = 0, bi_ = 1, bj_ = 1, nbi_ = 0, nbj_ = 0;
  std::size_t block_elems_ = 0, block_stride_elems_ = 0;
  SharedArray<T> arr_;
};

}  // namespace rsvm
