// Protocol event tracing -- the paper's section-6 wish made a feature:
// "the detailed simulator served as an excellent though slow performance
// debugging tool ... incorporating the ability to deliver such
// information in real SVM systems would be very useful."
//
// Platforms emit TraceEvents through an optional hook (zero cost when
// unset). TraceRecorder aggregates them into the diagnoses the paper's
// methodology relies on: hot pages, contended locks, per-processor fault
// profiles, and critical-section dilation.
#pragma once

#include "sim/types.hpp"

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace rsvm {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    PageFault,       ///< SVM page fetch / FGS block fetch begins
    TwinCreate,      ///< first write to a page in an interval
    DiffSend,        ///< diff shipped to the home at a release
    LockAcquire,     ///< processor asks for a lock
    LockGrant,       ///< processor obtains the lock
    LockRelease,     ///< processor releases the lock
    BarrierArrive,
    BarrierDepart,
    SharedRead,      ///< timed shared read (id = address, bytes = size)
    SharedWrite,     ///< timed shared write (id = address, bytes = size)
    RacyRead,        ///< annotated intentionally-racy read (e.g. a steal peek)
    RacyWrite,       ///< annotated intentionally-racy write
    Alloc,           ///< shared allocation (id = base, bytes = size, proc = -1)
  };

  Kind kind;
  ProcId proc = -1;          ///< processor performing the event
  Cycles at = 0;             ///< its virtual time
  std::uint64_t id = 0;      ///< page number, address, lock id, or barrier id
  std::uint32_t bytes = 0;   ///< transfer/access size where applicable
};

inline const char* traceKindName(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::PageFault: return "PageFault";
    case TraceEvent::Kind::TwinCreate: return "TwinCreate";
    case TraceEvent::Kind::DiffSend: return "DiffSend";
    case TraceEvent::Kind::LockAcquire: return "LockAcquire";
    case TraceEvent::Kind::LockGrant: return "LockGrant";
    case TraceEvent::Kind::LockRelease: return "LockRelease";
    case TraceEvent::Kind::BarrierArrive: return "BarrierArrive";
    case TraceEvent::Kind::BarrierDepart: return "BarrierDepart";
    case TraceEvent::Kind::SharedRead: return "SharedRead";
    case TraceEvent::Kind::SharedWrite: return "SharedWrite";
    case TraceEvent::Kind::RacyRead: return "RacyRead";
    case TraceEvent::Kind::RacyWrite: return "RacyWrite";
    case TraceEvent::Kind::Alloc: return "Alloc";
  }
  return "?";
}

using TraceHook = std::function<void(const TraceEvent&)>;

/// Compose two hooks into one (e.g. a TraceRecorder plus a RaceChecker
/// observing the same run).
inline TraceHook teeHooks(TraceHook a, TraceHook b) {
  return [a = std::move(a), b = std::move(b)](const TraceEvent& e) {
    if (a) a(e);
    if (b) b(e);
  };
}

/// Collects events and produces the paper-style diagnoses. Per-access
/// events (SharedRead/SharedWrite/RacyRead/RacyWrite) are only counted,
/// not stored -- they are per-instruction and would dwarf the protocol
/// events the recorder aggregates (the RaceChecker consumes them
/// streamingly instead).
class TraceRecorder {
 public:
  /// Returns a hook bound to this recorder (attach to Platform::trace).
  TraceHook hook() {
    return [this](const TraceEvent& e) { record(e); };
  }

  void record(const TraceEvent& e) {
    switch (e.kind) {
      case TraceEvent::Kind::SharedRead:
      case TraceEvent::Kind::SharedWrite:
      case TraceEvent::Kind::RacyRead:
      case TraceEvent::Kind::RacyWrite:
        ++access_counts_[static_cast<std::size_t>(e.kind)];
        return;
      default:
        events_.push_back(e);
    }
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  [[nodiscard]] std::size_t count(TraceEvent::Kind k) const {
    switch (k) {
      case TraceEvent::Kind::SharedRead:
      case TraceEvent::Kind::SharedWrite:
      case TraceEvent::Kind::RacyRead:
      case TraceEvent::Kind::RacyWrite:
        return access_counts_[static_cast<std::size_t>(k)];
      default:
        break;
    }
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == k) ++n;
    }
    return n;
  }

  /// Pages with the most faults -- the "which data structure hurts"
  /// question. Returns (page, fault count), hottest first.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::size_t>> hotPages(
      std::size_t top_n = 10) const;

  /// Locks ranked by total acquire->grant latency -- distinguishes "lock
  /// held long" (dilated critical sections) from "lock asked often".
  struct LockProfile {
    std::uint64_t lock = 0;
    std::size_t acquires = 0;
    Cycles total_wait = 0;          ///< sum of acquire->grant times
    Cycles total_held = 0;          ///< sum of grant->release times
  };
  [[nodiscard]] std::vector<LockProfile> lockProfiles() const;

  /// Human-readable report of the above.
  [[nodiscard]] std::string report(std::size_t top_n = 8) const;

 private:
  std::vector<TraceEvent> events_;
  // Indexed by Kind; only the access kinds are used.
  std::array<std::size_t, 16> access_counts_{};
};

}  // namespace rsvm
