#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace rsvm {

std::vector<std::pair<std::uint64_t, std::size_t>> TraceRecorder::hotPages(
    std::size_t top_n) const {
  std::map<std::uint64_t, std::size_t> faults;
  for (const auto& e : events_) {
    if (e.kind == TraceEvent::Kind::PageFault) ++faults[e.id];
  }
  std::vector<std::pair<std::uint64_t, std::size_t>> out(faults.begin(),
                                                         faults.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::vector<TraceRecorder::LockProfile> TraceRecorder::lockProfiles() const {
  struct Pending {
    Cycles asked = 0;
    Cycles granted = 0;
    bool waiting = false;
    bool holding = false;
  };
  std::map<std::uint64_t, LockProfile> prof;
  // (lock, proc) -> in-flight acquire/hold state.
  std::map<std::pair<std::uint64_t, ProcId>, Pending> pending;
  for (const auto& e : events_) {
    const auto key = std::make_pair(e.id, e.proc);
    switch (e.kind) {
      case TraceEvent::Kind::LockAcquire:
        pending[key] = {e.at, 0, true, false};
        break;
      case TraceEvent::Kind::LockGrant: {
        auto& p = pending[key];
        auto& lp = prof[e.id];
        lp.lock = e.id;
        ++lp.acquires;
        if (p.waiting && e.at >= p.asked) lp.total_wait += e.at - p.asked;
        p.granted = e.at;
        p.waiting = false;
        p.holding = true;
        break;
      }
      case TraceEvent::Kind::LockRelease: {
        auto& p = pending[key];
        if (p.holding && e.at >= p.granted) {
          prof[e.id].total_held += e.at - p.granted;
        }
        p.holding = false;
        break;
      }
      default:
        break;
    }
  }
  std::vector<LockProfile> out;
  out.reserve(prof.size());
  for (const auto& [_, lp] : prof) out.push_back(lp);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_wait > b.total_wait;
  });
  return out;
}

std::string TraceRecorder::report(std::size_t top_n) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "trace: %zu events (%zu faults, %zu twins, %zu diffs, "
                "%zu lock acquires)\n",
                events_.size(), count(TraceEvent::Kind::PageFault),
                count(TraceEvent::Kind::TwinCreate),
                count(TraceEvent::Kind::DiffSend),
                count(TraceEvent::Kind::LockAcquire));
  out += line;
  out += "hot pages (page, faults):\n";
  for (const auto& [page, n] : hotPages(top_n)) {
    std::snprintf(line, sizeof line, "  page %8" PRIu64 "  %6zu faults\n",
                  page, n);
    out += line;
  }
  out += "contended locks (by total wait):\n";
  std::size_t shown = 0;
  for (const auto& lp : lockProfiles()) {
    if (shown++ == top_n) break;
    std::snprintf(line, sizeof line,
                  "  lock %5" PRIu64 "  %6zu acquires  wait %10" PRIu64
                  "  held %10" PRIu64 "  (avg CS %" PRIu64 " cycles)\n",
                  lp.lock, lp.acquires, lp.total_wait, lp.total_held,
                  lp.acquires > 0 ? lp.total_held / lp.acquires : 0);
    out += line;
  }
  return out;
}

}  // namespace rsvm
