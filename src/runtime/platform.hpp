// The public programming model: a coherent shared address space with
// locks and barriers, in the style of the SPLASH-2 / ANL macros the
// paper's applications were written against.
//
// A Platform bundles a simulated machine (engine + caches + interconnect
// + coherence protocol). Applications:
//   1. allocate shared data (alloc / SharedArray) with a home policy,
//   2. initialize it untimed through raw host pointers,
//   3. call run(body) -- body executes on every simulated processor,
//      with every shared access, lock, and barrier charged simulated
//      cycles by the platform's protocol,
//   4. inspect the returned RunStats (paper-style time breakdowns).
#pragma once

#include "mem/address_space.hpp"
#include "runtime/trace.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace rsvm {

class Ctx;

enum class PlatformKind { SVM, NUMA, SMP, FGS };

inline const char* platformName(PlatformKind k) {
  switch (k) {
    case PlatformKind::SVM: return "SVM";
    case PlatformKind::NUMA: return "DSM";
    case PlatformKind::SMP: return "SMP";
    case PlatformKind::FGS: return "FGS";
  }
  return "?";
}

/// Where the home copy of each page of an allocation lives. Evaluated at
/// allocation time at the platform's home granularity (4 KB pages).
struct HomePolicy {
  using Fn = std::function<ProcId(std::uint64_t page, std::uint64_t npages)>;
  Fn fn;

  static HomePolicy node(ProcId p) {
    return {[p](std::uint64_t, std::uint64_t) { return p; }};
  }
  static HomePolicy roundRobin(int nprocs) {
    return {[nprocs](std::uint64_t page, std::uint64_t) {
      return static_cast<ProcId>(page % static_cast<std::uint64_t>(nprocs));
    }};
  }
  static HomePolicy blocked(int nprocs) {
    return {[nprocs](std::uint64_t page, std::uint64_t npages) {
      const std::uint64_t per =
          (npages + static_cast<std::uint64_t>(nprocs) - 1) /
          static_cast<std::uint64_t>(nprocs);
      return static_cast<ProcId>(page / per);
    }};
  }
};

class Platform {
 public:
  virtual ~Platform() = default;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] PlatformKind kind() const { return kind_; }
  [[nodiscard]] int nprocs() const { return engine_.nprocs(); }
  [[nodiscard]] const char* name() const { return platformName(kind_); }

  // ---- allocation (host side, before run) ----
  SimAddr alloc(std::size_t bytes, std::size_t align, const HomePolicy& homes);
  [[nodiscard]] std::byte* host(SimAddr a) const { return space_.host(a); }
  [[nodiscard]] AddressSpace& space() { return space_; }

  /// Simulate that processor `p` already has resident copies of the pages
  /// in [base, base+len) -- e.g. because it wrote them during untimed
  /// initialization (the paper's Raytrace processor-0 effect). A no-op on
  /// hardware-coherent platforms (their caches are far smaller than data).
  virtual void warm(ProcId p, SimAddr base, std::size_t len);

  int makeLock();
  int makeBarrier();

  // ---- run the timed parallel section ----
  RunStats run(const std::function<void(Ctx&)>& body);

  // ---- simulated operations (called from inside processor fibers) ----

  /// One timed shared access. When a trace hook is attached, a
  /// SharedRead/SharedWrite event (RacyRead/RacyWrite if `racy`) is
  /// emitted before the protocol runs; the simulated cost is identical
  /// either way. `racy` marks accesses that are intentionally
  /// unsynchronized (e.g. a thief peeking at a victim's queue bounds) so
  /// the race checker can distinguish them from bugs.
  void access(SimAddr a, std::uint32_t size, bool write, bool racy = false) {
    if (trace) {
      const TraceEvent::Kind k =
          racy ? (write ? TraceEvent::Kind::RacyWrite
                        : TraceEvent::Kind::RacyRead)
               : (write ? TraceEvent::Kind::SharedWrite
                        : TraceEvent::Kind::SharedRead);
      emit(k, engine_.self(), a, size);
    }
    doAccess(a, size, write);
  }
  virtual void acquireLock(int id) = 0;
  virtual void releaseLock(int id) = 0;
  virtual void barrier(int id) = 0;

  /// The coherence-unit size at which the platform's protocol shares data
  /// (SVM page, hardware cache line, FGS block) -- the granularity at
  /// which false sharing happens on this platform.
  [[nodiscard]] virtual std::uint32_t coherenceBytes() const = 0;

  Engine& engine() { return engine_; }

  /// Diagnostic knob from the paper (Volrend analysis): treat page faults
  /// that occur while holding a lock as free. Only meaningful on SVM.
  bool free_cs_faults = false;

  /// Optional protocol event hook (see runtime/trace.hpp). Zero overhead
  /// when unset; attach a TraceRecorder to performance-debug a run the
  /// way the paper's authors used their simulator.
  TraceHook trace;

 protected:
  void emit(TraceEvent::Kind k, ProcId p, std::uint64_t id,
            std::uint32_t bytes = 0) {
    if (trace) trace(TraceEvent{k, p, engine_.now(p), id, bytes});
  }

 public:

  // ---- factory ----
  static std::unique_ptr<Platform> create(PlatformKind k, int nprocs);

 protected:
  Platform(PlatformKind k, const Engine::Config& ec)
      : kind_(k), engine_(ec) {}

  /// Protocol implementation of one timed access (see access()).
  virtual void doAccess(SimAddr a, std::uint32_t size, bool write) = 0;

  /// Called when an allocation extends the used arena: protocols size
  /// their page tables / directories here.
  virtual void onArenaGrown(std::size_t used_bytes) = 0;
  virtual void onLockCreated(int id) = 0;
  virtual void onBarrierCreated(int id) = 0;

  /// Assign homes for the allocation [base, base+bytes); implementations
  /// evaluate `homes` at their own home granularity.
  virtual void setHomes(SimAddr base, std::size_t bytes,
                        const HomePolicy& homes) = 0;

  /// The platform's home/coherence-unit granularity for allocation
  /// rounding (4 KB for the fixed-page platforms; the configured page
  /// size for SVM).
  [[nodiscard]] virtual std::uint32_t homeGranularity() const { return 4096; }

  static constexpr std::uint32_t kHomePageBytes = 4096;

  PlatformKind kind_;
  Engine engine_;
  AddressSpace space_;
  int num_locks_ = 0;
  int num_barriers_ = 0;
  bool ran_ = false;
};

/// Per-processor execution context handed to application bodies.
class Ctx {
 public:
  Ctx(Platform& p, ProcId id) : plat(p), id_(id) {}

  [[nodiscard]] ProcId id() const { return id_; }
  [[nodiscard]] int nprocs() const { return plat.nprocs(); }

  /// Charge `c` cycles of pure computation (1 CPI cores).
  void compute(Cycles c) { plat.engine().advance(c, Bucket::Compute); }

  void read(SimAddr a, std::uint32_t size) { plat.access(a, size, false); }
  void write(SimAddr a, std::uint32_t size) { plat.access(a, size, true); }

  /// Deliberately unsynchronized accesses (same simulated cost as
  /// read/write; traced as RacyRead/RacyWrite so the race checker treats
  /// them as annotated, not as bugs).
  void readRacy(SimAddr a, std::uint32_t size) {
    plat.access(a, size, false, /*racy=*/true);
  }
  void writeRacy(SimAddr a, std::uint32_t size) {
    plat.access(a, size, true, /*racy=*/true);
  }

  void lock(int id) { plat.acquireLock(id); }
  void unlock(int id) { plat.releaseLock(id); }
  void barrier(int id) { plat.barrier(id); }

  ProcStats& stats() { return plat.engine().stats(id_); }
  [[nodiscard]] Cycles now() const { return plat.engine().now(id_); }

  Platform& plat;

 private:
  ProcId id_;
};

}  // namespace rsvm
