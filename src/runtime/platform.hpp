// The public programming model: a coherent shared address space with
// locks and barriers, in the style of the SPLASH-2 / ANL macros the
// paper's applications were written against.
//
// A Platform bundles a simulated machine (engine + caches + interconnect
// + coherence protocol). Applications:
//   1. allocate shared data (alloc / SharedArray) with a home policy,
//   2. initialize it untimed through raw host pointers,
//   3. call run(body) -- body executes on every simulated processor,
//      with every shared access, lock, and barrier charged simulated
//      cycles by the platform's protocol,
//   4. inspect the returned RunStats (paper-style time breakdowns).
#pragma once

#include "check/coherence_oracle.hpp"
#include "mem/address_space.hpp"
#include "mem/cache.hpp"
#include "runtime/trace.hpp"
#include "sim/engine.hpp"
#include "sim/faultplan.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rsvm {

class Ctx;

enum class PlatformKind { SVM, NUMA, SMP, FGS };

/// Runtime correctness checking on a Platform. `Oracle` attaches the
/// shadow-memory coherence oracle (check/coherence_oracle.hpp): every
/// protocol permission transition is mirrored and audited, every timed
/// access is permission- and happens-before-checked. Must be enabled
/// before the first shared allocation; disables the access fast path
/// (the oracle needs to see every access).
enum class CheckLevel { Off, Oracle };

inline const char* platformName(PlatformKind k) {
  switch (k) {
    case PlatformKind::SVM: return "SVM";
    case PlatformKind::NUMA: return "DSM";
    case PlatformKind::SMP: return "SMP";
    case PlatformKind::FGS: return "FGS";
  }
  return "?";
}

/// Where the home copy of each page of an allocation lives. Evaluated at
/// allocation time at the platform's home granularity (4 KB pages).
struct HomePolicy {
  using Fn = std::function<ProcId(std::uint64_t page, std::uint64_t npages)>;
  Fn fn;

  static HomePolicy node(ProcId p) {
    return {[p](std::uint64_t, std::uint64_t) { return p; }};
  }
  static HomePolicy roundRobin(int nprocs) {
    return {[nprocs](std::uint64_t page, std::uint64_t) {
      return static_cast<ProcId>(page % static_cast<std::uint64_t>(nprocs));
    }};
  }
  static HomePolicy blocked(int nprocs) {
    return {[nprocs](std::uint64_t page, std::uint64_t npages) {
      const std::uint64_t per =
          (npages + static_cast<std::uint64_t>(nprocs) - 1) /
          static_cast<std::uint64_t>(nprocs);
      return static_cast<ProcId>(page / per);
    }};
  }
};

class Platform {
 public:
  virtual ~Platform() = default;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] PlatformKind kind() const { return kind_; }
  [[nodiscard]] int nprocs() const { return engine_.nprocs(); }
  [[nodiscard]] const char* name() const { return platformName(kind_); }

  // ---- allocation (host side, before run) ----
  SimAddr alloc(std::size_t bytes, std::size_t align, const HomePolicy& homes);
  [[nodiscard]] std::byte* host(SimAddr a) const { return space_.host(a); }
  [[nodiscard]] AddressSpace& space() { return space_; }

  /// Simulate that processor `p` already has resident copies of the pages
  /// in [base, base+len) -- e.g. because it wrote them during untimed
  /// initialization (the paper's Raytrace processor-0 effect). A no-op on
  /// hardware-coherent platforms (their caches are far smaller than data).
  virtual void warm(ProcId p, SimAddr base, std::size_t len);

  int makeLock();
  int makeBarrier();

  // ---- run the timed parallel section ----
  RunStats run(const std::function<void(Ctx&)>& body);

  // ---- simulated operations (called from inside processor fibers) ----

  /// One timed shared access. When a trace hook is attached, a
  /// SharedRead/SharedWrite event (RacyRead/RacyWrite if `racy`) is
  /// emitted before the protocol runs; the simulated cost is identical
  /// either way. `racy` marks accesses that are intentionally
  /// unsynchronized (e.g. a thief peeking at a victim's queue bounds) so
  /// the race checker can distinguish them from bugs.
  ///
  /// Hot path: a small per-processor line-permission filter is consulted
  /// before any virtual dispatch (see DESIGN.md, "Access fast
  /// path"). A hit replicates the slow path's observable effects exactly
  /// -- counters and LRU inline, the L1-hit cycles through a batched
  /// accumulator -- and is only taken while the batch provably cannot
  /// cross a yield point, so simulated results are bit-identical. A
  /// trace hook disables the filter entirely: consumers (race checker,
  /// recorder) must see every access.
  void access(SimAddr a, std::uint32_t size, bool write, bool racy = false) {
    if (shard_access_fence_ || (racy && shard_parallel_)) {
      // A racy-annotated access is, by definition, unordered by the
      // app's synchronization -- it is the one access class whose value
      // an unfenced run-ahead segment could read nondeterministically
      // (the conflicting writer runs under a lock, hence committed, but
      // this reader would not be). Fencing it pins the peek to commit
      // order, so the value read is the sequential one. Racy accesses
      // are rare (steal peeks), so the cost is noise.
      // Fenced commit mode (parallel engine on a platform whose access
      // path reads state that *other* processors' committed segments
      // mutate -- own L1/L2 tags under snooping or directory
      // invalidations, FGS block states, a clustered-SVM node's shared
      // page table -- or with a trace hook / oracle attached, whose
      // event order is the sequential one). The whole access, probe
      // included, runs holding the commit token: shardFence() orders
      // this segment into commit order first, and the ShardCritScope
      // keeps every yield inside the access (quantum expiry, miss
      // stalls) resuming committed, so the post-stall tail that fills
      // this processor's caches is serialized too. Committed segments
      // execute in exactly the sequential key order, so results and
      // observer event streams are bit-identical to --engine-threads=1.
      // Sequential runs and flat-SVM parallel runs without observers
      // never set the flag and keep the unfenced path below.
      Engine::ShardCritScope crit(engine_);
      engine_.shardFence();
      accessSlow(a, size, write, racy);
      return;
    }
    if (fast_on_ && !trace) {
      ProcFastState& fs = fast_[static_cast<std::size_t>(engine_.self())];
      const SimAddr line = a >> fast_line_shift_;
      FastEntry& fe = fs.entries[ProcFastState::fastIndex(line)];
      const Cycles cost = write ? fast_write_cost_ : fast_read_cost_;
      // All probe state was flattened to raw pointers in setFastPathProc;
      // a hit is a handful of loads with no call leaving this frame. The
      // way check inlines Cache's hit test (tag present, state
      // sufficient); the quantum check inlines Engine::fitsInQuantum for
      // the whole batch including this access.
      Cache::Way* w = fs.ways + fe.way;
      if (fe.line == line && (!write || fe.writable) &&
          fe.plat_gen == *fs.plat_gen && w->tag == line &&
          (write && fast_write_needs_mod_
               ? w->state == LineState::Modified
               : w->state != LineState::Invalid) &&
          *fs.since_yield + fs.batch + cost < fast_quantum_) {
        if (write) {
          ++fs.stats->writes;
          if (fe.dirty != nullptr) {
            // SVM dirty-byte tracking, same min-cap as the slow path.
            *fe.dirty = static_cast<std::uint16_t>(std::min<std::uint32_t>(
                fe.dirty_cap, static_cast<std::uint32_t>(*fe.dirty) + size));
          }
        } else {
          ++fs.stats->reads;
        }
        // LRU touch stays inline (not batched): the tick is a global
        // sequence feeding victim selection, so it must advance in true
        // access order for bit-identical eviction decisions.
        w->lru = ++*fs.lru_tick;
        fs.batch += cost;
        return;
      }
    }
    accessSlow(a, size, write, racy);
  }

  // Synchronization. Non-virtual wrappers: every sync operation is a
  // fast-path flush point (the batched cycles must be charged before the
  // protocol reads or publishes this processor's clock). The oracle
  // hooks bracket the protocol calls so its vector clocks see the same
  // happens-before edges the protocol enforces: a releaser publishes
  // before the impl hands the lock on, a grantee joins after the impl
  // returns with the lock held, and every barrier arrival is recorded
  // before any departure.
  // shardFence() orders the calling segment into the parallel engine's
  // commit order before the protocol touches lock/barrier/network state
  // shared across processors (a no-op under the sequential scheduler),
  // and the ShardCritScope keeps every yield *inside* the operation
  // (stallUntil, quantum expiry, block) resuming committed: the code
  // after such a yield goes straight back to shared protocol state
  // without another fence of its own.
  void acquireLock(int id) {
    flushAccess();
    Engine::ShardCritScope crit(engine_);
    engine_.shardFence();
    acquireLockImpl(id);
    if (oracle_) oracle_->onLockGrant(engine_.self(), id);
    // The crit persists across the whole lock-held span (closed in
    // releaseLock): a quantum yield between lock and unlock must resume
    // committed, or the critical section's writes could run ahead and
    // race a fenced racy peek of the same words (see access()). Short
    // critical sections finish inside the already-committed acquire
    // segment, so this costs nothing in the common case.
    engine_.shardCritEnter();
  }
  void releaseLock(int id) {
    flushAccess();
    Engine::ShardCritScope crit(engine_);
    engine_.shardCritExit();  // closes acquireLock's lock-held crit
    engine_.shardFence();
    if (oracle_) oracle_->onLockRelease(engine_.self(), id);
    releaseLockImpl(id);
  }
  void barrier(int id) {
    flushAccess();
    Engine::ShardCritScope crit(engine_);
    engine_.shardFence();
    if (oracle_) oracle_->onBarrierArrive(engine_.self(), id);
    barrierImpl(id);
    if (oracle_) oracle_->onBarrierDepart(engine_.self(), id);
  }

  /// Charge any batched fast-path cycles to the engine. Callable only
  /// from inside a processor fiber (a no-op elsewhere); never yields,
  /// because the fast path only batches while the whole batch fits
  /// strictly inside the drift quantum.
  void flushAccess() {
    if (fast_.empty()) return;
    const ProcId p = engine_.self();
    if (p < 0) return;
    ProcFastState& fs = fast_[static_cast<std::size_t>(p)];
    if (fs.batch == 0) return;
    const Cycles b = fs.batch;
    fs.batch = 0;
    engine_.advance(b, Bucket::Compute);
  }

  /// Force the fast path off (or back on) for this instance; used to
  /// demonstrate bit-identical results. The process-wide default for new
  /// platforms is setFastPathDefault() (bench `--no-fastpath`). Forced
  /// off while the oracle is attached (it must see every access).
  void setFastPathEnabled(bool on) {
    fast_on_ = on && !fast_.empty() && oracle_ == nullptr;
  }
  [[nodiscard]] bool fastPathEnabled() const { return fast_on_; }

  /// Diagnostic: how many accesses took the slow path (counted there, so
  /// the hot path pays nothing). With the total from ProcStats
  /// reads+writes this gives the filter hit rate (bench ext_simperf).
  /// Counted per processor: under the parallel engine, slow accesses run
  /// concurrently on different host threads.
  [[nodiscard]] std::uint64_t slowAccessCalls() const {
    std::uint64_t total = 0;
    for (const std::uint64_t c : slow_access_calls_) total += c;
    return total;
  }
  static void setFastPathDefault(bool on);
  [[nodiscard]] static bool fastPathDefault();

  // ---- parallel engine opt-in (see DESIGN.md, "Parallel engine") ----

  /// Can a single run() of this platform instance legally use the
  /// parallel engine scheduler? A platform may say yes under either
  /// discipline:
  ///  * unfenced run-ahead -- everything a processor's segment touches
  ///    *before* its first shardFence() (cache probes, page table reads
  ///    on valid pages, dirty tracking) is private to that processor
  ///    (flat SVM; shardAccessNeedsFence() == false), or
  ///  * fenced accesses -- timed accesses run committed-only under the
  ///    access()-level ShardCritScope+shardFence bracket, so state that
  ///    remote committed segments mutate (snoop/directory invalidations
  ///    of this processor's caches, node-shared SVM page tables) is only
  ///    ever read in commit order (SMP/NUMA/FGS, clustered SVM;
  ///    shardAccessNeedsFence() == true).
  /// Each override documents its pre-fence touch set. Conservative
  /// default: no.
  [[nodiscard]] virtual bool shardParallelSafe() const { return false; }

  /// Whether this platform's timed accesses must hold the commit token
  /// (the fenced-access branch in access()) under the parallel engine.
  /// Conservative default: yes. Only a platform whose *entire* access
  /// path -- probe, protocol, and post-stall cache fill -- touches
  /// nothing that another processor's committed segment can mutate may
  /// return false and keep the unfenced run-ahead fast path (flat SVM;
  /// see svm_platform.hpp). Irrelevant while shardParallelSafe() is
  /// false. Independently of this, run() forces fenced accesses whenever
  /// a trace hook or the oracle is attached, so observers see events in
  /// exactly the sequential order.
  [[nodiscard]] virtual bool shardAccessNeedsFence() const { return true; }

  /// Request host worker threads for this instance's run(); values above
  /// 1 take effect only when shardParallelSafe() holds and no fault plan
  /// is attached (its RNG draw order is defined by the sequential
  /// schedule). Trace hooks and the oracle are compatible with parallel
  /// runs: they force fenced accesses (see shardAccessNeedsFence), which
  /// replays every event-emitting point in commit-token order -- exactly
  /// the sequential event stream. Simulated results are bit-identical
  /// either way.
  void setEngineThreads(int t) { engine_threads_req_ = t < 1 ? 1 : t; }
  [[nodiscard]] int engineThreads() const { return engine_threads_req_; }
  /// Process-wide default for newly constructed platforms (bench
  /// --engine-threads). Atomic, like the fast-path default.
  static void setEngineThreadsDefault(int t);
  [[nodiscard]] static int engineThreadsDefault();

  /// The coherence-unit size at which the platform's protocol shares data
  /// (SVM page, hardware cache line, FGS block) -- the granularity at
  /// which false sharing happens on this platform.
  [[nodiscard]] virtual std::uint32_t coherenceBytes() const = 0;

  Engine& engine() { return engine_; }

  // ---- correctness checking and fault injection ----

  /// Attach (or detach) the coherence oracle. Must be called before the
  /// first shared allocation, so the oracle sees every home assignment.
  void setCheckLevel(CheckLevel lvl);
  [[nodiscard]] CheckLevel checkLevel() const {
    return oracle_ ? CheckLevel::Oracle : CheckLevel::Off;
  }
  /// The oracle's findings so far (null when checking is off).
  [[nodiscard]] const OracleReport* oracleReport() const {
    return oracle_ ? &oracle_->report() : nullptr;
  }

  /// Attach a deterministic fault-injection plan (sim/faultplan.hpp);
  /// seed 0 detaches. Must be called before run().
  void setFaultPlan(std::uint64_t seed);
  [[nodiscard]] FaultPlan* faultPlan() { return fault_.get(); }

  /// Diagnostic knob from the paper (Volrend analysis): treat page faults
  /// that occur while holding a lock as free. Only meaningful on SVM.
  bool free_cs_faults = false;

  /// Optional protocol event hook (see runtime/trace.hpp). Zero overhead
  /// when unset; attach a TraceRecorder to performance-debug a run the
  /// way the paper's authors used their simulator.
  TraceHook trace;

 protected:
  void emit(TraceEvent::Kind k, ProcId p, std::uint64_t id,
            std::uint32_t bytes = 0) {
    if (trace) trace(TraceEvent{k, p, engine_.now(p), id, bytes});
  }

 public:

  // ---- factory ----
  static std::unique_ptr<Platform> create(PlatformKind k, int nprocs);

 protected:
  Platform(PlatformKind k, const Engine::Config& ec)
      : kind_(k), engine_(ec) {
    slow_access_calls_.resize(static_cast<std::size_t>(ec.nprocs), 0);
    engine_threads_req_ = engineThreadsDefault();
  }

  /// Protocol implementation of one timed access (see access()).
  virtual void doAccess(SimAddr a, std::uint32_t size, bool write) = 0;

  /// Protocol implementations of the sync operations (see the public
  /// flushing wrappers above).
  virtual void acquireLockImpl(int id) = 0;
  virtual void releaseLockImpl(int id) = 0;
  virtual void barrierImpl(int id) = 0;

  // ---- oracle/fault-plan platform hooks ----

  /// The coherence domain an access by processor `p` is attributed to:
  /// the SVM node for clustered SVM, the processor itself elsewhere.
  [[nodiscard]] virtual int coherenceDomainOf(ProcId p) const {
    return static_cast<int>(p);
  }
  /// SVM's multiple-writer protocol legally admits concurrent writers of
  /// one page; hardware protocols are single-writer.
  [[nodiscard]] virtual bool multiWriterProtocol() const { return false; }
  /// Whether this platform reports *every* permission change to the
  /// oracle (SVM page tables, FGS block states: yes; hardware caches
  /// evict Shared lines silently: no).
  [[nodiscard]] virtual bool exactPermissionMirror() const { return true; }
  /// Hand the fault plan to the platform's network/bus/locks (null
  /// detaches). Called from setFaultPlan.
  virtual void applyFaultPlan(FaultPlan* /*fp*/) {}

  /// Checking state for derived protocols (null when off).
  [[nodiscard]] CoherenceOracle* oracle() { return oracle_.get(); }
  [[nodiscard]] FaultPlan* fault() { return fault_.get(); }

  // ---- access fast path (see DESIGN.md, "Access fast path") ----
  //
  // Validity of a filter entry is checked structurally on every use:
  //  * the cached L1 way must still hold the line's tag in a sufficient
  //    state (checked directly against the raw way array -- survives
  //    unrelated evictions, dies with any invalidate/downgrade/eviction
  //    of this line), and
  //  * the platform-level permission generation (if the platform has
  //    permission state outside the hardware caches: SVM page table,
  //    FGS block state) must be unchanged since the entry was primed.

  struct FastEntry {
    SimAddr line = ~SimAddr{0};   ///< line id (addr >> fast_line_shift_)
    std::uint64_t plat_gen = 0;   ///< platform permission gen at prime
    std::uint32_t way = 0;        ///< L1 way index holding the line
    bool writable = false;        ///< platform-level write permission held
    std::uint32_t dirty_cap = 0;  ///< SVM: page_bytes cap for dirty_bytes
    std::uint16_t* dirty = nullptr;  ///< SVM: &PageEntry::dirty_bytes
  };

  struct ProcFastState {
    // Direct-mapped, indexed by an XOR-fold of the line number (see
    // fastIndex). A plain `line % kEntries` is pathological for strided
    // numeric code: a column walk through a row-major matrix whose row
    // stride is a multiple of kEntries lines maps *every* element to the
    // same entry and the filter thrashes. Folding the upper line bits in
    // spreads such walks across the whole table.
    static constexpr std::size_t kEntries = 64;
    static constexpr unsigned kIndexShift = 6;  // log2(kEntries)
    [[nodiscard]] static std::size_t fastIndex(SimAddr line) {
      return static_cast<std::size_t>(line ^ (line >> kIndexShift)) &
             (kEntries - 1);
    }
    // Hot probe state first (one cache line): every pointer is resolved
    // once in setFastPathProc against storage that is stable for the
    // platform's lifetime (Engine::procs_ and Cache::ways_ never
    // reallocate), so a filter hit never calls into Cache or Engine.
    Cycles batch = 0;                     ///< L1-hit cycles not yet charged
    Cache::Way* ways = nullptr;           ///< the L1's raw way array
    std::uint64_t* lru_tick = nullptr;    ///< the L1's global LRU tick
    ProcStats* stats = nullptr;           ///< this processor's counters
    const Cycles* since_yield = nullptr;  ///< engine drift-quantum counter
    /// Platform permission generation; points at kZeroGen when the
    /// hardware caches are the whole permission story (SMP, NUMA), so
    /// the hot path never branches on null.
    const std::uint64_t* plat_gen = nullptr;
    std::array<FastEntry, kEntries> entries{};
    Cache* l1 = nullptr;  ///< cold: priming only (findWayIndex)
  };

  /// Platform hook consulted when priming an entry after a slow-path
  /// access: report whether writes may take the fast path and any extra
  /// per-entry state. Default (hardware-coherent platforms): the L1
  /// Modified check is the only write gate.
  struct FastPrimeInfo {
    bool install = true;
    bool writable = true;
    std::uint16_t* dirty = nullptr;
    std::uint32_t dirty_cap = 0;
  };
  virtual void fastPrime(ProcId /*p*/, SimAddr /*a*/, bool /*write*/,
                         FastPrimeInfo& /*fp*/) {}

  /// Derived-constructor wiring. `write_needs_modified` mirrors the
  /// platform's slow path: SMP/NUMA/FGS write-hits require an L1
  /// Modified line, SVM write-hits do not (no hardware coherence between
  /// node caches; dirty tracking is per page).
  void initFastPath(std::uint32_t line_bytes, Cycles read_cost,
                    Cycles write_cost, bool write_needs_modified);
  void setFastPathProc(ProcId p, Cache* l1, const std::uint64_t* plat_gen);

 private:
  void accessSlow(SimAddr a, std::uint32_t size, bool write, bool racy);
  void primeFastPath(ProcId p, SimAddr a, bool write);

  static constexpr std::uint64_t kZeroGen = 0;

  std::vector<ProcFastState> fast_;
  std::uint32_t fast_line_shift_ = 0;
  Cycles fast_read_cost_ = 1;
  Cycles fast_write_cost_ = 1;
  Cycles fast_quantum_ = 0;  ///< cached Engine::quantum()
  bool fast_write_needs_mod_ = true;
  bool fast_on_ = false;
  std::vector<std::uint64_t> slow_access_calls_;  // indexed by processor
  int engine_threads_req_ = 1;
  /// Set per run() (see there): parallel scheduler active and either the
  /// platform's access path needs the commit token (shardAccessNeedsFence)
  /// or an observer's event order must be the sequential one.
  bool shard_access_fence_ = false;
  /// Set per run(): the parallel scheduler is active at all (even in the
  /// unfenced flat-SVM discipline). Racy-annotated accesses fence on this
  /// alone -- see access().
  bool shard_parallel_ = false;

 protected:

  /// Called when an allocation extends the used arena: protocols size
  /// their page tables / directories here.
  virtual void onArenaGrown(std::size_t used_bytes) = 0;
  virtual void onLockCreated(int id) = 0;
  virtual void onBarrierCreated(int id) = 0;

  /// Assign homes for the allocation [base, base+bytes); implementations
  /// evaluate `homes` at their own home granularity.
  virtual void setHomes(SimAddr base, std::size_t bytes,
                        const HomePolicy& homes) = 0;

  /// The platform's home/coherence-unit granularity for allocation
  /// rounding (4 KB for the fixed-page platforms; the configured page
  /// size for SVM).
  [[nodiscard]] virtual std::uint32_t homeGranularity() const { return 4096; }

  static constexpr std::uint32_t kHomePageBytes = 4096;

  PlatformKind kind_;
  Engine engine_;
  AddressSpace space_;
  int num_locks_ = 0;
  int num_barriers_ = 0;
  bool ran_ = false;

 private:
  std::unique_ptr<CoherenceOracle> oracle_;
  std::unique_ptr<FaultPlan> fault_;
};

/// Per-processor execution context handed to application bodies.
class Ctx {
 public:
  Ctx(Platform& p, ProcId id) : plat(p), id_(id) {}

  [[nodiscard]] ProcId id() const { return id_; }
  [[nodiscard]] int nprocs() const { return plat.nprocs(); }

  /// Charge `c` cycles of pure computation (1 CPI cores).
  void compute(Cycles c) {
    plat.flushAccess();
    plat.engine().advance(c, Bucket::Compute);
  }

  void read(SimAddr a, std::uint32_t size) { plat.access(a, size, false); }
  void write(SimAddr a, std::uint32_t size) { plat.access(a, size, true); }

  /// Deliberately unsynchronized accesses (same simulated cost as
  /// read/write; traced as RacyRead/RacyWrite so the race checker treats
  /// them as annotated, not as bugs).
  void readRacy(SimAddr a, std::uint32_t size) {
    plat.access(a, size, false, /*racy=*/true);
  }
  void writeRacy(SimAddr a, std::uint32_t size) {
    plat.access(a, size, true, /*racy=*/true);
  }

  void lock(int id) { plat.acquireLock(id); }
  void unlock(int id) { plat.releaseLock(id); }
  void barrier(int id) { plat.barrier(id); }

  // Stats and clock reads flush the fast-path batch first so callers
  // always observe fully-charged cycle totals.
  ProcStats& stats() {
    plat.flushAccess();
    return plat.engine().stats(id_);
  }
  [[nodiscard]] Cycles now() {
    plat.flushAccess();
    // Under the parallel engine a run-ahead clock read could miss handler
    // charges the sequential schedule had already delivered; commit first.
    plat.engine().shardFence();
    return plat.engine().now(id_);
  }

  Platform& plat;

 private:
  ProcId id_;
};

}  // namespace rsvm
