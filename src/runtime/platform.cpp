#include "runtime/platform.hpp"

#include "proto/fgs/fgs_platform.hpp"
#include "proto/numa/numa_platform.hpp"
#include "proto/smp/smp_platform.hpp"
#include "proto/svm/svm_platform.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsvm {

SimAddr Platform::alloc(std::size_t bytes, std::size_t align,
                        const HomePolicy& homes) {
  if (ran_) throw std::logic_error("Platform: alloc after run()");
  // Round every allocation to whole home pages so that distinct
  // allocations never share a page home (false sharing *within* an
  // allocation is the effect under study; between allocations it would
  // be an artifact of our allocator).
  const std::uint32_t grain = homeGranularity();
  const std::size_t a = std::max<std::size_t>(align, grain);
  const std::size_t rounded = (bytes + grain - 1) / grain * grain;
  const SimAddr base = space_.allocate(rounded, a);
  onArenaGrown(space_.used());
  setHomes(base, rounded, homes);
  if (trace) {
    // Host-side event (no fiber is running): lets trace consumers
    // attribute addresses to allocations.
    trace(TraceEvent{TraceEvent::Kind::Alloc, -1, 0, base,
                     static_cast<std::uint32_t>(
                         std::min<std::size_t>(rounded, UINT32_MAX))});
  }
  return base;
}

void Platform::warm(ProcId, SimAddr, std::size_t) {}

int Platform::makeLock() {
  const int id = num_locks_++;
  onLockCreated(id);
  return id;
}

int Platform::makeBarrier() {
  const int id = num_barriers_++;
  onBarrierCreated(id);
  return id;
}

RunStats Platform::run(const std::function<void(Ctx&)>& body) {
  if (ran_) throw std::logic_error("Platform: run() may only be called once");
  ran_ = true;
  engine_.run([this, &body](ProcId p) {
    Ctx c(*this, p);
    body(c);
  });
  return engine_.collect();
}

std::unique_ptr<Platform> Platform::create(PlatformKind k, int nprocs) {
  switch (k) {
    case PlatformKind::SVM: return std::make_unique<SvmPlatform>(nprocs);
    case PlatformKind::NUMA: return std::make_unique<NumaPlatform>(nprocs);
    case PlatformKind::SMP: return std::make_unique<SmpPlatform>(nprocs);
    case PlatformKind::FGS: return std::make_unique<FgsPlatform>(nprocs);
  }
  throw std::invalid_argument("Platform::create: bad kind");
}

}  // namespace rsvm
