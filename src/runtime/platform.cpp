#include "runtime/platform.hpp"

#include "proto/fgs/fgs_platform.hpp"
#include "proto/numa/numa_platform.hpp"
#include "proto/smp/smp_platform.hpp"
#include "proto/svm/svm_platform.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>

namespace rsvm {


namespace {
// Process-wide default for newly constructed platforms (bench
// --no-fastpath). Atomic: sweep worker threads construct platforms
// concurrently.
std::atomic<bool> g_fastpath_default{true};
// Process-wide default engine-threads request (bench --engine-threads).
std::atomic<int> g_engine_threads_default{1};
}  // namespace

void Platform::setFastPathDefault(bool on) {
  g_fastpath_default.store(on, std::memory_order_relaxed);
}

bool Platform::fastPathDefault() {
  return g_fastpath_default.load(std::memory_order_relaxed);
}

void Platform::setEngineThreadsDefault(int t) {
  g_engine_threads_default.store(t < 1 ? 1 : t, std::memory_order_relaxed);
}

int Platform::engineThreadsDefault() {
  return g_engine_threads_default.load(std::memory_order_relaxed);
}

void Platform::initFastPath(std::uint32_t line_bytes, Cycles read_cost,
                            Cycles write_cost, bool write_needs_modified) {
  fast_line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
  fast_read_cost_ = read_cost;
  fast_write_cost_ = write_cost;
  fast_write_needs_mod_ = write_needs_modified;
  fast_quantum_ = engine_.quantum();
  fast_.resize(static_cast<std::size_t>(engine_.nprocs()));
  fast_on_ = fastPathDefault();
}

void Platform::setFastPathProc(ProcId p, Cache* l1,
                               const std::uint64_t* plat_gen) {
  ProcFastState& fs = fast_[static_cast<std::size_t>(p)];
  fs.l1 = l1;
  fs.ways = l1->fastWays();
  fs.lru_tick = l1->fastLruTick();
  fs.stats = &engine_.stats(p);
  fs.since_yield = engine_.sinceYieldPtr(p);
  fs.plat_gen = plat_gen != nullptr ? plat_gen : &kZeroGen;
}

void Platform::accessSlow(SimAddr a, std::uint32_t size, bool write,
                          bool racy) {
  ++slow_access_calls_[static_cast<std::size_t>(engine_.self())];
  flushAccess();
  if (trace) {
    const TraceEvent::Kind k =
        racy ? (write ? TraceEvent::Kind::RacyWrite : TraceEvent::Kind::RacyRead)
             : (write ? TraceEvent::Kind::SharedWrite
                      : TraceEvent::Kind::SharedRead);
    emit(k, engine_.self(), a, size);
  }
  // Bracket the access for the oracle: doAccess may stall mid-flight,
  // letting other processors revoke permissions this access legally rode
  // on. The oracle checks "held at some point during the access".
  if (oracle_) oracle_->beginAccess(engine_.self());
  doAccess(a, size, write);
  if (oracle_) oracle_->onAccess(engine_.self(), a, size, write, racy);
  // No priming in fenced-access mode: access() never consults the filter
  // there (its fenced branch returns before the probe), so installed
  // entries would be dead weight.
  if (fast_on_ && !trace && !shard_access_fence_)
    primeFastPath(engine_.self(), a, write);
}

void Platform::setCheckLevel(CheckLevel lvl) {
  if (ran_) throw std::logic_error("Platform: setCheckLevel after run()");
  if (lvl == CheckLevel::Off) {
    oracle_.reset();
    return;
  }
  // used() == 4096 is the empty arena (page 0 is the null sentinel the
  // AddressSpace never hands out).
  if (space_.used() > 4096) {
    throw std::logic_error(
        "Platform: enable the oracle before allocating shared data");
  }
  CoherenceOracle::Config oc;
  oc.nprocs = nprocs();
  oc.domain_of.resize(static_cast<std::size_t>(nprocs()));
  for (ProcId p = 0; p < nprocs(); ++p) {
    const int d = coherenceDomainOf(p);
    oc.domain_of[static_cast<std::size_t>(p)] = d;
    oc.ndomains = std::max(oc.ndomains, d + 1);
  }
  oc.unit_bytes = coherenceBytes();
  oc.multi_writer = multiWriterProtocol();
  oc.exact_mirror = exactPermissionMirror();
  oracle_ = std::make_unique<CoherenceOracle>(oc);
  fast_on_ = false;  // the oracle must see every access
}

void Platform::setFaultPlan(std::uint64_t seed) {
  if (ran_) throw std::logic_error("Platform: setFaultPlan after run()");
  fault_ = seed != 0 ? std::make_unique<FaultPlan>(seed) : nullptr;
  applyFaultPlan(fault_.get());
}

void Platform::primeFastPath(ProcId p, SimAddr a, bool write) {
  ProcFastState& fs = fast_[static_cast<std::size_t>(p)];
  if (fs.l1 == nullptr) return;
  // After doAccess the line is normally resident in L1 with a state
  // matching the access; if not (e.g. a pathological configuration), no
  // entry is installed and the line simply stays on the slow path.
  const std::uint32_t w = fs.l1->findWayIndex(a);
  if (w == Cache::kNoWay) return;
  FastPrimeInfo fp;
  fastPrime(p, a, write, fp);
  if (!fp.install) return;
  FastEntry fe;
  fe.line = a >> fast_line_shift_;
  fe.way = w;
  fe.writable = fp.writable;
  fe.dirty = fp.dirty;
  fe.dirty_cap = fp.dirty_cap;
  fe.plat_gen = *fs.plat_gen;
  fs.entries[ProcFastState::fastIndex(fe.line)] = fe;
}

SimAddr Platform::alloc(std::size_t bytes, std::size_t align,
                        const HomePolicy& homes) {
  if (ran_) throw std::logic_error("Platform: alloc after run()");
  // Round every allocation to whole home pages so that distinct
  // allocations never share a page home (false sharing *within* an
  // allocation is the effect under study; between allocations it would
  // be an artifact of our allocator).
  const std::uint32_t grain = homeGranularity();
  const std::size_t a = std::max<std::size_t>(align, grain);
  const std::size_t rounded = (bytes + grain - 1) / grain * grain;
  const SimAddr base = space_.allocate(rounded, a);
  onArenaGrown(space_.used());
  setHomes(base, rounded, homes);
  if (trace) {
    // Host-side event (no fiber is running): lets trace consumers
    // attribute addresses to allocations.
    trace(TraceEvent{TraceEvent::Kind::Alloc, -1, 0, base,
                     static_cast<std::uint32_t>(
                         std::min<std::size_t>(rounded, UINT32_MAX))});
  }
  return base;
}

void Platform::warm(ProcId, SimAddr, std::size_t) {}

int Platform::makeLock() {
  const int id = num_locks_++;
  onLockCreated(id);
  return id;
}

int Platform::makeBarrier() {
  const int id = num_barriers_++;
  onBarrierCreated(id);
  return id;
}

RunStats Platform::run(const std::function<void(Ctx&)>& body) {
  if (ran_) throw std::logic_error("Platform: run() may only be called once");
  ran_ = true;
  // Parallel scheduling needs (a) the platform's shard-safety contract
  // (shardParallelSafe: either unfenced run-ahead or fenced accesses,
  // see platform.hpp) and (b) no fault plan, whose RNG draw order is
  // defined by the sequential schedule. Trace hooks and the oracle no
  // longer force a fallback: they force *fenced accesses* instead, so
  // every event-emitting point runs committed and observers see the
  // sequential event stream byte-for-byte. Anything else falls back to
  // the sequential scheduler -- same simulated results by construction.
  const bool par_ok = engine_threads_req_ > 1 && shardParallelSafe() &&
                      fault_ == nullptr;
  shard_access_fence_ =
      par_ok && (shardAccessNeedsFence() || trace || oracle_ != nullptr);
  shard_parallel_ = par_ok;
  engine_.setThreads(par_ok ? engine_threads_req_ : 1);
  engine_.run([this, &body](ProcId p) {
    Ctx c(*this, p);
    body(c);
    // The fiber is about to finish: charge any batched fast-path cycles
    // so collect() sees final clocks.
    flushAccess();
  });
  return engine_.collect();
}

std::unique_ptr<Platform> Platform::create(PlatformKind k, int nprocs) {
  switch (k) {
    case PlatformKind::SVM: return std::make_unique<SvmPlatform>(nprocs);
    case PlatformKind::NUMA: return std::make_unique<NumaPlatform>(nprocs);
    case PlatformKind::SMP: return std::make_unique<SmpPlatform>(nprocs);
    case PlatformKind::FGS: return std::make_unique<FgsPlatform>(nprocs);
  }
  throw std::invalid_argument("Platform::create: bad kind");
}

}  // namespace rsvm
