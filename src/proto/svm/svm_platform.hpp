// All-software, page-grained shared virtual memory platform running a
// home-based lazy release consistency (HLRC) protocol, after Zhou,
// Iftode & Li (OSDI'96) as used in the paper (section 2.1.1):
//
//  * every page has a home node; the home copy is kept up to date,
//  * a multiple-writer scheme uses twins and diffs: the first write to a
//    page in an interval creates a twin; at a release the dirty pages
//    are compared against their twins and the diffs are sent to the
//    pages' homes,
//  * write notices carry vector timestamps; at an acquire the incoming
//    notices invalidate causally-stale pages, which are then re-fetched
//    whole from their homes on the next access,
//  * locks have home nodes and are handed off by messages carrying the
//    releaser's vector clock; barriers are managed by a designated node.
//
// Node model (paper's parameters): 200 MHz 1-CPI x86, 8 KB direct-mapped
// L1 + 512 KB 2-way L2 (32 B lines), 4 KB pages, Myrinet-class network
// whose packets cross a 100 MB/s I/O bus (= 0.5 B/cycle at 200 MHz).
//
// Setting procs_per_node > 1 gives the paper's section-7 future-work
// configuration: hardware-coherent SMP nodes connected by SVM. Page
// state, intervals, vector clocks, twins and diffs are then per *node*;
// a page fetched by one processor serves its whole node, and locks and
// barriers use a two-level scheme (cheap within a node, messages across
// nodes).
#pragma once

#include "mem/cache.hpp"
#include "net/network.hpp"
#include "runtime/platform.hpp"
#include "sim/resource.hpp"

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

namespace rsvm {

struct SvmParams {
  /// Engine drift quantum (interleaving granularity of direct execution).
  Cycles quantum = 10000;
  /// Processors per SVM node (1 = the paper's base platform; >1 = the
  /// section-7 "SMP nodes connected by SVM" configuration).
  int procs_per_node = 1;
  /// true = home-based LRC (HLRC, the paper's protocol): diffs are eagerly
  /// created at releases and sent to each page's home, and a fault fetches
  /// the whole up-to-date page from the home.
  /// false = TreadMarks-style non-home-based LRC: releases only log write
  /// notices (cheap), writers *retain* their modifications, and a fault
  /// fetches a base copy from the last writer plus lazily-created diffs
  /// from every writer with pending modifications (expensive, and memory
  /// grows with retained diffs -- the HLRC advantages the paper cites).
  bool home_based = true;
  std::uint32_t page_bytes = 4096;
  CacheConfig l1{8 * 1024, 32, 1};
  CacheConfig l2{512 * 1024, 32, 2};
  Cycles l1_miss_penalty = 10;   ///< L1 miss that hits in L2
  Cycles mem_latency = 60;       ///< L2 miss to local memory
  // Network: ~6 us/message software path, ~1 us wire, 100 MB/s I/O bus.
  Cycles msg_sw_overhead = 1200;
  Cycles wire_latency = 200;
  double iobus_bytes_per_cycle = 0.5;
  std::uint32_t msg_header_bytes = 64;
  // Protocol handler costs (cycles on the node CPU).
  Cycles fault_handler = 500;    ///< requester-side trap + request build
  Cycles serve_page = 800;       ///< home-side page service
  Cycles map_page = 200;         ///< requester-side page install
  Cycles twin_create = 2500;     ///< copy 4 KB
  Cycles diff_scan = 3000;       ///< compare 4 KB against twin
  Cycles diff_apply_base = 300;  ///< home-side diff application, fixed
  double diff_apply_per_byte = 0.25;
  Cycles notice_process = 25;    ///< per incoming write notice at acquire
  Cycles lock_handler = 400;     ///< per lock protocol message
  Cycles lock_local_reacquire = 150;
  Cycles barrier_handler = 350;  ///< manager work per arrival/release
  // Intra-node costs (only used when procs_per_node > 1).
  Cycles intra_lock_handoff = 200;   ///< lock transfer inside an SMP node
  Cycles intra_barrier_rmw = 120;    ///< node-local barrier arrival
  Cycles intra_release_stagger = 60; ///< node-local wakeup fan-out
};

class SvmPlatform final : public Platform {
 public:
  explicit SvmPlatform(int nprocs, const SvmParams& params = {});

  void warm(ProcId p, SimAddr base, std::size_t len) override;
  [[nodiscard]] std::uint32_t coherenceBytes() const override {
    return prm_.page_bytes;
  }

  /// Pre-fence touch set (flat, procs_per_node == 1): everything a
  /// segment touches before its first page fault / sync fence is
  /// node-private -- cache probes, the node's own page-table entries
  /// (valid-page reads, dirty-byte updates), twins and the dirty list.
  /// Other nodes only ever mutate a node's state through fenced protocol
  /// entry points (pageFault/sync), so flat SVM runs unfenced run-ahead.
  ///
  /// Clustered (procs_per_node > 1): the page table, twins, and dirty
  /// list are shared by a node's processors, so an unfenced probe by one
  /// could race a node-mate's committed fault that installs or maps a
  /// page. shardAccessNeedsFence() then demands the access()-level fence
  /// bracket: every node-state read and mutation happens holding the
  /// commit token, which is exactly per-node commit discipline (node
  /// mates serialize in sequential key order, like everyone else).
  [[nodiscard]] bool shardParallelSafe() const override { return true; }
  [[nodiscard]] bool shardAccessNeedsFence() const override {
    return prm_.procs_per_node > 1;
  }

  [[nodiscard]] const SvmParams& params() const { return prm_; }
  [[nodiscard]] int nodes() const { return nnodes_; }
  [[nodiscard]] ProcId nodeOf(ProcId p) const {
    return p / prm_.procs_per_node;
  }

  /// Pages currently resident (valid) at p's node -- exposed for tests.
  [[nodiscard]] bool resident(ProcId p, SimAddr a) const;
  /// Total diff bytes currently retained by writers (TreadMarks mode):
  /// the memory-overhead disadvantage of non-home-based LRC.
  [[nodiscard]] std::uint64_t retainedDiffBytes() const;
  /// Home *node* of an address.
  [[nodiscard]] ProcId homeOf(SimAddr a) const;

 protected:
  void doAccess(SimAddr a, std::uint32_t size, bool write) override;
  void acquireLockImpl(int id) override;
  void releaseLockImpl(int id) override;
  void barrierImpl(int id) override;
  /// Oracle wiring: page permissions are per *node*, the twin/diff
  /// scheme is a legal multiple-writer protocol, and the page tables are
  /// an exact mirror (every valid/dirty change is reported).
  [[nodiscard]] int coherenceDomainOf(ProcId p) const override {
    return static_cast<int>(nodeOf(p));
  }
  [[nodiscard]] bool multiWriterProtocol() const override { return true; }
  void applyFaultPlan(FaultPlan* fp) override { net_.setFaultPlan(fp); }
  /// Writes may take the fast path only while the page is valid and
  /// already on the node's dirty list (twin made, dirty bytes tracked);
  /// both conditions are guarded by the node's pt_gen_.
  void fastPrime(ProcId p, SimAddr a, bool write, FastPrimeInfo& fp) override;
  void onArenaGrown(std::size_t used_bytes) override;
  void onLockCreated(int id) override;
  void onBarrierCreated(int id) override;
  void setHomes(SimAddr base, std::size_t bytes,
                const HomePolicy& homes) override;
  [[nodiscard]] std::uint32_t homeGranularity() const override {
    return prm_.page_bytes;
  }

 private:
  using Vc = std::array<std::uint32_t, kMaxProcs>;  // indexed by node

  struct PageEntry {
    std::uint8_t valid = 0;
    std::uint8_t in_dirty_list = 0;  ///< twinned (non-home) or tracked (home)
    std::uint16_t dirty_bytes = 0;
    // Non-home-based (TreadMarks) mode only:
    std::uint64_t pending_diffs = 0;  ///< nodes with unfetched diffs
    std::uint16_t retained_bytes = 0; ///< our retained (unGC'd) diff bytes
  };

  struct LockState {
    ProcId home = 0;         ///< home *node*
    bool held = false;
    ProcId owner = -1;       ///< current logical holder (processor)
    ProcId last_owner = -1;  ///< processor that last released
    Vc vc{};                 ///< releaser's node vector clock
    Cycles ready_at = 0;
    std::deque<ProcId> waiters;
  };

  struct BarrierState {
    ProcId manager = 0;  ///< manager *node*
    int arrived = 0;     ///< processors arrived this epoch
    std::vector<ProcId> waiting;
    std::vector<int> node_arrived;  ///< per node, this epoch
    Vc merged{};
    Vc snapshot{};
    Cycles last_arrival = 0;
  };

  void pageFault(ProcId p, std::uint64_t page);
  void pageFaultLrc(ProcId p, std::uint64_t page);
  /// Oracle audit of one page at a protocol transition: page-table state
  /// across every node vs. the oracle's permission mirror, with the home
  /// required to keep its copy in home-based mode.
  void auditPage(ProcId actor, std::uint64_t page, const char* transition);
  /// Fault injection: occasionally drop a clean, non-home, untwinned
  /// page from p's node (legal in home-based mode -- the home copy stays
  /// current, the next access simply re-fetches it).
  void maybeSpuriousDrop(ProcId p);
  /// Close the node's current interval: create/send diffs for dirty
  /// pages and log write notices. Returns when all diffs are applied.
  Cycles closeInterval(ProcId p);
  /// Process incoming causal knowledge `vq` on p's node.
  void applyNotices(ProcId p, const Vc& vq);
  Cycles flushPage(ProcId p, std::uint64_t page, Cycles start);

  [[nodiscard]] std::uint64_t pageOf(SimAddr a) const {
    return a / prm_.page_bytes;
  }

  SvmParams prm_;
  int nnodes_ = 1;
  net::PointToPoint net_;          ///< between nodes
  std::vector<Resource> handler_;  ///< per-node protocol CPU service
  std::vector<ProcId> home_;       ///< per page: home node
  std::vector<std::vector<PageEntry>> pt_;  ///< [node][page]
  // Per-node page-permission generation for the access fast path. Bumped
  // whenever a node's page state is *reduced* (valid -> 0 at acquire or
  // barrier, dirty list cleared at a release) or its PageEntry storage
  // moves; raising permissions (fault, warm) never invalidates entries.
  std::vector<std::uint64_t> pt_gen_;  ///< [node]
  std::vector<Vc> vc_;                      ///< [node]
  // Outer per-interval container is a deque: applyNotices may yield while
  // iterating an interval's page list, during which the logging node can
  // append a new interval; deque growth never invalidates elements.
  std::vector<std::deque<std::vector<std::uint32_t>>> notices_;  ///< [node]
  std::vector<std::vector<std::uint32_t>> dirty_;  ///< [node]
  std::vector<ProcId> last_writer_;  ///< [page] most recent noticing node (LRC)
  std::vector<Cache> l1_, l2_;   ///< per processor
  std::vector<int> locks_held_;  ///< per processor (free_cs_faults)
  std::vector<LockState> locks_;
  std::vector<BarrierState> barriers_;
  // Scratch reused across barrier release episodes so the slow path
  // stops allocating three vectors per barrier. Safe as members: barrier
  // code always runs committed (sequentially, or holding the parallel
  // engine's commit token) and each episode's scratch use ends before
  // the final stallUntil yield, so episodes never overlap.
  std::vector<ProcId> scratch_waiters_;
  std::vector<Cycles> scratch_node_release_;
  std::vector<int> scratch_fanout_;
};

}  // namespace rsvm
