#include "proto/svm/svm_platform.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rsvm {

namespace {
Engine::Config engineConfig(int nprocs, Cycles quantum) {
  Engine::Config ec;
  ec.nprocs = nprocs;
  ec.quantum = quantum;
  return ec;
}
}  // namespace

SvmPlatform::SvmPlatform(int nprocs, const SvmParams& params)
    : Platform(PlatformKind::SVM, engineConfig(nprocs, params.quantum)),
      prm_(params),
      nnodes_((nprocs + params.procs_per_node - 1) / params.procs_per_node),
      net_(nnodes_, {params.msg_sw_overhead, params.wire_latency,
                     params.iobus_bytes_per_cycle}),
      handler_(static_cast<std::size_t>(nnodes_)),
      pt_(static_cast<std::size_t>(nnodes_)),
      pt_gen_(static_cast<std::size_t>(nnodes_), 0),
      vc_(static_cast<std::size_t>(nnodes_)),
      notices_(static_cast<std::size_t>(nnodes_)),
      dirty_(static_cast<std::size_t>(nnodes_)),
      locks_held_(static_cast<std::size_t>(nprocs), 0) {
  if (params.procs_per_node < 1) {
    throw std::invalid_argument("SvmPlatform: procs_per_node must be >= 1");
  }
  // The non-home-based protocol tracks pending diffs in a per-node
  // bitmask (PageEntry::pending_diffs, one word); beyond-64-node runs
  // are HLRC-only.
  if (!params.home_based && nnodes_ > 64) {
    throw std::invalid_argument(
        "SvmPlatform: non-home-based LRC supports at most 64 nodes");
  }
  l1_.reserve(static_cast<std::size_t>(nprocs));
  l2_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    l1_.emplace_back(prm_.l1);
    l2_.emplace_back(prm_.l2);
  }
  // Fast path: an L1 hit costs 1 Compute cycle. Write-hits do not need
  // an L1 Modified line (the node caches are not hardware-coherent; the
  // slow path ignores the upgrade bit), but they do need page-level
  // permission, guarded by the node's pt_gen_.
  initFastPath(prm_.l1.line_bytes, 1, 1, /*write_needs_modified=*/false);
  for (int i = 0; i < nprocs; ++i) {
    setFastPathProc(i, &l1_[static_cast<std::size_t>(i)],
                    &pt_gen_[static_cast<std::size_t>(nodeOf(i))]);
  }
}

void SvmPlatform::onArenaGrown(std::size_t used_bytes) {
  const std::size_t npages =
      (used_bytes + prm_.page_bytes - 1) / prm_.page_bytes;
  home_.resize(npages, 0);
  last_writer_.resize(npages, -1);
  for (auto& t : pt_) t.resize(npages);
  // Growing a page table may reallocate its PageEntry storage; kill any
  // fast-path entries holding dirty_bytes pointers into the old storage.
  for (auto& g : pt_gen_) ++g;
}

void SvmPlatform::setHomes(SimAddr base, std::size_t bytes,
                           const HomePolicy& homes) {
  const std::uint64_t first_page = pageOf(base);
  const std::uint64_t npages =
      (bytes + prm_.page_bytes - 1) / prm_.page_bytes;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const ProcId hp = homes.fn(i, npages);
    assert(hp >= 0 && hp < nprocs());
    const ProcId h = nodeOf(hp);
    home_[first_page + i] = h;
    // The home node's copy is always valid.
    pt_[static_cast<std::size_t>(h)][first_page + i].valid = 1;
    if (oracle()) {
      oracle()->grant(h, first_page + i, OraclePerm::Read, "home-init");
    }
  }
}

void SvmPlatform::onLockCreated(int id) {
  LockState ls;
  ls.home = static_cast<ProcId>(id % nnodes_);
  locks_.push_back(ls);
}

void SvmPlatform::onBarrierCreated(int id) {
  BarrierState bs;
  // Arbitrary static manager assignment; with 16 nodes the first barrier
  // is managed by node 10, matching the paper's LU anecdote.
  bs.manager = static_cast<ProcId>((10 + id) % nnodes_);
  bs.node_arrived.assign(static_cast<std::size_t>(nnodes_), 0);
  barriers_.push_back(bs);
}

void SvmPlatform::warm(ProcId p, SimAddr base, std::size_t len) {
  if (len == 0) return;
  const std::uint64_t first = pageOf(base);
  const std::uint64_t last = pageOf(base + len - 1);
  for (std::uint64_t pg = first; pg <= last; ++pg) {
    pt_[static_cast<std::size_t>(nodeOf(p))][pg].valid = 1;
    if (oracle()) {
      oracle()->grant(nodeOf(p), pg, OraclePerm::Read, "warm");
    }
  }
}

void SvmPlatform::auditPage(ProcId actor, std::uint64_t page,
                            const char* transition) {
  CoherenceOracle* oc = oracle();
  if (oc == nullptr) return;
  CoherenceOracle::UnitAudit ua;
  ua.unit = page;
  ua.actor = actor;
  ua.transition = transition;
  for (int d = 0; d < nnodes_; ++d) {
    const PageEntry& e = pt_[static_cast<std::size_t>(d)][page];
    if (e.valid != 0) ua.actual_readers |= 1ull << static_cast<unsigned>(d);
    if (e.in_dirty_list != 0) {
      ua.actual_writers |= 1ull << static_cast<unsigned>(d);
    }
  }
  // SVM has no central directory; the page-table scan *is* the
  // authoritative copyset, so the audit's value is the home-copy and
  // mirror checks.
  ua.dir_readers = ua.actual_readers;
  ua.dir_owner = -1;
  // The home copy is only an invariant in home-based mode; TreadMarks
  // write notices can legally invalidate it.
  ua.must_reader = prm_.home_based ? static_cast<int>(home_[page]) : -1;
  oc->audit(ua);
}

void SvmPlatform::maybeSpuriousDrop(ProcId p) {
  FaultPlan* fp = fault();
  // Only legal in home-based mode: a TreadMarks writer's copy can be the
  // only up-to-date one in the system, so nothing may be dropped there.
  if (fp == nullptr || !prm_.home_based || home_.empty()) return;
  if (!fp->spuriousNow()) return;
  const auto ni = static_cast<std::size_t>(nodeOf(p));
  const std::uint64_t npages = home_.size();
  std::uint64_t pg = fp->pick(npages);
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(npages, 64); ++i) {
    PageEntry& e = pt_[ni][pg];
    if (e.valid != 0 && e.in_dirty_list == 0 && e.pending_diffs == 0 &&
        e.retained_bytes == 0 &&
        home_[pg] != static_cast<ProcId>(nodeOf(p))) {
      e.valid = 0;
      ++pt_gen_[ni];  // fast-path entries for this page die with the copy
      if (oracle()) {
        oracle()->revoke(static_cast<int>(ni), pg, OraclePerm::None,
                         "spurious-drop");
      }
      return;
    }
    pg = (pg + 1) % npages;
  }
}

bool SvmPlatform::resident(ProcId p, SimAddr a) const {
  return pt_[static_cast<std::size_t>(nodeOf(p))][pageOf(a)].valid != 0;
}

ProcId SvmPlatform::homeOf(SimAddr a) const { return home_[pageOf(a)]; }

void SvmPlatform::pageFault(ProcId p, std::uint64_t page) {
  Engine& eng = engine_;
  // First touch of cross-node state (network, home handler FIFO, the
  // home's clock): order this segment into the parallel commit order.
  // No ShardCritScope here: every shared touch below happens before the
  // single stallUntil, and the code after it is node-private in the flat
  // configuration -- so the post-fault continuation stays eligible for
  // run-ahead. Keep it that way when editing (or add a scope, as the
  // sync wrappers do). Clustered (procs_per_node > 1): the page-table
  // install after the stall is node-*shared*, but those runs take the
  // fenced-access path (shardAccessNeedsFence), whose access()-level
  // ShardCritScope already keeps this whole fault committed.
  eng.shardFence();
  eng.stats(p).page_faults++;
  emit(TraceEvent::Kind::PageFault, p, page, prm_.page_bytes);
  const ProcId n = nodeOf(p);
  PageEntry& e = pt_[static_cast<std::size_t>(n)][page];
  if (free_cs_faults && locks_held_[static_cast<std::size_t>(p)] > 0) {
    e.valid = 1;  // diagnostic mode: the fetch is free
    if (oracle()) oracle()->grant(n, page, OraclePerm::Read, "page-fetch");
    return;
  }
  const ProcId h = home_[page];
  Cycles t0 = eng.now(p) + prm_.fault_handler;
  if (fault() != nullptr) t0 += fault()->handlerJitter();
  // Request message to the home node.
  const Cycles t1 = net_.send(n, h, prm_.msg_header_bytes, t0);
  // Home-side service (serialized at the home's protocol handler).
  const Cycles t2 =
      handler_[static_cast<std::size_t>(h)].acquire(t1, prm_.serve_page);
  eng.chargeHandler(h * prm_.procs_per_node, prm_.serve_page);
  // Whole-page reply.
  const Cycles t3 =
      net_.send(h, n, prm_.page_bytes + prm_.msg_header_bytes, t2);
  eng.stallUntil(t3 + prm_.map_page, Bucket::DataWait);
  e.valid = 1;
  if (oracle()) {
    oracle()->grant(n, page, OraclePerm::Read, "page-fetch");
    auditPage(p, page, "page-fetch");
  }
  // The fetched page supersedes stale cached lines of every processor in
  // the node (DMA into node memory).
  const SimAddr base = static_cast<SimAddr>(page) * prm_.page_bytes;
  for (int q = n * prm_.procs_per_node;
       q < std::min((n + 1) * prm_.procs_per_node, nprocs()); ++q) {
    l1_[static_cast<std::size_t>(q)].invalidateRange(base, prm_.page_bytes);
    l2_[static_cast<std::size_t>(q)].invalidateRange(base, prm_.page_bytes);
  }
}

std::uint64_t SvmPlatform::retainedDiffBytes() const {
  std::uint64_t total = 0;
  for (const auto& table : pt_) {
    for (const PageEntry& e : table) total += e.retained_bytes;
  }
  return total;
}

void SvmPlatform::pageFaultLrc(ProcId p, std::uint64_t page) {
  Engine& eng = engine_;
  eng.shardFence();  // cross-node state ahead, as in pageFault
  eng.stats(p).page_faults++;
  const ProcId n = nodeOf(p);
  PageEntry& e = pt_[static_cast<std::size_t>(n)][page];
  if (free_cs_faults && locks_held_[static_cast<std::size_t>(p)] > 0) {
    e.valid = 1;
    e.pending_diffs = 0;
    if (oracle()) oracle()->grant(n, page, OraclePerm::Read, "lrc-fetch");
    return;
  }
  // Base copy comes from the most recent writer we know of (its own copy
  // includes its writes); diffs are requested from every other node with
  // pending modifications, created lazily at each, and applied here.
  ProcId base_src = last_writer_[page];
  if (base_src < 0 || base_src == n) base_src = home_[page];
  Cycles t0 = eng.now(p) + prm_.fault_handler;
  if (fault() != nullptr) t0 += fault()->handlerJitter();
  Cycles done = t0;
  if (base_src != n) {
    const Cycles t1 = net_.send(n, base_src, prm_.msg_header_bytes, t0);
    const Cycles t2 = handler_[static_cast<std::size_t>(base_src)].acquire(
        t1, prm_.serve_page);
    eng.chargeHandler(base_src * prm_.procs_per_node, prm_.serve_page);
    done = net_.send(base_src, n, prm_.page_bytes + prm_.msg_header_bytes, t2);
  }
  std::uint64_t sources = e.pending_diffs & ~(1ull << static_cast<unsigned>(n));
  if (base_src >= 0) {
    sources &= ~(1ull << static_cast<unsigned>(base_src));
  }
  Cycles apply_cost = 0;
  while (sources != 0) {
    const int src = std::countr_zero(sources);
    sources &= sources - 1;
    const PageEntry& se = pt_[static_cast<std::size_t>(src)][page];
    const std::uint32_t bytes =
        se.retained_bytes > 0 ? se.retained_bytes : prm_.msg_header_bytes;
    // Request; the writer creates the diff lazily (twin compare) and
    // replies with it. Requests to distinct writers overlap.
    const Cycles t1 =
        net_.send(n, static_cast<ProcId>(src), prm_.msg_header_bytes, t0);
    const Cycles t2 = handler_[static_cast<std::size_t>(src)].acquire(
        t1, prm_.diff_scan);
    eng.chargeHandler(src * prm_.procs_per_node, prm_.diff_scan);
    const Cycles t3 = net_.send(static_cast<ProcId>(src), n,
                                bytes + prm_.msg_header_bytes, t2);
    done = std::max(done, t3);
    apply_cost += prm_.diff_apply_base +
                  static_cast<Cycles>(prm_.diff_apply_per_byte * bytes);
  }
  eng.stallUntil(done + apply_cost + prm_.map_page, Bucket::DataWait);
  if (apply_cost > 0) {
    eng.stats(p).diff_bytes += 0;  // applied, not created, here
  }
  e.valid = 1;
  e.pending_diffs = 0;
  if (oracle()) {
    oracle()->grant(n, page, OraclePerm::Read, "lrc-fetch");
    auditPage(p, page, "lrc-fetch");
  }
  const SimAddr base = static_cast<SimAddr>(page) * prm_.page_bytes;
  for (int q = n * prm_.procs_per_node;
       q < std::min((n + 1) * prm_.procs_per_node, nprocs()); ++q) {
    l1_[static_cast<std::size_t>(q)].invalidateRange(base, prm_.page_bytes);
    l2_[static_cast<std::size_t>(q)].invalidateRange(base, prm_.page_bytes);
  }
}

void SvmPlatform::doAccess(SimAddr a, std::uint32_t size, bool write) {
  const ProcId p = engine_.self();
  ProcStats& st = engine_.stats(p);
  if (write) {
    ++st.writes;
  } else {
    ++st.reads;
  }
  const std::uint64_t page = pageOf(a);
  const auto ni = static_cast<std::size_t>(nodeOf(p));
  PageEntry* e = &pt_[ni][page];
  if (e->valid == 0) {
    if (prm_.home_based) {
      pageFault(p, page);
    } else {
      pageFaultLrc(p, page);
    }
    e = &pt_[ni][page];
  }
  if (write) {
    if (e->in_dirty_list == 0) {
      e->in_dirty_list = 1;
      dirty_[ni].push_back(static_cast<std::uint32_t>(page));
      if (oracle()) {
        oracle()->grant(static_cast<int>(ni), page, OraclePerm::Write,
                        "dirty-track");
      }
      if (!prm_.home_based || home_[page] != nodeOf(p)) {
        // First write this interval on a non-home copy: make a twin.
        ++st.write_faults;
        emit(TraceEvent::Kind::TwinCreate, p, page);
        engine_.advance(prm_.twin_create, Bucket::Handler);
      }
    }
    e->dirty_bytes = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(prm_.page_bytes, e->dirty_bytes + size));
  }
  // Local cache hierarchy.
  Cycles cost = 1;  // the load/store instruction itself
  Cycles stall = 0;
  Cache& l1 = l1_[static_cast<std::size_t>(p)];
  if (!l1.access(a, write).hit) {
    ++st.l1_misses;
    Cache& l2 = l2_[static_cast<std::size_t>(p)];
    const auto r2 = l2.access(a, write);
    if (r2.hit && !r2.upgrade) {
      stall += prm_.l1_miss_penalty;
    } else {
      if (!r2.hit) {
        ++st.l2_misses;
        stall += prm_.mem_latency;
        l2.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
      } else {
        stall += prm_.l1_miss_penalty;  // upgrade: local, cheap
        l2.setState(a, LineState::Modified);
      }
    }
    l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
  }
  engine_.advance(cost, Bucket::Compute);
  if (stall > 0) engine_.advance(stall, Bucket::CacheStall);
}

Cycles SvmPlatform::flushPage(ProcId p, std::uint64_t page, Cycles start) {
  const ProcId n = nodeOf(p);
  PageEntry& e = pt_[static_cast<std::size_t>(n)][page];
  const ProcId h = home_[page];
  Cycles done = start;
  if (h != n) {
    // Diff creation on p, then ship to the home and apply there.
    engine_.stats(p).diffs_created++;
    emit(TraceEvent::Kind::DiffSend, p, page, e.dirty_bytes);
    engine_.stats(p).diff_bytes += e.dirty_bytes;
    engine_.advance(prm_.diff_scan, Bucket::Handler);
    const Cycles arr =
        net_.send(n, h, e.dirty_bytes + prm_.msg_header_bytes, engine_.now(p));
    const Cycles apply =
        prm_.diff_apply_base +
        static_cast<Cycles>(prm_.diff_apply_per_byte * e.dirty_bytes);
    done = handler_[static_cast<std::size_t>(h)].acquire(arr, apply);
    engine_.chargeHandler(h * prm_.procs_per_node, apply);
  }
  e.in_dirty_list = 0;
  e.dirty_bytes = 0;
  ++pt_gen_[static_cast<std::size_t>(n)];  // write permission reduced
  if (oracle()) {
    oracle()->revoke(n, page, OraclePerm::Read, "diff-flush");
    auditPage(p, page, "diff-flush");
  }
  return done;
}

Cycles SvmPlatform::closeInterval(ProcId p) {
  const auto ni = static_cast<std::size_t>(nodeOf(p));
  // Reserve the interval number and its notice-log slot atomically (no
  // simulated yields between these statements): with several processors
  // per node, a node-mate could otherwise close the next interval while
  // our diff flush below is still in flight and misalign the log.
  // Causality is preserved because the new interval only becomes visible
  // to other nodes through a release/arrival that happens after the
  // flush stall below.
  vc_[ni][ni] += 1;
  // Log an exact-size copy of the interval's write set and keep the
  // open dirty list's capacity: the next interval's push_backs then
  // allocate nothing (the log must retain its entry for the whole run,
  // so moving the buffer in would regrow dirty_ from scratch instead).
  notices_[ni].emplace_back(dirty_[ni].begin(), dirty_[ni].end());
  dirty_[ni].clear();
  const std::size_t slot = notices_[ni].size() - 1;
  assert(notices_[ni].size() == vc_[ni][ni]);
  Cycles done = engine_.now(p);
  if (prm_.home_based) {
    for (std::uint32_t page : notices_[ni][slot]) {
      done = std::max(done, flushPage(p, page, engine_.now(p)));
    }
  } else {
    // TreadMarks: the release is cheap -- modifications are retained at
    // the writer (twins kept for lazy diff creation) and only write
    // notices propagate. Memory grows until a (unmodeled) GC.
    for (std::uint32_t page : notices_[ni][slot]) {
      PageEntry& e = pt_[ni][page];
      e.retained_bytes = static_cast<std::uint16_t>(
          std::min<std::uint32_t>(prm_.page_bytes,
                                  e.retained_bytes + e.dirty_bytes));
      e.in_dirty_list = 0;
      e.dirty_bytes = 0;
      ++pt_gen_[ni];  // write permission reduced
      if (oracle()) {
        oracle()->revoke(static_cast<int>(ni), page, OraclePerm::Read,
                         "wn-log");
      }
      engine_.stats(p).diffs_created++;
    }
  }
  return done;
}

void SvmPlatform::applyNotices(ProcId p, const Vc& vq) {
  const auto ni = static_cast<std::size_t>(nodeOf(p));
  Vc& mine = vc_[ni];
  std::uint64_t processed = 0;
  for (int r = 0; r < nnodes_; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    for (std::uint32_t k = mine[ri] + 1; k <= vq[ri]; ++k) {
      for (std::uint32_t page : notices_[ri][k - 1]) {
        ++processed;
        if (!prm_.home_based) {
          last_writer_[page] = r;
          if (r != static_cast<int>(ni)) {
            PageEntry& le = pt_[ni][page];
            le.pending_diffs |= 1ull << static_cast<unsigned>(r);
            if (le.in_dirty_list == 0) {
              le.valid = 0;
              ++pt_gen_[ni];  // page invalidated
              if (oracle()) {
                oracle()->revoke(static_cast<int>(ni), page, OraclePerm::None,
                                 "wn-invalidate");
              }
            }
            continue;
          }
          continue;
        }
        if (home_[page] == static_cast<ProcId>(ni)) continue;  // home is current
        PageEntry& e = pt_[ni][page];
        if (e.in_dirty_list != 0) {
          // Our node holds uncommitted writes to a page another node also
          // wrote (multiple-writer false sharing): flush, then drop. The
          // page may already be absent from the open dirty list if a
          // node-mate is mid-way through closing an interval containing
          // it -- then the flush below just commits it early.
          const Cycles fl = flushPage(p, page, engine_.now(p));
          engine_.stallUntil(fl, Bucket::Handler);
          auto& d = dirty_[ni];
          if (auto it = std::find(d.begin(), d.end(), page); it != d.end()) {
            d.erase(it);
          }
        }
        e.valid = 0;
        ++pt_gen_[ni];  // page invalidated
        if (oracle()) {
          oracle()->revoke(static_cast<int>(ni), page, OraclePerm::None,
                           "wn-invalidate");
          auditPage(p, page, "wn-invalidate");
        }
      }
    }
    mine[ri] = std::max(mine[ri], vq[ri]);
  }
  if (processed > 0) {
    engine_.advance(processed * prm_.notice_process, Bucket::Handler);
  }
}

void SvmPlatform::fastPrime(ProcId p, SimAddr a, bool /*write*/,
                            FastPrimeInfo& fp) {
  PageEntry& e = pt_[static_cast<std::size_t>(nodeOf(p))][pageOf(a)];
  if (e.valid == 0) {  // defensive; doAccess just validated the page
    fp.install = false;
    return;
  }
  fp.writable = e.in_dirty_list != 0;
  if (fp.writable) {
    fp.dirty = &e.dirty_bytes;
    fp.dirty_cap = prm_.page_bytes;
  }
}

void SvmPlatform::acquireLockImpl(int id) {
  const ProcId p = engine_.self();
  auto& lk = locks_[static_cast<std::size_t>(id)];
  ProcStats& st = engine_.stats(p);
  ++st.lock_acquires;
  ++locks_held_[static_cast<std::size_t>(p)];
  emit(TraceEvent::Kind::LockAcquire, p, static_cast<std::uint64_t>(id));
  if (lk.held) {
    // Queue and sleep; the releaser hands the lock (and its vc) to us.
    lk.waiters.push_back(p);
    engine_.block(Bucket::LockWait);
    ++st.remote_lock_acquires;
    emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
    applyNotices(p, lk.vc);
    maybeSpuriousDrop(p);
    return;
  }
  lk.held = true;
  lk.owner = p;
  if (lk.last_owner == p || lk.last_owner == -1) {
    // We were the last holder (or the lock is fresh): local re-acquire.
    engine_.advance(prm_.lock_local_reacquire, Bucket::LockWait);
  } else if (nodeOf(lk.last_owner) == nodeOf(p)) {
    // Two-level scheme: hand off inside the SMP node without messages.
    engine_.advance(prm_.intra_lock_handoff, Bucket::LockWait);
  } else {
    ++st.remote_lock_acquires;
    // Request to the lock's home, forwarded to the last owner, grant back.
    const ProcId n = nodeOf(p);
    const ProcId ln = nodeOf(lk.last_owner);
    const Cycles t1 =
        net_.send(n, lk.home, prm_.msg_header_bytes, engine_.now(p));
    const Cycles t2 = handler_[static_cast<std::size_t>(lk.home)].acquire(
        t1, prm_.lock_handler);
    engine_.chargeHandler(lk.home * prm_.procs_per_node, prm_.lock_handler);
    Cycles t3 = t2;
    if (ln != lk.home) {
      t3 = net_.send(lk.home, ln, prm_.msg_header_bytes, t2);
      t3 = handler_[static_cast<std::size_t>(ln)].acquire(t3,
                                                          prm_.lock_handler);
      engine_.chargeHandler(lk.last_owner, prm_.lock_handler);
    }
    const Cycles t4 =
        std::max(net_.send(ln, n, prm_.msg_header_bytes, t3), lk.ready_at);
    engine_.stallUntil(t4, Bucket::LockWait);
  }
  emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
  applyNotices(p, lk.vc);
  maybeSpuriousDrop(p);
}

void SvmPlatform::releaseLockImpl(int id) {
  const ProcId p = engine_.self();
  auto& lk = locks_[static_cast<std::size_t>(id)];
  assert(lk.held && lk.owner == p && "release of a lock we do not hold");
  --locks_held_[static_cast<std::size_t>(p)];
  emit(TraceEvent::Kind::LockRelease, p, static_cast<std::uint64_t>(id));
  // LRC: make our writes visible (diffs at homes) before handing off.
  const Cycles flushed = closeInterval(p);
  if (flushed > engine_.now(p)) {
    engine_.stallUntil(flushed, Bucket::LockWait);
  }
  lk.vc = vc_[static_cast<std::size_t>(nodeOf(p))];
  lk.last_owner = p;
  lk.ready_at = engine_.now(p);
  // Fault injection: the distributed lock grant is a message race any
  // queued waiter may win; rotating the FIFO exercises a legal order.
  if (fault() != nullptr && lk.waiters.size() > 1 && fault()->reorderGrant()) {
    lk.waiters.push_back(lk.waiters.front());
    lk.waiters.pop_front();
  }
  if (!lk.waiters.empty()) {
    const ProcId w = lk.waiters.front();
    lk.waiters.pop_front();
    lk.owner = w;
    Cycles grant;
    if (nodeOf(w) == nodeOf(p)) {
      grant = engine_.now(p) + prm_.intra_lock_handoff;
    } else {
      // Direct handoff message to the waiter's node.
      grant = net_.send(nodeOf(p), nodeOf(w), prm_.msg_header_bytes,
                        engine_.now(p)) +
              prm_.lock_handler;
    }
    engine_.wake(w, grant);
  } else {
    lk.held = false;
    lk.owner = -1;
  }
}

void SvmPlatform::barrierImpl(int id) {
  const ProcId p = engine_.self();
  auto& b = barriers_[static_cast<std::size_t>(id)];
  ProcStats& st = engine_.stats(p);
  ++st.barriers;
  emit(TraceEvent::Kind::BarrierArrive, p, static_cast<std::uint64_t>(id));
  const ProcId n = nodeOf(p);
  const auto ni = static_cast<std::size_t>(n);
  // Arrival: close the node interval (flush diffs). Within an SMP node
  // only the first arriver finds dirty pages; the rest flush nothing.
  const Cycles flushed = closeInterval(p);
  if (flushed > engine_.now(p)) {
    engine_.stallUntil(flushed, Bucket::BarrierWait);
  }
  if (prm_.procs_per_node > 1) {
    engine_.advance(prm_.intra_barrier_rmw, Bucket::BarrierWait);
  }
  const int node_size =
      std::min((n + 1) * prm_.procs_per_node, nprocs()) -
      n * prm_.procs_per_node;
  for (int r = 0; r < nnodes_; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    b.merged[ri] = std::max(b.merged[ri], vc_[ni][ri]);
  }
  if (++b.node_arrived[ni] == node_size) {
    // Last processor of this node: one arrival message to the manager.
    const Cycles arr =
        net_.send(n, b.manager, prm_.msg_header_bytes, engine_.now(p));
    const Cycles processed = handler_[static_cast<std::size_t>(b.manager)]
                                 .acquire(arr, prm_.barrier_handler);
    engine_.chargeHandler(b.manager * prm_.procs_per_node,
                          prm_.barrier_handler);
    b.last_arrival = std::max(b.last_arrival, processed);
  }
  if (++b.arrived < nprocs()) {
    b.waiting.push_back(p);
    engine_.block(Bucket::BarrierWait);
    emit(TraceEvent::Kind::BarrierDepart, p, static_cast<std::uint64_t>(id));
    applyNotices(p, b.snapshot);
    return;
  }
  // Last arriver overall: run the manager's release broadcast (one
  // message per node, fanned out locally within each node).
  b.snapshot = b.merged;
  b.merged = Vc{};
  b.arrived = 0;
  std::fill(b.node_arrived.begin(), b.node_arrived.end(), 0);
  Cycles t = b.last_arrival;
  b.last_arrival = 0;
  // Pooled scratch (see header): swapping hands b.waiting the buffer a
  // previous episode drained, so steady state allocates nothing.
  std::vector<ProcId>& waiters = scratch_waiters_;
  waiters.clear();
  waiters.swap(b.waiting);
  std::vector<Cycles>& node_release = scratch_node_release_;
  node_release.assign(static_cast<std::size_t>(nnodes_), 0);
  for (int r = 0; r < nnodes_; ++r) {
    engine_.chargeHandler(b.manager * prm_.procs_per_node,
                          prm_.barrier_handler);
    t = handler_[static_cast<std::size_t>(b.manager)].acquire(
        t, prm_.barrier_handler);
    node_release[static_cast<std::size_t>(r)] =
        net_.send(b.manager, static_cast<ProcId>(r), prm_.msg_header_bytes, t);
  }
  std::vector<int>& fanout = scratch_fanout_;
  fanout.assign(static_cast<std::size_t>(nnodes_), 0);
  for (ProcId w : waiters) {
    const auto wn = static_cast<std::size_t>(nodeOf(w));
    engine_.wake(w, node_release[wn] +
                        static_cast<Cycles>(fanout[wn]++) *
                            prm_.intra_release_stagger);
  }
  const auto self_n = static_cast<std::size_t>(n);
  engine_.stallUntil(node_release[self_n] +
                         static_cast<Cycles>(fanout[self_n]) *
                             prm_.intra_release_stagger,
                     Bucket::BarrierWait);
  emit(TraceEvent::Kind::BarrierDepart, p, static_cast<std::uint64_t>(id));
  applyNotices(p, b.snapshot);
}

}  // namespace rsvm
