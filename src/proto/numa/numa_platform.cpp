#include "proto/numa/numa_platform.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace rsvm {

namespace {
Engine::Config engineConfig(int nprocs, Cycles quantum) {
  Engine::Config ec;
  ec.nprocs = nprocs;
  ec.quantum = quantum;
  return ec;
}
}  // namespace

NumaPlatform::NumaPlatform(int nprocs, const NumaParams& params)
    : Platform(PlatformKind::NUMA, engineConfig(nprocs, params.quantum)),
      prm_(params),
      net_(nprocs, {0, params.net_latency, params.link_bytes_per_cycle}),
      dir_(static_cast<std::size_t>(nprocs)),
      sync_(engine_, params.sync) {
  if (nprocs > 64) {
    // Directory sharer sets are one-word bitmasks (bit per processor).
    throw std::invalid_argument("NumaPlatform: at most 64 processors");
  }
  l1_.reserve(static_cast<std::size_t>(nprocs));
  l2_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    l1_.emplace_back(prm_.l1);
    l2_.emplace_back(prm_.l2);
  }
  // Fast path: an L1 hit costs 1 Compute cycle; every permission-reducing
  // directory action goes through the victim's caches, so no
  // platform-level generation is needed.
  initFastPath(prm_.l1.line_bytes, 1, 1, /*write_needs_modified=*/true);
  for (int i = 0; i < nprocs; ++i) {
    setFastPathProc(i, &l1_[static_cast<std::size_t>(i)], nullptr);
  }
}

void NumaPlatform::onArenaGrown(std::size_t used_bytes) {
  home_.resize((used_bytes + 4095) / 4096, 0);
  dirmap_.resize((used_bytes + prm_.l2.line_bytes - 1) / prm_.l2.line_bytes);
}

void NumaPlatform::setHomes(SimAddr base, std::size_t bytes,
                            const HomePolicy& homes) {
  const std::uint64_t first_page = base / 4096;
  const std::uint64_t npages = (bytes + 4095) / 4096;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const ProcId h = homes.fn(i, npages);
    assert(h >= 0 && h < nprocs());
    home_[first_page + i] = h;
  }
}

int NumaPlatform::dirOwner(SimAddr a) const {
  return dirmap_[lineIndex(a)].owner;
}
std::uint64_t NumaPlatform::dirSharers(SimAddr a) const {
  return dirmap_[lineIndex(a)].sharers;
}

void NumaPlatform::dropFromL1(ProcId p, SimAddr l2_line) {
  l1_[static_cast<std::size_t>(p)].invalidateRange(l2_line,
                                                   prm_.l2.line_bytes);
}

void NumaPlatform::auditLine(ProcId actor, SimAddr line_addr,
                             const char* transition) {
  CoherenceOracle* oc = oracle();
  if (oc == nullptr) return;
  const DirEntry& d = dirmap_[lineIndex(line_addr)];
  CoherenceOracle::UnitAudit ua;
  ua.unit = line_addr / prm_.l2.line_bytes;
  ua.actor = actor;
  ua.transition = transition;
  ua.dir_readers = d.sharers;
  ua.dir_owner = d.state == DirState::Modified ? d.owner : -1;
  for (int q = 0; q < nprocs(); ++q) {
    const LineState s = l2_[static_cast<std::size_t>(q)].probe(line_addr);
    if (s != LineState::Invalid) {
      ua.actual_readers |= 1ull << static_cast<unsigned>(q);
    }
    if (s == LineState::Modified) {
      ua.actual_writers |= 1ull << static_cast<unsigned>(q);
    }
  }
  oc->audit(ua);
}

void NumaPlatform::maybeSpuriousL1Clear(ProcId p) {
  FaultPlan* fp = fault();
  if (fp == nullptr || !fp->spuriousNow()) return;
  l1_[static_cast<std::size_t>(p)].clear();
}

NumaPlatform::MissOutcome NumaPlatform::serveMiss(ProcId p, SimAddr line_addr,
                                                  bool write, bool upgrade) {
  Engine& eng = engine_;
  ProcStats& st = eng.stats(p);
  const ProcId h = home_[line_addr >> 12];
  DirEntry& d = dirmap_[lineIndex(line_addr)];
  const std::uint64_t pbit = 1ull << static_cast<unsigned>(p);
  const std::uint64_t data_bytes = prm_.l2.line_bytes + prm_.msg_header_bytes;
  const bool local_home = (h == p);
  bool remote = !local_home;
  Cycles t = eng.now(p);
  // Fault injection: the miss handler may legally start late (MSHR
  // conflicts, controller scheduling).
  if (fault() != nullptr) t += fault()->handlerJitter();

  // Request travels to the home and occupies its directory controller.
  if (!local_home) t = net_.send(p, h, prm_.msg_header_bytes, t);
  t = dir_[static_cast<std::size_t>(h)].acquire(t, prm_.dir_latency);

  if (d.state == DirState::Modified && d.owner != p) {
    // Dirty in another cache: intervene (3-hop); the owner supplies the
    // data and the home memory is updated in the background.
    remote = true;
    const ProcId o = d.owner;
    Cycles t2 = (o == h) ? t : net_.send(h, o, prm_.msg_header_bytes, t);
    t2 += prm_.probe_latency;
    if (write) {
      l2_[static_cast<std::size_t>(o)].invalidate(line_addr);
      dropFromL1(o, line_addr);
      ++st.invalidations_sent;
      if (oracle()) {
        oracle()->revoke(o, line_addr / prm_.l2.line_bytes, OraclePerm::None,
                         "intervene-inval");
      }
    } else {
      // The L1 keeps its Modified copy across an L2 downgrade in this
      // tag-only model, so the owner can legally keep write-hitting it.
      // Like victim writebacks, downgrades therefore do not revoke the
      // oracle mirror (it over-approximates; see exactPermissionMirror).
      l2_[static_cast<std::size_t>(o)].downgrade(line_addr);
    }
    t = (o == p) ? t2 : net_.send(o, p, data_bytes, t2);
    d.sharers = write ? pbit : (d.sharers | pbit);
    d.owner = write ? static_cast<std::int8_t>(p) : std::int8_t{-1};
    d.state = write ? DirState::Modified : DirState::Shared;
    if (oracle()) {
      oracle()->grant(p, line_addr / prm_.l2.line_bytes,
                      write ? OraclePerm::Write : OraclePerm::Read,
                      "intervene-serve");
      auditLine(p, line_addr, "intervene-serve");
    }
    ++st.remote_misses;
    return {t > eng.now(p) ? t - eng.now(p) : 0, true};
  }

  if (write) {
    // Invalidate every other sharer; acks collect at the home.
    std::uint64_t others = d.sharers & ~pbit;
    Cycles inval_done = t;
    while (others != 0) {
      const int s = std::countr_zero(others);
      others &= others - 1;
      l2_[static_cast<std::size_t>(s)].invalidate(line_addr);
      dropFromL1(static_cast<ProcId>(s), line_addr);
      ++st.invalidations_sent;
      if (oracle()) {
        oracle()->revoke(s, line_addr / prm_.l2.line_bytes, OraclePerm::None,
                         "dir-invalidate");
      }
      inval_done = dir_[static_cast<std::size_t>(h)].acquire(
          inval_done, prm_.inval_cost);
      if (s != h) inval_done += prm_.net_latency;
      remote = remote || s != p;
    }
    t = std::max(t, inval_done);
    d.sharers = pbit;
    d.owner = static_cast<std::int8_t>(p);
    d.state = DirState::Modified;
  } else {
    d.sharers |= pbit;
    if (d.state == DirState::Uncached) d.state = DirState::Shared;
    d.owner = -1;
  }
  if (oracle()) {
    oracle()->grant(p, line_addr / prm_.l2.line_bytes,
                    write ? OraclePerm::Write : OraclePerm::Read,
                    upgrade ? "upgrade" : "miss-serve");
    auditLine(p, line_addr, upgrade ? "upgrade" : "miss-serve");
  }

  if (!upgrade) {
    t += prm_.mem_latency;  // data from the home memory
    if (!local_home) t = net_.send(h, p, data_bytes, t);
  } else if (!local_home) {
    t += prm_.net_latency;  // upgrade ack back to the requester
  }
  if (remote) {
    ++st.remote_misses;
  } else {
    ++st.local_misses;
  }
  return {t > eng.now(p) ? t - eng.now(p) : 0, remote};
}

void NumaPlatform::doAccess(SimAddr a, std::uint32_t size, bool write) {
  (void)size;
  const ProcId p = engine_.self();
  ProcStats& st = engine_.stats(p);
  if (write) {
    ++st.writes;
  } else {
    ++st.reads;
  }
  Cache& l1 = l1_[static_cast<std::size_t>(p)];
  Cache& l2 = l2_[static_cast<std::size_t>(p)];
  engine_.advance(1, Bucket::Compute);
  const auto r1 = l1.access(a, write);
  if (r1.hit && !r1.upgrade) return;
  ++st.l1_misses;
  const auto r2 = l2.access(a, write);
  if (r2.hit && !r2.upgrade) {
    l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
    engine_.advance(prm_.l1_miss_penalty, Bucket::CacheStall);
    return;
  }
  const SimAddr line = l2.lineAddr(a);
  ++st.l2_misses;
  MissOutcome mo;
  if (r2.upgrade) {
    mo = serveMiss(p, line, true, /*upgrade=*/true);
    l2.setState(line, LineState::Modified);
  } else {
    mo = serveMiss(p, line, write, /*upgrade=*/false);
    SimAddr victim = 0;
    if (l2.fill(line, write ? LineState::Modified : LineState::Shared,
                &victim)) {
      // Writeback of a Modified victim releases directory ownership and
      // streams to the victim's home in the background.
      DirEntry& vd = dirmap_[lineIndex(victim)];
      if (vd.owner == p) {
        vd.state = DirState::Uncached;
        vd.sharers = 0;
        vd.owner = -1;
      }
      const ProcId vh = home_[victim >> 12];
      dir_[static_cast<std::size_t>(vh)].acquire(engine_.now(p),
                                                 prm_.dir_latency);
      if (vh != p) {
        net_.send(p, vh, prm_.l2.line_bytes + prm_.msg_header_bytes,
                  engine_.now(p));
      }
      // The oracle mirror is deliberately NOT revoked here: the L1 can
      // legally keep a stale copy of the victim in this tag-only model,
      // so a self-eviction is treated like a silent one (the mirror
      // over-approximates; see exactPermissionMirror).
      auditLine(p, victim, "victim-writeback");
      mo.stall += 4;  // victim-buffer push
    }
    dropFromL1(p, line);
  }
  l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
  if (mo.remote) {
    engine_.stallUntil(engine_.now(p) + mo.stall, Bucket::DataWait);
  } else if (mo.stall > 0) {
    engine_.advance(mo.stall, Bucket::CacheStall);
  }
}

}  // namespace rsvm
