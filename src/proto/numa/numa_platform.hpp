// Aggressive hardware cache-coherent multiprocessor with physically
// distributed memory (the paper's DSM platform, section 2.1.3): one
// 300 MHz processor per node, 16 KB direct-mapped L1 + 1 MB 4-way L2
// with 64 B lines, distributed full-bit-vector MSI directory (DASH
// style), 400 MB/s node-to-network links. Buffering and contention are
// modeled at the directories, memories and links.
#pragma once

#include "mem/cache.hpp"
#include "net/network.hpp"
#include "proto/hw_sync.hpp"
#include "runtime/platform.hpp"

#include <cstdint>
#include <vector>

namespace rsvm {

struct NumaParams {
  /// Engine drift quantum (interleaving granularity of direct execution).
  Cycles quantum = 2000;
  CacheConfig l1{16 * 1024, 32, 1};
  CacheConfig l2{1024 * 1024, 64, 4};
  Cycles l1_miss_penalty = 8;  ///< L1 miss that hits in L2
  Cycles mem_latency = 50;     ///< DRAM access at the home
  Cycles dir_latency = 18;     ///< directory lookup / update occupancy
  Cycles net_latency = 40;     ///< one-way network latency
  double link_bytes_per_cycle = 1.33;  ///< 400 MB/s at 300 MHz
  Cycles probe_latency = 20;   ///< remote cache intervention
  Cycles inval_cost = 16;      ///< per-sharer invalidation processing
  std::uint32_t msg_header_bytes = 16;
  HwSync::Costs sync{};
};

class NumaPlatform final : public Platform {
 public:
  explicit NumaPlatform(int nprocs, const NumaParams& params = {});

  [[nodiscard]] std::uint32_t coherenceBytes() const override {
    return prm_.l2.line_bytes;
  }

  [[nodiscard]] const NumaParams& params() const { return prm_; }
  [[nodiscard]] ProcId homeOf(SimAddr a) const { return home_[a >> 12]; }
  /// Directory view of a line -- exposed for tests.
  [[nodiscard]] int dirOwner(SimAddr a) const;
  [[nodiscard]] std::uint64_t dirSharers(SimAddr a) const;

  /// Pre-fence touch set: empty by construction. A committed miss at the
  /// home directory mutates *other* processors' caches (serveMiss sends
  /// invalidations and downgrades into remote l1_/l2_) and the shared
  /// directory entries, home map, and per-home Resources -- so a local
  /// L1/L2 probe in unfenced run-ahead could read a line a committed
  /// remote invalidation is concurrently revoking. Shard-safe only under
  /// fenced accesses (shardAccessNeedsFence stays at the base-class
  /// `true`): each access holds the commit token end to end, so every
  /// directory transition and remote cache mutation happens in
  /// sequential key order.
  [[nodiscard]] bool shardParallelSafe() const override { return true; }

 protected:
  void doAccess(SimAddr a, std::uint32_t size, bool write) override;
  // Hardware locks/barriers, bracketed by trace events so consumers see
  // the same synchronization stream on every platform.
  void acquireLockImpl(int id) override {
    const ProcId p = engine_.self();
    emit(TraceEvent::Kind::LockAcquire, p, static_cast<std::uint64_t>(id));
    sync_.acquire(id);
    emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
    maybeSpuriousL1Clear(p);
  }
  void releaseLockImpl(int id) override {
    emit(TraceEvent::Kind::LockRelease, engine_.self(),
         static_cast<std::uint64_t>(id));
    sync_.release(id);
  }
  void barrierImpl(int id) override {
    const ProcId p = engine_.self();
    emit(TraceEvent::Kind::BarrierArrive, p, static_cast<std::uint64_t>(id));
    sync_.barrier(id, nprocs());
    emit(TraceEvent::Kind::BarrierDepart, p, static_cast<std::uint64_t>(id));
  }
  void onArenaGrown(std::size_t used_bytes) override;
  void onLockCreated(int) override { sync_.onLockCreated(); }
  void onBarrierCreated(int) override { sync_.onBarrierCreated(); }
  void setHomes(SimAddr base, std::size_t bytes,
                const HomePolicy& homes) override;
  /// Oracle wiring: hardware caches evict Shared lines silently, so the
  /// permission mirror only over-approximates the true cache state.
  [[nodiscard]] bool exactPermissionMirror() const override { return false; }
  void applyFaultPlan(FaultPlan* fp) override {
    net_.setFaultPlan(fp);
    sync_.setFaultPlan(fp);
  }

 private:
  enum class DirState : std::uint8_t { Uncached = 0, Shared, Modified };

  struct DirEntry {
    std::uint64_t sharers = 0;  ///< bit per processor
    std::int8_t owner = -1;     ///< valid in Modified
    DirState state = DirState::Uncached;
  };

  struct MissOutcome {
    Cycles stall = 0;
    bool remote = false;  ///< involved another node (DataWait vs CacheStall)
  };

  /// Service an L2 miss or upgrade through the directory.
  MissOutcome serveMiss(ProcId p, SimAddr line_addr, bool write, bool upgrade);
  void dropFromL1(ProcId p, SimAddr l2_line);
  /// Oracle audit: directory owner/copyset vs. the line's actual L2
  /// states. L1s are deliberately not scanned -- they can legally hold
  /// stale copies after a silent L2 eviction in this tag-only model.
  void auditLine(ProcId actor, SimAddr line_addr, const char* transition);
  /// Fault injection: occasionally clear p's own L1 (always legal: the
  /// L1 holds no permission state; L2 and directory are untouched).
  void maybeSpuriousL1Clear(ProcId p);

  [[nodiscard]] std::size_t lineIndex(SimAddr a) const {
    return a / prm_.l2.line_bytes;
  }

  NumaParams prm_;
  net::PointToPoint net_;
  std::vector<Resource> dir_;   ///< per-node directory/memory controller
  std::vector<ProcId> home_;    ///< per 4 KB page
  std::vector<DirEntry> dirmap_;
  std::vector<Cache> l1_, l2_;
  HwSync sync_;
};

}  // namespace rsvm
