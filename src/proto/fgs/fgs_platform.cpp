#include "proto/fgs/fgs_platform.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace rsvm {

namespace {
Engine::Config engineConfig(int nprocs, Cycles quantum) {
  Engine::Config ec;
  ec.nprocs = nprocs;
  ec.quantum = quantum;
  return ec;
}
}  // namespace

FgsPlatform::FgsPlatform(int nprocs, const FgsParams& params)
    : Platform(PlatformKind::FGS, engineConfig(nprocs, params.quantum)),
      prm_(params),
      net_(nprocs, {params.msg_sw_overhead, params.wire_latency,
                    params.iobus_bytes_per_cycle}),
      handler_(static_cast<std::size_t>(nprocs)),
      bs_(static_cast<std::size_t>(nprocs)),
      bs_gen_(static_cast<std::size_t>(nprocs), 0) {
  if (nprocs > 64) {
    // Block-state sharer sets are one-word bitmasks (bit per processor).
    throw std::invalid_argument("FgsPlatform: at most 64 processors");
  }
  l1_.reserve(static_cast<std::size_t>(nprocs));
  l2_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    l1_.emplace_back(prm_.l1);
    l2_.emplace_back(prm_.l2);
  }
  // Fast path: an L1 hit still pays the inline software access check
  // (the tax the paper charges on *every* shared access), batched along
  // with the load/store cycle.
  initFastPath(prm_.l1.line_bytes, 1 + prm_.load_check, 1 + prm_.store_check,
               /*write_needs_modified=*/true);
  for (int i = 0; i < nprocs; ++i) {
    setFastPathProc(i, &l1_[static_cast<std::size_t>(i)],
                    &bs_gen_[static_cast<std::size_t>(i)]);
  }
}

void FgsPlatform::onArenaGrown(std::size_t used_bytes) {
  home_.resize((used_bytes + 4095) / 4096, 0);
  const std::size_t blocks =
      (used_bytes + prm_.block_bytes - 1) / prm_.block_bytes;
  dir_.resize(blocks);
  for (auto& v : bs_) v.resize(blocks, 0);
}

void FgsPlatform::setHomes(SimAddr base, std::size_t bytes,
                           const HomePolicy& homes) {
  const std::uint64_t first_page = base / 4096;
  const std::uint64_t npages = (bytes + 4095) / 4096;
  const std::uint64_t blocks_per_page = 4096 / prm_.block_bytes;
  for (std::uint64_t i = 0; i < npages; ++i) {
    const ProcId h = homes.fn(i, npages);
    assert(h >= 0 && h < nprocs());
    home_[first_page + i] = h;
    // The home starts with a Shared copy of its blocks (data lives in
    // its memory); misses by others fetch from it.
    for (std::uint64_t b = 0; b < blocks_per_page; ++b) {
      const std::uint64_t blk = (first_page + i) * blocks_per_page + b;
      bs_[static_cast<std::size_t>(h)][blk] =
          static_cast<std::uint8_t>(BState::Shared);
      dir_[blk].sharers |= 1ull << static_cast<unsigned>(h);
      if (oracle()) oracle()->grant(h, blk, OraclePerm::Read, "home-init");
    }
  }
}

void FgsPlatform::warm(ProcId p, SimAddr base, std::size_t len) {
  if (len == 0) return;
  const std::uint64_t first = blockOf(base);
  const std::uint64_t last = blockOf(base + len - 1);
  for (std::uint64_t b = first; b <= last; ++b) {
    if (dir_[b].dirty != 0) continue;  // never demote an exclusive owner
    bs_[static_cast<std::size_t>(p)][b] =
        static_cast<std::uint8_t>(BState::Shared);
    dir_[b].sharers |= 1ull << static_cast<unsigned>(p);
    if (oracle()) oracle()->grant(p, b, OraclePerm::Read, "warm");
  }
}

int FgsPlatform::blockState(ProcId p, SimAddr a) const {
  return bs_[static_cast<std::size_t>(p)][blockOf(a)];
}

void FgsPlatform::onLockCreated(int id) {
  LockState ls;
  ls.home = static_cast<ProcId>(id % nprocs());
  locks_.push_back(ls);
}

void FgsPlatform::onBarrierCreated(int id) {
  BarrierState bs;
  bs.manager = static_cast<ProcId>((10 + id) % nprocs());
  barriers_.push_back(bs);
}

void FgsPlatform::auditBlock(ProcId actor, std::uint64_t block,
                             const char* transition) {
  CoherenceOracle* oc = oracle();
  if (oc == nullptr) return;
  const DirEntry& d = dir_[block];
  CoherenceOracle::UnitAudit ua;
  ua.unit = block;
  ua.actor = actor;
  ua.transition = transition;
  ua.dir_readers = d.sharers;
  ua.dir_owner = d.dirty != 0 ? d.owner : -1;
  for (int q = 0; q < nprocs(); ++q) {
    const auto s = static_cast<BState>(bs_[static_cast<std::size_t>(q)][block]);
    if (s != BState::Invalid) {
      ua.actual_readers |= 1ull << static_cast<unsigned>(q);
    }
    if (s == BState::Exclusive) {
      ua.actual_writers |= 1ull << static_cast<unsigned>(q);
    }
  }
  oc->audit(ua);
}

void FgsPlatform::maybeSpuriousL1Clear(ProcId p) {
  FaultPlan* fp = fault();
  if (fp == nullptr || !fp->spuriousNow()) return;
  l1_[static_cast<std::size_t>(p)].clear();
}

Cycles FgsPlatform::serveMiss(ProcId p, std::uint64_t block, bool write) {
  Engine& eng = engine_;
  ProcStats& st = eng.stats(p);
  DirEntry& d = dir_[block];
  const ProcId h = home_[block * prm_.block_bytes / 4096];
  const std::uint64_t pbit = 1ull << static_cast<unsigned>(p);
  Cycles t = eng.now(p) + prm_.miss_handler;
  // Fault injection: the software miss handler may legally start late
  // (interrupt masking, handler scheduling).
  if (fault() != nullptr) t += fault()->handlerJitter();

  // Request to the home's software protocol handler.
  if (h != p) t = net_.send(p, h, prm_.msg_header_bytes, t);
  t = handler_[static_cast<std::size_t>(h)].acquire(t, prm_.serve_block);
  eng.chargeHandler(h, prm_.serve_block);

  if (d.dirty != 0 && d.owner != p) {
    // Fetch the block back from its exclusive owner first.
    const ProcId o = d.owner;
    Cycles t2 = (o == h) ? t : net_.send(h, o, prm_.msg_header_bytes, t);
    t2 = handler_[static_cast<std::size_t>(o)].acquire(t2, prm_.inval_handler);
    eng.chargeHandler(o, prm_.inval_handler);
    bs_[static_cast<std::size_t>(o)][block] = static_cast<std::uint8_t>(
        write ? BState::Invalid : BState::Shared);
    ++bs_gen_[static_cast<std::size_t>(o)];  // owner downgraded
    if (oracle()) {
      oracle()->revoke(o, block, write ? OraclePerm::None : OraclePerm::Read,
                       "fetch-back");
    }
    t = net_.send(o, h, prm_.block_bytes + prm_.msg_header_bytes, t2);
    d.dirty = 0;
    d.owner = -1;
    if (!write) d.sharers |= pbit;
  }

  if (write) {
    // Invalidate all other sharers (software handlers at each).
    std::uint64_t others = d.sharers & ~pbit;
    Cycles inval_done = t;
    while (others != 0) {
      const int s = std::countr_zero(others);
      others &= others - 1;
      ++st.invalidations_sent;
      Cycles ts = net_.send(h, static_cast<ProcId>(s), prm_.msg_header_bytes,
                            t);
      ts = handler_[static_cast<std::size_t>(s)].acquire(ts,
                                                         prm_.inval_handler);
      eng.chargeHandler(static_cast<ProcId>(s), prm_.inval_handler);
      bs_[static_cast<std::size_t>(s)][block] =
          static_cast<std::uint8_t>(BState::Invalid);
      ++bs_gen_[static_cast<std::size_t>(s)];  // sharer invalidated
      if (oracle()) {
        oracle()->revoke(s, block, OraclePerm::None, "dir-invalidate");
      }
      l1_[static_cast<std::size_t>(s)].invalidateRange(
          block * prm_.block_bytes, prm_.block_bytes);
      l2_[static_cast<std::size_t>(s)].invalidateRange(
          block * prm_.block_bytes, prm_.block_bytes);
      inval_done = std::max(inval_done,
                            net_.send(static_cast<ProcId>(s), h,
                                      prm_.msg_header_bytes, ts));
    }
    t = inval_done;
    d.sharers = pbit;
    d.owner = static_cast<std::int8_t>(p);
    d.dirty = 1;
    bs_[static_cast<std::size_t>(p)][block] =
        static_cast<std::uint8_t>(BState::Exclusive);
  } else {
    d.sharers |= pbit;
    bs_[static_cast<std::size_t>(p)][block] =
        static_cast<std::uint8_t>(BState::Shared);
  }
  if (oracle()) {
    oracle()->grant(p, block, write ? OraclePerm::Write : OraclePerm::Read,
                    "miss-serve");
    auditBlock(p, block, "miss-serve");
  }

  // Block data back to the requester.
  if (h != p) {
    t = net_.send(h, p, prm_.block_bytes + prm_.msg_header_bytes, t);
  }
  if (h == p && d.sharers == pbit) {
    ++st.local_misses;
  } else {
    ++st.remote_misses;
  }
  return t > eng.now(p) ? t - eng.now(p) : 0;
}

void FgsPlatform::doAccess(SimAddr a, std::uint32_t size, bool write) {
  (void)size;
  const ProcId p = engine_.self();
  ProcStats& st = engine_.stats(p);
  if (write) {
    ++st.writes;
  } else {
    ++st.reads;
  }
  // Instruction + inline software access check on every shared access.
  engine_.advance(1 + (write ? prm_.store_check : prm_.load_check),
                  Bucket::Compute);
  const std::uint64_t block = blockOf(a);
  const auto state = static_cast<BState>(bs_[static_cast<std::size_t>(p)][block]);
  if (state == BState::Invalid || (write && state == BState::Shared)) {
    ++st.page_faults;  // software miss (reported as the fault counter)
    emit(TraceEvent::Kind::PageFault, p, block, prm_.block_bytes);
    const Cycles stall = serveMiss(p, block, write);
    engine_.stallUntil(engine_.now(p) + stall, Bucket::DataWait);
  }
  // Local cache hierarchy (hardware caches behind the software checks).
  Cache& l1 = l1_[static_cast<std::size_t>(p)];
  const auto r1 = l1.access(a, write);
  if (r1.hit && !r1.upgrade) return;
  ++st.l1_misses;
  Cache& l2 = l2_[static_cast<std::size_t>(p)];
  const auto r2 = l2.access(a, write);
  if (r2.hit && !r2.upgrade) {
    l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
    engine_.advance(prm_.l1_miss_penalty, Bucket::CacheStall);
    return;
  }
  ++st.l2_misses;
  l2.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
  l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
  engine_.advance(prm_.mem_latency, Bucket::CacheStall);
}

void FgsPlatform::fastPrime(ProcId p, SimAddr a, bool /*write*/,
                            FastPrimeInfo& fp) {
  // Prime from the *current* block state, not the one doAccess was granted:
  // a concurrent serveMiss can revoke the block while this processor
  // stalls for its own miss, and the hardware caches are refilled
  // afterwards regardless (they are permission-blind here -- the software
  // check in front of them is what enforces coherence).
  const auto st =
      static_cast<BState>(bs_[static_cast<std::size_t>(p)][blockOf(a)]);
  if (st == BState::Invalid) {
    fp.install = false;
    return;
  }
  fp.writable = st == BState::Exclusive;
}

void FgsPlatform::acquireLockImpl(int id) {
  const ProcId p = engine_.self();
  auto& lk = locks_[static_cast<std::size_t>(id)];
  ProcStats& st = engine_.stats(p);
  ++st.lock_acquires;
  emit(TraceEvent::Kind::LockAcquire, p, static_cast<std::uint64_t>(id));
  maybeSpuriousL1Clear(p);
  if (lk.held) {
    lk.waiters.push_back(p);
    engine_.block(Bucket::LockWait);
    ++st.remote_lock_acquires;
    emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
    return;
  }
  lk.held = true;
  lk.owner = p;
  if (lk.last_owner == p || lk.last_owner == -1) {
    engine_.advance(prm_.lock_local_reacquire, Bucket::LockWait);
    emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
    return;
  }
  ++st.remote_lock_acquires;
  Cycles t = net_.send(p, lk.home, prm_.msg_header_bytes, engine_.now(p));
  t = handler_[static_cast<std::size_t>(lk.home)].acquire(t, prm_.lock_handler);
  engine_.chargeHandler(lk.home, prm_.lock_handler);
  t = std::max(net_.send(lk.home, p, prm_.msg_header_bytes, t), lk.ready_at);
  engine_.stallUntil(t, Bucket::LockWait);
  emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
}

void FgsPlatform::releaseLockImpl(int id) {
  const ProcId p = engine_.self();
  auto& lk = locks_[static_cast<std::size_t>(id)];
  assert(lk.held && lk.owner == p);
  emit(TraceEvent::Kind::LockRelease, p, static_cast<std::uint64_t>(id));
  lk.last_owner = p;
  lk.ready_at = engine_.now(p);
  // Fault injection: any queued waiter may legally win the handoff.
  if (fault() != nullptr && lk.waiters.size() > 1 && fault()->reorderGrant()) {
    lk.waiters.push_back(lk.waiters.front());
    lk.waiters.pop_front();
  }
  if (!lk.waiters.empty()) {
    const ProcId w = lk.waiters.front();
    lk.waiters.pop_front();
    lk.owner = w;
    const Cycles grant =
        net_.send(p, w, prm_.msg_header_bytes, engine_.now(p)) +
        prm_.lock_handler;
    engine_.wake(w, grant);
  } else {
    lk.held = false;
    lk.owner = -1;
  }
}

void FgsPlatform::barrierImpl(int id) {
  const ProcId p = engine_.self();
  auto& b = barriers_[static_cast<std::size_t>(id)];
  ++engine_.stats(p).barriers;
  emit(TraceEvent::Kind::BarrierArrive, p, static_cast<std::uint64_t>(id));
  const Cycles arr =
      net_.send(p, b.manager, prm_.msg_header_bytes, engine_.now(p));
  const Cycles processed = handler_[static_cast<std::size_t>(b.manager)]
                               .acquire(arr, prm_.barrier_handler);
  engine_.chargeHandler(b.manager, prm_.barrier_handler);
  b.last_arrival = std::max(b.last_arrival, processed);
  if (++b.arrived < nprocs()) {
    b.waiting.push_back(p);
    engine_.block(Bucket::BarrierWait);
    emit(TraceEvent::Kind::BarrierDepart, p, static_cast<std::uint64_t>(id));
    return;
  }
  b.arrived = 0;
  Cycles t = b.last_arrival;
  b.last_arrival = 0;
  // Pooled scratch (see header): swapping hands b.waiting the buffer a
  // previous episode drained, so steady state allocates nothing.
  std::vector<ProcId>& waiters = scratch_waiters_;
  waiters.clear();
  waiters.swap(b.waiting);
  for (ProcId w : waiters) {
    engine_.chargeHandler(b.manager, prm_.barrier_handler);
    t = handler_[static_cast<std::size_t>(b.manager)].acquire(
        t, prm_.barrier_handler);
    engine_.wake(w, net_.send(b.manager, w, prm_.msg_header_bytes, t));
  }
  engine_.chargeHandler(b.manager, prm_.barrier_handler);
  t = handler_[static_cast<std::size_t>(b.manager)].acquire(
      t, prm_.barrier_handler);
  engine_.stallUntil(net_.send(b.manager, p, prm_.msg_header_bytes, t),
                     Bucket::BarrierWait);
  emit(TraceEvent::Kind::BarrierDepart, p, static_cast<std::uint64_t>(id));
}

}  // namespace rsvm
