// Fine-grained software shared memory (paper section 7 / future work:
// "systems that support fine-grained coherence ... in software [Shasta,
// Blizzard-S], thus completing the performance portability picture").
//
// Same commodity hardware as the SVM platform (200 MHz nodes, Myrinet-
// class network through a 100 MB/s I/O bus), but coherence is enforced
// in software at small block granularity by inline access checks
// (Shasta-style): every shared load/store pays a few cycles of check
// overhead, and misses run a software directory protocol over the
// network, moving one block (default 128 B) instead of a 4 KB page.
//
// The interesting position in the design space: page-granularity false
// sharing and fragmentation disappear (like hardware DSM), but every
// access is taxed and every miss costs software messaging (like SVM).
#pragma once

#include "mem/cache.hpp"
#include "net/network.hpp"
#include "proto/hw_sync.hpp"
#include "runtime/platform.hpp"
#include "sim/resource.hpp"

#include <cstdint>
#include <deque>
#include <vector>

namespace rsvm {

struct FgsParams {
  /// Engine drift quantum (interleaving granularity of direct execution).
  Cycles quantum = 10000;
  std::uint32_t block_bytes = 128;  ///< software coherence unit
  CacheConfig l1{8 * 1024, 32, 1};
  CacheConfig l2{512 * 1024, 32, 2};
  Cycles l1_miss_penalty = 10;
  Cycles mem_latency = 60;
  // Inline access-check overhead (Shasta reports a few cycles/access).
  Cycles load_check = 2;
  Cycles store_check = 3;
  // Network: same commodity fabric as the SVM platform, but the miss
  // handlers poll, shaving part of the per-message software path.
  Cycles msg_sw_overhead = 800;
  Cycles wire_latency = 200;
  double iobus_bytes_per_cycle = 0.5;
  std::uint32_t msg_header_bytes = 32;
  Cycles miss_handler = 300;     ///< requester-side software miss entry
  Cycles serve_block = 350;      ///< home-side directory + block service
  Cycles inval_handler = 250;    ///< per-sharer software invalidation
  // Message-based synchronization (no LRC bookkeeping needed).
  Cycles lock_handler = 300;
  Cycles lock_local_reacquire = 60;
  Cycles barrier_handler = 250;
};

class FgsPlatform final : public Platform {
 public:
  explicit FgsPlatform(int nprocs, const FgsParams& params = {});

  void warm(ProcId p, SimAddr base, std::size_t len) override;
  [[nodiscard]] std::uint32_t coherenceBytes() const override {
    return prm_.block_bytes;
  }

  [[nodiscard]] const FgsParams& params() const { return prm_; }
  [[nodiscard]] int blockState(ProcId p, SimAddr a) const;

  /// Pre-fence touch set: empty by construction. Fine-grain software
  /// coherence keeps a per-processor block-state table (bs_) plus its
  /// fast-path generation (bs_gen_), and a committed remote write
  /// invalidates *this* processor's entries (the home's serveBlock fans
  /// invalidation handlers out to sharers, which also scrub the victim's
  /// L1/L2) -- so the bs_ check at the top of doAccess races unfenced
  /// run-ahead. Shard-safe only under fenced accesses
  /// (shardAccessNeedsFence stays at the base-class `true`): block-state
  /// transitions, directory entries, and handler/network Resources all
  /// serialize under the commit token in sequential key order.
  [[nodiscard]] bool shardParallelSafe() const override { return true; }

 protected:
  void doAccess(SimAddr a, std::uint32_t size, bool write) override;
  void acquireLockImpl(int id) override;
  void releaseLockImpl(int id) override;
  void barrierImpl(int id) override;
  /// Writes may take the fast path only while the processor's software
  /// block state is Exclusive; guarded by the processor's bs_gen_.
  void fastPrime(ProcId p, SimAddr a, bool write, FastPrimeInfo& fp) override;
  void onArenaGrown(std::size_t used_bytes) override;
  void onLockCreated(int id) override;
  void onBarrierCreated(int id) override;
  void setHomes(SimAddr base, std::size_t bytes,
                const HomePolicy& homes) override;
  /// Oracle wiring: the software block states (`bs_`) are maintained
  /// exactly by the protocol (no silent evictions), so the default exact
  /// permission mirror applies and grant-time single-writer checks run.
  void applyFaultPlan(FaultPlan* fp) override { net_.setFaultPlan(fp); }

 private:
  enum class BState : std::uint8_t { Invalid = 0, Shared, Exclusive };

  struct DirEntry {
    std::uint64_t sharers = 0;
    std::int8_t owner = -1;
    std::uint8_t dirty = 0;  ///< an Exclusive copy exists
  };

  struct LockState {
    ProcId home = 0;
    bool held = false;
    ProcId owner = -1;
    ProcId last_owner = -1;
    Cycles ready_at = 0;
    std::deque<ProcId> waiters;
  };

  struct BarrierState {
    ProcId manager = 0;
    int arrived = 0;
    std::vector<ProcId> waiting;
    Cycles last_arrival = 0;
  };

  /// Software protocol miss: fetch/upgrade block for p. Returns stall.
  Cycles serveMiss(ProcId p, std::uint64_t block, bool write);
  /// Oracle audit: directory owner/copyset vs. the actual software block
  /// states across all processors (hardware caches are permission-blind
  /// behind the inline checks, so they are not scanned).
  void auditBlock(ProcId actor, std::uint64_t block, const char* transition);
  /// Fault injection: occasionally clear p's own L1 (always legal: the
  /// hardware caches hold no permission state on this platform).
  void maybeSpuriousL1Clear(ProcId p);

  [[nodiscard]] std::uint64_t blockOf(SimAddr a) const {
    return a / prm_.block_bytes;
  }

  FgsParams prm_;
  net::PointToPoint net_;
  std::vector<Resource> handler_;
  std::vector<ProcId> home_;                   ///< per 4 KB page
  std::vector<DirEntry> dir_;                  ///< per block
  std::vector<std::vector<std::uint8_t>> bs_;  ///< [proc][block] BState
  // Per-processor block-permission generation for the access fast path.
  // Bumped whenever the protocol *downgrades* one of the processor's
  // block states (exclusive fetch-back, sharer invalidation); upgrades
  // (own misses, warm, setHomes) never invalidate entries.
  std::vector<std::uint64_t> bs_gen_;  ///< [proc]
  std::vector<Cache> l1_, l2_;
  std::vector<LockState> locks_;
  std::vector<BarrierState> barriers_;
  // Reused across barrier release episodes (single-threaded engine;
  // each episode's use ends before its final stallUntil yield), so the
  // slow path stops allocating a waiter vector per barrier.
  std::vector<ProcId> scratch_waiters_;
};

}  // namespace rsvm
