// Synchronization cost model shared by the hardware cache-coherent
// platforms (CC-NUMA and bus-based SMP). Locks and barriers are ordinary
// cache-line operations there: an uncontended acquire is a (possibly
// remote) read-modify-write, a contended handoff is one line transfer,
// and a barrier arrival is a fetch-and-increment that serializes on the
// counter's cache line. This is why "locks are cheap and are simply
// locks" on these machines (paper, section 4.2.3), in contrast to SVM.
#pragma once

#include "sim/engine.hpp"
#include "sim/faultplan.hpp"
#include "sim/resource.hpp"

#include <deque>
#include <vector>

namespace rsvm {

class HwSync {
 public:
  struct Costs {
    Cycles lock_cached = 12;    ///< re-acquire of a lock we last held
    Cycles lock_remote = 150;   ///< uncontended RMW on a remote line
    Cycles lock_handoff = 150;  ///< release-to-acquire line transfer
    Cycles barrier_rmw = 120;   ///< fetch&inc occupancy of the counter line
    Cycles barrier_release = 150;  ///< flag invalidation + refetch
    Cycles barrier_stagger = 20;   ///< per-waiter refetch serialization
  };

  HwSync(Engine& eng, const Costs& c) : eng_(eng), costs_(c) {}

  void onLockCreated() { locks_.emplace_back(); }
  void onBarrierCreated() { barriers_.emplace_back(); }

  /// Attach a fault plan enabling lock-handoff reordering (null: none).
  void setFaultPlan(FaultPlan* f) { fault_ = f; }

  void acquire(int id) {
    const ProcId p = eng_.self();
    Lock& lk = locks_[static_cast<std::size_t>(id)];
    ProcStats& st = eng_.stats(p);
    ++st.lock_acquires;
    if (lk.held) {
      lk.waiters.push_back(p);
      eng_.block(Bucket::LockWait);
      return;
    }
    lk.held = true;
    lk.owner = p;
    if (lk.last_owner == p || lk.last_owner == -1) {
      eng_.advance(costs_.lock_cached, Bucket::LockWait);
    } else {
      ++st.remote_lock_acquires;
      eng_.advance(costs_.lock_remote, Bucket::LockWait);
    }
  }

  void release(int id) {
    const ProcId p = eng_.self();
    Lock& lk = locks_[static_cast<std::size_t>(id)];
    lk.last_owner = p;
    // Fault injection: hardware lock handoff is a cache-line race any
    // waiter may win, so rotating the FIFO queue only exercises an order
    // the real machine already allows.
    if (fault_ != nullptr && lk.waiters.size() > 1 && fault_->reorderGrant()) {
      lk.waiters.push_back(lk.waiters.front());
      lk.waiters.pop_front();
    }
    if (!lk.waiters.empty()) {
      const ProcId w = lk.waiters.front();
      lk.waiters.pop_front();
      lk.owner = w;
      ++eng_.stats(w).remote_lock_acquires;
      eng_.wake(w, eng_.now(p) + costs_.lock_handoff);
    } else {
      lk.held = false;
      lk.owner = -1;
    }
  }

  void barrier(int id, int participants) {
    const ProcId p = eng_.self();
    Barrier& b = barriers_[static_cast<std::size_t>(id)];
    ++eng_.stats(p).barriers;
    // Fetch-and-increment serializes on the counter's cache line.
    const Cycles t =
        b.counter_line.acquire(eng_.now(p), costs_.barrier_rmw);
    eng_.stallUntil(t, Bucket::BarrierWait);
    if (++b.arrived < participants) {
      b.waiting.push_back(p);
      eng_.block(Bucket::BarrierWait);
      return;
    }
    // Last arriver: flip the flag; waiters refetch the flag line.
    b.arrived = 0;
    Cycles rel = eng_.now(p) + costs_.barrier_release;
    std::vector<ProcId> waiters;
    waiters.swap(b.waiting);
    for (ProcId w : waiters) {
      rel += costs_.barrier_stagger;
      eng_.wake(w, rel);
    }
    eng_.advance(costs_.barrier_release, Bucket::BarrierWait);
  }

 private:
  struct Lock {
    bool held = false;
    ProcId owner = -1;
    ProcId last_owner = -1;
    std::deque<ProcId> waiters;
  };
  struct Barrier {
    int arrived = 0;
    std::vector<ProcId> waiting;
    Resource counter_line;
  };

  Engine& eng_;
  Costs costs_;
  std::vector<Lock> locks_;
  std::vector<Barrier> barriers_;
  FaultPlan* fault_ = nullptr;
};

}  // namespace rsvm
