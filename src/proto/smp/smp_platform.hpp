// Bus-based symmetric multiprocessor with centralized memory, modeled on
// the SGI Challenge the paper uses (section 2.1.2): 16 x 150 MHz
// processors, 16 KB L1 + 1 MB L2 with 128 B lines, snooping invalidation
// protocol over a 1.2 GB/s split-transaction bus (= 8 B/cycle at
// 150 MHz). All misses cross the single shared bus, so heavy traffic
// (e.g. Radix) saturates it -- the effect the paper reports in section 5.
#pragma once

#include "mem/cache.hpp"
#include "net/network.hpp"
#include "proto/hw_sync.hpp"
#include "runtime/platform.hpp"

#include <cstdint>
#include <vector>

namespace rsvm {

struct SmpParams {
  /// Engine drift quantum (interleaving granularity of direct execution).
  Cycles quantum = 2000;
  CacheConfig l1{16 * 1024, 32, 1};
  CacheConfig l2{1024 * 1024, 128, 1};
  Cycles l1_miss_penalty = 8;   ///< L1 miss that hits in L2
  Cycles mem_latency = 35;      ///< DRAM latency, overlapped off-bus
  net::SharedBus::Params bus{4, 4, 8.0};
  Cycles snoop_latency = 8;     ///< cache-to-cache intervention extra
  HwSync::Costs sync{12, 70, 90, 60, 80, 12};
};

class SmpPlatform final : public Platform {
 public:
  explicit SmpPlatform(int nprocs, const SmpParams& params = {});

  [[nodiscard]] std::uint32_t coherenceBytes() const override {
    return prm_.l2.line_bytes;
  }

  [[nodiscard]] const SmpParams& params() const { return prm_; }
  [[nodiscard]] const Resource& busResource() const { return bus_.resource(); }

  /// Pre-fence touch set: empty by construction. Snooping makes nothing
  /// processor-private -- any committed bus transaction may invalidate or
  /// downgrade *this* processor's L1/L2 lines (busTransaction walks every
  /// other cache, dropFromL1 reaches into the victim), so even the local
  /// L1 probe in doAccess races unfenced run-ahead. The platform is
  /// shard-safe only under fenced accesses (shardAccessNeedsFence stays
  /// at the base-class `true`): every access runs committed, the bus
  /// Resource and all cache-state transitions serialize under the commit
  /// token in sequential key order, and sync ops were already fenced by
  /// the Platform wrappers.
  [[nodiscard]] bool shardParallelSafe() const override { return true; }

 protected:
  void doAccess(SimAddr a, std::uint32_t size, bool write) override;
  // Locks and barriers are ordinary cached-line operations on the SMP;
  // the trace events still bracket them so consumers (TraceRecorder,
  // RaceChecker) see the same synchronization stream on every platform.
  void acquireLockImpl(int id) override {
    const ProcId p = engine_.self();
    emit(TraceEvent::Kind::LockAcquire, p, static_cast<std::uint64_t>(id));
    sync_.acquire(id);
    emit(TraceEvent::Kind::LockGrant, p, static_cast<std::uint64_t>(id));
    maybeSpuriousL1Clear(p);
  }
  void releaseLockImpl(int id) override {
    emit(TraceEvent::Kind::LockRelease, engine_.self(),
         static_cast<std::uint64_t>(id));
    sync_.release(id);
  }
  void barrierImpl(int id) override {
    const ProcId p = engine_.self();
    emit(TraceEvent::Kind::BarrierArrive, p, static_cast<std::uint64_t>(id));
    sync_.barrier(id, nprocs());
    emit(TraceEvent::Kind::BarrierDepart, p, static_cast<std::uint64_t>(id));
  }
  void onArenaGrown(std::size_t) override {}
  void onLockCreated(int) override { sync_.onLockCreated(); }
  void onBarrierCreated(int) override { sync_.onBarrierCreated(); }
  void setHomes(SimAddr, std::size_t, const HomePolicy&) override {}
  /// Oracle wiring: snooping caches evict Shared lines silently, so the
  /// permission mirror only over-approximates the true cache state.
  [[nodiscard]] bool exactPermissionMirror() const override { return false; }
  void applyFaultPlan(FaultPlan* fp) override {
    bus_.setFaultPlan(fp);
    sync_.setFaultPlan(fp);
  }

 private:
  /// Put a transaction for `line` on the bus; every other cache snoops.
  Cycles busTransaction(ProcId p, SimAddr line, bool write, bool need_data);
  void dropFromL1(ProcId p, SimAddr l2_line);
  /// Oracle audit: there is no directory on a snooping bus, so the audit
  /// checks the actual L2 states (single writer) against the mirror.
  void auditLine(ProcId actor, SimAddr line_addr, const char* transition);
  /// Fault injection: occasionally clear p's own L1 (always legal: the
  /// L1 holds no permission state the snoop protocol relies on).
  void maybeSpuriousL1Clear(ProcId p);

  SmpParams prm_;
  net::SharedBus bus_;
  std::vector<Cache> l1_, l2_;
  HwSync sync_;
};

}  // namespace rsvm
