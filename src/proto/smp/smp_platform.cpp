#include "proto/smp/smp_platform.hpp"

namespace rsvm {

namespace {
Engine::Config engineConfig(int nprocs, Cycles quantum) {
  Engine::Config ec;
  ec.nprocs = nprocs;
  ec.quantum = quantum;
  return ec;
}
}  // namespace

SmpPlatform::SmpPlatform(int nprocs, const SmpParams& params)
    : Platform(PlatformKind::SMP, engineConfig(nprocs, params.quantum)),
      prm_(params),
      bus_(params.bus),
      sync_(engine_, params.sync) {
  l1_.reserve(static_cast<std::size_t>(nprocs));
  l2_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    l1_.emplace_back(prm_.l1);
    l2_.emplace_back(prm_.l2);
  }
  // Fast path: an L1 hit costs 1 Compute cycle; permission lives entirely
  // in the hardware caches (no platform-level generation needed).
  initFastPath(prm_.l1.line_bytes, 1, 1, /*write_needs_modified=*/true);
  for (int i = 0; i < nprocs; ++i) {
    setFastPathProc(i, &l1_[static_cast<std::size_t>(i)], nullptr);
  }
}

void SmpPlatform::dropFromL1(ProcId p, SimAddr l2_line) {
  l1_[static_cast<std::size_t>(p)].invalidateRange(l2_line,
                                                   prm_.l2.line_bytes);
}

void SmpPlatform::auditLine(ProcId actor, SimAddr line_addr,
                            const char* transition) {
  CoherenceOracle* oc = oracle();
  if (oc == nullptr) return;
  CoherenceOracle::UnitAudit ua;
  ua.unit = line_addr / prm_.l2.line_bytes;
  ua.actor = actor;
  ua.transition = transition;
  for (int q = 0; q < nprocs(); ++q) {
    const LineState s = l2_[static_cast<std::size_t>(q)].probe(line_addr);
    if (s != LineState::Invalid) {
      ua.actual_readers |= 1ull << static_cast<unsigned>(q);
    }
    if (s == LineState::Modified) {
      ua.actual_writers |= 1ull << static_cast<unsigned>(q);
    }
  }
  // No directory on a snooping bus: the cache scan is the authoritative
  // copyset, so the audit's value is the single-writer and mirror checks.
  ua.dir_readers = ua.actual_readers;
  ua.dir_owner = -1;
  oc->audit(ua);
}

void SmpPlatform::maybeSpuriousL1Clear(ProcId p) {
  FaultPlan* fp = fault();
  if (fp == nullptr || !fp->spuriousNow()) return;
  l1_[static_cast<std::size_t>(p)].clear();
}

Cycles SmpPlatform::busTransaction(ProcId p, SimAddr line, bool write,
                                   bool need_data) {
  ProcStats& st = engine_.stats(p);
  // Snoop all other caches: find a Modified owner, and on writes
  // invalidate every other copy.
  bool dirty_elsewhere = false;
  for (int q = 0; q < nprocs(); ++q) {
    if (q == p) continue;
    Cache& oc = l2_[static_cast<std::size_t>(q)];
    if (write) {
      if (oc.invalidate(line) != LineState::Invalid) {
        dropFromL1(static_cast<ProcId>(q), line);
        ++st.invalidations_sent;
        if (oracle()) {
          oracle()->revoke(q, line / prm_.l2.line_bytes, OraclePerm::None,
                           "snoop-invalidate");
        }
      }
    } else if (oc.downgrade(line)) {
      // No mirror revoke: the L1 keeps its Modified copy across an L2
      // downgrade in this tag-only model, so q can legally keep
      // write-hitting it (see exactPermissionMirror).
      dirty_elsewhere = true;
    }
  }
  const std::uint64_t bytes = need_data ? prm_.l2.line_bytes : 0;
  Cycles t = bus_.transact(bytes, engine_.now(p));
  if (need_data) {
    // Data supplied by memory, or by the dirty cache (intervention).
    t += dirty_elsewhere ? prm_.mem_latency + prm_.snoop_latency
                         : prm_.mem_latency;
  }
  ++st.remote_misses;  // on the SMP every L2 miss crosses the shared bus
  return t;
}

void SmpPlatform::doAccess(SimAddr a, std::uint32_t size, bool write) {
  (void)size;
  const ProcId p = engine_.self();
  ProcStats& st = engine_.stats(p);
  if (write) {
    ++st.writes;
  } else {
    ++st.reads;
  }
  Cache& l1 = l1_[static_cast<std::size_t>(p)];
  Cache& l2 = l2_[static_cast<std::size_t>(p)];
  engine_.advance(1, Bucket::Compute);
  const auto r1 = l1.access(a, write);
  if (r1.hit && !r1.upgrade) return;
  ++st.l1_misses;
  const auto r2 = l2.access(a, write);
  if (r2.hit && !r2.upgrade) {
    l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
    engine_.advance(prm_.l1_miss_penalty, Bucket::CacheStall);
    return;
  }
  const SimAddr line = l2.lineAddr(a);
  ++st.l2_misses;
  Cycles done;
  if (r2.upgrade) {
    // Invalidation-only (address phase) transaction.
    done = busTransaction(p, line, true, /*need_data=*/false);
    l2.setState(line, LineState::Modified);
    if (oracle()) {
      oracle()->grant(p, line / prm_.l2.line_bytes, OraclePerm::Write,
                      "bus-upgrade");
      auditLine(p, line, "bus-upgrade");
    }
  } else {
    done = busTransaction(p, line, write, /*need_data=*/true);
    SimAddr victim = 0;
    if (l2.fill(line, write ? LineState::Modified : LineState::Shared,
                &victim)) {
      // Writeback occupies the bus in the background. The mirror is not
      // revoked (the L1 can legally keep a stale copy of the victim in
      // this tag-only model; see exactPermissionMirror).
      bus_.transact(prm_.l2.line_bytes, engine_.now(p));
      auditLine(p, victim, "victim-writeback");
    }
    dropFromL1(p, line);
    if (oracle()) {
      oracle()->grant(p, line / prm_.l2.line_bytes,
                      write ? OraclePerm::Write : OraclePerm::Read,
                      "bus-fill");
      auditLine(p, line, "bus-fill");
    }
  }
  l1.fill(a, write ? LineState::Modified : LineState::Shared, nullptr);
  // On a centralized-memory SMP all misses are "local" in the paper's
  // breakdown terms: they are CPU-cache stall, not remote data wait.
  engine_.stallUntil(done > engine_.now(p) ? done : engine_.now(p),
                     Bucket::CacheStall);
}

}  // namespace rsvm
