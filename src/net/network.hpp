// Interconnect models. The paper's platforms use (a) a Myrinet-class
// point-to-point commodity network where packets cross each node's I/O
// bus (the SVM platform), (b) CC-NUMA node-to-network links, and (c) a
// single shared snooping bus (SGI Challenge). Contention is modeled with
// FIFO occupancy at each shared resource; link/router internals are not
// modeled, matching the paper's simulators.
#pragma once

#include "sim/faultplan.hpp"
#include "sim/resource.hpp"
#include "sim/types.hpp"

#include <cmath>
#include <vector>

namespace rsvm {
namespace net {

/// Cycles to move `bytes` at `bytes_per_cycle` (ceiling).
inline Cycles transferCycles(std::uint64_t bytes, double bytes_per_cycle) {
  return static_cast<Cycles>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle));
}

/// Point-to-point network: every node has an egress and ingress port
/// (for the SVM platform these model the 100 MB/s I/O bus the NIC sits
/// on; for CC-NUMA the 400 MB/s node-to-network link).
class PointToPoint {
 public:
  struct Params {
    Cycles sw_overhead = 0;     ///< per-message software/NIC overhead
    Cycles wire_latency = 0;    ///< propagation + routing latency
    double bytes_per_cycle = 1; ///< port bandwidth
  };

  PointToPoint(int nodes, const Params& p)
      : params_(p), tx_(static_cast<std::size_t>(nodes)),
        rx_(static_cast<std::size_t>(nodes)) {}

  /// Send `bytes` from -> to, starting no earlier than `start`.
  /// Returns the time the message is fully received. Transfers are
  /// cut-through: the receive side starts one wire latency after the
  /// send side starts (not after it finishes), so a large message costs
  /// one port occupancy, not two, when both ports are idle.
  Cycles send(ProcId from, ProcId to, std::uint64_t bytes, Cycles start) {
    // Fault injection: messages may legally take longer than the model's
    // minimum (routing conflicts, host-side scheduling); latency is never
    // part of the consistency contract.
    if (fault_ != nullptr) start += fault_->msgJitter();
    const Cycles occ = transferCycles(bytes, params_.bytes_per_cycle);
    Resource& tx = tx_[static_cast<std::size_t>(from)];
    const Cycles tx_start = tx.startTime(start + params_.sw_overhead);
    tx.acquire(start + params_.sw_overhead, occ);
    return rx_[static_cast<std::size_t>(to)].acquire(
        tx_start + params_.wire_latency, occ);
  }

  [[nodiscard]] const Params& params() const { return params_; }
  Resource& txPort(ProcId n) { return tx_[static_cast<std::size_t>(n)]; }
  Resource& rxPort(ProcId n) { return rx_[static_cast<std::size_t>(n)]; }

  /// Attach a fault plan adding per-message latency jitter (null: none).
  void setFaultPlan(FaultPlan* f) { fault_ = f; }

 private:
  Params params_;
  std::vector<Resource> tx_;
  std::vector<Resource> rx_;
  FaultPlan* fault_ = nullptr;
};

/// Single shared split-transaction bus (SGI Challenge style): each
/// transaction occupies the bus for an address phase plus its data
/// transfer; memory latency overlaps off-bus.
class SharedBus {
 public:
  struct Params {
    Cycles arbitration = 0;     ///< win-the-bus cost (uncontended)
    Cycles address_phase = 0;   ///< address/command slot
    double bytes_per_cycle = 8; ///< data bandwidth
  };

  explicit SharedBus(const Params& p) : params_(p) {}

  /// Issue a transaction moving `bytes` (0 for address-only, e.g.
  /// upgrades). Returns the time the bus phase completes.
  Cycles transact(std::uint64_t bytes, Cycles start) {
    // Fault injection: arbitration may legally take extra cycles.
    if (fault_ != nullptr) start += fault_->msgJitter();
    const Cycles occ = params_.address_phase +
                       (bytes > 0 ? transferCycles(bytes, params_.bytes_per_cycle)
                                  : 0);
    return bus_.acquire(start + params_.arbitration, occ);
  }

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const Resource& resource() const { return bus_; }

  /// Attach a fault plan adding per-transaction arbitration jitter.
  void setFaultPlan(FaultPlan* f) { fault_ = f; }

 private:
  Params params_;
  Resource bus_;
  FaultPlan* fault_ = nullptr;
};

}  // namespace net
}  // namespace rsvm
