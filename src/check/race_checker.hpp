// Online happens-before correctness checker for the simulation substrate.
//
// The paper's protocols (HLRC in particular) are only correct for
// data-race-free programs, and its whole P/A optimization ladder is about
// diagnosing false sharing. This checker mechanizes both diagnoses from
// the extended trace stream the platforms emit:
//
//  * it maintains one vector clock per simulated processor, advanced by
//    the lock release->grant and barrier arrive->depart events every
//    platform emits, and flags conflicting shared accesses that are not
//    ordered by synchronization as data races (at word granularity);
//  * it runs the same conflict analysis at the platform's coherence
//    granularity (SVM page / cache line / FGS block); conflicts that
//    exist there but whose word ranges are disjoint are exactly the
//    paper's false sharing, reported quantified per allocation.
//
// Accesses annotated RacyRead/RacyWrite (Ctx::readRacy, e.g. the task
// queues' steal peek) are deliberate stale reads, counted but never
// reported as races.
//
// Attach with plat.trace = checker.hook() (or teeHooks with a
// TraceRecorder); zero overhead when no hook is set.
#pragma once

#include "runtime/trace.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace rsvm {

class Platform;

/// The nearest synchronization event a processor performed before an
/// access -- the "where to look" pointer in a race report.
struct SyncRef {
  bool valid = false;
  TraceEvent::Kind kind = TraceEvent::Kind::LockAcquire;
  std::uint64_t id = 0;  ///< lock or barrier id
  Cycles at = 0;
};

struct RaceReport {
  /// One conflicting, synchronization-unordered access pair.
  struct Conflict {
    SimAddr unit_base = 0;        ///< conflicting unit (word or coherence)
    std::uint32_t unit_bytes = 0;
    ProcId first_proc = -1;
    ProcId second_proc = -1;
    bool first_write = false;
    bool second_write = false;
    SimAddr first_addr = 0;
    SimAddr second_addr = 0;
    std::uint32_t first_len = 0;
    std::uint32_t second_len = 0;
    SyncRef first_sync;   ///< nearest sync before the earlier access
    SyncRef second_sync;  ///< nearest sync before the later access
  };

  /// Word-disjoint conflicts within one allocation's coherence units --
  /// the paper's false sharing, quantified per data structure.
  struct FalseSharingDiag {
    SimAddr alloc_base = 0;
    std::size_t alloc_bytes = 0;  ///< 0 when the address was unattributed
    std::size_t units = 0;        ///< distinct coherence units affected
    std::size_t pairs = 0;        ///< deduplicated conflicting pairs
    Conflict example;
  };

  std::vector<Conflict> races;  ///< word-granularity data races (capped)
  std::vector<FalseSharingDiag> false_sharing;
  std::size_t accesses = 0;        ///< shared accesses checked
  std::size_t races_total = 0;     ///< deduplicated races incl. beyond cap
  std::size_t suppressed_racy = 0; ///< conflicts involving annotated accesses

  [[nodiscard]] bool clean() const { return races_total == 0; }
  [[nodiscard]] std::size_t falseSharingPairs() const {
    std::size_t n = 0;
    for (const auto& f : false_sharing) n += f.pairs;
    return n;
  }
  /// Human-readable diagnosis (pairs with TraceRecorder::report()).
  [[nodiscard]] std::string summary() const;
};

class RaceChecker {
 public:
  struct Config {
    int nprocs = 0;
    std::uint32_t word_bytes = 4;        ///< word-shadow binning granularity
    std::uint32_t coherence_bytes = 4096;
    std::size_t max_reports = 32;        ///< stored Conflict records
  };

  explicit RaceChecker(const Config& cfg);
  /// Configure from a platform: its processor count and coherence unit.
  explicit RaceChecker(const Platform& plat);

  /// Returns a hook bound to this checker (attach to Platform::trace).
  TraceHook hook() {
    return [this](const TraceEvent& e) { onEvent(e); };
  }

  void onEvent(const TraceEvent& e);

  /// Snapshot of everything diagnosed so far.
  [[nodiscard]] RaceReport report() const;
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  using Clock = std::vector<std::uint32_t>;  ///< one slot per processor

  struct Access {
    std::uint32_t clock = 0;  ///< owner's vc component when it happened
    ProcId proc = -1;
    SimAddr lo = 0;
    std::uint32_t len = 0;
    bool write = false;
    bool racy = false;
    SyncRef sync;
  };

  struct Cell {
    Access w;                    ///< last write (clock 0 = none)
    std::vector<Access> reads;   ///< reads since the last write
  };

  /// One conflict analysis at a fixed granularity.
  struct Shadow {
    std::uint32_t unit = 0;
    std::unordered_map<std::uint64_t, Cell> cells;
  };

  void onAccess(const TraceEvent& e, bool write, bool racy);
  void checkShadow(Shadow& sh, const Access& cur, bool coherence_level);
  void onConflict(const Access& prev, const Access& cur, SimAddr unit_base,
                  std::uint32_t unit_bytes, bool coherence_level);
  void join(Clock& into, const Clock& from);
  [[nodiscard]] bool orderedBefore(const Access& prev, ProcId p) const;
  /// Do the two accesses touch a common byte? Overlapping conflicts are
  /// data races; disjoint ones sharing a coherence unit are false sharing.
  [[nodiscard]] static bool bytesOverlap(const Access& a, const Access& b);

  struct LockSt {
    Clock vc;  ///< clock carried by the lock (last releaser's knowledge)
  };
  struct BarrierSt {
    std::vector<Clock> epochs;           ///< merged clock per epoch
    std::vector<std::size_t> arrive_idx; ///< per proc: next arrive epoch
    std::vector<std::size_t> depart_idx; ///< per proc: next depart epoch
  };
  struct AllocInfo {
    SimAddr base = 0;
    std::size_t bytes = 0;
  };
  struct FsAccum {
    std::set<std::uint64_t> units;
    std::size_t pairs = 0;
    std::size_t example_alloc_bytes = 0;
    RaceReport::Conflict example;
  };

  Config cfg_;
  std::vector<Clock> vc_;        ///< per processor
  std::vector<SyncRef> last_sync_;
  std::map<std::uint64_t, LockSt> locks_;
  std::map<std::uint64_t, BarrierSt> barriers_;
  std::vector<AllocInfo> allocs_;  ///< sorted by base
  Shadow word_;
  Shadow coh_;
  // Deduplication: (unit, procA, procB, rw-kind) per granularity level.
  std::set<std::tuple<std::uint64_t, int, int, int>> seen_races_;
  std::set<std::tuple<std::uint64_t, int, int, int>> seen_fs_;
  std::map<SimAddr, FsAccum> fs_;  ///< keyed by allocation base
  RaceReport report_;
};

}  // namespace rsvm
