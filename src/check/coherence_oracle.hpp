// Shadow-memory coherence oracle: an independent mirror of every
// coherence unit's permission state, fed by the protocols at each
// transition, that asserts the invariants the paper's figures silently
// assume:
//
//  * single-writer/multiple-reader -- at most one coherence domain holds
//    write permission on a unit at a time (relaxed on SVM, whose
//    multiple-writer twin/diff scheme legally admits concurrent
//    writers);
//  * access/permission agreement -- every timed access is performed by a
//    domain the protocol actually granted sufficient permission;
//  * data-value invariant -- the value a read observes is one
//    happens-before allows: the word's last writer must be ordered
//    before the reader by the synchronization vector clocks (the PR-1
//    race-checker semantics), otherwise the app just consumed a value
//    the consistency model does not guarantee;
//  * directory/page-table agreement -- at protocol transitions, the
//    directory's owner/copyset must cover the copies actually held by
//    caches/page tables, and both must stay within the rights this
//    mirror recorded.
//
// Enable with Platform::setCheckLevel(CheckLevel::Oracle) *before*
// allocating shared data. Violations are collected as structured reports
// (proc, addr, unit, transition, both states) rather than thrown, so a
// sweep can attribute them per point.
#pragma once

#include "sim/types.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace rsvm {

enum class OraclePerm : std::uint8_t { None = 0, Read, Write };

const char* oraclePermName(OraclePerm p);

struct OracleViolation {
  std::string kind;        ///< e.g. "two-writers", "no-read-permission"
  ProcId proc = -1;        ///< acting processor (-1 for host-side events)
  SimAddr addr = 0;        ///< faulting address (unit base for audits)
  SimAddr unit_base = 0;   ///< base address of the coherence unit
  std::uint32_t unit_bytes = 0;
  std::string transition;  ///< protocol transition being checked
  std::string detail;      ///< both states, human-readable
};

struct OracleReport {
  std::vector<OracleViolation> violations;  ///< capped at max_reports
  std::size_t total = 0;     ///< all violations incl. beyond the cap
  std::size_t accesses = 0;  ///< accesses permission-checked
  std::size_t grants = 0;    ///< permission transitions mirrored
  std::size_t audits = 0;    ///< directory/page-table agreement checks

  [[nodiscard]] bool clean() const { return total == 0; }
  /// One-line-per-violation diagnosis naming proc/addr/transition.
  [[nodiscard]] std::string summary() const;
};

class CoherenceOracle {
 public:
  struct Config {
    int nprocs = 0;
    int ndomains = 0;            ///< coherence domains (SVM nodes; procs)
    std::vector<int> domain_of;  ///< [proc] -> domain
    std::uint32_t unit_bytes = 4096;  ///< platform coherence granularity
    std::uint32_t word_bytes = 4;     ///< data-value shadow granularity
    bool multi_writer = false;   ///< SVM's multiple-writer protocol
    /// Whether the platform reports *every* permission change (SVM page
    /// tables, FGS block states). Hardware caches may drop Shared lines
    /// silently, so their mirror only over-approximates.
    bool exact_mirror = true;
    std::size_t max_reports = 32;
  };

  explicit CoherenceOracle(const Config& cfg);

  // ---- permission mirror (called at protocol transition sites) ----

  /// Domain `domain` gains `perm` on coherence unit `unit` (unit index =
  /// address / unit_bytes). Asserts single-writer on the spot.
  void grant(int domain, std::uint64_t unit, OraclePerm perm,
             const char* transition);
  /// Domain `domain` drops to `down_to` (Read keeps the copy readable,
  /// None removes it).
  void revoke(int domain, std::uint64_t unit, OraclePerm down_to,
              const char* transition);

  // ---- directory/page-table agreement ----

  /// Snapshot of one unit at a protocol transition: the directory's view
  /// (copyset/owner) and the state actually held by caches/page tables,
  /// both as per-domain bitmasks (the constructor enforces <= 64
  /// domains so one word suffices).
  struct UnitAudit {
    std::uint64_t unit = 0;
    ProcId actor = -1;            ///< processor driving the transition
    const char* transition = "";
    std::uint64_t dir_readers = 0;    ///< directory copyset
    int dir_owner = -1;               ///< directory owner (-1 = none)
    std::uint64_t actual_readers = 0; ///< domains actually holding >= Read
    std::uint64_t actual_writers = 0; ///< domains actually holding Write
    int must_reader = -1;  ///< domain that must hold a copy (SVM home)
  };
  void audit(const UnitAudit& ua);

  // ---- accesses (called by Platform around every slow-path access) ----

  /// Mark the start of p's timed access. Between beginAccess and the
  /// matching onAccess the access is *in flight*: a permission the
  /// protocol revokes from p's domain during that window still satisfies
  /// the access (the access semantically happened while the permission
  /// was held -- the engine merely interleaved another processor's
  /// revocation between the grant and this check).
  void beginAccess(ProcId p);
  void onAccess(ProcId p, SimAddr a, std::uint32_t size, bool write,
                bool racy);

  // ---- synchronization (vector clocks, PR-1 race-checker semantics) ----
  void onLockGrant(ProcId p, int id);
  void onLockRelease(ProcId p, int id);
  void onBarrierArrive(ProcId p, int id);
  void onBarrierDepart(ProcId p, int id);

  [[nodiscard]] const OracleReport& report() const { return report_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  using Clock = std::vector<std::uint32_t>;  ///< one slot per processor

  /// Mirrored permission state of one unit, one bit per domain.
  struct UnitPerm {
    std::uint64_t readers = 0;
    std::uint64_t writers = 0;
  };
  /// Last writer of one word (data-value invariant).
  struct LastWrite {
    ProcId proc = -1;
    std::uint32_t clock = 0;  ///< writer's own vc component at the write
    bool racy = false;
  };
  struct LockSt {
    Clock vc;
  };
  struct BarrierSt {
    std::vector<Clock> epochs;
    std::vector<std::size_t> arrive_idx;
    std::vector<std::size_t> depart_idx;
  };

  /// Permission p's domain lost while one of the domain's accesses was
  /// in flight; consulted by the permission check, dropped when the
  /// domain's in-flight count returns to zero.
  struct Grace {
    std::uint64_t unit = 0;
    int domain = -1;
    bool had_write = false;
    bool had_read = false;
  };

  void addViolation(OracleViolation v);
  [[nodiscard]] bool graceAllows(std::uint64_t unit, int domain,
                                 bool write) const;
  [[nodiscard]] bool orderedBefore(const LastWrite& w, ProcId p) const;
  static void join(Clock& into, const Clock& from);
  [[nodiscard]] static std::string maskStr(std::uint64_t m);
  [[nodiscard]] std::string permStr(const UnitPerm& up) const;

  Config cfg_;
  std::unordered_map<std::uint64_t, UnitPerm> perm_;
  std::unordered_map<std::uint64_t, LastWrite> words_;
  std::vector<Clock> vc_;
  std::map<int, LockSt> locks_;
  std::map<int, BarrierSt> barriers_;
  /// Dedup of reported stale-value triples (word, writer, reader).
  std::set<std::tuple<std::uint64_t, int, int>> seen_stale_;
  std::vector<int> inflight_;  ///< [domain] accesses between begin/check
  std::vector<Grace> grace_;
  OracleReport report_;
};

}  // namespace rsvm
