#include "check/race_checker.hpp"

#include "runtime/platform.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace rsvm {

namespace {

int rwKind(bool prev_write, bool cur_write) {
  return (prev_write ? 2 : 0) | (cur_write ? 1 : 0);
}

std::string describeSync(const SyncRef& s) {
  if (!s.valid) return "start of run";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s(%" PRIu64 ")@%" PRIu64,
                traceKindName(s.kind), s.id, s.at);
  return buf;
}

std::string describeConflict(const RaceReport::Conflict& c) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "P%d %s [0x%" PRIx64 "+%u] vs P%d %s [0x%" PRIx64
      "+%u] in unit 0x%" PRIx64 " (%u B); last sync: P%d %s, P%d %s",
      c.first_proc, c.first_write ? "write" : "read", c.first_addr,
      c.first_len, c.second_proc, c.second_write ? "write" : "read",
      c.second_addr, c.second_len, c.unit_base, c.unit_bytes, c.first_proc,
      describeSync(c.first_sync).c_str(), c.second_proc,
      describeSync(c.second_sync).c_str());
  return buf;
}

}  // namespace

RaceChecker::RaceChecker(const Config& cfg) : cfg_(cfg) {
  assert(cfg_.nprocs > 0);
  assert(cfg_.word_bytes > 0 && cfg_.coherence_bytes > 0);
  vc_.assign(static_cast<std::size_t>(cfg_.nprocs),
             Clock(static_cast<std::size_t>(cfg_.nprocs), 0));
  for (int p = 0; p < cfg_.nprocs; ++p) {
    vc_[static_cast<std::size_t>(p)][static_cast<std::size_t>(p)] = 1;
  }
  last_sync_.assign(static_cast<std::size_t>(cfg_.nprocs), SyncRef{});
  word_.unit = cfg_.word_bytes;
  coh_.unit = cfg_.coherence_bytes;
}

RaceChecker::RaceChecker(const Platform& plat)
    : RaceChecker(Config{plat.nprocs(), 4, plat.coherenceBytes(), 32}) {}

void RaceChecker::join(Clock& into, const Clock& from) {
  if (into.empty()) into.assign(from.size(), 0);
  for (std::size_t i = 0; i < into.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

bool RaceChecker::orderedBefore(const Access& prev, ProcId p) const {
  if (prev.proc == p) return true;  // program order
  return vc_[static_cast<std::size_t>(p)][static_cast<std::size_t>(
             prev.proc)] >= prev.clock;
}

bool RaceChecker::bytesOverlap(const Access& a, const Access& b) {
  return a.lo < b.lo + b.len && b.lo < a.lo + a.len;
}

void RaceChecker::onEvent(const TraceEvent& e) {
  using K = TraceEvent::Kind;
  switch (e.kind) {
    case K::SharedRead:
      onAccess(e, /*write=*/false, /*racy=*/false);
      return;
    case K::SharedWrite:
      onAccess(e, /*write=*/true, /*racy=*/false);
      return;
    case K::RacyRead:
      onAccess(e, /*write=*/false, /*racy=*/true);
      return;
    case K::RacyWrite:
      onAccess(e, /*write=*/true, /*racy=*/true);
      return;
    case K::Alloc: {
      const AllocInfo ai{e.id, e.bytes};
      const auto it = std::lower_bound(
          allocs_.begin(), allocs_.end(), ai,
          [](const AllocInfo& a, const AllocInfo& b) { return a.base < b.base; });
      allocs_.insert(it, ai);
      return;
    }
    default:
      break;
  }
  // Synchronization events.
  if (e.proc < 0 || e.proc >= cfg_.nprocs) return;
  const auto pi = static_cast<std::size_t>(e.proc);
  Clock& my = vc_[pi];
  switch (e.kind) {
    case K::LockRelease: {
      LockSt& lk = locks_[e.id];
      join(lk.vc, my);
      ++my[pi];
      break;
    }
    case K::LockGrant: {
      const auto it = locks_.find(e.id);
      if (it != locks_.end()) join(my, it->second.vc);
      ++my[pi];
      break;
    }
    case K::BarrierArrive: {
      BarrierSt& b = barriers_[e.id];
      if (b.arrive_idx.empty()) {
        b.arrive_idx.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
        b.depart_idx.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
      }
      const std::size_t epoch = b.arrive_idx[pi]++;
      if (b.epochs.size() <= epoch) b.epochs.resize(epoch + 1);
      join(b.epochs[epoch], my);
      ++my[pi];
      break;
    }
    case K::BarrierDepart: {
      const auto it = barriers_.find(e.id);
      if (it == barriers_.end() || it->second.depart_idx.empty()) break;
      BarrierSt& b = it->second;
      const std::size_t epoch = b.depart_idx[pi]++;
      if (epoch < b.epochs.size()) join(my, b.epochs[epoch]);
      ++my[pi];
      break;
    }
    case K::LockAcquire:
      break;  // the grant is the synchronization point
    default:
      return;  // protocol events carry no ordering information
  }
  last_sync_[pi] = SyncRef{true, e.kind, e.id, e.at};
}

void RaceChecker::onAccess(const TraceEvent& e, bool write, bool racy) {
  if (e.proc < 0 || e.proc >= cfg_.nprocs) return;
  const auto pi = static_cast<std::size_t>(e.proc);
  ++report_.accesses;
  Access cur;
  cur.clock = vc_[pi][pi];
  cur.proc = e.proc;
  cur.lo = e.id;
  cur.len = std::max<std::uint32_t>(e.bytes, 1);
  cur.write = write;
  cur.racy = racy;
  cur.sync = last_sync_[pi];
  checkShadow(word_, cur, /*coherence_level=*/false);
  if (coh_.unit != word_.unit) {
    checkShadow(coh_, cur, /*coherence_level=*/true);
  }
}

void RaceChecker::checkShadow(Shadow& sh, const Access& cur,
                              bool coherence_level) {
  const std::uint64_t first = cur.lo / sh.unit;
  const std::uint64_t last = (cur.lo + cur.len - 1) / sh.unit;
  for (std::uint64_t u = first; u <= last; ++u) {
    Cell& cell = sh.cells[u];
    const SimAddr unit_base = u * sh.unit;
    if (cell.w.clock != 0 && !orderedBefore(cell.w, cur.proc)) {
      onConflict(cell.w, cur, unit_base, sh.unit, coherence_level);
    }
    if (cur.write) {
      for (const Access& r : cell.reads) {
        if (r.proc != cur.proc && !orderedBefore(r, cur.proc)) {
          onConflict(r, cur, unit_base, sh.unit, coherence_level);
        }
      }
      // The committed write supersedes prior state: later accesses that
      // are unordered with the cleared reads are also unordered with
      // this write (transitivity), so nothing is lost.
      cell.reads.clear();
      cell.w = cur;
    } else {
      bool found = false;
      for (Access& r : cell.reads) {
        if (r.proc == cur.proc) {
          r = cur;
          found = true;
          break;
        }
      }
      if (!found) cell.reads.push_back(cur);
    }
  }
}

void RaceChecker::onConflict(const Access& prev, const Access& cur,
                             SimAddr unit_base, std::uint32_t unit_bytes,
                             bool coherence_level) {
  const int pa = std::min(prev.proc, cur.proc);
  const int pb = std::max(prev.proc, cur.proc);
  const int rw = rwKind(prev.write, cur.write);
  auto makeConflict = [&] {
    RaceReport::Conflict c;
    c.unit_base = unit_base;
    c.unit_bytes = unit_bytes;
    c.first_proc = prev.proc;
    c.second_proc = cur.proc;
    c.first_write = prev.write;
    c.second_write = cur.write;
    c.first_addr = prev.lo;
    c.second_addr = cur.lo;
    c.first_len = prev.len;
    c.second_len = cur.len;
    c.first_sync = prev.sync;
    c.second_sync = cur.sync;
    return c;
  };
  if (!coherence_level) {
    // Word granularity: only byte-overlapping conflicts are data races
    // (byte-disjoint neighbors sharing a word bin are sub-unit false
    // sharing, which the coherence-level pass accounts for). Annotated
    // accesses are deliberate (stale peeks), not bugs.
    if (!bytesOverlap(prev, cur)) return;
    if (prev.racy || cur.racy) {
      ++report_.suppressed_racy;
      return;
    }
    if (!seen_races_.emplace(unit_base, pa, pb, rw).second) return;
    ++report_.races_total;
    if (report_.races.size() < cfg_.max_reports) {
      report_.races.push_back(makeConflict());
    }
    return;
  }
  // Coherence granularity: conflicts whose byte ranges overlap are the
  // word-level analysis' business; byte-disjoint ones are false sharing.
  if (bytesOverlap(prev, cur)) return;
  SimAddr key = unit_base;
  std::size_t alloc_bytes = 0;
  if (!allocs_.empty()) {
    auto it = std::upper_bound(
        allocs_.begin(), allocs_.end(), unit_base,
        [](SimAddr a, const AllocInfo& ai) { return a < ai.base; });
    if (it != allocs_.begin()) {
      --it;
      if (unit_base < it->base + it->bytes) {
        key = it->base;
        alloc_bytes = it->bytes;
      }
    }
  }
  if (!seen_fs_.emplace(unit_base, pa, pb, rw).second) return;
  FsAccum& acc = fs_[key];
  if (acc.pairs == 0) acc.example = makeConflict();
  ++acc.pairs;
  acc.units.insert(unit_base);
  // Stash the allocation size alongside the example for report().
  if (alloc_bytes > 0) acc.example_alloc_bytes = alloc_bytes;
}

RaceReport RaceChecker::report() const {
  RaceReport out = report_;
  out.false_sharing.clear();
  out.false_sharing.reserve(fs_.size());
  for (const auto& [base, acc] : fs_) {
    RaceReport::FalseSharingDiag d;
    d.alloc_base = base;
    d.alloc_bytes = acc.example_alloc_bytes;
    d.units = acc.units.size();
    d.pairs = acc.pairs;
    d.example = acc.example;
    out.false_sharing.push_back(d);
  }
  std::sort(out.false_sharing.begin(), out.false_sharing.end(),
            [](const auto& a, const auto& b) { return a.pairs > b.pairs; });
  return out;
}

std::string RaceReport::summary() const {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof line,
                "race check: %zu shared accesses, %zu data races "
                "(%zu annotated-racy conflicts suppressed), "
                "%zu false-sharing allocation(s), %zu word-disjoint "
                "conflict pair(s)\n",
                accesses, races_total, suppressed_racy, false_sharing.size(),
                falseSharingPairs());
  out += line;
  for (const auto& r : races) {
    out += "  RACE: " + describeConflict(r) + "\n";
  }
  if (races_total > races.size()) {
    std::snprintf(line, sizeof line, "  ... and %zu more race(s)\n",
                  races_total - races.size());
    out += line;
  }
  for (const auto& f : false_sharing) {
    std::snprintf(line, sizeof line,
                  "  FALSE SHARING: alloc 0x%" PRIx64
                  " (%zu B): %zu unit(s), %zu pair(s)\n",
                  f.alloc_base, f.alloc_bytes, f.units, f.pairs);
    out += line;
    out += "    e.g. " + describeConflict(f.example) + "\n";
  }
  return out;
}

}  // namespace rsvm
