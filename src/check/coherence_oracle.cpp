#include "check/coherence_oracle.hpp"

#include <sstream>
#include <stdexcept>

namespace rsvm {

namespace {

std::uint64_t bit(int d) { return 1ull << d; }

int popcount(std::uint64_t m) { return __builtin_popcountll(m); }

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

const char* oraclePermName(OraclePerm p) {
  switch (p) {
    case OraclePerm::None:
      return "None";
    case OraclePerm::Read:
      return "Read";
    case OraclePerm::Write:
      return "Write";
  }
  return "?";
}

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << total << " coherence violation(s) in " << accesses << " accesses, "
     << grants << " transitions, " << audits << " audits";
  for (const auto& v : violations) {
    os << "\n  [" << v.kind << "] proc " << v.proc << " addr " << hex(v.addr)
       << " unit [" << hex(v.unit_base) << ",+" << v.unit_bytes << ") at "
       << v.transition << ": " << v.detail;
  }
  if (total > violations.size()) {
    os << "\n  ... " << (total - violations.size()) << " more suppressed";
  }
  return os.str();
}

CoherenceOracle::CoherenceOracle(const Config& cfg) : cfg_(cfg) {
  if (cfg_.ndomains > 64) {
    // Permission mirrors and audits are one-word per-domain bitmasks.
    throw std::invalid_argument(
        "CoherenceOracle: at most 64 coherence domains");
  }
  vc_.assign(static_cast<std::size_t>(cfg_.nprocs),
             Clock(static_cast<std::size_t>(cfg_.nprocs), 0));
  inflight_.assign(static_cast<std::size_t>(cfg_.ndomains), 0);
}

void CoherenceOracle::addViolation(OracleViolation v) {
  ++report_.total;
  if (report_.violations.size() < cfg_.max_reports) {
    report_.violations.push_back(std::move(v));
  }
}

void CoherenceOracle::join(Clock& into, const Clock& from) {
  for (std::size_t i = 0; i < into.size(); ++i) {
    if (from[i] > into[i]) into[i] = from[i];
  }
}

bool CoherenceOracle::orderedBefore(const LastWrite& w, ProcId p) const {
  if (w.proc < 0 || w.proc == p) return true;
  return vc_[static_cast<std::size_t>(p)][static_cast<std::size_t>(w.proc)] >=
         w.clock;
}

std::string CoherenceOracle::maskStr(std::uint64_t m) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (int d = 0; d < 64; ++d) {
    if ((m & bit(d)) == 0) continue;
    if (!first) os << ',';
    os << d;
    first = false;
  }
  os << '}';
  return os.str();
}

std::string CoherenceOracle::permStr(const UnitPerm& up) const {
  return "mirror readers=" + maskStr(up.readers) +
         " writers=" + maskStr(up.writers);
}

void CoherenceOracle::grant(int domain, std::uint64_t unit, OraclePerm perm,
                            const char* transition) {
  ++report_.grants;
  UnitPerm& up = perm_[unit];
  // Mirror-based single-writer checks need an exact mirror: on hardware
  // platforms self-evictions are silent, so the mirror over-approximates
  // and a stale bit is not evidence of a second live copy. There the
  // audits (which scan actual cache state) enforce SWMR instead.
  const bool swmr = cfg_.exact_mirror && !cfg_.multi_writer;
  if (perm == OraclePerm::Write) {
    if (swmr && (up.writers & ~bit(domain)) != 0) {
      addViolation({"two-writers", ProcId(domain), unit * cfg_.unit_bytes,
                    unit * cfg_.unit_bytes, cfg_.unit_bytes, transition,
                    "write granted to domain " + std::to_string(domain) +
                        " while " + permStr(up)});
    }
    if (swmr && (up.readers & ~bit(domain)) != 0) {
      addViolation({"writer-with-readers", ProcId(domain),
                    unit * cfg_.unit_bytes, unit * cfg_.unit_bytes,
                    cfg_.unit_bytes, transition,
                    "write granted to domain " + std::to_string(domain) +
                        " while " + permStr(up)});
    }
    up.writers |= bit(domain);
    up.readers |= bit(domain);
  } else if (perm == OraclePerm::Read) {
    if (swmr && (up.writers & ~bit(domain)) != 0) {
      addViolation({"reader-with-writer", ProcId(domain),
                    unit * cfg_.unit_bytes, unit * cfg_.unit_bytes,
                    cfg_.unit_bytes, transition,
                    "read granted to domain " + std::to_string(domain) +
                        " while " + permStr(up)});
    }
    up.readers |= bit(domain);
  }
}

void CoherenceOracle::revoke(int domain, std::uint64_t unit,
                             OraclePerm down_to, const char* transition) {
  (void)transition;
  ++report_.grants;
  UnitPerm& up = perm_[unit];
  // If the revoked domain has an access in flight, remember what it held
  // so the access's deferred permission check still passes: the access
  // happened while the permission was held, the engine merely ran the
  // revoking processor before this one's check.
  if (inflight_[static_cast<std::size_t>(domain)] > 0) {
    const bool had_w = (up.writers & bit(domain)) != 0;
    const bool had_r = (up.readers & bit(domain)) != 0;
    const bool lost_r = down_to == OraclePerm::None && had_r;
    if (had_w || lost_r) grace_.push_back({unit, domain, had_w, had_r});
  }
  up.writers &= ~bit(domain);
  if (down_to == OraclePerm::None) up.readers &= ~bit(domain);
}

bool CoherenceOracle::graceAllows(std::uint64_t unit, int domain,
                                  bool write) const {
  for (const Grace& g : grace_) {
    if (g.unit != unit || g.domain != domain) continue;
    if (write ? g.had_write : (g.had_read || g.had_write)) return true;
  }
  return false;
}

void CoherenceOracle::beginAccess(ProcId p) {
  const int domain = cfg_.domain_of[static_cast<std::size_t>(p)];
  ++inflight_[static_cast<std::size_t>(domain)];
}

void CoherenceOracle::audit(const UnitAudit& ua) {
  ++report_.audits;
  const SimAddr base = ua.unit * cfg_.unit_bytes;
  const std::uint64_t owner_bit = ua.dir_owner >= 0 ? bit(ua.dir_owner) : 0;
  auto actualStr = [&ua] {
    return "dir copyset=" + maskStr(ua.dir_readers) +
           " owner=" + std::to_string(ua.dir_owner) +
           ", actual readers=" + maskStr(ua.actual_readers) +
           " writers=" + maskStr(ua.actual_writers);
  };
  // The directory must cover every copy actually held. (The converse is
  // not an invariant on hardware platforms: Shared lines evict silently,
  // so the directory legally over-approximates.)
  if ((ua.actual_readers & ~(ua.dir_readers | owner_bit)) != 0) {
    addViolation({"copyset-mismatch", ua.actor, base, base, cfg_.unit_bytes,
                  ua.transition, actualStr()});
  }
  if (!cfg_.multi_writer && popcount(ua.actual_writers) > 1) {
    addViolation({"two-writers", ua.actor, base, base, cfg_.unit_bytes,
                  ua.transition, actualStr()});
  }
  if (ua.dir_owner >= 0 && ua.actual_writers != 0 &&
      (ua.actual_writers & ~owner_bit) != 0) {
    addViolation({"owner-mismatch", ua.actor, base, base, cfg_.unit_bytes,
                  ua.transition, actualStr()});
  }
  if (ua.must_reader >= 0 &&
      ((ua.actual_readers | ua.actual_writers) & bit(ua.must_reader)) == 0) {
    addViolation({"home-copy-lost", ua.actor, base, base, cfg_.unit_bytes,
                  ua.transition,
                  "home domain " + std::to_string(ua.must_reader) +
                      " lost its copy; " + actualStr()});
  }
  // Every actual copy must be one this mirror saw granted (and not yet
  // revoked) -- a cache holding rights the protocol never handed out.
  const UnitPerm& up = perm_[ua.unit];
  if ((ua.actual_readers & ~(up.readers | up.writers)) != 0 ||
      (ua.actual_writers & ~up.writers) != 0) {
    addViolation({"mirror-mismatch", ua.actor, base, base, cfg_.unit_bytes,
                  ua.transition, actualStr() + "; " + permStr(up)});
  }
}

void CoherenceOracle::onAccess(ProcId p, SimAddr a, std::uint32_t size,
                               bool write, bool racy) {
  ++report_.accesses;
  const int domain = cfg_.domain_of[static_cast<std::size_t>(p)];
  const std::uint64_t first_unit = a / cfg_.unit_bytes;
  const std::uint64_t last_unit = (a + (size ? size - 1 : 0)) / cfg_.unit_bytes;
  for (std::uint64_t u = first_unit; u <= last_unit; ++u) {
    const UnitPerm& up = perm_[u];
    if (write) {
      if ((up.writers & bit(domain)) == 0 && !graceAllows(u, domain, true)) {
        addViolation({"no-write-permission", p, a, u * cfg_.unit_bytes,
                      cfg_.unit_bytes, "access",
                      "proc " + std::to_string(p) + " (domain " +
                          std::to_string(domain) + ") wrote without write " +
                          "permission; " + permStr(up)});
      }
    } else if (((up.readers | up.writers) & bit(domain)) == 0 &&
               !graceAllows(u, domain, false)) {
      addViolation({"no-read-permission", p, a, u * cfg_.unit_bytes,
                    cfg_.unit_bytes, "access",
                    "proc " + std::to_string(p) + " (domain " +
                        std::to_string(domain) + ") read without read " +
                        "permission; " + permStr(up)});
    }
  }
  // Data-value invariant at word granularity: a read must be ordered
  // after the word's last write by the synchronization vector clocks,
  // otherwise the consistency model does not promise it that value.
  const auto& my = vc_[static_cast<std::size_t>(p)];
  const std::uint64_t w0 = a / cfg_.word_bytes;
  const std::uint64_t w1 = (a + (size ? size - 1 : 0)) / cfg_.word_bytes;
  for (std::uint64_t w = w0; w <= w1; ++w) {
    if (write) {
      words_[w] = {p, my[static_cast<std::size_t>(p)], racy};
      continue;
    }
    auto it = words_.find(w);
    if (it == words_.end()) continue;  // never written: any value is fine
    const LastWrite& lw = it->second;
    if (racy || lw.racy) continue;  // annotated-racy: exempt by contract
    if (orderedBefore(lw, p)) continue;
    auto key = std::make_tuple(w, static_cast<int>(lw.proc),
                               static_cast<int>(p));
    if (!seen_stale_.insert(key).second) continue;
    const std::uint64_t u = (w * cfg_.word_bytes) / cfg_.unit_bytes;
    addViolation(
        {"stale-value", p, w * cfg_.word_bytes, u * cfg_.unit_bytes,
         cfg_.unit_bytes, "access",
         "proc " + std::to_string(p) + " read a word last written by proc " +
             std::to_string(lw.proc) + " (clock " + std::to_string(lw.clock) +
             ") with no happens-before edge ordering the write first"});
  }
  // The access is no longer in flight; once its domain quiesces, the
  // permissions it was allowed to ride on expire. (Tolerates onAccess
  // without beginAccess so the checks can be driven directly in tests.)
  int& inflight = inflight_[static_cast<std::size_t>(domain)];
  if (inflight > 0 && --inflight == 0 && !grace_.empty()) {
    std::erase_if(grace_, [domain](const Grace& g) {
      return g.domain == domain;
    });
  }
}

void CoherenceOracle::onLockGrant(ProcId p, int id) {
  auto& lk = locks_[id];
  if (lk.vc.empty()) lk.vc.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
  auto& my = vc_[static_cast<std::size_t>(p)];
  join(my, lk.vc);
  ++my[static_cast<std::size_t>(p)];
}

void CoherenceOracle::onLockRelease(ProcId p, int id) {
  auto& lk = locks_[id];
  if (lk.vc.empty()) lk.vc.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
  auto& my = vc_[static_cast<std::size_t>(p)];
  join(lk.vc, my);
  ++my[static_cast<std::size_t>(p)];
}

void CoherenceOracle::onBarrierArrive(ProcId p, int id) {
  auto& b = barriers_[id];
  if (b.arrive_idx.empty()) {
    b.arrive_idx.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
    b.depart_idx.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
  }
  const std::size_t epoch = b.arrive_idx[static_cast<std::size_t>(p)]++;
  if (b.epochs.size() <= epoch) {
    b.epochs.resize(epoch + 1, Clock(static_cast<std::size_t>(cfg_.nprocs), 0));
  }
  auto& my = vc_[static_cast<std::size_t>(p)];
  join(b.epochs[epoch], my);
  ++my[static_cast<std::size_t>(p)];
}

void CoherenceOracle::onBarrierDepart(ProcId p, int id) {
  auto& b = barriers_[id];
  const std::size_t epoch = b.depart_idx[static_cast<std::size_t>(p)]++;
  auto& my = vc_[static_cast<std::size_t>(p)];
  join(my, b.epochs[epoch]);
  ++my[static_cast<std::size_t>(p)];
}

}  // namespace rsvm
