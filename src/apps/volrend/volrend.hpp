// Ray-casting volume renderer modeled on SPLASH-2 "Volrend" (paper
// section 4.2.1). The image plane is divided into small square tiles
// (the unit of work/stealing); tiles are grouped into per-processor
// partitions held in shared-memory task queues.
//
// Versions:
//  * orig        -- contiguous image blocks per processor, unpadded task
//                   queues, stealing on. Queue/image false sharing and
//                   dilated critical sections dominate on SVM.
//  * pa          -- task-queue entries padded+aligned to pages: less
//                   false sharing, more fragmentation; little help.
//  * ds          -- image stored 4-d (per-partition contiguous, page
//                   aligned): *hurts* (7.09 -> 6.27 in the paper) because
//                   pixel addressing cost rises and interacts with
//                   stealing.
//  * alg-steal   -- finer-grain blocks assigned round-robin (better
//                   initial balance), stealing still on (paper: 11.42).
//  * alg-nosteal -- same partition, stealing off: lock wait disappears,
//                   barrier imbalance grows slightly; net best on SVM
//                   (paper: 11.70). On CC-NUMA stealing wins instead
//                   (Fig. 17), which this pair of versions reproduces.
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::volrend {

enum class Variant { Orig, PA, DS, AlgSteal, AlgNoSteal };

/// prm.n = image dimension (pixels); the synthetic head volume is
/// n x n x (7n/8) voxels.
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::volrend
