#include "apps/volrend/volrend.hpp"

#include "apps/common/task_queue.hpp"
#include "apps/common/volume.hpp"
#include "runtime/shared.hpp"

#include <cmath>
#include <vector>

namespace rsvm::apps::volrend {
namespace {

constexpr int kTile = 4;              ///< tile edge in pixels (small tasks, as in the paper)
constexpr float kOpacityCutoff = 0.95f;
constexpr std::size_t kPageBytes = 4096;

struct Geometry {
  int n = 0;        ///< image edge (pixels) == volume x/y extent
  int nz = 0;       ///< volume depth
  int tiles = 0;    ///< tiles per image edge
  int pr = 0, pc = 0;  ///< processor grid for block partitions
};

/// Cast the ray for pixel (px, py): march the z column, compositing
/// front to back with early termination. Identical math in the serial
/// reference and every parallel version, so images must match exactly.
template <class ReadVoxel>
float castRay(const Geometry& g, int px, int py, int zmin, int zmax,
              ReadVoxel&& voxel) {
  (void)g;
  float acc = 0.0f;    // accumulated luminance
  float trans = 1.0f;  // remaining transparency
  for (int z = zmin; z < zmax; ++z) {
    const std::uint8_t d = voxel(px, py, z);
    const float op = opacityOf(d);
    if (op > 0.0f) {
      const float shade = static_cast<float>(d) * (1.0f / 255.0f);
      acc += trans * op * shade;
      trans *= 1.0f - op;
      if (1.0f - trans > kOpacityCutoff) break;
    }
  }
  return acc;
}

/// Per-column [zmin, zmax) of non-transparent voxels -- the moral
/// equivalent of Volrend's empty-space-skipping octree: rays through
/// empty image regions cost almost nothing.
std::vector<std::int32_t> columnBounds(const Geometry& g, const Volume& vol) {
  std::vector<std::int32_t> zr(static_cast<std::size_t>(g.n) * g.n, 0);
  for (int x = 0; x < g.n; ++x) {
    for (int y = 0; y < g.n; ++y) {
      int zmin = g.nz, zmax = 0;
      for (int z = 0; z < g.nz; ++z) {
        const std::uint8_t d =
            vol.density[(static_cast<std::size_t>(x) * g.n + y) * g.nz + z];
        if (opacityOf(d) > 0.0f) {
          if (z < zmin) zmin = z;
          zmax = z + 1;
        }
      }
      if (zmin > zmax) zmin = zmax;
      zr[static_cast<std::size_t>(x) * g.n + y] =
          (zmin << 16) | zmax;
    }
  }
  return zr;
}

/// Quantize a composited luminance to the 8-bit pixel the image stores.
inline std::uint8_t quantize(float acc) {
  const float v = acc * 255.0f + 0.5f;
  return static_cast<std::uint8_t>(v > 255.0f ? 255.0f : v);
}

/// Serial host-side reference image.
std::vector<std::uint8_t> referenceImage(const Geometry& g, const Volume& vol,
                                         const std::vector<std::int32_t>& zr) {
  std::vector<std::uint8_t> img(static_cast<std::size_t>(g.n) * g.n);
  for (int py = 0; py < g.n; ++py) {
    for (int px = 0; px < g.n; ++px) {
      const std::int32_t b = zr[static_cast<std::size_t>(px) * g.n + py];
      img[static_cast<std::size_t>(py) * g.n + px] =
          quantize(castRay(g, px, py, b >> 16, b & 0xFFFF,
                           [&](int x, int y, int z) {
                             // z-fastest packing, see below
                             return vol.density[(static_cast<std::size_t>(x) *
                                                     g.n + y) * g.nz + z];
                           }));
    }
  }
  return img;
}

AppResult runImpl(Platform& plat, const AppParams& prm, Variant variant) {
  Geometry g;
  g.n = prm.n;
  g.nz = prm.n * 7 / 8;
  g.tiles = g.n / kTile;
  const int P = plat.nprocs();
  g.pr = static_cast<int>(std::sqrt(static_cast<double>(P)));
  while (P % g.pr != 0) --g.pr;
  g.pc = P / g.pr;

  // --- volume: read-only, z-fastest so a ray reads contiguous bytes ---
  Volume vol = makeHeadVolume(g.n, g.n, g.nz, prm.seed);
  SharedArray<std::uint8_t> sv(plat, vol.size(), HomePolicy::roundRobin(P));
  {
    // repack x,y,z (x fastest) -> z fastest
    std::size_t i = 0;
    for (int x = 0; x < g.n; ++x) {
      for (int y = 0; y < g.n; ++y) {
        for (int z = 0; z < g.nz; ++z, ++i) {
          sv.raw(i) = vol.at(x, y, z);
        }
      }
    }
    // keep vol.density in the same z-fastest order for the reference
    std::vector<std::uint8_t> packed(vol.size());
    for (std::size_t k = 0; k < vol.size(); ++k) packed[k] = sv.raw(k);
    vol.density = std::move(packed);
  }
  // Empty-space-skipping bounds (read-only, replicated like the volume).
  const std::vector<std::int32_t> zbounds = columnBounds(g, vol);
  SharedArray<std::int32_t> szr(plat, zbounds.size(),
                                HomePolicy::roundRobin(P));
  for (std::size_t k = 0; k < zbounds.size(); ++k) szr.raw(k) = zbounds[k];

  // The paper reports that read-only volume accesses are a negligible
  // problem: Volrend renders frame sequences, so the (never-invalidated)
  // volume pages end up replicated at every node. Start in that steady
  // state rather than measuring the one-time cold-replication storm.
  for (int p = 0; p < P; ++p) {
    plat.warm(p, sv.base(), sv.bytes());
    plat.warm(p, szr.base(), szr.bytes());
  }

  // --- image plane ---
  const bool fourD = variant == Variant::DS;
  const int bh = g.n / g.pr, bw = g.n / g.pc;  // partition block dims
  SharedArray<std::uint8_t> img;
  std::size_t block_stride = 0;
  if (fourD) {
    block_stride =
        (static_cast<std::size_t>(bh) * bw + kPageBytes - 1) / kPageBytes *
        kPageBytes;
    img = SharedArray<std::uint8_t>(
        plat, static_cast<std::size_t>(P) * block_stride,
        HomePolicy{[block_stride](std::uint64_t page, std::uint64_t) {
          return static_cast<ProcId>(page * kPageBytes / block_stride);
        }},
        kPageBytes);
  } else {
    img = SharedArray<std::uint8_t>(plat, static_cast<std::size_t>(g.n) * g.n,
                                    HomePolicy::roundRobin(P), kPageBytes);
  }
  auto pixelIndex = [&](int px, int py) -> std::size_t {
    if (!fourD) return static_cast<std::size_t>(py) * g.n + px;
    const int bi = py / bh, bj = px / bw;
    const int owner = bi * g.pc + bj;
    return static_cast<std::size_t>(owner) * block_stride +
           static_cast<std::size_t>(py % bh) * bw + (px % bw);
  };

  // --- task assignment ---
  const bool finer = variant == Variant::AlgSteal || variant == Variant::AlgNoSteal;
  const bool stealing = variant != Variant::AlgNoSteal;
  TaskQueues::Options qopt;
  qopt.capacity = static_cast<std::size_t>(g.tiles) * g.tiles;
  qopt.entry_stride_words =
      variant == Variant::PA ? kPageBytes / sizeof(std::int32_t) : 1;
  TaskQueues queues(plat, qopt);
  std::vector<std::vector<std::int32_t>> assign(static_cast<std::size_t>(P));
  {
    for (int ty = 0; ty < g.tiles; ++ty) {
      for (int tx = 0; tx < g.tiles; ++tx) {
        const std::int32_t task = ty * g.tiles + tx;
        int owner;
        if (finer) {
          // Small chunks of two adjacent tiles, dealt round-robin with a
          // per-row rotation so chunks-per-row dividing P cannot stripe
          // one processor onto one image column.
          owner = ((ty * g.tiles + tx) / 2 + ty) % P;
        } else {
          owner = (ty / (g.tiles / g.pr)) * g.pc + tx / (g.tiles / g.pc);
        }
        assign[static_cast<std::size_t>(owner)].push_back(task);
      }
    }
    for (int p = 0; p < P; ++p) {
      queues.fillInitial(p, assign[static_cast<std::size_t>(p)]);
    }
  }

  const int bar = plat.makeBarrier();

  // The paper's Volrend renders a sequence of frames; cold volume
  // fetches amortize and the steady state is dominated by task-queue and
  // image-plane interactions. prm.iters = frames.
  plat.run([&](Ctx& c) {
    auto voxel = [&](int x, int y, int z) {
      return sv.get(c, (static_cast<std::size_t>(x) * g.n + y) * g.nz + z);
    };
    const auto me = static_cast<std::size_t>(c.id());
    for (int frame = 0; frame < prm.iters; ++frame) {
      if (frame > 0) {
        queues.refill(c, assign[me]);
        c.barrier(bar);
      }
      for (;;) {
        const std::int32_t task = queues.next(c, stealing);
        if (task < 0) break;
        const int ty = task / g.tiles, tx = task % g.tiles;
        for (int py = ty * kTile; py < (ty + 1) * kTile; ++py) {
          for (int px = tx * kTile; px < (tx + 1) * kTile; ++px) {
            c.compute(20);  // per-ray setup
            if (fourD) c.compute(4);  // extra 4-d pixel addressing
            const std::int32_t b =
                szr.get(c, static_cast<std::size_t>(px) * g.n + py);
            const int zmin = b >> 16, zmax = b & 0xFFFF;
            float acc = 0.0f, trans = 1.0f;
            for (int z = zmin; z < zmax; ++z) {
              const std::uint8_t d = voxel(px, py, z);
              const float op = opacityOf(d);
              c.compute(6);  // classification + loop
              if (op > 0.0f) {
                const float shade = static_cast<float>(d) * (1.0f / 255.0f);
                acc += trans * op * shade;
                trans *= 1.0f - op;
                c.compute(20);  // interpolation + gradient shading
                if (1.0f - trans > kOpacityCutoff) break;
              }
            }
            img.set(c, pixelIndex(px, py), quantize(acc));
          }
        }
      }
      c.barrier(bar);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  const std::vector<std::uint8_t> ref = referenceImage(g, vol, zbounds);
  std::size_t bad = 0;
  for (int py = 0; py < g.n; ++py) {
    for (int px = 0; px < g.n; ++px) {
      if (ref[static_cast<std::size_t>(py) * g.n + px] !=
          img.raw(pixelIndex(px, py))) {
        ++bad;
      }
    }
  }
  res.correct = bad == 0;
  res.note = bad == 0 ? "image matches serial reference"
                      : std::to_string(bad) + " mismatched pixels";
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  return runImpl(plat, prm, v);
}

AppDesc describe() {
  AppDesc d;
  d.name = "volrend";
  d.summary = "ray-casting volume renderer (SPLASH-2 Volrend)";
  d.tiny = {.n = 32, .iters = 2, .block = 0, .seed = 5};
  d.small = {.n = 128, .iters = 4, .block = 0, .seed = 5};
  d.paper = {.n = 256, .iters = 4, .block = 0, .seed = 5};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("orig", OptClass::Orig, "block partitions, stealing, bare queues",
          Variant::Orig),
      ver("pa", OptClass::PA, "task-queue entries padded to pages",
          Variant::PA),
      ver("ds", OptClass::DS, "4-d image plane (hurts: costlier addressing)",
          Variant::DS),
      ver("alg-steal", OptClass::Alg,
          "fine interleaved initial partition + stealing", Variant::AlgSteal),
      ver("alg-nosteal", OptClass::Alg,
          "fine interleaved initial partition, no stealing",
          Variant::AlgNoSteal),
  };
  return d;
}

}  // namespace rsvm::apps::volrend
