#include "apps/lu/lu.hpp"

#include "runtime/shared.hpp"

#include <cmath>
#include <random>
#include <vector>

namespace rsvm::apps::lu {
namespace {

constexpr std::size_t kPageBytes = 4096;
constexpr std::size_t kPageWords = kPageBytes / sizeof(double);

/// 2-d scatter decomposition of blocks onto a pr x pc processor grid,
/// as in SPLASH-2.
struct Owners {
  int pr = 1, pc = 1, nprocs = 1;
  bool randomized = false;

  explicit Owners(int p, bool rnd = false) : nprocs(p), randomized(rnd) {
    pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
    while (p % pr != 0) --pr;
    pc = p / pr;
  }

  /// Owner of *block* (I, J) -- block indices, not element indices.
  [[nodiscard]] ProcId operator()(std::size_t I, std::size_t J) const {
    if (randomized) {
      // Deterministic hash scatter: better spread of work in any one
      // step, but destroys the structured communication pattern.
      std::uint64_t h = (I * 0x9E3779B97F4A7C15ull) ^ (J * 0xC2B2AE3D27D4EB4Full);
      h ^= h >> 33;
      return static_cast<ProcId>(h % static_cast<std::uint64_t>(nprocs));
    }
    return static_cast<ProcId>(
        (I % static_cast<std::size_t>(pr)) * static_cast<std::size_t>(pc) +
        (J % static_cast<std::size_t>(pc)));
  }
};

// ---- layout policies: flat index of element (i, j) -----------------------

struct TwoD {
  std::size_t n;
  [[nodiscard]] std::size_t words() const { return n * n; }
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    return i * n + j;
  }
};

/// Every sub-row of every block padded to one full page.
struct TwoDPad {
  std::size_t n, B, NB;
  [[nodiscard]] std::size_t words() const { return NB * NB * B * kPageWords; }
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    const std::size_t blk = (i / B) * NB + (j / B);
    return (blk * B + i % B) * kPageWords + (j % B);
  }
};

/// Blocks contiguous; `stride` words per block (== B*B, or padded up to
/// whole pages for the aligned variant). `offset` emulates the SPLASH-2
/// contiguous version's heap allocation, which does NOT start blocks at
/// page boundaries -- the residual bottleneck Figure 3 exposes and the
/// final page-aligned version removes.
struct FourD {
  std::size_t n, B, NB, stride, offset = 0;
  [[nodiscard]] std::size_t words() const {
    return NB * NB * stride + offset;
  }
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    const std::size_t blk = (i / B) * NB + (j / B);
    return offset + blk * stride + (i % B) * B + (j % B);
  }
};

template <class L>
HomePolicy homesFor(const L& lay, const Owners& own);

// 2-d rows cannot be distributed to block owners: round-robin pages.
template <>
HomePolicy homesFor(const TwoD&, const Owners& own) {
  return HomePolicy::roundRobin(own.nprocs);
}

// One page per block sub-row: home it at the block's owner.
template <>
HomePolicy homesFor(const TwoDPad& lay, const Owners& own) {
  const std::size_t B = lay.B, NB = lay.NB;
  return {[B, NB, own](std::uint64_t page, std::uint64_t) {
    const std::uint64_t blk = page / B;
    return own(blk / NB, blk % NB);
  }};
}

// Contiguous blocks: home each page at the owner of the first block
// starting on it (exact when blocks are page-aligned).
template <>
HomePolicy homesFor(const FourD& lay, const Owners& own) {
  const std::size_t wordsPerPage = kPageWords;
  const std::size_t stride = lay.stride, NB = lay.NB, off = lay.offset;
  const std::size_t nblocks = NB * NB;
  return {[stride, NB, nblocks, off, own, wordsPerPage](std::uint64_t page,
                                                        std::uint64_t) {
    const std::uint64_t word = page * wordsPerPage;
    const std::uint64_t blk =
        word < off ? 0
                   : std::min<std::uint64_t>((word - off) / stride,
                                             nblocks - 1);
    return own(blk / NB, blk % NB);
  }};
}

// ---- the factorization ----------------------------------------------------

template <class L>
AppResult runImpl(Platform& plat, const AppParams& prm, const L& lay,
                  const Owners& own) {
  const std::size_t n = static_cast<std::size_t>(prm.n);
  const std::size_t B = static_cast<std::size_t>(prm.block);
  const std::size_t NB = n / B;

  SharedArray<double> A(plat, lay.words(), homesFor(lay, own), kPageBytes);

  // Untimed init: random matrix, strongly diagonally dominant so the
  // pivot-free factorization is stable. Keep the original for checking.
  std::mt19937_64 rng(prm.seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> orig(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double v = dist(rng);
      if (i == j) v += static_cast<double>(n);
      orig[i * n + j] = v;
      A.raw(lay.idx(i, j)) = v;
    }
  }

  const int bar = plat.makeBarrier();

  plat.run([&](Ctx& c) {
    const ProcId me = c.id();
    auto get = [&](std::size_t i, std::size_t j) {
      return A.get(c, lay.idx(i, j));
    };
    auto put = [&](std::size_t i, std::size_t j, double v) {
      A.set(c, lay.idx(i, j), v);
    };

    for (std::size_t K = 0; K < NB; ++K) {
      const std::size_t k0 = K * B;
      // -- factor the diagonal block --
      if (own(K, K) == me) {
        for (std::size_t kk = 0; kk < B; ++kk) {
          const double piv = get(k0 + kk, k0 + kk);
          for (std::size_t i = kk + 1; i < B; ++i) {
            put(k0 + i, k0 + kk, get(k0 + i, k0 + kk) / piv);
            c.compute(8);  // divide
          }
          for (std::size_t i = kk + 1; i < B; ++i) {
            const double lik = get(k0 + i, k0 + kk);
            for (std::size_t j = kk + 1; j < B; ++j) {
              put(k0 + i, k0 + j, get(k0 + i, k0 + j) - lik * get(k0 + kk, k0 + j));
            }
            c.compute(2 * (B - kk - 1));
          }
        }
      }
      c.barrier(bar);
      // -- perimeter blocks --
      for (std::size_t J = K + 1; J < NB; ++J) {
        if (own(K, J) != me) continue;
        const std::size_t j0 = J * B;
        // A[K][J] <- L(diag)^-1 * A[K][J]
        for (std::size_t kk = 0; kk < B; ++kk) {
          for (std::size_t i = kk + 1; i < B; ++i) {
            const double lik = get(k0 + i, k0 + kk);
            for (std::size_t j = 0; j < B; ++j) {
              put(k0 + i, j0 + j, get(k0 + i, j0 + j) - lik * get(k0 + kk, j0 + j));
            }
            c.compute(2 * B);
          }
        }
      }
      for (std::size_t I = K + 1; I < NB; ++I) {
        if (own(I, K) != me) continue;
        const std::size_t i0 = I * B;
        // A[I][K] <- A[I][K] * U(diag)^-1
        for (std::size_t kk = 0; kk < B; ++kk) {
          const double piv = get(k0 + kk, k0 + kk);
          for (std::size_t i = 0; i < B; ++i) {
            const double v = get(i0 + i, k0 + kk) / piv;
            put(i0 + i, k0 + kk, v);
            for (std::size_t j = kk + 1; j < B; ++j) {
              put(i0 + i, k0 + j, get(i0 + i, k0 + j) - v * get(k0 + kk, k0 + j));
            }
            c.compute(8 + 2 * (B - kk - 1));
          }
        }
      }
      c.barrier(bar);
      // -- interior update: A[I][J] -= A[I][K] * A[K][J] --
      for (std::size_t I = K + 1; I < NB; ++I) {
        const std::size_t i0 = I * B;
        for (std::size_t J = K + 1; J < NB; ++J) {
          if (own(I, J) != me) continue;
          const std::size_t j0 = J * B;
          for (std::size_t i = 0; i < B; ++i) {
            for (std::size_t j = 0; j < B; ++j) {
              double t = get(i0 + i, j0 + j);
              for (std::size_t kk = 0; kk < B; ++kk) {
                t -= get(i0 + i, k0 + kk) * get(k0 + kk, j0 + j);
              }
              put(i0 + i, j0 + j, t);
              c.compute(2 * B);
            }
          }
        }
      }
      c.barrier(bar);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // Verify by sampled reconstruction: (L*U)(i,j) must match the original
  // matrix (L unit-lower, U upper, both stored in place).
  std::mt19937_64 vrng(prm.seed ^ 0xABCDu);
  double max_rel = 0.0;
  const int samples = 400;
  for (int s = 0; s < samples; ++s) {
    const std::size_t i = vrng() % n;
    const std::size_t j = vrng() % n;
    const std::size_t kmax = std::min(i, j);
    double sum = (i <= j) ? A.raw(lay.idx(i, j)) : 0.0;  // k == i term (L_ii=1)
    for (std::size_t k = 0; k < kmax + (i > j ? 1 : 0); ++k) {
      sum += A.raw(lay.idx(i, k)) * A.raw(lay.idx(k, j));
    }
    const double rel = std::abs(sum - orig[i * n + j]) /
                       (std::abs(orig[i * n + j]) + 1.0);
    max_rel = std::max(max_rel, rel);
  }
  res.correct = max_rel < 1e-8;
  res.note = "max sampled LU residual " + std::to_string(max_rel);
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Layout layout) {
  const auto n = static_cast<std::size_t>(prm.n);
  const auto B = static_cast<std::size_t>(prm.block);
  const std::size_t NB = n / B;
  Owners own(plat.nprocs(), layout == Layout::AlgRandom);
  switch (layout) {
    case Layout::TwoD:
      return runImpl(plat, prm, TwoD{n}, own);
    case Layout::TwoDPad:
      return runImpl(plat, prm, TwoDPad{n, B, NB}, own);
    case Layout::FourD:
      // Half-page offset: SPLASH-2's contiguous blocks are not aligned
      // to page boundaries.
      return runImpl(plat, prm, FourD{n, B, NB, B * B, kPageWords / 2}, own);
    case Layout::FourDAligned:
    case Layout::AlgRandom: {
      const std::size_t stride =
          (B * B + kPageWords - 1) / kPageWords * kPageWords;
      return runImpl(plat, prm, FourD{n, B, NB, stride}, own);
    }
  }
  throw std::invalid_argument("lu: bad layout");
}

AppDesc describe() {
  AppDesc d;
  d.name = "lu";
  d.summary = "blocked dense LU factorization (SPLASH-2)";
  d.tiny = {.n = 64, .iters = 1, .block = 8, .seed = 42};
  d.small = {.n = 256, .iters = 1, .block = 16, .seed = 42};
  d.paper = {.n = 1024, .iters = 1, .block = 32, .seed = 42};
  auto ver = [](const char* name, OptClass cls, const char* sum, Layout l) {
    return VersionDesc{name, cls, sum,
                       [l](Platform& p, const AppParams& prm) {
                         return run(p, prm, l);
                       }};
  };
  d.versions = {
      ver("2d", OptClass::Orig, "natural 2-d array, scattered blocks",
          Layout::TwoD),
      ver("2d-pad", OptClass::PA, "block sub-rows padded to pages",
          Layout::TwoDPad),
      ver("4d", OptClass::DS, "contiguous blocks (SPLASH-2 contiguous)",
          Layout::FourD),
      ver("4d-aligned", OptClass::DS,
          "contiguous blocks padded+aligned to pages", Layout::FourDAligned),
      ver("alg-random", OptClass::Alg,
          "unstructured block assignment (explored, rejected)",
          Layout::AlgRandom),
  };
  return d;
}

}  // namespace rsvm::apps::lu
