// Blocked dense LU factorization (SPLASH-2 "LU"), in the paper's four
// data-layout versions plus the algorithmic variant the paper explored
// and rejected (section 4.1.1):
//
//  * 2d          -- natural 2-d row-major array; a processor's blocks are
//                   scattered sub-rows: heavy false sharing/fragmentation.
//  * 2d-pad      -- each block sub-row padded+aligned to a page (P/A):
//                   kills false sharing but not fragmentation; wastes
//                   memory (256 B used per 4 KB page at paper scale).
//  * 4d          -- blocks contiguous in the address space (SPLASH-2
//                   "contiguous" layout, DS class).
//  * 4d-aligned  -- blocks additionally padded/aligned to page boundaries
//                   (the final, best version; fixes the Fig. 3 processor
//                   10 page-alignment bottleneck).
//  * alg-random  -- less structured block-to-processor assignment for
//                   load balance; compromises communication and loses on
//                   SVM, as the paper reports.
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::lu {

enum class Layout { TwoD, TwoDPad, FourD, FourDAligned, AlgRandom };

/// Factor an n x n matrix with block size prm.block on `plat`.
AppResult run(Platform& plat, const AppParams& prm, Layout layout);

AppDesc describe();

}  // namespace rsvm::apps::lu
