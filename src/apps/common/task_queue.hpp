// Distributed task queues with stealing, in shared memory -- the
// structure whose page-grain behaviour drives the paper's Volrend and
// Raytrace findings. Each processor owns a queue (head/tail words +
// entry slots) homed at its node and protected by a lock; thieves
// acquire the victim's lock and fault the victim's queue pages, which is
// exactly the cost the paper measures.
//
// Options model the paper's restructurings:
//  * entry_stride_words > 1 pads entries (the P/A class: less false
//    sharing, more fragmentation),
//  * split_steal gives every processor a second, public queue so the
//    private one needs no lock (the paper's final Raytrace optimization).
#pragma once

#include "runtime/shared.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace rsvm::apps {

class TaskQueues {
 public:
  struct Options {
    std::size_t capacity = 0;            ///< max tasks per processor queue
    std::size_t entry_stride_words = 1;  ///< pad entries to this stride
    bool split_steal = false;            ///< private + public queue pair
    double public_fraction = 0.25;       ///< share of tasks made stealable
  };

  TaskQueues(Platform& plat, const Options& opt) : opt_(opt) {
    const int P = plat.nprocs();
    const std::size_t words =
        kMetaWords + opt.capacity * opt.entry_stride_words;
    for (int p = 0; p < P; ++p) {
      qs_.emplace_back(plat, words, HomePolicy::node(p), 4096);
      locks_.push_back(plat.makeLock());
      if (opt.split_steal) {
        priv_.emplace_back(plat, words, HomePolicy::node(p), 4096);
      }
    }
  }

  /// Untimed initial fill of processor p's queue(s). With split_steal,
  /// the tail `public_fraction` of the tasks goes to the public queue.
  void fillInitial(int p, std::span<const std::int32_t> tasks) {
    auto& pub = qs_[static_cast<std::size_t>(p)];
    std::size_t pub_from = tasks.size();
    if (opt_.split_steal) {
      pub_from = tasks.size() -
                 static_cast<std::size_t>(opt_.public_fraction *
                                          static_cast<double>(tasks.size()));
      auto& pv = priv_[static_cast<std::size_t>(p)];
      pv.raw(0) = 0;
      pv.raw(1) = static_cast<std::int32_t>(pub_from);
      for (std::size_t i = 0; i < pub_from; ++i) {
        pv.raw(kMetaWords + i * opt_.entry_stride_words) = tasks[i];
      }
      pub.raw(0) = 0;
      pub.raw(1) = static_cast<std::int32_t>(tasks.size() - pub_from);
      for (std::size_t i = pub_from; i < tasks.size(); ++i) {
        pub.raw(kMetaWords + (i - pub_from) * opt_.entry_stride_words) =
            tasks[i];
      }
      return;
    }
    pub.raw(0) = 0;
    pub.raw(1) = static_cast<std::int32_t>(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      pub.raw(kMetaWords + i * opt_.entry_stride_words) = tasks[i];
    }
  }

  /// Timed re-fill of our own queue(s) with the same split as
  /// fillInitial -- used by multi-frame renderers between frames.
  void refill(Ctx& c, std::span<const std::int32_t> tasks) {
    const auto me = static_cast<std::size_t>(c.id());
    std::size_t pub_from = 0;
    if (opt_.split_steal) {
      pub_from = tasks.size() -
                 static_cast<std::size_t>(opt_.public_fraction *
                                          static_cast<double>(tasks.size()));
      auto& pv = priv_[me];
      for (std::size_t i = 0; i < pub_from; ++i) {
        pv.set(c, kMetaWords + i * opt_.entry_stride_words, tasks[i]);
      }
      pv.set(c, 0, 0);
      pv.set(c, 1, static_cast<std::int32_t>(pub_from));
    }
    auto& pub = qs_[me];
    c.lock(locks_[me]);
    for (std::size_t i = pub_from; i < tasks.size(); ++i) {
      pub.set(c, kMetaWords + (i - pub_from) * opt_.entry_stride_words,
              tasks[i]);
    }
    pub.set(c, 0, 0);
    pub.set(c, 1, static_cast<std::int32_t>(tasks.size() - pub_from));
    c.unlock(locks_[me]);
  }

  /// Pop from our own queue; with split_steal the private queue is
  /// consumed first (no lock), then our own public queue (locked).
  std::int32_t popLocal(Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    if (opt_.split_steal) {
      const std::int32_t t = popFrom(c, priv_[me], -1);
      if (t >= 0) return t;
    }
    return popFrom(c, qs_[me], locks_[me]);
  }

  /// Try to steal one task from victim v's public queue. Thieves peek at
  /// the head/tail words before taking the lock; on SVM the peek may read
  /// a stale (lazily-consistent) copy, which only makes the thief skip a
  /// victim it might have robbed -- work conservation is unaffected since
  /// owners always drain their own queues.
  std::int32_t steal(Ctx& c, int v) {
    const auto vi = static_cast<std::size_t>(v);
    // The peek is deliberately lock-free (getRacy): reading stale bounds
    // only makes the thief skip a robbable victim.
    if (qs_[vi].getRacy(c, 0) >= qs_[vi].getRacy(c, 1)) return -1;
    const std::int32_t t = popFrom(c, qs_[vi], locks_[vi]);
    if (t >= 0) ++c.stats().tasks_stolen;
    return t;
  }

  /// Batched dequeue (the Alg-class restructuring the server workload
  /// studies): take up to `max` tasks in one lock acquisition, amortizing
  /// the lock transfer and the head/tail line or page movement over the
  /// whole batch. Steals also move half the victim's visible backlog (up
  /// to `max`) at once, so a thief pays the remote-queue cost once per
  /// batch instead of once per task. Appends to `out`, returns the number
  /// of tasks taken (0 when every queue looks empty).
  std::size_t nextBatch(Ctx& c, std::vector<std::int32_t>& out,
                        std::size_t max, bool allow_steal) {
    const auto me = static_cast<std::size_t>(c.id());
    std::size_t got = 0;
    if (opt_.split_steal) {
      got = popBatchFrom(c, priv_[me], -1, out, max);
    }
    if (got < max) {
      got += popBatchFrom(c, qs_[me], locks_[me], out, max - got);
    }
    if (got == 0 && allow_steal) {
      const int P = c.nprocs();
      for (int k = 1; k < P && got == 0; ++k) {
        const auto v = static_cast<std::size_t>((c.id() + k) % P);
        // Same deliberately lock-free peek as steal(): a stale snapshot
        // of [head, tail) only costs the thief a robbable victim.
        const std::int32_t h = qs_[v].getRacy(c, 0);
        const std::int32_t t = qs_[v].getRacy(c, 1);
        if (h >= t) continue;
        // Take half the backlog the peek saw; popBatchFrom re-reads the
        // bounds under the lock, so a stale peek merely mis-sizes the
        // batch, never over-pops.
        const auto want = std::min<std::size_t>(
            max, static_cast<std::size_t>((t - h + 1) / 2));
        got = popBatchFrom(c, qs_[v], locks_[v], out, want);
        c.stats().tasks_stolen += got;
      }
    }
    c.stats().tasks_executed += got;
    return got;
  }

  /// Get the next task: own queue, then (optionally) round-robin victims.
  /// Returns -1 when everything is empty.
  std::int32_t next(Ctx& c, bool allow_steal) {
    const std::int32_t own = popLocal(c);
    if (own >= 0 || !allow_steal) {
      if (own >= 0) ++c.stats().tasks_executed;
      return own;
    }
    const int P = c.nprocs();
    for (int k = 1; k < P; ++k) {
      const int v = (c.id() + k) % P;
      const std::int32_t t = steal(c, v);
      if (t >= 0) {
        ++c.stats().tasks_executed;
        return t;
      }
    }
    return -1;
  }

 private:
  static constexpr std::size_t kMetaWords = 2;  // [head, tail]

  /// Pop the head task under `lock` (or without a lock if lock < 0:
  /// single-consumer private queue).
  std::int32_t popFrom(Ctx& c, SharedArray<std::int32_t>& q, int lock) {
    if (lock >= 0) c.lock(lock);
    const std::int32_t head = q.get(c, 0);
    const std::int32_t tail = q.get(c, 1);
    std::int32_t task = -1;
    if (head < tail) {
      task = q.get(c, kMetaWords + static_cast<std::size_t>(head) *
                                       opt_.entry_stride_words);
      q.set(c, 0, head + 1);
    }
    if (lock >= 0) c.unlock(lock);
    return task;
  }

  /// Pop up to `max` head tasks in one critical section (see nextBatch).
  std::size_t popBatchFrom(Ctx& c, SharedArray<std::int32_t>& q, int lock,
                           std::vector<std::int32_t>& out, std::size_t max) {
    if (max == 0) return 0;
    if (lock >= 0) c.lock(lock);
    const std::int32_t head = q.get(c, 0);
    const std::int32_t tail = q.get(c, 1);
    std::size_t take = 0;
    if (head < tail) {
      take = std::min<std::size_t>(max,
                                   static_cast<std::size_t>(tail - head));
      for (std::size_t i = 0; i < take; ++i) {
        out.push_back(q.get(
            c, kMetaWords + (static_cast<std::size_t>(head) + i) *
                                opt_.entry_stride_words));
      }
      q.set(c, 0, head + static_cast<std::int32_t>(take));
    }
    if (lock >= 0) c.unlock(lock);
    return take;
  }

  Options opt_;
  std::vector<SharedArray<std::int32_t>> qs_;    ///< public queues
  std::vector<SharedArray<std::int32_t>> priv_;  ///< private (split mode)
  std::vector<int> locks_;
};

}  // namespace rsvm::apps
