// Synthetic volume data standing in for the paper's 256x256x225 computed
// tomography head (see DESIGN.md, substitutions). A procedural "head":
// an ellipsoidal skull shell, an inner brain blob with smooth lobes, and
// low-amplitude noise. The result preserves what the renderers care
// about: large empty regions (RLE-compressible), a dense shell, smooth
// interior gradients, and uneven per-scanline work.
#pragma once

#include <cstdint>
#include <vector>

namespace rsvm::apps {

struct Volume {
  int nx = 0, ny = 0, nz = 0;
  std::vector<std::uint8_t> density;  ///< nx*ny*nz, x fastest

  [[nodiscard]] std::uint8_t at(int x, int y, int z) const {
    return density[(static_cast<std::size_t>(z) * static_cast<std::size_t>(ny) +
                    static_cast<std::size_t>(y)) *
                       static_cast<std::size_t>(nx) +
                   static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
};

/// Map density to opacity the way a semi-transparent tissue transfer
/// function would: empty below a threshold, then gently increasing, so
/// rays accumulate over many samples (work grows smoothly with tissue
/// thickness -- the load profile the real renderers see).
inline float opacityOf(std::uint8_t d) {
  if (d < 40) return 0.0f;
  return 0.005f + (static_cast<float>(d) - 40.0f) / 2400.0f;
}

Volume makeHeadVolume(int nx, int ny, int nz, std::uint64_t seed);

/// Run-length encoded volume, scanline by scanline, as Shear-Warp wants:
/// runs of transparent voxels are skipped entirely.
struct RleVolume {
  struct Run {
    std::int32_t skip = 0;    ///< transparent voxels to skip
    std::int32_t count = 0;   ///< opaque samples following
    std::int32_t offset = 0;  ///< index of first sample in `samples`
  };
  int nx = 0, ny = 0, nz = 0;
  std::vector<Run> runs;                ///< all runs, scanline-major
  std::vector<std::int32_t> line_first; ///< first run of scanline (y, z)
  std::vector<std::int32_t> line_count; ///< number of runs per scanline
  std::vector<std::uint8_t> samples;    ///< densities of non-empty voxels

  [[nodiscard]] int lineIndex(int y, int z) const { return z * ny + y; }
};

RleVolume rleEncode(const Volume& v, std::uint8_t threshold = 40);

}  // namespace rsvm::apps
