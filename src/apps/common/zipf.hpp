// Deterministic skewed-key selection for request-serving workloads.
// Real server key popularity is Zipf-like (a few keys absorb most of the
// traffic); the paper's data-structure optimizations (stripe locks,
// per-processor arenas) behave very differently under skew than under
// the uniform stream, so the skew level is a first-class sweep knob
// (AppParams::zipf) rather than a hard-coded distribution.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace rsvm::apps {

/// Maps a hash-uniform word `u` to a key rank in [0, n).
///
/// theta == 0 is exactly `u % n` -- bit-compatible with the uniform pick
/// used before the knob existed, so theta-0 digests and golden cycle
/// counts are unchanged. theta in (0, 1) approximates a Zipf
/// distribution by the power-law inverse CDF rank = n * x^(1/(1-theta)),
/// concentrating toward rank 0 as theta -> 1. Pure function of (u, n,
/// theta): every processor, platform, and the host-side replay decode
/// the same key for the same op word.
inline std::size_t zipfPick(std::uint64_t u, std::size_t n, double theta) {
  if (n < 2) return 0;
  if (theta <= 0.0) return static_cast<std::size_t>(u % n);
  if (theta > 0.99) theta = 0.99;  // exponent stays finite
  const double x =
      static_cast<double>(u & ((1ull << 53) - 1)) * 0x1.0p-53;  // in [0, 1)
  const auto r = static_cast<std::size_t>(
      static_cast<double>(n) * std::pow(x, 1.0 / (1.0 - theta)));
  return r >= n ? n - 1 : r;
}

}  // namespace rsvm::apps
