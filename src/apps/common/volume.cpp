#include "apps/common/volume.hpp"

#include <cmath>
#include <random>

namespace rsvm::apps {

Volume makeHeadVolume(int nx, int ny, int nz, std::uint64_t seed) {
  Volume v;
  v.nx = nx;
  v.ny = ny;
  v.nz = nz;
  v.density.assign(v.size(), 0);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(-6.0, 6.0);

  const double cx = nx / 2.0, cy = ny / 2.0, cz = nz / 2.0;
  const double rx = nx * 0.42, ry = ny * 0.46, rz = nz * 0.44;

  std::size_t idx = 0;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x, ++idx) {
        const double ex = (x - cx) / rx;
        const double ey = (y - cy) / ry;
        const double ez = (z - cz) / rz;
        const double r = std::sqrt(ex * ex + ey * ey + ez * ez);
        double d = 0.0;
        if (r < 1.0) {
          if (r > 0.88) {
            d = 220.0;  // skull shell
          } else if (r > 0.80) {
            d = 60.0;   // soft tissue under the shell
          } else {
            // brain: smooth lobed field
            d = 80.0 + 40.0 * std::sin(0.25 * x) * std::cos(0.21 * y) *
                           std::sin(0.18 * z + 1.0);
          }
          d += noise(rng);
        }
        if (d < 0.0) d = 0.0;
        if (d > 255.0) d = 255.0;
        v.density[idx] = static_cast<std::uint8_t>(d);
      }
    }
  }
  return v;
}

RleVolume rleEncode(const Volume& v, std::uint8_t threshold) {
  RleVolume r;
  r.nx = v.nx;
  r.ny = v.ny;
  r.nz = v.nz;
  r.line_first.resize(static_cast<std::size_t>(v.ny) * v.nz);
  r.line_count.resize(static_cast<std::size_t>(v.ny) * v.nz);
  for (int z = 0; z < v.nz; ++z) {
    for (int y = 0; y < v.ny; ++y) {
      const int line = r.lineIndex(y, z);
      r.line_first[static_cast<std::size_t>(line)] =
          static_cast<std::int32_t>(r.runs.size());
      int x = 0;
      int nruns = 0;
      while (x < v.nx) {
        int skip = 0;
        while (x < v.nx && v.at(x, y, z) < threshold) {
          ++skip;
          ++x;
        }
        int count = 0;
        const auto offset = static_cast<std::int32_t>(r.samples.size());
        while (x < v.nx && v.at(x, y, z) >= threshold) {
          r.samples.push_back(v.at(x, y, z));
          ++count;
          ++x;
        }
        if (count > 0 || skip > 0) {
          r.runs.push_back({skip, count, offset});
          ++nruns;
        }
      }
      r.line_count[static_cast<std::size_t>(line)] = nruns;
    }
  }
  return r;
}

}  // namespace rsvm::apps
