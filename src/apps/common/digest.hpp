// Deterministic hashing building blocks for the differential-testing
// apps (server, index). Two kinds of digest appear there:
//
//  * ordered digests (fnv step) for quantities with a deterministic
//    order, e.g. an in-order B+-tree traversal or a table scanned by
//    index;
//  * commutative digests (plain uint64 sum of per-item hashes) for
//    multisets whose order depends on scheduling -- which processor ran
//    a stolen task, allocation order, hash-chain link order. Summing
//    per-item mixes makes the fold order-independent, so the same final
//    value must come out on every platform, processor count, and fiber
//    backend.
//
// splitmix64 doubles as the op-stream generator: op i of a workload is a
// pure function of (seed, i), so a host-side replay can recompute the
// expected result exactly.
#pragma once

#include <cstdint>

namespace rsvm::apps {

/// Finalizer from the splitmix64 reference generator; bijective, so
/// distinct inputs keep distinct digests.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One FNV-1a fold step (ordered combining).
inline std::uint64_t fnvStep(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/// Mix a small tuple into one well-distributed word, for use as the
/// per-item hash inside a commutative (summed) digest.
inline std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return splitmix64(fnvStep(fnvStep(kFnvOffset, a), b));
}
inline std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return splitmix64(fnvStep(fnvStep(fnvStep(kFnvOffset, a), b), c));
}

}  // namespace rsvm::apps
