// Shear-warp volume renderer (paper section 4.2.2; Lacroute's
// factorization as parallelized in the companion PPoPP'97 paper [3]).
// Phase 1 composites the run-length-encoded volume into an intermediate
// image, scanline by scanline; phase 2 warps the intermediate image into
// the final image with an affine (scale + shear) transform.
//
// Versions:
//  * orig  -- compositing tasks are small interleaved chunks of
//             intermediate-image scanlines (for load balance); the warp
//             partitions the *final* image into contiguous blocks. Most
//             of what a processor reads in the warp was written by other
//             processors: a full redistribution of the intermediate
//             image between the phases, through an expensive barrier.
//  * pa    -- intermediate-image scanlines padded+aligned to pages
//             (the ~10% P/A improvement the paper reports).
//  * alg   -- profile-guided *contiguous* scanline bands, the same
//             partition for both phases, warp reads only locally-written
//             scanlines (boundary rows handled by a designated owner),
//             and no barrier between the phases (3.47 -> 9.21).
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::shearwarp {

enum class Variant { Orig, PA, Alg };

/// prm.n = image dimension; volume is n x n x (7n/8); prm.iters frames.
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::shearwarp
