#include "apps/shearwarp/shearwarp.hpp"

#include "apps/common/volume.hpp"
#include "runtime/shared.hpp"

#include <cmath>
#include <vector>

namespace rsvm::apps::shearwarp {
namespace {

constexpr std::size_t kPageBytes = 4096;
constexpr float kCutoff = 0.95f;
constexpr int kChunk = 1;  ///< scanlines per interleaved task (orig)

struct Geometry {
  int n = 0, nz = 0;
  // Warp transform: y_src = ay*v + by ; x_src = ax*u + shx*v + bx.
  double ax = 0.95, shx = 0.12, bx = 1.5, ay = 0.90, by = 3.0;
};

inline std::uint8_t quantize(float v) {
  const float q = v * 255.0f + 0.5f;
  return static_cast<std::uint8_t>(q > 255.0f ? 255.0f : q);
}

/// Which processor composites (and, in the alg version, warps) scanline y.
struct RowOwners {
  std::vector<int> owner;        ///< per intermediate scanline
  std::vector<int> lo, hi;       ///< per processor: [lo, hi) band (alg only)
};

RowOwners interleavedOwners(int n, int P) {
  RowOwners ro;
  ro.owner.resize(static_cast<std::size_t>(n));
  for (int y = 0; y < n; ++y) ro.owner[static_cast<std::size_t>(y)] = (y / kChunk) % P;
  return ro;
}

RowOwners profiledBands(int n, int P, const std::vector<std::int64_t>& cost) {
  RowOwners ro;
  ro.owner.resize(static_cast<std::size_t>(n));
  ro.lo.assign(static_cast<std::size_t>(P), n);
  ro.hi.assign(static_cast<std::size_t>(P), 0);
  std::int64_t total = 0;
  for (std::int64_t c : cost) total += c;
  std::int64_t acc = 0;
  int p = 0;
  for (int y = 0; y < n; ++y) {
    // Advance to the next band when this one has its fair share.
    if (p < P - 1 &&
        acc * P >= total * (p + 1)) {
      ++p;
    }
    ro.owner[static_cast<std::size_t>(y)] = p;
    acc += cost[static_cast<std::size_t>(y)];
  }
  for (int y = 0; y < n; ++y) {
    const auto pi = static_cast<std::size_t>(ro.owner[static_cast<std::size_t>(y)]);
    ro.lo[pi] = std::min(ro.lo[pi], y);
    ro.hi[pi] = std::max(ro.hi[pi], y + 1);
  }
  return ro;
}

AppResult runImpl(Platform& plat, const AppParams& prm, Variant variant) {
  Geometry g;
  g.n = prm.n;
  g.nz = prm.n * 7 / 8;
  const int P = plat.nprocs();
  const int n = g.n;

  // --- RLE volume (read-only, replicated steady state) ---
  const Volume vol = makeHeadVolume(n, n, g.nz, prm.seed);
  const RleVolume rle = rleEncode(vol);
  SharedArray<std::int32_t> runs(plat, rle.runs.size() * 3,
                                 HomePolicy::roundRobin(P));
  SharedArray<std::int32_t> line_first(plat, rle.line_first.size(),
                                       HomePolicy::roundRobin(P));
  SharedArray<std::int32_t> line_count(plat, rle.line_count.size(),
                                       HomePolicy::roundRobin(P));
  SharedArray<std::uint8_t> samples(plat, std::max<std::size_t>(rle.samples.size(), 1),
                                    HomePolicy::roundRobin(P));
  for (std::size_t i = 0; i < rle.runs.size(); ++i) {
    runs.raw(i * 3 + 0) = rle.runs[i].skip;
    runs.raw(i * 3 + 1) = rle.runs[i].count;
    runs.raw(i * 3 + 2) = rle.runs[i].offset;
  }
  for (std::size_t i = 0; i < rle.line_first.size(); ++i) {
    line_first.raw(i) = rle.line_first[i];
    line_count.raw(i) = rle.line_count[i];
  }
  for (std::size_t i = 0; i < rle.samples.size(); ++i) {
    samples.raw(i) = rle.samples[i];
  }
  for (int p = 0; p < P; ++p) {
    plat.warm(p, runs.base(), runs.bytes());
    plat.warm(p, line_first.base(), line_first.bytes());
    plat.warm(p, line_count.base(), line_count.bytes());
    plat.warm(p, samples.base(), samples.bytes());
  }

  // --- serial reference composite, also yielding the per-scanline work
  //     profile the alg version partitions by (the paper's "dynamic
  //     profiling of scanline costs", fed by the previous frame) ---
  std::vector<float> rinter(static_cast<std::size_t>(n) * n * 2, 0.0f);
  std::vector<std::int64_t> line_cost(static_cast<std::size_t>(n), 0);
  for (int y = 0; y < n; ++y) {
    int opaque = 0;
    for (int z = 0; z < g.nz && opaque < n; ++z) {
      const auto li = static_cast<std::size_t>(rle.lineIndex(y, z));
      const std::int32_t first = rle.line_first[li];
      const std::int32_t cnt = rle.line_count[li];
      line_cost[static_cast<std::size_t>(y)] += 2;
      int x = 0;
      for (std::int32_t r = 0; r < cnt; ++r) {
        const RleVolume::Run& run = rle.runs[static_cast<std::size_t>(first + r)];
        x += run.skip;
        line_cost[static_cast<std::size_t>(y)] += 2;
        for (std::int32_t k = 0; k < run.count; ++k, ++x) {
          float& lum = rinter[(static_cast<std::size_t>(y) * n + x) * 2];
          float& opac = rinter[(static_cast<std::size_t>(y) * n + x) * 2 + 1];
          if (opac >= kCutoff) continue;  // skipped via pixel run links
          line_cost[static_cast<std::size_t>(y)] += 8;
          const std::uint8_t d =
              rle.samples[static_cast<std::size_t>(run.offset + k)];
          const float op = opacityOf(d);
          const float trans = 1.0f - opac;
          lum += trans * op * static_cast<float>(d) / 255.0f;
          opac += trans * op;
          if (opac >= kCutoff) ++opaque;
        }
      }
    }
  }
  // Alg: profile-guided contiguous bands ("dynamic profiling of scanline
  // costs", fed by the previous frame in the real system -- here computed
  // from the RLE volume at setup, see DESIGN.md).
  const RowOwners rows = variant == Variant::Alg
                             ? profiledBands(n, P, line_cost)
                             : interleavedOwners(n, P);

  // --- intermediate image: (lum, opac) float pairs per pixel ---
  const std::size_t row_words =
      variant == Variant::PA
          ? (static_cast<std::size_t>(n) * 2 * sizeof(float) + kPageBytes - 1) /
                kPageBytes * kPageBytes / sizeof(float)
          : static_cast<std::size_t>(n) * 2;
  const std::vector<int>& row_owner = rows.owner;
  HomePolicy inter_homes{[row_words, row_owner, n](std::uint64_t page,
                                                   std::uint64_t) {
    const auto y = std::min<std::size_t>(
        page * (kPageBytes / sizeof(float)) / row_words,
        static_cast<std::size_t>(n - 1));
    return static_cast<ProcId>(row_owner[y]);
  }};
  SharedArray<float> inter(plat, static_cast<std::size_t>(n) * row_words,
                           inter_homes, kPageBytes);

  // --- final image: bytes, owned by warp writers ---
  // orig/pa: a pr x pc grid of 2-d blocks of tiles (paper: "partitions
  // the final image into blocks of tiles"), so each processor's warp
  // reads a tall window of intermediate scanlines, nearly all written by
  // other processors (the redistribution). alg: each final row belongs
  // to the band that composited its source scanline.
  int pr = static_cast<int>(std::sqrt(static_cast<double>(P)));
  while (P % pr != 0) --pr;
  const int pc = P / pr;
  const int bh = (n + pr - 1) / pr, bw = (n + pc - 1) / pc;
  auto warpOwner = [&, pr, pc, bh, bw](int v, int u) {
    if (variant == Variant::Alg) {
      const int ysrc =
          std::min(n - 1, std::max(0, static_cast<int>(g.ay * v + g.by)));
      return rows.owner[static_cast<std::size_t>(ysrc)];
    }
    return (v / bh) * pc + u / bw;
  };
  // Home final-image pages at the owner of the first pixel on the page.
  const Variant var_copy = variant;
  const std::vector<int> row_owner_copy = rows.owner;
  const double ay = g.ay, by = g.by;
  HomePolicy final_homes{[=](std::uint64_t page, std::uint64_t) {
    const auto v = std::min<std::size_t>(
        page * kPageBytes / static_cast<std::size_t>(n),
        static_cast<std::size_t>(n - 1));
    if (var_copy == Variant::Alg) {
      const int ysrc = std::min(
          n - 1, std::max(0, static_cast<int>(ay * static_cast<double>(v) + by)));
      return static_cast<ProcId>(row_owner_copy[static_cast<std::size_t>(ysrc)]);
    }
    return static_cast<ProcId>((static_cast<int>(v) / bh) * pc);
  }};
  SharedArray<std::uint8_t> fin(plat, static_cast<std::size_t>(n) * n,
                                final_homes, kPageBytes);

  const int bar = plat.makeBarrier();

  // Clamp range for warp source rows (alg reads only its own band).
  auto clampRange = [&](int p) -> std::pair<int, int> {
    if (variant != Variant::Alg) return {0, n};
    return {rows.lo[static_cast<std::size_t>(p)],
            rows.hi[static_cast<std::size_t>(p)]};
  };

  plat.run([&](Ctx& c) {
    const int me = c.id();
    for (int frame = 0; frame < prm.iters; ++frame) {
      // -- zero + composite the scanlines we own --
      for (int y = 0; y < n; ++y) {
        if (rows.owner[static_cast<std::size_t>(y)] != me) continue;
        const std::size_t base = static_cast<std::size_t>(y) * row_words;
        for (int x = 0; x < n; ++x) {
          inter.set(c, base + static_cast<std::size_t>(x) * 2, 0.0f);
          inter.set(c, base + static_cast<std::size_t>(x) * 2 + 1, 0.0f);
        }
        c.compute(static_cast<Cycles>(n));
        // Opaque intermediate pixels are skipped through the image's
        // pixel run links (Lacroute): an opaque stretch costs O(1), and a
        // fully-opaque scanline terminates its slice loop early.
        int opaque = 0;
        for (int z = 0; z < g.nz && opaque < n; ++z) {
          const auto li = static_cast<std::size_t>(rle.lineIndex(y, z));
          const std::int32_t first = line_first.get(c, li);
          const std::int32_t cnt = line_count.get(c, li);
          c.compute(8);
          int x = 0;
          for (std::int32_t r = 0; r < cnt; ++r) {
            const std::size_t ri = static_cast<std::size_t>(first + r) * 3;
            const std::int32_t skip = runs.get(c, ri);
            const std::int32_t count = runs.get(c, ri + 1);
            const std::int32_t offset = runs.get(c, ri + 2);
            c.compute(6);
            x += skip;
            bool in_skip = false;
            for (std::int32_t k = 0; k < count; ++k, ++x) {
              const std::size_t px = base + static_cast<std::size_t>(x) * 2;
              const float opac = inter.get(c, px + 1);
              if (opac >= kCutoff) {
                if (!in_skip) c.compute(2);  // follow the pixel run link
                in_skip = true;
                continue;
              }
              in_skip = false;
              const std::uint8_t d =
                  samples.get(c, static_cast<std::size_t>(offset + k));
              const float op = opacityOf(d);
              const float trans = 1.0f - opac;
              const float nop = opac + trans * op;
              inter.set(c, px,
                        inter.get(c, px) +
                            trans * op * static_cast<float>(d) / 255.0f);
              inter.set(c, px + 1, nop);
              if (nop >= kCutoff) ++opaque;
              c.compute(10);
            }
          }
        }
      }
      if (variant != Variant::Alg) c.barrier(bar);
      // -- warp the final pixels we own --
      const auto [ylo, yhi] = clampRange(me);
      for (int v = 0; v < n; ++v) {
        const double ysd = g.ay * v + g.by;
        for (int u = 0; u < n; ++u) {
          if (warpOwner(v, u) != me) continue;
          const double xsd = g.ax * u + g.shx * v + g.bx;
          int y0 = static_cast<int>(ysd);
          int x0 = static_cast<int>(xsd);
          double fy = ysd - y0, fx = xsd - x0;
          y0 = std::min(std::max(y0, ylo), yhi - 1);
          int y1 = std::min(y0 + 1, yhi - 1);
          if (y1 == y0) fy = 0.0;
          x0 = std::min(std::max(x0, 0), n - 1);
          const int x1 = std::min(x0 + 1, n - 1);
          auto lum = [&](int yy, int xx) {
            return inter.get(c, static_cast<std::size_t>(yy) * row_words +
                                    static_cast<std::size_t>(xx) * 2);
          };
          const double l0 = lum(y0, x0) * (1 - fx) + lum(y0, x1) * fx;
          const double l1 = lum(y1, x0) * (1 - fx) + lum(y1, x1) * fx;
          const float out = static_cast<float>(l0 * (1 - fy) + l1 * fy);
          c.compute(25);
          fin.set(c, static_cast<std::size_t>(v) * n + u, quantize(out));
        }
      }
      c.barrier(bar);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // --- verify against the reference composite + warp ---
  std::size_t bad = 0;
  for (int v = 0; v < n; ++v) {
    const double ysd = g.ay * v + g.by;
    for (int u = 0; u < n; ++u) {
      const auto [ylo, yhi] = clampRange(warpOwner(v, u));
      const double xsd = g.ax * u + g.shx * v + g.bx;
      int y0 = static_cast<int>(ysd);
      int x0 = static_cast<int>(xsd);
      double fy = ysd - y0, fx = xsd - x0;
      y0 = std::min(std::max(y0, ylo), yhi - 1);
      int y1 = std::min(y0 + 1, yhi - 1);
      if (y1 == y0) fy = 0.0;
      x0 = std::min(std::max(x0, 0), n - 1);
      const int x1 = std::min(x0 + 1, n - 1);
      auto lum = [&](int yy, int xx) {
        return rinter[(static_cast<std::size_t>(yy) * n + xx) * 2];
      };
      const double l0 = lum(y0, x0) * (1 - fx) + lum(y0, x1) * fx;
      const double l1 = lum(y1, x0) * (1 - fx) + lum(y1, x1) * fx;
      const std::uint8_t expect =
          quantize(static_cast<float>(l0 * (1 - fy) + l1 * fy));
      if (expect != fin.raw(static_cast<std::size_t>(v) * n + u)) ++bad;
    }
  }
  res.correct = bad == 0;
  res.note = bad == 0 ? "final image matches serial reference"
                      : std::to_string(bad) + " mismatched pixels";
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  return runImpl(plat, prm, v);
}

AppDesc describe() {
  AppDesc d;
  d.name = "shearwarp";
  d.summary = "shear-warp RLE volume renderer (PPoPP'97 companion)";
  d.tiny = {.n = 32, .iters = 2, .block = 0, .seed = 17};
  d.small = {.n = 128, .iters = 3, .block = 0, .seed = 17};
  d.paper = {.n = 256, .iters = 4, .block = 0, .seed = 17};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("orig", OptClass::Orig,
          "interleaved scanline chunks; different warp partition",
          Variant::Orig),
      ver("pa", OptClass::PA, "intermediate scanlines padded to pages",
          Variant::PA),
      ver("alg", OptClass::Alg,
          "profiled contiguous bands, same partition both phases, "
          "no inter-phase barrier",
          Variant::Alg),
  };
  return d;
}

}  // namespace rsvm::apps::shearwarp
