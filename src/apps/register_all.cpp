// Explicit registration of every application, so a static-library build
// cannot silently drop registrations (no reliance on static initializers).
#include "core/app.hpp"

#include "apps/barnes/barnes.hpp"
#include "apps/index/index.hpp"
#include "apps/lu/lu.hpp"
#include "apps/ocean/ocean.hpp"
#include "apps/radix/radix.hpp"
#include "apps/raytrace/raytrace.hpp"
#include "apps/server/server.hpp"
#include "apps/shearwarp/shearwarp.hpp"
#include "apps/volrend/volrend.hpp"

namespace rsvm {

void registerAllApps() {
  Registry& r = Registry::instance();
  r.add(apps::barnes::describe());
  r.add(apps::index::describe());
  r.add(apps::lu::describe());
  r.add(apps::ocean::describe());
  r.add(apps::radix::describe());
  r.add(apps::raytrace::describe());
  r.add(apps::server::describe());
  r.add(apps::shearwarp::describe());
  r.add(apps::volrend::describe());
}

}  // namespace rsvm
