// Parallel radix sort (SPLASH-2 "Radix"), section 4.2.5 of the paper.
//
// Each pass: local histogram -> global rank computation (each processor
// owns a slice of the digit range and combines the per-processor
// histograms) -> permutation writing every key to its globally-ranked
// slot in the output array. The permutation's scattered remote writes
// produce heavy false sharing and contention at page granularity --
// Radix is the paper's worst SVM citizen and stays bad after the only
// viable optimization:
//
//  * orig       -- keys written straight to the global output array.
//  * alg-local  -- keys first gathered into a digit-ordered local buffer,
//                  then copied out in contiguous runs per digit (the
//                  "less scattered" variant; 1.4 -> 2.24 in the paper,
//                  still terrible).
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::radix {

enum class Variant { Orig, AlgLocal };

/// Sort prm.n uniform random 32-bit keys; radix = 2^prm.block bits per
/// pass, prm.iters passes (keys are drawn from [0, radix^passes)).
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::radix
