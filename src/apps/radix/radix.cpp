#include "apps/radix/radix.hpp"

#include "runtime/shared.hpp"

#include <algorithm>
#include <random>
#include <vector>

namespace rsvm::apps::radix {
namespace {

AppResult runImpl(Platform& plat, const AppParams& prm, Variant variant) {
  const std::size_t n = static_cast<std::size_t>(prm.n);
  const int P = plat.nprocs();
  const std::size_t np = static_cast<std::size_t>(P);
  const std::size_t per = n / np;
  const unsigned radix_bits = static_cast<unsigned>(prm.block);
  const std::size_t R = std::size_t{1} << radix_bits;
  const int passes = prm.iters;

  // Key arrays ping-pong between passes; both block-distributed.
  SharedArray<std::uint32_t> A(plat, n, HomePolicy::blocked(P));
  SharedArray<std::uint32_t> Bv(plat, n, HomePolicy::blocked(P));
  // Per-processor histograms and ranks, homed at their processor.
  std::vector<SharedArray<std::uint32_t>> hist, rank;
  std::vector<SharedArray<std::uint32_t>> lbuf;  // alg-local gather buffers
  hist.reserve(np);
  rank.reserve(np);
  for (int p = 0; p < P; ++p) {
    hist.emplace_back(plat, R, HomePolicy::node(p));
    rank.emplace_back(plat, R, HomePolicy::node(p));
    if (variant == Variant::AlgLocal) {
      lbuf.emplace_back(plat, per, HomePolicy::node(p));
    }
  }
  // Global digit offsets, recomputed each pass by the digit's owner.
  SharedArray<std::uint32_t> gofs(plat, R, HomePolicy::roundRobin(P));

  // Untimed init: uniform keys within the sortable range.
  const std::uint64_t key_range = std::size_t{1}
                                  << (radix_bits * static_cast<unsigned>(passes));
  std::mt19937_64 rng(prm.seed);
  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = static_cast<std::uint32_t>(rng() % key_range);
    A.raw(i) = input[i];
  }

  const int bar = plat.makeBarrier();

  plat.run([&](Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    SharedArray<std::uint32_t>* src = &A;
    SharedArray<std::uint32_t>* dst = &Bv;
    const std::size_t lo = me * per;
    const std::size_t hi = (me + 1 == np) ? n : lo + per;

    for (int pass = 0; pass < passes; ++pass) {
      const unsigned shift = radix_bits * static_cast<unsigned>(pass);
      // -- local histogram --
      for (std::size_t d = 0; d < R; ++d) hist[me].set(c, d, 0);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::uint32_t key = src->get(c, i);
        const std::size_t d = (key >> shift) & (R - 1);
        hist[me].update(c, d, [](std::uint32_t v) { return v + 1; });
        c.compute(3);
      }
      c.barrier(bar);
      // -- global offsets: each processor owns a slice of the digits and
      //    sums all per-processor histograms for its slice --
      const std::size_t dper = R / np;
      const std::size_t dlo = me * dper;
      const std::size_t dhi = (me + 1 == np) ? R : dlo + dper;
      for (std::size_t d = dlo; d < dhi; ++d) {
        std::uint32_t sum = 0;
        for (std::size_t q = 0; q < np; ++q) {
          sum += hist[q].get(c, d);
          c.compute(1);
        }
        gofs.set(c, d, sum);
      }
      c.barrier(bar);
      // -- exclusive prefix over digit counts (small, done redundantly
      //    by everyone against the shared gofs array) --
      std::uint32_t run = 0;
      std::vector<std::uint32_t> base(R);
      for (std::size_t d = 0; d < R; ++d) {
        base[d] = run;
        run += gofs.get(c, d);
        c.compute(1);
      }
      // -- my start offset per digit: digits of processors before me --
      for (std::size_t d = 0; d < R; ++d) {
        std::uint32_t ofs = base[d];
        for (std::size_t q = 0; q < me; ++q) {
          ofs += hist[q].get(c, d);
          c.compute(1);
        }
        rank[me].set(c, d, ofs);
      }
      c.barrier(bar);
      // -- permutation --
      if (variant == Variant::Orig) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint32_t key = src->get(c, i);
          const std::size_t d = (key >> shift) & (R - 1);
          std::uint32_t pos = rank[me].get(c, d);
          rank[me].set(c, d, pos + 1);
          dst->set(c, pos, key);  // scattered remote write
          c.compute(3);
        }
      } else {
        // Gather into the digit-ordered local buffer first.
        std::vector<std::uint32_t> lofs(R);
        std::uint32_t acc = 0;
        for (std::size_t d = 0; d < R; ++d) {
          lofs[d] = acc;
          acc += hist[me].get(c, d);
          c.compute(1);
        }
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint32_t key = src->get(c, i);
          const std::size_t d = (key >> shift) & (R - 1);
          lbuf[me].set(c, lofs[d]++, key);
          c.compute(3);
        }
        // Copy out one contiguous run per digit. Start at this
        // processor's own digit slice so the processors stream through
        // the (block-distributed) output array out of phase instead of
        // convoying on one home node at a time.
        std::vector<std::uint32_t> lstart(R);
        std::uint32_t consumed = 0;
        for (std::size_t d = 0; d < R; ++d) {
          lstart[d] = consumed;
          consumed += hist[me].get(c, d);
          c.compute(1);
        }
        for (std::size_t k = 0; k < R; ++k) {
          const std::size_t d = (me * (R / np) + k) % R;
          const std::uint32_t cnt = hist[me].get(c, d);
          std::uint32_t pos = rank[me].get(c, d);
          for (std::uint32_t i2 = 0; i2 < cnt; ++i2) {
            dst->set(c, pos + i2, lbuf[me].get(c, lstart[d] + i2));
            c.compute(1);
          }
        }
      }
      c.barrier(bar);
      std::swap(src, dst);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // The final sorted data lives in A if `passes` is even, else in B.
  SharedArray<std::uint32_t>& out = (passes % 2 == 0) ? A : Bv;
  bool sorted = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (out.raw(i) < out.raw(i - 1)) sorted = false;
  }
  std::vector<std::uint32_t> expect = input;
  std::sort(expect.begin(), expect.end());
  bool same = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (expect[i] != out.raw(i)) {
      same = false;
      break;
    }
  }
  res.correct = sorted && same;
  res.note = sorted ? (same ? "sorted, permutation verified"
                            : "sorted but not a permutation of the input")
                    : "output not sorted";
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  return runImpl(plat, prm, v);
}

AppDesc describe() {
  AppDesc d;
  d.name = "radix";
  d.summary = "parallel radix sort (SPLASH-2)";
  d.tiny = {.n = 1 << 14, .iters = 2, .block = 8, .seed = 7};
  d.small = {.n = 1 << 20, .iters = 2, .block = 10, .seed = 7};
  d.paper = {.n = 1 << 22, .iters = 3, .block = 10, .seed = 7};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("orig", OptClass::Orig, "scattered permutation writes",
          Variant::Orig),
      ver("alg-local", OptClass::Alg,
          "digit-gathered local buffer, contiguous run copy-out",
          Variant::AlgLocal),
  };
  return d;
}

}  // namespace rsvm::apps::radix
