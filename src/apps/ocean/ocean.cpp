#include "apps/ocean/ocean.hpp"

#include "runtime/shared.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace rsvm::apps::ocean {
namespace {

constexpr std::size_t kPageBytes = 4096;
constexpr std::size_t kPageWords = kPageBytes / sizeof(double);
constexpr int kPreSweeps = 2;    // fine-grid smoothing before the V-cycle leg
constexpr int kCoarseSweeps = 4; // coarse-grid relaxation sweeps
constexpr int kPostSweeps = 2;   // fine-grid smoothing after correction
constexpr double kAlpha = 0.8;   // correction weight

struct Part {
  int pr = 1, pc = 1;
  explicit Part(int p) {
    pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
    while (p % pr != 0) --pr;
    pc = p / pr;
  }
};

/// Row-major with configurable stride (2d: stride = n; 2d-pad: rows
/// padded to whole pages).
struct Flat {
  std::size_t n, stride;
  [[nodiscard]] std::size_t words() const { return n * stride; }
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    return i * stride + j;
  }
};

/// Page-aligned contiguous sub-grids matching the square partition
/// exactly: block (pi, pj) holds processor (pi, pj)'s interior points
/// plus its share of the fixed boundary ring.
struct Blocked {
  std::size_t n, m, pr, pc, bi, bj, stride;

  [[nodiscard]] std::size_t bRow(std::size_t i) const {
    return i == 0 ? 0 : std::min((i - 1) / bi, pr - 1);
  }
  [[nodiscard]] std::size_t bCol(std::size_t j) const {
    return j == 0 ? 0 : std::min((j - 1) / bj, pc - 1);
  }
  [[nodiscard]] std::size_t words() const { return pr * pc * stride; }
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    const std::size_t bri = bRow(i), bcj = bCol(j);
    const std::size_t li = i - (bri == 0 ? 0 : 1 + bri * bi);
    const std::size_t lj = j - (bcj == 0 ? 0 : 1 + bcj * bj);
    return (bri * pc + bcj) * stride + li * (bj + 2) + lj;
  }
};

struct Partition {
  // Each processor's interior range [r0, r1) x [c0, c1).
  std::vector<std::size_t> r0, r1, c0, c1;
};

Partition squarePartition(std::size_t n, int P) {
  const Part g(P);
  Partition pt;
  const std::size_t m = n - 2;
  for (int p = 0; p < P; ++p) {
    const std::size_t pi = static_cast<std::size_t>(p / g.pc);
    const std::size_t pj = static_cast<std::size_t>(p % g.pc);
    pt.r0.push_back(1 + pi * m / static_cast<std::size_t>(g.pr));
    pt.r1.push_back(1 + (pi + 1) * m / static_cast<std::size_t>(g.pr));
    pt.c0.push_back(1 + pj * m / static_cast<std::size_t>(g.pc));
    pt.c1.push_back(1 + (pj + 1) * m / static_cast<std::size_t>(g.pc));
  }
  return pt;
}

Partition rowPartition(std::size_t n, int P) {
  Partition pt;
  const std::size_t m = n - 2;
  for (int p = 0; p < P; ++p) {
    pt.r0.push_back(1 + static_cast<std::size_t>(p) * m /
                            static_cast<std::size_t>(P));
    pt.r1.push_back(1 + static_cast<std::size_t>(p + 1) * m /
                            static_cast<std::size_t>(P));
    pt.c0.push_back(1);
    pt.c1.push_back(n - 1);
  }
  return pt;
}

/// Fine index of coarse interior point ic (boundaries map to boundaries;
/// the grids satisfy n = 2*(nc - 1) + ... with m_f = 2 * m_c).
inline std::size_t fineOf(std::size_t ic) { return 2 * ic - 1; }

// --------------------------------------------------------------------------
// The solver, shared verbatim by the serial reference and the parallel
// versions: one time-step = laplacian, pre-smooth, restrict residual,
// coarse relax, prolong correction, post-smooth, residual reduction,
// correction update. Ocean's defining property on SVM is the *number of
// barrier-separated phases* this creates.
// --------------------------------------------------------------------------

/// Serial reference. psi is updated in place (row-major n x n).
void reference(std::size_t n, int iters, std::vector<double>& psi) {
  const std::size_t nc = (n - 2) / 2 + 2;
  std::vector<double> q(n * n, 0.0), phi(n * n, 0.0), rf(n * n, 0.0);
  std::vector<double> rc(nc * nc, 0.0), ec(nc * nc, 0.0);
  auto F = [n](std::vector<double>& v, std::size_t i, std::size_t j) -> double& {
    return v[i * n + j];
  };
  auto C = [nc](std::vector<double>& v, std::size_t i, std::size_t j) -> double& {
    return v[i * nc + j];
  };
  for (int t = 0; t < iters; ++t) {
    for (std::size_t i = 1; i + 1 < n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) {
        F(q, i, j) = 4 * F(psi, i, j) - F(psi, i - 1, j) - F(psi, i + 1, j) -
                     F(psi, i, j - 1) - F(psi, i, j + 1);
      }
    }
    for (int s = 0; s < kPreSweeps; ++s) {
      for (int color = 0; color < 2; ++color) {
        for (std::size_t i = 1; i + 1 < n; ++i) {
          for (std::size_t j = 1; j + 1 < n; ++j) {
            if ((i + j) % 2 != static_cast<std::size_t>(color)) continue;
            F(phi, i, j) = 0.25 * (F(phi, i - 1, j) + F(phi, i + 1, j) +
                                   F(phi, i, j - 1) + F(phi, i, j + 1) -
                                   F(q, i, j));
          }
        }
      }
    }
    for (std::size_t i = 1; i + 1 < n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) {
        F(rf, i, j) = F(q, i, j) -
                      (4 * F(phi, i, j) - F(phi, i - 1, j) - F(phi, i + 1, j) -
                       F(phi, i, j - 1) - F(phi, i, j + 1));
      }
    }
    for (std::size_t ic = 1; ic + 1 < nc; ++ic) {
      for (std::size_t jc = 1; jc + 1 < nc; ++jc) {
        const std::size_t fi = fineOf(ic), fj = fineOf(jc);
        C(rc, ic, jc) = 0.5 * F(rf, fi, fj) +
                        0.125 * (F(rf, fi - 1, fj) + F(rf, fi + 1, fj) +
                                 F(rf, fi, fj - 1) + F(rf, fi, fj + 1));
        C(ec, ic, jc) = 0.0;
      }
    }
    for (int s = 0; s < kCoarseSweeps; ++s) {
      for (int color = 0; color < 2; ++color) {
        for (std::size_t ic = 1; ic + 1 < nc; ++ic) {
          for (std::size_t jc = 1; jc + 1 < nc; ++jc) {
            if ((ic + jc) % 2 != static_cast<std::size_t>(color)) continue;
            C(ec, ic, jc) = 0.25 * (C(ec, ic - 1, jc) + C(ec, ic + 1, jc) +
                                    C(ec, ic, jc - 1) + C(ec, ic, jc + 1) -
                                    4.0 * C(rc, ic, jc));
          }
        }
      }
    }
    for (std::size_t i = 1; i + 1 < n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) {
        // Bilinear prolongation of the coarse correction.
        const std::size_t icl = (i + 1) / 2, jcl = (j + 1) / 2;
        double corr;
        if (i % 2 == 1 && j % 2 == 1) {
          corr = C(ec, icl, jcl);
        } else if (i % 2 == 1) {
          corr = 0.5 * (C(ec, icl, jcl) + C(ec, icl, jcl + 1));
        } else if (j % 2 == 1) {
          corr = 0.5 * (C(ec, icl, jcl) + C(ec, icl + 1, jcl));
        } else {
          corr = 0.25 * (C(ec, icl, jcl) + C(ec, icl, jcl + 1) +
                         C(ec, icl + 1, jcl) + C(ec, icl + 1, jcl + 1));
        }
        F(phi, i, j) += corr;
      }
    }
    for (int s = 0; s < kPostSweeps; ++s) {
      for (int color = 0; color < 2; ++color) {
        for (std::size_t i = 1; i + 1 < n; ++i) {
          for (std::size_t j = 1; j + 1 < n; ++j) {
            if ((i + j) % 2 != static_cast<std::size_t>(color)) continue;
            F(phi, i, j) = 0.25 * (F(phi, i - 1, j) + F(phi, i + 1, j) +
                                   F(phi, i, j - 1) + F(phi, i, j + 1) -
                                   F(q, i, j));
          }
        }
      }
    }
    for (std::size_t i = 1; i + 1 < n; ++i) {
      for (std::size_t j = 1; j + 1 < n; ++j) {
        F(psi, i, j) += kAlpha * F(phi, i, j);
      }
    }
  }
}

/// Coarse index ranges for a processor's fine range: proportional, so
/// the coarse partitions tile the coarse interior exactly.
std::pair<std::size_t, std::size_t> coarseRange(std::size_t f0,
                                                std::size_t f1,
                                                std::size_t m) {
  // Fine interior [1, m+1) maps to coarse interior [1, m/2+1).
  const std::size_t mc = m / 2;
  const std::size_t a = 1 + (f0 - 1) * mc / m;
  const std::size_t b = 1 + (f1 - 1) * mc / m;
  return {a, b};
}

template <class L, class LC>
AppResult runImpl(Platform& plat, const AppParams& prm, const L& lay,
                  const LC& layc, const Partition& part,
                  const HomePolicy& homes, const HomePolicy& homesc) {
  const std::size_t n = static_cast<std::size_t>(prm.n);
  const std::size_t m = n - 2;
  const std::size_t nc = m / 2 + 2;
  const int P = plat.nprocs();
  const int iters = prm.iters;

  SharedArray<double> psi(plat, lay.words(), homes, kPageBytes);
  SharedArray<double> phi(plat, lay.words(), homes, kPageBytes);
  SharedArray<double> q(plat, lay.words(), homes, kPageBytes);
  SharedArray<double> rf(plat, lay.words(), homes, kPageBytes);
  SharedArray<double> rc(plat, layc.words(), homesc, kPageBytes);
  SharedArray<double> ec(plat, layc.words(), homesc, kPageBytes);
  // Per-processor residual slots, one page each, plus a lock-protected
  // global accumulator (SPLASH-2 style reduction).
  SharedArray<double> partial(plat, static_cast<std::size_t>(P) * kPageWords,
                              HomePolicy::roundRobin(P), kPageBytes);
  Shared<double> gsum(plat, HomePolicy::node(0));

  // Untimed init: smooth random field, zero elsewhere.
  std::mt19937_64 rng(prm.seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> init(n * n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      init[i * n + j] = std::sin(0.1 * static_cast<double>(i)) *
                            std::cos(0.07 * static_cast<double>(j)) +
                        0.01 * dist(rng);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      psi.raw(lay.idx(i, j)) = init[i * n + j];
      phi.raw(lay.idx(i, j)) = 0.0;
      q.raw(lay.idx(i, j)) = 0.0;
      rf.raw(lay.idx(i, j)) = 0.0;
    }
  }
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      rc.raw(layc.idx(i, j)) = 0.0;
      ec.raw(layc.idx(i, j)) = 0.0;
    }
  }

  const int bar = plat.makeBarrier();
  const int lk = plat.makeLock();

  plat.run([&](Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    const std::size_t r0 = part.r0[me], r1 = part.r1[me];
    const std::size_t c0 = part.c0[me], c1 = part.c1[me];
    const auto [cr0, cr1] = coarseRange(r0, r1, m);
    const auto [cc0, cc1] = coarseRange(c0, c1, m);
    auto g = [&](SharedArray<double>& a, std::size_t i, std::size_t j) {
      return a.get(c, lay.idx(i, j));
    };
    auto s = [&](SharedArray<double>& a, std::size_t i, std::size_t j,
                 double v) { a.set(c, lay.idx(i, j), v); };
    auto gc = [&](SharedArray<double>& a, std::size_t i, std::size_t j) {
      return a.get(c, layc.idx(i, j));
    };
    auto sc = [&](SharedArray<double>& a, std::size_t i, std::size_t j,
                  double v) { a.set(c, layc.idx(i, j), v); };

    for (int t = 0; t < iters; ++t) {
      // -- laplacian of psi into q --
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = c0; j < c1; ++j) {
          s(q, i, j,
            4 * g(psi, i, j) - g(psi, i - 1, j) - g(psi, i + 1, j) -
                g(psi, i, j - 1) - g(psi, i, j + 1));
          c.compute(4);
        }
      }
      c.barrier(bar);
      // -- pre-smoothing (red-black) --
      for (int sw = 0; sw < kPreSweeps; ++sw) {
        for (int color = 0; color < 2; ++color) {
          for (std::size_t i = r0; i < r1; ++i) {
            for (std::size_t j = c0; j < c1; ++j) {
              if ((i + j) % 2 != static_cast<std::size_t>(color)) continue;
              s(phi, i, j,
                0.25 * (g(phi, i - 1, j) + g(phi, i + 1, j) +
                        g(phi, i, j - 1) + g(phi, i, j + 1) - g(q, i, j)));
              c.compute(5);
            }
          }
          c.barrier(bar);
        }
      }
      // -- fine residual --
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = c0; j < c1; ++j) {
          s(rf, i, j,
            g(q, i, j) - (4 * g(phi, i, j) - g(phi, i - 1, j) -
                          g(phi, i + 1, j) - g(phi, i, j - 1) -
                          g(phi, i, j + 1)));
          c.compute(6);
        }
      }
      c.barrier(bar);
      // -- restriction to the coarse grid (full weighting) --
      for (std::size_t ic = cr0; ic < cr1; ++ic) {
        for (std::size_t jc = cc0; jc < cc1; ++jc) {
          const std::size_t fi = fineOf(ic), fj = fineOf(jc);
          sc(rc, ic, jc,
             0.5 * g(rf, fi, fj) +
                 0.125 * (g(rf, fi - 1, fj) + g(rf, fi + 1, fj) +
                          g(rf, fi, fj - 1) + g(rf, fi, fj + 1)));
          sc(ec, ic, jc, 0.0);
          c.compute(7);
        }
      }
      c.barrier(bar);
      // -- coarse-grid relaxation --
      for (int sw = 0; sw < kCoarseSweeps; ++sw) {
        for (int color = 0; color < 2; ++color) {
          for (std::size_t ic = cr0; ic < cr1; ++ic) {
            for (std::size_t jc = cc0; jc < cc1; ++jc) {
              if ((ic + jc) % 2 != static_cast<std::size_t>(color)) continue;
              sc(ec, ic, jc,
                 0.25 * (gc(ec, ic - 1, jc) + gc(ec, ic + 1, jc) +
                         gc(ec, ic, jc - 1) + gc(ec, ic, jc + 1) -
                         4.0 * gc(rc, ic, jc)));
              c.compute(6);
            }
          }
          c.barrier(bar);
        }
      }
      // -- prolongation: phi += bilinear(ec) --
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = c0; j < c1; ++j) {
          const std::size_t icl = (i + 1) / 2, jcl = (j + 1) / 2;
          double corr;
          if (i % 2 == 1 && j % 2 == 1) {
            corr = gc(ec, icl, jcl);
            c.compute(2);
          } else if (i % 2 == 1) {
            corr = 0.5 * (gc(ec, icl, jcl) + gc(ec, icl, jcl + 1));
            c.compute(3);
          } else if (j % 2 == 1) {
            corr = 0.5 * (gc(ec, icl, jcl) + gc(ec, icl + 1, jcl));
            c.compute(3);
          } else {
            corr = 0.25 * (gc(ec, icl, jcl) + gc(ec, icl, jcl + 1) +
                           gc(ec, icl + 1, jcl) + gc(ec, icl + 1, jcl + 1));
            c.compute(5);
          }
          s(phi, i, j, g(phi, i, j) + corr);
        }
      }
      c.barrier(bar);
      // -- post-smoothing --
      for (int sw = 0; sw < kPostSweeps; ++sw) {
        for (int color = 0; color < 2; ++color) {
          for (std::size_t i = r0; i < r1; ++i) {
            for (std::size_t j = c0; j < c1; ++j) {
              if ((i + j) % 2 != static_cast<std::size_t>(color)) continue;
              s(phi, i, j,
                0.25 * (g(phi, i - 1, j) + g(phi, i + 1, j) +
                        g(phi, i, j - 1) + g(phi, i, j + 1) - g(q, i, j)));
              c.compute(5);
            }
          }
          c.barrier(bar);
        }
      }
      // -- residual reduction (lock-protected global accumulator) --
      double local = 0.0;
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = c0; j < c1; ++j) {
          local += std::abs(4 * g(phi, i, j) - g(phi, i - 1, j) -
                            g(phi, i + 1, j) - g(phi, i, j - 1) -
                            g(phi, i, j + 1) + g(q, i, j));
          c.compute(6);
        }
      }
      partial.set(c, me * kPageWords, local);
      if (me == 0) gsum.set(c, 0.0);
      c.barrier(bar);
      c.lock(lk);
      gsum.update(c, [local](double v) { return v + local; });
      c.unlock(lk);
      c.barrier(bar);
      (void)gsum.get(c);  // every processor reads the converged residual
      // -- correction update --
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = c0; j < c1; ++j) {
          s(psi, i, j, g(psi, i, j) + kAlpha * g(phi, i, j));
          c.compute(2);
        }
      }
      c.barrier(bar);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // Bit-exact comparison against the serial reference.
  std::vector<double> ref = init;
  reference(n, iters, ref);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      max_err = std::max(max_err,
                         std::abs(ref[i * n + j] - psi.raw(lay.idx(i, j))));
    }
  }
  res.correct = max_err == 0.0;
  res.note = "max |psi - reference| = " + std::to_string(max_err);
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  const std::size_t n = static_cast<std::size_t>(prm.n);
  const std::size_t m = n - 2;
  if (m % 2 != 0) {
    throw std::invalid_argument("ocean: interior (n-2) must be even");
  }
  const std::size_t nc = m / 2 + 2;
  const int P = plat.nprocs();
  const Part grid(P);
  switch (v) {
    case Variant::TwoD:
      return runImpl(plat, prm, Flat{n, n}, Flat{nc, nc},
                     squarePartition(n, P), HomePolicy::roundRobin(P),
                     HomePolicy::roundRobin(P));
    case Variant::TwoDPad: {
      // Rows padded and aligned to whole pages; home each row at the
      // first processor of its processor-row (columns of the row still
      // conflict -- the P/A class cannot fix fragmentation).
      auto padded = [&](std::size_t dim, std::size_t interior) {
        const std::size_t stride =
            (dim + kPageWords - 1) / kPageWords * kPageWords;
        const std::size_t pages_per_row = stride / kPageWords;
        const int pr = grid.pr, pc = grid.pc;
        HomePolicy homes{[dim, interior, pr, pc, pages_per_row](
                             std::uint64_t page, std::uint64_t) {
          const std::size_t row =
              std::min<std::size_t>(page / pages_per_row, dim - 1);
          const std::size_t clamped =
              row == 0 ? 0 : std::min(row - 1, interior - 1);
          const int pi = static_cast<int>(
              clamped * static_cast<std::size_t>(pr) / interior);
          return static_cast<ProcId>(pi * pc);
        }};
        return std::make_pair(Flat{dim, stride}, homes);
      };
      auto [layf, homesf] = padded(n, m);
      auto [layc, homesc] = padded(nc, nc - 2);
      return runImpl(plat, prm, layf, layc, squarePartition(n, P), homesf,
                     homesc);
    }
    case Variant::FourD: {
      const auto pr = static_cast<std::size_t>(grid.pr);
      const auto pc = static_cast<std::size_t>(grid.pc);
      if (m % pr != 0 || m % pc != 0 || (m / 2) % pr != 0 ||
          (m / 2) % pc != 0) {
        throw std::invalid_argument(
            "ocean 4d: interior (n-2) and (n-2)/2 must divide the "
            "processor grid");
      }
      auto blocked = [&](std::size_t dim, std::size_t interior) {
        const std::size_t bi = interior / pr, bj = interior / pc;
        const std::size_t cap = (bi + 2) * (bj + 2);
        const std::size_t stride =
            (cap + kPageWords - 1) / kPageWords * kPageWords;
        Blocked layb{dim, interior, pr, pc, bi, bj, stride};
        const int Pn = P;
        HomePolicy homes{[stride, Pn](std::uint64_t page, std::uint64_t) {
          const auto blk = static_cast<int>(page * kPageWords / stride);
          return static_cast<ProcId>(std::min(blk, Pn - 1));
        }};
        return std::make_pair(layb, homes);
      };
      auto [layf, homesf] = blocked(n, m);
      auto [layc, homesc] = blocked(nc, m / 2);
      return runImpl(plat, prm, layf, layc, squarePartition(n, P), homesf,
                     homesc);
    }
    case Variant::RowWise: {
      auto banded = [&](std::size_t dim, std::size_t interior) {
        const int Pn = P;
        HomePolicy homes{[dim, interior, Pn](std::uint64_t page,
                                             std::uint64_t) {
          const std::size_t row =
              std::min<std::size_t>(page * kPageWords / dim, dim - 1);
          const std::size_t clamped =
              row == 0 ? 0 : std::min(row - 1, interior - 1);
          return static_cast<ProcId>(clamped * static_cast<std::size_t>(Pn) /
                                     interior);
        }};
        return std::make_pair(Flat{dim, dim}, homes);
      };
      auto [layf, homesf] = banded(n, m);
      auto [layc, homesc] = banded(nc, nc - 2);
      return runImpl(plat, prm, layf, layc, rowPartition(n, P), homesf,
                     homesc);
    }
  }
  throw std::invalid_argument("ocean: bad variant");
}

AppDesc describe() {
  AppDesc d;
  d.name = "ocean";
  d.summary =
      "near-neighbor multigrid grid solver, many barriers (SPLASH-2 Ocean)";
  d.tiny = {.n = 66, .iters = 2, .block = 0, .seed = 11};
  d.small = {.n = 258, .iters = 4, .block = 0, .seed = 11};
  d.paper = {.n = 514, .iters = 8, .block = 0, .seed = 11};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("2d", OptClass::Orig, "2-d arrays, square sub-grid partitions",
          Variant::TwoD),
      ver("2d-pad", OptClass::PA, "grid rows padded/aligned to pages",
          Variant::TwoDPad),
      ver("4d", OptClass::DS, "contiguous page-aligned sub-grids",
          Variant::FourD),
      ver("rowwise", OptClass::Alg,
          "contiguous row-band partitions on plain 2-d arrays",
          Variant::RowWise),
  };
  return d;
}

}  // namespace rsvm::apps::ocean
