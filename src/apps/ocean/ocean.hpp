// Near-neighbor grid solver modeled on SPLASH-2 "Ocean" (paper section
// 4.1.2). Each time-step runs several phases over n x n grids (a
// laplacian, red-black Gauss-Seidel relaxation sweeps, a global residual
// reduction, and a correction update), separated by many barriers --
// Ocean's signature cost on SVM.
//
// Versions (the paper's ladder):
//  * 2d       -- natural 2-d arrays + square sub-grid partitions: pages
//                span whole grid rows, so every row is false-shared among
//                the processor columns, and column boundaries fragment.
//  * 2d-pad   -- each grid row padded/aligned to a page (P/A class):
//                removes some false sharing, fragmentation remains.
//  * 4d       -- sub-grids contiguous and page-aligned (DS class), homed
//                at their owners; column boundaries remain fine-grained
//                (the Fig. 4 imbalance).
//  * rowwise  -- contiguous bands of whole rows on plain 2-d arrays (Alg
//                class): only coarse-grained row-boundary communication;
//                the paper's best SVM version (8.5 -> 13.2), at the cost
//                of a worse inherent comm-to-comp ratio (so square
//                partitions stay best on hardware-coherent machines).
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::ocean {

enum class Variant { TwoD, TwoDPad, FourD, RowWise };

/// prm.n is the grid dimension including the fixed boundary ring;
/// prm.iters time-steps.
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::ocean
