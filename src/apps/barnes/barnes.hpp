// Barnes-Hut hierarchical N-body (paper section 4.2.4). The force
// calculation is classic Barnes-Hut; what the paper varies -- and what
// kills SVM -- is how the shared octree is built each time-step:
//
//  * orig        -- SPLASH-style: every processor inserts its bodies into
//                   one shared tree, locking cells on the way; cells come
//                   from a single lock-protected global pool, so cells of
//                   different processors interleave in memory (heavy
//                   false sharing + ~tens of thousands of remote locks).
//  * pa          -- cells padded to page granularity (P/A class): removes
//                   the false sharing, wastes memory, kills prefetching.
//  * ds          -- SPLASH-2-style: cells allocated from per-processor
//                   heaps homed locally (2.76 -> 2.94 in the paper).
//  * update-tree -- incremental: keep last step's tree and re-insert only
//                   bodies that left their leaf (5.56).
//  * partree     -- build per-processor local trees without locks, then
//                   merge them into the global tree (merging is locked
//                   and imbalanced; 5.65).
//  * spatial     -- partition *space* equally; each processor builds the
//                   subtree of its subspace without any locks and links
//                   it into a static top skeleton (10.5; the winner).
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::barnes {

enum class Variant { Orig, PA, DS, UpdateTree, Partree, Spatial };

/// prm.n bodies, prm.iters time-steps.
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::barnes
