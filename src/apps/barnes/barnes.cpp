#include "apps/barnes/barnes.hpp"

#include "runtime/shared.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace rsvm::apps::barnes {
namespace {

constexpr std::size_t kPageBytes = 4096;
constexpr int kLeafCap = 8;       ///< bodies per leaf before splitting
constexpr int kLeafMax = 16;      ///< hard capacity at depth limit
constexpr int kMaxLevel = 24;
constexpr int kCellLocks = 512;   ///< lock pool for cell locking
constexpr double kTheta = 0.7;    ///< opening criterion
constexpr double kEps2 = 1e-4;    ///< softening^2
constexpr double kDt = 0.03;

// Node record layout in the shared pool.
constexpr std::size_t kNI = 12;  ///< int32 slots per node
constexpr std::size_t kNF = 8;   ///< float slots per node
// ints: [0] type (0 internal / 1 leaf), [1] count, [2..9] slots, [10] level
// floats: [0] mass, [1..3] com, [4..6] center, [7] half-size

enum { kInternal = 0, kLeaf = 1 };

struct BarnesSim {
  Platform& plat;
  const AppParams& prm;
  Variant variant;
  int P;
  std::size_t N;
  std::size_t cap;            ///< node pool capacity
  std::size_t ni_stride, nf_stride;

  // Bodies (SoA, block-distributed).
  SharedArray<float> bx, by, bz, bvx, bvy, bvz, bm, bax, bay, baz;
  SharedArray<std::int32_t> body_leaf;  ///< leaf holding each body (update-tree)

  // Node pool.
  SharedArray<std::int32_t> ni;
  SharedArray<float> nf;
  // Global pool cursor (orig/pa) lives in shared memory under a lock.
  SharedArray<std::int32_t> pool_next;
  // Per-processor chunk state for the pa variant (host-side scratch).
  std::vector<std::int32_t> chunk_next, chunk_end;
  // Per-processor heaps (ds and algorithm variants).
  std::vector<std::int32_t> heap_next, heap_end;

  // Global bounding box (written by proc 0 each step).
  SharedArray<float> gbox;  ///< [cx, cy, cz, hs]
  SharedArray<float> redsl; ///< per-proc reduction slots (page-strided)

  int pool_lock = 0;
  int first_cell_lock = 0;
  int bar = 0;
  int root = -1;

  // Host-side metadata: who allocated each node, by tree level, for the
  // level-synchronized parallel center-of-mass pass.
  std::vector<std::vector<std::vector<std::int32_t>>> owned;  // [proc][level]
  int max_level = 0;

  BarnesSim(Platform& p, const AppParams& a, Variant v)
      : plat(p), prm(a), variant(v), P(p.nprocs()),
        N(static_cast<std::size_t>(a.n)) {
    cap = 4 * N + 4096;
    // P/A: nodes padded to a 64 B line and the pool handed out in
    // page-aligned per-processor chunks (the paper's "pad and align the
    // data structures from which cells are allocated").
    const bool padded = variant == Variant::PA;
    ni_stride = padded ? 16 : kNI;
    nf_stride = padded ? 16 : kNF;
    auto bodyHomes = HomePolicy::blocked(P);
    bx = {plat, N, bodyHomes}; by = {plat, N, bodyHomes};
    bz = {plat, N, bodyHomes}; bvx = {plat, N, bodyHomes};
    bvy = {plat, N, bodyHomes}; bvz = {plat, N, bodyHomes};
    bm = {plat, N, bodyHomes}; bax = {plat, N, bodyHomes};
    bay = {plat, N, bodyHomes}; baz = {plat, N, bodyHomes};
    body_leaf = {plat, N, bodyHomes};
    // Node pool homes: scattered (round-robin) for the SPLASH-style pool;
    // per-processor regions for local heaps.
    const bool local_heaps = variant != Variant::Orig && variant != Variant::PA;
    const std::size_t per = cap / static_cast<std::size_t>(P) + 1;
    HomePolicy nodeHomes =
        local_heaps
            ? HomePolicy{[this, per](std::uint64_t page, std::uint64_t) {
                const std::size_t node = page * kPageBytes / (ni_stride * 4);
                return static_cast<ProcId>(
                    std::min<std::size_t>(node / per,
                                          static_cast<std::size_t>(P - 1)));
              }}
            : HomePolicy::roundRobin(P);
    HomePolicy nodeHomesF =
        local_heaps
            ? HomePolicy{[this, per](std::uint64_t page, std::uint64_t) {
                const std::size_t node = page * kPageBytes / (nf_stride * 4);
                return static_cast<ProcId>(
                    std::min<std::size_t>(node / per,
                                          static_cast<std::size_t>(P - 1)));
              }}
            : HomePolicy::roundRobin(P);
    ni = {plat, cap * ni_stride, nodeHomes, kPageBytes};
    nf = {plat, cap * nf_stride, nodeHomesF, kPageBytes};
    pool_next = {plat, 1, HomePolicy::node(0)};
    gbox = {plat, 4, HomePolicy::node(0)};
    redsl = {plat, static_cast<std::size_t>(P) * (kPageBytes / 4),
             HomePolicy::roundRobin(P), kPageBytes};
    chunk_next.assign(static_cast<std::size_t>(P), 0);
    chunk_end.assign(static_cast<std::size_t>(P), 0);
    heap_next.resize(static_cast<std::size_t>(P));
    heap_end.resize(static_cast<std::size_t>(P));
    for (int q = 0; q < P; ++q) {
      heap_next[static_cast<std::size_t>(q)] =
          static_cast<std::int32_t>(static_cast<std::size_t>(q) * per);
      heap_end[static_cast<std::size_t>(q)] =
          static_cast<std::int32_t>(std::min(
              (static_cast<std::size_t>(q) + 1) * per, cap));
    }
    owned.assign(static_cast<std::size_t>(P),
                 std::vector<std::vector<std::int32_t>>(kMaxLevel + 1));
    pool_lock = plat.makeLock();
    bar = plat.makeBarrier();
    first_cell_lock = plat.makeLock();
    for (int i = 1; i < kCellLocks; ++i) plat.makeLock();
  }

  [[nodiscard]] int cellLock(int node) const {
    return first_cell_lock + node % kCellLocks;
  }

  // ---- node field helpers (timed accesses) ----
  std::int32_t geti(Ctx& c, int node, std::size_t f) {
    return ni.get(c, static_cast<std::size_t>(node) * ni_stride + f);
  }
  void seti(Ctx& c, int node, std::size_t f, std::int32_t v) {
    ni.set(c, static_cast<std::size_t>(node) * ni_stride + f, v);
  }
  float getf(Ctx& c, int node, std::size_t f) {
    return nf.get(c, static_cast<std::size_t>(node) * nf_stride + f);
  }
  /// Unlocked float-field peek (see the update-tree move check).
  float getfRacy(Ctx& c, int node, std::size_t f) {
    return nf.getRacy(c, static_cast<std::size_t>(node) * nf_stride + f);
  }
  void setf(Ctx& c, int node, std::size_t f, float v) {
    nf.set(c, static_cast<std::size_t>(node) * nf_stride + f, v);
  }

  /// Allocate a node from the variant's pool. Writes type/level/box and
  /// clears the slots.
  int allocNode(Ctx& c, int type, int level, float mx, float my, float mz,
                float hs) {
    const auto me = static_cast<std::size_t>(c.id());
    int idx;
    if (variant == Variant::Orig) {
      c.lock(pool_lock);
      idx = pool_next.get(c, 0);
      pool_next.set(c, 0, idx + 1);
      c.unlock(pool_lock);
    } else if (variant == Variant::PA) {
      // Page-aligned per-processor chunks from the global pool.
      if (chunk_next[me] >= chunk_end[me]) {
        const int nodes_per_page =
            static_cast<int>(kPageBytes / (ni_stride * 4));
        const int grab = std::max(nodes_per_page, 1);
        c.lock(pool_lock);
        const std::int32_t base = pool_next.get(c, 0);
        pool_next.set(c, 0, base + grab);
        c.unlock(pool_lock);
        chunk_next[me] = base;
        chunk_end[me] = base + grab;
      }
      idx = chunk_next[me]++;
    } else {
      idx = heap_next[me]++;
      if (idx >= heap_end[me]) {
        throw std::runtime_error("barnes: per-processor node heap exhausted");
      }
    }
    if (static_cast<std::size_t>(idx) >= cap) {
      throw std::runtime_error("barnes: node pool exhausted");
    }
    seti(c, idx, 0, type);
    seti(c, idx, 1, 0);
    for (std::size_t s = 0; s < 8; ++s) seti(c, idx, 2 + s, -1);
    seti(c, idx, 10, level);
    setf(c, idx, 4, mx);
    setf(c, idx, 5, my);
    setf(c, idx, 6, mz);
    setf(c, idx, 7, hs);
    c.compute(10);
    max_level = std::max(max_level, level);
    owned[me][static_cast<std::size_t>(level)].push_back(idx);
    return idx;
  }

  /// Octant of a position within a node's box.
  int octantOf(Ctx& c, int node, float x, float y, float z) {
    const float mx = getf(c, node, 4), my = getf(c, node, 5),
                mz = getf(c, node, 6);
    c.compute(6);
    return (x >= mx ? 1 : 0) | (y >= my ? 2 : 0) | (z >= mz ? 4 : 0);
  }

  /// Child box center for an octant.
  static void childBox(float mx, float my, float mz, float hs, int oct,
                       float* ox, float* oy, float* oz, float* ohs) {
    *ohs = hs * 0.5f;
    *ox = mx + ((oct & 1) != 0 ? *ohs : -*ohs);
    *oy = my + ((oct & 2) != 0 ? *ohs : -*ohs);
    *oz = mz + ((oct & 4) != 0 ? *ohs : -*ohs);
  }

  /// Insert a body into the shared tree starting at `from`, locking the
  /// parent cell around each slot mutation (SPLASH-style).
  void insertShared(Ctx& c, std::int32_t b, int from) {
    const float x = bx.get(c, static_cast<std::size_t>(b));
    const float y = by.get(c, static_cast<std::size_t>(b));
    const float z = bz.get(c, static_cast<std::size_t>(b));
    int cur = from;
    for (;;) {
      const int oct = octantOf(c, cur, x, y, z);
      const int lk = cellLock(cur);
      c.lock(lk);
      const std::int32_t slot = geti(c, cur, 2 + static_cast<std::size_t>(oct));
      if (slot == -1) {
        float ox, oy, oz, ohs;
        childBox(getf(c, cur, 4), getf(c, cur, 5), getf(c, cur, 6),
                 getf(c, cur, 7), oct, &ox, &oy, &oz, &ohs);
        const int leaf = allocNode(c, kLeaf, geti(c, cur, 10) + 1, ox, oy, oz,
                                   ohs);
        seti(c, leaf, 2, b);
        seti(c, leaf, 1, 1);
        body_leaf.set(c, static_cast<std::size_t>(b), leaf);
        seti(c, cur, 2 + static_cast<std::size_t>(oct), leaf);
        c.unlock(lk);
        return;
      }
      if (geti(c, slot, 0) == kLeaf) {
        // Mutating (or splitting) a leaf requires the leaf's lock as
        // well as the parent's: the update-tree variant removes bodies
        // under the leaf's lock alone. Acquire the pair in sorted id
        // order (deadlock-free under the hashed lock pool) and
        // revalidate the slot pointer, which may have changed while no
        // lock was held.
        const int lkl = cellLock(slot);
        if (lkl != lk) {
          c.unlock(lk);
          c.lock(std::min(lk, lkl));
          c.lock(std::max(lk, lkl));
          if (geti(c, cur, 2 + static_cast<std::size_t>(oct)) != slot) {
            c.unlock(std::max(lk, lkl));
            c.unlock(std::min(lk, lkl));
            continue;  // slot replaced while unlocked: retry this cell
          }
        }
        const auto unlockBoth = [&] {
          if (lkl != lk) c.unlock(std::max(lk, lkl));
          c.unlock(std::min(lk, lkl));
        };
        const std::int32_t cnt = geti(c, slot, 1);
        const int level = geti(c, slot, 10);
        if (cnt < kLeafCap || (level >= kMaxLevel && cnt < kLeafMax)) {
          seti(c, slot, 2 + static_cast<std::size_t>(cnt), b);
          seti(c, slot, 1, cnt + 1);
          body_leaf.set(c, static_cast<std::size_t>(b), slot);
          unlockBoth();
          return;
        }
        // Split: privately rebuild the leaf's bodies plus ours into a
        // replacement subtree (9 bodies force an internal node), then
        // publish it in the parent slot.
        std::vector<std::int32_t> moved;
        for (std::int32_t k = 0; k < cnt; ++k) {
          moved.push_back(geti(c, slot, 2 + static_cast<std::size_t>(k)));
        }
        moved.push_back(b);
        const int sub = buildPrivate(c, moved, getf(c, slot, 4),
                                     getf(c, slot, 5), getf(c, slot, 6),
                                     getf(c, slot, 7), level,
                                     /*with_com=*/false);
        seti(c, cur, 2 + static_cast<std::size_t>(oct), sub);
        unlockBoth();
        return;
      }
      c.unlock(lk);
      cur = slot;
    }
  }

  /// Build a private subtree over `bodies` (invisible to other
  /// processors until linked, so no locking). Optionally computes
  /// centers of mass bottom-up.
  int buildPrivate(Ctx& c, const std::vector<std::int32_t>& bodies, float mx,
                   float my, float mz, float hs, int level, bool with_com) {
    if (bodies.size() <= static_cast<std::size_t>(kLeafCap) ||
        (level >= kMaxLevel && bodies.size() <= static_cast<std::size_t>(kLeafMax))) {
      const int leaf = allocNode(c, kLeaf, level, mx, my, mz, hs);
      float m = 0, cx = 0, cy = 0, cz = 0;
      for (std::size_t k = 0; k < bodies.size(); ++k) {
        seti(c, leaf, 2 + k, bodies[k]);
        if (with_com) {
          const auto bi = static_cast<std::size_t>(bodies[k]);
          const float w = bm.get(c, bi);
          m += w;
          cx += w * bx.get(c, bi);
          cy += w * by.get(c, bi);
          cz += w * bz.get(c, bi);
          c.compute(8);
        }
        body_leaf.set(c, bodies[k], leaf);
      }
      seti(c, leaf, 1, static_cast<std::int32_t>(bodies.size()));
      if (with_com && m > 0) {
        setf(c, leaf, 0, m);
        setf(c, leaf, 1, cx / m);
        setf(c, leaf, 2, cy / m);
        setf(c, leaf, 3, cz / m);
        c.compute(10);
      }
      return leaf;
    }
    if (level >= kMaxLevel) {
      throw std::runtime_error("barnes: leaf overflow at depth limit");
    }
    const int cell = allocNode(c, kInternal, level, mx, my, mz, hs);
    std::array<std::vector<std::int32_t>, 8> split;
    for (std::int32_t b : bodies) {
      const auto bi = static_cast<std::size_t>(b);
      const float x = bx.get(c, bi), y = by.get(c, bi), z = bz.get(c, bi);
      const int oct = (x >= mx ? 1 : 0) | (y >= my ? 2 : 0) | (z >= mz ? 4 : 0);
      c.compute(6);
      split[static_cast<std::size_t>(oct)].push_back(b);
    }
    float m = 0, cx = 0, cy = 0, cz = 0;
    for (int oct = 0; oct < 8; ++oct) {
      if (split[static_cast<std::size_t>(oct)].empty()) continue;
      float ox, oy, oz, ohs;
      childBox(mx, my, mz, hs, oct, &ox, &oy, &oz, &ohs);
      const int child = buildPrivate(c, split[static_cast<std::size_t>(oct)],
                                     ox, oy, oz, ohs, level + 1, with_com);
      seti(c, cell, 2 + static_cast<std::size_t>(oct), child);
      if (with_com) {
        const float w = getf(c, child, 0);
        m += w;
        cx += w * getf(c, child, 1);
        cy += w * getf(c, child, 2);
        cz += w * getf(c, child, 3);
        c.compute(8);
      }
    }
    if (with_com && m > 0) {
      setf(c, cell, 0, m);
      setf(c, cell, 1, cx / m);
      setf(c, cell, 2, cy / m);
      setf(c, cell, 3, cz / m);
      c.compute(10);
    }
    return cell;
  }

  /// Merge a (private) subtree `l` into shared cell `g` (Partree). The
  /// slot is re-examined under the lock each time, since concurrent
  /// mergers may change it between our peek and our write.
  void mergeInto(Ctx& c, int g, int l) {
    for (int oct = 0; oct < 8; ++oct) {
      const std::int32_t lslot = geti(c, l, 2 + static_cast<std::size_t>(oct));
      if (lslot == -1) continue;
      const int lk = cellLock(g);
      c.lock(lk);
      const std::int32_t gslot = geti(c, g, 2 + static_cast<std::size_t>(oct));
      if (gslot == -1) {
        seti(c, g, 2 + static_cast<std::size_t>(oct), lslot);
        c.unlock(lk);
        continue;
      }
      const bool g_leaf = geti(c, gslot, 0) == kLeaf;
      const bool l_leaf = geti(c, lslot, 0) == kLeaf;
      if (!g_leaf) {
        c.unlock(lk);
        if (l_leaf) {
          reinsertLeaf(c, lslot, gslot);
        } else {
          mergeInto(c, gslot, lslot);
        }
        continue;
      }
      if (!l_leaf) {
        // Swap our internal subtree in (still under the lock, so nobody
        // else can have replaced the leaf), then reinsert its bodies.
        seti(c, g, 2 + static_cast<std::size_t>(oct), lslot);
        c.unlock(lk);
        reinsertLeaf(c, gslot, lslot);
      } else {
        // Both leaves: keep the shared one, reinsert ours through the
        // parent (insertShared re-locks and handles any interleaving).
        c.unlock(lk);
        reinsertLeaf(c, lslot, g);
      }
    }
  }

  void reinsertLeaf(Ctx& c, int leaf, int into) {
    const std::int32_t cnt = geti(c, leaf, 1);
    for (std::int32_t k = 0; k < cnt; ++k) {
      insertShared(c, geti(c, leaf, 2 + static_cast<std::size_t>(k)), into);
    }
  }

  /// Level-synchronized parallel center-of-mass pass over owned cells
  /// (deepest level first; a barrier separates levels so children are
  /// always ready).
  void computeComLevels(Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    for (int lev = max_level; lev >= 0; --lev) {
      for (std::int32_t node : owned[me][static_cast<std::size_t>(lev)]) {
        comOfNode(c, node);
      }
      c.barrier(bar);
    }
  }

  void comOfNode(Ctx& c, int node) {
    float m = 0, cx = 0, cy = 0, cz = 0;
    if (geti(c, node, 0) == kLeaf) {
      const std::int32_t cnt = geti(c, node, 1);
      for (std::int32_t k = 0; k < cnt; ++k) {
        const auto bi = static_cast<std::size_t>(
            geti(c, node, 2 + static_cast<std::size_t>(k)));
        const float w = bm.get(c, bi);
        m += w;
        cx += w * bx.get(c, bi);
        cy += w * by.get(c, bi);
        cz += w * bz.get(c, bi);
        c.compute(8);
      }
    } else {
      for (int oct = 0; oct < 8; ++oct) {
        const std::int32_t ch = geti(c, node, 2 + static_cast<std::size_t>(oct));
        if (ch == -1) continue;
        const float w = getf(c, ch, 0);
        m += w;
        cx += w * getf(c, ch, 1);
        cy += w * getf(c, ch, 2);
        cz += w * getf(c, ch, 3);
        c.compute(8);
      }
    }
    setf(c, node, 0, m);
    if (m > 0) {
      setf(c, node, 1, cx / m);
      setf(c, node, 2, cy / m);
      setf(c, node, 3, cz / m);
    }
    c.compute(12);
  }

  /// Barnes-Hut force on one body (iterative traversal).
  void force(Ctx& c, std::int32_t b) {
    const auto bi = static_cast<std::size_t>(b);
    const double x = bx.get(c, bi), y = by.get(c, bi), z = bz.get(c, bi);
    double ax = 0, ay = 0, az = 0;
    int stack[512];
    int sp = 0;
    stack[sp++] = root;
    while (sp > 0) {
      const int node = stack[--sp];
      const float m = getf(c, node, 0);
      if (m <= 0) continue;
      const double dx = getf(c, node, 1) - x;
      const double dy = getf(c, node, 2) - y;
      const double dz = getf(c, node, 3) - z;
      const double d2 = dx * dx + dy * dy + dz * dz + kEps2;
      const float hs = getf(c, node, 7);
      c.compute(15);
      const bool leaf = geti(c, node, 0) == kLeaf;
      if (!leaf && (2.0 * hs) * (2.0 * hs) > kTheta * kTheta * d2) {
        for (int oct = 0; oct < 8; ++oct) {
          const std::int32_t ch =
              geti(c, node, 2 + static_cast<std::size_t>(oct));
          if (ch != -1) stack[sp++] = ch;
        }
        c.compute(8);
        continue;
      }
      if (leaf) {
        const std::int32_t cnt = geti(c, node, 1);
        for (std::int32_t k = 0; k < cnt; ++k) {
          const auto oi = static_cast<std::size_t>(
              geti(c, node, 2 + static_cast<std::size_t>(k)));
          if (oi == bi) continue;
          const double ox = bx.get(c, oi) - x;
          const double oy = by.get(c, oi) - y;
          const double oz = bz.get(c, oi) - z;
          const double od2 = ox * ox + oy * oy + oz * oz + kEps2;
          const double w = bm.get(c, oi) / (od2 * std::sqrt(od2));
          ax += w * ox;
          ay += w * oy;
          az += w * oz;
          c.compute(25);
        }
      } else {
        const double w = m / (d2 * std::sqrt(d2));
        ax += w * dx;
        ay += w * dy;
        az += w * dz;
        c.compute(25);
      }
    }
    bax.set(c, bi, static_cast<float>(ax));
    bay.set(c, bi, static_cast<float>(ay));
    baz.set(c, bi, static_cast<float>(az));
  }
};

/// Direct-summation reference acceleration for one body (host side).
void directForce(const std::vector<float>& x, const std::vector<float>& y,
                 const std::vector<float>& z, const std::vector<float>& m,
                 std::size_t i, double* ax, double* ay, double* az) {
  *ax = *ay = *az = 0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (j == i) continue;
    const double dx = x[j] - x[i], dy = y[j] - y[i], dz = z[j] - z[i];
    const double d2 = dx * dx + dy * dy + dz * dz + kEps2;
    const double w = m[j] / (d2 * std::sqrt(d2));
    *ax += w * dx;
    *ay += w * dy;
    *az += w * dz;
  }
}

AppResult runImpl(Platform& plat, const AppParams& prm, Variant variant) {
  BarnesSim sim(plat, prm, variant);
  const std::size_t N = sim.N;
  const int P = sim.P;

  // Untimed init: Plummer-like clustered distribution.
  std::mt19937_64 rng(prm.seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (std::size_t i = 0; i < N; ++i) {
    // A few gaussian clusters of different densities.
    const int cluster = static_cast<int>(u(rng) * 4);
    const double cxs[4] = {-0.5, 0.6, 0.1, -0.2};
    const double cys[4] = {-0.4, 0.3, 0.5, -0.6};
    const double czs[4] = {0.2, -0.5, 0.4, -0.1};
    const double sig[4] = {0.08, 0.15, 0.25, 0.05};
    sim.bx.raw(i) = static_cast<float>(cxs[cluster] + sig[cluster] * gauss(rng));
    sim.by.raw(i) = static_cast<float>(cys[cluster] + sig[cluster] * gauss(rng));
    sim.bz.raw(i) = static_cast<float>(czs[cluster] + sig[cluster] * gauss(rng));
    sim.bvx.raw(i) = static_cast<float>(0.05 * gauss(rng));
    sim.bvy.raw(i) = static_cast<float>(0.05 * gauss(rng));
    sim.bvz.raw(i) = static_cast<float>(0.05 * gauss(rng));
    sim.bm.raw(i) = static_cast<float>(0.5 + u(rng)) / static_cast<float>(N);
    sim.body_leaf.raw(i) = -1;
  }

  // Verification snapshots, recorded (untimed) at the last force phase.
  std::vector<float> vx_snap, vy_snap, vz_snap, vm_snap, fax, fay, faz;

  plat.run([&](Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    const std::size_t lo = me * N / static_cast<std::size_t>(P);
    const std::size_t hi = (me + 1) * N / static_cast<std::size_t>(P);

    for (int step = 0; step < prm.iters; ++step) {
      const bool rebuild = variant != Variant::UpdateTree || step == 0;
      // -- bounding box (skipped when the tree persists) --
      if (rebuild) {
        float mn[3] = {1e30f, 1e30f, 1e30f}, mx[3] = {-1e30f, -1e30f, -1e30f};
        for (std::size_t i = lo; i < hi; ++i) {
          const float vx = sim.bx.get(c, i), vy = sim.by.get(c, i),
                      vz = sim.bz.get(c, i);
          mn[0] = std::min(mn[0], vx); mx[0] = std::max(mx[0], vx);
          mn[1] = std::min(mn[1], vy); mx[1] = std::max(mx[1], vy);
          mn[2] = std::min(mn[2], vz); mx[2] = std::max(mx[2], vz);
          c.compute(6);
        }
        const std::size_t slot = me * (kPageBytes / 4);
        for (int a = 0; a < 3; ++a) {
          sim.redsl.set(c, slot + static_cast<std::size_t>(a), mn[a]);
          sim.redsl.set(c, slot + 3 + static_cast<std::size_t>(a), mx[a]);
        }
        c.barrier(sim.bar);
        if (me == 0) {
          float gmn[3] = {1e30f, 1e30f, 1e30f},
                gmx[3] = {-1e30f, -1e30f, -1e30f};
          for (int q = 0; q < P; ++q) {
            const std::size_t qs =
                static_cast<std::size_t>(q) * (kPageBytes / 4);
            for (int a = 0; a < 3; ++a) {
              gmn[a] = std::min(gmn[a],
                                sim.redsl.get(c, qs + static_cast<std::size_t>(a)));
              gmx[a] = std::max(
                  gmx[a], sim.redsl.get(c, qs + 3 + static_cast<std::size_t>(a)));
            }
          }
          const float hs =
              0.5f * std::max({gmx[0] - gmn[0], gmx[1] - gmn[1],
                               gmx[2] - gmn[2]}) +
              0.01f;
          sim.gbox.set(c, 0, 0.5f * (gmn[0] + gmx[0]));
          sim.gbox.set(c, 1, 0.5f * (gmn[1] + gmx[1]));
          sim.gbox.set(c, 2, 0.5f * (gmn[2] + gmx[2]));
          sim.gbox.set(c, 3, hs);
          c.compute(40);
        }
        c.barrier(sim.bar);
      }

      // -- tree construction --
      if (rebuild) {
        if (me == 0) {
          // Fresh pool and a fresh root.
          for (int q = 0; q < P; ++q) {
            for (auto& lvl : sim.owned[static_cast<std::size_t>(q)]) lvl.clear();
          }
          sim.max_level = 0;
          const std::size_t per = sim.cap / static_cast<std::size_t>(P) + 1;
          for (int q = 0; q < P; ++q) {
            sim.heap_next[static_cast<std::size_t>(q)] =
                static_cast<std::int32_t>(static_cast<std::size_t>(q) * per);
            sim.chunk_next[static_cast<std::size_t>(q)] = 0;
            sim.chunk_end[static_cast<std::size_t>(q)] = 0;
          }
          sim.pool_next.set(c, 0, 0);
          sim.root = sim.allocNode(c, kInternal, 0, sim.gbox.get(c, 0),
                                   sim.gbox.get(c, 1), sim.gbox.get(c, 2),
                                   sim.gbox.get(c, 3));
        }
        c.barrier(sim.bar);
      }

      switch (variant) {
        case Variant::Orig:
        case Variant::PA:
        case Variant::DS: {
          for (std::size_t i = lo; i < hi; ++i) {
            sim.insertShared(c, static_cast<std::int32_t>(i), sim.root);
          }
          c.barrier(sim.bar);
          sim.computeComLevels(c);
          break;
        }
        case Variant::UpdateTree: {
          if (step == 0) {
            for (std::size_t i = lo; i < hi; ++i) {
              sim.insertShared(c, static_cast<std::int32_t>(i), sim.root);
            }
          } else {
            // Move only bodies that left their leaf's box. The leaf id
            // and its box are peeked without a lock (annotated racy): a
            // concurrent split may be re-homing the body this instant,
            // so the locked removal below revalidates, and a stale
            // "still inside" verdict is corrected next step.
            for (std::size_t i = lo; i < hi; ++i) {
              const std::int32_t leaf = sim.body_leaf.getRacy(c, i);
              const float x = sim.bx.get(c, i), y = sim.by.get(c, i),
                          z = sim.bz.get(c, i);
              const float mx = sim.getfRacy(c, leaf, 4),
                          my = sim.getfRacy(c, leaf, 5),
                          mz = sim.getfRacy(c, leaf, 6),
                          hs = sim.getfRacy(c, leaf, 7);
              c.compute(10);
              if (std::abs(x - mx) <= hs && std::abs(y - my) <= hs &&
                  std::abs(z - mz) <= hs) {
                continue;
              }
              // Remove from the old leaf (locked), insert from the
              // root. If the body is no longer listed there, a
              // concurrent split already re-homed it by its current
              // position -- nothing to reinsert.
              const int lk = sim.cellLock(leaf);
              c.lock(lk);
              const std::int32_t cnt = sim.geti(c, leaf, 1);
              bool removed = false;
              for (std::int32_t k = 0; k < cnt; ++k) {
                if (sim.geti(c, leaf, 2 + static_cast<std::size_t>(k)) ==
                    static_cast<std::int32_t>(i)) {
                  sim.seti(c, leaf, 2 + static_cast<std::size_t>(k),
                           sim.geti(c, leaf, 2 + static_cast<std::size_t>(cnt - 1)));
                  sim.seti(c, leaf, 1, cnt - 1);
                  removed = true;
                  break;
                }
              }
              c.unlock(lk);
              if (removed) {
                sim.insertShared(c, static_cast<std::int32_t>(i), sim.root);
              }
            }
          }
          c.barrier(sim.bar);
          sim.computeComLevels(c);
          break;
        }
        case Variant::Partree: {
          std::vector<std::int32_t> mine;
          mine.reserve(hi - lo);
          for (std::size_t i = lo; i < hi; ++i) {
            mine.push_back(static_cast<std::int32_t>(i));
          }
          const int local = sim.buildPrivate(
              c, mine, sim.gbox.get(c, 0), sim.gbox.get(c, 1),
              sim.gbox.get(c, 2), sim.gbox.get(c, 3), 0, /*with_com=*/false);
          if (sim.geti(c, local, 0) == kLeaf) {
            sim.reinsertLeaf(c, local, sim.root);
          } else {
            sim.mergeInto(c, sim.root, local);
          }
          c.barrier(sim.bar);
          sim.computeComLevels(c);
          break;
        }
        case Variant::Spatial: {
          // Static two-level skeleton below the root: 64 equal subspaces
          // dealt round-robin. Each processor gathers the bodies in its
          // subspaces (scanning the body array) and builds those
          // subtrees without any locks.
          if (me == 0) {
            // Build the skeleton: 8 children, 64 grandchildren.
            for (int o1 = 0; o1 < 8; ++o1) {
              float ox, oy, oz, ohs;
              BarnesSim::childBox(sim.gbox.get(c, 0), sim.gbox.get(c, 1),
                                  sim.gbox.get(c, 2), sim.gbox.get(c, 3), o1,
                                  &ox, &oy, &oz, &ohs);
              const int ch = sim.allocNode(c, kInternal, 1, ox, oy, oz, ohs);
              sim.seti(c, sim.root, 2 + static_cast<std::size_t>(o1), ch);
              for (int o2 = 0; o2 < 8; ++o2) {
                float gx, gy, gz, ghs;
                BarnesSim::childBox(ox, oy, oz, ohs, o2, &gx, &gy, &gz, &ghs);
                const int gc = sim.allocNode(c, kInternal, 2, gx, gy, gz, ghs);
                sim.seti(c, ch, 2 + static_cast<std::size_t>(o2), gc);
              }
            }
          }
          c.barrier(sim.bar);
          // Gather bodies per owned subspace.
          std::array<std::vector<std::int32_t>, 64> boxes;
          const float rx = sim.gbox.get(c, 0), ry = sim.gbox.get(c, 1),
                      rz = sim.gbox.get(c, 2), rhs = sim.gbox.get(c, 3);
          for (std::size_t i = 0; i < N; ++i) {
            const float x = sim.bx.get(c, i), y = sim.by.get(c, i),
                        z = sim.bz.get(c, i);
            const int o1 = (x >= rx ? 1 : 0) | (y >= ry ? 2 : 0) |
                           (z >= rz ? 4 : 0);
            float ox, oy, oz, ohs;
            BarnesSim::childBox(rx, ry, rz, rhs, o1, &ox, &oy, &oz, &ohs);
            const int o2 = (x >= ox ? 1 : 0) | (y >= oy ? 2 : 0) |
                           (z >= oz ? 4 : 0);
            const int sub = o1 * 8 + o2;
            c.compute(10);
            if (sub % P == c.id()) {
              boxes[static_cast<std::size_t>(sub)].push_back(
                  static_cast<std::int32_t>(i));
            }
          }
          for (int sub = 0; sub < 64; ++sub) {
            if (sub % P != c.id()) continue;
            const int o1 = sub / 8, o2 = sub % 8;
            float ox, oy, oz, ohs, gx, gy, gz, ghs;
            BarnesSim::childBox(rx, ry, rz, rhs, o1, &ox, &oy, &oz, &ohs);
            BarnesSim::childBox(ox, oy, oz, ohs, o2, &gx, &gy, &gz, &ghs);
            const int gc = sim.geti(
                c, sim.geti(c, sim.root, 2 + static_cast<std::size_t>(o1)),
                2 + static_cast<std::size_t>(o2));
            if (boxes[static_cast<std::size_t>(sub)].empty()) {
              sim.setf(c, gc, 0, 0.0f);
              continue;
            }
            // Build under the grandchild: one subtree per occupied octant.
            std::array<std::vector<std::int32_t>, 8> parts;
            for (std::int32_t b : boxes[static_cast<std::size_t>(sub)]) {
              const auto bi = static_cast<std::size_t>(b);
              const int o3 = (sim.bx.get(c, bi) >= gx ? 1 : 0) |
                             (sim.by.get(c, bi) >= gy ? 2 : 0) |
                             (sim.bz.get(c, bi) >= gz ? 4 : 0);
              c.compute(6);
              parts[static_cast<std::size_t>(o3)].push_back(b);
            }
            float m = 0, cx = 0, cy = 0, cz = 0;
            for (int o3 = 0; o3 < 8; ++o3) {
              if (parts[static_cast<std::size_t>(o3)].empty()) continue;
              float hx, hy, hz, hhs;
              BarnesSim::childBox(gx, gy, gz, ghs, o3, &hx, &hy, &hz, &hhs);
              const int child = sim.buildPrivate(
                  c, parts[static_cast<std::size_t>(o3)], hx, hy, hz, hhs, 3,
                  /*with_com=*/true);
              sim.seti(c, gc, 2 + static_cast<std::size_t>(o3), child);
              const float w = sim.getf(c, child, 0);
              m += w;
              cx += w * sim.getf(c, child, 1);
              cy += w * sim.getf(c, child, 2);
              cz += w * sim.getf(c, child, 3);
              c.compute(8);
            }
            sim.setf(c, gc, 0, m);
            if (m > 0) {
              sim.setf(c, gc, 1, cx / m);
              sim.setf(c, gc, 2, cy / m);
              sim.setf(c, gc, 3, cz / m);
            }
          }
          c.barrier(sim.bar);
          if (me == 0) {
            // Centers of mass for the skeleton (65 nodes).
            for (int o1 = 0; o1 < 8; ++o1) {
              const int ch =
                  sim.geti(c, sim.root, 2 + static_cast<std::size_t>(o1));
              sim.comOfNode(c, ch);
            }
            sim.comOfNode(c, sim.root);
          }
          c.barrier(sim.bar);
          break;
        }
      }

      // -- force calculation --
      for (std::size_t i = lo; i < hi; ++i) {
        sim.force(c, static_cast<std::int32_t>(i));
      }
      c.barrier(sim.bar);

      if (step == prm.iters - 1 && me == 0) {
        // Snapshot for verification (host-side bookkeeping, untimed).
        vx_snap.resize(N); vy_snap.resize(N); vz_snap.resize(N);
        vm_snap.resize(N); fax.resize(N); fay.resize(N); faz.resize(N);
        for (std::size_t i = 0; i < N; ++i) {
          vx_snap[i] = sim.bx.raw(i);
          vy_snap[i] = sim.by.raw(i);
          vz_snap[i] = sim.bz.raw(i);
          vm_snap[i] = sim.bm.raw(i);
          fax[i] = sim.bax.raw(i);
          fay[i] = sim.bay.raw(i);
          faz[i] = sim.baz.raw(i);
        }
      }
      c.barrier(sim.bar);

      // -- integrate --
      for (std::size_t i = lo; i < hi; ++i) {
        const float nvx = sim.bvx.get(c, i) +
                          static_cast<float>(kDt) * sim.bax.get(c, i);
        const float nvy = sim.bvy.get(c, i) +
                          static_cast<float>(kDt) * sim.bay.get(c, i);
        const float nvz = sim.bvz.get(c, i) +
                          static_cast<float>(kDt) * sim.baz.get(c, i);
        sim.bvx.set(c, i, nvx);
        sim.bvy.set(c, i, nvy);
        sim.bvz.set(c, i, nvz);
        sim.bx.set(c, i, sim.bx.get(c, i) + static_cast<float>(kDt) * nvx);
        sim.by.set(c, i, sim.by.get(c, i) + static_cast<float>(kDt) * nvy);
        sim.bz.set(c, i, sim.bz.get(c, i) + static_cast<float>(kDt) * nvz);
        c.compute(20);
      }
      c.barrier(sim.bar);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // Verify sampled accelerations against direct summation.
  std::mt19937_64 vrng(prm.seed ^ 0x5EEDu);
  const int samples = static_cast<int>(std::min<std::size_t>(N, 128));
  double err_sum = 0;
  for (int s = 0; s < samples; ++s) {
    const std::size_t i = vrng() % N;
    double ax, ay, az;
    directForce(vx_snap, vy_snap, vz_snap, vm_snap, i, &ax, &ay, &az);
    const double mag = std::sqrt(ax * ax + ay * ay + az * az) + 1e-12;
    const double dx = fax[i] - ax, dy = fay[i] - ay, dz = faz[i] - az;
    err_sum += std::sqrt(dx * dx + dy * dy + dz * dz) / mag;
  }
  const double mean_err = err_sum / samples;
  res.correct = mean_err < 0.05;
  res.note = "mean relative force error " + std::to_string(mean_err);
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  return runImpl(plat, prm, v);
}

AppDesc describe() {
  AppDesc d;
  d.name = "barnes";
  d.summary = "Barnes-Hut hierarchical N-body (SPLASH/SPLASH-2)";
  d.tiny = {.n = 512, .iters = 2, .block = 0, .seed = 23};
  d.small = {.n = 4096, .iters = 3, .block = 0, .seed = 23};
  d.paper = {.n = 16384, .iters = 2, .block = 0, .seed = 23};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("orig", OptClass::Orig, "shared tree, global cell pool, cell locks",
          Variant::Orig),
      ver("pa", OptClass::PA, "page-chunked cell pool (padding/alignment)",
          Variant::PA),
      ver("ds", OptClass::DS, "cells allocated from local per-processor heaps",
          Variant::DS),
      ver("update-tree", OptClass::Alg,
          "incremental tree update across time-steps", Variant::UpdateTree),
      ver("partree", OptClass::Alg, "lock-free local trees merged globally",
          Variant::Partree),
      ver("spatial", OptClass::Alg,
          "equal space partition, lock-free subtree builds",
          Variant::Spatial),
  };
  return d;
}

}  // namespace rsvm::apps::barnes
