// Chained hash table index (versions hash-orig / hash-pa). Buckets are
// head words into a shared node pool; every operation holds the
// bucket's stripe lock, and inserts allocate nodes from the processor's
// own free list of reclaimed nodes, falling back to a global bump
// cursor nested inside the bucket lock (bucket -> alloc order is
// consistent everywhere, so no deadlock). Deletes push the unlinked
// node onto the deleter's free list instead of leaking it; the reinsert
// phase pops it back. Node publication is ordered for readers by the
// bucket-lock release: a node's fields are written before the head is
// linked, all inside the critical section.
#include "apps/index/index_common.hpp"

#include "runtime/shared.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace rsvm::apps::index {
namespace {

constexpr std::size_t kLineWords = 8;

struct HashGeom {
  std::size_t nbuckets = 0;
  std::size_t hstride = 0;  ///< words per bucket head
  std::size_t nstride = 0;  ///< words per node: [key, value, next]
  std::size_t nlocks = 0;
};

std::size_t bucketOf(std::uint64_t key, std::size_t nbuckets) {
  return key & (nbuckets - 1);
}

}  // namespace

AppResult runHash(Platform& plat, const AppParams& prm, bool padded) {
  const int P = plat.nprocs();
  HashGeom g;
  g.nbuckets = 16;
  while (g.nbuckets < static_cast<std::size_t>(prm.n) / 4) g.nbuckets *= 2;
  g.hstride = padded ? kLineWords : 1;
  g.nstride = padded ? kLineWords : 3;  // packed nodes straddle lines
  g.nlocks = std::min<std::size_t>(1024, g.nbuckets);

  SharedArray<std::int64_t> heads(plat, g.nbuckets * g.hstride,
                                  HomePolicy::roundRobin(P));
  for (std::size_t b = 0; b < g.nbuckets; ++b) heads.raw(b * g.hstride) = -1;
  const std::size_t cap = static_cast<std::size_t>(prm.n) + 8;
  SharedArray<std::int64_t> pool(plat, cap * g.nstride,
                                 HomePolicy::roundRobin(P),
                                 padded ? 64 : alignof(std::int64_t));
  Shared<std::int64_t> cursor(plat, HomePolicy::node(0));
  cursor.raw() = 0;
  const int alloc_lk = plat.makeLock();
  // Per-processor free lists of reclaimed nodes: one head word per
  // processor, touched only by its owner (deleter == reinserter == the
  // chunk owner), so no lock guards them. The padded version homes each
  // head on its owner's page; the packed version keeps them on node 0,
  // in the spirit of its unoptimized layout.
  const std::size_t fstride = padded ? (4096 / sizeof(std::int64_t)) : 1;
  SharedArray<std::int64_t> freeheads(
      plat, static_cast<std::size_t>(P) * fstride,
      padded ? HomePolicy{[](std::uint64_t page, std::uint64_t) {
        return static_cast<ProcId>(page);
      }}
             : HomePolicy::node(0),
      padded ? 4096 : alignof(std::int64_t));
  for (int p = 0; p < P; ++p) {
    freeheads.raw(static_cast<std::size_t>(p) * fstride) = -1;
  }
  std::vector<int> bucket_lks;
  for (std::size_t s = 0; s < g.nlocks; ++s) {
    bucket_lks.push_back(plat.makeLock());
  }
  const int bar = plat.makeBarrier();

  // Per-proc digests live host-side (fibers share one host thread);
  // what must agree across platforms is their *sum*.
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(P), 0);

  plat.run([&](Ctx& c) {
    const int me = c.id();
    std::uint64_t d = 0;

    auto insert = [&](std::uint64_t key, std::uint64_t val) {
      const std::size_t b = bucketOf(key, g.nbuckets);
      const int lk = bucket_lks[b & (g.nlocks - 1)];
      c.lock(lk);
      // Pop the own free list first (owner-only, lock-free); fall back
      // to the global bump cursor when it is empty.
      const std::size_t fh = static_cast<std::size_t>(me) * fstride;
      std::int64_t idx = freeheads.get(c, fh);
      if (idx >= 0) {
        freeheads.set(
            c, fh, pool.get(c, static_cast<std::size_t>(idx) * g.nstride + 2));
      } else {
        c.lock(alloc_lk);
        idx = cursor.get(c);
        cursor.set(c, idx + 1);
        c.unlock(alloc_lk);
      }
      ++c.stats().allocs;
      const auto at = static_cast<std::size_t>(idx) * g.nstride;
      pool.set(c, at + 0, static_cast<std::int64_t>(key));
      pool.set(c, at + 1, static_cast<std::int64_t>(val));
      pool.set(c, at + 2, heads.get(c, b * g.hstride));
      heads.set(c, b * g.hstride, idx);
      c.unlock(lk);
      c.compute(12);
    };

    /// Returns the value, or 0 with found=false.
    auto lookup = [&](std::uint64_t key, bool& found) -> std::uint64_t {
      const std::size_t b = bucketOf(key, g.nbuckets);
      const int lk = bucket_lks[b & (g.nlocks - 1)];
      c.lock(lk);
      std::int64_t cur = heads.get(c, b * g.hstride);
      std::uint64_t val = 0;
      found = false;
      while (cur >= 0) {
        c.compute(4);
        const auto at = static_cast<std::size_t>(cur) * g.nstride;
        if (static_cast<std::uint64_t>(pool.get(c, at)) == key) {
          val = static_cast<std::uint64_t>(pool.get(c, at + 1));
          found = true;
          break;
        }
        cur = pool.get(c, at + 2);
      }
      c.unlock(lk);
      return val;
    };

    auto remove = [&](std::uint64_t key) -> bool {
      const std::size_t b = bucketOf(key, g.nbuckets);
      const int lk = bucket_lks[b & (g.nlocks - 1)];
      c.lock(lk);
      std::int64_t cur = heads.get(c, b * g.hstride);
      std::int64_t prev = -1;
      bool found = false;
      while (cur >= 0) {
        c.compute(4);
        const auto at = static_cast<std::size_t>(cur) * g.nstride;
        if (static_cast<std::uint64_t>(pool.get(c, at)) == key) {
          const std::int64_t next = pool.get(c, at + 2);
          if (prev < 0) {
            heads.set(c, b * g.hstride, next);
          } else {
            pool.set(c, static_cast<std::size_t>(prev) * g.nstride + 2, next);
          }
          // Reclaim: the node is unreachable from any chain now, so
          // only this processor can touch it -- push it onto the own
          // free list for a later insert to reuse.
          const std::size_t fh = static_cast<std::size_t>(me) * fstride;
          pool.set(c, at + 2, freeheads.get(c, fh));
          freeheads.set(c, fh, cur);
          found = true;
          break;
        }
        prev = cur;
        cur = pool.get(c, at + 2);
      }
      c.unlock(lk);
      return found;
    };

    // Phase A: partitioned inserts.
    const Chunk own = chunkOf(me, P, prm.n);
    for (int j = own.lo; j < own.hi; ++j) {
      const std::uint64_t key = keyOf(prm.seed, j);
      insert(key, val0(key));
      d += mix3(kPhaseInsert, static_cast<std::uint64_t>(j), key);
    }
    c.barrier(bar);

    // Phase B: rotated lookup rounds (each key read by a different
    // processor each round; reads only, so no per-round barrier).
    for (int r = 0; r < prm.iters; ++r) {
      const Chunk ch = chunkOf((me + r + 1) % P, P, prm.n);
      for (int j = ch.lo; j < ch.hi; ++j) {
        bool found = false;
        const std::uint64_t v = lookup(keyOf(prm.seed, j), found);
        d += mix3(static_cast<std::uint64_t>(r) + 1,
                  static_cast<std::uint64_t>(j), found ? v : 0);
      }
    }
    c.barrier(bar);

    // Phase C: partitioned deletes of a fixed key subset.
    for (int j = own.lo; j < own.hi; ++j) {
      if (!deleted(j)) continue;
      const bool found = remove(keyOf(prm.seed, j));
      d += mix3(kPhaseMutate, static_cast<std::uint64_t>(j), found ? 1 : 0);
    }
    c.barrier(bar);

    // Phase C2: reinsert a subset of the deleted keys with fresh
    // values. Every reinserted(j) key was deleted by this same
    // processor in Phase C, so the own free list always has a node to
    // pop -- total allocations stay exactly n + #reinserted on every
    // platform and processor count.
    for (int j = own.lo; j < own.hi; ++j) {
      if (!reinserted(j)) continue;
      const std::uint64_t key = keyOf(prm.seed, j);
      insert(key, val1(key));
      d += mix3(kPhaseReinsert, static_cast<std::uint64_t>(j), key);
    }
    c.barrier(bar);

    // Phase D: rotated verify pass over every key.
    const Chunk vc = chunkOf((me + 1) % P, P, prm.n);
    for (int j = vc.lo; j < vc.hi; ++j) {
      bool found = false;
      const std::uint64_t v = lookup(keyOf(prm.seed, j), found);
      d += mix3(kPhaseVerify, static_cast<std::uint64_t>(j), found ? v : 0);
    }
    digests[static_cast<std::size_t>(me)] = d;
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // --- host-side replay: expected survivors and digests ---
  std::map<std::uint64_t, std::uint64_t> want;
  std::uint64_t want_result = 0;
  for (int j = 0; j < prm.n; ++j) {
    const std::uint64_t key = keyOf(prm.seed, j);
    const auto ju = static_cast<std::uint64_t>(j);
    want_result += mix3(kPhaseInsert, ju, key);
    for (int r = 0; r < prm.iters; ++r) {
      want_result += mix3(static_cast<std::uint64_t>(r) + 1, ju, val0(key));
    }
    if (deleted(j)) {
      want_result += mix3(kPhaseMutate, ju, 1);
      if (reinserted(j)) {
        want_result += mix3(kPhaseReinsert, ju, key);
        want_result += mix3(kPhaseVerify, ju, val1(key));
        want[key] = val1(key);
      } else {
        want_result += mix3(kPhaseVerify, ju, 0);
      }
    } else {
      want_result += mix3(kPhaseVerify, ju, val0(key));
      want[key] = val0(key);
    }
  }
  std::uint64_t want_allocs = static_cast<std::uint64_t>(prm.n);
  for (int j = 0; j < prm.n; ++j) {
    if (reinserted(j)) ++want_allocs;
  }

  // --- structural walk: every chain entry must be an expected survivor;
  // the state digest is commutative within a bucket (chain order depends
  // on insert interleaving) and ordered across buckets. ---
  std::uint64_t state = kFnvOffset;
  std::size_t walked = 0, bad = 0;
  for (std::size_t b = 0; b < g.nbuckets; ++b) {
    std::uint64_t bucket_sum = 0;
    for (std::int64_t cur = heads.raw(b * g.hstride); cur >= 0;) {
      const auto at = static_cast<std::size_t>(cur) * g.nstride;
      const auto key = static_cast<std::uint64_t>(pool.raw(at));
      const auto val = static_cast<std::uint64_t>(pool.raw(at + 1));
      const auto it = want.find(key);
      if (it == want.end() || it->second != val ||
          bucketOf(key, g.nbuckets) != b) {
        ++bad;
      }
      bucket_sum += mix2(key, val);
      ++walked;
      cur = pool.raw(at + 2);
    }
    state = fnvStep(state, bucket_sum);
  }
  const std::uint64_t got_result =
      [&] {
        std::uint64_t s = 0;
        for (std::uint64_t v : digests) s += v;
        return s;
      }();

  // Allocation count is part of the contract: the free list makes it a
  // pure function of n (n bump allocations + one reuse per reinsert),
  // identical on every platform and processor count.
  const std::uint64_t got_allocs = res.stats.sum(&ProcStats::allocs);
  res.correct = bad == 0 && walked == want.size() &&
                got_result == want_result && got_allocs == want_allocs;
  res.note = res.correct
                 ? "chains, op digests, and alloc count match serial replay"
                 : std::to_string(bad) + " bad entries; walked " +
                       std::to_string(walked) + "/" +
                       std::to_string(want.size()) + "; result " +
                       (got_result == want_result ? "ok" : "MISMATCH") +
                       "; allocs " + std::to_string(got_allocs) + "/" +
                       std::to_string(want_allocs);
  res.state_hash = state;
  res.result_hash = got_result;
  return res;
}

}  // namespace rsvm::apps::index
