// Lock-coupled B+-tree index (versions btree-orig / btree-ds). Fanout
// 8; nodes live in a shared pool with one pre-created lock per slot.
// Writers descend with preemptive top-down splits: a full child is
// split while its (never-full, locked) parent is still held, so no
// ancestor stack is ever retained and lock order is strictly root ->
// leaf (plus the root-pointer lock above everything), which excludes
// deadlock. Readers lock-couple the same way.
//
// Publication ordering (what keeps the race checker clean): a freshly
// allocated sibling's fields are written *without* its node lock, but
// always inside the parent's critical section -- a reader can only find
// the sibling through the parent, and acquiring the parent's lock after
// the splitter released it orders the sibling's initialization before
// the reader's visit (vector-clock release/acquire, transitively).
#include "apps/index/index_common.hpp"

#include "runtime/shared.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace rsvm::apps::index {
namespace {

constexpr std::size_t kF = 8;          ///< max keys per node
constexpr std::size_t kPageWords = 512;
// Node field offsets (words): count, leaf flag, right-sibling link,
// keys[kF], then values (leaf) or children (interior) [kF + 1].
constexpr std::size_t kNK = 0;
constexpr std::size_t kLeaf = 1;
constexpr std::size_t kNext = 2;
constexpr std::size_t kKey0 = 3;
constexpr std::size_t kKid0 = 3 + kF;
constexpr std::size_t kNodeWords = kKid0 + kF + 1;  // 20

struct BTree {
  SharedArray<std::int64_t> pool;
  Shared<std::int64_t> rootptr;
  Shared<std::int64_t> gcur;          ///< global bump cursor (slots)
  SharedArray<std::int64_t> subcur;   ///< per-proc cursors (ds), page apart
  std::vector<int> node_lks;
  int root_lk = -1, alloc_lk = -1;
  std::size_t stride = 0;   ///< words per node slot
  std::size_t per_cap = 0;  ///< slots per processor sub-pool (ds)
  std::size_t global_off = 0;

  // Timed field accessors.
  std::int64_t get(Ctx& c, std::int64_t node, std::size_t off) const {
    return pool.get(c, static_cast<std::size_t>(node) * stride + off);
  }
  void set(Ctx& c, std::int64_t node, std::size_t off, std::int64_t v) {
    pool.set(c, static_cast<std::size_t>(node) * stride + off, v);
  }
  void lockN(Ctx& c, std::int64_t node) const {
    c.lock(node_lks[static_cast<std::size_t>(node)]);
  }
  void unlockN(Ctx& c, std::int64_t node) const {
    c.unlock(node_lks[static_cast<std::size_t>(node)]);
  }

  std::int64_t alloc(Ctx& c, bool leaf) {
    ++c.stats().allocs;
    std::int64_t idx = -1;
    if (per_cap > 0) {
      const auto me = static_cast<std::size_t>(c.id());
      const std::int64_t cur = subcur.get(c, me * kPageWords);
      if (static_cast<std::size_t>(cur) < per_cap) {
        subcur.set(c, me * kPageWords, cur + 1);
        idx = static_cast<std::int64_t>(me * per_cap) + cur;
      }
    }
    if (idx < 0) {
      c.lock(alloc_lk);
      const std::int64_t cur = gcur.get(c);
      gcur.set(c, cur + 1);
      c.unlock(alloc_lk);
      idx = static_cast<std::int64_t>(global_off) + cur;
    }
    set(c, idx, kNK, 0);
    set(c, idx, kLeaf, leaf ? 1 : 0);
    set(c, idx, kNext, -1);
    return idx;
  }

  /// First child slot whose subtree may hold `key` (first separator
  /// greater than key); also the insertion point within a leaf's keys.
  std::size_t findSlot(Ctx& c, std::int64_t node, std::uint64_t key) const {
    const auto nk = static_cast<std::size_t>(get(c, node, kNK));
    std::size_t i = 0;
    while (i < nk &&
           static_cast<std::uint64_t>(get(c, node, kKey0 + i)) <= key) {
      c.compute(2);
      ++i;
    }
    return i;
  }

  /// Split full `child` (kid `slot` of locked, non-full `parent`);
  /// returns the new right sibling. Caller holds both locks.
  std::int64_t splitChild(Ctx& c, std::int64_t parent, std::size_t slot,
                          std::int64_t child) {
    const bool leaf = get(c, child, kLeaf) != 0;
    const std::int64_t sib = alloc(c, leaf);
    const std::size_t m = kF / 2;
    std::int64_t sep;
    if (leaf) {
      for (std::size_t i = m; i < kF; ++i) {
        set(c, sib, kKey0 + (i - m), get(c, child, kKey0 + i));
        set(c, sib, kKid0 + (i - m), get(c, child, kKid0 + i));
      }
      set(c, sib, kNK, static_cast<std::int64_t>(kF - m));
      set(c, sib, kNext, get(c, child, kNext));
      set(c, child, kNext, sib);
      sep = get(c, sib, kKey0);  // duplicated into the parent
    } else {
      sep = get(c, child, kKey0 + m);
      for (std::size_t i = m + 1; i < kF; ++i) {
        set(c, sib, kKey0 + (i - m - 1), get(c, child, kKey0 + i));
      }
      for (std::size_t i = m + 1; i <= kF; ++i) {
        set(c, sib, kKid0 + (i - m - 1), get(c, child, kKid0 + i));
      }
      set(c, sib, kNK, static_cast<std::int64_t>(kF - m - 1));
    }
    set(c, child, kNK, static_cast<std::int64_t>(m));
    // Shift the parent's keys/kids right and link (sep, sib) at slot.
    const auto pk = static_cast<std::size_t>(get(c, parent, kNK));
    for (std::size_t i = pk; i > slot; --i) {
      set(c, parent, kKey0 + i, get(c, parent, kKey0 + i - 1));
      set(c, parent, kKid0 + i + 1, get(c, parent, kKid0 + i));
    }
    set(c, parent, kKey0 + slot, sep);
    set(c, parent, kKid0 + slot + 1, sib);
    set(c, parent, kNK, static_cast<std::int64_t>(pk + 1));
    c.compute(24);
    return sib;
  }

  void insert(Ctx& c, std::uint64_t key, std::uint64_t val) {
    c.lock(root_lk);
    std::int64_t cur = rootptr.get(c);
    lockN(c, cur);
    if (static_cast<std::size_t>(get(c, cur, kNK)) == kF) {  // grow the tree
      const std::int64_t nr = alloc(c, /*leaf=*/false);
      set(c, nr, kKid0, cur);
      const std::int64_t sib = splitChild(c, nr, 0, cur);
      rootptr.set(c, nr);
      if (key >= static_cast<std::uint64_t>(get(c, nr, kKey0))) {
        lockN(c, sib);
        unlockN(c, cur);
        cur = sib;
      }
    }
    c.unlock(root_lk);
    for (;;) {
      c.compute(8);
      if (get(c, cur, kLeaf) != 0) {
        // Guaranteed non-full: shift and place.
        const auto nk = static_cast<std::size_t>(get(c, cur, kNK));
        const std::size_t pos = findSlot(c, cur, key);
        for (std::size_t i = nk; i > pos; --i) {
          set(c, cur, kKey0 + i, get(c, cur, kKey0 + i - 1));
          set(c, cur, kKid0 + i, get(c, cur, kKid0 + i - 1));
        }
        set(c, cur, kKey0 + pos, static_cast<std::int64_t>(key));
        set(c, cur, kKid0 + pos, static_cast<std::int64_t>(val));
        set(c, cur, kNK, static_cast<std::int64_t>(nk + 1));
        unlockN(c, cur);
        return;
      }
      std::size_t slot = findSlot(c, cur, key);
      std::int64_t child = get(c, cur, kKid0 + slot);
      lockN(c, child);
      if (static_cast<std::size_t>(get(c, child, kNK)) == kF) {
        const std::int64_t sib = splitChild(c, cur, slot, child);
        if (key >= static_cast<std::uint64_t>(get(c, cur, kKey0 + slot))) {
          lockN(c, sib);
          unlockN(c, child);
          child = sib;
        }
      }
      unlockN(c, cur);
      cur = child;
    }
  }

  /// Lock-coupled descent to the leaf that may hold `key`; the leaf
  /// stays locked, its slot index (or npos) is returned via `pos`.
  std::int64_t descend(Ctx& c, std::uint64_t key, std::size_t& pos) {
    c.lock(root_lk);
    std::int64_t cur = rootptr.get(c);
    lockN(c, cur);
    c.unlock(root_lk);
    while (get(c, cur, kLeaf) == 0) {
      c.compute(8);
      const std::size_t slot = findSlot(c, cur, key);
      const std::int64_t child = get(c, cur, kKid0 + slot);
      lockN(c, child);
      unlockN(c, cur);
      cur = child;
    }
    const auto nk = static_cast<std::size_t>(get(c, cur, kNK));
    pos = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < nk; ++i) {
      c.compute(2);
      if (static_cast<std::uint64_t>(get(c, cur, kKey0 + i)) == key) {
        pos = i;
        break;
      }
    }
    return cur;
  }

  std::uint64_t lookup(Ctx& c, std::uint64_t key, bool& found) {
    std::size_t pos;
    const std::int64_t leaf = descend(c, key, pos);
    std::uint64_t v = 0;
    found = pos != static_cast<std::size_t>(-1);
    if (found) v = static_cast<std::uint64_t>(get(c, leaf, kKid0 + pos));
    unlockN(c, leaf);
    return v;
  }

  bool updateVal(Ctx& c, std::uint64_t key, std::uint64_t val) {
    std::size_t pos;
    const std::int64_t leaf = descend(c, key, pos);
    const bool found = pos != static_cast<std::size_t>(-1);
    if (found) set(c, leaf, kKid0 + pos, static_cast<std::int64_t>(val));
    unlockN(c, leaf);
    return found;
  }
};

}  // namespace

AppResult runBTree(Platform& plat, const AppParams& prm, bool ds) {
  const int P = plat.nprocs();
  BTree t;
  // Every node holds >= 1 key forever and leaves hold all n keys with
  // >= kF/2 each post-split, so n/2 slots bound the whole tree; the ds
  // per-proc sub-pools are sized for the even split and spill into the
  // fully-sized global region if stealing-free partitioning still ends
  // up lopsided.
  const std::size_t cap_global = static_cast<std::size_t>(prm.n) / 2 + 64;
  t.stride = ds ? 32 : kNodeWords;  // 256 B (4 lines) vs packed 20 words
  t.per_cap = ds ? cap_global / static_cast<std::size_t>(P) + 16 : 0;
  t.global_off = t.per_cap * static_cast<std::size_t>(P);
  const std::size_t slots = t.global_off + cap_global;
  const auto region_words = t.per_cap * t.stride;
  t.pool = SharedArray<std::int64_t>(
      plat, slots * t.stride,
      ds ? HomePolicy{[region_words, P](std::uint64_t page, std::uint64_t) {
        const std::uint64_t w = page * kPageWords;
        const auto r = static_cast<ProcId>(w / region_words);
        return r < P ? r : static_cast<ProcId>(page % P);
      }}
         : HomePolicy::roundRobin(P),
      ds ? 4096 : alignof(std::int64_t));
  t.rootptr = Shared<std::int64_t>(plat, HomePolicy::node(0));
  t.gcur = Shared<std::int64_t>(plat, HomePolicy::node(0));
  if (ds) {
    t.subcur = SharedArray<std::int64_t>(
        plat, static_cast<std::size_t>(P) * kPageWords,
        HomePolicy{[](std::uint64_t page, std::uint64_t) {
          return static_cast<ProcId>(page);
        }},
        4096);
    for (int p = 0; p < P; ++p) {
      t.subcur.raw(static_cast<std::size_t>(p) * kPageWords) = 0;
    }
  }
  for (std::size_t s = 0; s < slots; ++s) t.node_lks.push_back(plat.makeLock());
  t.root_lk = plat.makeLock();
  t.alloc_lk = plat.makeLock();
  // Empty leaf root, created untimed.
  const std::int64_t root = static_cast<std::int64_t>(t.global_off);
  t.gcur.raw() = 1;
  t.pool.raw(static_cast<std::size_t>(root) * t.stride + kNK) = 0;
  t.pool.raw(static_cast<std::size_t>(root) * t.stride + kLeaf) = 1;
  t.pool.raw(static_cast<std::size_t>(root) * t.stride + kNext) = -1;
  t.rootptr.raw() = root;

  const int bar = plat.makeBarrier();
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(P), 0);

  plat.run([&](Ctx& c) {
    const int me = c.id();
    std::uint64_t d = 0;

    // Phase A: partitioned inserts.
    const Chunk own = chunkOf(me, P, prm.n);
    for (int j = own.lo; j < own.hi; ++j) {
      const std::uint64_t key = keyOf(prm.seed, j);
      t.insert(c, key, val0(key));
      d += mix3(kPhaseInsert, static_cast<std::uint64_t>(j), key);
    }
    c.barrier(bar);

    // Phase B: rotated lookup rounds.
    for (int r = 0; r < prm.iters; ++r) {
      const Chunk ch = chunkOf((me + r + 1) % P, P, prm.n);
      for (int j = ch.lo; j < ch.hi; ++j) {
        bool found = false;
        const std::uint64_t v = t.lookup(c, keyOf(prm.seed, j), found);
        d += mix3(static_cast<std::uint64_t>(r) + 1,
                  static_cast<std::uint64_t>(j), found ? v : 0);
      }
    }
    c.barrier(bar);

    // Phase C: rotated in-place value updates (each key exactly once).
    const Chunk uc = chunkOf((me + 1) % P, P, prm.n);
    for (int j = uc.lo; j < uc.hi; ++j) {
      const std::uint64_t key = keyOf(prm.seed, j);
      const bool found = t.updateVal(c, key, val1(key));
      d += mix3(kPhaseMutate, static_cast<std::uint64_t>(j),
                found ? val1(key) : 0);
    }
    c.barrier(bar);

    // Phase D: rotated verify pass.
    const Chunk vc = chunkOf((me + P - 1) % P, P, prm.n);
    for (int j = vc.lo; j < vc.hi; ++j) {
      bool found = false;
      const std::uint64_t v = t.lookup(c, keyOf(prm.seed, j), found);
      d += mix3(kPhaseVerify, static_cast<std::uint64_t>(j), found ? v : 0);
    }
    digests[static_cast<std::size_t>(me)] = d;
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // --- expected digests (pure replay) ---
  std::uint64_t want_result = 0;
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(prm.n));
  for (int j = 0; j < prm.n; ++j) {
    const std::uint64_t key = keyOf(prm.seed, j);
    const auto ju = static_cast<std::uint64_t>(j);
    keys.push_back(key);
    want_result += mix3(kPhaseInsert, ju, key);
    for (int r = 0; r < prm.iters; ++r) {
      want_result += mix3(static_cast<std::uint64_t>(r) + 1, ju, val0(key));
    }
    want_result += mix3(kPhaseMutate, ju, val1(key));
    want_result += mix3(kPhaseVerify, ju, val1(key));
  }
  std::sort(keys.begin(), keys.end());
  std::uint64_t want_state = kFnvOffset;
  for (std::uint64_t k : keys) {
    want_state = fnvStep(fnvStep(want_state, k), val1(k));
  }

  // --- structural walk (untimed): leftmost descent, then the leaf
  // chain; contents must be exactly the sorted key set. The tree
  // *shape* may differ across platforms; the in-order contents cannot.
  auto raw = [&](std::int64_t node, std::size_t off) {
    return t.pool.raw(static_cast<std::size_t>(node) * t.stride + off);
  };
  std::int64_t cur = t.rootptr.raw();
  while (raw(cur, kLeaf) == 0) cur = raw(cur, kKid0);
  std::uint64_t state = kFnvOffset;
  std::size_t walked = 0, unsorted = 0;
  std::uint64_t prev_key = 0;
  while (cur >= 0) {
    const auto nk = static_cast<std::size_t>(raw(cur, kNK));
    for (std::size_t i = 0; i < nk; ++i) {
      const auto k = static_cast<std::uint64_t>(raw(cur, kKey0 + i));
      const auto v = static_cast<std::uint64_t>(raw(cur, kKid0 + i));
      if (walked > 0 && k <= prev_key) ++unsorted;
      prev_key = k;
      state = fnvStep(fnvStep(state, k), v);
      ++walked;
    }
    cur = raw(cur, kNext);
  }
  const std::uint64_t got_result = [&] {
    std::uint64_t s = 0;
    for (std::uint64_t v : digests) s += v;
    return s;
  }();

  res.correct = unsorted == 0 && walked == keys.size() &&
                state == want_state && got_result == want_result;
  res.note = res.correct
                 ? "leaf chain and op digests match serial replay"
                 : "walked " + std::to_string(walked) + "/" +
                       std::to_string(keys.size()) + " (" +
                       std::to_string(unsorted) + " unsorted); state " +
                       (state == want_state ? "ok" : "MISMATCH") +
                       "; result " +
                       (got_result == want_result ? "ok" : "MISMATCH");
  res.state_hash = state;
  res.result_hash = got_result;
  return res;
}

}  // namespace rsvm::apps::index
