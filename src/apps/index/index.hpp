// Concurrent in-memory index workloads: a chained hash table and a
// lock-coupled B+-tree, exercised by a phase-separated mix of inserts,
// lookup rounds, deletes/updates, and a final verification pass. Where
// the server app stresses queues and allocators, these stress the
// paper's data-structure (DS) and padding/alignment (P/A) classes on
// pointer-linked structures: bucket heads and list nodes that false-
// share (hash), and tree nodes whose layout straddles lines and pages
// (B+-tree).
//
// Versions:
//  * hash-orig  -- packed bucket-head array, packed 3-word list nodes
//                  (nodes straddle cache lines), global bump allocator.
//  * hash-pa    -- P/A: bucket heads padded to a line each, nodes padded
//                  and aligned to a line.
//  * btree-orig -- fanout-8 B+-tree, packed 20-word nodes, global
//                  allocator; lock-coupled descent with preemptive
//                  top-down splits.
//  * btree-ds   -- DS: nodes padded to 256 B and pooled per processor
//                  (page-aligned sub-pools homed at the allocating
//                  processor's node), so splits allocate locally.
//
// The key set, values, and phase schedule are pure functions of
// (seed, n), so every platform must produce identical result_hash and
// (content-based) state_hash -- chain order and tree shape may differ
// across platforms, the key/value contents may not.
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::index {

enum class Variant { HashOrig, HashPA, BTreeOrig, BTreeDS };

/// prm.n = keys, prm.iters = lookup rounds, prm.seed = key-set seed
/// (prm.block is unused).
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::index
