// Internal helpers shared by the hash and B+-tree index workloads: the
// deterministic key/value universe and the phase schedule. Everything
// here is a pure function of (seed, n), which is what lets a host-side
// replay predict the exact digests every platform must produce.
#pragma once

#include "apps/common/digest.hpp"
#include "core/app.hpp"

#include <cstdint>

namespace rsvm::apps::index {

/// Key j of the workload. splitmix64 is bijective, so keys are distinct;
/// the >> 2 keeps them positive as int64 pool words.
inline std::uint64_t keyOf(std::uint64_t seed, int j) {
  return splitmix64(seed ^ (static_cast<std::uint64_t>(j) * 2 + 1)) >> 2;
}
/// Initial value stored at insert time.
inline std::uint64_t val0(std::uint64_t key) {
  return splitmix64(key + 0x1111);
}
/// Updated value written by the B+-tree update phase.
inline std::uint64_t val1(std::uint64_t key) {
  return splitmix64(key + 0x2222);
}
/// Keys the hash delete phase removes.
inline bool deleted(int j) { return j % 5 == 3; }
/// Keys the hash reinsert phase puts back with val1 -- a strict subset
/// of deleted() (j % 10 == 3 implies j % 5 == 3), so every reinsert can
/// reuse a node its own processor just reclaimed.
inline bool reinserted(int j) { return j % 10 == 3; }

/// Phase tags folded into per-op digests (so a lookup in round r and
/// the final verify pass of the same key hash differently).
constexpr std::uint64_t kPhaseInsert = 0xA;
constexpr std::uint64_t kPhaseMutate = 0xC;
constexpr std::uint64_t kPhaseReinsert = 0xE;
constexpr std::uint64_t kPhaseVerify = 0xF;

/// Contiguous key-index chunk of processor p (out of P) over n keys.
struct Chunk {
  int lo, hi;
};
inline Chunk chunkOf(int p, int P, int n) {
  const int per = n / P;
  const int lo = p * per;
  return {lo, p == P - 1 ? n : lo + per};
}

AppResult runHash(Platform& plat, const AppParams& prm, bool padded);
AppResult runBTree(Platform& plat, const AppParams& prm, bool ds);

}  // namespace rsvm::apps::index
