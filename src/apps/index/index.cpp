#include "apps/index/index.hpp"

#include "apps/index/index_common.hpp"

namespace rsvm::apps::index {

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  switch (v) {
    case Variant::HashOrig: return runHash(plat, prm, /*padded=*/false);
    case Variant::HashPA: return runHash(plat, prm, /*padded=*/true);
    case Variant::BTreeOrig: return runBTree(plat, prm, /*ds=*/false);
    case Variant::BTreeDS: return runBTree(plat, prm, /*ds=*/true);
  }
  return {};
}

AppDesc describe() {
  AppDesc d;
  d.name = "index";
  d.summary = "concurrent index structures: chained hash + lock-coupled "
              "B+-tree";
  d.tiny = {.n = 1024, .iters = 2, .block = 0, .seed = 42};
  d.small = {.n = 8192, .iters = 3, .block = 0, .seed = 42};
  d.paper = {.n = 65536, .iters = 4, .block = 0, .seed = 42};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("hash-orig", OptClass::Orig,
          "packed bucket heads and 3-word chain nodes, global allocator",
          Variant::HashOrig),
      ver("hash-pa", OptClass::PA,
          "bucket heads and chain nodes padded+aligned to cache lines",
          Variant::HashPA),
      ver("btree-orig", OptClass::Orig,
          "fanout-8 lock-coupled B+-tree, packed 20-word nodes",
          Variant::BTreeOrig),
      ver("btree-ds", OptClass::DS,
          "256 B page-pooled nodes, allocated from per-processor sub-pools",
          Variant::BTreeDS),
  };
  return d;
}

}  // namespace rsvm::apps::index
